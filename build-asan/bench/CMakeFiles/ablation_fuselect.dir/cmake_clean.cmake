file(REMOVE_RECURSE
  "CMakeFiles/ablation_fuselect.dir/ablation_fuselect.cpp.o"
  "CMakeFiles/ablation_fuselect.dir/ablation_fuselect.cpp.o.d"
  "ablation_fuselect"
  "ablation_fuselect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_fuselect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
