# Empty dependencies file for ablation_fuselect.
# This may be replaced when dependencies are built.
