file(REMOVE_RECURSE
  "CMakeFiles/example1_power.dir/example1_power.cpp.o"
  "CMakeFiles/example1_power.dir/example1_power.cpp.o.d"
  "example1_power"
  "example1_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example1_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
