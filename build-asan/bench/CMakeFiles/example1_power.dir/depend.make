# Empty dependencies file for example1_power.
# This may be replaced when dependencies are built.
