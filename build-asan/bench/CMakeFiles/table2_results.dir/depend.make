# Empty dependencies file for table2_results.
# This may be replaced when dependencies are built.
