file(REMOVE_RECURSE
  "CMakeFiles/table2_results.dir/table2_results.cpp.o"
  "CMakeFiles/table2_results.dir/table2_results.cpp.o.d"
  "table2_results"
  "table2_results.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_results.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
