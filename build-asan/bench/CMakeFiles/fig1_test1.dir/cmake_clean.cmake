file(REMOVE_RECURSE
  "CMakeFiles/fig1_test1.dir/fig1_test1.cpp.o"
  "CMakeFiles/fig1_test1.dir/fig1_test1.cpp.o.d"
  "fig1_test1"
  "fig1_test1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_test1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
