file(REMOVE_RECURSE
  "CMakeFiles/fig3_resource.dir/fig3_resource.cpp.o"
  "CMakeFiles/fig3_resource.dir/fig3_resource.cpp.o.d"
  "fig3_resource"
  "fig3_resource.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_resource.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
