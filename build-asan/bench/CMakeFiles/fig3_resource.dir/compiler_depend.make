# Empty compiler generated dependencies file for fig3_resource.
# This may be replaced when dependencies are built.
