# Empty dependencies file for table1_library.
# This may be replaced when dependencies are built.
