file(REMOVE_RECURSE
  "CMakeFiles/table1_library.dir/table1_library.cpp.o"
  "CMakeFiles/table1_library.dir/table1_library.cpp.o.d"
  "table1_library"
  "table1_library.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_library.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
