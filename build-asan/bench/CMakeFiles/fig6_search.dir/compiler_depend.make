# Empty compiler generated dependencies file for fig6_search.
# This may be replaced when dependencies are built.
