file(REMOVE_RECURSE
  "CMakeFiles/fig6_search.dir/fig6_search.cpp.o"
  "CMakeFiles/fig6_search.dir/fig6_search.cpp.o.d"
  "fig6_search"
  "fig6_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
