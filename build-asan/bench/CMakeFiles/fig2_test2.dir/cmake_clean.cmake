file(REMOVE_RECURSE
  "CMakeFiles/fig2_test2.dir/fig2_test2.cpp.o"
  "CMakeFiles/fig2_test2.dir/fig2_test2.cpp.o.d"
  "fig2_test2"
  "fig2_test2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_test2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
