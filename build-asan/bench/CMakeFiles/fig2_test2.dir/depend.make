# Empty dependencies file for fig2_test2.
# This may be replaced when dependencies are built.
