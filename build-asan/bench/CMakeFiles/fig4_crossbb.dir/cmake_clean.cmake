file(REMOVE_RECURSE
  "CMakeFiles/fig4_crossbb.dir/fig4_crossbb.cpp.o"
  "CMakeFiles/fig4_crossbb.dir/fig4_crossbb.cpp.o.d"
  "fig4_crossbb"
  "fig4_crossbb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_crossbb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
