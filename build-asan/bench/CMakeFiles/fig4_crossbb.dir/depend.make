# Empty dependencies file for fig4_crossbb.
# This may be replaced when dependencies are built.
