
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/micro_bench.cpp" "bench/CMakeFiles/micro_bench.dir/micro_bench.cpp.o" "gcc" "bench/CMakeFiles/micro_bench.dir/micro_bench.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/opt/CMakeFiles/fact_opt.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/workloads/CMakeFiles/fact_workloads.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/sched/CMakeFiles/fact_sched.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/power/CMakeFiles/fact_power.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/xform/CMakeFiles/fact_xform.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/cdfg/CMakeFiles/fact_cdfg.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/stg/CMakeFiles/fact_stg.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/sim/CMakeFiles/fact_sim.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/hlslib/CMakeFiles/fact_hlslib.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/lang/CMakeFiles/fact_lang.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/ir/CMakeFiles/fact_ir.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/util/CMakeFiles/fact_util.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/verify/CMakeFiles/fact_verify.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
