# Empty dependencies file for table3_allocation.
# This may be replaced when dependencies are built.
