file(REMOVE_RECURSE
  "CMakeFiles/table3_allocation.dir/table3_allocation.cpp.o"
  "CMakeFiles/table3_allocation.dir/table3_allocation.cpp.o.d"
  "table3_allocation"
  "table3_allocation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_allocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
