file(REMOVE_RECURSE
  "CMakeFiles/fact_util.dir/dot.cpp.o"
  "CMakeFiles/fact_util.dir/dot.cpp.o.d"
  "CMakeFiles/fact_util.dir/rng.cpp.o"
  "CMakeFiles/fact_util.dir/rng.cpp.o.d"
  "libfact_util.a"
  "libfact_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fact_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
