# Empty dependencies file for fact_util.
# This may be replaced when dependencies are built.
