file(REMOVE_RECURSE
  "libfact_util.a"
)
