# Empty dependencies file for fact_verify.
# This may be replaced when dependencies are built.
