file(REMOVE_RECURSE
  "libfact_verify.a"
)
