file(REMOVE_RECURSE
  "CMakeFiles/fact_verify.dir/fault_injector.cpp.o"
  "CMakeFiles/fact_verify.dir/fault_injector.cpp.o.d"
  "CMakeFiles/fact_verify.dir/verify.cpp.o"
  "CMakeFiles/fact_verify.dir/verify.cpp.o.d"
  "libfact_verify.a"
  "libfact_verify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fact_verify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
