file(REMOVE_RECURSE
  "libfact_ir.a"
)
