# Empty dependencies file for fact_ir.
# This may be replaced when dependencies are built.
