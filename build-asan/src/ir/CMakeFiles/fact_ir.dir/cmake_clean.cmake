file(REMOVE_RECURSE
  "CMakeFiles/fact_ir.dir/edit.cpp.o"
  "CMakeFiles/fact_ir.dir/edit.cpp.o.d"
  "CMakeFiles/fact_ir.dir/expr.cpp.o"
  "CMakeFiles/fact_ir.dir/expr.cpp.o.d"
  "CMakeFiles/fact_ir.dir/function.cpp.o"
  "CMakeFiles/fact_ir.dir/function.cpp.o.d"
  "CMakeFiles/fact_ir.dir/stmt.cpp.o"
  "CMakeFiles/fact_ir.dir/stmt.cpp.o.d"
  "libfact_ir.a"
  "libfact_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fact_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
