file(REMOVE_RECURSE
  "CMakeFiles/fact_lang.dir/lexer.cpp.o"
  "CMakeFiles/fact_lang.dir/lexer.cpp.o.d"
  "CMakeFiles/fact_lang.dir/parser.cpp.o"
  "CMakeFiles/fact_lang.dir/parser.cpp.o.d"
  "libfact_lang.a"
  "libfact_lang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fact_lang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
