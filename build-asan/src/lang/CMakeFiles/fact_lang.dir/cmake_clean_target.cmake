file(REMOVE_RECURSE
  "libfact_lang.a"
)
