# Empty dependencies file for fact_lang.
# This may be replaced when dependencies are built.
