file(REMOVE_RECURSE
  "libfact_xform.a"
)
