# Empty dependencies file for fact_xform.
# This may be replaced when dependencies are built.
