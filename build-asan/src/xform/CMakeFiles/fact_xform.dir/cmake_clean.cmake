file(REMOVE_RECURSE
  "CMakeFiles/fact_xform.dir/algebraic.cpp.o"
  "CMakeFiles/fact_xform.dir/algebraic.cpp.o.d"
  "CMakeFiles/fact_xform.dir/controlflow.cpp.o"
  "CMakeFiles/fact_xform.dir/controlflow.cpp.o.d"
  "CMakeFiles/fact_xform.dir/dataflow.cpp.o"
  "CMakeFiles/fact_xform.dir/dataflow.cpp.o.d"
  "CMakeFiles/fact_xform.dir/expr_transform.cpp.o"
  "CMakeFiles/fact_xform.dir/expr_transform.cpp.o.d"
  "CMakeFiles/fact_xform.dir/selects.cpp.o"
  "CMakeFiles/fact_xform.dir/selects.cpp.o.d"
  "libfact_xform.a"
  "libfact_xform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fact_xform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
