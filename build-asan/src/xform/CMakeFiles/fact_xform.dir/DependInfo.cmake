
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/xform/algebraic.cpp" "src/xform/CMakeFiles/fact_xform.dir/algebraic.cpp.o" "gcc" "src/xform/CMakeFiles/fact_xform.dir/algebraic.cpp.o.d"
  "/root/repo/src/xform/controlflow.cpp" "src/xform/CMakeFiles/fact_xform.dir/controlflow.cpp.o" "gcc" "src/xform/CMakeFiles/fact_xform.dir/controlflow.cpp.o.d"
  "/root/repo/src/xform/dataflow.cpp" "src/xform/CMakeFiles/fact_xform.dir/dataflow.cpp.o" "gcc" "src/xform/CMakeFiles/fact_xform.dir/dataflow.cpp.o.d"
  "/root/repo/src/xform/expr_transform.cpp" "src/xform/CMakeFiles/fact_xform.dir/expr_transform.cpp.o" "gcc" "src/xform/CMakeFiles/fact_xform.dir/expr_transform.cpp.o.d"
  "/root/repo/src/xform/selects.cpp" "src/xform/CMakeFiles/fact_xform.dir/selects.cpp.o" "gcc" "src/xform/CMakeFiles/fact_xform.dir/selects.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/ir/CMakeFiles/fact_ir.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/sim/CMakeFiles/fact_sim.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/cdfg/CMakeFiles/fact_cdfg.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/util/CMakeFiles/fact_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
