# Empty compiler generated dependencies file for fact_stg.
# This may be replaced when dependencies are built.
