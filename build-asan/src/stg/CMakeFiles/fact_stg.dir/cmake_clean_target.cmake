file(REMOVE_RECURSE
  "libfact_stg.a"
)
