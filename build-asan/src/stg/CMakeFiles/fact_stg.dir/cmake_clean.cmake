file(REMOVE_RECURSE
  "CMakeFiles/fact_stg.dir/stg.cpp.o"
  "CMakeFiles/fact_stg.dir/stg.cpp.o.d"
  "libfact_stg.a"
  "libfact_stg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fact_stg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
