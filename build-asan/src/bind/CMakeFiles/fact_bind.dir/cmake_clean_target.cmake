file(REMOVE_RECURSE
  "libfact_bind.a"
)
