file(REMOVE_RECURSE
  "CMakeFiles/fact_bind.dir/binding.cpp.o"
  "CMakeFiles/fact_bind.dir/binding.cpp.o.d"
  "libfact_bind.a"
  "libfact_bind.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fact_bind.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
