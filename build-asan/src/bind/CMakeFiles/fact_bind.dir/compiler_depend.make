# Empty compiler generated dependencies file for fact_bind.
# This may be replaced when dependencies are built.
