
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rtl/plan.cpp" "src/rtl/CMakeFiles/fact_rtl.dir/plan.cpp.o" "gcc" "src/rtl/CMakeFiles/fact_rtl.dir/plan.cpp.o.d"
  "/root/repo/src/rtl/sim.cpp" "src/rtl/CMakeFiles/fact_rtl.dir/sim.cpp.o" "gcc" "src/rtl/CMakeFiles/fact_rtl.dir/sim.cpp.o.d"
  "/root/repo/src/rtl/verilog.cpp" "src/rtl/CMakeFiles/fact_rtl.dir/verilog.cpp.o" "gcc" "src/rtl/CMakeFiles/fact_rtl.dir/verilog.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/bind/CMakeFiles/fact_bind.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/sim/CMakeFiles/fact_sim.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/stg/CMakeFiles/fact_stg.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/ir/CMakeFiles/fact_ir.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/util/CMakeFiles/fact_util.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/hlslib/CMakeFiles/fact_hlslib.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
