file(REMOVE_RECURSE
  "CMakeFiles/fact_rtl.dir/plan.cpp.o"
  "CMakeFiles/fact_rtl.dir/plan.cpp.o.d"
  "CMakeFiles/fact_rtl.dir/sim.cpp.o"
  "CMakeFiles/fact_rtl.dir/sim.cpp.o.d"
  "CMakeFiles/fact_rtl.dir/verilog.cpp.o"
  "CMakeFiles/fact_rtl.dir/verilog.cpp.o.d"
  "libfact_rtl.a"
  "libfact_rtl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fact_rtl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
