file(REMOVE_RECURSE
  "libfact_rtl.a"
)
