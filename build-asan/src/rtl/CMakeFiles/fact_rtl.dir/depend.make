# Empty dependencies file for fact_rtl.
# This may be replaced when dependencies are built.
