file(REMOVE_RECURSE
  "libfact_opt.a"
)
