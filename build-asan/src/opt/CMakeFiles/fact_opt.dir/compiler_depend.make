# Empty compiler generated dependencies file for fact_opt.
# This may be replaced when dependencies are built.
