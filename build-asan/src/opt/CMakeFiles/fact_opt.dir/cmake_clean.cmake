file(REMOVE_RECURSE
  "CMakeFiles/fact_opt.dir/baselines.cpp.o"
  "CMakeFiles/fact_opt.dir/baselines.cpp.o.d"
  "CMakeFiles/fact_opt.dir/engine.cpp.o"
  "CMakeFiles/fact_opt.dir/engine.cpp.o.d"
  "CMakeFiles/fact_opt.dir/fact.cpp.o"
  "CMakeFiles/fact_opt.dir/fact.cpp.o.d"
  "CMakeFiles/fact_opt.dir/fuselect.cpp.o"
  "CMakeFiles/fact_opt.dir/fuselect.cpp.o.d"
  "CMakeFiles/fact_opt.dir/partition.cpp.o"
  "CMakeFiles/fact_opt.dir/partition.cpp.o.d"
  "libfact_opt.a"
  "libfact_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fact_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
