file(REMOVE_RECURSE
  "libfact_sim.a"
)
