# Empty dependencies file for fact_sim.
# This may be replaced when dependencies are built.
