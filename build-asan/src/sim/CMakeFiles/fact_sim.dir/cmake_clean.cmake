file(REMOVE_RECURSE
  "CMakeFiles/fact_sim.dir/interp.cpp.o"
  "CMakeFiles/fact_sim.dir/interp.cpp.o.d"
  "CMakeFiles/fact_sim.dir/trace.cpp.o"
  "CMakeFiles/fact_sim.dir/trace.cpp.o.d"
  "libfact_sim.a"
  "libfact_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fact_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
