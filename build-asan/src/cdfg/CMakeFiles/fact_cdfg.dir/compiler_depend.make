# Empty compiler generated dependencies file for fact_cdfg.
# This may be replaced when dependencies are built.
