file(REMOVE_RECURSE
  "CMakeFiles/fact_cdfg.dir/cdfg.cpp.o"
  "CMakeFiles/fact_cdfg.dir/cdfg.cpp.o.d"
  "libfact_cdfg.a"
  "libfact_cdfg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fact_cdfg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
