file(REMOVE_RECURSE
  "libfact_cdfg.a"
)
