file(REMOVE_RECURSE
  "CMakeFiles/fact_power.dir/power.cpp.o"
  "CMakeFiles/fact_power.dir/power.cpp.o.d"
  "libfact_power.a"
  "libfact_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fact_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
