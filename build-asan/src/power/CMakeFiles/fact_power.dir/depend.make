# Empty dependencies file for fact_power.
# This may be replaced when dependencies are built.
