file(REMOVE_RECURSE
  "libfact_power.a"
)
