file(REMOVE_RECURSE
  "CMakeFiles/fact_workloads.dir/workloads.cpp.o"
  "CMakeFiles/fact_workloads.dir/workloads.cpp.o.d"
  "libfact_workloads.a"
  "libfact_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fact_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
