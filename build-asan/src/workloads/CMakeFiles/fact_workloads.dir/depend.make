# Empty dependencies file for fact_workloads.
# This may be replaced when dependencies are built.
