file(REMOVE_RECURSE
  "libfact_workloads.a"
)
