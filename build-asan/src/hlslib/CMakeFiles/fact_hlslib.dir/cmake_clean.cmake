file(REMOVE_RECURSE
  "CMakeFiles/fact_hlslib.dir/library.cpp.o"
  "CMakeFiles/fact_hlslib.dir/library.cpp.o.d"
  "libfact_hlslib.a"
  "libfact_hlslib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fact_hlslib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
