file(REMOVE_RECURSE
  "libfact_hlslib.a"
)
