# Empty dependencies file for fact_hlslib.
# This may be replaced when dependencies are built.
