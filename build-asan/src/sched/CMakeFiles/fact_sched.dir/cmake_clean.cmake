file(REMOVE_RECURSE
  "CMakeFiles/fact_sched.dir/dfg.cpp.o"
  "CMakeFiles/fact_sched.dir/dfg.cpp.o.d"
  "CMakeFiles/fact_sched.dir/region.cpp.o"
  "CMakeFiles/fact_sched.dir/region.cpp.o.d"
  "CMakeFiles/fact_sched.dir/scheduler.cpp.o"
  "CMakeFiles/fact_sched.dir/scheduler.cpp.o.d"
  "libfact_sched.a"
  "libfact_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fact_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
