file(REMOVE_RECURSE
  "libfact_sched.a"
)
