
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/dfg.cpp" "src/sched/CMakeFiles/fact_sched.dir/dfg.cpp.o" "gcc" "src/sched/CMakeFiles/fact_sched.dir/dfg.cpp.o.d"
  "/root/repo/src/sched/region.cpp" "src/sched/CMakeFiles/fact_sched.dir/region.cpp.o" "gcc" "src/sched/CMakeFiles/fact_sched.dir/region.cpp.o.d"
  "/root/repo/src/sched/scheduler.cpp" "src/sched/CMakeFiles/fact_sched.dir/scheduler.cpp.o" "gcc" "src/sched/CMakeFiles/fact_sched.dir/scheduler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/ir/CMakeFiles/fact_ir.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/hlslib/CMakeFiles/fact_hlslib.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/sim/CMakeFiles/fact_sim.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/stg/CMakeFiles/fact_stg.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/util/CMakeFiles/fact_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
