# Empty dependencies file for fact_sched.
# This may be replaced when dependencies are built.
