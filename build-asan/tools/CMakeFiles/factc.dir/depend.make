# Empty dependencies file for factc.
# This may be replaced when dependencies are built.
