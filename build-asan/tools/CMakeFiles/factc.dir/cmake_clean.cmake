file(REMOVE_RECURSE
  "CMakeFiles/factc.dir/factc.cpp.o"
  "CMakeFiles/factc.dir/factc.cpp.o.d"
  "factc"
  "factc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/factc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
