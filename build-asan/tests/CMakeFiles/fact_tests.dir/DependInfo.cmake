
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/bind_rtl_test.cpp" "tests/CMakeFiles/fact_tests.dir/bind_rtl_test.cpp.o" "gcc" "tests/CMakeFiles/fact_tests.dir/bind_rtl_test.cpp.o.d"
  "/root/repo/tests/cdfg_test.cpp" "tests/CMakeFiles/fact_tests.dir/cdfg_test.cpp.o" "gcc" "tests/CMakeFiles/fact_tests.dir/cdfg_test.cpp.o.d"
  "/root/repo/tests/cli_test.cpp" "tests/CMakeFiles/fact_tests.dir/cli_test.cpp.o" "gcc" "tests/CMakeFiles/fact_tests.dir/cli_test.cpp.o.d"
  "/root/repo/tests/dataflow_xform_test.cpp" "tests/CMakeFiles/fact_tests.dir/dataflow_xform_test.cpp.o" "gcc" "tests/CMakeFiles/fact_tests.dir/dataflow_xform_test.cpp.o.d"
  "/root/repo/tests/faultinject_test.cpp" "tests/CMakeFiles/fact_tests.dir/faultinject_test.cpp.o" "gcc" "tests/CMakeFiles/fact_tests.dir/faultinject_test.cpp.o.d"
  "/root/repo/tests/fuselect_test.cpp" "tests/CMakeFiles/fact_tests.dir/fuselect_test.cpp.o" "gcc" "tests/CMakeFiles/fact_tests.dir/fuselect_test.cpp.o.d"
  "/root/repo/tests/fuzz_test.cpp" "tests/CMakeFiles/fact_tests.dir/fuzz_test.cpp.o" "gcc" "tests/CMakeFiles/fact_tests.dir/fuzz_test.cpp.o.d"
  "/root/repo/tests/hlslib_test.cpp" "tests/CMakeFiles/fact_tests.dir/hlslib_test.cpp.o" "gcc" "tests/CMakeFiles/fact_tests.dir/hlslib_test.cpp.o.d"
  "/root/repo/tests/integration_test.cpp" "tests/CMakeFiles/fact_tests.dir/integration_test.cpp.o" "gcc" "tests/CMakeFiles/fact_tests.dir/integration_test.cpp.o.d"
  "/root/repo/tests/ir_test.cpp" "tests/CMakeFiles/fact_tests.dir/ir_test.cpp.o" "gcc" "tests/CMakeFiles/fact_tests.dir/ir_test.cpp.o.d"
  "/root/repo/tests/lang_test.cpp" "tests/CMakeFiles/fact_tests.dir/lang_test.cpp.o" "gcc" "tests/CMakeFiles/fact_tests.dir/lang_test.cpp.o.d"
  "/root/repo/tests/opt_test.cpp" "tests/CMakeFiles/fact_tests.dir/opt_test.cpp.o" "gcc" "tests/CMakeFiles/fact_tests.dir/opt_test.cpp.o.d"
  "/root/repo/tests/pipeline_test.cpp" "tests/CMakeFiles/fact_tests.dir/pipeline_test.cpp.o" "gcc" "tests/CMakeFiles/fact_tests.dir/pipeline_test.cpp.o.d"
  "/root/repo/tests/power_test.cpp" "tests/CMakeFiles/fact_tests.dir/power_test.cpp.o" "gcc" "tests/CMakeFiles/fact_tests.dir/power_test.cpp.o.d"
  "/root/repo/tests/program_gen.cpp" "tests/CMakeFiles/fact_tests.dir/program_gen.cpp.o" "gcc" "tests/CMakeFiles/fact_tests.dir/program_gen.cpp.o.d"
  "/root/repo/tests/roundtrip_test.cpp" "tests/CMakeFiles/fact_tests.dir/roundtrip_test.cpp.o" "gcc" "tests/CMakeFiles/fact_tests.dir/roundtrip_test.cpp.o.d"
  "/root/repo/tests/rtl_equiv_test.cpp" "tests/CMakeFiles/fact_tests.dir/rtl_equiv_test.cpp.o" "gcc" "tests/CMakeFiles/fact_tests.dir/rtl_equiv_test.cpp.o.d"
  "/root/repo/tests/rtl_plan_test.cpp" "tests/CMakeFiles/fact_tests.dir/rtl_plan_test.cpp.o" "gcc" "tests/CMakeFiles/fact_tests.dir/rtl_plan_test.cpp.o.d"
  "/root/repo/tests/sched_test.cpp" "tests/CMakeFiles/fact_tests.dir/sched_test.cpp.o" "gcc" "tests/CMakeFiles/fact_tests.dir/sched_test.cpp.o.d"
  "/root/repo/tests/sim_test.cpp" "tests/CMakeFiles/fact_tests.dir/sim_test.cpp.o" "gcc" "tests/CMakeFiles/fact_tests.dir/sim_test.cpp.o.d"
  "/root/repo/tests/stg_test.cpp" "tests/CMakeFiles/fact_tests.dir/stg_test.cpp.o" "gcc" "tests/CMakeFiles/fact_tests.dir/stg_test.cpp.o.d"
  "/root/repo/tests/util_test.cpp" "tests/CMakeFiles/fact_tests.dir/util_test.cpp.o" "gcc" "tests/CMakeFiles/fact_tests.dir/util_test.cpp.o.d"
  "/root/repo/tests/verify_test.cpp" "tests/CMakeFiles/fact_tests.dir/verify_test.cpp.o" "gcc" "tests/CMakeFiles/fact_tests.dir/verify_test.cpp.o.d"
  "/root/repo/tests/workloads_test.cpp" "tests/CMakeFiles/fact_tests.dir/workloads_test.cpp.o" "gcc" "tests/CMakeFiles/fact_tests.dir/workloads_test.cpp.o.d"
  "/root/repo/tests/xform_test.cpp" "tests/CMakeFiles/fact_tests.dir/xform_test.cpp.o" "gcc" "tests/CMakeFiles/fact_tests.dir/xform_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/opt/CMakeFiles/fact_opt.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/workloads/CMakeFiles/fact_workloads.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/sched/CMakeFiles/fact_sched.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/power/CMakeFiles/fact_power.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/verify/CMakeFiles/fact_verify.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/xform/CMakeFiles/fact_xform.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/cdfg/CMakeFiles/fact_cdfg.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/rtl/CMakeFiles/fact_rtl.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/bind/CMakeFiles/fact_bind.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/stg/CMakeFiles/fact_stg.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/sim/CMakeFiles/fact_sim.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/hlslib/CMakeFiles/fact_hlslib.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/lang/CMakeFiles/fact_lang.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/ir/CMakeFiles/fact_ir.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/util/CMakeFiles/fact_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
