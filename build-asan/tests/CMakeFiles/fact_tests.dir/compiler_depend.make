# Empty compiler generated dependencies file for fact_tests.
# This may be replaced when dependencies are built.
