// factcli — thin client for factd.
//
//   factcli --unix /tmp/factd.sock --benchmark GCD --session g1
//   factcli --tcp-port 7333 --request '{"type":"status"}'
//   factcli --unix /tmp/factd.sock --stdin < requests.jsonl
//
// Connection (exactly one of):
//   --unix <path>            connect over a unix-domain socket
//   --tcp-port <n>           connect over TCP (with --tcp-host, default
//                            127.0.0.1)
//
// Request (exactly one mode):
//   --request '<json>'       send one raw request line
//   --stdin                  pipeline every line of stdin, print the
//                            responses in request order
//   --status | --shutdown    convenience one-shots
//   --stats                  session/queue/cache inventory one-shot
//   --metrics                Prometheus text scrape: sends a `metrics`
//                            request and prints the response body raw
//   (default)                build an optimize request from factc-style
//                            flags: --benchmark/--source, --session,
//                            --objective, --alloc, --clock, --seed,
//                            --validate, --deadline-ms, --jobs,
//                            --no-fuse, --quiet; --type schedule|profile
//                            picks the other job kinds
//
// Output: one JSON response per line. With --report, optimize responses
// print their "report" field raw instead — byte-identical to factc's
// stdout for the same behavior and options, which is what the end-to-end
// determinism test diffs. Exit code 1 if any response has ok:false.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "serve/json.hpp"
#include "serve/net.hpp"
#include "util/error.hpp"

namespace {

using namespace fact;
using serve::Json;

struct Args {
  std::string unix_path;
  std::string tcp_host = "127.0.0.1";
  int tcp_port = -1;

  std::string raw_request;
  bool from_stdin = false;
  bool report_only = false;

  std::string type = "optimize";
  std::string benchmark, source_path, session, objective, alloc, validate;
  bool has_clock = false, has_seed = false, has_deadline = false,
       has_jobs = false;
  double clock_ns = 0.0, deadline_ms = 0.0;
  long seed = 0, jobs = 0;
  bool no_fuse = false, quiet = false, no_memoize = false;
};

[[noreturn]] void usage(const char* msg = nullptr) {
  if (msg) fprintf(stderr, "factcli: %s\n", msg);
  fprintf(stderr,
          "usage: factcli (--unix <path> | --tcp-port <n> [--tcp-host <a>])\n"
          "  --request '<json>' | --stdin | --status | --stats | --metrics |\n"
          "  --shutdown |\n"
          "  [--type optimize|schedule|profile] --benchmark <NAME> | --source <f>\n"
          "  [--session <name>] [--objective throughput|power] [--alloc <spec>]\n"
          "  [--clock <ns>] [--seed <n>] [--validate off|fast|full]\n"
          "  [--deadline-ms <n>] [--jobs <n>] [--no-fuse] [--no-memoize]\n"
          "  [--quiet] [--report]\n");
  exit(2);
}

double parse_double(const std::string& text, const std::string& opt) {
  try {
    size_t pos = 0;
    const double v = std::stod(text, &pos);
    if (pos != text.size()) throw Error("");
    return v;
  } catch (const std::exception&) {
    throw Error("bad numeric value '" + text + "' for " + opt);
  }
}

Args parse_args(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    std::string inline_value;
    bool has_inline = false;
    if (arg.size() > 2 && arg[0] == '-' && arg[1] == '-') {
      const size_t eq = arg.find('=');
      if (eq != std::string::npos) {
        inline_value = arg.substr(eq + 1);
        has_inline = true;
        arg = arg.substr(0, eq);
      }
    }
    auto next = [&]() -> std::string {
      if (has_inline) return inline_value;
      if (i + 1 >= argc) usage(("missing value for " + arg).c_str());
      return argv[++i];
    };
    if (arg == "--unix") a.unix_path = next();
    else if (arg == "--tcp-port") a.tcp_port = static_cast<int>(parse_double(next(), arg));
    else if (arg == "--tcp-host") a.tcp_host = next();
    else if (arg == "--request") a.raw_request = next();
    else if (arg == "--stdin") a.from_stdin = true;
    else if (arg == "--status") a.type = "status";
    else if (arg == "--stats") a.type = "stats";
    else if (arg == "--metrics") a.type = "metrics";
    else if (arg == "--shutdown") a.type = "shutdown";
    else if (arg == "--type") a.type = next();
    else if (arg == "--report") a.report_only = true;
    else if (arg == "--benchmark") a.benchmark = next();
    else if (arg == "--source") a.source_path = next();
    else if (arg == "--session") a.session = next();
    else if (arg == "--objective") a.objective = next();
    else if (arg == "--alloc") a.alloc = next();
    else if (arg == "--validate") a.validate = next();
    else if (arg == "--clock") { a.clock_ns = parse_double(next(), arg); a.has_clock = true; }
    else if (arg == "--seed") { a.seed = static_cast<long>(parse_double(next(), arg)); a.has_seed = true; }
    else if (arg == "--deadline-ms") { a.deadline_ms = parse_double(next(), arg); a.has_deadline = true; }
    else if (arg == "--jobs") { a.jobs = static_cast<long>(parse_double(next(), arg)); a.has_jobs = true; }
    else if (arg == "--no-fuse") a.no_fuse = true;
    else if (arg == "--no-memoize") a.no_memoize = true;
    else if (arg == "--quiet") a.quiet = true;
    else if (arg == "--help" || arg == "-h") usage();
    else usage(("unknown option " + arg).c_str());
  }
  if (a.unix_path.empty() == (a.tcp_port < 0))
    usage("provide exactly one of --unix or --tcp-port");
  return a;
}

std::string build_request(const Args& a) {
  if (!a.raw_request.empty()) return a.raw_request;
  Json req = Json::object();
  req.set("type", a.type);
  req.set("id", 1);
  if (a.type == "status" || a.type == "stats" || a.type == "metrics" ||
      a.type == "shutdown")
    return req.dump();
  if (!a.session.empty()) req.set("session", a.session);
  if (!a.benchmark.empty()) req.set("benchmark", a.benchmark);
  if (!a.source_path.empty()) {
    std::ifstream in(a.source_path);
    if (!in) throw Error("cannot open " + a.source_path);
    std::stringstream buf;
    buf << in.rdbuf();
    req.set("source", buf.str());
  }
  if (!a.objective.empty()) req.set("objective", a.objective);
  if (!a.alloc.empty()) req.set("alloc", a.alloc);
  if (!a.validate.empty()) req.set("validate", a.validate);
  if (a.has_clock) req.set("clock", a.clock_ns);
  if (a.has_seed) req.set("seed", static_cast<int64_t>(a.seed));
  if (a.has_deadline) req.set("deadline_ms", a.deadline_ms);
  if (a.has_jobs) req.set("jobs", static_cast<int64_t>(a.jobs));
  if (a.no_fuse) req.set("no_fuse", true);
  if (a.no_memoize) req.set("memoize", false);
  if (a.quiet) req.set("quiet", true);
  return req.dump();
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Args args = parse_args(argc, argv);

    std::vector<std::string> requests;
    if (args.from_stdin) {
      std::string line;
      while (std::getline(std::cin, line))
        if (!line.empty()) requests.push_back(line);
    } else {
      requests.push_back(build_request(args));
    }
    if (requests.empty()) return 0;

    const int fd = args.unix_path.empty()
                       ? serve::connect_tcp(args.tcp_host, args.tcp_port)
                       : serve::connect_unix(args.unix_path);

    // Receive concurrently with sending so a pipelined batch can never
    // deadlock on filled socket buffers in both directions.
    bool all_ok = true;
    std::thread rx([&] {
      serve::LineReader reader(fd);
      std::string line;
      for (size_t i = 0; i < requests.size(); ++i) {
        if (!reader.next(line)) {
          fprintf(stderr, "factcli: connection closed after %zu of %zu "
                          "responses\n", i, requests.size());
          all_ok = false;
          return;
        }
        const Json resp = Json::parse(line);
        if (!resp.get_bool("ok")) all_ok = false;
        // A --metrics one-shot prints the Prometheus text body raw, ready
        // for a scraper; everything else keeps the JSON line protocol.
        if (args.type == "metrics" && args.raw_request.empty() &&
            !args.from_stdin) {
          if (const Json* body = resp.get("body"))
            fputs(body->as_string().c_str(), stdout);
          else
            fprintf(stderr, "factcli: error: %s\n",
                    resp.get_string("error", "unknown error").c_str());
        } else if (args.report_only) {
          if (const Json* report = resp.get("report"))
            fputs(report->as_string().c_str(), stdout);
          else if (!resp.get_bool("ok"))
            fprintf(stderr, "factcli: error: %s\n",
                    resp.get_string("error", "unknown error").c_str());
        } else {
          printf("%s\n", line.c_str());
        }
      }
    });
    for (const std::string& r : requests) {
      if (!serve::send_line(fd, r)) {
        fprintf(stderr, "factcli: send failed\n");
        break;
      }
    }
    rx.join();
    serve::close_fd(fd);
    return all_ok ? 0 : 1;
  } catch (const fact::Error& e) {
    fprintf(stderr, "factcli: error: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    fprintf(stderr, "factcli: internal error: %s\n", e.what());
    return 1;
  }
}
