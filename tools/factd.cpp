// factd — the FACT optimization service.
//
//   factd --unix /tmp/factd.sock [--tcp-port 7333] [options]
//
// Line-delimited JSON over unix-domain and/or TCP sockets: one request
// object per line, one response object per line, responses in request
// order per connection. Request types: optimize, schedule, profile,
// status, stats, metrics, cancel, shutdown (see README "Running factd").
//
// Options:
//   --unix <path>       listen on a unix-domain socket
//   --tcp-port <n>      listen on TCP (0 = ephemeral; the chosen port is
//                       printed on startup)
//   --tcp-host <addr>   TCP bind address (default 127.0.0.1)
//   --workers <n>       shared worker-pool threads (default: hardware)
//   --queue-cap <n>     bounded job queue length (default 256)
//   --batch-max <n>     jobs dispatched per wave (default: pool threads)
//   --cache-cap <n>     shared EvalCache capacity (default 262144)
//   --stats-interval <s> print a periodic stats line every <s> seconds
//   --quiet             no startup/shutdown banner

#include <cstdio>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>

#include "serve/server.hpp"
#include "serve/service.hpp"
#include "util/error.hpp"

namespace {

using namespace fact;

struct Args {
  serve::ServiceOptions service;
  serve::ServerOptions server;
  long stats_interval_s = 0;  // 0 = no periodic stats line
  bool quiet = false;
};

[[noreturn]] void usage(const char* msg = nullptr) {
  if (msg) fprintf(stderr, "factd: %s\n", msg);
  fprintf(stderr,
          "usage: factd [--unix <path>] [--tcp-port <n>] [--tcp-host <addr>]\n"
          "  [--workers <n>] [--queue-cap <n>] [--batch-max <n>]\n"
          "  [--cache-cap <n>] [--stats-interval <s>] [--quiet]\n");
  exit(2);
}

long parse_long(const std::string& text, const std::string& opt) {
  try {
    size_t pos = 0;
    const long v = std::stol(text, &pos);
    if (pos != text.size()) throw Error("");
    return v;
  } catch (const std::exception&) {
    throw Error("bad numeric value '" + text + "' for " + opt);
  }
}

Args parse_args(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    std::string inline_value;
    bool has_inline = false;
    if (arg.size() > 2 && arg[0] == '-' && arg[1] == '-') {
      const size_t eq = arg.find('=');
      if (eq != std::string::npos) {
        inline_value = arg.substr(eq + 1);
        has_inline = true;
        arg = arg.substr(0, eq);
      }
    }
    auto next = [&]() -> std::string {
      if (has_inline) return inline_value;
      if (i + 1 >= argc) usage(("missing value for " + arg).c_str());
      return argv[++i];
    };
    if (arg == "--unix") a.server.unix_path = next();
    else if (arg == "--tcp-port") a.server.tcp_port = static_cast<int>(parse_long(next(), arg));
    else if (arg == "--tcp-host") a.server.tcp_host = next();
    else if (arg == "--workers") a.service.workers = static_cast<int>(parse_long(next(), arg));
    else if (arg == "--queue-cap") a.service.queue_cap = static_cast<size_t>(parse_long(next(), arg));
    else if (arg == "--batch-max") a.service.batch_max = static_cast<size_t>(parse_long(next(), arg));
    else if (arg == "--cache-cap") a.service.cache_cap = static_cast<size_t>(parse_long(next(), arg));
    else if (arg == "--stats-interval") a.stats_interval_s = parse_long(next(), arg);
    else if (arg == "--quiet") a.quiet = true;
    else if (arg == "--help" || arg == "-h") usage();
    else usage(("unknown option " + arg).c_str());
  }
  if (a.server.unix_path.empty() && a.server.tcp_port < 0)
    usage("provide --unix <path> and/or --tcp-port <n>");
  return a;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Args args = parse_args(argc, argv);
    serve::Service service(args.service);
    serve::Server server(service, args.server);
    if (!args.quiet) {
      if (!server.unix_path().empty())
        printf("factd: listening on unix:%s\n", server.unix_path().c_str());
      if (server.tcp_port() >= 0)
        printf("factd: listening on tcp://%s:%d\n",
               args.server.tcp_host.c_str(), server.tcp_port());
      // Scripts wait for the banner before connecting.
      fflush(stdout);
    }

    // Periodic operational stats on stderr (stdout stays protocol-clean
    // for banner-watching scripts). Interruptible sleep so shutdown never
    // waits out a full interval.
    std::thread stats_thread;
    std::mutex stats_mu;
    std::condition_variable stats_cv;
    bool stats_stop = false;
    if (args.stats_interval_s > 0) {
      stats_thread = std::thread([&] {
        const auto interval = std::chrono::seconds(args.stats_interval_s);
        std::unique_lock<std::mutex> lk(stats_mu);
        while (!stats_cv.wait_for(lk, interval, [&] { return stats_stop; })) {
          const serve::StatsSnapshot s = service.stats();
          fprintf(stderr,
                  "factd: stats uptime=%.0fms sessions=%zu queue=%zu "
                  "in_flight=%zu completed=%llu failed=%llu cancelled=%llu "
                  "evals=%llu cache=%zu/%zu\n",
                  s.uptime_ms, s.sessions, s.queue_depth, s.in_flight,
                  static_cast<unsigned long long>(s.completed),
                  static_cast<unsigned long long>(s.failed),
                  static_cast<unsigned long long>(s.cancelled),
                  static_cast<unsigned long long>(s.evaluations),
                  s.cache_entries, s.cache_cap);
        }
      });
    }

    server.run();
    if (stats_thread.joinable()) {
      {
        std::lock_guard<std::mutex> lk(stats_mu);
        stats_stop = true;
      }
      stats_cv.notify_all();
      stats_thread.join();
    }
    if (!args.quiet) {
      const serve::StatsSnapshot s = service.stats();
      printf("factd: shutdown after %llu completed, %llu failed, "
             "%llu cancelled, %llu rejected; cache %zu/%zu entries\n",
             static_cast<unsigned long long>(s.completed),
             static_cast<unsigned long long>(s.failed),
             static_cast<unsigned long long>(s.cancelled),
             static_cast<unsigned long long>(s.rejected), s.cache_entries,
             s.cache_cap);
    }
    return 0;
  } catch (const fact::Error& e) {
    fprintf(stderr, "factd: error: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    fprintf(stderr, "factd: internal error: %s\n", e.what());
    return 1;
  }
}
