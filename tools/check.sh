#!/usr/bin/env sh
# Robustness gate: build the whole tree under a sanitizer and run the full
# test suite (including the fault-injection and verifier tests). Usage:
#
#   [FACT_SANITIZE=address|thread] tools/check.sh [build-dir]
#
# FACT_SANITIZE selects the sanitizer:
#   address (default) - AddressSanitizer + UBSan over the full suite.
#   thread            - ThreadSanitizer; runs the full suite (the engine
#                       tests exercise multi-threaded candidate evaluation
#                       via EngineOptions::jobs > 1, and the WorkerPool
#                       tests hammer the pool handoff directly), then
#                       re-runs the parallel engine + pool tests with
#                       TSAN_OPTIONS=halt_on_error=1 so any data race in
#                       the evaluation waves fails loudly.
#
# Each sanitized tree lives in its own build directory (default
# build-asan / build-tsan) so the regular build stays untouched.
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
sanitize=${FACT_SANITIZE:-address}

case "$sanitize" in
  address|ON|on)
    build_dir=${1:-"$repo_root/build-asan"}
    cmake_flag=address
    ;;
  thread)
    build_dir=${1:-"$repo_root/build-tsan"}
    cmake_flag=thread
    ;;
  *)
    echo "check.sh: unknown FACT_SANITIZE='$sanitize' (want address or thread)" >&2
    exit 2
    ;;
esac

cmake -S "$repo_root" -B "$build_dir" -DFACT_SANITIZE="$cmake_flag"
cmake --build "$build_dir" -j "$(nproc)"
ctest --test-dir "$build_dir" -j "$(nproc)" --output-on-failure

if [ "$cmake_flag" = thread ]; then
  # Focused multi-threaded pass: the tests that run the engine and the
  # worker pool with jobs > 1, with races promoted to hard failures.
  TSAN_OPTIONS="halt_on_error=1${TSAN_OPTIONS:+:$TSAN_OPTIONS}" \
    ctest --test-dir "$build_dir" --output-on-failure \
      -R 'WorkerPool|JobsInvariant|JobsDeterminism|EvalCache'
fi

echo "check.sh: sanitized suite ($cmake_flag) passed"
