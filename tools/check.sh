#!/usr/bin/env sh
# Robustness gate: build the whole tree with AddressSanitizer + UBSan and
# run the full test suite (including the fault-injection and verifier
# tests) under it. Usage:
#
#   tools/check.sh [build-dir]
#
# The sanitized tree lives in its own build directory (default
# build-asan) so the regular build stays untouched.
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build-asan"}

cmake -S "$repo_root" -B "$build_dir" -DFACT_SANITIZE=ON
cmake --build "$build_dir" -j "$(nproc)"
ctest --test-dir "$build_dir" -j "$(nproc)" --output-on-failure
echo "check.sh: sanitized suite passed"
