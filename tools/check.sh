#!/usr/bin/env sh
# Robustness gate: build the whole tree under a sanitizer and run the full
# test suite (including the fault-injection and verifier tests). Usage:
#
#   [FACT_SANITIZE=address|thread] tools/check.sh [build-dir]
#
# FACT_SANITIZE selects the sanitizer:
#   address (default) - AddressSanitizer + UBSan over the full suite.
#   thread            - ThreadSanitizer; runs the full suite (the engine
#                       tests exercise multi-threaded candidate evaluation
#                       via EngineOptions::jobs > 1, and the WorkerPool
#                       tests hammer the pool handoff directly), then
#                       re-runs the parallel engine + pool + service tests
#                       with TSAN_OPTIONS=halt_on_error=1 so any data race
#                       in the evaluation waves or the factd service fails
#                       loudly, and finally drives a sanitized factd over a
#                       unix socket with concurrent factcli clients and
#                       requires a clean daemon exit.
#
# Each sanitized tree lives in its own build directory (default
# build-asan / build-tsan) so the regular build stays untouched.
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
sanitize=${FACT_SANITIZE:-address}

case "$sanitize" in
  address|ON|on)
    build_dir=${1:-"$repo_root/build-asan"}
    cmake_flag=address
    ;;
  thread)
    build_dir=${1:-"$repo_root/build-tsan"}
    cmake_flag=thread
    ;;
  *)
    echo "check.sh: unknown FACT_SANITIZE='$sanitize' (want address or thread)" >&2
    exit 2
    ;;
esac

cmake -S "$repo_root" -B "$build_dir" -DFACT_SANITIZE="$cmake_flag"
cmake --build "$build_dir" -j "$(nproc)"
ctest --test-dir "$build_dir" -j "$(nproc)" --output-on-failure

if [ "$cmake_flag" = thread ]; then
  # Focused multi-threaded pass: the tests that run the engine, the worker
  # pool, and the factd service/server with real thread contention, with
  # races promoted to hard failures.
  # (bench_smoke covers the tracked benches end-to-end at tiny trace
  # counts; parallel_scaling's jobs>1 leg runs real worker threads.)
  TSAN_OPTIONS="halt_on_error=1${TSAN_OPTIONS:+:$TSAN_OPTIONS}" \
    ctest --test-dir "$build_dir" --output-on-failure \
      -R 'WorkerPool|JobsInvariant|JobsDeterminism|EvalCache|Engine\.EnginesSharing|Service\.|Server\.|FactdE2E|bench_smoke|Obs\.'

  # Server integration under TSan: a sanitized factd on a unix socket,
  # hammered by concurrent factcli clients, must exit cleanly (TSan makes
  # any reported race a non-zero daemon exit).
  sock="$build_dir/factd-tsan.sock"
  rm -f "$sock"
  export TSAN_OPTIONS="halt_on_error=1${TSAN_OPTIONS:+:$TSAN_OPTIONS}"
  "$build_dir/tools/factd" --unix "$sock" --workers 4 --batch-max 4 --quiet &
  factd_pid=$!
  for _ in $(seq 1 100); do
    [ -S "$sock" ] && break
    sleep 0.1
  done
  [ -S "$sock" ] || { echo "check.sh: factd did not come up" >&2; exit 1; }
  client_pids=""
  for w in GCD IGF PPS; do
    "$build_dir/tools/factcli" --unix "$sock" --benchmark "$w" --quiet \
      --session "tsan-$w" >/dev/null &
    client_pids="$client_pids $!"
  done
  for p in $client_pids; do wait "$p"; done
  # Warm re-optimize through the sessions plus a status probe.
  for w in GCD IGF PPS; do
    "$build_dir/tools/factcli" --unix "$sock" --type optimize \
      --session "tsan-$w" --quiet >/dev/null
  done
  "$build_dir/tools/factcli" --unix "$sock" --status >/dev/null
  # The observability endpoints under the same contention: the stats
  # inventory and a Prometheus scrape that must carry live counters.
  "$build_dir/tools/factcli" --unix "$sock" --stats >/dev/null
  "$build_dir/tools/factcli" --unix "$sock" --metrics \
    | grep -q '^fact_serve_completed_total [1-9]' \
    || { echo "check.sh: factd metrics scrape missing live counters" >&2; exit 1; }
  "$build_dir/tools/factcli" --unix "$sock" --shutdown >/dev/null
  wait "$factd_pid"
  rm -f "$sock"

  # Span tracing under TSan: a traced sanitized run with parallel
  # evaluation must produce well-formed Chrome trace JSON.
  trace_json="$build_dir/factc-tsan-trace.json"
  "$build_dir/tools/factc" --benchmark GCD --jobs 4 --quiet \
    --trace-out "$trace_json" >/dev/null
  grep -q '^{"traceEvents":\[{' "$trace_json" \
    || { echo "check.sh: factc --trace-out produced malformed trace JSON" >&2; exit 1; }
  grep -q '"name":"engine.optimize"' "$trace_json" \
    || { echo "check.sh: trace JSON is missing the engine.optimize span" >&2; exit 1; }
  rm -f "$trace_json"
fi

echo "check.sh: sanitized suite ($cmake_flag) passed"
