// factc — command-line driver for the FACT framework.
//
//   factc <source.fact> [options]
//   factc --benchmark GCD [options]
//
// Options:
//   --objective throughput|power   optimization goal (default throughput)
//   --method fact|flamel|m1|all    which method(s) to run (default fact)
//   --alloc a1=2,sb1=1,...         allocation constraint (default: 2 of each)
//   --clock <ns>                   clock period (default 25)
//   --seed <n>                     trace seed (default 7)
//   --validate off|fast|full       per-candidate invariant checking (fast)
//   --deadline-ms <n>              per-block search budget; best-so-far
//   --jobs <n>                     worker threads for candidate evaluation
//                                  (default: hardware concurrency; results
//                                  are identical for any value)
//   --no-fuse                      disable concurrent-loop fusion (RTL-exact)
//   --emit-verilog <file>          write the optimized design's Verilog
//   --emit-stg <file>              write the optimized design's STG (DOT)
//   --emit-cdfg <file>             write the behavior's CDFG (DOT)
//   --trace-out <file>             write a Chrome trace-event JSON of the
//                                  run's phases/blocks/candidates (open in
//                                  Perfetto or chrome://tracing)
//   --metrics-out <file>           write the metrics-registry snapshot and
//                                  search telemetry as JSON
//   --binding                      print the datapath binding report
//   --quiet                        only the summary line

#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>

#include "bind/binding.hpp"
#include "cdfg/cdfg.hpp"
#include "lang/parser.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "opt/baselines.hpp"
#include "opt/fact.hpp"
#include "rtl/verilog.hpp"
#include "util/error.hpp"
#include "verify/verify.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace fact;

struct Args {
  std::string source_path;
  std::string benchmark;
  std::string objective = "throughput";
  std::string method = "fact";
  std::string alloc_spec;
  std::string validate = "fast";
  std::string emit_verilog, emit_stg, emit_cdfg;
  std::string trace_out, metrics_out;
  double clock_ns = 25.0;
  double deadline_ms = 0.0;
  int jobs = 0;  // 0 = hardware concurrency
  uint64_t seed = 7;
  bool no_fuse = false;
  bool binding = false;
  bool quiet = false;
};

[[noreturn]] void usage(const char* msg = nullptr) {
  if (msg) fprintf(stderr, "factc: %s\n", msg);
  fprintf(stderr,
          "usage: factc <source.fact> | --benchmark <NAME>\n"
          "  [--objective throughput|power] [--method fact|flamel|m1|all]\n"
          "  [--alloc a1=2,sb1=1,...] [--clock <ns>] [--seed <n>] [--no-fuse]\n"
          "  [--validate off|fast|full] [--deadline-ms <n>] [--jobs <n>]\n"
          "  [--emit-verilog <f>] [--emit-stg <f>] [--emit-cdfg <f>]\n"
          "  [--trace-out <f>] [--metrics-out <f>] [--binding] [--quiet]\n");
  exit(2);
}

double parse_double(const std::string& text, const std::string& opt) {
  try {
    size_t pos = 0;
    const double v = std::stod(text, &pos);
    if (pos != text.size()) throw Error("");
    return v;
  } catch (const std::exception&) {
    throw Error("bad numeric value '" + text + "' for " + opt);
  }
}

uint64_t parse_u64(const std::string& text, const std::string& opt) {
  try {
    size_t pos = 0;
    const uint64_t v = std::stoull(text, &pos);
    if (pos != text.size() || text[0] == '-') throw Error("");
    return v;
  } catch (const std::exception&) {
    throw Error("bad numeric value '" + text + "' for " + opt);
  }
}

Args parse_args(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    // Accept both "--opt value" and "--opt=value".
    std::string inline_value;
    bool has_inline = false;
    if (arg.size() > 2 && arg[0] == '-' && arg[1] == '-') {
      const size_t eq = arg.find('=');
      if (eq != std::string::npos) {
        inline_value = arg.substr(eq + 1);
        has_inline = true;
        arg = arg.substr(0, eq);
      }
    }
    auto next = [&]() -> std::string {
      if (has_inline) return inline_value;
      if (i + 1 >= argc) usage(("missing value for " + arg).c_str());
      return argv[++i];
    };
    if (arg == "--benchmark") a.benchmark = next();
    else if (arg == "--objective") a.objective = next();
    else if (arg == "--method") a.method = next();
    else if (arg == "--alloc") a.alloc_spec = next();
    else if (arg == "--clock") a.clock_ns = parse_double(next(), arg);
    else if (arg == "--seed") a.seed = parse_u64(next(), arg);
    else if (arg == "--validate") a.validate = next();
    else if (arg == "--deadline-ms") a.deadline_ms = parse_double(next(), arg);
    else if (arg == "--jobs") a.jobs = static_cast<int>(parse_u64(next(), arg));
    else if (arg == "--no-fuse") a.no_fuse = true;
    else if (arg == "--emit-verilog") a.emit_verilog = next();
    else if (arg == "--emit-stg") a.emit_stg = next();
    else if (arg == "--emit-cdfg") a.emit_cdfg = next();
    else if (arg == "--trace-out") a.trace_out = next();
    else if (arg == "--metrics-out") a.metrics_out = next();
    else if (arg == "--binding") a.binding = true;
    else if (arg == "--quiet") a.quiet = true;
    else if (arg == "--help" || arg == "-h") usage();
    else if (!arg.empty() && arg[0] == '-') usage(("unknown option " + arg).c_str());
    else if (a.source_path.empty()) a.source_path = arg;
    else usage("multiple source files");
  }
  if (a.source_path.empty() == a.benchmark.empty())
    usage("provide exactly one of <source.fact> or --benchmark");
  return a;
}

void write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  if (!out) throw Error("cannot write " + path);
  out << text;
  printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Args args = parse_args(argc, argv);

    // Span tracing: installed before any work runs so every phase is
    // covered. The tracer only records — nothing on the optimization path
    // reads it back — so stdout is byte-identical with tracing on or off
    // (asserted by the determinism test). Written silently at exit for
    // the same reason.
    std::optional<obs::Tracer> tracer;
    if (!args.trace_out.empty()) {
      tracer.emplace();
      obs::set_tracer(&*tracer);
    }

    // Load the behavior + context.
    const hlslib::Library lib = hlslib::Library::dac98();
    const hlslib::FuSelection sel = hlslib::FuSelection::defaults(lib);
    ir::Function fn("");
    hlslib::Allocation alloc;
    sim::TraceConfig traces;
    if (!args.benchmark.empty()) {
      workloads::Workload w = workloads::by_name(args.benchmark);
      fn = std::move(w.fn);
      alloc = args.alloc_spec.empty()
                  ? w.allocation
                  : hlslib::parse_allocation(args.alloc_spec, lib);
      traces = w.trace;
    } else {
      std::ifstream in(args.source_path);
      if (!in) throw Error("cannot open " + args.source_path);
      std::stringstream buf;
      buf << in.rdbuf();
      fn = lang::parse_function(buf.str());
      alloc = hlslib::parse_allocation(args.alloc_spec, lib);
    }

    sched::SchedOptions so;
    so.clock_ns = args.clock_ns;
    so.fuse_loops = !args.no_fuse;
    const power::PowerOptions po;

    if (!args.emit_cdfg.empty())
      write_file(args.emit_cdfg, cdfg::Cdfg::from_function(fn).dot(fn.name()));

    const bool all = args.method == "all";
    std::string search_json;  // telemetry_json of the FACT run, if any
    auto line = [&](const char* tag, double len, double power, size_t n) {
      printf("%-7s avg length %10.2f cycles | throughput %8.3f (x1000/cyc) "
             "| power %8.3f | %zu transform(s)\n",
             tag, len, 1000.0 / len, power, n);
    };

    if (all || args.method == "m1") {
      const auto r = opt::run_m1(fn, lib, alloc, sel, traces, so, po, args.seed);
      line("M1", r.avg_len, r.power_nominal.power, 0);
    }
    if (all || args.method == "flamel") {
      const auto r =
          opt::run_flamel(fn, lib, alloc, sel, traces, so, po, args.seed);
      line("Flamel", r.avg_len, r.power_nominal.power, r.applied.size());
    }
    if (all || args.method == "fact") {
      opt::FactOptions fo;
      fo.sched = so;
      fo.power = po;
      fo.seed = args.seed;
      fo.objective = args.objective == "power" ? opt::Objective::Power
                                               : opt::Objective::Throughput;
      if (args.objective != "power" && args.objective != "throughput")
        usage("bad --objective");
      fo.engine.validate = verify::level_from_string(args.validate);
      if (args.deadline_ms < 0) throw Error("--deadline-ms must be >= 0");
      fo.engine.deadline_ms = args.deadline_ms;
      fo.engine.jobs = args.jobs;  // 0 = hardware concurrency
      const auto xf = xform::TransformLibrary::standard();
      const opt::FactResult r =
          opt::run_fact(fn, lib, alloc, sel, traces, xf, fo);
      search_json = opt::telemetry_json(r);
      // Rendered by the same function factd uses for optimize responses,
      // which is what makes server output byte-identical to batch output.
      fputs(opt::render_fact_report(r, fo.objective, args.quiet).c_str(),
            stdout);
      if (args.binding) {
        const bind::Binding b =
            bind::bind_datapath(r.schedule.stg, lib, alloc);
        printf("\n%s", b.report(lib).c_str());
      }
      if (!args.emit_stg.empty())
        write_file(args.emit_stg, r.schedule.stg.dot(fn.name()));
      if (!args.emit_verilog.empty()) {
        if (!r.schedule.rtl_exact)
          fprintf(stderr,
                  "factc: note: schedule uses fused concurrent loops; the "
                  "Verilog preview is metrics-grade (re-run with --no-fuse "
                  "for RTL-exact output)\n");
        write_file(args.emit_verilog, rtl::emit_verilog(fn, r.schedule.stg));
      }
    }

    // Observability outputs, written without announcing on stdout: the
    // determinism tests diff batch output with these flags on vs. off.
    if (!args.metrics_out.empty()) {
      std::ofstream out(args.metrics_out);
      if (!out) throw Error("cannot write " + args.metrics_out);
      out << "{\"registry\":"
          << obs::to_json(obs::Registry::global().snapshot())
          << ",\"search\":"
          << (search_json.empty() ? std::string("null") : search_json)
          << "}\n";
    }
    if (tracer) {
      obs::set_tracer(nullptr);
      tracer->write(args.trace_out);
    }
    return 0;
  } catch (const fact::Error& e) {
    fprintf(stderr, "factc: error: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    // Last-resort guard: any library defect surfaces as a clean message
    // and exit code, never an abort.
    fprintf(stderr, "factc: internal error: %s\n", e.what());
    return 1;
  }
}
