// Quickstart: the complete FACT flow on a small control-flow-intensive
// behavior, in ~40 lines of user code.
//
//   behavior source -> parse -> [FACT: profile, schedule, partition,
//   transform-with-interleaved-scheduling] -> transformed behavior +
//   schedule + metrics.

#include <cstdio>

#include "hlslib/library.hpp"
#include "lang/parser.hpp"
#include "opt/fact.hpp"

int main() {
  using namespace fact;

  // 1. A behavioral description in the mini language (Euclid's GCD —
  //    the paper's first benchmark).
  const ir::Function behavior = lang::parse_function(R"(
GCD(int a, int b) {
  while (a != b) {
    if (a > b) { a = a - b; } else { b = b - a; }
  }
  output a;
}
)");

  // 2. Hardware context: the DAC'98 component library, the Table 3
  //    allocation (2 subtracters, 1 comparator, 1 equality comparator),
  //    and typical input traces.
  const hlslib::Library lib = hlslib::Library::dac98();
  const hlslib::FuSelection sel = hlslib::FuSelection::defaults(lib);
  hlslib::Allocation alloc;
  alloc.counts = {{"sb1", 2}, {"cp1", 1}, {"e1", 1}};
  sim::TraceConfig traces;
  traces.params["a"] = {sim::InputSpec::Kind::Uniform, 0, 0, 0, 1, 96, 0};
  traces.params["b"] = {sim::InputSpec::Kind::Uniform, 0, 0, 0, 1, 96, 0};

  // 3. Run FACT (throughput objective, default options).
  const opt::FactResult result =
      opt::run_fact(behavior, lib, alloc, sel, traces,
                    xform::TransformLibrary::standard(), {});

  // 4. Inspect what happened.
  printf("transformed behavior:\n%s\n", result.optimized.str().c_str());
  printf("applied transforms:\n");
  for (const auto& t : result.applied) printf("  %s\n", t.c_str());
  printf("\naverage schedule length: %.2f -> %.2f cycles (%.2fx faster)\n",
         result.initial_avg_len, result.final_avg_len,
         result.initial_avg_len / result.final_avg_len);
  printf("states in the final STG: %zu\n", result.schedule.stg.num_states());
  printf("\nflow log:\n");
  for (const auto& line : result.log) printf("  %s\n", line.c_str());
  return 0;
}
