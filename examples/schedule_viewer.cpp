// Domain example: schedule inspection. Compiles a behavior (from a file
// given on the command line, or an embedded FIR demo), schedules it, and
// prints a cycle-by-cycle view of the STG — which operations execute in
// each state, on which functional units, with which iteration overlap —
// plus Graphviz dumps of the CDFG and STG.

#include <cstdio>
#include <fstream>
#include <sstream>

#include "bind/binding.hpp"
#include "cdfg/cdfg.hpp"
#include "hlslib/library.hpp"
#include "lang/parser.hpp"
#include "rtl/verilog.hpp"
#include "sched/scheduler.hpp"
#include "sim/trace.hpp"

namespace {

const char* kDemo = R"(
DEMO(int gain) {
  input int x[16];
  int y[16];
  int i = 0;
  while (i < 16) {
    y[i] = x[i] * gain + x[i];
    i = i + 1;
  }
  output i;
}
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace fact;
  std::string source = kDemo;
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    source = buf.str();
  }

  const ir::Function fn = lang::parse_function(source);
  printf("behavior:\n%s\n", fn.str().c_str());

  const hlslib::Library lib = hlslib::Library::dac98();
  const hlslib::FuSelection sel = hlslib::FuSelection::defaults(lib);
  hlslib::Allocation alloc;  // generous default datapath
  for (const auto& t : lib.types()) alloc.counts[t.name] = 2;

  const sim::Trace trace = sim::generate_trace(fn, {}, 7);
  const sim::Profile profile = sim::profile_function(fn, trace);
  sched::Scheduler scheduler(lib, alloc, sel, {});
  const sched::ScheduleResult sr = scheduler.schedule(fn, profile);
  const auto pi = stg::state_probabilities(sr.stg);

  printf("schedule: %zu states, average length %.2f cycles\n\n",
         sr.stg.num_states(), stg::average_schedule_length(sr.stg, pi));
  for (const auto& loop : sr.loops) {
    printf("loop at statement %d: ", loop.stmt_id);
    if (loop.pipelined) {
      printf("pipelined, II=%d (body %d csteps -> iterations overlap %dx)\n",
             loop.ii, loop.body_csteps,
             (loop.body_csteps + loop.ii - 1) / loop.ii);
    } else {
      printf("state-machine (body has control flow)\n");
    }
  }
  printf("\ncycle-by-cycle view:\n");
  for (size_t s = 0; s < sr.stg.num_states(); ++s) {
    const stg::State& st = sr.stg.state(static_cast<int>(s));
    printf("  S%-3zu pi=%.3f reg(r/w)=%d/%d\n", s, pi[s], st.reg_reads,
           st.reg_writes);
    for (const auto& op : st.ops)
      printf("        %-12s on %-6s (iteration +%d)\n", op.label.c_str(),
             op.fu_type.empty() ? "<ctrl>" : op.fu_type.c_str(),
             op.iteration);
  }

  // Datapath binding and the Verilog preview.
  const bind::Binding binding = bind::bind_datapath(sr.stg, lib, alloc);
  printf("\n%s", binding.report(lib).c_str());

  std::ofstream("schedule_viewer_cdfg.dot")
      << cdfg::Cdfg::from_function(fn).dot("cdfg");
  std::ofstream("schedule_viewer_stg.dot") << sr.stg.dot("stg");
  std::ofstream("schedule_viewer.v") << rtl::emit_verilog(fn, sr.stg);
  printf(
      "\nwrote schedule_viewer_cdfg.dot, schedule_viewer_stg.dot and "
      "schedule_viewer.v%s\n",
      sr.rtl_exact ? "" : " (metrics-grade: fused loops present)");
  return 0;
}
