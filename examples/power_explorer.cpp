// Domain example: low-power design-space exploration. Sweeps allocations
// for the SINTRAN sine transform and, for each, runs FACT in power mode —
// the paper's iso-throughput Vdd-scaling flow — reporting the
// power/area trade-off curve a designer would use to pick a datapath.

#include <cstdio>

#include "hlslib/library.hpp"
#include "opt/fact.hpp"
#include "workloads/workloads.hpp"

int main() {
  using namespace fact;
  const workloads::Workload w = workloads::make_sintran();
  const hlslib::Library lib = hlslib::Library::dac98();
  const hlslib::FuSelection sel = hlslib::FuSelection::defaults(lib);

  struct Point {
    const char* label;
    hlslib::Allocation alloc;
  };
  std::vector<Point> sweep;
  {
    hlslib::Allocation lean;
    lean.counts = {{"a1", 1}, {"sb1", 1}, {"mt1", 1}, {"cp1", 1}, {"i1", 1}};
    sweep.push_back({"lean  (1 of each)", lean});
    hlslib::Allocation mid;
    mid.counts = {{"a1", 2}, {"sb1", 2}, {"mt1", 2}, {"cp1", 1}, {"i1", 1}};
    sweep.push_back({"mid   (2 ALUs, 2 mult)", mid});
    sweep.push_back({"paper (Table 3 row)", w.allocation});
  }

  printf("Power-mode exploration on SINTRAN (iso-throughput Vdd scaling)\n");
  printf("%-24s %8s %10s %10s %8s %8s\n", "allocation", "area", "P(M1,5V)",
         "P(FACT)", "Vdd", "saving");
  for (const auto& point : sweep) {
    double area = 0.0;
    for (const auto& [fu, n] : point.alloc.counts)
      area += n * lib.get(fu).area;

    opt::FactOptions fo;
    fo.objective = opt::Objective::Power;
    const opt::FactResult r = opt::run_fact(
        w.fn, lib, point.alloc, sel, w.trace,
        xform::TransformLibrary::standard(), fo);
    printf("%-24s %8.1f %10.3f %10.3f %7.2fV %7.1f%%\n", point.label, area,
           r.initial_power.power, r.final_power.power, r.final_power.vdd,
           100.0 * (1.0 - r.final_power.power / r.initial_power.power));
  }
  printf(
      "\nReading the curve: richer datapaths give the transformed design\n"
      "more slack, which Vdd scaling converts into power savings — the\n"
      "paper's throughput-for-power trade (Example 2's closing remark).\n");
  return 0;
}
