// The paper: "The framework we have developed can, however, easily be
// customized by the addition of user-specified transformations."
//
// This example adds a *strength reduction* transform (x * 2^k -> x << k)
// to the library and lets the schedule-guided search decide where it
// helps: with one multiplier (23ns) but a free shifter (10ns), moving
// multiplies-by-powers-of-two onto the shifter shortens the schedule.

#include <cstdio>

#include "hlslib/library.hpp"
#include "lang/parser.hpp"
#include "opt/fact.hpp"
#include "xform/expr_transform.hpp"

namespace {

using namespace fact;

/// x * 2^k  ->  x << k   (and the mirrored operand order).
class StrengthReduction final : public xform::ExprTransform {
 public:
  std::string name() const override { return "strength"; }

 protected:
  static int log2_exact(int64_t v) {
    if (v <= 0 || (v & (v - 1))) return -1;
    int k = 0;
    while (v > 1) {
      v >>= 1;
      ++k;
    }
    return k;
  }

  std::vector<int> variants_at(const ir::ExprPtr& e,
                               std::optional<ir::Op>) const override {
    if (e->op() != ir::Op::Mul) return {};
    std::vector<int> v;
    if (e->arg(1)->op() == ir::Op::Const &&
        log2_exact(e->arg(1)->value()) >= 0)
      v.push_back(0);
    if (e->arg(0)->op() == ir::Op::Const &&
        log2_exact(e->arg(0)->value()) >= 0)
      v.push_back(1);
    return v;
  }

  ir::ExprPtr rewrite(const ir::ExprPtr& e, int variant) const override {
    const ir::ExprPtr value = variant == 0 ? e->arg(0) : e->arg(1);
    const ir::ExprPtr power = variant == 0 ? e->arg(1) : e->arg(0);
    return ir::Expr::binary(ir::Op::Shl, value,
                            ir::Expr::constant(log2_exact(power->value())));
  }
};

}  // namespace

int main() {
  // Two products with *different* multiplicands: factoring cannot merge
  // them, so with a single multiplier the loop is stuck at II=2 until the
  // user transform moves the power-of-two product onto the shifter.
  const ir::Function behavior = lang::parse_function(R"(
SCALE(int n) {
  input int x[32];
  input int z[32];
  int y[32];
  int i = 0;
  while (i < 24) {
    y[i] = x[i] * 8 + z[i] * 3;
    i = i + 1;
  }
  output i;
}
)");

  const hlslib::Library lib = hlslib::Library::dac98();
  const hlslib::FuSelection sel = hlslib::FuSelection::defaults(lib);
  hlslib::Allocation alloc;
  alloc.counts = {{"a1", 1}, {"mt1", 1}, {"s1", 1}, {"i1", 1}};

  // Library customization: the standard suite plus the user transform.
  xform::TransformLibrary custom = xform::TransformLibrary::standard();
  custom.add(std::make_unique<StrengthReduction>());

  const opt::FactResult with_custom =
      opt::run_fact(behavior, lib, alloc, sel, {}, custom, {});
  const opt::FactResult without =
      opt::run_fact(behavior, lib, alloc, sel, {},
                    xform::TransformLibrary::standard(), {});

  printf("without strength reduction: %.2f cycles\n", without.final_avg_len);
  printf("with strength reduction   : %.2f cycles\n",
         with_custom.final_avg_len);
  printf("\ntransformed behavior:\n%s\n",
         with_custom.optimized.str().c_str());
  printf("transforms applied:\n");
  for (const auto& t : with_custom.applied) printf("  %s\n", t.c_str());
  printf(
      "\nx[i]*8 (now a shift) and z[i]*3 (still a multiply) execute\n"
      "concurrently on different units — the search applied the user\n"
      "transform because rescheduling showed the II dropping.\n");
  return 0;
}
