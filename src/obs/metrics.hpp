#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace fact::obs {

/// Process-wide metrics for the optimizer, scheduler, caches and factd.
///
/// Design constraints, in order:
///  * hot-path cost: Counter::inc() is one relaxed fetch_add on a
///    cache-line-padded stripe private to (a hash of) the calling thread —
///    ~20 ns even when every WorkerPool worker hammers the same counter;
///  * thread safety: all mutation is on std::atomic (TSan-clean); the
///    registry mutex guards registration and snapshotting only, never an
///    increment;
///  * determinism: metrics are write-only from the search path. Nothing in
///    the optimizer ever *reads* a metric to make a decision, so
///    instrumentation cannot perturb the byte-identical determinism
///    contracts (`--jobs N` == `--jobs 1`, factd == factc).
///
/// Values are exact in any serial or properly joined concurrent run:
/// stripes are summed on read, and a read that is not concurrent with
/// writers sees every prior increment (the WorkerPool joins its waves, so
/// the engine's serial reduction always reads settled counts).

/// Monotonic event count. Striped to keep concurrent increments from
/// bouncing one cache line between cores.
class Counter {
 public:
  void inc(uint64_t n = 1) {
    cells_[stripe_index()].v.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const {
    uint64_t total = 0;
    for (const auto& c : cells_) total += c.v.load(std::memory_order_relaxed);
    return total;
  }
  void reset() {
    for (auto& c : cells_) c.v.store(0, std::memory_order_relaxed);
  }

 private:
  static constexpr size_t kStripes = 16;
  struct alignas(64) Cell {
    std::atomic<uint64_t> v{0};
  };
  /// Round-robin stripe assignment, cached per thread: uniform across any
  /// number of threads, no hashing on the hot path.
  static size_t stripe_index();
  std::array<Cell, kStripes> cells_;
};

/// A value that can go up and down (queue depth, cache occupancy).
class Gauge {
 public:
  void set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void add(int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  int64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { set(0); }

 private:
  std::atomic<int64_t> v_{0};
};

/// Fixed-bucket histogram (Prometheus-style cumulative `le` buckets on
/// export; stored per-bucket internally). Bucket i counts observations
/// v <= bounds[i] that no earlier bucket took; the implicit last bucket
/// is +Inf. Bounds are fixed at registration.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);
  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket (non-cumulative) counts; size() == bounds().size() + 1,
  /// the last entry being the +Inf bucket.
  std::vector<uint64_t> bucket_counts() const;
  uint64_t count() const;
  double sum() const;
  void reset();

 private:
  std::vector<double> bounds_;  // strictly increasing
  std::unique_ptr<std::atomic<uint64_t>[]> counts_;  // bounds_.size() + 1
  std::atomic<uint64_t> sum_bits_{0};  // bit pattern of a double, CAS-added
};

/// One metric's point-in-time value, as captured by Registry::snapshot().
struct MetricSnapshot {
  enum class Kind { Counter, Gauge, Histogram };
  std::string name;
  std::string help;
  Kind kind = Kind::Counter;
  uint64_t counter_value = 0;            // Kind::Counter
  int64_t gauge_value = 0;               // Kind::Gauge
  std::vector<double> bounds;            // Kind::Histogram
  std::vector<uint64_t> bucket_counts;   // per bucket + +Inf
  uint64_t count = 0;
  double sum = 0.0;
};

struct Snapshot {
  std::vector<MetricSnapshot> metrics;  // sorted by name
};

/// Name-keyed registry of metrics with stable addresses: callers register
/// once (typically through a function-local static reference) and then
/// touch the returned metric lock-free forever. Re-registering a name
/// returns the existing metric; registering it as a different kind throws
/// fact::Error. Most code uses the process-wide Registry::global();
/// separate instances exist so tests can exercise export formats against a
/// registry nothing else writes to.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  static Registry& global();

  Counter& counter(const std::string& name, const std::string& help = "");
  Gauge& gauge(const std::string& name, const std::string& help = "");
  /// Bounds must be strictly increasing and non-empty; on re-registration
  /// the original bounds win and the new ones are ignored.
  Histogram& histogram(const std::string& name, std::vector<double> bounds,
                       const std::string& help = "");

  /// Point-in-time copy of every metric, sorted by name. Concurrent
  /// increments may or may not be included (relaxed reads), but the
  /// snapshot never tears a single counter below a value it already read.
  Snapshot snapshot() const;

  /// Zeroes every metric (registrations and addresses survive). Benches
  /// call this so their exported snapshot covers exactly their own run.
  void reset();

  size_t size() const;

 private:
  struct Entry {
    MetricSnapshot::Kind kind;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;  // sorted => deterministic export
};

/// Prometheus text exposition (format 0.0.4): HELP/TYPE preamble per
/// metric, cumulative `le` buckets plus _sum/_count for histograms.
/// Deterministic: metrics in name order, integers rendered as integers.
std::string to_prometheus(const Snapshot& snap);

/// The same snapshot as one JSON object keyed by metric name; counters and
/// gauges map to numbers, histograms to {"buckets":[[le,count],...],
/// "sum":s,"count":n}. Parseable by serve::Json; deterministic.
std::string to_json(const Snapshot& snap);

}  // namespace fact::obs
