#include "obs/trace.hpp"

#include <chrono>
#include <cmath>
#include <fstream>

#include "util/error.hpp"
#include "util/strfmt.hpp"

namespace fact::obs {

uint64_t SteadyClock::now_ns() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

int current_thread_id() {
  static std::atomic<int> next{0};
  thread_local const int id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

// ---- Tracer --------------------------------------------------------------

Tracer::Tracer(const Clock* clock) : clock_(clock ? clock : &default_clock_) {
  epoch_ns_ = clock_->now_ns();
}

void Tracer::complete(
    std::string name, const char* cat, uint64_t start_ns, uint64_t end_ns,
    std::vector<std::pair<std::string, std::string>> args_json) {
  Event e;
  e.name = std::move(name);
  e.cat = cat;
  e.phase = 'X';
  e.ts_ns = start_ns >= epoch_ns_ ? start_ns - epoch_ns_ : 0;
  e.dur_ns = end_ns >= start_ns ? end_ns - start_ns : 0;
  e.tid = current_thread_id();
  e.args = std::move(args_json);
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(e));
}

void Tracer::instant(std::string name, const char* cat) {
  Event e;
  e.name = std::move(name);
  e.cat = cat;
  e.phase = 'i';
  const uint64_t now = clock_->now_ns();
  e.ts_ns = now >= epoch_ns_ ? now - epoch_ns_ : 0;
  e.dur_ns = 0;
  e.tid = current_thread_id();
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(e));
}

size_t Tracer::event_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
}

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += strfmt("\\u%04x", c);
    } else {
      out += c;
    }
  }
  return out;
}

/// Chrome trace timestamps are microseconds; keep nanosecond resolution
/// with three decimals, trimmed of a trailing ".000" so whole-µs values
/// (the ManualClock tests) render as plain integers.
std::string render_us(uint64_t ns) {
  std::string s = strfmt("%llu.%03llu",
                         static_cast<unsigned long long>(ns / 1000),
                         static_cast<unsigned long long>(ns % 1000));
  if (s.size() >= 4 && s.compare(s.size() - 4, 4, ".000") == 0)
    s.resize(s.size() - 4);
  return s;
}

}  // namespace

std::string Tracer::chrome_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const Event& e : events_) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"" + json_escape(e.name) + "\"";
    out += ",\"cat\":\"" + json_escape(e.cat) + "\"";
    out += strfmt(",\"ph\":\"%c\"", e.phase);
    out += ",\"ts\":" + render_us(e.ts_ns);
    if (e.phase == 'X') out += ",\"dur\":" + render_us(e.dur_ns);
    if (e.phase == 'i') out += ",\"s\":\"t\"";
    out += strfmt(",\"pid\":1,\"tid\":%d", e.tid);
    if (!e.args.empty()) {
      out += ",\"args\":{";
      for (size_t i = 0; i < e.args.size(); ++i) {
        if (i) out += ",";
        out += "\"" + json_escape(e.args[i].first) + "\":" + e.args[i].second;
      }
      out += "}";
    }
    out += "}";
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

void Tracer::write(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw Error("cannot write " + path);
  out << chrome_json() << "\n";
}

// ---- global tracer -------------------------------------------------------

namespace {
std::atomic<Tracer*> g_tracer{nullptr};
}  // namespace

Tracer* tracer() { return g_tracer.load(std::memory_order_relaxed); }
void set_tracer(Tracer* t) { g_tracer.store(t, std::memory_order_relaxed); }

// ---- Span ----------------------------------------------------------------

void Span::arg(const char* key, const std::string& value) {
  if (!tracer_) return;
  args_.emplace_back(key, "\"" + json_escape(value) + "\"");
}

void Span::arg(const char* key, const char* value) {
  arg(key, std::string(value));
}

void Span::arg(const char* key, int64_t value) {
  if (!tracer_) return;
  args_.emplace_back(key, strfmt("%lld", static_cast<long long>(value)));
}

void Span::arg(const char* key, double value) {
  if (!tracer_) return;
  if (std::isfinite(value) && value == std::floor(value) &&
      std::fabs(value) < 9.0e15) {
    arg(key, static_cast<int64_t>(value));
    return;
  }
  args_.emplace_back(key, strfmt("%.6g", value));
}

void Span::arg(const char* key, bool value) {
  if (!tracer_) return;
  args_.emplace_back(key, value ? "true" : "false");
}

void Span::finish() {
  if (!tracer_) return;
  Tracer* t = tracer_;
  tracer_ = nullptr;
  t->complete(name_, cat_, start_ns_, t->now_ns(), std::move(args_));
}

}  // namespace fact::obs
