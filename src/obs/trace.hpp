#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace fact::obs {

/// Span tracing with explicit clock injection, emitting Chrome
/// trace-event JSON (loads in Perfetto / chrome://tracing).
///
/// Determinism: the tracer never feeds anything back into the code it
/// observes — spans are write-only, and every timestamp comes from the
/// injected Clock, never an ad-hoc wall read inside the instrumented
/// (determinism-checked) path. Tests drive a ManualClock so the emitted
/// JSON itself is byte-deterministic; production uses the steady clock.
///
/// Zero-cost-when-disabled: instrumented code asks `obs::tracer()` (one
/// relaxed atomic load) and constructs a Span only against a non-null,
/// enabled tracer; with no tracer installed a Span is an empty struct and
/// every method is an inline no-op.

/// Time source. now_ns() must be monotonic; it is called from worker
/// threads concurrently.
class Clock {
 public:
  virtual ~Clock() = default;
  virtual uint64_t now_ns() const = 0;
};

/// std::chrono::steady_clock — the production clock.
class SteadyClock : public Clock {
 public:
  uint64_t now_ns() const override;
};

/// Hand-advanced clock for deterministic tests.
class ManualClock : public Clock {
 public:
  uint64_t now_ns() const override {
    return ns_.load(std::memory_order_relaxed);
  }
  void set(uint64_t ns) { ns_.store(ns, std::memory_order_relaxed); }
  void advance(uint64_t d) { ns_.fetch_add(d, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> ns_{0};
};

/// Small stable integer id for the calling thread (dense, assigned on
/// first use); becomes the Chrome trace "tid".
int current_thread_id();

/// Collects trace events; thread-safe (spans end on worker threads).
/// Timestamps are relative to construction, so a trace always starts near
/// t=0 whatever the clock's epoch.
class Tracer {
 public:
  /// `clock` is borrowed and must outlive the tracer; null uses a
  /// built-in SteadyClock.
  explicit Tracer(const Clock* clock = nullptr);

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  uint64_t now_ns() const { return clock_->now_ns(); }

  /// Records one complete ("ph":"X") event. `args_json` holds key →
  /// pre-rendered JSON value (already quoted/escaped for strings).
  void complete(std::string name, const char* cat, uint64_t start_ns,
                uint64_t end_ns,
                std::vector<std::pair<std::string, std::string>> args_json);
  /// Records an instant ("ph":"i") event.
  void instant(std::string name, const char* cat);

  size_t event_count() const;
  void clear();

  /// {"traceEvents":[...],"displayTimeUnit":"ms"} — the Chrome trace
  /// format, directly loadable in Perfetto.
  std::string chrome_json() const;
  void write(const std::string& path) const;  // throws fact::Error

 private:
  struct Event {
    std::string name;
    const char* cat;
    char phase;
    uint64_t ts_ns;
    uint64_t dur_ns;
    int tid;
    std::vector<std::pair<std::string, std::string>> args;
  };

  const Clock* clock_;
  SteadyClock default_clock_;
  uint64_t epoch_ns_;
  std::atomic<bool> enabled_{true};
  mutable std::mutex mu_;
  std::vector<Event> events_;
};

/// The process-wide tracer, or null when tracing is off (the default).
/// `factc --trace-out` installs one around the optimization run.
Tracer* tracer();
void set_tracer(Tracer* t);

/// RAII span: records a complete event covering its lifetime. A Span
/// constructed against a null or disabled tracer does nothing at all.
class Span {
 public:
  Span() = default;
  Span(Tracer* t, const char* name, const char* cat = "fact")
      : tracer_(t && t->enabled() ? t : nullptr), name_(name), cat_(cat) {
    if (tracer_) start_ns_ = tracer_->now_ns();
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  Span(Span&& o) noexcept { *this = std::move(o); }
  Span& operator=(Span&& o) noexcept {
    finish();
    tracer_ = o.tracer_;
    name_ = o.name_;
    cat_ = o.cat_;
    start_ns_ = o.start_ns_;
    args_ = std::move(o.args_);
    o.tracer_ = nullptr;
    return *this;
  }
  ~Span() { finish(); }

  /// Annotations, rendered into the event's "args" object.
  void arg(const char* key, const std::string& value);
  void arg(const char* key, const char* value);
  void arg(const char* key, int64_t value);
  void arg(const char* key, int value) { arg(key, static_cast<int64_t>(value)); }
  void arg(const char* key, size_t value) {
    arg(key, static_cast<int64_t>(value));
  }
  void arg(const char* key, double value);
  void arg(const char* key, bool value);

  /// Ends the span now (idempotent; the destructor calls it too).
  void finish();

 private:
  Tracer* tracer_ = nullptr;
  const char* name_ = "";
  const char* cat_ = "";
  uint64_t start_ns_ = 0;
  std::vector<std::pair<std::string, std::string>> args_;
};

/// Convenience: a span on the process-wide tracer (no-op when none).
inline Span span(const char* name, const char* cat = "fact") {
  return Span(tracer(), name, cat);
}

}  // namespace fact::obs
