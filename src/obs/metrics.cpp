#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "util/error.hpp"
#include "util/strfmt.hpp"

namespace fact::obs {

// ---- Counter -------------------------------------------------------------

size_t Counter::stripe_index() {
  static std::atomic<size_t> next{0};
  thread_local const size_t idx =
      next.fetch_add(1, std::memory_order_relaxed) % kStripes;
  return idx;
}

// ---- Histogram -----------------------------------------------------------

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  if (bounds_.empty())
    throw Error("histogram needs at least one bucket bound");
  for (size_t i = 1; i < bounds_.size(); ++i)
    if (!(bounds_[i - 1] < bounds_[i]))
      throw Error("histogram bounds must be strictly increasing");
  counts_ = std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) counts_[i].store(0);
}

void Histogram::observe(double v) {
  // First bound >= v (le semantics); past the last bound lands in +Inf.
  const size_t i = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  counts_[i].fetch_add(1, std::memory_order_relaxed);
  uint64_t old_bits = sum_bits_.load(std::memory_order_relaxed);
  for (;;) {
    double old_sum;
    std::memcpy(&old_sum, &old_bits, sizeof old_sum);
    const double new_sum = old_sum + v;
    uint64_t new_bits;
    std::memcpy(&new_bits, &new_sum, sizeof new_bits);
    if (sum_bits_.compare_exchange_weak(old_bits, new_bits,
                                        std::memory_order_relaxed))
      return;
  }
}

std::vector<uint64_t> Histogram::bucket_counts() const {
  std::vector<uint64_t> out(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i)
    out[i] = counts_[i].load(std::memory_order_relaxed);
  return out;
}

uint64_t Histogram::count() const {
  uint64_t n = 0;
  for (size_t i = 0; i <= bounds_.size(); ++i)
    n += counts_[i].load(std::memory_order_relaxed);
  return n;
}

double Histogram::sum() const {
  const uint64_t bits = sum_bits_.load(std::memory_order_relaxed);
  double s;
  std::memcpy(&s, &bits, sizeof s);
  return s;
}

void Histogram::reset() {
  for (size_t i = 0; i <= bounds_.size(); ++i)
    counts_[i].store(0, std::memory_order_relaxed);
  sum_bits_.store(0, std::memory_order_relaxed);
}

// ---- Registry ------------------------------------------------------------

Registry& Registry::global() {
  static Registry* g = new Registry();  // leaked: outlives static teardown
  return *g;
}

Counter& Registry::counter(const std::string& name, const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    Entry e;
    e.kind = MetricSnapshot::Kind::Counter;
    e.help = help;
    e.counter = std::make_unique<Counter>();
    it = entries_.emplace(name, std::move(e)).first;
  } else if (it->second.kind != MetricSnapshot::Kind::Counter) {
    throw Error("metric '" + name + "' already registered as a non-counter");
  }
  return *it->second.counter;
}

Gauge& Registry::gauge(const std::string& name, const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    Entry e;
    e.kind = MetricSnapshot::Kind::Gauge;
    e.help = help;
    e.gauge = std::make_unique<Gauge>();
    it = entries_.emplace(name, std::move(e)).first;
  } else if (it->second.kind != MetricSnapshot::Kind::Gauge) {
    throw Error("metric '" + name + "' already registered as a non-gauge");
  }
  return *it->second.gauge;
}

Histogram& Registry::histogram(const std::string& name,
                               std::vector<double> bounds,
                               const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    Entry e;
    e.kind = MetricSnapshot::Kind::Histogram;
    e.help = help;
    e.histogram = std::make_unique<Histogram>(std::move(bounds));
    it = entries_.emplace(name, std::move(e)).first;
  } else if (it->second.kind != MetricSnapshot::Kind::Histogram) {
    throw Error("metric '" + name + "' already registered as a non-histogram");
  }
  return *it->second.histogram;
}

Snapshot Registry::snapshot() const {
  Snapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  snap.metrics.reserve(entries_.size());
  for (const auto& [name, e] : entries_) {
    MetricSnapshot m;
    m.name = name;
    m.help = e.help;
    m.kind = e.kind;
    switch (e.kind) {
      case MetricSnapshot::Kind::Counter:
        m.counter_value = e.counter->value();
        break;
      case MetricSnapshot::Kind::Gauge:
        m.gauge_value = e.gauge->value();
        break;
      case MetricSnapshot::Kind::Histogram:
        m.bounds = e.histogram->bounds();
        m.bucket_counts = e.histogram->bucket_counts();
        m.count = 0;
        for (uint64_t c : m.bucket_counts) m.count += c;
        m.sum = e.histogram->sum();
        break;
    }
    snap.metrics.push_back(std::move(m));
  }
  return snap;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, e] : entries_) {
    (void)name;
    switch (e.kind) {
      case MetricSnapshot::Kind::Counter: e.counter->reset(); break;
      case MetricSnapshot::Kind::Gauge: e.gauge->reset(); break;
      case MetricSnapshot::Kind::Histogram: e.histogram->reset(); break;
    }
  }
}

size_t Registry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

// ---- export --------------------------------------------------------------

namespace {

/// Deterministic number rendering shared by both exporters: integral
/// values print as integers, everything else as shortest %.17g that still
/// round-trips (matches serve::Json's convention).
std::string render_double(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 9.0e15)
    return strfmt("%lld", static_cast<long long>(v));
  for (int prec = 1; prec <= 17; ++prec) {
    std::string s = strfmt("%.*g", prec, v);
    if (std::stod(s) == v) return s;
  }
  return strfmt("%.17g", v);
}

std::string render_le(double bound) { return render_double(bound); }

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += strfmt("\\u%04x", c);
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

std::string to_prometheus(const Snapshot& snap) {
  std::string out;
  for (const MetricSnapshot& m : snap.metrics) {
    if (!m.help.empty())
      out += "# HELP " + m.name + " " + m.help + "\n";
    switch (m.kind) {
      case MetricSnapshot::Kind::Counter:
        out += "# TYPE " + m.name + " counter\n";
        out += m.name + " " + strfmt("%llu", static_cast<unsigned long long>(
                                                 m.counter_value)) +
               "\n";
        break;
      case MetricSnapshot::Kind::Gauge:
        out += "# TYPE " + m.name + " gauge\n";
        out += m.name + " " +
               strfmt("%lld", static_cast<long long>(m.gauge_value)) + "\n";
        break;
      case MetricSnapshot::Kind::Histogram: {
        out += "# TYPE " + m.name + " histogram\n";
        uint64_t cum = 0;
        for (size_t i = 0; i < m.bounds.size(); ++i) {
          cum += m.bucket_counts[i];
          out += m.name + "_bucket{le=\"" + render_le(m.bounds[i]) + "\"} " +
                 strfmt("%llu", static_cast<unsigned long long>(cum)) + "\n";
        }
        cum += m.bucket_counts.back();
        out += m.name + "_bucket{le=\"+Inf\"} " +
               strfmt("%llu", static_cast<unsigned long long>(cum)) + "\n";
        out += m.name + "_sum " + render_double(m.sum) + "\n";
        out += m.name + "_count " +
               strfmt("%llu", static_cast<unsigned long long>(cum)) + "\n";
        break;
      }
    }
  }
  return out;
}

std::string to_json(const Snapshot& snap) {
  std::string out = "{";
  bool first = true;
  for (const MetricSnapshot& m : snap.metrics) {
    if (!first) out += ",";
    first = false;
    out += "\"" + json_escape(m.name) + "\":";
    switch (m.kind) {
      case MetricSnapshot::Kind::Counter:
        out += strfmt("%llu", static_cast<unsigned long long>(m.counter_value));
        break;
      case MetricSnapshot::Kind::Gauge:
        out += strfmt("%lld", static_cast<long long>(m.gauge_value));
        break;
      case MetricSnapshot::Kind::Histogram: {
        out += "{\"buckets\":[";
        for (size_t i = 0; i < m.bounds.size(); ++i) {
          if (i) out += ",";
          out += "[" + render_double(m.bounds[i]) + "," +
                 strfmt("%llu",
                        static_cast<unsigned long long>(m.bucket_counts[i])) +
                 "]";
        }
        out += "],\"inf\":" +
               strfmt("%llu",
                      static_cast<unsigned long long>(m.bucket_counts.back()));
        out += ",\"sum\":" + render_double(m.sum);
        out += ",\"count\":" +
               strfmt("%llu", static_cast<unsigned long long>(m.count)) + "}";
        break;
      }
    }
  }
  out += "}";
  return out;
}

}  // namespace fact::obs
