#pragma once

#include <set>
#include <string>
#include <vector>

#include "hlslib/library.hpp"
#include "ir/function.hpp"
#include "stg/stg.hpp"
#include "util/error.hpp"

namespace fact::verify {

/// How much checking the optimization pipeline performs per candidate.
///  * Off:  no checking beyond trace equivalence (legacy behavior).
///  * Fast: linear-time structural IR checks — enough to catch every
///    malformed rewrite before it reaches the scheduler.
///  * Full: Fast plus schedule legality (per-state resource bounds vs. the
///    allocation, wire dataflow consistency) on every evaluated candidate.
enum class Level { Off, Fast, Full };

/// Parses "off" / "fast" / "full"; throws fact::Error otherwise.
Level level_from_string(const std::string& s);
const char* to_string(Level level);

/// One violated invariant. `check` is a stable machine-readable name
/// (e.g. "ir.stmt-id-unique"); `detail` is the human diagnostic.
struct Issue {
  std::string check;
  std::string detail;
};

struct Report {
  std::vector<Issue> issues;

  bool ok() const { return issues.empty(); }
  /// Multi-line rendering of every issue ("<check>: <detail>").
  std::string str() const;
  /// The first issue's check name, or "" when ok.
  std::string first_check() const {
    return issues.empty() ? std::string() : issues.front().check;
  }
};

/// Thrown by check_or_throw; carries the full report so callers (the
/// transform engine's quarantine path) can classify the failure.
class VerifyError : public Error {
 public:
  explicit VerifyError(Report r);
  const Report& report() const { return report_; }

 private:
  Report report_;
};

void check_or_throw(const Report& r);

/// Scalars that some execution path can read before any definition (and
/// that are not parameters). Hardware reads such registers as 0, so this
/// is legal — but a *transform* must never enlarge the set: a rewrite
/// introducing a fresh read-before-def variable has fabricated a value.
/// Computed by a must-define forward analysis over the IR.
std::set<std::string> undefined_reads(const ir::Function& fn);

/// Deep IR invariant checks, far beyond ir::Function::validate():
///  * statement shape per kind (slots present/absent, non-null children);
///  * statement-id uniqueness and assignment (no id < 0);
///  * expression well-formedness (op arity, non-null args, named leaves);
///  * array discipline (declared arrays, scalar/array namespace split,
///    duplicate declarations, zero sizes, outputs are scalars);
///  * guard exclusion: the two branches of an If must cover disjoint
///    statement-id sets (an id aliased across branches corrupts profile
///    keys and region mapping, and breaks guard mutual exclusion);
///  * def-before-use, *differentially*: when `undef_allowed` is non-null,
///    any read-before-def variable outside that set is an error (pass the
///    baseline function's undefined_reads()); when null the check is
///    skipped, since reading a never-written register as 0 is legal.
Report verify_function(const ir::Function& fn, Level level = Level::Full,
                       const std::set<std::string>* undef_allowed = nullptr);

/// STG structural checks beyond Stg::validate():
///  * edge endpoints in range, out-edge lists exactly consistent with the
///    edge table (every edge indexed once, from-state matches);
///  * probabilities within [0,1], per-state sums equal to 1;
///  * entry in range, all states reachable, an execution boundary exists;
///  * deterministic out-edges: a state with more than one successor must
///    expose a steering signal (cond_signal), otherwise the controller
///    cannot implement the transition.
Report verify_stg(const stg::Stg& stg, Level level = Level::Full);

/// Schedule legality of `stg` as a schedule of `fn` under `alloc`:
///  * per-state resource bounds: per FU type, concurrent ops never exceed
///    the allocation; per array, concurrent memory ops never exceed the
///    single memory port;
///  * every op's stmt_id refers to a statement of `fn`;
///  * wire dataflow: every op has a result wire, no wire is driven twice
///    within one state, every wire operand has a producer somewhere in
///    the STG, and a chained consumer whose operand is produced only in
///    its own (non-ring) state appears after the producer. (Pipelined
///    prologue/ring/drain states and fused hyperperiod slots legally
///    re-materialize one op — and its wire — in several states, and
///    kernel rings read the previous traversal's wires, so cross-state
///    definitions are not errors.)
Report verify_schedule(const ir::Function& fn, const stg::Stg& stg,
                       const hlslib::Library& lib,
                       const hlslib::Allocation& alloc,
                       Level level = Level::Full);

}  // namespace fact::verify
