#pragma once

#include <map>
#include <set>
#include <vector>

#include "util/rng.hpp"
#include "xform/transform.hpp"

namespace fact::verify {

/// The corruption classes the injector can emit. Each class is caught by a
/// specific layer of the guarded pipeline:
///  * WrongSemantics  — observable behavior change; caught by the trace
///    equivalence check (the corruption mutates an array cell or adds an
///    output, so it is visible on every trace).
///  * ThrowException  — apply() throws a plain std::exception (not
///    fact::Error); caught by the engine's transactional wrapper.
///  * DuplicateStmtId — two statements share an id; caught by the
///    verifier's ir.stmt-id-unique check.
///  * EmptyLoopBody   — a While loses its body; caught by ir.empty-loop.
///  * UndeclaredArray — a read of a nonexistent array; caught by ir.arrays.
///  * UndefinedRead   — a fresh read-before-def variable; caught by the
///    differential ir.def-before-use check.
enum class FaultClass {
  WrongSemantics,
  ThrowException,
  DuplicateStmtId,
  EmptyLoopBody,
  UndeclaredArray,
  UndefinedRead,
};

const char* to_string(FaultClass c);

/// All classes, in a fixed order (for tests that sweep them).
std::vector<FaultClass> all_fault_classes();

struct FaultInjectorOptions {
  double rate = 0.0;             // probability an apply() call is corrupted
  uint64_t seed = 1;             // deterministic injection stream
  std::set<FaultClass> classes;  // empty = all classes enabled
};

/// A seeded fault-injection harness wrapping a transformation library:
/// find_all() passes through; apply() first performs the real rewrite,
/// then — at the configured rate — corrupts the result (or throws) with a
/// deterministically chosen corruption class. Every corruption is made
/// textually unique (a fresh counter is baked into it) so the engine's
/// structural dedup can never silently swallow an injected fault; the
/// per-class injection counts therefore match the engine's quarantine
/// accounting exactly.
///
/// A corruption class that cannot be applied to a particular function
/// (e.g. EmptyLoopBody with no loops) falls through to the next enabled
/// class; if none applies, the real rewrite is returned and nothing is
/// counted.
class FaultInjector : public xform::TransformLibrary {
 public:
  FaultInjector(const xform::TransformLibrary& inner,
                FaultInjectorOptions opts);

  std::vector<xform::Candidate> find_all(
      const ir::Function& fn, const std::set<int>& region) const override;
  ir::Function apply(const ir::Function& fn,
                     const xform::Candidate& c) const override;

  /// How many faults of each class were actually injected.
  int injected(FaultClass c) const;
  int injected_total() const;
  const std::map<FaultClass, int>& injected_by_class() const {
    return injected_;
  }

 private:
  /// Applies `cls` to `g` in place; returns false if the class does not
  /// apply to this function. May throw (ThrowException class).
  bool corrupt(ir::Function& g, FaultClass cls) const;

  const xform::TransformLibrary& inner_;
  FaultInjectorOptions opts_;
  std::vector<FaultClass> enabled_;
  mutable Rng rng_;
  mutable std::map<FaultClass, int> injected_;
  mutable int counter_ = 0;  // bakes uniqueness into every corruption
};

}  // namespace fact::verify
