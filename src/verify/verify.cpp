#include "verify/verify.hpp"

#include <algorithm>
#include <map>
#include <queue>
#include <unordered_map>
#include <unordered_set>

#include "util/strfmt.hpp"

namespace fact::verify {

namespace {

void add(Report& r, const char* check, std::string detail) {
  r.issues.push_back(Issue{check, std::move(detail)});
}

}  // namespace

Level level_from_string(const std::string& s) {
  if (s == "off") return Level::Off;
  if (s == "fast") return Level::Fast;
  if (s == "full") return Level::Full;
  throw Error("bad validation level '" + s + "' (want off|fast|full)");
}

const char* to_string(Level level) {
  switch (level) {
    case Level::Off: return "off";
    case Level::Fast: return "fast";
    case Level::Full: return "full";
  }
  return "?";
}

std::string Report::str() const {
  std::string out;
  for (const Issue& i : issues) {
    if (!out.empty()) out += "\n";
    out += i.check + ": " + i.detail;
  }
  return out;
}

VerifyError::VerifyError(Report r)
    : Error(r.ok() ? "verification passed" : r.str()), report_(std::move(r)) {}

void check_or_throw(const Report& r) {
  if (!r.ok()) throw VerifyError(r);
}

// ---------------------------------------------------------------------------
// IR checks
// ---------------------------------------------------------------------------

namespace {

/// Checks one expression tree: non-null nodes/args, op arity, named leaves,
/// and the scalar/array namespace split.
void check_expr(Report& r, const ir::ExprPtr& e, int stmt_id,
                const std::set<std::string>& arrays) {
  if (!e) {
    add(r, "ir.expr-null", strfmt("statement %d holds a null expression", stmt_id));
    return;
  }
  bool has_null_arg = false;
  for (const auto& a : e->args())
    if (!a) has_null_arg = true;
  if (has_null_arg) {
    add(r, "ir.expr-null",
        strfmt("statement %d: '%s' node has a null operand", stmt_id,
               ir::op_token(e->op())));
    return;  // cannot recurse safely
  }
  const int want = ir::op_arity(e->op());
  if (want >= 0 && static_cast<int>(e->num_args()) != want)
    add(r, "ir.expr-arity",
        strfmt("statement %d: '%s' node has %zu operand(s), expected %d",
               stmt_id, ir::op_token(e->op()), e->num_args(), want));
  switch (e->op()) {
    case ir::Op::Var:
      if (e->name().empty())
        add(r, "ir.expr-name", strfmt("statement %d: unnamed Var node", stmt_id));
      else if (arrays.count(e->name()))
        add(r, "ir.arrays",
            strfmt("statement %d: array '%s' read as a scalar", stmt_id,
                   e->name().c_str()));
      break;
    case ir::Op::ArrayRead:
      if (e->name().empty())
        add(r, "ir.expr-name",
            strfmt("statement %d: unnamed ArrayRead node", stmt_id));
      else if (!arrays.count(e->name()))
        add(r, "ir.arrays",
            strfmt("statement %d: read of undeclared array '%s'", stmt_id,
                   e->name().c_str()));
      break;
    default:
      break;
  }
  for (const auto& a : e->args()) check_expr(r, a, stmt_id, arrays);
}

/// Statement shape: per kind, the right slots must be present and the
/// others empty; child lists must hold no null statements.
void check_stmt_shape(Report& r, const ir::Stmt& s,
                      const std::set<std::string>& arrays) {
  auto null_child = [&](const std::vector<ir::StmtPtr>& list) {
    for (const auto& c : list)
      if (!c) return true;
    return false;
  };
  if (null_child(s.then_stmts) || null_child(s.else_stmts) ||
      null_child(s.stmts)) {
    add(r, "ir.stmt-null",
        strfmt("statement %d holds a null child statement", s.id));
    return;
  }
  switch (s.kind) {
    case ir::StmtKind::Assign:
      if (s.target.empty())
        add(r, "ir.shape", strfmt("assign %d has no target", s.id));
      else if (arrays.count(s.target))
        add(r, "ir.arrays",
            strfmt("assign %d writes array name '%s' as a scalar", s.id,
                   s.target.c_str()));
      if (!s.value)
        add(r, "ir.shape", strfmt("assign %d has no value", s.id));
      if (s.index || s.cond || !s.then_stmts.empty() || !s.else_stmts.empty() ||
          !s.stmts.empty())
        add(r, "ir.shape", strfmt("assign %d carries extraneous slots", s.id));
      break;
    case ir::StmtKind::Store:
      if (!arrays.count(s.target))
        add(r, "ir.arrays",
            strfmt("store %d targets undeclared array '%s'", s.id,
                   s.target.c_str()));
      if (!s.index || !s.value)
        add(r, "ir.shape", strfmt("store %d misses index or value", s.id));
      if (s.cond || !s.then_stmts.empty() || !s.else_stmts.empty() ||
          !s.stmts.empty())
        add(r, "ir.shape", strfmt("store %d carries extraneous slots", s.id));
      break;
    case ir::StmtKind::If:
      if (!s.cond) add(r, "ir.shape", strfmt("if %d has no condition", s.id));
      if (!s.stmts.empty())
        add(r, "ir.shape", strfmt("if %d carries a block list", s.id));
      break;
    case ir::StmtKind::While:
      if (!s.cond)
        add(r, "ir.shape", strfmt("while %d has no condition", s.id));
      if (s.then_stmts.empty())
        add(r, "ir.empty-loop", strfmt("while %d has an empty body", s.id));
      if (!s.else_stmts.empty() || !s.stmts.empty())
        add(r, "ir.shape", strfmt("while %d carries extraneous lists", s.id));
      break;
    case ir::StmtKind::Block:
      if (s.cond || s.value || s.index || !s.then_stmts.empty() ||
          !s.else_stmts.empty())
        add(r, "ir.shape", strfmt("block %d carries extraneous slots", s.id));
      break;
  }
}

/// Collects the statement ids of a subtree list.
void collect_ids(const std::vector<ir::StmtPtr>& list, std::set<int>& out) {
  for (const auto& s : list) {
    if (!s) continue;
    out.insert(s->id);
    collect_ids(s->then_stmts, out);
    collect_ids(s->else_stmts, out);
    collect_ids(s->stmts, out);
  }
}

/// Scalars read by an expression.
void scalar_reads(const ir::ExprPtr& e, std::set<std::string>& out) {
  if (!e) return;
  ir::for_each_node(e, [&](const ir::ExprPtr& n) {
    if (n->op() == ir::Op::Var) out.insert(n->name());
  });
}

/// Must-define forward analysis: walks a statement list with the set of
/// variables surely defined on entry; records reads outside the set.
void undef_walk(const std::vector<ir::StmtPtr>& list,
                std::set<std::string>& defined, std::set<std::string>& undef) {
  auto note_reads = [&](const ir::ExprPtr& e) {
    std::set<std::string> reads;
    scalar_reads(e, reads);
    for (const auto& v : reads)
      if (!defined.count(v)) undef.insert(v);
  };
  for (const auto& s : list) {
    if (!s) continue;
    switch (s->kind) {
      case ir::StmtKind::Assign:
        note_reads(s->value);
        defined.insert(s->target);
        break;
      case ir::StmtKind::Store:
        note_reads(s->index);
        note_reads(s->value);
        break;
      case ir::StmtKind::If: {
        note_reads(s->cond);
        std::set<std::string> then_def = defined;
        std::set<std::string> else_def = defined;
        undef_walk(s->then_stmts, then_def, undef);
        undef_walk(s->else_stmts, else_def, undef);
        std::set<std::string> both;
        std::set_intersection(then_def.begin(), then_def.end(),
                              else_def.begin(), else_def.end(),
                              std::inserter(both, both.begin()));
        defined = std::move(both);
        break;
      }
      case ir::StmtKind::While: {
        note_reads(s->cond);
        // The body may execute zero times: defs inside do not reach the
        // code after the loop, but they do reach later body statements.
        std::set<std::string> body_def = defined;
        undef_walk(s->then_stmts, body_def, undef);
        break;
      }
      case ir::StmtKind::Block: {
        undef_walk(s->stmts, defined, undef);
        break;
      }
    }
  }
}

}  // namespace

std::set<std::string> undefined_reads(const ir::Function& fn) {
  std::set<std::string> defined(fn.params().begin(), fn.params().end());
  std::set<std::string> undef;
  if (fn.body()) undef_walk(fn.body()->stmts, defined, undef);
  return undef;
}

Report verify_function(const ir::Function& fn, Level level,
                       const std::set<std::string>* undef_allowed) {
  Report r;
  if (level == Level::Off) return r;

  // Declarations.
  std::set<std::string> arrays;
  for (const auto& a : fn.arrays()) {
    if (a.size == 0)
      add(r, "ir.arrays", strfmt("array '%s' has size 0", a.name.c_str()));
    if (!arrays.insert(a.name).second)
      add(r, "ir.arrays", strfmt("duplicate array '%s'", a.name.c_str()));
  }
  std::set<std::string> params(fn.params().begin(), fn.params().end());
  if (params.size() != fn.params().size())
    add(r, "ir.params", "duplicate parameter name");
  for (const auto& p : fn.params())
    if (arrays.count(p))
      add(r, "ir.arrays", strfmt("parameter '%s' collides with an array", p.c_str()));
  for (const auto& o : fn.outputs())
    if (arrays.count(o))
      add(r, "ir.outputs", strfmt("output '%s' must be a scalar", o.c_str()));

  if (!fn.body()) {
    add(r, "ir.shape", "function has no body");
    return r;
  }
  if (fn.body()->kind != ir::StmtKind::Block)
    add(r, "ir.shape", "function body is not a Block");

  // Statement ids, shape, and expression well-formedness.
  std::set<int> seen_ids;
  fn.for_each([&](const ir::Stmt& s) {
    if (s.id < 0)
      add(r, "ir.stmt-id-assigned",
          "a statement has no id (renumber/assign_fresh_ids missed it)");
    else if (!seen_ids.insert(s.id).second)
      add(r, "ir.stmt-id-unique", strfmt("statement id %d appears twice", s.id));
    check_stmt_shape(r, s, arrays);
    for (const auto* slot : s.expr_slots())
      if (*slot) check_expr(r, *slot, s.id, arrays);
  });

  // Guard exclusion: an If's branches must cover disjoint id sets. A
  // statement id reachable under both polarities of one guard breaks the
  // mutual exclusion that cross-basic-block transforms rely on, and makes
  // profile keys ambiguous.
  fn.for_each([&](const ir::Stmt& s) {
    if (s.kind != ir::StmtKind::If) return;
    std::set<int> then_ids, else_ids;
    collect_ids(s.then_stmts, then_ids);
    collect_ids(s.else_stmts, else_ids);
    for (int id : then_ids)
      if (else_ids.count(id))
        add(r, "ir.guard-exclusion",
            strfmt("statement id %d reachable in both branches of if %d", id,
                   s.id));
  });

  // Differential def-before-use.
  if (undef_allowed) {
    for (const auto& v : undefined_reads(fn))
      if (!undef_allowed->count(v))
        add(r, "ir.def-before-use",
            strfmt("transform introduced read-before-def of '%s'", v.c_str()));
  }

  return r;
}

// ---------------------------------------------------------------------------
// STG checks
// ---------------------------------------------------------------------------

Report verify_stg(const stg::Stg& stg, Level level) {
  Report r;
  if (level == Level::Off) return r;

  const auto& states = stg.states();
  const auto& edges = stg.edges();
  if (states.empty()) {
    add(r, "stg.empty", "STG has no states");
    return r;
  }
  if (stg.entry() < 0 || static_cast<size_t>(stg.entry()) >= states.size())
    add(r, "stg.entry", strfmt("entry state %d out of range", stg.entry()));

  // Edge table and out-edge list consistency.
  std::vector<int> indexed(edges.size(), 0);
  for (size_t si = 0; si < states.size(); ++si) {
    for (int ei : states[si].out_edges) {
      if (ei < 0 || static_cast<size_t>(ei) >= edges.size()) {
        add(r, "stg.edges",
            strfmt("state '%s' indexes nonexistent edge %d",
                   states[si].name.c_str(), ei));
        continue;
      }
      indexed[static_cast<size_t>(ei)]++;
      if (edges[static_cast<size_t>(ei)].from != static_cast<int>(si))
        add(r, "stg.edges",
            strfmt("edge %d in out-list of state '%s' but from state %d", ei,
                   states[si].name.c_str(), edges[static_cast<size_t>(ei)].from));
    }
  }
  for (size_t ei = 0; ei < edges.size(); ++ei) {
    const stg::Edge& e = edges[ei];
    if (e.from < 0 || static_cast<size_t>(e.from) >= states.size() ||
        e.to < 0 || static_cast<size_t>(e.to) >= states.size()) {
      add(r, "stg.edges", strfmt("edge %zu has dangling endpoints %d->%d", ei,
                                 e.from, e.to));
      continue;
    }
    if (indexed[ei] != 1)
      add(r, "stg.edges",
          strfmt("edge %zu indexed %d time(s) by out-edge lists", ei, indexed[ei]));
    if (e.prob < -1e-9 || e.prob > 1.0 + 1e-9)
      add(r, "stg.prob", strfmt("edge %zu has probability %g", ei, e.prob));
  }
  if (!r.ok()) return r;  // structure broken; later checks would misreport

  bool has_boundary = false;
  for (size_t si = 0; si < states.size(); ++si) {
    const stg::State& s = states[si];
    if (s.out_edges.empty()) {
      add(r, "stg.edges", strfmt("state '%s' has no outgoing edge", s.name.c_str()));
      continue;
    }
    double sum = 0.0;
    for (int ei : s.out_edges) {
      sum += edges[static_cast<size_t>(ei)].prob;
      if (edges[static_cast<size_t>(ei)].exec_boundary) has_boundary = true;
    }
    if (std::abs(sum - 1.0) > 1e-6)
      add(r, "stg.prob",
          strfmt("state '%s' outgoing probabilities sum to %g", s.name.c_str(),
                 sum));
    // Determinism: more than one successor requires a steering signal the
    // controller can test; probability annotations alone cannot be
    // implemented in hardware.
    if (s.out_edges.size() > 1 && s.cond_signal.empty())
      add(r, "stg.deterministic",
          strfmt("state '%s' has %zu successors but no cond_signal",
                 s.name.c_str(), s.out_edges.size()));
  }
  if (!has_boundary)
    add(r, "stg.boundary", "no execution-boundary edge (no renewal point)");

  // Reachability from entry.
  if (stg.entry() >= 0 && static_cast<size_t>(stg.entry()) < states.size()) {
    std::vector<bool> seen(states.size(), false);
    std::queue<int> work;
    work.push(stg.entry());
    seen[static_cast<size_t>(stg.entry())] = true;
    while (!work.empty()) {
      const int s = work.front();
      work.pop();
      for (int ei : states[static_cast<size_t>(s)].out_edges) {
        const int t = edges[static_cast<size_t>(ei)].to;
        if (!seen[static_cast<size_t>(t)]) {
          seen[static_cast<size_t>(t)] = true;
          work.push(t);
        }
      }
    }
    for (size_t i = 0; i < states.size(); ++i)
      if (!seen[i])
        add(r, "stg.reachable",
            strfmt("state '%s' unreachable from entry", states[i].name.c_str()));
  }

  return r;
}

// ---------------------------------------------------------------------------
// Schedule legality
// ---------------------------------------------------------------------------

Report verify_schedule(const ir::Function& fn, const stg::Stg& stg,
                       const hlslib::Library& lib,
                       const hlslib::Allocation& alloc, Level level) {
  Report r;
  if (level == Level::Off) return r;
  (void)lib;

  const std::set<int> ids = fn.stmt_ids();

  // Pass 1: collect wire definition sites. A pipelined loop legitimately
  // materializes one op (one wire) into its prologue, kernel-ring, and
  // drain states, and a fused phase repeats an op across its hyperperiod
  // slots — so a wire may be defined in several states. What is never
  // legal is the same wire defined twice within one state (two ops would
  // drive one net in the same cycle), or an op without a result wire.
  std::unordered_map<std::string, std::vector<int>> wire_def_states;
  for (size_t si = 0; si < stg.num_states(); ++si) {
    std::unordered_set<std::string> in_state;
    for (const stg::OpInstance& op : stg.state(static_cast<int>(si)).ops) {
      if (op.value_name.empty()) {
        add(r, "sched.wires",
            strfmt("state '%s': op '%s' has no result wire",
                   stg.state(static_cast<int>(si)).name.c_str(),
                   op.label.c_str()));
        continue;
      }
      if (!in_state.insert(op.value_name).second)
        add(r, "sched.wires",
            strfmt("wire '%s' defined twice in state '%s'",
                   op.value_name.c_str(),
                   stg.state(static_cast<int>(si)).name.c_str()));
      wire_def_states[op.value_name].push_back(static_cast<int>(si));
    }
  }

  auto is_wire = [](const std::string& s) {
    if (s.size() < 2 || s[0] != 'w') return false;
    for (size_t i = 1; i < s.size(); ++i)
      if (s[i] < '0' || s[i] > '9') return false;
    return true;
  };

  // Pass 2: per-state resource bounds, stmt ids, and chaining order.
  for (size_t si = 0; si < stg.num_states(); ++si) {
    const stg::State& st = stg.state(static_cast<int>(si));
    std::map<std::string, int> fu_used;
    std::map<std::string, int> mem_used;
    std::unordered_set<std::string> defined_here;
    for (const stg::OpInstance& op : st.ops) {
      if (op.stmt_id >= 0 && !ids.count(op.stmt_id))
        add(r, "sched.stmt-ids",
            strfmt("state '%s': op '%s' references missing statement %d",
                   st.name.c_str(), op.label.c_str(), op.stmt_id));

      // Resource accounting mirrors the scheduler's ResourceTable: memory
      // ops are bounded per array (one port each); datapath ops per FU
      // type; ops with neither (register copies, boolean glue) are free.
      if (!op.array.empty()) {
        if (++mem_used[op.array] > 1)
          add(r, "sched.resources",
              strfmt("state '%s': %d concurrent accesses to array '%s' "
                     "(1 memory port)",
                     st.name.c_str(), mem_used[op.array], op.array.c_str()));
      } else if (!op.fu_type.empty()) {
        const int avail = alloc.count(op.fu_type);
        if (++fu_used[op.fu_type] > avail)
          add(r, "sched.resources",
              strfmt("state '%s': %d op(s) on FU type '%s' but only %d "
                     "allocated",
                     st.name.c_str(), fu_used[op.fu_type],
                     op.fu_type.c_str(), avail));
      }

      if (level == Level::Full) {
        for (const std::string& operand : op.operands) {
          if (!is_wire(operand)) continue;
          auto it = wire_def_states.find(operand);
          if (it == wire_def_states.end()) {
            add(r, "sched.wires",
                strfmt("state '%s': op '%s' reads undefined wire '%s'",
                       st.name.c_str(), op.label.c_str(), operand.c_str()));
          } else if (st.ring_id < 0 && !defined_here.count(operand) &&
                     it->second.size() == 1 &&
                     it->second.front() == static_cast<int>(si)) {
            // The operand's only definition is later in this same state:
            // a chained consumer ahead of its producer. Ring states
            // legally read the previous traversal's wires, and a wire
            // with definitions in other states reaches here through a
            // register, so neither case is flagged.
            add(r, "sched.chaining",
                strfmt("state '%s': op '%s' reads wire '%s' before it is "
                       "produced in the same cycle",
                       st.name.c_str(), op.label.c_str(), operand.c_str()));
          }
        }
      }
      if (!op.value_name.empty()) defined_here.insert(op.value_name);
    }
  }

  return r;
}

}  // namespace fact::verify
