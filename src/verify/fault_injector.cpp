#include "verify/fault_injector.hpp"

#include <stdexcept>

#include "util/strfmt.hpp"

namespace fact::verify {

using ir::Expr;
using ir::Stmt;

const char* to_string(FaultClass c) {
  switch (c) {
    case FaultClass::WrongSemantics: return "wrong-semantics";
    case FaultClass::ThrowException: return "throw-exception";
    case FaultClass::DuplicateStmtId: return "duplicate-stmt-id";
    case FaultClass::EmptyLoopBody: return "empty-loop-body";
    case FaultClass::UndeclaredArray: return "undeclared-array";
    case FaultClass::UndefinedRead: return "undefined-read";
  }
  return "?";
}

std::vector<FaultClass> all_fault_classes() {
  return {FaultClass::WrongSemantics,  FaultClass::ThrowException,
          FaultClass::DuplicateStmtId, FaultClass::EmptyLoopBody,
          FaultClass::UndeclaredArray, FaultClass::UndefinedRead};
}

FaultInjector::FaultInjector(const xform::TransformLibrary& inner,
                             FaultInjectorOptions opts)
    : inner_(inner), opts_(opts), rng_(opts.seed) {
  for (FaultClass c : all_fault_classes())
    if (opts_.classes.empty() || opts_.classes.count(c))
      enabled_.push_back(c);
}

std::vector<xform::Candidate> FaultInjector::find_all(
    const ir::Function& fn, const std::set<int>& region) const {
  return inner_.find_all(fn, region);
}

int FaultInjector::injected(FaultClass c) const {
  auto it = injected_.find(c);
  return it == injected_.end() ? 0 : it->second;
}

int FaultInjector::injected_total() const {
  int total = 0;
  for (const auto& [c, n] : injected_) total += n;
  return total;
}

bool FaultInjector::corrupt(ir::Function& g, FaultClass cls) const {
  const int k = ++counter_;
  switch (cls) {
    case FaultClass::WrongSemantics: {
      // Mutate state that is always observed: bump an array cell (final
      // array contents are part of every Observation), or, with no
      // arrays, add a fresh output — either way every trace execution
      // observes the difference, so the equivalence check must fire.
      if (!g.arrays().empty()) {
        const ir::ArrayDecl& a = g.arrays().front();
        const int64_t idx = k % static_cast<int64_t>(a.size);
        ir::ExprPtr cell = Expr::array_read(a.name, Expr::constant(idx));
        g.body()->stmts.push_back(Stmt::store(
            a.name, Expr::constant(idx),
            Expr::binary(ir::Op::Add, cell, Expr::constant(k))));
      } else {
        const std::string out = strfmt("__fault_out%d", k);
        g.body()->stmts.push_back(Stmt::assign(out, Expr::constant(k)));
        g.add_output(out);
      }
      g.assign_fresh_ids();
      return true;
    }
    case FaultClass::ThrowException:
      throw std::runtime_error(
          strfmt("injected fault %d: transform implementation crashed", k));
    case FaultClass::DuplicateStmtId: {
      if (g.stmt_count() < 2) return false;
      int first_id = -1;
      ir::Stmt* last = nullptr;
      g.for_each([&](ir::Stmt& s) {
        if (first_id < 0) first_id = s.id;
        last = &s;
      });
      if (!last || last->id == first_id) return false;
      last->id = first_id;
      return true;
    }
    case FaultClass::EmptyLoopBody: {
      ir::Stmt* loop = nullptr;
      g.for_each([&](ir::Stmt& s) {
        if (!loop && s.kind == ir::StmtKind::While) loop = &s;
      });
      if (!loop) return false;
      loop->then_stmts.clear();
      return true;
    }
    case FaultClass::UndeclaredArray: {
      g.body()->stmts.push_back(Stmt::assign(
          strfmt("__fault_t%d", k),
          Expr::array_read(strfmt("__fault_arr%d", k), Expr::constant(0))));
      g.assign_fresh_ids();
      return true;
    }
    case FaultClass::UndefinedRead: {
      g.body()->stmts.push_back(Stmt::assign(
          strfmt("__fault_t%d", k), Expr::var(strfmt("__fault_u%d", k))));
      g.assign_fresh_ids();
      return true;
    }
  }
  return false;
}

ir::Function FaultInjector::apply(const ir::Function& fn,
                                  const xform::Candidate& c) const {
  ir::Function real = inner_.apply(fn, c);
  if (enabled_.empty() || opts_.rate <= 0.0 || rng_.uniform() >= opts_.rate)
    return real;
  // Start from a deterministically chosen class and fall through to the
  // next enabled one when a class does not apply to this function.
  const size_t start = static_cast<size_t>(rng_.uniform_int(
      0, static_cast<int64_t>(enabled_.size()) - 1));
  for (size_t i = 0; i < enabled_.size(); ++i) {
    const FaultClass cls = enabled_[(start + i) % enabled_.size()];
    if (cls == FaultClass::ThrowException) {
      injected_[cls]++;
      corrupt(real, cls);  // throws
    }
    if (corrupt(real, cls)) {
      injected_[cls]++;
      return real;
    }
  }
  return real;  // no enabled class applies to this function
}

}  // namespace fact::verify
