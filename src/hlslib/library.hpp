#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "ir/expr.hpp"

namespace fact::hlslib {

/// Classes of hardware resources an operation can bind to.
enum class FuClass {
  Adder,        // a1 / cla1
  Subtracter,   // sb1
  Multiplier,   // mt1 / w_mult1
  Comparator,   // cp1 / comp1 (relational <, <=, >, >=)
  EqComparator, // e1 (equality / inequality)
  Incrementer,  // i1 / incr1 (x + 1 only)
  Inverter,     // n1 (multi-bit bitwise inverter)
  Shifter,      // s1
  Register,     // reg1 (storage; characterized for power, not allocated)
  Memory,       // mem1 (one port per array memory)
  None,         // boolean controller glue; consumes no datapath FU
};

/// One library component, characterized for delay, energy and area exactly
/// as in Table 1 of the paper: the energy per operation is
/// E = energy_coeff * Vdd^2, delay is at the characterization voltage (5V).
struct FuType {
  std::string name;
  FuClass cls = FuClass::None;
  double energy_coeff = 0.0;  // E / Vdd^2, Table 1 units
  double delay_ns = 0.0;      // at Vdd = 5V
  double area = 0.0;          // normalized
};

/// A component library: a set of FuTypes plus register/memory
/// characterization used by the power model.
class Library {
 public:
  void add(const FuType& fu);
  const FuType* find(const std::string& name) const;
  const FuType& get(const std::string& name) const;  // throws if missing
  /// First type of the given class, if any (default FU selection).
  const FuType* first_of(FuClass cls) const;
  const std::vector<FuType>& types() const { return types_; }

  /// The library of Section 5 of the paper: a1 (10ns), sb1 (10ns),
  /// mt1 (23ns), cp1 (10ns), e1 (5ns), i1 (5ns), n1 (2ns), s1 (10ns),
  /// plus reg1/mem1 storage characterization. Energy coefficients follow
  /// Table 1 where given (cla1->a1 class, comp1->cp1 class, w_mult1->mt1,
  /// incr1->i1) and are interpolated by area for the rest.
  static Library dac98();

  /// The TEST1 library of Table 1 verbatim (comp1, cla1, incr1, w_mult1,
  /// reg1, mem1) with Table 1 delays; used by the Example-1/Figure-1
  /// experiments.
  static Library table1();

  /// The Section 5 library extended with low-power variants (slower,
  /// lower energy coefficient): a1_lp, sb1_lp, mt1_lp, cp1_lp. Used by
  /// the functional-unit-selection exploration: where the schedule has
  /// slack, moving operations onto these units saves energy without
  /// losing throughput.
  static Library dac98_lowpower();

  /// All types of a class (for selection exploration).
  std::vector<const FuType*> all_of(FuClass cls) const;

 private:
  std::vector<FuType> types_;
};

/// Allocation constraint: how many instances of each FU type are available,
/// e.g. Table 3's row "GCD: 2 sb1, 1 cp1, 1 e1".
struct Allocation {
  std::map<std::string, int> counts;  // FU type name -> instances

  int count(const std::string& fu_name) const {
    auto it = counts.find(fu_name);
    return it == counts.end() ? 0 : it->second;
  }
};

/// Parses an allocation spec of the form "a1=2,sb1=1,..." against `lib`
/// (unknown FU types, malformed counts, and non-positive counts throw
/// fact::Error). An empty spec yields the default allocation: two
/// instances of every library type. Shared by factc, factd and factcli so
/// every entry point builds identical allocations from identical specs.
Allocation parse_allocation(const std::string& spec, const Library& lib);

/// Functional-unit selection: which library type implements each operation
/// kind. Defaults map each Op onto the first library type of its class.
struct FuSelection {
  std::map<ir::Op, std::string> choice;

  /// Builds the default selection for `lib`: every op kind used in
  /// hardware maps to the first matching FuType.
  static FuSelection defaults(const Library& lib);
};

/// Resource class an IR operation needs. `Add` with a constant-1 operand
/// may instead be bound to an Incrementer when the selection says so.
FuClass op_fu_class(ir::Op op);

/// Supply-voltage scaling law (footnote 1 of the paper, after [11]):
///   Delay(Vdd) = k * Vdd / (Vdd - Vt)^2.
/// `delay_scale(v, vt)` returns Delay(v)/Delay(5V), the multiplier applied
/// to all 5V-characterized delays at supply voltage `v`.
double delay_scale(double vdd, double vt);

/// Solves the paper's Vdd-scaling equation: find the supply voltage at
/// which a design whose average schedule length is `fast_len` cycles (at
/// 5V) slows down to exactly `slow_len` cycles, i.e.
///   Delay(v)/Delay(5V) = slow_len / fast_len  with slow_len >= fast_len.
/// Example 1: scale_vdd_for_slowdown(119.11, 151.30, 1.0) == 4.29V.
/// Returns 5.0 if no scaling is possible (fast_len >= slow_len).
double scale_vdd_for_slowdown(double fast_len, double slow_len, double vt);

}  // namespace fact::hlslib
