#include "hlslib/library.hpp"

#include <cmath>
#include <sstream>

#include "util/error.hpp"

namespace fact::hlslib {

void Library::add(const FuType& fu) { types_.push_back(fu); }

const FuType* Library::find(const std::string& name) const {
  for (const auto& t : types_)
    if (t.name == name) return &t;
  return nullptr;
}

const FuType& Library::get(const std::string& name) const {
  const FuType* t = find(name);
  if (!t) throw Error("unknown functional unit type '" + name + "'");
  return *t;
}

const FuType* Library::first_of(FuClass cls) const {
  for (const auto& t : types_)
    if (t.cls == cls) return &t;
  return nullptr;
}

Library Library::dac98() {
  Library lib;
  // Section 5 library. Delays are the published ones; energy coefficients
  // follow Table 1 for the classes it characterizes (adder via cla1,
  // comparator via comp1, multiplier via w_mult1, incrementer via incr1)
  // and are area-proportional estimates for the rest.
  lib.add({"a1", FuClass::Adder, 1.3, 10.0, 1.5});
  lib.add({"sb1", FuClass::Subtracter, 1.3, 10.0, 1.5});
  lib.add({"mt1", FuClass::Multiplier, 2.3, 23.0, 3.9});
  lib.add({"cp1", FuClass::Comparator, 1.1, 10.0, 1.3});
  lib.add({"e1", FuClass::EqComparator, 0.6, 5.0, 0.7});
  lib.add({"i1", FuClass::Incrementer, 0.7, 5.0, 1.1});
  lib.add({"n1", FuClass::Inverter, 0.2, 2.0, 0.3});
  lib.add({"s1", FuClass::Shifter, 0.8, 10.0, 1.0});
  lib.add({"reg1", FuClass::Register, 0.3, 3.0, 1.0});
  lib.add({"mem1", FuClass::Memory, 1.9, 15.0, 8.1});
  return lib;
}

Library Library::dac98_lowpower() {
  Library lib = dac98();
  // Low-power variants: roughly half the energy for ~1.5x the delay
  // (ripple-carry adders, a non-Wallace multiplier, a slow comparator).
  lib.add({"a1_lp", FuClass::Adder, 0.7, 16.0, 1.0});
  lib.add({"sb1_lp", FuClass::Subtracter, 0.7, 16.0, 1.0});
  lib.add({"mt1_lp", FuClass::Multiplier, 1.3, 38.0, 2.6});
  lib.add({"cp1_lp", FuClass::Comparator, 0.6, 16.0, 0.9});
  return lib;
}

std::vector<const FuType*> Library::all_of(FuClass cls) const {
  std::vector<const FuType*> out;
  for (const auto& t : types_)
    if (t.cls == cls) out.push_back(&t);
  return out;
}

Library Library::table1() {
  Library lib;
  // Table 1 of the paper, verbatim.
  lib.add({"comp1", FuClass::Comparator, 1.1, 12.0, 1.3});
  lib.add({"cla1", FuClass::Adder, 1.3, 10.0, 1.5});
  lib.add({"incr1", FuClass::Incrementer, 0.7, 13.0, 1.1});
  lib.add({"w_mult1", FuClass::Multiplier, 2.3, 23.0, 3.9});
  lib.add({"reg1", FuClass::Register, 0.3, 3.0, 1.0});
  lib.add({"mem1", FuClass::Memory, 1.9, 15.0, 8.1});
  // TEST1 also needs a subtracter class for generality; reuse cla1 figures.
  lib.add({"sub1", FuClass::Subtracter, 1.3, 10.0, 1.5});
  // Equality comparisons bind to the comparator in this library.
  lib.add({"eq1", FuClass::EqComparator, 1.1, 12.0, 1.3});
  return lib;
}

FuSelection FuSelection::defaults(const Library& lib) {
  FuSelection sel;
  auto pick = [&](ir::Op op, FuClass cls) {
    if (const FuType* t = lib.first_of(cls)) sel.choice[op] = t->name;
  };
  pick(ir::Op::Add, FuClass::Adder);
  pick(ir::Op::Sub, FuClass::Subtracter);
  pick(ir::Op::Mul, FuClass::Multiplier);
  pick(ir::Op::Lt, FuClass::Comparator);
  pick(ir::Op::Le, FuClass::Comparator);
  pick(ir::Op::Gt, FuClass::Comparator);
  pick(ir::Op::Ge, FuClass::Comparator);
  pick(ir::Op::Eq, FuClass::EqComparator);
  pick(ir::Op::Ne, FuClass::EqComparator);
  pick(ir::Op::BitNot, FuClass::Inverter);
  pick(ir::Op::Shl, FuClass::Shifter);
  pick(ir::Op::Shr, FuClass::Shifter);
  return sel;
}

FuClass op_fu_class(ir::Op op) {
  switch (op) {
    case ir::Op::Add:
      return FuClass::Adder;
    case ir::Op::Sub:
      return FuClass::Subtracter;
    case ir::Op::Mul:
      return FuClass::Multiplier;
    case ir::Op::Lt:
    case ir::Op::Le:
    case ir::Op::Gt:
    case ir::Op::Ge:
      return FuClass::Comparator;
    case ir::Op::Eq:
    case ir::Op::Ne:
      return FuClass::EqComparator;
    case ir::Op::BitNot:
      return FuClass::Inverter;
    case ir::Op::Shl:
    case ir::Op::Shr:
      return FuClass::Shifter;
    case ir::Op::ArrayRead:
      return FuClass::Memory;
    default:
      return FuClass::None;
  }
}

Allocation parse_allocation(const std::string& spec, const Library& lib) {
  Allocation alloc;
  if (spec.empty()) {
    for (const auto& t : lib.types()) alloc.counts[t.name] = 2;
    return alloc;
  }
  std::stringstream ss(spec);
  std::string item;
  while (std::getline(ss, item, ',')) {
    const size_t eq = item.find('=');
    if (eq == std::string::npos)
      throw Error("bad allocation entry '" + item + "' (want fu=count)");
    const std::string name = item.substr(0, eq);
    if (!lib.find(name)) throw Error("unknown FU type " + name);
    const std::string count_text = item.substr(eq + 1);
    int count = 0;
    try {
      size_t pos = 0;
      count = std::stoi(count_text, &pos);
      if (pos != count_text.size()) throw Error("");
    } catch (const std::exception&) {
      throw Error("bad allocation count '" + count_text + "' for " + name);
    }
    if (count <= 0)
      throw Error("allocation count for " + name + " must be positive (got " +
                  count_text + ")");
    alloc.counts[name] = count;
  }
  return alloc;
}

double delay_scale(double vdd, double vt) {
  if (vdd <= vt) throw Error("delay_scale: Vdd must exceed Vt");
  const double at_v = vdd / ((vdd - vt) * (vdd - vt));
  const double at_5 = 5.0 / ((5.0 - vt) * (5.0 - vt));
  return at_v / at_5;
}

double scale_vdd_for_slowdown(double fast_len, double slow_len, double vt) {
  if (fast_len <= 0.0 || slow_len <= 0.0)
    throw Error("scale_vdd_for_slowdown: lengths must be positive");
  if (fast_len >= slow_len) return 5.0;  // no slack to exploit
  const double r = slow_len / fast_len;
  // Solve v / (v - vt)^2 = A where A = r * 5 / (5 - vt)^2:
  //   A v^2 - (2 A vt + 1) v + A vt^2 = 0, take the root above Vt.
  const double A = r * 5.0 / ((5.0 - vt) * (5.0 - vt));
  const double b = 2.0 * A * vt + 1.0;
  const double disc = b * b - 4.0 * A * A * vt * vt;
  if (disc < 0.0) return 5.0;
  const double v = (b + std::sqrt(disc)) / (2.0 * A);
  // Clamp into the physically meaningful range (just above Vt, at most 5V).
  if (v >= 5.0) return 5.0;
  return std::max(v, vt * 1.05);
}

}  // namespace fact::hlslib
