// Dataflow cleanup transformations: forward substitution (which exposes
// cross-statement patterns, e.g. two selects produced by speculation, to
// the expression-level rewrites) and dead-code elimination (which removes
// the definitions substitution leaves behind — dead operations would still
// burn functional units and power if left in the schedule).

#include <utility>
#include <set>

#include "ir/edit.hpp"
#include "util/error.hpp"
#include "xform/transform.hpp"

namespace fact::xform {

using ir::ExprPtr;
using ir::Op;
using ir::Stmt;
using ir::StmtKind;
using ir::StmtPtr;

namespace {

std::set<std::string> expr_vars(const ExprPtr& e) {
  std::set<std::string> vars;
  ir::for_each_node(e, [&](const ExprPtr& n) {
    if (n->op() == Op::Var) vars.insert(n->name());
  });
  return vars;
}

bool expr_reads_memory(const ExprPtr& e) {
  bool reads = false;
  ir::for_each_node(e, [&](const ExprPtr& n) {
    if (n->op() == Op::ArrayRead) reads = true;
  });
  return reads;
}

/// Forward substitution: for `v = E; ...; use(v)` within one statement
/// list, replace the use of v by E when nothing between the definition and
/// the use redefines v, any variable E reads, or (if E reads memory) any
/// array. The candidate's stmt_id/slot address the *use*; `variant` holds
/// the defining statement's id.
class ForwardSubstitution final : public Transform {
 public:
  std::string name() const override { return "fwdsub"; }

  std::vector<Candidate> find(const ir::Function& fn,
                              const std::set<int>& region) const override {
    std::vector<Candidate> out;
    std::function<void(const std::vector<StmtPtr>&)> scan =
        [&](const std::vector<StmtPtr>& list) {
          for (size_t i = 0; i < list.size(); ++i) {
            const Stmt& def = *list[i];
            for (const auto* child : def.child_lists()) scan(*child);
            if (def.kind != StmtKind::Assign) continue;
            if (def.value->op() == Op::Const) continue;  // constprop's job
            if (!region.empty() && !region.count(def.id)) continue;
            const std::set<std::string> inputs = expr_vars(def.value);
            // A self-referential definition (v = f(v)) cannot be
            // substituted: after it executes, re-evaluating f would read
            // the new v.
            if (inputs.count(def.target)) continue;
            const bool reads_mem = expr_reads_memory(def.value);
            for (size_t j = i + 1; j < list.size(); ++j) {
              const Stmt& use = *list[j];
              // A direct use in this statement's expression slots? (A
              // while-condition is excluded: it re-evaluates each
              // iteration, after the body may have changed E's inputs.)
              const auto slots = use.expr_slots();
              for (size_t k = 0;
                   use.kind != StmtKind::While && k < slots.size(); ++k) {
                if (expr_vars(*slots[k]).count(def.target)) {
                  Candidate c;
                  c.transform = name();
                  c.stmt_id = use.id;
                  c.slot = static_cast<int>(k);
                  c.variant = def.id;
                  out.push_back(std::move(c));
                }
              }
              // Interference ends the window.
              bool clobbered = false;
              if (use.kind == StmtKind::Assign) {
                if (use.target == def.target || inputs.count(use.target))
                  clobbered = true;
              } else if (use.kind == StmtKind::Store) {
                if (reads_mem) clobbered = true;
              } else {
                // Control statement: anything written inside may interfere,
                // and the statement may execute repeatedly.
                clobbered = true;
              }
              if (clobbered) break;
            }
          }
        };
    scan(fn.body()->stmts);
    return out;
  }

  ir::Function apply(const ir::Function& fn, const Candidate& c) const override {
    ir::Function g = fn.clone();
    // Mutable lookup first (it copies the spine to `use`); the definition
    // is only read, so a const lookup keeps its subtree shared.
    Stmt* use = g.find_stmt(c.stmt_id);
    const Stmt* def = std::as_const(g).find_stmt(c.variant);
    if (!def || !use || def->kind != StmtKind::Assign)
      throw Error("fwdsub: candidate statements not found");
    auto slots = use->expr_slots();
    if (c.slot < 0 || static_cast<size_t>(c.slot) >= slots.size())
      throw Error("fwdsub: bad slot");
    const std::map<std::string, ExprPtr> subst{{def->target, def->value}};
    *slots[static_cast<size_t>(c.slot)] =
        ir::substitute(*slots[static_cast<size_t>(c.slot)], subst);
    return g;
  }
};

/// Dead-code elimination: removes scalar assignments whose target is never
/// read anywhere else in the function and is not an output. Conservative
/// but sound: a variable read anywhere (even "earlier" in text, e.g. by a
/// surrounding loop's next iteration) counts as live.
class DeadCodeElimination final : public Transform {
 public:
  std::string name() const override { return "dce"; }

  std::vector<Candidate> find(const ir::Function& fn,
                              const std::set<int>& region) const override {
    // Collect every variable read anywhere and every output.
    std::set<std::string> live(fn.outputs().begin(), fn.outputs().end());
    fn.for_each([&](const Stmt& s) {
      for (const auto* slot : s.expr_slots())
        for (const auto& v : expr_vars(*slot)) live.insert(v);
    });
    std::vector<Candidate> out;
    fn.for_each([&](const Stmt& s) {
      if (s.kind != StmtKind::Assign) return;
      if (!region.empty() && !region.count(s.id)) return;
      if (live.count(s.target)) return;
      Candidate c;
      c.transform = name();
      c.stmt_id = s.id;
      out.push_back(std::move(c));
    });
    return out;
  }

  ir::Function apply(const ir::Function& fn, const Candidate& c) const override {
    ir::Function g = fn.clone();
    const Stmt* s = std::as_const(g).find_stmt(c.stmt_id);
    if (!s || s->kind != StmtKind::Assign)
      throw Error("dce: candidate statement not found");
    if (!ir::replace_stmt(g, c.stmt_id, {}))
      throw Error("dce: removal failed");
    return g;
  }
};

/// Common subexpression elimination: a non-trivial subexpression that
/// occurs two or more times within one statement's expression is computed
/// once into a fresh temporary assigned immediately before the statement,
/// and every occurrence is replaced by the temporary. (Repetitions are
/// common after speculation duplicates branch expressions; the DFG
/// builder's value numbering shares them during scheduling, but an
/// explicit CSE also exposes the shared value to further rewrites and to
/// forward substitution into later statements.)
class CommonSubexpressionElimination final : public Transform {
 public:
  std::string name() const override { return "cse"; }

  std::vector<Candidate> find(const ir::Function& fn,
                              const std::set<int>& region) const override {
    std::vector<Candidate> out;
    fn.for_each([&](const Stmt& s) {
      if (!region.empty() && !region.count(s.id)) return;
      if (s.kind != StmtKind::Assign && s.kind != StmtKind::Store) return;
      const auto slots = s.expr_slots();
      for (size_t k = 0; k < slots.size(); ++k) {
        // Count structural occurrences of every non-leaf subexpression.
        std::vector<ExprPtr> repeated;
        std::vector<ExprPtr> seen_once;
        ir::for_each_node(*slots[k], [&](const ExprPtr& e) {
          if (e->num_args() == 0) return;
          for (const auto& r : repeated)
            if (ir::Expr::equal(r, e)) return;
          for (auto it = seen_once.begin(); it != seen_once.end(); ++it) {
            if (ir::Expr::equal(*it, e)) {
              repeated.push_back(e);
              seen_once.erase(it);
              return;
            }
          }
          seen_once.push_back(e);
        });
        for (size_t r = 0; r < repeated.size(); ++r) {
          Candidate c;
          c.transform = name();
          c.stmt_id = s.id;
          c.slot = static_cast<int>(k);
          c.variant = static_cast<int>(r);  // index into the repeated list
          out.push_back(std::move(c));
        }
      }
    });
    return out;
  }

  ir::Function apply(const ir::Function& fn, const Candidate& c) const override {
    ir::Function g = fn.clone();
    Stmt* s = g.find_stmt(c.stmt_id);
    if (!s) throw Error("cse: candidate statement not found");
    auto slots = s->expr_slots();
    if (c.slot < 0 || static_cast<size_t>(c.slot) >= slots.size())
      throw Error("cse: bad slot");

    // Recompute the repeated list with the same deterministic order.
    std::vector<ExprPtr> repeated;
    std::vector<ExprPtr> seen_once;
    ir::for_each_node(*slots[static_cast<size_t>(c.slot)],
                      [&](const ExprPtr& e) {
                        if (e->num_args() == 0) return;
                        for (const auto& r : repeated)
                          if (ir::Expr::equal(r, e)) return;
                        for (auto it = seen_once.begin();
                             it != seen_once.end(); ++it) {
                          if (ir::Expr::equal(*it, e)) {
                            repeated.push_back(e);
                            seen_once.erase(it);
                            return;
                          }
                        }
                        seen_once.push_back(e);
                      });
    if (c.variant < 0 || static_cast<size_t>(c.variant) >= repeated.size())
      throw Error("cse: candidate no longer present");
    const ExprPtr target = repeated[static_cast<size_t>(c.variant)];

    const std::string temp = ir::fresh_name(g, "cse");
    // Replace every occurrence of the target subexpression.
    std::function<ExprPtr(const ExprPtr&)> rewrite =
        [&](const ExprPtr& e) -> ExprPtr {
      if (ir::Expr::equal(e, target)) return ir::Expr::var(temp);
      if (e->num_args() == 0) return e;
      bool changed = false;
      std::vector<ExprPtr> children;
      children.reserve(e->num_args());
      for (const auto& a : e->args()) {
        ExprPtr sub = rewrite(a);
        if (sub.get() != a.get()) changed = true;
        children.push_back(std::move(sub));
      }
      return changed ? ir::Expr::rebuild(*e, std::move(children)) : e;
    };
    *slots[static_cast<size_t>(c.slot)] =
        rewrite(*slots[static_cast<size_t>(c.slot)]);
    std::vector<StmtPtr> pre;
    pre.push_back(Stmt::assign(temp, target));
    if (!ir::insert_before(g, c.stmt_id, std::move(pre)))
      throw Error("cse: insertion failed");
    g.assign_fresh_ids();
    return g;
  }
};

}  // namespace

TransformPtr make_forward_substitution() {
  return std::make_unique<ForwardSubstitution>();
}
TransformPtr make_dead_code_elimination() {
  return std::make_unique<DeadCodeElimination>();
}
TransformPtr make_common_subexpression_elimination() {
  return std::make_unique<CommonSubexpressionElimination>();
}

}  // namespace fact::xform
