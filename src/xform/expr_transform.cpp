#include "xform/expr_transform.hpp"

#include "util/strfmt.hpp"

namespace fact::xform {

using ir::ExprPtr;
using ir::Op;

std::string Candidate::describe() const {
  std::string p;
  for (int i : path) p += strfmt("%d.", i);
  if (!p.empty()) p.pop_back();
  return strfmt("%s@s%d/%d[%s]v%d", transform.c_str(), stmt_id, slot,
                p.c_str(), variant);
}

std::vector<Candidate> ExprTransform::find(const ir::Function& fn,
                                           const std::set<int>& region) const {
  std::vector<Candidate> out;
  fn.for_each([&](const ir::Stmt& s) {
    if (!region.empty() && !region.count(s.id)) return;
    const auto slots = s.expr_slots();
    for (size_t k = 0; k < slots.size(); ++k) {
      std::vector<int> path;
      std::function<void(const ExprPtr&, std::optional<Op>)> walk =
          [&](const ExprPtr& e, std::optional<Op> parent) {
            for (int v : variants_at(e, parent)) {
              Candidate c;
              c.transform = name();
              c.stmt_id = s.id;
              c.slot = static_cast<int>(k);
              c.path = path;
              c.variant = v;
              out.push_back(std::move(c));
            }
            for (size_t i = 0; i < e->num_args(); ++i) {
              path.push_back(static_cast<int>(i));
              walk(e->arg(i), e->op());
              path.pop_back();
            }
          };
      walk(*slots[k], std::nullopt);
    }
  });
  return out;
}

ir::Function ExprTransform::apply(const ir::Function& fn,
                                  const Candidate& c) const {
  ir::Function g = fn.clone();
  ir::Stmt* s = g.find_stmt(c.stmt_id);
  if (!s) throw Error("transform candidate references missing statement");
  auto slots = s->expr_slots();
  if (c.slot < 0 || static_cast<size_t>(c.slot) >= slots.size())
    throw Error("transform candidate references missing expression slot");
  ExprPtr root = *slots[static_cast<size_t>(c.slot)];
  ExprPtr target = ir::subexpr_at(root, c.path);
  if (!target) throw Error("transform candidate path invalid");
  ExprPtr replacement = rewrite(target, c.variant);
  *slots[static_cast<size_t>(c.slot)] = ir::replace_at(root, c.path, replacement);
  return g;
}

const Transform* TransformLibrary::find_transform(
    const std::string& name) const {
  for (const auto& t : transforms_)
    if (t->name() == name) return t.get();
  return nullptr;
}

std::vector<Candidate> TransformLibrary::find_all(
    const ir::Function& fn, const std::set<int>& region) const {
  std::vector<Candidate> out;
  for (const auto& t : transforms_) {
    auto found = t->find(fn, region);
    out.insert(out.end(), found.begin(), found.end());
  }
  return out;
}

ir::Function TransformLibrary::apply(const ir::Function& fn,
                                     const Candidate& c) const {
  const Transform* t = find_transform(c.transform);
  if (!t) throw Error("unknown transform '" + c.transform + "'");
  return t->apply(fn, c);
}

TransformLibrary TransformLibrary::standard() {
  TransformLibrary lib;
  lib.add(make_commutativity());
  lib.add(make_associativity());
  lib.add(make_addsub_reassociation());
  lib.add(make_distributivity());
  lib.add(make_constant_folding());
  lib.add(make_constant_propagation());
  lib.add(make_code_motion());
  lib.add(make_loop_unrolling());
  lib.add(make_speculation());
  lib.add(make_select_fusion());
  lib.add(make_select_hoisting());
  lib.add(make_forward_substitution());
  lib.add(make_dead_code_elimination());
  lib.add(make_common_subexpression_elimination());
  return lib;
}

TransformLibrary TransformLibrary::algebraic_only() {
  TransformLibrary lib;
  lib.add(make_commutativity());
  lib.add(make_associativity());
  lib.add(make_addsub_reassociation());
  lib.add(make_distributivity());
  lib.add(make_constant_folding());
  return lib;
}

}  // namespace fact::xform
