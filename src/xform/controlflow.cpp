// Statement-level transformations: constant propagation, code motion
// (loop-invariant hoisting), loop unrolling, and speculation
// (if-conversion) — the transform that carries rewrites across basic-block
// boundaries by turning control dependence into select data flow.

#include <algorithm>
#include <set>

#include "ir/edit.hpp"
#include "util/error.hpp"
#include "util/strfmt.hpp"
#include "xform/transform.hpp"

namespace fact::xform {

using ir::Expr;
using ir::ExprPtr;
using ir::Op;
using ir::Stmt;
using ir::StmtKind;
using ir::StmtPtr;

namespace {

std::set<std::string> vars_in_expr(const ExprPtr& e) {
  std::set<std::string> vars;
  ir::for_each_node(e, [&](const ExprPtr& n) {
    if (n->op() == Op::Var) vars.insert(n->name());
  });
  return vars;
}

bool expr_reads_memory(const ExprPtr& e) {
  bool reads = false;
  ir::for_each_node(e, [&](const ExprPtr& n) {
    if (n->op() == Op::ArrayRead) reads = true;
  });
  return reads;
}

/// The statement list that directly contains stmt_id, or nullptr. The
/// mutable overload goes through Function::body(), which detaches the
/// whole tree (copy-on-write) because the caller may edit any part of the
/// returned list; read-only pattern matching must use the const overload,
/// which leaves sharing intact.
std::vector<StmtPtr>* find_parent_list(ir::Function& fn, int stmt_id) {
  std::vector<StmtPtr>* found = nullptr;
  std::function<void(std::vector<StmtPtr>&)> walk =
      [&](std::vector<StmtPtr>& list) {
        for (auto& s : list) {
          if (s->id == stmt_id) {
            found = &list;
            return;
          }
          for (auto* child : s->child_lists()) {
            walk(*child);
            if (found) return;
          }
        }
      };
  if (fn.body()) walk(fn.body()->stmts);
  return found;
}

const std::vector<StmtPtr>* find_parent_list(const ir::Function& fn,
                                             int stmt_id) {
  const std::vector<StmtPtr>* found = nullptr;
  std::function<void(const std::vector<StmtPtr>&)> walk =
      [&](const std::vector<StmtPtr>& list) {
        for (const auto& s : list) {
          if (s->id == stmt_id) {
            found = &list;
            return;
          }
          for (const auto* child :
               static_cast<const Stmt&>(*s).child_lists()) {
            walk(*child);
            if (found) return;
          }
        }
      };
  if (fn.body()) walk(fn.body()->stmts);
  return found;
}

// ---------------------------------------------------------------------------

/// Constant propagation: after `v = <const>`, substitute the constant into
/// following statements of the same list until v is redefined (descending
/// into control statements that never write v).
class ConstantPropagation final : public Transform {
 public:
  std::string name() const override { return "constprop"; }

  std::vector<Candidate> find(const ir::Function& fn,
                              const std::set<int>& region) const override {
    std::vector<Candidate> out;
    // A candidate is useful only if some later statement actually reads the
    // variable before redefinition; checked cheaply during apply-time
    // propagation, so here we just require a constant rhs.
    fn.for_each([&](const Stmt& s) {
      if (!region.empty() && !region.count(s.id)) return;
      if (s.kind == StmtKind::Assign && s.value->op() == Op::Const) {
        Candidate c;
        c.transform = name();
        c.stmt_id = s.id;
        out.push_back(std::move(c));
      }
    });
    return out;
  }

  ir::Function apply(const ir::Function& fn, const Candidate& c) const override {
    ir::Function g = fn.clone();
    std::vector<StmtPtr>* list = find_parent_list(g, c.stmt_id);
    if (!list) throw Error("constprop: candidate statement not found");
    size_t i = 0;
    while (i < list->size() && (*list)[i]->id != c.stmt_id) ++i;
    const Stmt& def = *(*list)[i];
    if (def.kind != StmtKind::Assign || def.value->op() != Op::Const)
      throw Error("constprop: candidate is not a constant assignment");
    const std::string var = def.target;
    const std::map<std::string, ExprPtr> subst{{var, def.value}};

    for (size_t j = i + 1; j < list->size(); ++j) {
      Stmt& s = *(*list)[j];
      // Stop if this statement (or anything nested in it) redefines var —
      // except when it IS a simple assignment, where the rhs still sees
      // the constant before the redefinition takes effect.
      bool redefines = false;
      if (s.kind == StmtKind::Assign) {
        s.value = ir::substitute(s.value, subst);
        if (s.target == var) break;
        continue;
      }
      for (const auto* child : s.child_lists()) {
        for (const auto& inner : ir::written_vars(*child))
          if (inner == var) redefines = true;
      }
      if (redefines) break;
      for (auto* slot : s.expr_slots()) *slot = ir::substitute(*slot, subst);
      // Descend into children via recursive full substitution: safe since
      // nothing below redefines var.
      std::function<void(Stmt&)> deep = [&](Stmt& st) {
        for (auto* slot : st.expr_slots()) *slot = ir::substitute(*slot, subst);
        for (auto* child : st.child_lists())
          for (auto& cs : *child) deep(*cs);
      };
      for (auto* child : s.child_lists())
        for (auto& cs : *child) deep(*cs);
    }
    return g;
  }
};

// ---------------------------------------------------------------------------

/// Loop-invariant code motion: hoists a pure subexpression whose variables
/// the loop never writes into a temp computed before the loop.
class CodeMotion final : public Transform {
 public:
  std::string name() const override { return "licm"; }

  std::vector<Candidate> find(const ir::Function& fn,
                              const std::set<int>& region) const override {
    std::vector<Candidate> out;
    fn.for_each([&](const Stmt& loop) {
      if (loop.kind != StmtKind::While) return;
      if (!region.empty() && !region.count(loop.id)) return;
      std::set<std::string> written;
      for (const auto& w : ir::written_vars(loop.then_stmts)) written.insert(w);

      // Walk every expression slot of every statement in the body.
      std::function<void(const Stmt&)> scan = [&](const Stmt& s) {
        const auto slots = s.expr_slots();
        for (size_t k = 0; k < slots.size(); ++k) {
          std::vector<int> path;
          std::function<void(const ExprPtr&)> walk = [&](const ExprPtr& e) {
            if (e->num_args() > 0 && !expr_reads_memory(e) &&
                e->op() != Op::Select) {
              bool invariant = true;
              for (const auto& v : vars_in_expr(e))
                if (written.count(v)) {
                  invariant = false;
                  break;
                }
              if (invariant) {
                Candidate c;
                c.transform = name();
                c.stmt_id = s.id;
                c.slot = static_cast<int>(k);
                c.path = path;
                c.variant = loop.id;  // the loop to hoist out of
                out.push_back(std::move(c));
                return;  // hoisting the maximal invariant subtree is enough
              }
            }
            for (size_t a = 0; a < e->num_args(); ++a) {
              path.push_back(static_cast<int>(a));
              walk(e->arg(a));
              path.pop_back();
            }
          };
          walk(*slots[k]);
        }
        for (const auto* child : s.child_lists())
          for (const auto& cs : *child) scan(*cs);
      };
      for (const auto& s : loop.then_stmts) scan(*s);
    });
    return out;
  }

  ir::Function apply(const ir::Function& fn, const Candidate& c) const override {
    ir::Function g = fn.clone();
    Stmt* s = g.find_stmt(c.stmt_id);
    if (!s) throw Error("licm: candidate statement not found");
    auto slots = s->expr_slots();
    if (c.slot < 0 || static_cast<size_t>(c.slot) >= slots.size())
      throw Error("licm: bad slot");
    ExprPtr root = *slots[static_cast<size_t>(c.slot)];
    ExprPtr target = ir::subexpr_at(root, c.path);
    if (!target) throw Error("licm: bad path");

    const std::string temp = ir::fresh_name(g, "inv");
    *slots[static_cast<size_t>(c.slot)] =
        ir::replace_at(root, c.path, Expr::var(temp));
    std::vector<StmtPtr> pre;
    pre.push_back(Stmt::assign(temp, target));
    if (!ir::insert_before(g, c.variant, std::move(pre)))
      throw Error("licm: loop statement not found");
    g.assign_fresh_ids();
    return g;
  }
};

// ---------------------------------------------------------------------------

/// Loop unrolling. Partial unrolling by factor k rewrites
///   while (c) { B }  ==>  while (c) { B; if (c) { B; if (c) ... } }
/// which is always functionally equivalent. Full unrolling replaces a
/// counted loop (constant init/bound/step) by its iterations laid out
/// straight-line, eliminating the loop control entirely.
class LoopUnrolling final : public Transform {
 public:
  std::string name() const override { return "unroll"; }

  static constexpr int kFullUnrollVariant = 100;
  static constexpr int kMaxFullTrip = 32;

  std::vector<Candidate> find(const ir::Function& fn,
                              const std::set<int>& region) const override {
    std::vector<Candidate> out;
    fn.for_each([&](const Stmt& s) {
      if (s.kind != StmtKind::While) return;
      if (!region.empty() && !region.count(s.id)) return;
      for (int factor : {2, 4}) {
        Candidate c;
        c.transform = name();
        c.stmt_id = s.id;
        c.variant = factor;
        out.push_back(std::move(c));
      }
      if (full_trip_count(fn, s) > 0) {
        Candidate c;
        c.transform = name();
        c.stmt_id = s.id;
        c.variant = kFullUnrollVariant;
        out.push_back(std::move(c));
      }
    });
    return out;
  }

  ir::Function apply(const ir::Function& fn, const Candidate& c) const override {
    ir::Function g = fn.clone();
    Stmt* loop = g.find_stmt(c.stmt_id);
    if (!loop || loop->kind != StmtKind::While)
      throw Error("unroll: candidate loop not found");

    if (c.variant == kFullUnrollVariant) {
      const int trip = full_trip_count(g, *loop);
      if (trip <= 0) throw Error("unroll: loop is not statically counted");
      std::vector<StmtPtr> flat;
      for (int t = 0; t < trip; ++t)
        for (const auto& s : loop->then_stmts) flat.push_back(s->clone());
      ir::clear_ids(flat);  // duplicated statements get fresh ids
      if (!ir::replace_stmt(g, c.stmt_id, std::move(flat)))
        throw Error("unroll: loop replacement failed");
      g.assign_fresh_ids();
      return g;
    }

    const int factor = c.variant;
    if (factor < 2) throw Error("unroll: bad factor");
    std::vector<StmtPtr> body = clone_list(loop->then_stmts);
    for (int k = 1; k < factor; ++k) {
      // The previously accumulated tail goes inside a fresh guard.
      std::vector<StmtPtr> tail = std::move(body);
      body = clone_list(loop->then_stmts);
      body.push_back(Stmt::if_stmt(loop->cond, std::move(tail)));
    }
    ir::clear_ids(body);  // all copies count as new statements
    loop->then_stmts = std::move(body);
    g.assign_fresh_ids();
    return g;
  }

 private:
  static std::vector<StmtPtr> clone_list(const std::vector<StmtPtr>& in) {
    std::vector<StmtPtr> out;
    out.reserve(in.size());
    for (const auto& s : in) out.push_back(s->clone());
    return out;
  }

  /// Trip count of a counted loop `i = k0; while (i < C) { ...; i = i + s }`
  /// (all comparison directions supported), or -1 if not recognized or the
  /// count exceeds kMaxFullTrip.
  static int full_trip_count(const ir::Function& fn, const Stmt& loop) {
    // Condition: Var vs Const comparison.
    const ExprPtr& cond = loop.cond;
    if (!ir::is_comparison(cond->op())) return -1;
    std::string var;
    int64_t bound = 0;
    Op op = cond->op();
    if (cond->arg(0)->op() == Op::Var && cond->arg(1)->op() == Op::Const) {
      var = cond->arg(0)->name();
      bound = cond->arg(1)->value();
    } else if (cond->arg(0)->op() == Op::Const &&
               cond->arg(1)->op() == Op::Var) {
      var = cond->arg(1)->name();
      bound = cond->arg(0)->value();
      switch (op) {  // flip to put the variable on the left
        case Op::Lt: op = Op::Gt; break;
        case Op::Le: op = Op::Ge; break;
        case Op::Gt: op = Op::Lt; break;
        case Op::Ge: op = Op::Le; break;
        default: break;
      }
    } else {
      return -1;
    }

    // Initial value: the assignment `var = const` immediately preceding the
    // loop in its parent list. Read-only: find() runs against functions
    // whose subtrees may be shared (and concurrently read) by other
    // candidates, so this must not take any mutable path.
    const std::vector<StmtPtr>* list = find_parent_list(fn, loop.id);
    if (!list) return -1;
    size_t idx = 0;
    while (idx < list->size() && (*list)[idx]->id != loop.id) ++idx;
    if (idx == 0) return -1;
    const Stmt& init = *(*list)[idx - 1];
    if (init.kind != StmtKind::Assign || init.target != var ||
        init.value->op() != Op::Const)
      return -1;
    int64_t value = init.value->value();

    // Step: exactly one top-level `var = var +/- const` in the body and no
    // other writes to var anywhere in the loop.
    int64_t step = 0;
    int writes = 0;
    for (const auto& w : ir::written_vars(loop.then_stmts))
      if (w == var) writes++;
    if (writes != 1) return -1;
    for (const auto& s : loop.then_stmts) {
      if (s->kind != StmtKind::Assign || s->target != var) continue;
      const ExprPtr& v = s->value;
      if (v->op() == Op::Add && v->arg(0)->op() == Op::Var &&
          v->arg(0)->name() == var && v->arg(1)->op() == Op::Const) {
        step = v->arg(1)->value();
      } else if (v->op() == Op::Add && v->arg(1)->op() == Op::Var &&
                 v->arg(1)->name() == var && v->arg(0)->op() == Op::Const) {
        step = v->arg(0)->value();
      } else if (v->op() == Op::Sub && v->arg(0)->op() == Op::Var &&
                 v->arg(0)->name() == var && v->arg(1)->op() == Op::Const) {
        step = -v->arg(1)->value();
      } else {
        return -1;
      }
    }
    if (step == 0) return -1;

    auto holds = [&](int64_t x) {
      switch (op) {
        case Op::Lt: return x < bound;
        case Op::Le: return x <= bound;
        case Op::Gt: return x > bound;
        case Op::Ge: return x >= bound;
        case Op::Ne: return x != bound;
        case Op::Eq: return x == bound;
        default: return false;
      }
    };
    int trip = 0;
    while (holds(value)) {
      if (++trip > kMaxFullTrip) return -1;
      value += step;
    }
    return trip;
  }
};

// ---------------------------------------------------------------------------

/// Speculation (if-conversion): executes both branches of a conditional
/// unconditionally and merges results through selects. This is the
/// transformation-across-basic-blocks workhorse: it converts control
/// dependence into select dataflow, after which select fusion/hoisting and
/// the algebraic transforms can rewrite patterns spanning the original
/// branches.
class Speculation final : public Transform {
 public:
  std::string name() const override { return "speculate"; }

  std::vector<Candidate> find(const ir::Function& fn,
                              const std::set<int>& region) const override {
    std::vector<Candidate> out;
    fn.for_each([&](const Stmt& s) {
      if (s.kind != StmtKind::If) return;
      if (!region.empty() && !region.count(s.id)) return;
      if (s.then_stmts.empty() && s.else_stmts.empty()) return;
      if (!ir::all_scalar_assigns(s.then_stmts) ||
          !ir::all_scalar_assigns(s.else_stmts))
        return;
      Candidate c;
      c.transform = name();
      c.stmt_id = s.id;
      out.push_back(std::move(c));
    });
    return out;
  }

  ir::Function apply(const ir::Function& fn, const Candidate& c) const override {
    ir::Function g = fn.clone();
    Stmt* s = g.find_stmt(c.stmt_id);
    if (!s || s->kind != StmtKind::If)
      throw Error("speculate: candidate if not found");
    const auto env_then = ir::symbolic_assigns(s->then_stmts);
    const auto env_else = ir::symbolic_assigns(s->else_stmts);
    std::set<std::string> written;
    for (const auto& [v, e] : env_then) written.insert(v);
    for (const auto& [v, e] : env_else) written.insert(v);

    // All selects must read pre-branch values. A select whose expression
    // reads no written variable can assign its target directly; the rest
    // compute into temps first and commit afterwards.
    std::vector<StmtPtr> repl;
    std::vector<std::pair<std::string, std::string>> commits;
    int n = 0;
    for (const auto& v : written) {
      auto t = env_then.find(v);
      auto e = env_else.find(v);
      const ExprPtr tv = t != env_then.end() ? t->second : Expr::var(v);
      const ExprPtr ev = e != env_else.end() ? e->second : Expr::var(v);
      const ExprPtr sel = Expr::select(s->cond, tv, ev);
      bool reads_written = false;
      ir::for_each_node(sel, [&](const ExprPtr& node) {
        if (node->op() == Op::Var && written.count(node->name()))
          reads_written = true;
      });
      if (reads_written) {
        const std::string temp = ir::fresh_name(g, strfmt("sp%d_", n++));
        repl.push_back(Stmt::assign(temp, sel));
        commits.emplace_back(v, temp);
      } else {
        repl.push_back(Stmt::assign(v, sel));
      }
    }
    for (const auto& [v, temp] : commits)
      repl.push_back(Stmt::assign(v, Expr::var(temp)));
    if (!ir::replace_stmt(g, c.stmt_id, std::move(repl)))
      throw Error("speculate: replacement failed");
    g.assign_fresh_ids();
    return g;
  }
};

}  // namespace

TransformPtr make_constant_propagation() {
  return std::make_unique<ConstantPropagation>();
}
TransformPtr make_code_motion() { return std::make_unique<CodeMotion>(); }
TransformPtr make_loop_unrolling() { return std::make_unique<LoopUnrolling>(); }
TransformPtr make_speculation() { return std::make_unique<Speculation>(); }

}  // namespace fact::xform
