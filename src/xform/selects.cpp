// Select-level rewrites: the machinery that lets algebraic transforms act
// across basic-block boundaries (Section 3, Example 3). After speculation
// turns branches into select expressions, fusing and hoisting selects
// exposes patterns (such as a*b - a*c behind two joins) to distributivity,
// with mutual-exclusion checks guaranteeing functional equivalence.

#include "cdfg/cdfg.hpp"
#include "xform/expr_transform.hpp"

namespace fact::xform {

using ir::Expr;
using ir::ExprPtr;
using ir::Op;

namespace {

bool is_binary_arith(Op op) {
  switch (op) {
    case Op::Add:
    case Op::Sub:
    case Op::Mul:
    case Op::Shl:
    case Op::Shr:
      return true;
    default:
      return ir::is_comparison(op);
  }
}

/// True if c2 is exactly the complement of c1: syntactically (!c / c), or
/// provably by the conservative disjointness analysis in both polarities.
bool complementary(const ExprPtr& c1, const ExprPtr& c2) {
  if (c1->op() == Op::Not && Expr::equal(c1->arg(0), c2)) return true;
  if (c2->op() == Op::Not && Expr::equal(c2->arg(0), c1)) return true;
  return cdfg::conditions_disjoint(c1, true, c2, true) &&
         cdfg::conditions_disjoint(c1, false, c2, false);
}

/// op(select(c,x,y), select(c',u,v)) -> select(c, op(x,u), op(y,v)) when
/// the two selects are steered by the same (or complementary) condition.
/// This is the paper's transformation through two join operations: the
/// pairing of arms relies on the mutual exclusion of the cross pairs.
class SelectFusion final : public ExprTransform {
 public:
  std::string name() const override { return "select-fuse"; }

 protected:
  std::vector<int> variants_at(const ExprPtr& e,
                               std::optional<Op>) const override {
    if (!is_binary_arith(e->op()) || e->num_args() != 2) return {};
    if (e->arg(0)->op() != Op::Select || e->arg(1)->op() != Op::Select)
      return {};
    const ExprPtr& c1 = e->arg(0)->arg(0);
    const ExprPtr& c2 = e->arg(1)->arg(0);
    if (Expr::equal(c1, c2)) return {0};
    if (complementary(c1, c2)) return {1};
    return {};
  }

  ExprPtr rewrite(const ExprPtr& e, int variant) const override {
    const ExprPtr& l = e->arg(0);
    const ExprPtr& r = e->arg(1);
    const ExprPtr& c = l->arg(0);
    if (variant == 0)
      return Expr::select(c, Expr::binary(e->op(), l->arg(1), r->arg(1)),
                          Expr::binary(e->op(), l->arg(2), r->arg(2)));
    if (variant == 1)
      return Expr::select(c, Expr::binary(e->op(), l->arg(1), r->arg(2)),
                          Expr::binary(e->op(), l->arg(2), r->arg(1)));
    throw Error("select-fuse: bad variant");
  }
};

/// Hoisting: op(select(c,x,y), z) -> select(c, op(x,z), op(y,z)) (and the
/// mirrored form), plus the reverse "sinking" that merges an op duplicated
/// across both arms back below the select — the op-count-reducing
/// direction used for power optimization.
class SelectHoisting final : public ExprTransform {
 public:
  std::string name() const override { return "select-hoist"; }

 protected:
  std::vector<int> variants_at(const ExprPtr& e,
                               std::optional<Op>) const override {
    std::vector<int> v;
    if (is_binary_arith(e->op()) && e->num_args() == 2) {
      if (e->arg(0)->op() == Op::Select) v.push_back(0);
      if (e->arg(1)->op() == Op::Select) v.push_back(1);
    }
    if (e->op() == Op::Select) {
      const ExprPtr& t = e->arg(1);
      const ExprPtr& f = e->arg(2);
      if (t->op() == f->op() && is_binary_arith(t->op()) &&
          t->num_args() == 2) {
        if (Expr::equal(t->arg(1), f->arg(1))) v.push_back(10);
        if (Expr::equal(t->arg(0), f->arg(0))) v.push_back(11);
      }
    }
    return v;
  }

  ExprPtr rewrite(const ExprPtr& e, int variant) const override {
    switch (variant) {
      case 0: {
        const ExprPtr& sel = e->arg(0);
        return Expr::select(
            sel->arg(0), Expr::binary(e->op(), sel->arg(1), e->arg(1)),
            Expr::binary(e->op(), sel->arg(2), e->arg(1)));
      }
      case 1: {
        const ExprPtr& sel = e->arg(1);
        return Expr::select(
            sel->arg(0), Expr::binary(e->op(), e->arg(0), sel->arg(1)),
            Expr::binary(e->op(), e->arg(0), sel->arg(2)));
      }
      case 10: {
        const ExprPtr& t = e->arg(1);
        const ExprPtr& f = e->arg(2);
        return Expr::binary(t->op(),
                            Expr::select(e->arg(0), t->arg(0), f->arg(0)),
                            t->arg(1));
      }
      case 11: {
        const ExprPtr& t = e->arg(1);
        const ExprPtr& f = e->arg(2);
        return Expr::binary(t->op(), t->arg(0),
                            Expr::select(e->arg(0), t->arg(1), f->arg(1)));
      }
      default:
        throw Error("select-hoist: bad variant");
    }
  }
};

}  // namespace

TransformPtr make_select_fusion() { return std::make_unique<SelectFusion>(); }
TransformPtr make_select_hoisting() {
  return std::make_unique<SelectHoisting>();
}

}  // namespace fact::xform
