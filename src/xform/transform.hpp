#pragma once

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "ir/function.hpp"

namespace fact::xform {

/// A concrete transformation opportunity found in a function. Candidates
/// are stable coordinates: (statement id, expression slot, path within the
/// slot's expression), plus a transform-specific variant selector. Because
/// Function::clone() preserves statement ids, a candidate found on one
/// copy applies to another.
struct Candidate {
  std::string transform;
  int stmt_id = -1;
  int slot = -1;             // expr slot index; -1 for statement-level
  std::vector<int> path;     // path within the slot expression
  int variant = 0;

  std::string describe() const;
};

/// A behavioral transformation: enumerates candidates and applies one,
/// producing a new (functionally equivalent) function. Implementations
/// must be pure: apply() never mutates its input. They must also be
/// thread-safe under concurrent const calls — the optimizer invokes
/// find()/apply() from worker threads when EngineOptions::jobs > 1, so
/// a stateful implementation (e.g. one with a mutable RNG or counters)
/// requires jobs = 1 or internal synchronization.
class Transform {
 public:
  virtual ~Transform() = default;

  virtual std::string name() const = 0;

  /// Enumerates candidates. `region` restricts the search to the given
  /// statement ids (the optimizer passes the STG block's statements);
  /// empty means the whole function.
  virtual std::vector<Candidate> find(const ir::Function& fn,
                                      const std::set<int>& region) const = 0;

  /// Applies the candidate, returning the transformed clone.
  virtual ir::Function apply(const ir::Function& fn,
                             const Candidate& c) const = 0;
};

using TransformPtr = std::unique_ptr<Transform>;

/// The transformation library (step 4 of Figure 5). The paper's suite:
/// commutativity, associativity, distributivity, constant propagation,
/// code motion, and loop unrolling — plus the select-level rewrites that
/// implement transformation application across basic-block boundaries
/// (speculation and select hoisting/fusion, Section 3 Example 3).
/// User-defined transforms can be added, as the paper advertises.
class TransformLibrary {
 public:
  TransformLibrary() = default;
  TransformLibrary(TransformLibrary&&) = default;
  TransformLibrary& operator=(TransformLibrary&&) = default;
  /// Polymorphic: enumeration and application are virtual so wrappers (the
  /// fault-injection harness, instrumented libraries) can intercept them
  /// behind the `const TransformLibrary&` the engine holds. Overrides of
  /// find_all()/apply() inherit the Transform thread-safety contract:
  /// they run on engine worker threads when EngineOptions::jobs > 1
  /// (verify::FaultInjector is not thread-safe, so fault-injection runs
  /// keep the default jobs = 1).
  virtual ~TransformLibrary() = default;

  /// The full default suite.
  static TransformLibrary standard();
  /// Basic-block-local subset: the algebraic transforms only (used by the
  /// Flamel baseline policy and by ablations).
  static TransformLibrary algebraic_only();

  void add(TransformPtr t) { transforms_.push_back(std::move(t)); }
  const std::vector<TransformPtr>& transforms() const { return transforms_; }
  const Transform* find_transform(const std::string& name) const;

  /// All candidates of all transforms in the region.
  virtual std::vector<Candidate> find_all(const ir::Function& fn,
                                          const std::set<int>& region) const;

  /// Applies a candidate by dispatching on its transform name.
  virtual ir::Function apply(const ir::Function& fn, const Candidate& c) const;

 private:
  std::vector<TransformPtr> transforms_;
};

// Individual transform factories (exposed for tests and custom libraries).
TransformPtr make_commutativity();
TransformPtr make_associativity();
TransformPtr make_addsub_reassociation();
TransformPtr make_distributivity();
TransformPtr make_constant_folding();
TransformPtr make_constant_propagation();
TransformPtr make_code_motion();
TransformPtr make_loop_unrolling();
TransformPtr make_speculation();
TransformPtr make_select_fusion();
TransformPtr make_select_hoisting();
TransformPtr make_forward_substitution();
TransformPtr make_dead_code_elimination();
TransformPtr make_common_subexpression_elimination();

}  // namespace fact::xform
