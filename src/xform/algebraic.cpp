// Algebraic transformations: commutativity, associativity, add/sub
// re-association, distributivity, constant folding.

#include <cassert>

#include "sim/interp.hpp"
#include "xform/expr_transform.hpp"

namespace fact::xform {

using ir::Expr;
using ir::ExprPtr;
using ir::Op;

namespace {

/// Builds a balanced binary tree over `terms` with the associative op.
ExprPtr balanced_tree(Op op, const std::vector<ExprPtr>& terms, size_t lo,
                      size_t hi) {
  assert(lo < hi);
  if (hi - lo == 1) return terms[lo];
  const size_t mid = lo + (hi - lo + 1) / 2;
  return Expr::binary(op, balanced_tree(op, terms, lo, mid),
                      balanced_tree(op, terms, mid, hi));
}

/// Leaves of a maximal same-op chain (left-to-right order).
void chain_leaves(const ExprPtr& e, Op op, std::vector<ExprPtr>& out) {
  if (e->op() == op) {
    chain_leaves(e->arg(0), op, out);
    chain_leaves(e->arg(1), op, out);
  } else {
    out.push_back(e);
  }
}

// ---------------------------------------------------------------------------

class Commutativity final : public ExprTransform {
 public:
  std::string name() const override { return "commute"; }

 protected:
  std::vector<int> variants_at(const ExprPtr& e,
                               std::optional<Op>) const override {
    if (ir::is_commutative(e->op()) && e->num_args() == 2 &&
        !Expr::equal(e->arg(0), e->arg(1)))
      return {0};
    return {};
  }

  ExprPtr rewrite(const ExprPtr& e, int) const override {
    return Expr::binary(e->op(), e->arg(1), e->arg(0));
  }
};

class Associativity final : public ExprTransform {
 public:
  std::string name() const override { return "reassoc"; }

 protected:
  std::vector<int> variants_at(const ExprPtr& e,
                               std::optional<Op> parent) const override {
    std::vector<int> v;
    if (!ir::is_associative(e->op()) || e->num_args() != 2) return v;
    if (e->arg(0)->op() == e->op()) v.push_back(0);  // (a.b).c -> a.(b.c)
    if (e->arg(1)->op() == e->op()) v.push_back(1);  // a.(b.c) -> (a.b).c
    // Chain reshaping fires only at the chain root.
    if (parent != e->op()) {
      std::vector<ExprPtr> leaves;
      chain_leaves(e, e->op(), leaves);
      if (leaves.size() >= 3) {
        v.push_back(2);  // balance (tree height reduction, ref [8])
        v.push_back(3);  // linearize
      }
    }
    return v;
  }

  ExprPtr rewrite(const ExprPtr& e, int variant) const override {
    const Op op = e->op();
    switch (variant) {
      case 0: {
        const ExprPtr& ab = e->arg(0);
        return Expr::binary(op, ab->arg(0),
                            Expr::binary(op, ab->arg(1), e->arg(1)));
      }
      case 1: {
        const ExprPtr& bc = e->arg(1);
        return Expr::binary(op, Expr::binary(op, e->arg(0), bc->arg(0)),
                            bc->arg(1));
      }
      case 2: {
        std::vector<ExprPtr> leaves;
        chain_leaves(e, op, leaves);
        return balanced_tree(op, leaves, 0, leaves.size());
      }
      case 3: {
        std::vector<ExprPtr> leaves;
        chain_leaves(e, op, leaves);
        ExprPtr acc = leaves[0];
        for (size_t i = 1; i < leaves.size(); ++i)
          acc = Expr::binary(op, acc, leaves[i]);
        return acc;
      }
      default:
        throw Error("reassoc: bad variant");
    }
  }
};

/// Re-association over mixed +/- trees: collect signed terms and regroup.
/// This is the Example 2 rewrite, (y1+y2)-(y3+y4) -> (y1-y3)+(y2-y4):
/// regrouping changes the adder/subtracter mix the loop body demands,
/// which is exactly what a schedule-aware search can exploit.
class AddSubReassociation final : public ExprTransform {
 public:
  std::string name() const override { return "addsub"; }

 protected:
  static bool spine_op(Op op) { return op == Op::Add || op == Op::Sub; }

  static void collect(const ExprPtr& e, bool positive,
                      std::vector<std::pair<ExprPtr, bool>>& terms) {
    if (spine_op(e->op())) {
      collect(e->arg(0), positive, terms);
      collect(e->arg(1), e->op() == Op::Add ? positive : !positive, terms);
    } else {
      terms.emplace_back(e, positive);
    }
  }

  std::vector<int> variants_at(const ExprPtr& e,
                               std::optional<Op> parent) const override {
    if (!spine_op(e->op())) return {};
    if (parent && spine_op(*parent)) return {};  // chain root only
    std::vector<std::pair<ExprPtr, bool>> terms;
    collect(e, true, terms);
    if (terms.size() < 3) return {};
    return {0, 1, 2};
  }

  ExprPtr rewrite(const ExprPtr& e, int variant) const override {
    std::vector<std::pair<ExprPtr, bool>> terms;
    collect(e, true, terms);
    std::vector<ExprPtr> pos, neg;
    for (const auto& [t, is_pos] : terms) (is_pos ? pos : neg).push_back(t);

    switch (variant) {
      case 0: {
        // Pair positives with negatives into subtractions, then add.
        std::vector<ExprPtr> pieces;
        const size_t pairs = std::min(pos.size(), neg.size());
        for (size_t i = 0; i < pairs; ++i)
          pieces.push_back(Expr::binary(Op::Sub, pos[i], neg[i]));
        for (size_t i = pairs; i < pos.size(); ++i) pieces.push_back(pos[i]);
        ExprPtr acc;
        if (!pieces.empty()) {
          acc = balanced_tree(Op::Add, pieces, 0, pieces.size());
        } else {
          acc = Expr::constant(0);
        }
        for (size_t i = pairs; i < neg.size(); ++i)
          acc = Expr::binary(Op::Sub, acc, neg[i]);
        return acc;
      }
      case 1: {
        // Sum positives and negatives separately, one final subtraction.
        ExprPtr p = pos.empty() ? Expr::constant(0)
                                : balanced_tree(Op::Add, pos, 0, pos.size());
        if (neg.empty()) return p;
        ExprPtr n = balanced_tree(Op::Add, neg, 0, neg.size());
        return Expr::binary(Op::Sub, p, n);
      }
      case 2: {
        // Linear left-leaning chain: p0 + p1 ... - n0 - n1 ...
        ExprPtr acc = pos.empty() ? Expr::constant(0) : pos[0];
        for (size_t i = 1; i < pos.size(); ++i)
          acc = Expr::binary(Op::Add, acc, pos[i]);
        for (const auto& n : neg) acc = Expr::binary(Op::Sub, acc, n);
        return acc;
      }
      default:
        throw Error("addsub: bad variant");
    }
  }
};

class Distributivity final : public ExprTransform {
 public:
  std::string name() const override { return "distribute"; }

 protected:
  std::vector<int> variants_at(const ExprPtr& e,
                               std::optional<Op>) const override {
    std::vector<int> v;
    // Factoring: a*b (+|-) a*c -> a*(b (+|-) c).
    if ((e->op() == Op::Add || e->op() == Op::Sub) &&
        e->arg(0)->op() == Op::Mul && e->arg(1)->op() == Op::Mul) {
      for (int i = 0; i < 2; ++i)
        for (int j = 0; j < 2; ++j)
          if (Expr::equal(e->arg(0)->arg(static_cast<size_t>(i)),
                          e->arg(1)->arg(static_cast<size_t>(j))))
            v.push_back(i * 2 + j);
    }
    // Expansion: a*(b (+|-) c) -> a*b (+|-) a*c.
    if (e->op() == Op::Mul) {
      if (e->arg(1)->op() == Op::Add || e->arg(1)->op() == Op::Sub)
        v.push_back(10);
      if (e->arg(0)->op() == Op::Add || e->arg(0)->op() == Op::Sub)
        v.push_back(11);
    }
    return v;
  }

  ExprPtr rewrite(const ExprPtr& e, int variant) const override {
    if (variant < 4) {
      const int i = variant / 2, j = variant % 2;
      const ExprPtr common = e->arg(0)->arg(static_cast<size_t>(i));
      const ExprPtr other0 = e->arg(0)->arg(static_cast<size_t>(1 - i));
      const ExprPtr other1 = e->arg(1)->arg(static_cast<size_t>(1 - j));
      return Expr::binary(Op::Mul, common,
                          Expr::binary(e->op(), other0, other1));
    }
    if (variant == 10) {
      const ExprPtr& sum = e->arg(1);
      return Expr::binary(sum->op(),
                          Expr::binary(Op::Mul, e->arg(0), sum->arg(0)),
                          Expr::binary(Op::Mul, e->arg(0), sum->arg(1)));
    }
    if (variant == 11) {
      const ExprPtr& sum = e->arg(0);
      return Expr::binary(sum->op(),
                          Expr::binary(Op::Mul, sum->arg(0), e->arg(1)),
                          Expr::binary(Op::Mul, sum->arg(1), e->arg(1)));
    }
    throw Error("distribute: bad variant");
  }
};

class ConstantFolding final : public ExprTransform {
 public:
  std::string name() const override { return "constfold"; }

 protected:
  static bool all_const(const ExprPtr& e) {
    if (e->num_args() == 0) return e->op() == Op::Const;
    if (e->op() == Op::ArrayRead || e->op() == Op::Var) return false;
    for (const auto& a : e->args())
      if (a->op() != Op::Const) return false;
    return true;
  }

  static bool is_const(const ExprPtr& e, int64_t v) {
    return e->op() == Op::Const && e->value() == v;
  }

  std::vector<int> variants_at(const ExprPtr& e,
                               std::optional<Op>) const override {
    if (e->op() == Op::Const || e->op() == Op::Var) return {};
    if (all_const(e)) return {0};
    switch (e->op()) {
      case Op::Add:
        if (is_const(e->arg(0), 0)) return {2};
        if (is_const(e->arg(1), 0)) return {1};
        break;
      case Op::Sub:
        if (is_const(e->arg(1), 0)) return {1};
        break;
      case Op::Mul:
        if (is_const(e->arg(0), 1)) return {2};
        if (is_const(e->arg(1), 1)) return {1};
        if (is_const(e->arg(0), 0) || is_const(e->arg(1), 0)) return {3};
        break;
      case Op::Shl:
      case Op::Shr:
        if (is_const(e->arg(1), 0)) return {1};
        break;
      case Op::Select:
        if (e->arg(0)->op() == Op::Const) return {4};
        if (Expr::equal(e->arg(1), e->arg(2))) return {5};
        break;
      default:
        break;
    }
    return {};
  }

  ExprPtr rewrite(const ExprPtr& e, int variant) const override {
    switch (variant) {
      case 0:
        return Expr::constant(sim::Interpreter::eval(e, {}, {}));
      case 1:
        return e->arg(0);
      case 2:
        return e->arg(1);
      case 3:
        return Expr::constant(0);
      case 4:
        return e->arg(0)->value() != 0 ? e->arg(1) : e->arg(2);
      case 5:
        return e->arg(1);
      default:
        throw Error("constfold: bad variant");
    }
  }
};

}  // namespace

TransformPtr make_commutativity() { return std::make_unique<Commutativity>(); }
TransformPtr make_associativity() { return std::make_unique<Associativity>(); }
TransformPtr make_addsub_reassociation() {
  return std::make_unique<AddSubReassociation>();
}
TransformPtr make_distributivity() { return std::make_unique<Distributivity>(); }
TransformPtr make_constant_folding() {
  return std::make_unique<ConstantFolding>();
}

}  // namespace fact::xform
