#pragma once

#include <functional>
#include <optional>

#include "util/error.hpp"
#include "xform/transform.hpp"

namespace fact::xform {

/// Base class for transforms that rewrite a single expression node
/// in place: find() walks every expression of every (in-region) statement
/// and asks `variants_at` for applicable rewrite variants; apply() clones
/// the function and splices `rewrite`'s result at the candidate path.
class ExprTransform : public Transform {
 public:
  std::vector<Candidate> find(const ir::Function& fn,
                              const std::set<int>& region) const override;
  ir::Function apply(const ir::Function& fn,
                     const Candidate& c) const override;

 protected:
  /// Applicable variant ids at this node. `parent_op` is the op of the
  /// enclosing expression node, if any (lets chain transforms fire only at
  /// chain roots).
  virtual std::vector<int> variants_at(const ir::ExprPtr& e,
                                       std::optional<ir::Op> parent_op) const = 0;

  /// The rewritten node. Must be functionally equivalent to `e`.
  virtual ir::ExprPtr rewrite(const ir::ExprPtr& e, int variant) const = 0;
};

}  // namespace fact::xform
