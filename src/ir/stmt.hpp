#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "ir/expr.hpp"

namespace fact::ir {

enum class StmtKind {
  Assign,  // var = expr
  Store,   // array[index] = value
  If,      // if (cond) then_block else else_block
  While,   // while (cond) body
  Block,   // { stmts... }
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

/// One statement of the behavior IR. A single struct (rather than a class
/// hierarchy) keeps the many transformations that pattern-match and rewrite
/// statements compact; unused fields are empty for a given kind.
struct Stmt {
  StmtKind kind;
  /// Unique id within the enclosing Function after Function::renumber().
  /// Ids are stable across Function::clone(), which is what lets the
  /// optimizer map STG states back to IR statements.
  int id = -1;

  // Assign / Store
  std::string target;  // variable (Assign) or array (Store) name
  ExprPtr index;       // Store only
  ExprPtr value;       // Assign / Store rhs

  // If / While
  ExprPtr cond;
  std::vector<StmtPtr> then_stmts;  // If: then branch; While: body
  std::vector<StmtPtr> else_stmts;  // If only

  // Block
  std::vector<StmtPtr> stmts;

  // ---- factories ------------------------------------------------------
  static StmtPtr assign(std::string var, ExprPtr value);
  static StmtPtr store(std::string array, ExprPtr index, ExprPtr value);
  static StmtPtr if_stmt(ExprPtr cond, std::vector<StmtPtr> then_stmts,
                         std::vector<StmtPtr> else_stmts = {});
  static StmtPtr while_stmt(ExprPtr cond, std::vector<StmtPtr> body);
  static StmtPtr block(std::vector<StmtPtr> stmts);

  StmtPtr clone() const;

  /// All expression "slots" of this statement (cond / index / value),
  /// in a fixed order. Slot indices are part of transformation candidate
  /// coordinates.
  std::vector<const ExprPtr*> expr_slots() const;
  std::vector<ExprPtr*> expr_slots();

  /// Child statement lists (then/else/body/stmts) in a fixed order.
  std::vector<const std::vector<StmtPtr>*> child_lists() const;
  std::vector<std::vector<StmtPtr>*> child_lists();

  /// Pretty-prints with the given indent depth.
  std::string str(int indent = 0) const;
};

/// Preorder walk over a statement subtree.
void for_each_stmt(const StmtPtr& s, const std::function<void(const Stmt&)>& fn);
void for_each_stmt(StmtPtr& s, const std::function<void(Stmt&)>& fn);

}  // namespace fact::ir
