#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "ir/expr.hpp"

namespace fact::ir {

enum class StmtKind {
  Assign,  // var = expr
  Store,   // array[index] = value
  If,      // if (cond) then_block else else_block
  While,   // while (cond) body
  Block,   // { stmts... }
};

struct Stmt;
/// Statements are reference-counted so that Function::clone() can share
/// the whole body in O(1): candidate behaviors in the optimizer's
/// population are overwhelmingly identical to their parent, and the
/// copy-on-write editing layer (detach / Function::find_stmt /
/// Function::splice) copies only the path from the root to a mutation.
/// A shared subtree is never mutated in place — every mutable access path
/// detaches first.
using StmtPtr = std::shared_ptr<Stmt>;

/// One statement of the behavior IR. A single struct (rather than a class
/// hierarchy) keeps the many transformations that pattern-match and rewrite
/// statements compact; unused fields are empty for a given kind.
struct Stmt {
  StmtKind kind;
  /// Unique id within the enclosing Function after Function::renumber().
  /// Ids are stable across Function::clone(), which is what lets the
  /// optimizer map STG states back to IR statements.
  int id = -1;

  // Assign / Store
  std::string target;  // variable (Assign) or array (Store) name
  ExprPtr index;       // Store only
  ExprPtr value;       // Assign / Store rhs

  // If / While
  ExprPtr cond;
  std::vector<StmtPtr> then_stmts;  // If: then branch; While: body
  std::vector<StmtPtr> else_stmts;  // If only

  // Block
  std::vector<StmtPtr> stmts;

  // ---- factories ------------------------------------------------------
  static StmtPtr assign(std::string var, ExprPtr value);
  static StmtPtr store(std::string array, ExprPtr index, ExprPtr value);
  static StmtPtr if_stmt(ExprPtr cond, std::vector<StmtPtr> then_stmts,
                         std::vector<StmtPtr> else_stmts = {});
  static StmtPtr while_stmt(ExprPtr cond, std::vector<StmtPtr> body);
  static StmtPtr block(std::vector<StmtPtr> stmts);

  StmtPtr clone() const;

  /// All expression "slots" of this statement (cond / index / value),
  /// in a fixed order. Slot indices are part of transformation candidate
  /// coordinates.
  std::vector<const ExprPtr*> expr_slots() const;
  std::vector<ExprPtr*> expr_slots();

  /// Child statement lists (then/else/body/stmts) in a fixed order.
  std::vector<const std::vector<StmtPtr>*> child_lists() const;
  std::vector<std::vector<StmtPtr>*> child_lists();

  /// Pretty-prints with the given indent depth.
  std::string str(int indent = 0) const;
};

/// Preorder walk over a statement subtree. The mutable overload requires
/// the subtree to be uniquely owned (see detach_deep); Function's mutable
/// walkers guarantee that before calling it.
void for_each_stmt(const StmtPtr& s, const std::function<void(const Stmt&)>& fn);
void for_each_stmt(StmtPtr& s, const std::function<void(Stmt&)>& fn);

/// Copy-on-write primitives. detach() replaces a shared node (use_count
/// > 1) with a shallow copy that owns its own child-pointer vectors while
/// still sharing the child subtrees; it is a no-op on a uniquely-owned
/// node. detach_deep() makes the entire subtree uniquely owned. Both are
/// safe to run concurrently against other readers of the shared tree:
/// shared nodes are only read, and the copy is published through the
/// caller's own StmtPtr slot.
void detach(StmtPtr& s);
void detach_deep(StmtPtr& s);

/// Copy-on-write instrumentation (process-wide, relaxed atomics — exact
/// in serial runs, approximate under concurrency). `clones` counts O(1)
/// shared Function::clone() calls; `node_copies` counts Stmt nodes that
/// detach() actually copied. The difference against a full deep copy per
/// clone is the work the COW layer saved (bench/incremental_eval reports
/// it as bytes).
namespace cow {
uint64_t clones();
uint64_t node_copies();
void reset();
void count_clone();      // internal: Function::clone()
void count_node_copy();  // internal: detach()
}  // namespace cow

}  // namespace fact::ir
