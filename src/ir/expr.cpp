#include "ir/expr.hpp"

#include <cassert>

#include "util/error.hpp"

namespace fact::ir {

namespace {

size_t combine(size_t seed, size_t v) {
  return seed ^ (v + 0x9E3779B97F4A7C15ull + (seed << 6) + (seed >> 2));
}

}  // namespace

Expr::Expr(Op op, int64_t value, std::string name, std::vector<ExprPtr> args)
    : op_(op), value_(value), name_(std::move(name)), args_(std::move(args)) {
  size_t h = static_cast<size_t>(op_) * 0x9E3779B1u;
  h = combine(h, std::hash<int64_t>{}(value_));
  h = combine(h, std::hash<std::string>{}(name_));
  for (const auto& a : args_) h = combine(h, a->hash());
  hash_ = h;
}

size_t Expr::tree_size() const {
  size_t n = 1;
  for (const auto& a : args_) n += a->tree_size();
  return n;
}

bool Expr::equal(const ExprPtr& a, const ExprPtr& b) {
  if (a.get() == b.get()) return true;
  if (!a || !b) return false;
  if (a->hash_ != b->hash_) return false;
  if (a->op_ != b->op_ || a->value_ != b->value_ || a->name_ != b->name_ ||
      a->args_.size() != b->args_.size())
    return false;
  for (size_t i = 0; i < a->args_.size(); ++i)
    if (!equal(a->args_[i], b->args_[i])) return false;
  return true;
}

std::string Expr::str() const {
  switch (op_) {
    case Op::Const:
      return std::to_string(value_);
    case Op::Var:
      return name_;
    case Op::ArrayRead:
      return name_ + "[" + args_[0]->str() + "]";
    case Op::BitNot:
      return std::string("~") + args_[0]->str();
    case Op::Not:
      return std::string("!") + args_[0]->str();
    case Op::Select:
      return "(" + args_[0]->str() + " ? " + args_[1]->str() + " : " +
             args_[2]->str() + ")";
    default:
      return "(" + args_[0]->str() + " " + op_token(op_) + " " +
             args_[1]->str() + ")";
  }
}

ExprPtr Expr::constant(int64_t v) {
  return ExprPtr(new Expr(Op::Const, v, "", {}));
}

ExprPtr Expr::var(const std::string& name) {
  return ExprPtr(new Expr(Op::Var, 0, name, {}));
}

ExprPtr Expr::array_read(const std::string& array, ExprPtr index) {
  return ExprPtr(new Expr(Op::ArrayRead, 0, array, {std::move(index)}));
}

ExprPtr Expr::unary(Op op, ExprPtr a) {
  assert(op_arity(op) == 1);
  return ExprPtr(new Expr(op, 0, "", {std::move(a)}));
}

ExprPtr Expr::binary(Op op, ExprPtr a, ExprPtr b) {
  assert(op_arity(op) == 2);
  return ExprPtr(new Expr(op, 0, "", {std::move(a), std::move(b)}));
}

ExprPtr Expr::select(ExprPtr cond, ExprPtr t, ExprPtr f) {
  return ExprPtr(
      new Expr(Op::Select, 0, "", {std::move(cond), std::move(t), std::move(f)}));
}

ExprPtr Expr::rebuild(const Expr& node, std::vector<ExprPtr> children) {
  assert(children.size() == node.args_.size());
  return ExprPtr(new Expr(node.op_, node.value_, node.name_, std::move(children)));
}

bool is_comparison(Op op) {
  switch (op) {
    case Op::Lt:
    case Op::Le:
    case Op::Gt:
    case Op::Ge:
    case Op::Eq:
    case Op::Ne:
      return true;
    default:
      return false;
  }
}

bool is_boolean(Op op) { return op == Op::And || op == Op::Or || op == Op::Not; }

bool is_commutative(Op op) {
  switch (op) {
    case Op::Add:
    case Op::Mul:
    case Op::Eq:
    case Op::Ne:
    case Op::And:
    case Op::Or:
      return true;
    default:
      return false;
  }
}

bool is_associative(Op op) {
  switch (op) {
    case Op::Add:
    case Op::Mul:
    case Op::And:
    case Op::Or:
      return true;
    default:
      return false;
  }
}

const char* op_token(Op op) {
  switch (op) {
    case Op::Const: return "<const>";
    case Op::Var: return "<var>";
    case Op::ArrayRead: return "<read>";
    case Op::Add: return "+";
    case Op::Sub: return "-";
    case Op::Mul: return "*";
    case Op::Lt: return "<";
    case Op::Le: return "<=";
    case Op::Gt: return ">";
    case Op::Ge: return ">=";
    case Op::Eq: return "==";
    case Op::Ne: return "!=";
    case Op::BitNot: return "~";
    case Op::Shl: return "<<";
    case Op::Shr: return ">>";
    case Op::And: return "&&";
    case Op::Or: return "||";
    case Op::Not: return "!";
    case Op::Select: return "?:";
  }
  return "?";
}

int op_arity(Op op) {
  switch (op) {
    case Op::Const:
    case Op::Var:
      return 0;
    case Op::ArrayRead:
    case Op::BitNot:
    case Op::Not:
      return 1;
    case Op::Select:
      return 3;
    default:
      return 2;
  }
}

void for_each_node(const ExprPtr& e,
                   const std::function<void(const ExprPtr&)>& fn) {
  fn(e);
  for (const auto& a : e->args()) for_each_node(a, fn);
}

ExprPtr subexpr_at(const ExprPtr& root, const std::vector<int>& path) {
  ExprPtr cur = root;
  for (int idx : path) {
    if (!cur || idx < 0 || static_cast<size_t>(idx) >= cur->num_args())
      return nullptr;
    cur = cur->arg(static_cast<size_t>(idx));
  }
  return cur;
}

ExprPtr replace_at(const ExprPtr& root, const std::vector<int>& path,
                   const ExprPtr& replacement) {
  if (path.empty()) return replacement;
  const int idx = path.front();
  if (!root || idx < 0 || static_cast<size_t>(idx) >= root->num_args())
    throw Error("replace_at: invalid expression path");
  std::vector<ExprPtr> children = root->args();
  children[static_cast<size_t>(idx)] =
      replace_at(children[static_cast<size_t>(idx)],
                 {path.begin() + 1, path.end()}, replacement);
  return Expr::rebuild(*root, std::move(children));
}

}  // namespace fact::ir
