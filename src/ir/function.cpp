#include "ir/function.hpp"

#include <algorithm>
#include <set>
#include <sstream>

#include "util/error.hpp"

namespace fact::ir {

const ArrayDecl* Function::find_array(const std::string& name) const {
  for (const auto& a : arrays_)
    if (a.name == name) return &a;
  return nullptr;
}

void Function::set_body(StmtPtr b) {
  body_ = std::move(b);
  renumber();
}

void Function::renumber() {
  int next = 0;
  for_each([&](Stmt& s) { s.id = next++; });
}

void Function::assign_fresh_ids() {
  int next = max_stmt_id() + 1;
  for_each([&](Stmt& s) {
    if (s.id < 0) s.id = next++;
  });
}

int Function::max_stmt_id() const {
  int max_id = -1;
  for_each([&](const Stmt& s) { max_id = std::max(max_id, s.id); });
  return max_id;
}

std::set<int> Function::stmt_ids() const {
  std::set<int> ids;
  for_each([&](const Stmt& s) { ids.insert(s.id); });
  return ids;
}

const Stmt* Function::find_stmt(int id) const {
  const Stmt* found = nullptr;
  for_each([&](const Stmt& s) {
    if (s.id == id) found = &s;
  });
  return found;
}

Stmt* Function::find_stmt(int id) {
  Stmt* found = nullptr;
  for_each([&](Stmt& s) {
    if (s.id == id) found = &s;
  });
  return found;
}

Function Function::clone() const {
  Function f(name_);
  f.params_ = params_;
  f.arrays_ = arrays_;
  f.outputs_ = outputs_;
  if (body_) f.body_ = body_->clone();
  return f;
}

std::string Function::str() const {
  std::ostringstream out;
  out << name_ << "(";
  for (size_t i = 0; i < params_.size(); ++i) {
    if (i) out << ", ";
    out << "int " << params_[i];
  }
  out << ") {\n";
  for (const auto& a : arrays_)
    out << "  " << (a.is_input ? "input " : "") << "int " << a.name << "["
        << a.size << "];\n";
  if (body_)
    for (const auto& s : body_->stmts) out << s->str(1);
  for (const auto& o : outputs_) out << "  output " << o << ";\n";
  out << "}\n";
  return out.str();
}

void Function::for_each(const std::function<void(const Stmt&)>& fn) const {
  for_each_stmt(const_cast<Function*>(this)->body_,
                [&](Stmt& s) { fn(s); });
}

void Function::for_each(const std::function<void(Stmt&)>& fn) {
  for_each_stmt(body_, fn);
}

size_t Function::stmt_count() const {
  size_t n = 0;
  for_each([&](const Stmt&) { ++n; });
  return n;
}

void Function::validate() const {
  std::set<std::string> array_names;
  for (const auto& a : arrays_) {
    if (a.size == 0) throw Error("array '" + a.name + "' has size 0");
    if (!array_names.insert(a.name).second)
      throw Error("duplicate array '" + a.name + "'");
  }
  std::set<std::string> scalar_names(params_.begin(), params_.end());
  if (scalar_names.size() != params_.size())
    throw Error("duplicate parameter name");

  // Statement ids must be unique: profiles, optimizer regions, and
  // transformation candidates are all keyed by them.
  std::set<int> ids;
  for_each([&](const Stmt& s) {
    if (s.id >= 0 && !ids.insert(s.id).second)
      throw Error("duplicate statement id " + std::to_string(s.id) + " in '" +
                  name_ + "'");
  });

  auto check_expr = [&](const ExprPtr& e) {
    for_each_node(e, [&](const ExprPtr& n) {
      if (n->op() == Op::ArrayRead && !array_names.count(n->name()))
        throw Error("read of undeclared array '" + n->name() + "'");
      if (n->op() == Op::Var && array_names.count(n->name()))
        throw Error("array '" + n->name() + "' used as a scalar");
    });
  };

  for_each([&](const Stmt& s) {
    switch (s.kind) {
      case StmtKind::Assign:
        if (array_names.count(s.target))
          throw Error("assignment to array name '" + s.target + "'");
        check_expr(s.value);
        break;
      case StmtKind::Store:
        if (!array_names.count(s.target))
          throw Error("store to undeclared array '" + s.target + "'");
        check_expr(s.index);
        check_expr(s.value);
        break;
      case StmtKind::If:
        check_expr(s.cond);
        break;
      case StmtKind::While:
        check_expr(s.cond);
        if (s.then_stmts.empty())
          throw Error("empty while body in '" + name_ + "'");
        break;
      case StmtKind::Block:
        break;
    }
  });

  for (const auto& o : outputs_)
    if (array_names.count(o))
      throw Error("output '" + o + "' must be a scalar");
}

}  // namespace fact::ir
