#include "ir/function.hpp"

#include <algorithm>
#include <set>
#include <sstream>

#include "util/error.hpp"

namespace fact::ir {

const ArrayDecl* Function::find_array(const std::string& name) const {
  for (const auto& a : arrays_)
    if (a.name == name) return &a;
  return nullptr;
}

void Function::set_body(StmtPtr b) {
  body_ = std::move(b);
  renumber();
}

Stmt* Function::body() {
  detach_deep(body_);
  return body_.get();
}

void Function::renumber() {
  int next = 0;
  for_each([&](Stmt& s) { s.id = next++; });
}

namespace {

bool has_unnumbered(const StmtPtr& s) {
  if (s->id < 0) return true;
  for (const auto* list : static_cast<const Stmt&>(*s).child_lists())
    for (const auto& c : *list)
      if (has_unnumbered(c)) return true;
  return false;
}

// Preorder numbering that descends — and detaches — only into subtrees
// that actually contain unnumbered statements, so subtrees shared with
// other functions stay shared.
void assign_fresh_rec(StmtPtr& s, int& next) {
  if (!has_unnumbered(s)) return;
  detach(s);
  if (s->id < 0) s->id = next++;
  for (auto* list : s->child_lists())
    for (auto& c : *list) assign_fresh_rec(c, next);
}

}  // namespace

void Function::assign_fresh_ids() {
  if (!body_) return;
  int next = max_stmt_id() + 1;
  assign_fresh_rec(body_, next);
}

int Function::max_stmt_id() const {
  int max_id = -1;
  for_each([&](const Stmt& s) { max_id = std::max(max_id, s.id); });
  return max_id;
}

std::set<int> Function::stmt_ids() const {
  std::set<int> ids;
  for_each([&](const Stmt& s) { ids.insert(s.id); });
  return ids;
}

const Stmt* Function::find_stmt(int id) const {
  const Stmt* found = nullptr;
  for_each([&](const Stmt& s) {
    if (s.id == id) found = &s;
  });
  return found;
}

namespace {

// Fills `path` with (child-list index, element index) steps leading from
// `s` to the statement with `id` (the statement itself is the last step;
// `s` is not considered a match). Preorder, matching the original editor's
// search order.
bool find_path(const StmtPtr& s, int id,
               std::vector<std::pair<size_t, size_t>>& path) {
  const auto lists = static_cast<const Stmt&>(*s).child_lists();
  for (size_t li = 0; li < lists.size(); ++li) {
    const auto& list = *lists[li];
    for (size_t ei = 0; ei < list.size(); ++ei) {
      path.emplace_back(li, ei);
      if (list[ei]->id == id || find_path(list[ei], id, path)) return true;
      path.pop_back();
    }
  }
  return false;
}

}  // namespace

Stmt* Function::find_stmt(int id) {
  if (!body_) return nullptr;
  if (body_->id == id) {
    detach_deep(body_);
    return body_.get();
  }
  std::vector<std::pair<size_t, size_t>> path;
  if (!find_path(body_, id, path)) return nullptr;
  // Copy the spine down to the statement, then make its subtree private:
  // the caller may mutate anything below the returned pointer.
  detach(body_);
  Stmt* cur = body_.get();
  StmtPtr* slot = nullptr;
  for (const auto& [li, ei] : path) {
    slot = &(*cur->child_lists()[li])[ei];
    detach(*slot);
    cur = slot->get();
  }
  detach_deep(*slot);
  return slot->get();
}

Function Function::clone() const {
  Function f(name_);
  f.params_ = params_;
  f.arrays_ = arrays_;
  f.outputs_ = outputs_;
  f.body_ = body_;  // shared; copy-on-write protects both sides
  cow::count_clone();
  return f;
}

Function Function::clone_with(int stmt_id, StmtPtr replacement) const {
  Function f = clone();
  std::vector<StmtPtr> repl;
  if (replacement) repl.push_back(std::move(replacement));
  if (!f.splice(stmt_id, std::move(repl), /*insert_only=*/false))
    throw Error("clone_with: no statement with id " +
                std::to_string(stmt_id) + " in '" + name_ + "'");
  return f;
}

bool Function::splice(int stmt_id, std::vector<StmtPtr> replacement,
                      bool insert_only) {
  if (!body_) return false;
  std::vector<std::pair<size_t, size_t>> path;
  if (!find_path(body_, stmt_id, path)) return false;
  // Copy the spine down to the list that contains the statement; sibling
  // subtrees (and the statement itself) stay shared.
  detach(body_);
  Stmt* cur = body_.get();
  for (size_t k = 0; k + 1 < path.size(); ++k) {
    StmtPtr& slot = (*cur->child_lists()[path[k].first])[path[k].second];
    detach(slot);
    cur = slot.get();
  }
  std::vector<StmtPtr>& list = *cur->child_lists()[path.back().first];
  const size_t at = path.back().second;
  std::vector<StmtPtr> out;
  out.reserve(list.size() + replacement.size());
  for (size_t j = 0; j < at; ++j) out.push_back(std::move(list[j]));
  for (auto& r : replacement) out.push_back(std::move(r));
  if (insert_only) out.push_back(std::move(list[at]));
  for (size_t j = at + 1; j < list.size(); ++j)
    out.push_back(std::move(list[j]));
  list = std::move(out);
  return true;
}

std::string Function::str() const {
  std::ostringstream out;
  out << name_ << "(";
  for (size_t i = 0; i < params_.size(); ++i) {
    if (i) out << ", ";
    out << "int " << params_[i];
  }
  out << ") {\n";
  for (const auto& a : arrays_)
    out << "  " << (a.is_input ? "input " : "") << "int " << a.name << "["
        << a.size << "];\n";
  if (body_)
    for (const auto& s : body_->stmts) out << s->str(1);
  for (const auto& o : outputs_) out << "  output " << o << ";\n";
  out << "}\n";
  return out.str();
}

void Function::for_each(const std::function<void(const Stmt&)>& fn) const {
  // Must use the const walker: with shared subtrees, a "const" walk that
  // const_casts through the mutable path would race with other readers.
  for_each_stmt(body_, fn);
}

void Function::for_each(const std::function<void(Stmt&)>& fn) {
  detach_deep(body_);
  for_each_stmt(body_, fn);
}

size_t Function::stmt_count() const {
  size_t n = 0;
  for_each([&](const Stmt&) { ++n; });
  return n;
}

void Function::validate() const {
  std::set<std::string> array_names;
  for (const auto& a : arrays_) {
    if (a.size == 0) throw Error("array '" + a.name + "' has size 0");
    if (!array_names.insert(a.name).second)
      throw Error("duplicate array '" + a.name + "'");
  }
  std::set<std::string> scalar_names(params_.begin(), params_.end());
  if (scalar_names.size() != params_.size())
    throw Error("duplicate parameter name");

  // Statement ids must be unique: profiles, optimizer regions, and
  // transformation candidates are all keyed by them.
  std::set<int> ids;
  for_each([&](const Stmt& s) {
    if (s.id >= 0 && !ids.insert(s.id).second)
      throw Error("duplicate statement id " + std::to_string(s.id) + " in '" +
                  name_ + "'");
  });

  auto check_expr = [&](const ExprPtr& e) {
    for_each_node(e, [&](const ExprPtr& n) {
      if (n->op() == Op::ArrayRead && !array_names.count(n->name()))
        throw Error("read of undeclared array '" + n->name() + "'");
      if (n->op() == Op::Var && array_names.count(n->name()))
        throw Error("array '" + n->name() + "' used as a scalar");
    });
  };

  for_each([&](const Stmt& s) {
    switch (s.kind) {
      case StmtKind::Assign:
        if (array_names.count(s.target))
          throw Error("assignment to array name '" + s.target + "'");
        check_expr(s.value);
        break;
      case StmtKind::Store:
        if (!array_names.count(s.target))
          throw Error("store to undeclared array '" + s.target + "'");
        check_expr(s.index);
        check_expr(s.value);
        break;
      case StmtKind::If:
        check_expr(s.cond);
        break;
      case StmtKind::While:
        check_expr(s.cond);
        if (s.then_stmts.empty())
          throw Error("empty while body in '" + name_ + "'");
        break;
      case StmtKind::Block:
        break;
    }
  });

  for (const auto& o : outputs_)
    if (array_names.count(o))
      throw Error("output '" + o + "' must be a scalar");
}

}  // namespace fact::ir
