#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace fact::ir {

/// Operation kinds appearing in expressions. The arithmetic / comparison
/// subset maps 1:1 onto functional-unit classes of the paper's library
/// (Section 5: a1, sb1, mt1, cp1, e1, i1, n1, s1); the boolean connectives
/// are controller glue and consume no functional unit.
enum class Op {
  Const,      // integer literal
  Var,        // scalar variable read
  ArrayRead,  // memory read: name[args[0]]
  Add,        // a1 (or i1 when one operand is the constant 1)
  Sub,        // sb1
  Mul,        // mt1
  Lt,         // cp1
  Le,         // cp1
  Gt,         // cp1
  Ge,         // cp1
  Eq,         // e1
  Ne,         // e1
  BitNot,     // n1 (multi-bit inverter)
  Shl,        // s1
  Shr,        // s1
  And,        // boolean, controller glue
  Or,         // boolean, controller glue
  Not,        // boolean, controller glue
  Select,     // args = {cond, if_true, if_false}; the CDFG "select" op
};

class Expr;
/// Expressions are immutable and shared: transformations build new trees
/// that reuse unchanged subtrees, which makes cloning candidate behaviors
/// in the optimizer's population cheap.
using ExprPtr = std::shared_ptr<const Expr>;

/// One node of an immutable expression DAG.
class Expr {
 public:
  Op op() const { return op_; }
  int64_t value() const { return value_; }          // Const only
  const std::string& name() const { return name_; } // Var / ArrayRead only
  const std::vector<ExprPtr>& args() const { return args_; }
  const ExprPtr& arg(size_t i) const { return args_[i]; }
  size_t num_args() const { return args_.size(); }

  /// Structural hash, computed at construction.
  size_t hash() const { return hash_; }

  /// Number of nodes in this subtree (DAG nodes counted once per path;
  /// used as a cheap size metric by transformations).
  size_t tree_size() const;

  /// Deep structural equality.
  static bool equal(const ExprPtr& a, const ExprPtr& b);

  /// Infix rendering, e.g. "(a + b) * x[i]".
  std::string str() const;

  // ---- factories ------------------------------------------------------
  static ExprPtr constant(int64_t v);
  static ExprPtr var(const std::string& name);
  static ExprPtr array_read(const std::string& array, ExprPtr index);
  static ExprPtr unary(Op op, ExprPtr a);
  static ExprPtr binary(Op op, ExprPtr a, ExprPtr b);
  static ExprPtr select(ExprPtr cond, ExprPtr t, ExprPtr f);
  /// Rebuilds a node of the same kind with new children (children.size()
  /// must match the op's arity).
  static ExprPtr rebuild(const Expr& node, std::vector<ExprPtr> children);

 private:
  Expr(Op op, int64_t value, std::string name, std::vector<ExprPtr> args);

  Op op_;
  int64_t value_ = 0;
  std::string name_;
  std::vector<ExprPtr> args_;
  size_t hash_ = 0;
};

/// True for ops whose results are 0/1 truth values.
bool is_comparison(Op op);
/// True for And/Or/Not.
bool is_boolean(Op op);
/// True for ops that commute (Add, Mul, Eq, Ne, And, Or).
bool is_commutative(Op op);
/// True for ops that associate (Add, Mul, And, Or).
bool is_associative(Op op);
/// Human-readable operator token ("+", "<", ...).
const char* op_token(Op op);
/// Arity of an op's args vector (Const/Var: 0, ArrayRead: 1, Select: 3, ...).
int op_arity(Op op);

/// Walks the expression tree in preorder, calling fn on every node.
void for_each_node(const ExprPtr& e, const std::function<void(const ExprPtr&)>& fn);

/// Returns the subexpression at `path` (each element is a child index),
/// or nullptr if the path is invalid.
ExprPtr subexpr_at(const ExprPtr& root, const std::vector<int>& path);

/// Returns a copy of `root` with the subexpression at `path` replaced by
/// `replacement`. Throws fact::Error if the path is invalid.
ExprPtr replace_at(const ExprPtr& root, const std::vector<int>& path,
                   const ExprPtr& replacement);

}  // namespace fact::ir
