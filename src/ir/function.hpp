#pragma once

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "ir/stmt.hpp"

namespace fact::ir {

/// Array declaration. Arrays model the memories of the synthesized design;
/// the paper maps each array to its own memory so that concurrent accesses
/// to distinct arrays never conflict.
struct ArrayDecl {
  std::string name;
  size_t size = 0;
  bool is_input = false;  // initialized from the input trace
};

/// A behavioral description: one top-level function whose body is executed
/// repeatedly (one execution per arrival of new inputs), exactly like the
/// paper's "one execution of the behavior".
class Function {
 public:
  Function() = default;
  explicit Function(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }

  const std::vector<std::string>& params() const { return params_; }
  void add_param(const std::string& p) { params_.push_back(p); }

  const std::vector<ArrayDecl>& arrays() const { return arrays_; }
  void add_array(const ArrayDecl& a) { arrays_.push_back(a); }
  const ArrayDecl* find_array(const std::string& name) const;

  const std::vector<std::string>& outputs() const { return outputs_; }
  void add_output(const std::string& o) { outputs_.push_back(o); }

  /// The body is always a Block statement.
  const Stmt* body() const { return body_.get(); }
  Stmt* body() { return body_.get(); }
  void set_body(StmtPtr b);

  /// Assigns fresh preorder statement ids (0, 1, 2, ...). Called after any
  /// structural edit that adds statements.
  void renumber();

  /// Assigns ids only to statements that have none (id == -1), continuing
  /// past the current maximum. Transformations use this so that existing
  /// statement ids — and therefore optimizer regions and profile keys —
  /// stay stable across rewrites.
  void assign_fresh_ids();

  /// Largest statement id in use, or -1.
  int max_stmt_id() const;

  /// The set of all statement ids (used by the optimizer to detect
  /// transform-created statements).
  std::set<int> stmt_ids() const;

  /// Finds the statement with the given id, or nullptr.
  const Stmt* find_stmt(int id) const;
  Stmt* find_stmt(int id);

  /// Deep copy. Statement ids are preserved, so transformation candidates
  /// expressed as (stmt id, expr path) remain valid on the clone.
  Function clone() const;

  /// Source-like rendering of the whole function.
  std::string str() const;

  /// Preorder walk over every statement in the body.
  void for_each(const std::function<void(const Stmt&)>& fn) const;
  void for_each(const std::function<void(Stmt&)>& fn);

  /// Total number of statements.
  size_t stmt_count() const;

  /// Throws fact::Error if the function is malformed: use of an undeclared
  /// array, store to an input-only name, empty loop body, etc.
  void validate() const;

 private:
  std::string name_;
  std::vector<std::string> params_;
  std::vector<ArrayDecl> arrays_;
  std::vector<std::string> outputs_;
  StmtPtr body_;
};

}  // namespace fact::ir
