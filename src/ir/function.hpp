#pragma once

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "ir/stmt.hpp"

namespace fact::ir {

/// Array declaration. Arrays model the memories of the synthesized design;
/// the paper maps each array to its own memory so that concurrent accesses
/// to distinct arrays never conflict.
struct ArrayDecl {
  std::string name;
  size_t size = 0;
  bool is_input = false;  // initialized from the input trace
};

/// A behavioral description: one top-level function whose body is executed
/// repeatedly (one execution per arrival of new inputs), exactly like the
/// paper's "one execution of the behavior".
class Function {
 public:
  Function() = default;
  explicit Function(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }

  const std::vector<std::string>& params() const { return params_; }
  void add_param(const std::string& p) { params_.push_back(p); }

  const std::vector<ArrayDecl>& arrays() const { return arrays_; }
  void add_array(const ArrayDecl& a) { arrays_.push_back(a); }
  const ArrayDecl* find_array(const std::string& name) const;

  const std::vector<std::string>& outputs() const { return outputs_; }
  void add_output(const std::string& o) { outputs_.push_back(o); }

  /// The body is always a Block statement. The mutable overload is a
  /// copy-on-write barrier: it makes the whole tree uniquely owned first
  /// (callers may mutate anything through the returned pointer), so prefer
  /// find_stmt/splice — which copy only the path to the mutation — on
  /// performance-sensitive paths.
  const Stmt* body() const { return body_.get(); }
  Stmt* body();
  void set_body(StmtPtr b);

  /// Assigns fresh preorder statement ids (0, 1, 2, ...). Called after any
  /// structural edit that adds statements.
  void renumber();

  /// Assigns ids only to statements that have none (id == -1), continuing
  /// past the current maximum. Transformations use this so that existing
  /// statement ids — and therefore optimizer regions and profile keys —
  /// stay stable across rewrites.
  void assign_fresh_ids();

  /// Largest statement id in use, or -1.
  int max_stmt_id() const;

  /// The set of all statement ids (used by the optimizer to detect
  /// transform-created statements).
  std::set<int> stmt_ids() const;

  /// Finds the statement with the given id, or nullptr. The mutable
  /// overload is copy-on-write: it copies the spine from the root to the
  /// statement and makes the statement's subtree uniquely owned, so the
  /// caller may freely mutate through the returned pointer without
  /// affecting functions that share the rest of the tree.
  const Stmt* find_stmt(int id) const;
  Stmt* find_stmt(int id);

  /// O(1) copy sharing the whole body with this function (copy-on-write:
  /// any mutation through the clone's accessors detaches just the touched
  /// path). Statement ids are preserved, so transformation candidates
  /// expressed as (stmt id, expr path) remain valid on the clone.
  Function clone() const;

  /// Path-copying clone: a clone() whose statement `stmt_id` is replaced
  /// by `replacement` (null = delete). Only the root-to-statement spine is
  /// copied; every other subtree is shared with this function. Throws
  /// fact::Error if the id does not exist.
  Function clone_with(int stmt_id, StmtPtr replacement) const;

  /// Replaces the statement with id `stmt_id` by `replacement` (spliced
  /// into the enclosing list; empty deletes), or, with `insert_only`,
  /// inserts `replacement` immediately before it. Copies only the spine
  /// from the root to the enclosing list (copy-on-write). Returns false if
  /// the id is not found. ir::replace_stmt / ir::insert_before wrap this.
  bool splice(int stmt_id, std::vector<StmtPtr> replacement,
              bool insert_only);

  /// Source-like rendering of the whole function.
  std::string str() const;

  /// Preorder walk over every statement in the body. The mutable overload
  /// makes the whole tree uniquely owned first (copy-on-write barrier).
  void for_each(const std::function<void(const Stmt&)>& fn) const;
  void for_each(const std::function<void(Stmt&)>& fn);

  /// Total number of statements.
  size_t stmt_count() const;

  /// Throws fact::Error if the function is malformed: use of an undeclared
  /// array, store to an input-only name, empty loop body, etc.
  void validate() const;

 private:
  std::string name_;
  std::vector<std::string> params_;
  std::vector<ArrayDecl> arrays_;
  std::vector<std::string> outputs_;
  StmtPtr body_;
};

}  // namespace fact::ir
