#include "ir/stmt.hpp"

#include <atomic>
#include <sstream>

#include "obs/metrics.hpp"

namespace fact::ir {

StmtPtr Stmt::assign(std::string var, ExprPtr value) {
  auto s = std::make_shared<Stmt>();
  s->kind = StmtKind::Assign;
  s->target = std::move(var);
  s->value = std::move(value);
  return s;
}

StmtPtr Stmt::store(std::string array, ExprPtr index, ExprPtr value) {
  auto s = std::make_shared<Stmt>();
  s->kind = StmtKind::Store;
  s->target = std::move(array);
  s->index = std::move(index);
  s->value = std::move(value);
  return s;
}

StmtPtr Stmt::if_stmt(ExprPtr cond, std::vector<StmtPtr> then_stmts,
                      std::vector<StmtPtr> else_stmts) {
  auto s = std::make_shared<Stmt>();
  s->kind = StmtKind::If;
  s->cond = std::move(cond);
  s->then_stmts = std::move(then_stmts);
  s->else_stmts = std::move(else_stmts);
  return s;
}

StmtPtr Stmt::while_stmt(ExprPtr cond, std::vector<StmtPtr> body) {
  auto s = std::make_shared<Stmt>();
  s->kind = StmtKind::While;
  s->cond = std::move(cond);
  s->then_stmts = std::move(body);
  return s;
}

StmtPtr Stmt::block(std::vector<StmtPtr> stmts) {
  auto s = std::make_shared<Stmt>();
  s->kind = StmtKind::Block;
  s->stmts = std::move(stmts);
  return s;
}

StmtPtr Stmt::clone() const {
  auto s = std::make_shared<Stmt>();
  s->kind = kind;
  s->id = id;
  s->target = target;
  s->index = index;  // expressions are immutable and shared
  s->value = value;
  s->cond = cond;
  auto clone_list = [](const std::vector<StmtPtr>& in) {
    std::vector<StmtPtr> out;
    out.reserve(in.size());
    for (const auto& c : in) out.push_back(c->clone());
    return out;
  };
  s->then_stmts = clone_list(then_stmts);
  s->else_stmts = clone_list(else_stmts);
  s->stmts = clone_list(stmts);
  return s;
}

std::vector<const ExprPtr*> Stmt::expr_slots() const {
  std::vector<const ExprPtr*> out;
  if (cond) out.push_back(&cond);
  if (index) out.push_back(&index);
  if (value) out.push_back(&value);
  return out;
}

std::vector<ExprPtr*> Stmt::expr_slots() {
  std::vector<ExprPtr*> out;
  if (cond) out.push_back(&cond);
  if (index) out.push_back(&index);
  if (value) out.push_back(&value);
  return out;
}

std::vector<const std::vector<StmtPtr>*> Stmt::child_lists() const {
  switch (kind) {
    case StmtKind::If:
      return {&then_stmts, &else_stmts};
    case StmtKind::While:
      return {&then_stmts};
    case StmtKind::Block:
      return {&stmts};
    default:
      return {};
  }
}

std::vector<std::vector<StmtPtr>*> Stmt::child_lists() {
  switch (kind) {
    case StmtKind::If:
      return {&then_stmts, &else_stmts};
    case StmtKind::While:
      return {&then_stmts};
    case StmtKind::Block:
      return {&stmts};
    default:
      return {};
  }
}

std::string Stmt::str(int indent) const {
  const std::string pad(static_cast<size_t>(indent) * 2, ' ');
  std::ostringstream out;
  auto print_list = [&](const std::vector<StmtPtr>& list) {
    for (const auto& s : list) out << s->str(indent + 1);
  };
  switch (kind) {
    case StmtKind::Assign:
      out << pad << target << " = " << value->str() << ";\n";
      break;
    case StmtKind::Store:
      out << pad << target << "[" << index->str() << "] = " << value->str()
          << ";\n";
      break;
    case StmtKind::If:
      out << pad << "if (" << cond->str() << ") {\n";
      print_list(then_stmts);
      if (!else_stmts.empty()) {
        out << pad << "} else {\n";
        print_list(else_stmts);
      }
      out << pad << "}\n";
      break;
    case StmtKind::While:
      out << pad << "while (" << cond->str() << ") {\n";
      print_list(then_stmts);
      out << pad << "}\n";
      break;
    case StmtKind::Block:
      out << pad << "{\n";
      print_list(stmts);
      out << pad << "}\n";
      break;
  }
  return out.str();
}

void for_each_stmt(const StmtPtr& s,
                   const std::function<void(const Stmt&)>& fn) {
  if (!s) return;
  fn(*s);
  for (const auto* list : s->child_lists())
    for (const auto& c : *list) for_each_stmt(c, fn);
}

void for_each_stmt(StmtPtr& s, const std::function<void(Stmt&)>& fn) {
  if (!s) return;
  fn(*s);
  for (auto* list : s->child_lists())
    for (auto& c : *list) for_each_stmt(c, fn);
}

namespace cow {
namespace {
// Registry-backed (obs::Registry::global()) so the COW counters show up in
// every metrics export alongside the cache and search counters; the
// namespace functions stay as the stable API.
obs::Counter& clones_counter() {
  static obs::Counter& c = obs::Registry::global().counter(
      "fact_ir_cow_clones_total", "O(1) shared Function::clone() calls");
  return c;
}
obs::Counter& node_copies_counter() {
  static obs::Counter& c = obs::Registry::global().counter(
      "fact_ir_cow_node_copies_total",
      "Stmt nodes actually copied by detach()");
  return c;
}
}  // namespace

uint64_t clones() { return clones_counter().value(); }
uint64_t node_copies() { return node_copies_counter().value(); }
void reset() {
  clones_counter().reset();
  node_copies_counter().reset();
}
void count_clone() { clones_counter().inc(); }
void count_node_copy() { node_copies_counter().inc(); }
}  // namespace cow

void detach(StmtPtr& s) {
  // use_count() == 1 means this StmtPtr is the only owner (no other thread
  // can be adding references — that would require another owner to copy
  // from), so mutating through it is private.
  if (!s || s.use_count() == 1) return;
  cow::count_node_copy();
  // The default copy shares the ExprPtrs (expressions are immutable) and
  // copies the child-pointer vectors, leaving the child subtrees shared.
  s = std::make_shared<Stmt>(*s);
}

void detach_deep(StmtPtr& s) {
  if (!s) return;
  detach(s);
  // Even a uniquely-owned node can hold shared children; always recurse.
  for (auto* list : s->child_lists())
    for (auto& c : *list) detach_deep(c);
}

}  // namespace fact::ir
