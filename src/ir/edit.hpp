#pragma once

#include <map>
#include <string>
#include <vector>

#include "ir/function.hpp"

namespace fact::ir {

/// Replaces the statement with id `stmt_id` by `replacement` (spliced in
/// place; may be empty to delete). Returns false if the id is not found.
/// The caller must renumber() afterwards if ids are needed again.
bool replace_stmt(Function& fn, int stmt_id, std::vector<StmtPtr> replacement);

/// Inserts statements immediately before the statement with id `stmt_id`
/// in its enclosing list. Returns false if the id is not found.
bool insert_before(Function& fn, int stmt_id, std::vector<StmtPtr> stmts);

/// Substitutes variables by expressions throughout an expression tree.
ExprPtr substitute(const ExprPtr& e,
                   const std::map<std::string, ExprPtr>& subst);

/// Symbolically evaluates a list of Assign statements: returns the final
/// value of every written variable as an expression over the *pre-list*
/// variable values. Used by if-conversion (speculation). All statements
/// must be Assigns.
std::map<std::string, ExprPtr> symbolic_assigns(
    const std::vector<StmtPtr>& stmts);

/// A name that cannot collide with source-level identifiers (the parser
/// rejects leading underscores only by convention; generated temps embed a
/// counter namespaced by `tag`).
std::string fresh_name(const Function& fn, const std::string& tag);

/// Variables assigned anywhere in a statement list (recursively).
std::vector<std::string> written_vars(const std::vector<StmtPtr>& stmts);

/// True if every statement in the list is a scalar Assign (no stores, no
/// control flow) — the precondition for if-conversion.
bool all_scalar_assigns(const std::vector<StmtPtr>& stmts);

/// Recursively clears statement ids (sets them to -1) so that
/// Function::assign_fresh_ids() treats the statements as new. Used when a
/// transformation duplicates statements (e.g. loop unrolling).
void clear_ids(std::vector<StmtPtr>& stmts);

}  // namespace fact::ir
