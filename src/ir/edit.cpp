#include "ir/edit.hpp"

#include <set>

#include "util/error.hpp"

namespace fact::ir {

namespace {

bool replace_in_list(std::vector<StmtPtr>& list, int stmt_id,
                     std::vector<StmtPtr>& replacement, bool insert_only) {
  for (size_t i = 0; i < list.size(); ++i) {
    if (list[i]->id == stmt_id) {
      std::vector<StmtPtr> out;
      out.reserve(list.size() + replacement.size());
      for (size_t j = 0; j < i; ++j) out.push_back(std::move(list[j]));
      for (auto& r : replacement) out.push_back(std::move(r));
      if (insert_only) out.push_back(std::move(list[i]));
      for (size_t j = i + 1; j < list.size(); ++j)
        out.push_back(std::move(list[j]));
      list = std::move(out);
      return true;
    }
    for (auto* child : list[i]->child_lists())
      if (replace_in_list(*child, stmt_id, replacement, insert_only))
        return true;
  }
  return false;
}

}  // namespace

bool replace_stmt(Function& fn, int stmt_id,
                  std::vector<StmtPtr> replacement) {
  if (!fn.body()) return false;
  return replace_in_list(fn.body()->stmts, stmt_id, replacement,
                         /*insert_only=*/false);
}

bool insert_before(Function& fn, int stmt_id, std::vector<StmtPtr> stmts) {
  if (!fn.body()) return false;
  return replace_in_list(fn.body()->stmts, stmt_id, stmts,
                         /*insert_only=*/true);
}

ExprPtr substitute(const ExprPtr& e,
                   const std::map<std::string, ExprPtr>& subst) {
  if (e->op() == Op::Var) {
    auto it = subst.find(e->name());
    return it == subst.end() ? e : it->second;
  }
  if (e->num_args() == 0) return e;
  bool changed = false;
  std::vector<ExprPtr> children;
  children.reserve(e->num_args());
  for (const auto& a : e->args()) {
    ExprPtr sub = substitute(a, subst);
    if (sub.get() != a.get()) changed = true;
    children.push_back(std::move(sub));
  }
  return changed ? Expr::rebuild(*e, std::move(children)) : e;
}

std::map<std::string, ExprPtr> symbolic_assigns(
    const std::vector<StmtPtr>& stmts) {
  std::map<std::string, ExprPtr> env;
  for (const auto& s : stmts) {
    if (s->kind != StmtKind::Assign)
      throw Error("symbolic_assigns: non-assign statement");
    env[s->target] = substitute(s->value, env);
  }
  return env;
}

std::string fresh_name(const Function& fn, const std::string& tag) {
  std::set<std::string> used(fn.params().begin(), fn.params().end());
  fn.for_each([&](const Stmt& s) {
    if (s.kind == StmtKind::Assign) used.insert(s.target);
  });
  for (int i = 0;; ++i) {
    std::string name = "t_" + tag + std::to_string(i);
    if (!used.count(name)) return name;
  }
}

std::vector<std::string> written_vars(const std::vector<StmtPtr>& stmts) {
  std::set<std::string> seen;
  std::vector<std::string> out;
  std::function<void(const std::vector<StmtPtr>&)> walk =
      [&](const std::vector<StmtPtr>& list) {
        for (const auto& s : list) {
          if (s->kind == StmtKind::Assign && seen.insert(s->target).second)
            out.push_back(s->target);
          for (const auto* child : s->child_lists()) walk(*child);
        }
      };
  walk(stmts);
  return out;
}

bool all_scalar_assigns(const std::vector<StmtPtr>& stmts) {
  for (const auto& s : stmts)
    if (s->kind != StmtKind::Assign) return false;
  return true;
}

void clear_ids(std::vector<StmtPtr>& stmts) {
  for (auto& s : stmts) {
    s->id = -1;
    for (auto* child : s->child_lists()) clear_ids(*child);
  }
}

}  // namespace fact::ir
