#include "ir/edit.hpp"

#include <set>

#include "util/error.hpp"

namespace fact::ir {

bool replace_stmt(Function& fn, int stmt_id,
                  std::vector<StmtPtr> replacement) {
  return fn.splice(stmt_id, std::move(replacement), /*insert_only=*/false);
}

bool insert_before(Function& fn, int stmt_id, std::vector<StmtPtr> stmts) {
  return fn.splice(stmt_id, std::move(stmts), /*insert_only=*/true);
}

ExprPtr substitute(const ExprPtr& e,
                   const std::map<std::string, ExprPtr>& subst) {
  if (e->op() == Op::Var) {
    auto it = subst.find(e->name());
    return it == subst.end() ? e : it->second;
  }
  if (e->num_args() == 0) return e;
  bool changed = false;
  std::vector<ExprPtr> children;
  children.reserve(e->num_args());
  for (const auto& a : e->args()) {
    ExprPtr sub = substitute(a, subst);
    if (sub.get() != a.get()) changed = true;
    children.push_back(std::move(sub));
  }
  return changed ? Expr::rebuild(*e, std::move(children)) : e;
}

std::map<std::string, ExprPtr> symbolic_assigns(
    const std::vector<StmtPtr>& stmts) {
  std::map<std::string, ExprPtr> env;
  for (const auto& s : stmts) {
    if (s->kind != StmtKind::Assign)
      throw Error("symbolic_assigns: non-assign statement");
    env[s->target] = substitute(s->value, env);
  }
  return env;
}

std::string fresh_name(const Function& fn, const std::string& tag) {
  std::set<std::string> used(fn.params().begin(), fn.params().end());
  fn.for_each([&](const Stmt& s) {
    if (s.kind == StmtKind::Assign) used.insert(s.target);
  });
  for (int i = 0;; ++i) {
    std::string name = "t_" + tag + std::to_string(i);
    if (!used.count(name)) return name;
  }
}

std::vector<std::string> written_vars(const std::vector<StmtPtr>& stmts) {
  std::set<std::string> seen;
  std::vector<std::string> out;
  std::function<void(const std::vector<StmtPtr>&)> walk =
      [&](const std::vector<StmtPtr>& list) {
        for (const auto& s : list) {
          if (s->kind == StmtKind::Assign && seen.insert(s->target).second)
            out.push_back(s->target);
          for (const auto* child : s->child_lists()) walk(*child);
        }
      };
  walk(stmts);
  return out;
}

bool all_scalar_assigns(const std::vector<StmtPtr>& stmts) {
  for (const auto& s : stmts)
    if (s->kind != StmtKind::Assign) return false;
  return true;
}

void clear_ids(std::vector<StmtPtr>& stmts) {
  for (auto& s : stmts) {
    detach(s);  // callers usually pass fresh clones; detach makes it safe
                // on shared statements too
    s->id = -1;
    for (auto* child : s->child_lists()) clear_ids(*child);
  }
}

}  // namespace fact::ir
