#include "ir/hash.hpp"

#include <functional>
#include <string>

#include "ir/function.hpp"

namespace fact::ir {

namespace {

/// Order-sensitive fold: splitmix64 finalizer over the value, mixed into
/// the running seed with a multiply so that permuted sequences disagree.
uint64_t mix(uint64_t seed, uint64_t v) {
  v += 0x9E3779B97F4A7C15ull;
  v = (v ^ (v >> 30)) * 0xBF58476D1CE4E5B9ull;
  v = (v ^ (v >> 27)) * 0x94D049BB133111EBull;
  v ^= v >> 31;
  return seed * 0x100000001B3ull ^ v;
}

uint64_t mix(uint64_t seed, const std::string& s) {
  return mix(seed, std::hash<std::string>{}(s));
}

}  // namespace

uint64_t structural_hash(const Stmt& s) {
  uint64_t h = mix(0x57A7u, static_cast<uint64_t>(s.kind));
  h = mix(h, s.target);
  // expr_slots() returns only the populated slots, but in a kind-dependent
  // fixed order, so together with `kind` the sequence is unambiguous.
  for (const auto* slot : s.expr_slots())
    h = mix(h, static_cast<uint64_t>((*slot)->hash()));
  for (const auto* list : s.child_lists()) {
    // Length marker separates adjacent lists (then/else, etc.) so moving a
    // statement across the boundary changes the hash.
    h = mix(h, 0xC0FFEEu + list->size());
    for (const auto& c : *list) h = mix(h, structural_hash(*c));
  }
  return h;
}

uint64_t fragment_hash(const Stmt& s) {
  uint64_t h = mix(0xF4A6u, static_cast<uint64_t>(s.kind));
  h = mix(h, static_cast<uint64_t>(static_cast<int64_t>(s.id)));
  h = mix(h, s.target);
  for (const auto* slot : s.expr_slots())
    h = mix(h, static_cast<uint64_t>((*slot)->hash()));
  for (const auto* list : s.child_lists()) {
    h = mix(h, 0xC0FFEEu + list->size());
    for (const auto& c : *list) h = mix(h, fragment_hash(*c));
  }
  return h;
}

uint64_t structural_hash(const Function& fn) {
  uint64_t h = mix(0xFAC7u, fn.name());
  h = mix(h, 0x1000u + fn.params().size());
  for (const auto& p : fn.params()) h = mix(h, p);
  h = mix(h, 0x2000u + fn.arrays().size());
  for (const auto& a : fn.arrays()) {
    h = mix(h, a.name);
    h = mix(h, a.size);
    h = mix(h, a.is_input ? 1u : 0u);
  }
  h = mix(h, 0x3000u + fn.outputs().size());
  for (const auto& o : fn.outputs()) h = mix(h, o);
  if (fn.body()) h = mix(h, structural_hash(*fn.body()));
  return h;
}

}  // namespace fact::ir
