#pragma once

#include <cstdint>

namespace fact::ir {

class Function;
struct Stmt;

/// 64-bit structural hash of a statement subtree. Two statements hash
/// equal iff (up to 64-bit collisions) they have the same shape: kind,
/// target name, expression trees, and child statements, in order.
///
/// Statement ids are deliberately ignored — the hash identifies *behavior
/// structure*, matching what Function::str() used to feed the optimizer's
/// dedup, so variants reached through different transform paths (whose
/// fresh ids differ) still collapse. The hash is incremental: Expr nodes
/// carry a hash computed at construction and shared subtrees are never
/// re-traversed, so hashing a function costs O(statements), not O(nodes).
uint64_t structural_hash(const Stmt& s);

/// Structural hash of a whole function: signature (name, params, arrays,
/// outputs) plus the body. Replaces hashing Function::str() in the
/// optimizer's dedup and keys the evaluation memo cache.
uint64_t structural_hash(const Function& fn);

/// Fragment hash: structural_hash plus every statement id in the subtree.
/// Keys the scheduler's fragment cache, where two regions may only share a
/// cached schedule if their DFG annotations — which record originating
/// statement ids — are identical too. Ids are stable across clones, so a
/// region untouched by a transform keys the same fragment in parent and
/// child; transform-created statements get fresh ids and therefore fresh
/// keys.
uint64_t fragment_hash(const Stmt& s);

}  // namespace fact::ir
