#pragma once

#include "rtl/plan.hpp"
#include "sim/interp.hpp"

namespace fact::rtl {

struct RtlSimResult {
  sim::Observation obs;   // outputs + final memory contents
  long cycles = 0;        // clock cycles to the done pulse
  bool completed = false; // done observed before the cycle cap
};

/// Cycle-level execution of an RtlPlan: exactly the semantics the Verilog
/// backend prints (blocking assignments in step order, shadow captures,
/// ordered transitions, parameter latching at boundaries). One execution
/// of the behavior is run per call, starting from reset, with the
/// stimulus' parameter values and preloaded input memories; memory indices
/// wrap modulo the array size, matching the behavioral interpreter.
///
/// Used by the test suite to prove the emitted hardware is functionally
/// equivalent to the behavioral interpreter.
RtlSimResult simulate_rtl(const ir::Function& fn, const RtlPlan& plan,
                          const sim::Stimulus& stimulus,
                          long max_cycles = 1'000'000);

}  // namespace fact::rtl
