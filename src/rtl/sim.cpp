#include "rtl/sim.hpp"

#include <map>

#include "util/error.hpp"

namespace fact::rtl {

namespace {

bool is_number(const std::string& t) {
  if (t.empty()) return false;
  size_t i = t[0] == '-' ? 1 : 0;
  if (i >= t.size()) return false;
  for (; i < t.size(); ++i)
    if (t[i] < '0' || t[i] > '9') return false;
  return true;
}

int64_t wrap_index(int64_t idx, size_t size) {
  const int64_t n = static_cast<int64_t>(size);
  int64_t m = idx % n;
  if (m < 0) m += n;
  return m;
}

}  // namespace

RtlSimResult simulate_rtl(const ir::Function& fn, const RtlPlan& plan,
                          const sim::Stimulus& stimulus, long max_cycles) {
  std::map<std::string, int64_t> regs;  // vars, shadows, wires
  std::map<std::string, std::vector<int64_t>> mems;

  auto read = [&](const std::string& tok) -> int64_t {
    if (is_number(tok)) return std::stoll(tok);
    auto it = regs.find(tok);
    return it == regs.end() ? 0 : it->second;
  };

  // Reset: latch parameters, preload input memories.
  for (const auto& p : fn.params()) {
    auto it = stimulus.params.find(p);
    regs[p] = it == stimulus.params.end() ? 0 : it->second;
  }
  for (const auto& a : fn.arrays()) {
    auto& mem = mems[a.name];
    mem.assign(a.size, 0);
    if (a.is_input) {
      auto it = stimulus.arrays.find(a.name);
      if (it != stimulus.arrays.end()) {
        const size_t n = std::min(a.size, it->second.size());
        for (size_t i = 0; i < n; ++i) mem[i] = it->second[i];
      }
    }
  }

  RtlSimResult result;
  int state = plan.entry;
  for (long cycle = 0; cycle < max_cycles; ++cycle) {
    const RtlState& st = plan.states[static_cast<size_t>(state)];
    result.cycles = cycle + 1;

    for (const RtlStep& step : st.steps) {
      for (const auto& v : step.captures) regs[v + "__pre"] = regs[v];
      std::vector<int64_t> src;
      src.reserve(step.srcs.size());
      for (const auto& tok : step.srcs) src.push_back(read(tok));

      if (step.op.is_store) {
        auto& mem = mems.at(step.op.array);
        mem[static_cast<size_t>(wrap_index(src[0], mem.size()))] = src[1];
        continue;
      }

      int64_t value = 0;
      switch (step.op.op) {
        case ir::Op::Add: value = src[0] + src[1]; break;
        case ir::Op::Sub: value = src[0] - src[1]; break;
        case ir::Op::Mul: value = src[0] * src[1]; break;
        case ir::Op::Shl:
          value = static_cast<int64_t>(static_cast<uint64_t>(src[0])
                                       << (src[1] & 63));
          break;
        case ir::Op::Shr: value = src[0] >> (src[1] & 63); break;
        case ir::Op::Lt: value = src[0] < src[1]; break;
        case ir::Op::Le: value = src[0] <= src[1]; break;
        case ir::Op::Gt: value = src[0] > src[1]; break;
        case ir::Op::Ge: value = src[0] >= src[1]; break;
        case ir::Op::Eq: value = src[0] == src[1]; break;
        case ir::Op::Ne: value = src[0] != src[1]; break;
        case ir::Op::BitNot: value = ~src[0]; break;
        case ir::Op::Not: value = src[0] == 0; break;
        case ir::Op::And: value = src[0] != 0 && src[1] != 0; break;
        case ir::Op::Or: value = src[0] != 0 || src[1] != 0; break;
        case ir::Op::Select: value = src[0] != 0 ? src[1] : src[2]; break;
        case ir::Op::Var: value = src.empty() ? 0 : src[0]; break;
        case ir::Op::ArrayRead: {
          const auto& mem = mems.at(step.op.array);
          value = mem[static_cast<size_t>(wrap_index(src[0], mem.size()))];
          break;
        }
        default:
          throw Error("rtl sim: unsupported op");
      }
      regs[step.op.value_name] = value;
      if (!step.op.def_var.empty()) regs[step.op.def_var] = value;
    }

    // Transitions: first match fires.
    bool moved = false;
    for (const RtlTransition& t : st.transitions) {
      bool fire = t.signal.empty();
      if (!fire) {
        const bool truth = read(t.signal) != 0;
        fire = truth == t.on_true;
      }
      if (!fire) continue;
      moved = true;
      if (t.boundary) {
        result.completed = true;
        for (const auto& o : fn.outputs()) result.obs.outputs[o] = read(o);
        result.obs.arrays = std::move(mems);
        return result;
      }
      state = t.target;
      break;
    }
    if (!moved) throw Error("rtl sim: no transition fired");
  }
  return result;  // completed == false: cycle cap hit
}

}  // namespace fact::rtl
