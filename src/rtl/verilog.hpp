#pragma once

#include <string>

#include "bind/binding.hpp"
#include "ir/function.hpp"
#include "stg/stg.hpp"

namespace fact::rtl {

struct RtlOptions {
  int width = 32;            // datapath width
  std::string module_name;   // defaults to the function name
};

/// Emits a synthesizable-style behavioral Verilog module from a scheduled
/// STG: one FSM state per STG state, the state's operations as blocking
/// assignments (chained combinationally within the cycle, mirroring the
/// scheduler's operator chaining), IR variables as registers, arrays as
/// internal memories, and conditional transitions driven by the wires the
/// scheduler recorded as each state's condition signals.
///
/// Scope notes (documented limitations of the preview backend):
///  * Pipelined kernels are emitted in dataflow order, i.e. the module is
///    functionally equivalent to the *non-overlapped* execution; iteration
///    overlap affects timing only. Cross-state anti-dependences that the
///    scheduler relaxed via modulo variable expansion are restored with
///    explicit shadow registers (`<var>__pre`).
///  * Input arrays are internal memories expected to be preloaded by the
///    testbench (hierarchical reference or readmemh).
///  * The `done` output pulses on execution-boundary transitions.
std::string emit_verilog(const ir::Function& fn, const stg::Stg& stg,
                         const RtlOptions& opts = {});

}  // namespace fact::rtl
