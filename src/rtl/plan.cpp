#include "rtl/plan.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "util/error.hpp"

namespace fact::rtl {

namespace {

bool is_number(const std::string& t) {
  if (t.empty()) return false;
  size_t i = t[0] == '-' ? 1 : 0;
  if (i >= t.size()) return false;
  for (; i < t.size(); ++i)
    if (t[i] < '0' || t[i] > '9') return false;
  return true;
}

bool is_wire_name(const std::string& t) {
  if (t.size() < 2 || t[0] != 'w') return false;
  for (size_t i = 1; i < t.size(); ++i)
    if (t[i] < '0' || t[i] > '9') return false;
  return true;
}

}  // namespace

RtlPlan build_rtl_plan(const ir::Function& fn, const stg::Stg& stg) {
  RtlPlan plan;
  plan.entry = stg.entry();
  plan.states.resize(stg.num_states());

  // Inventory and emission positions.
  std::map<std::string, long> position;
  std::set<std::string> defined_vars;
  {
    long pos = 0;
    for (size_t s = 0; s < stg.num_states(); ++s) {
      for (const auto& op : stg.state(static_cast<int>(s)).ops) {
        if (position.find(op.value_name) == position.end())
          position[op.value_name] = pos++;
        if (is_wire_name(op.value_name)) plan.wires.insert(op.value_name);
        if (!op.def_var.empty()) {
          plan.vars.insert(op.def_var);
          defined_vars.insert(op.def_var);
        }
        for (const auto& operand : op.operands)
          if (!is_number(operand) && !is_wire_name(operand))
            plan.vars.insert(operand);
      }
    }
  }
  for (const auto& p : fn.params()) {
    if (defined_vars.count(p)) {
      plan.written_params.insert(p);
    }
    plan.vars.erase(p);
  }
  for (const auto& p : plan.written_params) plan.vars.insert(p);

  // Shadow analysis. A pre-reader (an op the scheduler allowed to float
  // past a register update) must read the captured old value exactly when
  // the update executes before it in emission order. The decision is per
  // occurrence: the same op sits before its definition in the kernel ring
  // (reads the register directly) but after it in the linear prologue
  // (reads the shadow).
  //
  // reader wire -> the defining op wires whose pre-update value it needs.
  std::map<std::string, std::set<std::string>> linked_defs;
  // def occurrences per variable: (state, index, wire, pipeline lag).
  struct DefSite {
    int state;
    int idx;
    std::string wire;
    int lag;
  };
  std::map<std::string, std::vector<DefSite>> def_sites;
  for (size_t s = 0; s < stg.num_states(); ++s) {
    const auto& ops = stg.state(static_cast<int>(s)).ops;
    for (size_t oi = 0; oi < ops.size(); ++oi) {
      const auto& op = ops[oi];
      if (op.def_var.empty()) continue;
      def_sites[op.def_var].push_back(
          {static_cast<int>(s), static_cast<int>(oi), op.value_name, op.lag});
      for (const auto& reader : op.pre_readers)
        linked_defs[reader].insert(op.value_name);
    }
  }
  // State-to-state reachability (over transitions), used to recognize
  // rings: two states on a common cycle execute repeatedly, so a def in a
  // later ring state reaches the reader as the *previous traversal's*
  // update.
  const size_t n_states_total = stg.num_states();
  std::vector<std::vector<bool>> reaches(
      n_states_total, std::vector<bool>(n_states_total, false));
  for (size_t from = 0; from < n_states_total; ++from) {
    std::vector<int> work{static_cast<int>(from)};
    while (!work.empty()) {
      const int cur = work.back();
      work.pop_back();
      for (int ei : stg.state(cur).out_edges) {
        const stg::Edge& e = stg.edge(ei);
        if (e.exec_boundary) continue;  // rings live within one execution
        if (!reaches[from][static_cast<size_t>(e.to)]) {
          reaches[from][static_cast<size_t>(e.to)] = true;
          work.push_back(e.to);
        }
      }
    }
  }
  auto ring_of = [&](int s) { return stg.state(s).ring_id; };

  // Shadow decision for reader occurrence (state, idx) and variable v:
  // the value the reader observes comes from the nearest update executed
  // before it.
  //  * An update earlier in the SAME state decides: a scheduler-floated
  //    one -> shadow; a program-order one -> direct.
  //  * An update later in the same state, or in a later state of the same
  //    ring, is the previous traversal's update: exactly the value a
  //    floated reader wants -> direct.
  //  * Otherwise the nearest preceding update (earlier ring state first,
  //    then earlier linear states such as the prologue) decides.
  auto needs_shadow = [&](const stg::OpInstance& reader_op,
                          const std::string& v, int state, int idx) {
    const std::string& reader = reader_op.value_name;
    auto sites = def_sites.find(v);
    if (sites == def_sites.end()) return false;
    auto linked = linked_defs.find(reader);
    auto is_linked = [&](const DefSite& d) {
      return linked != linked_defs.end() && linked->second.count(d.wire);
    };
    // Iteration arithmetic: the most recent execution of a def running
    // `executed` (already, in the current pass/traversal) is lag_d
    // iterations behind the newest in-flight iteration; otherwise its
    // latest run was one traversal earlier (lag_d + 1). A linked
    // (floated-past) reader wants the value after the iteration
    // (lag_r + 1) behind; the shadow register rolls exactly one update
    // further back than the register. Linear states carry lag 0, which
    // reduces this to the classic "floated def already ran -> shadow".
    auto decide = [&](const DefSite& d, bool executed) {
      if (!is_linked(d)) return false;  // program-order read: direct
      const int most_recent = d.lag + (executed ? 0 : 1);
      const int desired = reader_op.lag + 1;
      return most_recent == desired - 1;  // shadow compensates one update
    };

    const int my_ring = ring_of(state);
    const DefSite* same_before = nullptr;
    const DefSite* same_after = nullptr;
    const DefSite* ring_before = nullptr;
    const DefSite* ring_after = nullptr;
    const DefSite* earlier = nullptr;
    for (const auto& d : sites->second) {
      if (d.state == state) {
        if (d.idx < idx) {
          if (!same_before || d.idx > same_before->idx) same_before = &d;
        } else {
          same_after = &d;
        }
      } else if (my_ring >= 0 && ring_of(d.state) == my_ring) {
        if (d.state < state) {
          if (!ring_before || d.state > ring_before->state) ring_before = &d;
        } else {
          ring_after = &d;
        }
      } else if (d.state < state) {
        if (!earlier || d.state > earlier->state ||
            (d.state == earlier->state && d.idx > earlier->idx))
          earlier = &d;
      }
    }
    if (same_before) return decide(*same_before, true);
    if (same_after) return decide(*same_after, false);
    if (ring_after) return decide(*ring_after, false);
    if (ring_before) return decide(*ring_before, true);
    if (earlier) {
      // The nearest preceding update may sit inside a kernel ring the
      // reader has already left (a drain state). The ring's final
      // traversal was cut short at its exit state: updates at or before
      // the exit executed once more; updates past it did not.
      const int def_ring = ring_of(earlier->state);
      if (def_ring >= 0) {
        int exit_state = -1;
        for (size_t u = 0; u < n_states_total; ++u) {
          if (ring_of(static_cast<int>(u)) != def_ring) continue;
          for (int ei : stg.state(static_cast<int>(u)).out_edges) {
            const stg::Edge& e = stg.edge(ei);
            if (e.exec_boundary) continue;
            if (ring_of(e.to) == def_ring) continue;  // stays in ring
            if (e.to == state ||
                reaches[static_cast<size_t>(e.to)][static_cast<size_t>(state)])
              exit_state = std::max(exit_state, static_cast<int>(u));
          }
        }
        const bool ran_final =
            exit_state < 0 || earlier->state <= exit_state;
        return decide(*earlier, ran_final);
      }
      return decide(*earlier, true);
    }
    return false;
  };

  // Steps.
  for (size_t s = 0; s < stg.num_states(); ++s) {
    const stg::State& st = stg.state(static_cast<int>(s));
    RtlState& out = plan.states[s];
    for (size_t oi = 0; oi < st.ops.size(); ++oi) {
      const auto& op = st.ops[oi];
      RtlStep step;
      step.op = op;
      for (const auto& operand : op.operands) {
        if (needs_shadow(op, operand, static_cast<int>(s),
                         static_cast<int>(oi))) {
          step.srcs.push_back(operand + "__pre");
          plan.shadowed.insert(operand);
        } else {
          step.srcs.push_back(operand);
        }
      }
      out.steps.push_back(std::move(step));
    }

    // Transitions: exit-style edges consume successive condition signals;
    // T/F pairs share one. The final edge is the unconditional else.
    std::vector<std::string> signals;
    {
      std::stringstream ss(st.cond_signal);
      std::string tok;
      while (std::getline(ss, tok, ',')) signals.push_back(tok);
    }
    size_t sig = 0;
    for (size_t k = 0; k < st.out_edges.size(); ++k) {
      const stg::Edge& e = stg.edge(st.out_edges[k]);
      RtlTransition t;
      t.target = e.to;
      t.boundary = e.exec_boundary;
      if (k + 1 == st.out_edges.size()) {
        t.signal.clear();  // else
      } else {
        t.signal = sig < signals.size() ? signals[sig] : "";
        t.on_true = e.cond_label == "T" || e.cond_label == "loop";
        if (e.cond_label != "T") ++sig;  // F pairs with its T's signal
      }
      out.transitions.push_back(std::move(t));
    }
    if (out.transitions.empty())
      throw Error("rtl: STG state without outgoing transition");
  }

  // Second pass: attach shadow captures. Every state that updates a
  // shadowed variable captures its incoming value just before the first
  // update, so readers anywhere downstream (same state or later states of
  // the traversal) can observe the pre-update value.
  for (auto& state : plan.states) {
    std::set<std::string> captured;
    for (auto& step : state.steps) {
      if (step.op.def_var.empty()) continue;
      if (!plan.shadowed.count(step.op.def_var)) continue;
      if (captured.insert(step.op.def_var).second)
        step.captures.push_back(step.op.def_var);
    }
  }
  return plan;
}

}  // namespace fact::rtl
