#pragma once

#include <set>
#include <string>
#include <vector>

#include "ir/function.hpp"
#include "stg/stg.hpp"

namespace fact::rtl {

/// One datapath action inside a state, in emission order. `srcs` are the
/// operand tokens after shadow-register rewriting: a decimal literal, a
/// register (IR variable) name, a wire name, or "<var>__pre".
struct RtlStep {
  stg::OpInstance op;
  std::vector<std::string> srcs;
  /// Shadow captures to perform before this step: each named variable v
  /// is copied into v__pre (the step is about to overwrite v while later
  /// steps still need the old value).
  std::vector<std::string> captures;
};

/// One FSM transition. Evaluated in order; the first match fires. An empty
/// signal always fires (the else branch). `on_true` selects firing on
/// signal != 0 (loop taken / branch true) vs signal == 0 (exit / else).
struct RtlTransition {
  std::string signal;
  bool on_true = true;
  int target = -1;
  bool boundary = false;  // completes one execution of the behavior
};

struct RtlState {
  std::vector<RtlStep> steps;
  std::vector<RtlTransition> transitions;
};

/// The complete FSM + datapath plan derived from a scheduled STG — the
/// single source of truth for both the Verilog printer and the cycle-level
/// RTL simulator (which is tested for equivalence against the behavioral
/// interpreter).
struct RtlPlan {
  int entry = 0;
  std::vector<RtlState> states;
  std::set<std::string> vars;            // IR variables (registers)
  std::set<std::string> wires;           // scheduler-generated result wires
  std::set<std::string> shadowed;        // variables with a __pre shadow
  std::set<std::string> written_params;  // params latched from in_* ports
};

/// Derives the plan: wire/variable inventory, shadow-register insertion
/// for anti-dependences the scheduler relaxed (pre_readers at or after
/// their definition in emission order), and ordered transitions mapping
/// STG edge labels (T/F/loop/exit*) onto condition signals.
RtlPlan build_rtl_plan(const ir::Function& fn, const stg::Stg& stg);

}  // namespace fact::rtl
