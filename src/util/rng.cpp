#include "util/rng.hpp"

namespace fact {

std::vector<int64_t> correlated_trace(Rng& rng, size_t n, double rho,
                                      double mean, double stddev) {
  Ar1Filter filter(rho);
  std::vector<int64_t> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const double v = mean + stddev * filter.step(rng.gaussian());
    out.push_back(static_cast<int64_t>(std::llround(v)));
  }
  return out;
}

}  // namespace fact
