#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace fact {

/// A small reusable pool of worker threads for data-parallel loops. The
/// customers are the optimizer's candidate-evaluation waves and the factd
/// service's request batches, so the design favors correctness over
/// throughput: work items are coarse (milliseconds each — a full
/// apply/verify/schedule pipeline), so indices are claimed under a mutex
/// and the per-item locking cost is noise.
///
/// A pool constructed with `threads <= 1` spawns nothing and runs every
/// parallel_for inline on the caller, in index order — the degenerate pool
/// is exactly a serial for-loop, which is what makes `jobs=1` runs trivially
/// deterministic.
///
/// One pool may be shared by several concurrent callers (the daemon's
/// request batches and the engines inside them): only one parallel_for
/// distributes onto the workers at a time, and any call arriving while a
/// job is active — from another thread, or nested from inside a worker —
/// simply runs its whole loop inline on the caller. Inline execution has
/// the same semantics as the distributed path (every index runs exactly
/// once, in order; the first body exception is rethrown after the loop
/// drains), so which path a call takes is unobservable to the caller.
/// Destruction may not race with an active parallel_for.
class WorkerPool {
 public:
  /// Spawns `threads - 1` helper threads (the caller of parallel_for is
  /// always the remaining worker).
  explicit WorkerPool(int threads = 1);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  int threads() const { return threads_; }

  /// Runs body(i) for every i in [0, n), distributing indices across the
  /// pool; blocks until all n calls returned. Safe to call concurrently
  /// from several threads and reentrantly from inside a body: whenever a
  /// job is already active the call degrades to an inline serial loop on
  /// the caller. If body throws, the first exception is rethrown here
  /// after the loop drains.
  void parallel_for(size_t n, const std::function<void(size_t)>& body);

  /// std::thread::hardware_concurrency(), clamped to at least 1.
  static int hardware_threads();

 private:
  void worker_loop();
  /// Claims and executes items of job `job` until it is drained or retired.
  void run_slice(uint64_t job);

  int threads_;
  std::vector<std::thread> pool_;

  std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  // Current job, all guarded by mu_. job_id_ is a generation counter: a
  // worker may only claim items while the id it was woken for is still
  // current, which keeps stragglers from stealing items of a later job.
  uint64_t job_id_ = 0;
  bool job_active_ = false;  // a parallel_for currently owns the workers
  const std::function<void(size_t)>* job_body_ = nullptr;
  size_t job_n_ = 0;
  size_t job_next_ = 0;
  size_t job_done_ = 0;
  std::exception_ptr job_error_;
  bool stop_ = false;
};

}  // namespace fact
