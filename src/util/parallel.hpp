#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace fact {

/// A small reusable pool of worker threads for data-parallel loops. The
/// optimizer's candidate-evaluation waves are its one customer, so the
/// design favors correctness over throughput: work items are coarse
/// (milliseconds each — a full apply/verify/schedule pipeline), so indices
/// are claimed under a mutex and the per-item locking cost is noise.
///
/// A pool constructed with `threads <= 1` spawns nothing and runs every
/// parallel_for inline on the caller, in index order — the degenerate pool
/// is exactly a serial for-loop, which is what makes `jobs=1` runs trivially
/// deterministic.
class WorkerPool {
 public:
  /// Spawns `threads - 1` helper threads (the caller of parallel_for is
  /// always the remaining worker).
  explicit WorkerPool(int threads = 1);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  int threads() const { return threads_; }

  /// Runs body(i) for every i in [0, n), distributing indices across the
  /// pool; blocks until all n calls returned. Only one parallel_for may be
  /// active at a time (the engine's waves are strictly sequential). If body
  /// throws, the first exception is rethrown here after the loop drains.
  void parallel_for(size_t n, const std::function<void(size_t)>& body);

  /// std::thread::hardware_concurrency(), clamped to at least 1.
  static int hardware_threads();

 private:
  void worker_loop();
  /// Claims and executes items of job `job` until it is drained or retired.
  void run_slice(uint64_t job);

  int threads_;
  std::vector<std::thread> pool_;

  std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  // Current job, all guarded by mu_. job_id_ is a generation counter: a
  // worker may only claim items while the id it was woken for is still
  // current, which keeps stragglers from stealing items of a later job.
  uint64_t job_id_ = 0;
  const std::function<void(size_t)>* job_body_ = nullptr;
  size_t job_n_ = 0;
  size_t job_next_ = 0;
  size_t job_done_ = 0;
  std::exception_ptr job_error_;
  bool stop_ = false;
};

}  // namespace fact
