#include "util/parallel.hpp"

#include <algorithm>

namespace fact {

WorkerPool::WorkerPool(int threads) : threads_(std::max(1, threads)) {
  pool_.reserve(static_cast<size_t>(threads_ - 1));
  for (int t = 1; t < threads_; ++t)
    pool_.emplace_back([this] { worker_loop(); });
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_start_.notify_all();
  for (auto& t : pool_) t.join();
}

int WorkerPool::hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

namespace {

/// Serial fallback with the same drain semantics as the distributed path:
/// every index runs, the first exception is rethrown after the loop.
void run_inline(size_t n, const std::function<void(size_t)>& body) {
  std::exception_ptr first;
  for (size_t i = 0; i < n; ++i) {
    try {
      body(i);
    } catch (...) {
      if (!first) first = std::current_exception();
    }
  }
  if (first) std::rethrow_exception(first);
}

}  // namespace

void WorkerPool::parallel_for(size_t n,
                              const std::function<void(size_t)>& body) {
  if (n == 0) return;
  if (pool_.empty()) {
    run_inline(n, body);
    return;
  }

  uint64_t job;
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (job_active_) {
      // Another parallel_for owns the workers — either a concurrent caller
      // or our own job, reentered from inside a body. Blocking here would
      // deadlock the nested case and stall the concurrent one (the waiting
      // thread is itself a worker), so degrade to an inline serial loop.
      lock.unlock();
      run_inline(n, body);
      return;
    }
    job_active_ = true;
    job_body_ = &body;
    job_n_ = n;
    job_next_ = 0;
    job_done_ = 0;
    job_error_ = nullptr;
    job = ++job_id_;
  }
  cv_start_.notify_all();
  run_slice(job);

  std::unique_lock<std::mutex> lock(mu_);
  cv_done_.wait(lock, [&] { return job_done_ == job_n_; });
  job_body_ = nullptr;
  job_active_ = false;
  if (job_error_) {
    std::exception_ptr e = job_error_;
    job_error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(e);
  }
}

void WorkerPool::run_slice(uint64_t job) {
  std::unique_lock<std::mutex> lock(mu_);
  while (job_id_ == job && job_next_ < job_n_) {
    const size_t i = job_next_++;
    const auto* body = job_body_;
    lock.unlock();
    try {
      (*body)(i);
    } catch (...) {
      std::lock_guard<std::mutex> guard(mu_);
      if (!job_error_) job_error_ = std::current_exception();
    }
    lock.lock();
    // The claimed-but-uncounted item keeps job_done_ < job_n_, so the job
    // cannot retire while any worker is still between claim and count.
    if (++job_done_ == job_n_) cv_done_.notify_all();
  }
}

void WorkerPool::worker_loop() {
  uint64_t seen = 0;
  for (;;) {
    uint64_t job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_start_.wait(lock, [&] { return stop_ || job_id_ != seen; });
      if (stop_) return;
      seen = job_id_;
      job = seen;
    }
    run_slice(job);
  }
}

}  // namespace fact
