#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

namespace fact {

/// Deterministic xorshift64* pseudo-random generator. All stochastic parts
/// of the library (trace generation, candidate selection in the optimizer)
/// take an explicit Rng so that every run is reproducible from its seed.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull)
      : state_(seed ? seed : 1) {}

  /// Raw 64 random bits.
  uint64_t next() {
    uint64_t x = state_;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    state_ = x;
    return x * 0x2545F4914F6CDD1Dull;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t uniform_int(int64_t lo, int64_t hi) {
    const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    return lo + static_cast<int64_t>(next() % span);
  }

  /// Standard normal deviate (Box-Muller, one value per call; the spare is
  /// cached).
  double gaussian() {
    if (has_spare_) {
      has_spare_ = false;
      return spare_;
    }
    double u1 = 0.0;
    do {
      u1 = uniform();
    } while (u1 <= 0.0);
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 6.283185307179586476925286766559 * u2;
    spare_ = r * std::sin(theta);
    has_spare_ = true;
    return r * std::cos(theta);
  }

 private:
  uint64_t state_;
  bool has_spare_ = false;
  double spare_ = 0.0;
};

/// First-order autoregressive filter. The paper derives power-estimation
/// inputs from "a zero-mean Gaussian sequence ... passed through an
/// autoregressive filter to introduce the desired level of temporal
/// correlation" (Section 5); this class is that filter.
class Ar1Filter {
 public:
  /// rho in (-1, 1) is the lag-1 correlation of the output sequence.
  explicit Ar1Filter(double rho) : rho_(rho) {}

  double step(double white) {
    // Scale the innovation so the output variance matches the input's.
    prev_ = rho_ * prev_ + std::sqrt(1.0 - rho_ * rho_) * white;
    return prev_;
  }

  void reset() { prev_ = 0.0; }

 private:
  double rho_;
  double prev_ = 0.0;
};

/// Generates a temporally-correlated integer sequence: zero-mean Gaussian
/// white noise -> AR(1) filter -> affine map -> rounding. Used to produce
/// the "typical input traces" every experiment consumes.
std::vector<int64_t> correlated_trace(Rng& rng, size_t n, double rho,
                                      double mean, double stddev);

}  // namespace fact
