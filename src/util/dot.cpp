#include "util/dot.hpp"

namespace fact {

DotWriter::DotWriter(const std::string& graph_name) {
  out_ << "digraph " << graph_name << " {\n";
  out_ << "  node [fontname=\"Helvetica\"];\n";
}

void DotWriter::node(const std::string& id, const std::string& label,
                     const std::string& attrs) {
  out_ << "  \"" << escape(id) << "\" [label=\"" << escape(label) << "\"";
  if (!attrs.empty()) out_ << ", " << attrs;
  out_ << "];\n";
}

void DotWriter::edge(const std::string& from, const std::string& to,
                     const std::string& label, const std::string& attrs) {
  out_ << "  \"" << escape(from) << "\" -> \"" << escape(to) << "\"";
  const bool has_label = !label.empty();
  if (has_label || !attrs.empty()) {
    out_ << " [";
    if (has_label) out_ << "label=\"" << escape(label) << "\"";
    if (!attrs.empty()) {
      if (has_label) out_ << ", ";
      out_ << attrs;
    }
    out_ << "]";
  }
  out_ << ";\n";
}

std::string DotWriter::str() const { return out_.str() + "}\n"; }

std::string DotWriter::escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out.push_back(c);
  }
  return out;
}

}  // namespace fact
