#pragma once

#include <cstdarg>
#include <cstdio>
#include <string>

namespace fact {

/// printf-style formatting into a std::string. GCC 12 lacks <format>,
/// so this is the project-wide formatting helper.
inline std::string strfmt(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

inline std::string strfmt(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args2;
  va_copy(args2, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    // +1: vsnprintf writes the NUL terminator into the buffer; std::string
    // guarantees data()[size()] is writable as '\0' since C++11.
    std::vsnprintf(out.data(), static_cast<size_t>(n) + 1, fmt, args2);
  }
  va_end(args2);
  return out;
}

}  // namespace fact
