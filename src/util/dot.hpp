#pragma once

#include <sstream>
#include <string>

namespace fact {

/// Tiny builder for Graphviz DOT output. Used by the CDFG and STG dumpers
/// so the intermediate structures of every experiment can be inspected.
class DotWriter {
 public:
  explicit DotWriter(const std::string& graph_name);

  /// Adds a node with an escaped label and optional extra attributes
  /// (raw DOT text, e.g. "shape=box").
  void node(const std::string& id, const std::string& label,
            const std::string& attrs = "");

  /// Adds an edge with an optional escaped label and raw extra attributes.
  void edge(const std::string& from, const std::string& to,
            const std::string& label = "", const std::string& attrs = "");

  /// Finishes the graph and returns the DOT text.
  std::string str() const;

  /// Escapes a string for use inside a double-quoted DOT attribute.
  static std::string escape(const std::string& s);

 private:
  std::ostringstream out_;
};

}  // namespace fact
