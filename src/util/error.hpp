#pragma once

#include <stdexcept>
#include <string>

namespace fact {

/// Base class for all user-facing errors raised by the FACT library
/// (parse errors, infeasible allocations, malformed IR, ...).
/// Internal invariant violations use assert() instead.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Raised by the front end on malformed source text. Carries a
/// line/column position formatted into the message.
class ParseError : public Error {
 public:
  ParseError(const std::string& what, int line, int col)
      : Error("parse error at " + std::to_string(line) + ":" +
              std::to_string(col) + ": " + what),
        line_(line),
        col_(col) {}

  int line() const { return line_; }
  int col() const { return col_; }

 private:
  int line_;
  int col_;
};

}  // namespace fact
