#pragma once

#include "hlslib/library.hpp"
#include "power/power.hpp"
#include "sched/scheduler.hpp"
#include "sim/trace.hpp"

namespace fact::opt {

/// Result of functional-unit selection exploration.
struct FuSelectResult {
  hlslib::FuSelection selection;
  hlslib::Allocation allocation;   // counts transferred to chosen types
  double power = 0.0;              // iso-throughput, Vdd-scaled
  double avg_len = 0.0;            // at 5V
  std::vector<std::string> log;    // accepted swaps
};

/// Greedy exploration of the FU selection (one of Figure 5's inputs):
/// for every operation class with library alternatives (e.g. a fast
/// carry-lookahead adder vs. a low-power ripple-carry one), try moving the
/// class onto each alternative, reschedule, and keep the swap if the
/// iso-throughput power improves while the average schedule length stays
/// within `baseline_len` (the paper's performance constraint). Slower
/// units multi-cycle automatically, so a swap is only accepted when the
/// schedule absorbs the extra latency.
FuSelectResult explore_fu_selection(const ir::Function& fn,
                                    const hlslib::Library& lib,
                                    const hlslib::Allocation& alloc,
                                    const hlslib::FuSelection& initial,
                                    const sim::Trace& trace,
                                    const sched::SchedOptions& sched_opts,
                                    const power::PowerOptions& power_opts,
                                    double baseline_len);

}  // namespace fact::opt
