#pragma once

#include <string>
#include <vector>

#include "opt/engine.hpp"
#include "opt/partition.hpp"

namespace fact::opt {

/// End-to-end configuration of the FACT flow (Figure 5).
struct FactOptions {
  sched::SchedOptions sched;
  power::PowerOptions power;
  EngineOptions engine;
  Objective objective = Objective::Throughput;
  double partition_threshold = 0.25;  // hot-edge cutoff (Section 4.1)
  size_t max_blocks = 3;              // optimize at most this many blocks
  uint64_t seed = 7;                  // trace-generation seed
  size_t trace_executions = 24;
};

/// Everything FACT produces: the transformed behavior, its schedule, and
/// before/after metrics.
struct FactResult {
  ir::Function optimized;
  sched::ScheduleResult schedule;     // final schedule of `optimized`
  double initial_avg_len = 0.0;       // M1 schedule length of the input
  double final_avg_len = 0.0;
  power::PowerEstimate initial_power; // at nominal Vdd
  power::PowerEstimate final_power;   // Vdd-scaled in Power mode
  std::vector<std::string> applied;   // transform sequence
  std::vector<std::string> log;       // human-readable flow narration
  /// Evaluation requests over all blocks; cache_hits of them were served
  /// from the memo cache shared across the per-block engine runs (blocks
  /// re-derive overlapping variants, and every block's root is the
  /// previous block's winner), skipping profile+schedule+verify entirely.
  int evaluations = 0;
  int cache_hits = 0;
  int cache_misses = 0;
  /// Schedule-fragment cache traffic summed over the per-block engine
  /// runs (see EngineResult::fragment_hits for semantics and the caveat
  /// about jobs > 1 attribution).
  int fragment_hits = 0;
  int fragment_misses = 0;

  // Robustness accounting aggregated over all per-block engine runs:
  int quarantined = 0;                // candidates removed by any gate
  std::map<std::string, int> quarantine_by_class;
  int blocks_degraded = 0;            // blocks that fell back to baseline
  bool truncated = false;             // some block hit the deadline budget

  /// Search telemetry of each per-block engine run, in block order
  /// (jobs-invariant; see SearchTelemetry). Rendered by telemetry_json().
  std::vector<SearchTelemetry> block_telemetry;
};

/// Runs the full FACT flow on a behavior:
///  1. schedule the input (M1 baseline / "base case"),
///  2. profile with generated typical traces,
///  3. partition the STG into hot blocks,
///  4. per block, run the Apply_transforms search (throughput or power),
///  5. reschedule and report.
///
/// `cache` optionally carries memoized candidate evaluations across calls
/// (design-space exploration re-running the flow over seeds/allocations;
/// factd shares one across all sessions); when null a flow-local cache
/// still spans the per-block engine runs.
///
/// `trace` optionally supplies the typical-input trace instead of
/// generating it: factd sessions pin the generated trace so follow-up
/// requests skip regeneration. Passing the trace that
/// sim::generate_trace(fn, trace_config, opts.seed) would produce is
/// byte-equivalent to passing null.
FactResult run_fact(const ir::Function& fn, const hlslib::Library& lib,
                    const hlslib::Allocation& alloc,
                    const hlslib::FuSelection& sel,
                    const sim::TraceConfig& trace_config,
                    const xform::TransformLibrary& xforms,
                    const FactOptions& opts, EvalCache* cache = nullptr,
                    const sim::Trace* trace = nullptr);

/// Renders the FACT result exactly as `factc` prints it (the "FACT ..."
/// summary line through the transformed behavior). factd returns this
/// string in optimize responses; the end-to-end determinism test diffs it
/// byte-for-byte against `factc` batch output.
std::string render_fact_report(const FactResult& r, Objective objective,
                               bool quiet);

/// Renders the per-block search telemetry plus the flow-level cache
/// counters as a stable JSON document (insertion-ordered keys, %.6g
/// doubles). Deterministic for a given FactResult — safe to byte-diff
/// across factc/factd and jobs counts. `factc --metrics-out` embeds it
/// under the "search" key.
std::string telemetry_json(const FactResult& r);

}  // namespace fact::opt
