#include "opt/fact.hpp"

#include "util/strfmt.hpp"

namespace fact::opt {

FactResult run_fact(const ir::Function& fn, const hlslib::Library& lib,
                    const hlslib::Allocation& alloc,
                    const hlslib::FuSelection& sel,
                    const sim::TraceConfig& trace_config,
                    const xform::TransformLibrary& xforms,
                    const FactOptions& opts, EvalCache* cache,
                    const sim::Trace* pinned_trace) {
  FactResult result;

  // Step 0: typical input traces, generated once and reused everywhere —
  // or pinned by the caller (factd sessions) to skip regeneration.
  sim::TraceConfig tc = trace_config;
  if (tc.executions == 0) tc.executions = opts.trace_executions;
  sim::Trace generated;
  if (!pinned_trace) generated = sim::generate_trace(fn, tc, opts.seed);
  const sim::Trace& trace = pinned_trace ? *pinned_trace : generated;
  const sim::Profile profile = sim::profile_function(fn, trace);

  // Step 1: schedule the input behavior — the "base case" every
  // comparison (and the Vdd-scaling equation) refers to.
  sched::Scheduler scheduler(lib, alloc, sel, opts.sched);
  sched::ScheduleResult initial = scheduler.schedule(fn, profile);
  {
    const std::vector<double> pi =
        stg::state_probabilities(initial.stg, opts.sched.markov);
    result.initial_avg_len = stg::average_schedule_length(initial.stg, pi);
    result.initial_power =
        power::estimate_power(initial.stg, lib, opts.power, &pi);
  }
  result.log.push_back(strfmt("initial schedule: %zu states, avg length %.2f",
                              initial.stg.num_states(),
                              result.initial_avg_len));

  // Step 2: partition the STG into hot blocks.
  std::vector<StgBlock> blocks =
      partition_stg(initial.stg, opts.partition_threshold);
  if (blocks.size() > opts.max_blocks) blocks.resize(opts.max_blocks);
  result.log.push_back(strfmt("partitioned into %zu block(s)", blocks.size()));

  // Steps 3-7 per block: transform with interleaved scheduling. One memo
  // cache spans all blocks: they re-derive overlapping variants, and each
  // block's root is the previous block's winner, so cross-block hits skip
  // the profile+schedule+verify pipeline entirely.
  TransformEngine engine(lib, alloc, sel, opts.sched, opts.power, xforms,
                         opts.engine);
  EvalCache local_cache;
  EvalCache* shared = cache ? cache : &local_cache;
  ir::Function current = fn.clone();
  for (size_t b = 0; b < blocks.size(); ++b) {
    EngineResult er = engine.optimize(current, trace, opts.objective,
                                      blocks[b].stmt_ids,
                                      result.initial_avg_len, shared);
    result.evaluations += er.evaluations;
    result.cache_hits += er.cache_hits;
    result.cache_misses += er.cache_misses;
    result.fragment_hits += er.fragment_hits;
    result.fragment_misses += er.fragment_misses;
    result.quarantined += er.quarantined;
    for (const auto& [cls, n] : er.quarantine_by_class)
      result.quarantine_by_class[cls] += n;
    if (er.degraded_to_baseline) result.blocks_degraded++;
    if (er.truncated) result.truncated = true;
    result.log.push_back(
        strfmt("block %zu (weight %.3f, %zu stmts): %zu transform(s), "
               "score %.4f after %d evaluations",
               b, blocks[b].weight, blocks[b].stmt_ids.size(),
               er.applied.size(), er.best_eval.score, er.evaluations));
    if (er.quarantined > 0)
      result.log.push_back(strfmt(
          "block %zu: %d candidate(s) quarantined%s%s", b, er.quarantined,
          er.degraded_to_baseline ? "; degraded to baseline" : "",
          er.truncated ? "; budget exhausted (best-so-far)" : ""));
    for (const auto& a : er.applied)
      result.applied.push_back(strfmt("block%zu: %s", b, a.c_str()));
    current = std::move(er.best);
  }

  // Final schedule + metrics of the winner.
  const sim::Profile final_profile = sim::profile_function(current, trace);
  result.schedule = scheduler.schedule(current, final_profile);
  {
    const std::vector<double> pi =
        stg::state_probabilities(result.schedule.stg, opts.sched.markov);
    result.final_avg_len =
        stg::average_schedule_length(result.schedule.stg, pi);
    if (opts.objective == Objective::Power) {
      result.final_power =
          power::estimate_power_scaled(result.schedule.stg, lib,
                                       result.initial_avg_len, opts.power, &pi);
    } else {
      result.final_power =
          power::estimate_power(result.schedule.stg, lib, opts.power, &pi);
    }
  }
  if (result.evaluations > 0)
    result.log.push_back(strfmt(
        "evaluation cache: %d hit(s) / %d request(s) across %zu block(s)",
        result.cache_hits, result.evaluations, blocks.size()));
  result.log.push_back(strfmt("final: avg length %.2f, power %.4f (Vdd %.2fV)",
                              result.final_avg_len, result.final_power.power,
                              result.final_power.vdd));
  result.optimized = std::move(current);
  return result;
}

std::string render_fact_report(const FactResult& r, Objective objective,
                               bool quiet) {
  std::string out = strfmt(
      "%-7s avg length %10.2f cycles | throughput %8.3f (x1000/cyc) "
      "| power %8.3f | %zu transform(s)\n",
      "FACT", r.final_avg_len, 1000.0 / r.final_avg_len,
      r.final_power.power, r.applied.size());
  if (r.truncated)
    out += "note: search budget exhausted; result is best-so-far\n";
  if (!quiet && r.evaluations > 0)
    out += strfmt("evaluations: %d (%d served from the memo cache)\n",
                  r.evaluations, r.cache_hits);
  if (!quiet && r.quarantined > 0) {
    out += strfmt("quarantined %d candidate(s):", r.quarantined);
    for (const auto& [cls, n] : r.quarantine_by_class)
      out += strfmt(" %s=%d", cls.c_str(), n);
    out += "\n";
    if (r.blocks_degraded > 0)
      out += strfmt("%d block(s) degraded to the baseline design\n",
                    r.blocks_degraded);
  }
  if (!quiet) {
    out += strfmt("\nbaseline (untransformed): %.2f cycles, %.3f power\n",
                  r.initial_avg_len, r.initial_power.power);
    if (objective == Objective::Power)
      out += strfmt("scaled Vdd: %.2f V (iso-throughput with the baseline)\n",
                    r.final_power.vdd);
    out += "\ntransforms applied:\n";
    for (const auto& t : r.applied) out += strfmt("  %s\n", t.c_str());
    out += "\ntransformed behavior:\n" + r.optimized.str();
  }
  return out;
}

}  // namespace fact::opt
