#include "opt/fact.hpp"

#include "obs/trace.hpp"
#include "util/strfmt.hpp"

namespace fact::opt {

FactResult run_fact(const ir::Function& fn, const hlslib::Library& lib,
                    const hlslib::Allocation& alloc,
                    const hlslib::FuSelection& sel,
                    const sim::TraceConfig& trace_config,
                    const xform::TransformLibrary& xforms,
                    const FactOptions& opts, EvalCache* cache,
                    const sim::Trace* pinned_trace) {
  FactResult result;

  // Step 0: typical input traces, generated once and reused everywhere —
  // or pinned by the caller (factd sessions) to skip regeneration.
  sim::TraceConfig tc = trace_config;
  if (tc.executions == 0) tc.executions = opts.trace_executions;
  sim::Trace generated;
  {
    obs::Span sp = obs::span("trace_gen", "fact");
    sp.arg("pinned", pinned_trace != nullptr);
    if (!pinned_trace) generated = sim::generate_trace(fn, tc, opts.seed);
  }
  const sim::Trace& trace = pinned_trace ? *pinned_trace : generated;
  const sim::Profile profile = sim::profile_function(fn, trace);

  // Step 1: schedule the input behavior — the "base case" every
  // comparison (and the Vdd-scaling equation) refers to.
  sched::Scheduler scheduler(lib, alloc, sel, opts.sched);
  obs::Span sp_initial = obs::span("initial_schedule", "fact");
  sched::ScheduleResult initial = scheduler.schedule(fn, profile);
  sp_initial.finish();
  {
    const std::vector<double> pi =
        stg::state_probabilities(initial.stg, opts.sched.markov);
    result.initial_avg_len = stg::average_schedule_length(initial.stg, pi);
    result.initial_power =
        power::estimate_power(initial.stg, lib, opts.power, &pi);
  }
  result.log.push_back(strfmt("initial schedule: %zu states, avg length %.2f",
                              initial.stg.num_states(),
                              result.initial_avg_len));

  // Step 2: partition the STG into hot blocks.
  obs::Span sp_part = obs::span("partition", "fact");
  std::vector<StgBlock> blocks =
      partition_stg(initial.stg, opts.partition_threshold);
  if (blocks.size() > opts.max_blocks) blocks.resize(opts.max_blocks);
  sp_part.arg("blocks", blocks.size());
  sp_part.finish();
  result.log.push_back(strfmt("partitioned into %zu block(s)", blocks.size()));

  // Steps 3-7 per block: transform with interleaved scheduling. One memo
  // cache spans all blocks: they re-derive overlapping variants, and each
  // block's root is the previous block's winner, so cross-block hits skip
  // the profile+schedule+verify pipeline entirely.
  TransformEngine engine(lib, alloc, sel, opts.sched, opts.power, xforms,
                         opts.engine);
  EvalCache local_cache;
  EvalCache* shared = cache ? cache : &local_cache;
  ir::Function current = fn.clone();
  for (size_t b = 0; b < blocks.size(); ++b) {
    obs::Span sp_block = obs::span("block", "fact");
    sp_block.arg("idx", b);
    sp_block.arg("weight", blocks[b].weight);
    sp_block.arg("stmts", blocks[b].stmt_ids.size());
    EngineResult er = engine.optimize(current, trace, opts.objective,
                                      blocks[b].stmt_ids,
                                      result.initial_avg_len, shared);
    result.block_telemetry.push_back(std::move(er.telemetry));
    result.evaluations += er.evaluations;
    result.cache_hits += er.cache_hits;
    result.cache_misses += er.cache_misses;
    result.fragment_hits += er.fragment_hits;
    result.fragment_misses += er.fragment_misses;
    result.quarantined += er.quarantined;
    for (const auto& [cls, n] : er.quarantine_by_class)
      result.quarantine_by_class[cls] += n;
    if (er.degraded_to_baseline) result.blocks_degraded++;
    if (er.truncated) result.truncated = true;
    result.log.push_back(
        strfmt("block %zu (weight %.3f, %zu stmts): %zu transform(s), "
               "score %.4f after %d evaluations",
               b, blocks[b].weight, blocks[b].stmt_ids.size(),
               er.applied.size(), er.best_eval.score, er.evaluations));
    if (er.quarantined > 0)
      result.log.push_back(strfmt(
          "block %zu: %d candidate(s) quarantined%s%s", b, er.quarantined,
          er.degraded_to_baseline ? "; degraded to baseline" : "",
          er.truncated ? "; budget exhausted (best-so-far)" : ""));
    for (const auto& a : er.applied)
      result.applied.push_back(strfmt("block%zu: %s", b, a.c_str()));
    current = std::move(er.best);
  }

  // Final schedule + metrics of the winner.
  obs::Span sp_final = obs::span("final_schedule", "fact");
  const sim::Profile final_profile = sim::profile_function(current, trace);
  result.schedule = scheduler.schedule(current, final_profile);
  sp_final.finish();
  {
    const std::vector<double> pi =
        stg::state_probabilities(result.schedule.stg, opts.sched.markov);
    result.final_avg_len =
        stg::average_schedule_length(result.schedule.stg, pi);
    if (opts.objective == Objective::Power) {
      result.final_power =
          power::estimate_power_scaled(result.schedule.stg, lib,
                                       result.initial_avg_len, opts.power, &pi);
    } else {
      result.final_power =
          power::estimate_power(result.schedule.stg, lib, opts.power, &pi);
    }
  }
  if (result.evaluations > 0)
    result.log.push_back(strfmt(
        "evaluation cache: %d hit(s) / %d request(s) across %zu block(s)",
        result.cache_hits, result.evaluations, blocks.size()));
  result.log.push_back(strfmt("final: avg length %.2f, power %.4f (Vdd %.2fV)",
                              result.final_avg_len, result.final_power.power,
                              result.final_power.vdd));
  result.optimized = std::move(current);
  return result;
}

std::string render_fact_report(const FactResult& r, Objective objective,
                               bool quiet) {
  std::string out = strfmt(
      "%-7s avg length %10.2f cycles | throughput %8.3f (x1000/cyc) "
      "| power %8.3f | %zu transform(s)\n",
      "FACT", r.final_avg_len, 1000.0 / r.final_avg_len,
      r.final_power.power, r.applied.size());
  if (r.truncated)
    out += "note: search budget exhausted; result is best-so-far\n";
  if (!quiet && r.evaluations > 0)
    out += strfmt("evaluations: %d (%d served from the memo cache)\n",
                  r.evaluations, r.cache_hits);
  if (!quiet && r.quarantined > 0) {
    out += strfmt("quarantined %d candidate(s):", r.quarantined);
    for (const auto& [cls, n] : r.quarantine_by_class)
      out += strfmt(" %s=%d", cls.c_str(), n);
    out += "\n";
    if (r.blocks_degraded > 0)
      out += strfmt("%d block(s) degraded to the baseline design\n",
                    r.blocks_degraded);
  }
  if (!quiet) {
    out += strfmt("\nbaseline (untransformed): %.2f cycles, %.3f power\n",
                  r.initial_avg_len, r.initial_power.power);
    if (objective == Objective::Power)
      out += strfmt("scaled Vdd: %.2f V (iso-throughput with the baseline)\n",
                    r.final_power.vdd);
    out += "\ntransforms applied:\n";
    for (const auto& t : r.applied) out += strfmt("  %s\n", t.c_str());
    out += "\ntransformed behavior:\n" + r.optimized.str();
  }
  return out;
}

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20)
          out += strfmt("\\u%04x", c);
        else
          out += c;
    }
  }
  return out;
}

std::string json_num(double v) { return strfmt("%.6g", v); }

template <typename V, typename Render>
std::string json_map(const std::map<std::string, V>& m, Render render) {
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : m) {
    if (!first) out += ",";
    first = false;
    out += strfmt("\"%s\":%s", json_escape(k).c_str(), render(v).c_str());
  }
  return out + "}";
}

std::string telemetry_block_json(const SearchTelemetry& t) {
  std::string out = "{\"generations\":[";
  for (size_t i = 0; i < t.generations.size(); ++i) {
    const GenerationTelemetry& g = t.generations[i];
    if (i) out += ",";
    out += strfmt(
        "{\"outer\":%d,\"k\":%s,\"candidates\":%d,\"duplicates\":%d,"
        "\"quarantined\":%d,\"nonequivalent\":%d,\"evaluations\":%d,"
        "\"cache_hits\":%d,\"accepted\":%d,\"improvements\":%d,"
        "\"best_score\":%s,\"acceptance_rate\":%s}",
        g.outer, json_num(g.k).c_str(), g.candidates, g.duplicates,
        g.quarantined, g.rejected_nonequivalent, g.evaluations, g.cache_hits,
        g.accepted, g.improvements, json_num(g.best_score).c_str(),
        json_num(g.acceptance_rate).c_str());
  }
  out += "],\"selected_ranks\":{";
  bool first = true;
  for (const auto& [rank, n] : t.selected_ranks) {
    if (!first) out += ",";
    first = false;
    out += strfmt("\"%d\":%d", rank, n);
  }
  out += "},\"accepted_by_transform\":";
  out += json_map(t.accepted_by_transform,
                  [](int n) { return strfmt("%d", n); });
  out += ",\"improvements_by_transform\":";
  out += json_map(t.improvements_by_transform,
                  [](int n) { return strfmt("%d", n); });
  out += ",\"improvement_by_transform\":";
  out += json_map(t.improvement_by_transform,
                  [](double v) { return json_num(v); });
  return out + "}";
}

}  // namespace

std::string telemetry_json(const FactResult& r) {
  std::string out = "{\"blocks\":[";
  for (size_t b = 0; b < r.block_telemetry.size(); ++b) {
    if (b) out += ",";
    out += telemetry_block_json(r.block_telemetry[b]);
  }
  out += strfmt(
      "],\"evaluations\":%d,\"cache_hits\":%d,\"cache_misses\":%d,"
      "\"fragment_hits\":%d,\"fragment_misses\":%d,\"quarantined\":%d,"
      "\"blocks_degraded\":%d,\"truncated\":%s}",
      r.evaluations, r.cache_hits, r.cache_misses, r.fragment_hits,
      r.fragment_misses, r.quarantined, r.blocks_degraded,
      r.truncated ? "true" : "false");
  return out;
}

}  // namespace fact::opt
