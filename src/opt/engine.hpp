#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "power/power.hpp"
#include "sched/scheduler.hpp"
#include "sim/trace.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "verify/verify.hpp"
#include "xform/transform.hpp"

namespace fact::opt {

enum class Objective { Throughput, Power };

/// Parameters of the Apply_transforms search (Figure 6). The search keeps
/// a population In_set, explores every candidate transformation of every
/// member, evaluates candidates by rescheduling and estimating the
/// objective, and selects the next population with probability
/// proportional to e^(-k * rank), k growing linearly per outer iteration.
struct EngineOptions {
  int max_moves = 2;                 // MAX_MOVES (inner loop of Fig. 6)
  size_t in_set_size = 4;            // |In_set| after selection
  int max_outer_iters = 8;           // stop after this many generations
  size_t max_neighbors_eval = 96;    // evaluation budget per move
  double k0 = 0.4;                   // initial selection sharpness
  double k_step = 0.4;               // k increment per outer iteration
  uint64_t seed = 1;
  bool reschedule_in_loop = true;    // ablation: schedule-guided selection
  bool verify_equivalence = true;    // simulate candidates vs. the original

  /// Invariant checking per candidate. Fast runs the structural IR checks
  /// on every applied rewrite before it can enter the population; Full
  /// additionally verifies every candidate's schedule (STG structure and
  /// legality against the allocation) inside evaluate().
  verify::Level validate = verify::Level::Fast;
  /// Wall-clock budget for one optimize() call in milliseconds; when
  /// exhausted the search stops and returns best-so-far with
  /// EngineResult::truncated set. 0 = unlimited.
  double deadline_ms = 0.0;
  /// Evaluation-count budget (schedule+estimate invocations); same
  /// best-so-far / truncated contract. 0 = unlimited.
  int max_evaluations = 0;
  /// At most this many structured quarantine records are kept (counters
  /// always cover every quarantined candidate).
  size_t quarantine_log_cap = 64;

  /// Worker threads for candidate evaluation (apply/verify/equivalence/
  /// schedule+estimate run concurrently; neighborhood generation and all
  /// result reduction stay serial). 0 = hardware concurrency. The engine's
  /// determinism contract: any jobs value produces byte-identical results
  /// to jobs=1 (see DESIGN.md). Leave at 1 when the TransformLibrary is a
  /// stateful wrapper (e.g. the FaultInjector) — find/apply are called from
  /// worker threads when jobs > 1 and must be thread-safe.
  int jobs = 1;

  /// Evaluation memoization (ablation switch): when false the engine never
  /// consults or fills the EvalCache and every request runs the full
  /// profile+schedule+verify pipeline. Results are identical either way —
  /// cached entries are exactly what recomputation would produce.
  bool memoize = true;

  /// Upper bound on EvalCache entries (LRU eviction past it); applies to
  /// the engine's run-local cache and is the construction default for
  /// caller-owned caches. Generous by default — one entry is a few hundred
  /// bytes, so the cap mainly keeps a long-lived daemon from growing
  /// without limit.
  size_t cache_cap = 1 << 18;

  /// Cooperative cancellation: when non-null and set, the search stops at
  /// the next budget check and returns best-so-far with
  /// EngineResult::truncated (same contract as an expired deadline). The
  /// pointee must outlive the optimize() call; factd maps per-request
  /// `cancel` onto it.
  const std::atomic<bool>* cancel = nullptr;

  /// Worker pool to evaluate candidates on. When null the engine spawns a
  /// private pool of `jobs` threads per optimize() call; when set, the
  /// pool is borrowed (not owned) and `jobs` is ignored — several engines
  /// may share one pool (WorkerPool serializes waves and degrades
  /// contended calls to inline execution, which never changes results).
  WorkerPool* pool = nullptr;
};

/// Why and where a candidate was quarantined instead of evaluated.
struct QuarantineRecord {
  std::string pass;           // apply | verify | equivalence | evaluate
  std::string failure_class;  // verifier check name or exception class
  std::string message;        // diagnostic detail
  std::vector<std::string> transforms;  // sequence ending at the failure
};

struct Evaluation {
  double avg_len = 0.0;  // average schedule length, cycles
  double power = 0.0;    // estimated power (scaled Vdd in Power mode)
  double vdd = 5.0;
  double score = 0.0;    // objective value; lower is better
  /// Schedule-fragment cache traffic of the pipeline run that produced
  /// this evaluation (zero when the evaluation ran without a fragment
  /// cache, e.g. via the standalone evaluate()). Diagnostic only — the
  /// metrics above are identical with or without fragment reuse.
  int fragment_hits = 0;
  int fragment_misses = 0;
};

/// Memoized candidate evaluations, keyed by (structural hash, objective,
/// baseline_len). run_fact shares one cache across its per-block engine
/// runs: blocks repeatedly re-derive overlapping variants (and every
/// block's root is the previous block's winner), and a hit skips the full
/// profile+schedule+verify pipeline. factd shares one process-wide cache
/// across all sessions. Failed evaluations are memoized too, so a
/// known-bad variant quarantines again without re-running the scheduler.
///
/// Bounded: at most `capacity` entries, evicting least-recently-used past
/// it so a long-lived daemon cannot grow memory without limit. Recency is
/// advanced only by insert() and touch() — both called from the engine's
/// serial reduction step — never by lookup(), so lookups within one
/// evaluation wave see a frozen cache and hit/miss counts are independent
/// of `jobs`. Thread-safe throughout.
///
/// Lock striping: large caches split the key space into 16 shards by key
/// hash, each with its own mutex, map, and LRU list, so concurrent
/// lookups from evaluation workers (and from factd sessions sharing the
/// process-wide cache) contend only when they land on the same shard.
/// Capacity is divided across shards and eviction is per shard — an
/// approximation of global LRU that keeps the total entry count within
/// `capacity`. Small caches (below the striping threshold) keep a single
/// shard, preserving exact global LRU order where per-shard caps would
/// distort eviction.
class EvalCache {
 public:
  struct Entry {
    bool ok = false;
    Evaluation eval;            // valid when ok
    std::string failure_class;  // quarantine class when !ok
    std::string message;        // diagnostic when !ok
  };

  /// Default capacity mirrors EngineOptions::cache_cap.
  explicit EvalCache(size_t capacity = 1 << 18);

  std::optional<Entry> lookup(uint64_t structural_hash, Objective objective,
                              double baseline_len) const;
  /// First insertion wins; re-inserting the same key only refreshes its
  /// recency (the engine re-requests a key only when dedup already
  /// collapsed it). Evicts the least-recently-used entry past capacity.
  void insert(uint64_t structural_hash, Objective objective,
              double baseline_len, Entry entry);
  /// Marks a key most-recently-used (no-op when absent). The engine calls
  /// this on every cache hit, from the serial reduction.
  void touch(uint64_t structural_hash, Objective objective,
             double baseline_len);
  size_t size() const;
  size_t capacity() const { return capacity_; }

 private:
  struct Key {
    uint64_t hash;
    int objective;
    uint64_t baseline_bits;  // bit pattern of baseline_len (exact match)
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    size_t operator()(const Key& k) const;
  };
  static Key make_key(uint64_t h, Objective o, double baseline_len);

  struct Slot {
    Entry entry;
    std::list<Key>::iterator lru;  // position in Shard::lru (front = MRU)
  };

  /// One lock stripe: independent mutex, map, and LRU list over a slice of
  /// the key space. `cap` is this shard's share of the total capacity.
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<Key, Slot, KeyHash> map;
    std::list<Key> lru;  // front = most recently used
    size_t cap = 0;
  };

  size_t shard_index(const Key& k) const;

  const size_t capacity_;
  std::vector<Shard> shards_;
};

/// One outer iteration (generation) of the Figure 6 search, as observed by
/// the serial reduction. All fields are derived strictly from
/// submission-order accounting, so they are byte-identical for any jobs
/// count — safe to print in determinism-checked reports.
struct GenerationTelemetry {
  int outer = 0;           // generation index
  double k = 0.0;          // selection sharpness this generation
  int candidates = 0;      // work items that entered the gauntlet
  int duplicates = 0;      // dropped by structural dedup
  int quarantined = 0;     // failed apply/verify/equivalence/evaluate
  int rejected_nonequivalent = 0;
  int evaluations = 0;     // schedule+estimate requests
  int cache_hits = 0;      // of those, served from the memo cache
  int accepted = 0;        // survived every gate incl. evaluation
  int improvements = 0;    // accepted candidates that improved the best
  double best_score = 0.0;        // best-so-far after this generation
  double acceptance_rate = 0.0;   // accepted / candidates (0 when none)
};

/// Search telemetry for one optimize() call: the per-generation funnel
/// plus distributions that summarize *how* the search moved — which ranks
/// the Boltzmann selection actually picked, and which transform classes
/// produced accepted candidates and score improvements.
struct SearchTelemetry {
  std::vector<GenerationTelemetry> generations;
  /// rank -> times a member of that rank was selected into In_set.
  std::map<int, int> selected_ranks;
  /// transform class -> accepted candidates whose *last* move was it.
  std::map<std::string, int> accepted_by_transform;
  /// transform class -> times it produced a new best score.
  std::map<std::string, int> improvements_by_transform;
  /// transform class -> summed score improvement (previous best minus new
  /// best) attributed to the move that produced each new best.
  std::map<std::string, double> improvement_by_transform;
};

struct EngineResult {
  ir::Function best;
  Evaluation best_eval;
  std::vector<std::string> applied;      // winning transform sequence
  std::vector<double> score_trace;       // best score after each generation
  /// Evaluation *requests* (every candidate that reached the schedule+
  /// estimate stage). Of these, cache_hits were served from the memo cache
  /// without running the pipeline; cache_misses ran it for real.
  /// evaluations == cache_hits + cache_misses always.
  int evaluations = 0;
  int cache_hits = 0;
  int cache_misses = 0;
  int rejected_nonequivalent = 0;        // candidates failing trace equivalence

  /// Schedule-fragment cache traffic (src/sched/fragment_cache.hpp),
  /// summed over the evaluations that actually ran the scheduler (memo
  /// misses). A fragment hit reused a region's scheduled DFG from an
  /// earlier candidate instead of re-running DFG build + list scheduling.
  /// Unlike the EvalCache counters these are not asserted jobs-invariant:
  /// with jobs > 1, workers racing to first-compute one fragment may each
  /// count a miss where a serial run counts one miss + one hit. The
  /// schedules — and therefore every result and metric — are identical
  /// regardless (cached entries are pure functions of their keys).
  int fragment_hits = 0;
  int fragment_misses = 0;

  /// Candidates removed by the transactional evaluation wrapper (failed
  /// apply, verifier rejection, equivalence failure, or an exception while
  /// scheduling/estimating). Counters cover every quarantined candidate;
  /// `quarantine` keeps the first quarantine_log_cap structured records.
  int quarantined = 0;
  std::map<std::string, int> quarantine_by_class;
  std::vector<QuarantineRecord> quarantine;
  /// True when the deadline/evaluation budget expired and the result is
  /// best-so-far rather than a converged search.
  bool truncated = false;
  /// True when not a single candidate survived the gauntlet: the engine
  /// gracefully fell back to the untransformed baseline design.
  bool degraded_to_baseline = false;

  /// Per-generation funnel and selection/attribution distributions
  /// (jobs-invariant; see SearchTelemetry).
  SearchTelemetry telemetry;
};

/// The transformation-application engine of Section 4.2: population search
/// over CDFG variants with interleaved scheduling (steps 3-7 of Figure 5).
class TransformEngine {
 public:
  TransformEngine(const hlslib::Library& lib, const hlslib::Allocation& alloc,
                  const hlslib::FuSelection& sel,
                  const sched::SchedOptions& sched_opts,
                  const power::PowerOptions& power_opts,
                  const xform::TransformLibrary& xforms, EngineOptions opts);

  /// Optimizes `fn` for `objective`, applying transforms only within
  /// `region` (statement ids; empty = whole function). `baseline_len` is
  /// the untransformed design's average schedule length, the reference for
  /// iso-throughput Vdd scaling in Power mode. `cache` optionally shares
  /// memoized evaluations across calls (run_fact passes one per flow);
  /// when null a run-local cache is used. Results are identical for any
  /// EngineOptions::jobs value: candidate work runs on worker threads but
  /// is reduced strictly in the serial submission order.
  EngineResult optimize(const ir::Function& fn, const sim::Trace& trace,
                        Objective objective, const std::set<int>& region,
                        double baseline_len, EvalCache* cache = nullptr) const;

  /// Schedules and evaluates one function (used standalone by benches).
  /// At EngineOptions::validate == Full, throws verify::VerifyError when
  /// the produced schedule fails structural or legality checks.
  Evaluation evaluate(const ir::Function& fn, const sim::Trace& trace,
                      Objective objective, double baseline_len) const;

 private:
  /// evaluate() with an optional schedule-fragment cache. optimize() owns
  /// one FragmentCache per run and routes every candidate evaluation
  /// through it; the public evaluate() passes null (no cache).
  Evaluation evaluate_impl(const ir::Function& fn, const sim::Trace& trace,
                           Objective objective, double baseline_len,
                           sched::FragmentCache* fragments) const;

  // Hardware context is stored by value (callers pass temporaries); the
  // transform library is a reference — it is not copyable and must outlive
  // the engine.
  hlslib::Library lib_;
  hlslib::Allocation alloc_;
  hlslib::FuSelection sel_;
  sched::SchedOptions sched_opts_;
  power::PowerOptions power_opts_;
  const xform::TransformLibrary& xforms_;
  EngineOptions opts_;
};

}  // namespace fact::opt
