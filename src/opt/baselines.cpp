#include "opt/baselines.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace fact::opt {

using ir::ExprPtr;
using ir::Op;
using ir::Stmt;
using ir::StmtKind;

namespace {

BaselineResult schedule_and_measure(ir::Function fn,
                                    const hlslib::Library& lib,
                                    const hlslib::Allocation& alloc,
                                    const hlslib::FuSelection& sel,
                                    const sim::Trace& trace,
                                    const sched::SchedOptions& sched_opts,
                                    const power::PowerOptions& power_opts) {
  BaselineResult r;
  const sim::Profile profile = sim::profile_function(fn, trace);
  sched::Scheduler scheduler(lib, alloc, sel, sched_opts);
  r.schedule = scheduler.schedule(fn, profile);
  r.avg_len = stg::average_schedule_length(r.schedule.stg);
  r.power_nominal = power::estimate_power(r.schedule.stg, lib, power_opts);
  r.fn = std::move(fn);
  return r;
}

/// Flamel's schedule-blind cost: operation nodes and expression depth,
/// weighted by 10 per loop-nesting level (an op inside a loop runs many
/// times). Lower is better; no resource or clock information enters.
double static_cost(const ir::Function& fn) {
  double cost = 0.0;

  std::function<double(const ExprPtr&)> depth = [&](const ExprPtr& e) {
    if (e->num_args() == 0) return 0.0;
    double d = 0.0;
    for (const auto& a : e->args()) d = std::max(d, depth(a));
    return d + 1.0;
  };
  auto op_nodes = [&](const ExprPtr& e) {
    double n = 0.0;
    ir::for_each_node(e, [&](const ExprPtr& node) {
      if (node->num_args() > 0) n += 1.0;
    });
    return n;
  };

  std::function<void(const std::vector<ir::StmtPtr>&, double)> walk =
      [&](const std::vector<ir::StmtPtr>& stmts, double weight) {
        for (const auto& s : stmts) {
          for (const auto* slot : s->expr_slots())
            cost += weight * (op_nodes(*slot) + 0.5 * depth(*slot));
          const double child_weight =
              s->kind == StmtKind::While ? weight * 10.0 : weight;
          for (const auto* child : s->child_lists()) walk(*child, child_weight);
        }
      };
  walk(fn.body()->stmts, 1.0);
  return cost;
}

}  // namespace

BaselineResult run_m1(const ir::Function& fn, const hlslib::Library& lib,
                      const hlslib::Allocation& alloc,
                      const hlslib::FuSelection& sel,
                      const sim::TraceConfig& trace_config,
                      const sched::SchedOptions& sched_opts,
                      const power::PowerOptions& power_opts, uint64_t seed) {
  const sim::Trace trace = sim::generate_trace(fn, trace_config, seed);
  return schedule_and_measure(fn.clone(), lib, alloc, sel, trace, sched_opts,
                              power_opts);
}

BaselineResult run_flamel(const ir::Function& fn, const hlslib::Library& lib,
                          const hlslib::Allocation& alloc,
                          const hlslib::FuSelection& sel,
                          const sim::TraceConfig& trace_config,
                          const sched::SchedOptions& sched_opts,
                          const power::PowerOptions& power_opts,
                          uint64_t seed) {
  const sim::Trace trace = sim::generate_trace(fn, trace_config, seed);
  ir::Function current = fn.clone();
  std::vector<std::string> applied;

  const xform::TransformLibrary lib_all = xform::TransformLibrary::standard();
  auto apply_checked = [&](const xform::Candidate& c) {
    ir::Function next = lib_all.apply(current, c);
    if (!sim::equivalent_on_trace(fn, next, trace))
      throw Error("flamel: transform broke equivalence: " + c.describe());
    applied.push_back(c.describe());
    current = std::move(next);
  };

  // Phase 1 — global compaction: convert every eligible conditional into
  // straight-line selects (Flamel merges basic blocks unconditionally).
  const xform::Transform* spec = lib_all.find_transform("speculate");
  for (int guard = 0; guard < 64; ++guard) {
    auto cands = spec->find(current, {});
    if (cands.empty()) break;
    apply_checked(cands.front());
  }

  // Phase 2 — greedy static improvement over the schedule-blind subset:
  // constant folding/propagation, select fusion, factoring, associativity,
  // code motion, full unrolling. Partial unrolling and add/sub regrouping
  // are schedule-relative and deliberately absent.
  const std::vector<std::string> greedy_set = {
      "constfold", "constprop", "select-fuse", "distribute",
      "reassoc",   "licm",      "unroll",      "dce"};
  double cost = static_cost(current);
  for (int pass = 0; pass < 24; ++pass) {
    double best_cost = cost;
    std::optional<xform::Candidate> best;
    for (const auto& name : greedy_set) {
      const xform::Transform* t = lib_all.find_transform(name);
      for (const auto& c : t->find(current, {})) {
        // Flamel never partially unrolls (needs schedule feedback).
        if (name == "unroll" && c.variant != 100) continue;
        ir::Function next = lib_all.apply(current, c);
        const double next_cost = static_cost(next);
        if (next_cost < best_cost - 1e-9) {
          best_cost = next_cost;
          best = c;
        }
      }
    }
    if (!best) break;
    apply_checked(*best);
    cost = static_cost(current);
  }

  BaselineResult r = schedule_and_measure(std::move(current), lib, alloc, sel,
                                          trace, sched_opts, power_opts);
  r.applied = std::move(applied);
  return r;
}

}  // namespace fact::opt
