#pragma once

#include <set>
#include <vector>

#include "stg/stg.hpp"

namespace fact::opt {

/// A group of STG states selected for transformation (Section 4.1): the
/// states connected by high-relative-frequency transitions, plus the IR
/// statement ids whose operations execute in those states (the CDFG
/// extraction of step 3 in Figure 5).
struct StgBlock {
  std::vector<int> states;
  std::set<int> stmt_ids;
  double weight = 0.0;  // sum of member state probabilities
};

/// Partitions the STG into disjoint blocks by the paper's recipe: rank
/// transitions by relative frequency pi[src] * prob, keep those whose
/// frequency is at least `threshold` times the maximum, and grow/fuse
/// blocks over the kept edges in decreasing frequency order. Blocks are
/// returned sorted by decreasing weight.
std::vector<StgBlock> partition_stg(const stg::Stg& stg,
                                    double threshold = 0.25);

}  // namespace fact::opt
