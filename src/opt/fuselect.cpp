#include "opt/fuselect.hpp"

#include "util/error.hpp"
#include "util/strfmt.hpp"

namespace fact::opt {

namespace {

/// Moves the allocation of `from` onto `to` (instances are rebuilt as the
/// alternative type during synthesis).
hlslib::Allocation transfer(const hlslib::Allocation& alloc,
                            const std::string& from, const std::string& to) {
  hlslib::Allocation out = alloc;
  const int n = out.count(from);
  if (from != to && n > 0) {
    out.counts[to] = out.count(to) + n;
    out.counts.erase(from);
  }
  return out;
}

struct Metrics {
  double len = 0.0;
  double power = 0.0;
};

Metrics measure(const ir::Function& fn, const hlslib::Library& lib,
                const hlslib::Allocation& alloc,
                const hlslib::FuSelection& sel, const sim::Trace& trace,
                const sched::SchedOptions& sched_opts,
                const power::PowerOptions& power_opts, double baseline_len) {
  const sim::Profile profile = sim::profile_function(fn, trace);
  sched::Scheduler scheduler(lib, alloc, sel, sched_opts);
  const sched::ScheduleResult sr = scheduler.schedule(fn, profile);
  Metrics m;
  m.len = stg::average_schedule_length(sr.stg);
  m.power =
      power::estimate_power_scaled(sr.stg, lib, baseline_len, power_opts)
          .power;
  return m;
}

}  // namespace

FuSelectResult explore_fu_selection(const ir::Function& fn,
                                    const hlslib::Library& lib,
                                    const hlslib::Allocation& alloc,
                                    const hlslib::FuSelection& initial,
                                    const sim::Trace& trace,
                                    const sched::SchedOptions& sched_opts,
                                    const power::PowerOptions& power_opts,
                                    double baseline_len) {
  FuSelectResult best;
  best.selection = initial;
  best.allocation = alloc;
  {
    const Metrics m = measure(fn, lib, alloc, initial, trace, sched_opts,
                              power_opts, baseline_len);
    best.power = m.power;
    best.avg_len = m.len;
  }

  // Greedy: one op kind at a time, try every alternative of its class.
  // Iterate over a snapshot of the op kinds: accepted swaps replace the
  // selection being explored.
  std::vector<ir::Op> op_kinds;
  for (const auto& [op, type] : best.selection.choice) op_kinds.push_back(op);
  bool improved = true;
  while (improved) {
    improved = false;
    for (const ir::Op op : op_kinds) {
      const std::string current_type = best.selection.choice.at(op);
      const hlslib::FuClass cls = hlslib::op_fu_class(op);
      for (const hlslib::FuType* alt : lib.all_of(cls)) {
        if (alt->name == current_type) continue;
        hlslib::FuSelection cand_sel = best.selection;
        cand_sel.choice[op] = alt->name;
        const hlslib::Allocation cand_alloc =
            transfer(best.allocation, current_type, alt->name);
        Metrics m;
        try {
          m = measure(fn, lib, cand_alloc, cand_sel, trace, sched_opts,
                      power_opts, baseline_len);
        } catch (const Error&) {
          continue;  // unschedulable with this unit (e.g. delay too long)
        }
        // Iso-throughput constraint plus strict power improvement.
        if (m.len > baseline_len * 1.001) continue;
        if (m.power >= best.power - 1e-9) continue;
        best.selection = cand_sel;
        best.allocation = cand_alloc;
        best.power = m.power;
        best.avg_len = m.len;
        best.log.push_back(strfmt("%s: %s -> %s (power %.4f)",
                                  ir::op_token(op), current_type.c_str(),
                                  alt->name.c_str(), m.power));
        improved = true;
        break;  // re-enter with the updated selection
      }
      if (improved) break;
    }
  }
  return best;
}

}  // namespace fact::opt
