#pragma once

#include "opt/engine.hpp"

namespace fact::opt {

/// Result of running a baseline method on a behavior.
struct BaselineResult {
  ir::Function fn;                 // the (possibly transformed) behavior
  sched::ScheduleResult schedule;
  double avg_len = 0.0;
  power::PowerEstimate power_nominal;  // at 5V
  std::vector<std::string> applied;    // transforms the method applied
};

/// Method M1 (Section 5): behavioral synthesis with no CDFG
/// transformations — only what the scheduler itself provides (implicit
/// loop unrolling / pipelining and concurrent-loop parallelization).
BaselineResult run_m1(const ir::Function& fn, const hlslib::Library& lib,
                      const hlslib::Allocation& alloc,
                      const hlslib::FuSelection& sel,
                      const sim::TraceConfig& trace_config,
                      const sched::SchedOptions& sched_opts,
                      const power::PowerOptions& power_opts, uint64_t seed);

/// A re-implementation of the Flamel policy (Trickey '87, ref [7]): the
/// same transformation suite as FACT, including across-basic-block moves,
/// but applied greedily by *static* criteria — no scheduling information
/// guides selection, and scheduling happens once at the end:
///  * speculation and full unrolling of small counted loops are applied
///    unconditionally (global compaction);
///  * constant propagation/folding, select fusion, factoring
///    distributivity, loop-invariant code motion, and tree-height-reducing
///    associativity are applied while they reduce (op count, tree height);
///  * no schedule-feedback transforms: partial unrolling and add/sub
///    regrouping (whose benefit exists only relative to a resource
///    environment) are never selected.
BaselineResult run_flamel(const ir::Function& fn, const hlslib::Library& lib,
                          const hlslib::Allocation& alloc,
                          const hlslib::FuSelection& sel,
                          const sim::TraceConfig& trace_config,
                          const sched::SchedOptions& sched_opts,
                          const power::PowerOptions& power_opts,
                          uint64_t seed);

}  // namespace fact::opt
