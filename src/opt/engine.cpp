#include "opt/engine.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <typeinfo>
#include <unordered_set>

#include "util/error.hpp"
#include "util/strfmt.hpp"

namespace fact::opt {

namespace {

/// One member of the search population: a transformed variant plus the
/// bookkeeping needed to keep exploring from it.
struct Member {
  ir::Function fn;
  std::set<int> region;              // region ids incl. transform-created
  std::vector<std::string> applied;  // how we got here
  Evaluation eval;
};

}  // namespace

TransformEngine::TransformEngine(const hlslib::Library& lib,
                                 const hlslib::Allocation& alloc,
                                 const hlslib::FuSelection& sel,
                                 const sched::SchedOptions& sched_opts,
                                 const power::PowerOptions& power_opts,
                                 const xform::TransformLibrary& xforms,
                                 EngineOptions opts)
    : lib_(lib),
      alloc_(alloc),
      sel_(sel),
      sched_opts_(sched_opts),
      power_opts_(power_opts),
      xforms_(xforms),
      opts_(opts) {}

Evaluation TransformEngine::evaluate(const ir::Function& fn,
                                     const sim::Trace& trace,
                                     Objective objective,
                                     double baseline_len) const {
  // Re-profile the candidate: transformed control structure means new
  // branch sites. The interpreter is cheap relative to scheduling.
  const sim::Profile profile = sim::profile_function(fn, trace);
  sched::Scheduler scheduler(lib_, alloc_, sel_, sched_opts_);
  const sched::ScheduleResult sr = scheduler.schedule(fn, profile);

  // Full validation: the schedule must be structurally sound and legal
  // under the allocation before its metrics are trusted.
  if (opts_.validate == verify::Level::Full) {
    verify::Report rep = verify::verify_stg(sr.stg, opts_.validate);
    if (rep.ok())
      rep = verify::verify_schedule(fn, sr.stg, lib_, alloc_, opts_.validate);
    verify::check_or_throw(rep);
  }

  Evaluation ev;
  ev.avg_len = stg::average_schedule_length(sr.stg);
  if (objective == Objective::Power) {
    const power::PowerEstimate est = power::estimate_power_scaled(
        sr.stg, lib_, baseline_len, power_opts_);
    ev.power = est.power;
    ev.vdd = est.vdd;
    // Iso-throughput constraint (Section 2.2): the transformed design must
    // not be slower than the base case; slower candidates would fake a
    // power win simply by stretching the denominator.
    ev.score = ev.avg_len <= baseline_len * 1.001 ? est.power : 1e30;
  } else {
    const power::PowerEstimate est =
        power::estimate_power(sr.stg, lib_, power_opts_);
    ev.power = est.power;
    ev.vdd = est.vdd;
    ev.score = ev.avg_len;
  }
  return ev;
}

EngineResult TransformEngine::optimize(const ir::Function& fn,
                                       const sim::Trace& trace,
                                       Objective objective,
                                       const std::set<int>& region,
                                       double baseline_len) const {
  Rng rng(opts_.seed);
  const auto start_time = std::chrono::steady_clock::now();

  EngineResult result;
  result.best = fn.clone();

  // Reads-before-def present in the *input* behavior are legal (registers
  // read as 0); candidates may not enlarge the set.
  const std::set<std::string> baseline_undef =
      opts_.validate == verify::Level::Off ? std::set<std::string>{}
                                           : verify::undefined_reads(fn);

  auto out_of_budget = [&]() {
    if (result.truncated) return true;
    if (opts_.max_evaluations > 0 &&
        result.evaluations >= opts_.max_evaluations) {
      result.truncated = true;
      return true;
    }
    if (opts_.deadline_ms > 0.0) {
      const double elapsed_ms =
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - start_time)
              .count();
      if (elapsed_ms >= opts_.deadline_ms) {
        result.truncated = true;
        return true;
      }
    }
    return false;
  };

  auto quarantine = [&](const char* pass, std::string failure_class,
                        std::string message,
                        const std::vector<std::string>& transforms) {
    result.quarantined++;
    result.quarantine_by_class[failure_class]++;
    if (result.quarantine.size() < opts_.quarantine_log_cap) {
      QuarantineRecord rec;
      rec.pass = pass;
      rec.failure_class = std::move(failure_class);
      rec.message = std::move(message);
      rec.transforms = transforms;
      result.quarantine.push_back(std::move(rec));
    }
  };

  // Transactional evaluation: any failure — allocation infeasibility,
  // scheduler non-convergence, verifier rejection of the schedule, or an
  // arbitrary exception — quarantines the member with a diagnostic
  // instead of aborting the search.
  auto evaluate_member = [&](Member& m) -> bool {
    result.evaluations++;
    try {
      m.eval = evaluate(m.fn, trace, objective, baseline_len);
      return true;
    } catch (const verify::VerifyError& e) {
      quarantine("evaluate", e.report().ok() ? "verify" : e.report().first_check(),
                 e.what(), m.applied);
    } catch (const Error& e) {
      // e.g. a transform pushed the behavior outside the allocation's
      // reach, or the scheduler could not converge under the clock.
      quarantine("evaluate", "schedule-error", e.what(), m.applied);
    } catch (const std::exception& e) {
      quarantine("evaluate", strfmt("exception:%s", typeid(e).name()),
                 e.what(), m.applied);
    }
    m.eval = Evaluation{};
    m.eval.score = 1e30;
    return false;
  };

  Member root{fn.clone(), region, {}, {}};
  const bool root_ok = evaluate_member(root);
  result.best_eval = root.eval;

  // Structural dedup across the whole run.
  std::unordered_set<size_t> seen;
  const std::hash<std::string> hasher;
  seen.insert(hasher(root.fn.str()));

  std::vector<Member> in_set;
  in_set.push_back(std::move(root));

  int accepted = 0;  // candidates that survived every gate
  double best_score = result.best_eval.score;
  for (int outer = 0;
       outer < opts_.max_outer_iters && !out_of_budget(); ++outer) {
    const double k = opts_.k0 + opts_.k_step * outer;
    const double score_before = best_score;

    for (int move = 0; move < opts_.max_moves && !out_of_budget(); ++move) {
      std::vector<Member> behavior_set;

      // Neighborhood generation: every candidate transformation of every
      // population member (statement 6 of Figure 6).
      for (const Member& g : in_set) {
        if (out_of_budget()) break;
        std::vector<xform::Candidate> cands =
            xforms_.find_all(g.fn, g.region);
        // Deterministic shuffle so the evaluation budget samples the
        // neighborhood uniformly instead of front-loading one transform.
        for (size_t i = cands.size(); i > 1; --i)
          std::swap(cands[i - 1],
                    cands[static_cast<size_t>(rng.uniform_int(0, static_cast<int64_t>(i) - 1))]);

        for (const auto& c : cands) {
          if (behavior_set.size() >= opts_.max_neighbors_eval) break;
          if (out_of_budget()) break;

          std::vector<std::string> seq = g.applied;
          seq.push_back(c.describe());

          // Gate 1: the rewrite itself. A transform implementation may
          // throw anything; the candidate is quarantined, never the run.
          ir::Function transformed;
          try {
            transformed = xforms_.apply(g.fn, c);
          } catch (const Error& e) {
            quarantine("apply", "apply-error", e.what(), seq);
            continue;
          } catch (const std::exception& e) {
            quarantine("apply", strfmt("exception:%s", typeid(e).name()),
                       e.what(), seq);
            continue;
          }

          // Gate 2: deep IR invariants, before dedup so that even a
          // corruption that leaves the rendered text unchanged (e.g. a
          // duplicated statement id) is caught and accounted for.
          if (opts_.validate != verify::Level::Off) {
            const verify::Report rep = verify::verify_function(
                transformed, opts_.validate, &baseline_undef);
            if (!rep.ok()) {
              quarantine("verify", rep.first_check(), rep.str(), seq);
              continue;
            }
          }

          const size_t h = hasher(transformed.str());
          if (!seen.insert(h).second) continue;

          // Gate 3: observable behavior must match the original.
          if (opts_.verify_equivalence) {
            bool equivalent = false;
            try {
              equivalent = sim::equivalent_on_trace(fn, transformed, trace);
            } catch (const std::exception& e) {
              quarantine("equivalence", "simulation-error", e.what(), seq);
              continue;
            }
            if (!equivalent) {
              result.rejected_nonequivalent++;
              quarantine("equivalence", "nonequivalent", c.describe(), seq);
              continue;
            }
          }

          Member m;
          // Region: keep the parent's ids plus any transform-created ones.
          m.region = g.region;
          if (!m.region.empty()) {
            const std::set<int> parent_ids = g.fn.stmt_ids();
            for (int id : transformed.stmt_ids())
              if (!parent_ids.count(id)) m.region.insert(id);
          }
          m.fn = std::move(transformed);
          m.applied = std::move(seq);
          behavior_set.push_back(std::move(m));
        }
      }
      if (behavior_set.empty()) break;

      // Assess efficacy: reschedule + estimate (statements 8-10). Members
      // whose evaluation fails are quarantined and drop out of the
      // population.
      std::vector<Member> evaluated;
      evaluated.reserve(behavior_set.size());
      for (Member& m : behavior_set) {
        if (out_of_budget()) break;
        if (opts_.reschedule_in_loop) {
          if (!evaluate_member(m)) continue;
        } else {
          // Ablation: schedule-blind search scores by static op count.
          size_t ops = 0;
          m.fn.for_each([&](const ir::Stmt& s) {
            for (const auto* slot : s.expr_slots())
              ops += (*slot)->tree_size();
          });
          m.eval.score = static_cast<double>(ops);
        }
        accepted++;
        if (m.eval.score < best_score) {
          best_score = m.eval.score;
          result.best = m.fn.clone();
          result.best_eval = m.eval;
          result.applied = m.applied;
        }
        evaluated.push_back(std::move(m));
      }
      behavior_set = std::move(evaluated);
      if (behavior_set.empty()) break;

      // Rank decreasing gain = increasing score; select a fixed-size
      // subset with P(rank) ~ e^(-k * rank).
      std::sort(behavior_set.begin(), behavior_set.end(),
                [](const Member& a, const Member& b) {
                  return a.eval.score < b.eval.score;
                });
      const size_t want = std::min(opts_.in_set_size, behavior_set.size());
      std::vector<size_t> chosen;
      std::vector<bool> taken(behavior_set.size(), false);
      while (chosen.size() < want) {
        double total = 0.0;
        for (size_t r = 0; r < behavior_set.size(); ++r)
          if (!taken[r]) total += std::exp(-k * static_cast<double>(r));
        double x = rng.uniform() * total;
        size_t pick = behavior_set.size();
        for (size_t r = 0; r < behavior_set.size(); ++r) {
          if (taken[r]) continue;
          x -= std::exp(-k * static_cast<double>(r));
          if (x <= 0.0) {
            pick = r;
            break;
          }
        }
        if (pick == behavior_set.size()) {  // numerical tail: take best free
          for (size_t r = 0; r < behavior_set.size(); ++r)
            if (!taken[r]) {
              pick = r;
              break;
            }
        }
        taken[pick] = true;
        chosen.push_back(pick);
      }
      std::vector<Member> next;
      next.reserve(chosen.size());
      for (size_t r : chosen) next.push_back(std::move(behavior_set[r]));
      in_set = std::move(next);
    }

    result.score_trace.push_back(best_score);
    // Termination: a full generation without improvement (Section 4.2).
    if (best_score >= score_before - 1e-9 && outer > 0) break;
    if (in_set.empty()) break;
  }

  // If the schedule-blind ablation was used, the recorded eval lacks real
  // metrics; evaluate the winner properly once. A winner that fails this
  // final evaluation is abandoned in favor of the baseline.
  if (!opts_.reschedule_in_loop && accepted > 0) {
    try {
      result.best_eval = evaluate(result.best, trace, objective, baseline_len);
    } catch (const std::exception& e) {
      quarantine("evaluate", "final-evaluation", e.what(), result.applied);
      result.best = fn.clone();
      result.applied.clear();
      result.best_eval = Evaluation{};
      result.best_eval.score = 1e30;
      accepted = 0;
    }
  }

  // Graceful degradation: when the whole neighborhood was quarantined or
  // rejected, the engine falls back to the (already validated or at least
  // unmodified) baseline design rather than failing the run.
  result.degraded_to_baseline =
      accepted == 0 && (result.quarantined > 0 || !root_ok);

  return result;
}

}  // namespace fact::opt
