#include "opt/engine.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <typeinfo>
#include <unordered_set>

#include "ir/hash.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sched/fragment_cache.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"
#include "util/strfmt.hpp"

namespace fact::opt {

namespace {

/// One member of the search population: a transformed variant plus the
/// bookkeeping needed to keep exploring from it.
struct Member {
  ir::Function fn;
  std::set<int> region;              // region ids incl. transform-created
  std::vector<std::string> applied;  // how we got here
  std::string via;                   // transform class of the last move
  Evaluation eval;
  uint64_t hash = 0;                 // ir::structural_hash(fn)
};

/// Process-wide search instrumentation (obs registry). Strictly
/// write-only from the search path: counters are never read back to make
/// decisions, so the determinism contract (jobs-invariance, factd ==
/// factc) is untouched. Function-local statics resolve each metric once.
struct SearchCounters {
  obs::Counter& optimize_calls = obs::Registry::global().counter(
      "fact_engine_optimize_total", "TransformEngine::optimize() calls");
  obs::Counter& generations = obs::Registry::global().counter(
      "fact_search_generations_total", "Outer search iterations completed");
  obs::Counter& candidates = obs::Registry::global().counter(
      "fact_search_candidates_total",
      "Candidate transformations entering the gauntlet");
  obs::Counter& duplicates = obs::Registry::global().counter(
      "fact_search_duplicates_total",
      "Candidates dropped by structural dedup");
  obs::Counter& quarantined = obs::Registry::global().counter(
      "fact_search_quarantined_total",
      "Candidates quarantined (apply/verify/equivalence/evaluate)");
  obs::Counter& nonequivalent = obs::Registry::global().counter(
      "fact_search_nonequivalent_total",
      "Candidates failing trace equivalence");
  obs::Counter& accepted = obs::Registry::global().counter(
      "fact_search_accepted_total",
      "Candidates surviving every gate incl. evaluation");
  obs::Counter& improvements = obs::Registry::global().counter(
      "fact_search_improvements_total",
      "Accepted candidates that improved the best score");
  obs::Counter& eval_requests = obs::Registry::global().counter(
      "fact_eval_requests_total",
      "Candidate evaluations requested (cache hits + misses)");
  obs::Counter& eval_cache_hits = obs::Registry::global().counter(
      "fact_eval_cache_hits_total",
      "Evaluation requests served from the memo cache");
  obs::Counter& eval_cache_misses = obs::Registry::global().counter(
      "fact_eval_cache_misses_total",
      "Evaluation requests that ran the full pipeline");
  obs::Histogram& selected_rank = obs::Registry::global().histogram(
      "fact_search_selected_rank",
      {0.5, 1.5, 2.5, 3.5, 5.5, 7.5, 11.5, 15.5, 23.5, 31.5},
      "Rank of each member selected into In_set (0 = best)");
  static SearchCounters& get() {
    static SearchCounters c;
    return c;
  }
};

}  // namespace

// ---- EvalCache ---------------------------------------------------------

namespace {
// Lock striping: caches at least this large are split into kEvalCacheShards
// stripes. Below it a single shard keeps exact global LRU order — per-shard
// caps of 0 or 1 entry would evict almost everything.
constexpr size_t kEvalCacheShards = 16;
constexpr size_t kShardingThreshold = 4096;

// Raw cache traffic across every EvalCache instance in the process (the
// per-run EngineResult counters remain the authoritative, jobs-invariant
// attribution; these standing counters additionally see factd's shared
// process-wide cache). Incremented outside the shard locks.
obs::Counter& evalcache_lookups() {
  static obs::Counter& c = obs::Registry::global().counter(
      "fact_evalcache_lookups_total", "EvalCache lookup() calls");
  return c;
}
obs::Counter& evalcache_hits() {
  static obs::Counter& c = obs::Registry::global().counter(
      "fact_evalcache_hits_total", "EvalCache lookups that found an entry");
  return c;
}
obs::Counter& evalcache_insertions() {
  static obs::Counter& c = obs::Registry::global().counter(
      "fact_evalcache_insertions_total",
      "EvalCache entries newly inserted (refreshes excluded)");
  return c;
}
}  // namespace

EvalCache::EvalCache(size_t capacity)
    : capacity_(std::max<size_t>(1, capacity)),
      shards_(capacity_ >= kShardingThreshold ? kEvalCacheShards : 1) {
  // Spread the capacity across shards; the first capacity % n shards take
  // the remainder so the caps always sum to exactly capacity_.
  const size_t n = shards_.size();
  for (size_t i = 0; i < n; ++i)
    shards_[i].cap = capacity_ / n + (i < capacity_ % n ? 1 : 0);
}

size_t EvalCache::shard_index(const Key& k) const {
  // KeyHash keeps small structural hashes' entropy in its low bits; run a
  // splitmix64 finalizer so shard selection is uniform for any key shape
  // (and decorrelated from the shard-local unordered_map's buckets).
  uint64_t h = KeyHash{}(k);
  h ^= h >> 30;
  h *= 0xBF58476D1CE4E5B9ull;
  h ^= h >> 27;
  h *= 0x94D049BB133111EBull;
  h ^= h >> 31;
  return static_cast<size_t>(h % shards_.size());
}

EvalCache::Key EvalCache::make_key(uint64_t h, Objective o,
                                   double baseline_len) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(baseline_len));
  std::memcpy(&bits, &baseline_len, sizeof(bits));
  return Key{h, static_cast<int>(o), bits};
}

size_t EvalCache::KeyHash::operator()(const Key& k) const {
  uint64_t h = k.hash;
  h ^= (k.baseline_bits + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2));
  h ^= (static_cast<uint64_t>(k.objective) + 0x9E3779B97F4A7C15ull +
        (h << 6) + (h >> 2));
  return static_cast<size_t>(h);
}

std::optional<EvalCache::Entry> EvalCache::lookup(uint64_t structural_hash,
                                                  Objective objective,
                                                  double baseline_len) const {
  const Key key = make_key(structural_hash, objective, baseline_len);
  const Shard& s = shards_[shard_index(key)];
  std::optional<Entry> out;
  {
    std::lock_guard<std::mutex> lock(s.mu);
    const auto it = s.map.find(key);
    if (it != s.map.end()) out = it->second.entry;
  }
  evalcache_lookups().inc();
  if (out) evalcache_hits().inc();
  return out;
}

void EvalCache::insert(uint64_t structural_hash, Objective objective,
                       double baseline_len, Entry entry) {
  const Key key = make_key(structural_hash, objective, baseline_len);
  Shard& s = shards_[shard_index(key)];
  bool inserted = false;
  {
    std::lock_guard<std::mutex> lock(s.mu);
    const auto it = s.map.find(key);
    if (it != s.map.end()) {
      // First insertion wins; a re-insert just counts as a use.
      s.lru.splice(s.lru.begin(), s.lru, it->second.lru);
    } else {
      s.lru.push_front(key);
      s.map.emplace(key, Slot{std::move(entry), s.lru.begin()});
      inserted = true;
      while (s.map.size() > s.cap) {
        s.map.erase(s.lru.back());
        s.lru.pop_back();
      }
    }
  }
  if (inserted) evalcache_insertions().inc();
}

void EvalCache::touch(uint64_t structural_hash, Objective objective,
                      double baseline_len) {
  const Key key = make_key(structural_hash, objective, baseline_len);
  Shard& s = shards_[shard_index(key)];
  std::lock_guard<std::mutex> lock(s.mu);
  const auto it = s.map.find(key);
  if (it != s.map.end()) s.lru.splice(s.lru.begin(), s.lru, it->second.lru);
}

size_t EvalCache::size() const {
  size_t n = 0;
  for (const Shard& s : shards_) {
    std::lock_guard<std::mutex> lock(s.mu);
    n += s.map.size();
  }
  return n;
}

// ---- TransformEngine ---------------------------------------------------

TransformEngine::TransformEngine(const hlslib::Library& lib,
                                 const hlslib::Allocation& alloc,
                                 const hlslib::FuSelection& sel,
                                 const sched::SchedOptions& sched_opts,
                                 const power::PowerOptions& power_opts,
                                 const xform::TransformLibrary& xforms,
                                 EngineOptions opts)
    : lib_(lib),
      alloc_(alloc),
      sel_(sel),
      sched_opts_(sched_opts),
      power_opts_(power_opts),
      xforms_(xforms),
      opts_(opts) {}

Evaluation TransformEngine::evaluate(const ir::Function& fn,
                                     const sim::Trace& trace,
                                     Objective objective,
                                     double baseline_len) const {
  return evaluate_impl(fn, trace, objective, baseline_len, nullptr);
}

Evaluation TransformEngine::evaluate_impl(
    const ir::Function& fn, const sim::Trace& trace, Objective objective,
    double baseline_len, sched::FragmentCache* fragments) const {
  // Re-profile the candidate: transformed control structure means new
  // branch sites. The interpreter is cheap relative to scheduling.
  obs::Span sp_profile = obs::span("profile", "eval");
  const sim::Profile profile = sim::profile_function(fn, trace);
  sp_profile.finish();
  obs::Span sp_sched = obs::span("schedule", "eval");
  sched::SchedOptions sopts = sched_opts_;
  sopts.fragment_cache = fragments;
  sched::Scheduler scheduler(lib_, alloc_, sel_, sopts);
  const sched::ScheduleResult sr = scheduler.schedule(fn, profile);
  sp_sched.arg("fragment_hits", sr.fragment_hits);
  sp_sched.finish();

  // Full validation: the schedule must be structurally sound and legal
  // under the allocation before its metrics are trusted.
  if (opts_.validate == verify::Level::Full) {
    verify::Report rep = verify::verify_stg(sr.stg, opts_.validate);
    if (rep.ok())
      rep = verify::verify_schedule(fn, sr.stg, lib_, alloc_, opts_.validate);
    verify::check_or_throw(rep);
  }

  // One stationary solve serves both the throughput metric and the power
  // model (the power estimate reuses pi instead of re-solving the chain).
  obs::Span sp_est = obs::span("estimate", "eval");
  const std::vector<double> pi =
      stg::state_probabilities(sr.stg, sched_opts_.markov);
  Evaluation ev;
  ev.fragment_hits = sr.fragment_hits;
  ev.fragment_misses = sr.fragment_misses;
  ev.avg_len = stg::average_schedule_length(sr.stg, pi);
  if (objective == Objective::Power) {
    const power::PowerEstimate est = power::estimate_power_scaled(
        sr.stg, lib_, baseline_len, power_opts_, &pi);
    ev.power = est.power;
    ev.vdd = est.vdd;
    // Iso-throughput constraint (Section 2.2): the transformed design must
    // not be slower than the base case; slower candidates would fake a
    // power win simply by stretching the denominator.
    ev.score = ev.avg_len <= baseline_len * 1.001 ? est.power : 1e30;
  } else {
    const power::PowerEstimate est =
        power::estimate_power(sr.stg, lib_, power_opts_, &pi);
    ev.power = est.power;
    ev.vdd = est.vdd;
    ev.score = ev.avg_len;
  }
  return ev;
}

EngineResult TransformEngine::optimize(const ir::Function& fn,
                                       const sim::Trace& trace,
                                       Objective objective,
                                       const std::set<int>& region,
                                       double baseline_len,
                                       EvalCache* shared_cache) const {
  Rng rng(opts_.seed);
  const auto start_time = std::chrono::steady_clock::now();

  SearchCounters& sc = SearchCounters::get();
  sc.optimize_calls.inc();
  obs::Span sp_opt = obs::span("engine.optimize", "opt");
  sp_opt.arg("objective",
             objective == Objective::Power ? "power" : "throughput");

  EngineResult result;
  result.best = fn.clone();

  // Memoized evaluations: shared across calls when the caller provides a
  // cache (run_fact does, one per flow; factd one per process), run-local
  // otherwise.
  EvalCache local_cache(opts_.cache_cap);
  EvalCache& cache = shared_cache ? *shared_cache : local_cache;

  // Region-scoped schedule memoization, one per run: candidates share the
  // regions they did not mutate, so their schedules reuse each other's
  // fragments. Never shared across runs — its entries assume this run's
  // library/allocation/selection/clock.
  sched::FragmentCache fragment_cache;

  // The pool only parallelizes per-candidate work (apply/verify/
  // equivalence/evaluate); neighborhood generation, the RNG, and every
  // reduction over candidate outcomes stay on this thread, in submission
  // order — which is what makes results independent of the jobs count.
  // A caller-provided pool is borrowed (factd shares one across engines);
  // otherwise a private pool of `jobs` threads lives for this call.
  const int jobs =
      opts_.jobs <= 0 ? WorkerPool::hardware_threads() : opts_.jobs;
  std::optional<WorkerPool> own_pool;
  if (!opts_.pool) own_pool.emplace(jobs);
  WorkerPool& pool = opts_.pool ? *opts_.pool : *own_pool;

  // Reads-before-def present in the *input* behavior are legal (registers
  // read as 0); candidates may not enlarge the set.
  const std::set<std::string> baseline_undef =
      opts_.validate == verify::Level::Off ? std::set<std::string>{}
                                           : verify::undefined_reads(fn);

  auto out_of_budget = [&]() {
    if (result.truncated) return true;
    if (opts_.cancel && opts_.cancel->load(std::memory_order_relaxed)) {
      result.truncated = true;
      return true;
    }
    if (opts_.max_evaluations > 0 &&
        result.evaluations >= opts_.max_evaluations) {
      result.truncated = true;
      return true;
    }
    if (opts_.deadline_ms > 0.0) {
      const double elapsed_ms =
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - start_time)
              .count();
      if (elapsed_ms >= opts_.deadline_ms) {
        result.truncated = true;
        return true;
      }
    }
    return false;
  };

  auto quarantine = [&](const char* pass, std::string failure_class,
                        std::string message,
                        const std::vector<std::string>& transforms) {
    result.quarantined++;
    sc.quarantined.inc();
    result.quarantine_by_class[failure_class]++;
    if (result.quarantine.size() < opts_.quarantine_log_cap) {
      QuarantineRecord rec;
      rec.pass = pass;
      rec.failure_class = std::move(failure_class);
      rec.message = std::move(message);
      rec.transforms = transforms;
      result.quarantine.push_back(std::move(rec));
    }
  };

  // Transactional evaluation, compute side: any failure — allocation
  // infeasibility, scheduler non-convergence, verifier rejection of the
  // schedule, or an arbitrary exception — becomes a failure entry instead
  // of aborting the search. Called concurrently from workers: evaluate()
  // builds its own Scheduler and all engine context is read-only.
  auto compute_entry = [&](const ir::Function& f) {
    EvalCache::Entry e;
    try {
      e.eval = evaluate_impl(f, trace, objective, baseline_len,
                             &fragment_cache);
      e.ok = true;
    } catch (const verify::VerifyError& ex) {
      e.failure_class =
          ex.report().ok() ? "verify" : ex.report().first_check();
      e.message = ex.what();
    } catch (const Error& ex) {
      // e.g. a transform pushed the behavior outside the allocation's
      // reach, or the scheduler could not converge under the clock.
      e.failure_class = "schedule-error";
      e.message = ex.what();
    } catch (const std::exception& ex) {
      e.failure_class = strfmt("exception:%s", typeid(ex).name());
      e.message = ex.what();
    }
    return e;
  };

  // Transactional evaluation, accounting side (serial): counts the
  // request, publishes fresh results to the cache, and quarantines
  // failures. Returns false when the member must drop out.
  auto consume_entry = [&](Member& m, const EvalCache::Entry& entry,
                           bool hit) {
    result.evaluations++;
    sc.eval_requests.inc();
    if (hit) {
      result.cache_hits++;
      sc.eval_cache_hits.inc();
      cache.touch(m.hash, objective, baseline_len);
    } else {
      result.cache_misses++;
      sc.eval_cache_misses.inc();
      // Fragment traffic is attributed to the evaluations that actually
      // ran the scheduler; memo hits skipped it entirely.
      result.fragment_hits += entry.eval.fragment_hits;
      result.fragment_misses += entry.eval.fragment_misses;
      if (opts_.memoize) cache.insert(m.hash, objective, baseline_len, entry);
    }
    if (!entry.ok) {
      quarantine("evaluate", entry.failure_class, entry.message, m.applied);
      m.eval = Evaluation{};
      m.eval.score = 1e30;
      return false;
    }
    m.eval = entry.eval;
    return true;
  };

  Member root;
  root.fn = fn.clone();
  root.region = region;
  root.hash = ir::structural_hash(fn);
  bool root_ok;
  {
    const auto hit = opts_.memoize
                         ? cache.lookup(root.hash, objective, baseline_len)
                         : std::nullopt;
    root_ok = consume_entry(root, hit ? *hit : compute_entry(root.fn),
                            hit.has_value());
  }
  result.best_eval = root.eval;

  // Structural dedup across the whole run.
  std::unordered_set<uint64_t> seen;
  seen.insert(root.hash);

  std::vector<Member> in_set;
  in_set.push_back(std::move(root));

  struct WorkItem {
    size_t parent;  // index into in_set
    xform::Candidate cand;
  };

  /// Outcome of the speculative (worker-side) part of one candidate's
  /// gauntlet. The serial reduction replays these in submission order.
  struct Outcome {
    enum class Status { Survived, Duplicate, Quarantined, NonEquivalent };
    Status status = Status::Duplicate;
    ir::Function fn;            // transformed (valid past gate 1)
    uint64_t hash = 0;          // valid when past_dedup
    bool past_dedup = false;    // reached the dedup gate (post-verify)
    const char* pass = "";      // quarantine pass when Quarantined
    std::string failure_class;
    std::string message;
  };

  int accepted = 0;  // candidates that survived every gate
  double best_score = result.best_eval.score;
  for (int outer = 0;
       outer < opts_.max_outer_iters && !out_of_budget(); ++outer) {
    const double k = opts_.k0 + opts_.k_step * outer;
    const double score_before = best_score;

    // Per-generation telemetry: funnel counts accumulate inline in the
    // serial reductions; the pipeline counters diff the run totals.
    GenerationTelemetry gen;
    gen.outer = outer;
    gen.k = k;
    const int gen_ev0 = result.evaluations;
    const int gen_ch0 = result.cache_hits;
    const int gen_q0 = result.quarantined;
    const int gen_ne0 = result.rejected_nonequivalent;
    obs::Span sp_gen = obs::span("generation", "opt");
    sp_gen.arg("outer", outer);
    sp_gen.arg("k", k);

    for (int move = 0; move < opts_.max_moves && !out_of_budget(); ++move) {
      // Neighborhood generation (serial): every candidate transformation
      // of every population member (statement 6 of Figure 6) goes into one
      // RNG-ordered work list.
      std::vector<WorkItem> work;
      for (size_t gi = 0; gi < in_set.size(); ++gi) {
        if (out_of_budget()) break;
        std::vector<xform::Candidate> cands =
            xforms_.find_all(in_set[gi].fn, in_set[gi].region);
        // Deterministic shuffle so the evaluation budget samples the
        // neighborhood uniformly instead of front-loading one transform.
        for (size_t i = cands.size(); i > 1; --i)
          std::swap(cands[i - 1],
                    cands[static_cast<size_t>(rng.uniform_int(0, static_cast<int64_t>(i) - 1))]);
        for (auto& c : cands)
          work.push_back(WorkItem{gi, std::move(c)});
      }

      // The gauntlet (gates 1-3), in waves: workers speculatively apply,
      // verify, hash, and equivalence-check candidates; the reduction then
      // replays outcomes in submission order, so the dedup set, the
      // quarantine counters/records, and the surviving behavior_set are
      // exactly those of a jobs=1 run. Wave size is the number of
      // survivors still wanted — independent of the jobs count — so even
      // the set of speculatively processed candidates is deterministic.
      std::vector<Member> behavior_set;
      size_t next_item = 0;
      while (next_item < work.size() &&
             behavior_set.size() < opts_.max_neighbors_eval &&
             !out_of_budget()) {
        const size_t wave =
            std::min(work.size() - next_item,
                     opts_.max_neighbors_eval - behavior_set.size());
        std::vector<Outcome> outcomes(wave);
        pool.parallel_for(wave, [&](size_t w) {
          const WorkItem& item = work[next_item + w];
          const Member& g = in_set[item.parent];
          Outcome& o = outcomes[w];
          obs::Span sp_cand = obs::span("candidate", "opt");
          sp_cand.arg("transform", item.cand.transform);

          // Gate 1: the rewrite itself. A transform implementation may
          // throw anything; the candidate is quarantined, never the run.
          try {
            o.fn = xforms_.apply(g.fn, item.cand);
          } catch (const Error& e) {
            o.status = Outcome::Status::Quarantined;
            o.pass = "apply";
            o.failure_class = "apply-error";
            o.message = e.what();
            return;
          } catch (const std::exception& e) {
            o.status = Outcome::Status::Quarantined;
            o.pass = "apply";
            o.failure_class = strfmt("exception:%s", typeid(e).name());
            o.message = e.what();
            return;
          }

          // Gate 2: deep IR invariants, before dedup so that even a
          // corruption that leaves the structural hash unchanged (e.g. a
          // duplicated statement id) is caught and accounted for.
          if (opts_.validate != verify::Level::Off) {
            const verify::Report rep = verify::verify_function(
                o.fn, opts_.validate, &baseline_undef);
            if (!rep.ok()) {
              o.status = Outcome::Status::Quarantined;
              o.pass = "verify";
              o.failure_class = rep.first_check();
              o.message = rep.str();
              return;
            }
          }

          o.hash = ir::structural_hash(o.fn);
          o.past_dedup = true;
          // Pre-filter against the dedup set, frozen during the wave:
          // known duplicates skip the equivalence simulation. The
          // authoritative dedup (which also catches duplicates *within*
          // this wave) runs in the reduction below.
          if (seen.count(o.hash)) {
            o.status = Outcome::Status::Duplicate;
            return;
          }

          // Gate 3: observable behavior must match the original.
          if (opts_.verify_equivalence) {
            bool equivalent = false;
            try {
              equivalent = sim::equivalent_on_trace(fn, o.fn, trace);
            } catch (const std::exception& e) {
              o.status = Outcome::Status::Quarantined;
              o.pass = "equivalence";
              o.failure_class = "simulation-error";
              o.message = e.what();
              return;
            }
            if (!equivalent) {
              o.status = Outcome::Status::NonEquivalent;
              o.message = item.cand.describe();
              return;
            }
          }
          o.status = Outcome::Status::Survived;
        });

        for (size_t w = 0; w < wave; ++w) {
          if (behavior_set.size() >= opts_.max_neighbors_eval) break;
          if (out_of_budget()) break;
          Outcome& o = outcomes[w];
          gen.candidates++;
          sc.candidates.inc();
          // Structural dedup, in submission order (mirrors the serial
          // gate: candidates reaching it insert their hash whether or not
          // they later fail equivalence).
          if (o.past_dedup && !seen.insert(o.hash).second) {
            gen.duplicates++;
            sc.duplicates.inc();
            continue;
          }

          const WorkItem& item = work[next_item + w];
          const Member& g = in_set[item.parent];
          std::vector<std::string> seq = g.applied;
          seq.push_back(item.cand.describe());

          switch (o.status) {
            case Outcome::Status::Quarantined:
              quarantine(o.pass, std::move(o.failure_class),
                         std::move(o.message), seq);
              break;
            case Outcome::Status::Duplicate:
              break;  // unreachable: the seen-insert above filtered it
            case Outcome::Status::NonEquivalent:
              result.rejected_nonequivalent++;
              sc.nonequivalent.inc();
              quarantine("equivalence", "nonequivalent", std::move(o.message),
                         seq);
              break;
            case Outcome::Status::Survived: {
              Member m;
              // Region: keep the parent's ids plus any transform-created
              // ones.
              m.region = g.region;
              if (!m.region.empty()) {
                const std::set<int> parent_ids = g.fn.stmt_ids();
                for (int id : o.fn.stmt_ids())
                  if (!parent_ids.count(id)) m.region.insert(id);
              }
              m.fn = std::move(o.fn);
              m.applied = std::move(seq);
              m.via = item.cand.transform;
              m.hash = o.hash;
              behavior_set.push_back(std::move(m));
              break;
            }
          }
        }
        next_item += wave;
      }
      if (behavior_set.empty()) break;

      // Assess efficacy: reschedule + estimate (statements 8-10), one
      // parallel wave over the surviving neighborhood against the frozen
      // cache, reduced in submission order. Members whose evaluation fails
      // are quarantined and drop out of the population.
      std::vector<Member> evaluated;
      evaluated.reserve(behavior_set.size());
      if (opts_.reschedule_in_loop) {
        const size_t n = behavior_set.size();
        std::vector<EvalCache::Entry> entries(n);
        std::vector<char> hits(n, 0);
        pool.parallel_for(n, [&](size_t w) {
          obs::Span sp_eval = obs::span("evaluate", "opt");
          sp_eval.arg("transform", behavior_set[w].via);
          const auto hit =
              opts_.memoize
                  ? cache.lookup(behavior_set[w].hash, objective, baseline_len)
                  : std::nullopt;
          sp_eval.arg("cache_hit", hit.has_value());
          if (hit) {
            entries[w] = std::move(*hit);
            hits[w] = 1;
          } else {
            entries[w] = compute_entry(behavior_set[w].fn);
          }
        });
        for (size_t w = 0; w < n; ++w) {
          if (out_of_budget()) break;
          Member& m = behavior_set[w];
          if (!consume_entry(m, entries[w], hits[w] != 0)) continue;
          accepted++;
          gen.accepted++;
          sc.accepted.inc();
          result.telemetry.accepted_by_transform[m.via]++;
          if (m.eval.score < best_score) {
            // Attribute the improvement to the transform class of the move
            // that produced the new best (skip the sentinel 1e30 scores a
            // failed root leaves behind — the delta would be meaningless).
            const double delta =
                best_score < 1e29 ? best_score - m.eval.score : 0.0;
            best_score = m.eval.score;
            result.best = m.fn.clone();
            result.best_eval = m.eval;
            result.applied = m.applied;
            gen.improvements++;
            sc.improvements.inc();
            result.telemetry.improvements_by_transform[m.via]++;
            result.telemetry.improvement_by_transform[m.via] += delta;
          }
          evaluated.push_back(std::move(m));
        }
      } else {
        for (Member& m : behavior_set) {
          if (out_of_budget()) break;
          // Ablation: schedule-blind search scores by static op count.
          size_t ops = 0;
          m.fn.for_each([&](const ir::Stmt& s) {
            for (const auto* slot : s.expr_slots())
              ops += (*slot)->tree_size();
          });
          m.eval.score = static_cast<double>(ops);
          accepted++;
          gen.accepted++;
          sc.accepted.inc();
          result.telemetry.accepted_by_transform[m.via]++;
          if (m.eval.score < best_score) {
            const double delta =
                best_score < 1e29 ? best_score - m.eval.score : 0.0;
            best_score = m.eval.score;
            result.best = m.fn.clone();
            result.best_eval = m.eval;
            result.applied = m.applied;
            gen.improvements++;
            sc.improvements.inc();
            result.telemetry.improvements_by_transform[m.via]++;
            result.telemetry.improvement_by_transform[m.via] += delta;
          }
          evaluated.push_back(std::move(m));
        }
      }
      behavior_set = std::move(evaluated);
      if (behavior_set.empty()) break;

      // Rank decreasing gain = increasing score; select a fixed-size
      // subset with P(rank) ~ e^(-k * rank).
      std::sort(behavior_set.begin(), behavior_set.end(),
                [](const Member& a, const Member& b) {
                  return a.eval.score < b.eval.score;
                });
      const size_t want = std::min(opts_.in_set_size, behavior_set.size());
      std::vector<size_t> chosen;
      std::vector<bool> taken(behavior_set.size(), false);
      while (chosen.size() < want) {
        double total = 0.0;
        for (size_t r = 0; r < behavior_set.size(); ++r)
          if (!taken[r]) total += std::exp(-k * static_cast<double>(r));
        double x = rng.uniform() * total;
        size_t pick = behavior_set.size();
        for (size_t r = 0; r < behavior_set.size(); ++r) {
          if (taken[r]) continue;
          x -= std::exp(-k * static_cast<double>(r));
          if (x <= 0.0) {
            pick = r;
            break;
          }
        }
        if (pick == behavior_set.size()) {  // numerical tail: take best free
          for (size_t r = 0; r < behavior_set.size(); ++r)
            if (!taken[r]) {
              pick = r;
              break;
            }
        }
        taken[pick] = true;
        chosen.push_back(pick);
        result.telemetry.selected_ranks[static_cast<int>(pick)]++;
        sc.selected_rank.observe(static_cast<double>(pick));
      }
      std::vector<Member> next;
      next.reserve(chosen.size());
      for (size_t r : chosen) next.push_back(std::move(behavior_set[r]));
      in_set = std::move(next);
    }

    result.score_trace.push_back(best_score);
    gen.evaluations = result.evaluations - gen_ev0;
    gen.cache_hits = result.cache_hits - gen_ch0;
    gen.quarantined = result.quarantined - gen_q0;
    gen.rejected_nonequivalent = result.rejected_nonequivalent - gen_ne0;
    gen.best_score = best_score;
    gen.acceptance_rate =
        gen.candidates > 0
            ? static_cast<double>(gen.accepted) / gen.candidates
            : 0.0;
    result.telemetry.generations.push_back(gen);
    sc.generations.inc();
    sp_gen.arg("candidates", gen.candidates);
    sp_gen.arg("accepted", gen.accepted);
    // Termination: a full generation without improvement (Section 4.2).
    if (best_score >= score_before - 1e-9 && outer > 0) break;
    if (in_set.empty()) break;
  }

  // If the schedule-blind ablation was used, the recorded eval lacks real
  // metrics; evaluate the winner properly once. A winner that fails this
  // final evaluation is abandoned in favor of the baseline.
  if (!opts_.reschedule_in_loop && accepted > 0) {
    try {
      result.best_eval = evaluate(result.best, trace, objective, baseline_len);
    } catch (const std::exception& e) {
      quarantine("evaluate", "final-evaluation", e.what(), result.applied);
      result.best = fn.clone();
      result.applied.clear();
      result.best_eval = Evaluation{};
      result.best_eval.score = 1e30;
      accepted = 0;
    }
  }

  // Graceful degradation: when the whole neighborhood was quarantined or
  // rejected, the engine falls back to the (already validated or at least
  // unmodified) baseline design rather than failing the run.
  result.degraded_to_baseline =
      accepted == 0 && (result.quarantined > 0 || !root_ok);

  sp_opt.arg("evaluations", result.evaluations);
  sp_opt.arg("cache_hits", result.cache_hits);
  return result;
}

}  // namespace fact::opt
