#include "opt/engine.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "util/error.hpp"
#include "util/strfmt.hpp"

namespace fact::opt {

namespace {

/// One member of the search population: a transformed variant plus the
/// bookkeeping needed to keep exploring from it.
struct Member {
  ir::Function fn;
  std::set<int> region;              // region ids incl. transform-created
  std::vector<std::string> applied;  // how we got here
  Evaluation eval;
};

}  // namespace

TransformEngine::TransformEngine(const hlslib::Library& lib,
                                 const hlslib::Allocation& alloc,
                                 const hlslib::FuSelection& sel,
                                 const sched::SchedOptions& sched_opts,
                                 const power::PowerOptions& power_opts,
                                 const xform::TransformLibrary& xforms,
                                 EngineOptions opts)
    : lib_(lib),
      alloc_(alloc),
      sel_(sel),
      sched_opts_(sched_opts),
      power_opts_(power_opts),
      xforms_(xforms),
      opts_(opts) {}

Evaluation TransformEngine::evaluate(const ir::Function& fn,
                                     const sim::Trace& trace,
                                     Objective objective,
                                     double baseline_len) const {
  // Re-profile the candidate: transformed control structure means new
  // branch sites. The interpreter is cheap relative to scheduling.
  const sim::Profile profile = sim::profile_function(fn, trace);
  sched::Scheduler scheduler(lib_, alloc_, sel_, sched_opts_);
  const sched::ScheduleResult sr = scheduler.schedule(fn, profile);

  Evaluation ev;
  ev.avg_len = stg::average_schedule_length(sr.stg);
  if (objective == Objective::Power) {
    const power::PowerEstimate est = power::estimate_power_scaled(
        sr.stg, lib_, baseline_len, power_opts_);
    ev.power = est.power;
    ev.vdd = est.vdd;
    // Iso-throughput constraint (Section 2.2): the transformed design must
    // not be slower than the base case; slower candidates would fake a
    // power win simply by stretching the denominator.
    ev.score = ev.avg_len <= baseline_len * 1.001 ? est.power : 1e30;
  } else {
    const power::PowerEstimate est =
        power::estimate_power(sr.stg, lib_, power_opts_);
    ev.power = est.power;
    ev.vdd = est.vdd;
    ev.score = ev.avg_len;
  }
  return ev;
}

EngineResult TransformEngine::optimize(const ir::Function& fn,
                                       const sim::Trace& trace,
                                       Objective objective,
                                       const std::set<int>& region,
                                       double baseline_len) const {
  Rng rng(opts_.seed);

  EngineResult result{fn.clone(), {}, {}, {}, 0, 0};

  auto evaluate_member = [&](Member& m) {
    result.evaluations++;
    try {
      m.eval = evaluate(m.fn, trace, objective, baseline_len);
    } catch (const Error&) {
      // A transform can push a behavior outside the allocation's reach
      // (e.g. folding a counter comparison into a datapath one); such
      // candidates simply lose.
      m.eval = Evaluation{};
      m.eval.score = 1e30;
    }
  };

  Member root{fn.clone(), region, {}, {}};
  evaluate_member(root);
  result.best_eval = root.eval;

  // Structural dedup across the whole run.
  std::unordered_set<size_t> seen;
  const std::hash<std::string> hasher;
  seen.insert(hasher(root.fn.str()));

  std::vector<Member> in_set;
  in_set.push_back(std::move(root));

  double best_score = result.best_eval.score;
  for (int outer = 0; outer < opts_.max_outer_iters; ++outer) {
    const double k = opts_.k0 + opts_.k_step * outer;
    const double score_before = best_score;

    for (int move = 0; move < opts_.max_moves; ++move) {
      std::vector<Member> behavior_set;

      // Neighborhood generation: every candidate transformation of every
      // population member (statement 6 of Figure 6).
      for (const Member& g : in_set) {
        std::vector<xform::Candidate> cands =
            xforms_.find_all(g.fn, g.region);
        // Deterministic shuffle so the evaluation budget samples the
        // neighborhood uniformly instead of front-loading one transform.
        for (size_t i = cands.size(); i > 1; --i)
          std::swap(cands[i - 1],
                    cands[static_cast<size_t>(rng.uniform_int(0, static_cast<int64_t>(i) - 1))]);

        for (const auto& c : cands) {
          if (behavior_set.size() >= opts_.max_neighbors_eval) break;
          ir::Function transformed = [&]() -> ir::Function {
            return xforms_.apply(g.fn, c);
          }();
          const size_t h = hasher(transformed.str());
          if (!seen.insert(h).second) continue;

          if (opts_.verify_equivalence &&
              !sim::equivalent_on_trace(fn, transformed, trace)) {
            result.rejected_nonequivalent++;
            continue;
          }

          Member m;
          // Region: keep the parent's ids plus any transform-created ones.
          m.region = g.region;
          if (!m.region.empty()) {
            const std::set<int> parent_ids = g.fn.stmt_ids();
            for (int id : transformed.stmt_ids())
              if (!parent_ids.count(id)) m.region.insert(id);
          }
          m.fn = std::move(transformed);
          m.applied = g.applied;
          m.applied.push_back(c.describe());
          behavior_set.push_back(std::move(m));
        }
      }
      if (behavior_set.empty()) break;

      // Assess efficacy: reschedule + estimate (statements 8-10).
      for (Member& m : behavior_set) {
        if (opts_.reschedule_in_loop) {
          evaluate_member(m);
        } else {
          // Ablation: schedule-blind search scores by static op count.
          size_t ops = 0;
          m.fn.for_each([&](const ir::Stmt& s) {
            for (const auto* slot : s.expr_slots())
              ops += (*slot)->tree_size();
          });
          m.eval.score = static_cast<double>(ops);
        }
        if (m.eval.score < best_score) {
          best_score = m.eval.score;
          result.best = m.fn.clone();
          result.best_eval = m.eval;
          result.applied = m.applied;
        }
      }

      // Rank decreasing gain = increasing score; select a fixed-size
      // subset with P(rank) ~ e^(-k * rank).
      std::sort(behavior_set.begin(), behavior_set.end(),
                [](const Member& a, const Member& b) {
                  return a.eval.score < b.eval.score;
                });
      const size_t want = std::min(opts_.in_set_size, behavior_set.size());
      std::vector<size_t> chosen;
      std::vector<bool> taken(behavior_set.size(), false);
      while (chosen.size() < want) {
        double total = 0.0;
        for (size_t r = 0; r < behavior_set.size(); ++r)
          if (!taken[r]) total += std::exp(-k * static_cast<double>(r));
        double x = rng.uniform() * total;
        size_t pick = behavior_set.size();
        for (size_t r = 0; r < behavior_set.size(); ++r) {
          if (taken[r]) continue;
          x -= std::exp(-k * static_cast<double>(r));
          if (x <= 0.0) {
            pick = r;
            break;
          }
        }
        if (pick == behavior_set.size()) {  // numerical tail: take best free
          for (size_t r = 0; r < behavior_set.size(); ++r)
            if (!taken[r]) {
              pick = r;
              break;
            }
        }
        taken[pick] = true;
        chosen.push_back(pick);
      }
      std::vector<Member> next;
      next.reserve(chosen.size());
      for (size_t r : chosen) next.push_back(std::move(behavior_set[r]));
      in_set = std::move(next);
    }

    result.score_trace.push_back(best_score);
    // Termination: a full generation without improvement (Section 4.2).
    if (best_score >= score_before - 1e-9 && outer > 0) break;
    if (in_set.empty()) break;
  }

  // If the schedule-blind ablation was used, the recorded eval lacks real
  // metrics; evaluate the winner properly once.
  if (!opts_.reschedule_in_loop)
    result.best_eval = evaluate(result.best, trace, objective, baseline_len);

  return result;
}

}  // namespace fact::opt
