#include "opt/partition.hpp"

#include <algorithm>
#include <map>
#include <numeric>

namespace fact::opt {

std::vector<StgBlock> partition_stg(const stg::Stg& stg, double threshold) {
  const std::vector<double> pi = stg::state_probabilities(stg);
  std::vector<double> freq;
  freq.reserve(stg.num_edges());
  for (const stg::Edge& e : stg.edges())
    freq.push_back(pi[static_cast<size_t>(e.from)] * e.prob);

  double max_freq = 0.0;
  for (double f : freq) max_freq = std::max(max_freq, f);
  const double cutoff = max_freq * threshold;

  // Edges above the cutoff, in decreasing frequency order.
  std::vector<int> edges(stg.num_edges());
  std::iota(edges.begin(), edges.end(), 0);
  std::erase_if(edges, [&](int e) {
    return freq[static_cast<size_t>(e)] < cutoff;
  });
  std::sort(edges.begin(), edges.end(), [&](int a, int b) {
    return freq[static_cast<size_t>(a)] > freq[static_cast<size_t>(b)];
  });

  // Union-find over states; grow/fuse blocks edge by edge (Section 4.1).
  std::vector<int> parent(stg.num_states());
  std::iota(parent.begin(), parent.end(), 0);
  std::vector<bool> grouped(stg.num_states(), false);
  std::function<int(int)> find = [&](int x) {
    while (parent[static_cast<size_t>(x)] != x) {
      parent[static_cast<size_t>(x)] =
          parent[static_cast<size_t>(parent[static_cast<size_t>(x)])];
      x = parent[static_cast<size_t>(x)];
    }
    return x;
  };
  for (int e : edges) {
    const stg::Edge& edge = stg.edge(e);
    grouped[static_cast<size_t>(edge.from)] = true;
    grouped[static_cast<size_t>(edge.to)] = true;
    parent[static_cast<size_t>(find(edge.from))] = find(edge.to);
  }

  std::map<int, StgBlock> blocks;
  for (size_t s = 0; s < stg.num_states(); ++s) {
    if (!grouped[s]) continue;
    StgBlock& b = blocks[find(static_cast<int>(s))];
    b.states.push_back(static_cast<int>(s));
    b.weight += pi[s];
    for (const auto& op : stg.state(static_cast<int>(s)).ops)
      if (op.stmt_id >= 0) b.stmt_ids.insert(op.stmt_id);
  }

  std::vector<StgBlock> out;
  out.reserve(blocks.size());
  for (auto& [root, b] : blocks) out.push_back(std::move(b));
  std::sort(out.begin(), out.end(),
            [](const StgBlock& a, const StgBlock& b) {
              return a.weight > b.weight;
            });
  return out;
}

}  // namespace fact::opt
