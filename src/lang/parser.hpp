#pragma once

#include <string>

#include "ir/function.hpp"

namespace fact::lang {

/// Parses a behavioral description written in the mini language into the
/// behavior IR. The language is the C-like subset the paper's examples use:
///
///   TEST1(int c1, int c2) {
///     input int x0[64];      // array initialized from the input trace
///     int x[64];             // scratch / output memory
///     int i = 0; int a = 0;
///     while (c2 > i) {
///       if (i < c1) { a = (a + 7) * 13; } else { a = a + 17; }
///       i++;                 // sugar for i = i + 1
///       x[i] = a;
///     }
///     output a;              // scalar observable at end of execution
///   }
///
/// `for (init; cond; step) body` is sugar that lowers to init + while.
/// Throws fact::ParseError on malformed input.
ir::Function parse_function(const std::string& source);

}  // namespace fact::lang
