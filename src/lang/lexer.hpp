#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace fact::lang {

enum class Tok {
  End,
  Ident,
  Int,
  KwInt,
  KwInput,
  KwOutput,
  KwIf,
  KwElse,
  KwWhile,
  KwFor,
  LParen,
  RParen,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  Semi,
  Comma,
  Assign,   // =
  Plus,
  Minus,
  Star,
  Lt,
  Le,
  Gt,
  Ge,
  EqEq,
  Ne,
  Shl,
  Shr,
  AndAnd,
  OrOr,
  Bang,
  Tilde,
  Question,
  Colon,
  PlusPlus,  // postfix increment sugar: i++ means i = i + 1
};

struct Token {
  Tok kind = Tok::End;
  std::string text;   // identifier spelling
  int64_t value = 0;  // integer literal value
  int line = 1;
  int col = 1;
};

/// Tokenizes a full source string. Throws fact::ParseError on bad input.
/// Supports //-line comments and /* block */ comments.
std::vector<Token> tokenize(const std::string& source);

/// Human-readable token-kind name for diagnostics.
const char* tok_name(Tok t);

}  // namespace fact::lang
