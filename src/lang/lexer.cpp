#include "lang/lexer.hpp"

#include <cctype>
#include <cstdint>
#include <unordered_map>

#include "util/error.hpp"

namespace fact::lang {

namespace {

const std::unordered_map<std::string, Tok>& keywords() {
  static const std::unordered_map<std::string, Tok> kw = {
      {"int", Tok::KwInt},     {"input", Tok::KwInput},
      {"output", Tok::KwOutput}, {"if", Tok::KwIf},
      {"else", Tok::KwElse},   {"while", Tok::KwWhile},
      {"for", Tok::KwFor},
  };
  return kw;
}

}  // namespace

std::vector<Token> tokenize(const std::string& source) {
  std::vector<Token> out;
  size_t i = 0;
  int line = 1;
  int col = 1;

  auto advance = [&](size_t n = 1) {
    for (size_t k = 0; k < n && i < source.size(); ++k) {
      if (source[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
      ++i;
    }
  };
  auto peek = [&](size_t off = 0) -> char {
    return i + off < source.size() ? source[i + off] : '\0';
  };
  auto push = [&](Tok kind, int tl, int tc) {
    Token t;
    t.kind = kind;
    t.line = tl;
    t.col = tc;
    out.push_back(t);
  };

  while (i < source.size()) {
    const char c = peek();
    if (std::isspace(static_cast<unsigned char>(c))) {
      advance();
      continue;
    }
    if (c == '/' && peek(1) == '/') {
      while (i < source.size() && peek() != '\n') advance();
      continue;
    }
    if (c == '/' && peek(1) == '*') {
      const int sl = line, sc = col;
      advance(2);
      while (i < source.size() && !(peek() == '*' && peek(1) == '/')) advance();
      if (i >= source.size())
        throw ParseError("unterminated block comment", sl, sc);
      advance(2);
      continue;
    }

    const int tl = line, tc = col;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::string word;
      while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_') {
        word.push_back(peek());
        advance();
      }
      auto it = keywords().find(word);
      if (it != keywords().end()) {
        push(it->second, tl, tc);
      } else {
        Token t;
        t.kind = Tok::Ident;
        t.text = word;
        t.line = tl;
        t.col = tc;
        out.push_back(t);
      }
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      int64_t v = 0;
      while (std::isdigit(static_cast<unsigned char>(peek()))) {
        const int64_t digit = peek() - '0';
        // Server-supplied sources reach this lexer; an oversized literal
        // must be a diagnostic, never signed-overflow UB.
        if (v > (INT64_MAX - digit) / 10)
          throw ParseError("integer literal too large", tl, tc);
        v = v * 10 + digit;
        advance();
      }
      Token t;
      t.kind = Tok::Int;
      t.value = v;
      t.line = tl;
      t.col = tc;
      out.push_back(t);
      continue;
    }

    auto two = [&](char a, char b) { return c == a && peek(1) == b; };
    if (two('<', '=')) { push(Tok::Le, tl, tc); advance(2); continue; }
    if (two('>', '=')) { push(Tok::Ge, tl, tc); advance(2); continue; }
    if (two('=', '=')) { push(Tok::EqEq, tl, tc); advance(2); continue; }
    if (two('!', '=')) { push(Tok::Ne, tl, tc); advance(2); continue; }
    if (two('<', '<')) { push(Tok::Shl, tl, tc); advance(2); continue; }
    if (two('>', '>')) { push(Tok::Shr, tl, tc); advance(2); continue; }
    if (two('&', '&')) { push(Tok::AndAnd, tl, tc); advance(2); continue; }
    if (two('|', '|')) { push(Tok::OrOr, tl, tc); advance(2); continue; }
    if (two('+', '+')) { push(Tok::PlusPlus, tl, tc); advance(2); continue; }

    switch (c) {
      case '(': push(Tok::LParen, tl, tc); break;
      case ')': push(Tok::RParen, tl, tc); break;
      case '{': push(Tok::LBrace, tl, tc); break;
      case '}': push(Tok::RBrace, tl, tc); break;
      case '[': push(Tok::LBracket, tl, tc); break;
      case ']': push(Tok::RBracket, tl, tc); break;
      case ';': push(Tok::Semi, tl, tc); break;
      case ',': push(Tok::Comma, tl, tc); break;
      case '=': push(Tok::Assign, tl, tc); break;
      case '+': push(Tok::Plus, tl, tc); break;
      case '-': push(Tok::Minus, tl, tc); break;
      case '*': push(Tok::Star, tl, tc); break;
      case '<': push(Tok::Lt, tl, tc); break;
      case '>': push(Tok::Gt, tl, tc); break;
      case '!': push(Tok::Bang, tl, tc); break;
      case '~': push(Tok::Tilde, tl, tc); break;
      case '?': push(Tok::Question, tl, tc); break;
      case ':': push(Tok::Colon, tl, tc); break;
      default:
        throw ParseError(std::string("unexpected character '") + c + "'", tl, tc);
    }
    advance();
  }

  Token end;
  end.kind = Tok::End;
  end.line = line;
  end.col = col;
  out.push_back(end);
  return out;
}

const char* tok_name(Tok t) {
  switch (t) {
    case Tok::End: return "<eof>";
    case Tok::Ident: return "identifier";
    case Tok::Int: return "integer";
    case Tok::KwInt: return "'int'";
    case Tok::KwInput: return "'input'";
    case Tok::KwOutput: return "'output'";
    case Tok::KwIf: return "'if'";
    case Tok::KwElse: return "'else'";
    case Tok::KwWhile: return "'while'";
    case Tok::KwFor: return "'for'";
    case Tok::LParen: return "'('";
    case Tok::RParen: return "')'";
    case Tok::LBrace: return "'{'";
    case Tok::RBrace: return "'}'";
    case Tok::LBracket: return "'['";
    case Tok::RBracket: return "']'";
    case Tok::Semi: return "';'";
    case Tok::Comma: return "','";
    case Tok::Assign: return "'='";
    case Tok::Plus: return "'+'";
    case Tok::Minus: return "'-'";
    case Tok::Star: return "'*'";
    case Tok::Lt: return "'<'";
    case Tok::Le: return "'<='";
    case Tok::Gt: return "'>'";
    case Tok::Ge: return "'>='";
    case Tok::EqEq: return "'=='";
    case Tok::Ne: return "'!='";
    case Tok::Shl: return "'<<'";
    case Tok::Shr: return "'>>'";
    case Tok::AndAnd: return "'&&'";
    case Tok::OrOr: return "'||'";
    case Tok::Bang: return "'!'";
    case Tok::Tilde: return "'~'";
    case Tok::Question: return "'?'";
    case Tok::Colon: return "':'";
    case Tok::PlusPlus: return "'++'";
  }
  return "?";
}

}  // namespace fact::lang
