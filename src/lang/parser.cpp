#include "lang/parser.hpp"

#include "lang/lexer.hpp"
#include "util/error.hpp"

namespace fact::lang {

using ir::Expr;
using ir::ExprPtr;
using ir::Op;
using ir::Stmt;
using ir::StmtPtr;

namespace {

class Parser {
 public:
  explicit Parser(const std::string& source) : toks_(tokenize(source)) {}

  ir::Function parse() {
    ir::Function fn(expect(Tok::Ident).text);
    expect(Tok::LParen);
    if (!check(Tok::RParen)) {
      do {
        expect(Tok::KwInt);
        fn.add_param(expect(Tok::Ident).text);
      } while (accept(Tok::Comma));
    }
    expect(Tok::RParen);
    expect(Tok::LBrace);
    std::vector<StmtPtr> body;
    while (!check(Tok::RBrace)) parse_decl_or_stmt(fn, body);
    expect(Tok::RBrace);
    expect(Tok::End);
    fn.set_body(Stmt::block(std::move(body)));
    fn.validate();
    return fn;
  }

 private:
  // Recursion budget shared by statement and expression descent. The
  // parser consumes untrusted input (factd accepts behaviors over a
  // socket), so pathological nesting — "((((…", "!!!!…", or thousands of
  // nested ifs — must surface as a ParseError instead of exhausting the
  // stack and killing the process.
  static constexpr int kMaxDepth = 200;

  struct DepthGuard {
    explicit DepthGuard(Parser& p) : parser(p) {
      if (parser.depth_ >= kMaxDepth)
        parser.fail("nesting too deep (limit " + std::to_string(kMaxDepth) +
                    ")");
      ++parser.depth_;
    }
    ~DepthGuard() { --parser.depth_; }
    Parser& parser;
  };

  const Token& peek(size_t off = 0) const {
    const size_t i = pos_ + off;
    return i < toks_.size() ? toks_[i] : toks_.back();
  }
  bool check(Tok t) const { return peek().kind == t; }
  bool accept(Tok t) {
    if (!check(t)) return false;
    ++pos_;
    return true;
  }
  const Token& expect(Tok t) {
    if (!check(t))
      throw ParseError(std::string("expected ") + tok_name(t) + ", found " +
                           tok_name(peek().kind),
                       peek().line, peek().col);
    return toks_[pos_++];
  }
  [[noreturn]] void fail(const std::string& msg) const {
    throw ParseError(msg, peek().line, peek().col);
  }

  void parse_decl_or_stmt(ir::Function& fn, std::vector<StmtPtr>& out) {
    if (check(Tok::KwInput) || (check(Tok::KwInt) && peek(2).kind == Tok::LBracket)) {
      // Array declaration: [input] int name[size];
      const bool is_input = accept(Tok::KwInput);
      expect(Tok::KwInt);
      const std::string name = expect(Tok::Ident).text;
      expect(Tok::LBracket);
      const int64_t size = expect(Tok::Int).value;
      expect(Tok::RBracket);
      expect(Tok::Semi);
      if (size <= 0) fail("array size must be positive");
      fn.add_array({name, static_cast<size_t>(size), is_input});
      return;
    }
    if (check(Tok::KwOutput)) {
      expect(Tok::KwOutput);
      fn.add_output(expect(Tok::Ident).text);
      expect(Tok::Semi);
      return;
    }
    if (check(Tok::KwInt)) {
      // Scalar declaration with optional chained initializers:
      //   int i = a = 0;   declares i, also assigns a.
      expect(Tok::KwInt);
      std::vector<std::string> targets;
      targets.push_back(expect(Tok::Ident).text);
      if (accept(Tok::Semi)) return;  // bare decl, locals are implicit
      expect(Tok::Assign);
      while (check(Tok::Ident) && peek(1).kind == Tok::Assign) {
        targets.push_back(expect(Tok::Ident).text);
        expect(Tok::Assign);
      }
      ExprPtr init = parse_expr();
      expect(Tok::Semi);
      for (auto it = targets.rbegin(); it != targets.rend(); ++it)
        out.push_back(Stmt::assign(*it, init));
      return;
    }
    out.push_back(parse_stmt());
  }

  StmtPtr parse_stmt() {
    DepthGuard guard(*this);
    if (check(Tok::KwIf)) return parse_if();
    if (check(Tok::KwWhile)) return parse_while();
    if (check(Tok::KwFor)) return parse_for();
    if (check(Tok::KwInt)) {
      // Scalar declaration inside a block: `int v = expr;` (locals are
      // implicit, so this is just an assignment; chained initializers
      // lower to several assignments wrapped in a block).
      expect(Tok::KwInt);
      std::vector<std::string> targets;
      targets.push_back(expect(Tok::Ident).text);
      if (accept(Tok::Semi)) return Stmt::block({});
      expect(Tok::Assign);
      while (check(Tok::Ident) && peek(1).kind == Tok::Assign) {
        targets.push_back(expect(Tok::Ident).text);
        expect(Tok::Assign);
      }
      ExprPtr init = parse_expr();
      expect(Tok::Semi);
      if (targets.size() == 1) return Stmt::assign(targets[0], init);
      std::vector<StmtPtr> assigns;
      for (auto it = targets.rbegin(); it != targets.rend(); ++it)
        assigns.push_back(Stmt::assign(*it, init));
      return Stmt::block(std::move(assigns));
    }
    if (check(Tok::LBrace)) {
      expect(Tok::LBrace);
      std::vector<StmtPtr> stmts;
      while (!check(Tok::RBrace)) stmts.push_back(parse_stmt());
      expect(Tok::RBrace);
      return Stmt::block(std::move(stmts));
    }
    StmtPtr s = parse_simple_stmt();
    expect(Tok::Semi);
    return s;
  }

  /// Assignment, store or increment without trailing semicolon (shared by
  /// expression statements and for-loop init/step clauses).
  StmtPtr parse_simple_stmt() {
    const std::string name = expect(Tok::Ident).text;
    if (accept(Tok::PlusPlus))
      return Stmt::assign(name,
                          Expr::binary(Op::Add, Expr::var(name), Expr::constant(1)));
    if (accept(Tok::LBracket)) {
      ExprPtr index = parse_expr();
      expect(Tok::RBracket);
      expect(Tok::Assign);
      ExprPtr value = parse_expr();
      return Stmt::store(name, std::move(index), std::move(value));
    }
    expect(Tok::Assign);
    return Stmt::assign(name, parse_expr());
  }

  StmtPtr parse_if() {
    expect(Tok::KwIf);
    expect(Tok::LParen);
    ExprPtr cond = parse_expr();
    expect(Tok::RParen);
    std::vector<StmtPtr> then_stmts = parse_branch();
    std::vector<StmtPtr> else_stmts;
    if (accept(Tok::KwElse)) {
      if (check(Tok::KwIf)) {
        else_stmts.push_back(parse_if());
      } else {
        else_stmts = parse_branch();
      }
    }
    return Stmt::if_stmt(std::move(cond), std::move(then_stmts),
                         std::move(else_stmts));
  }

  StmtPtr parse_while() {
    expect(Tok::KwWhile);
    expect(Tok::LParen);
    ExprPtr cond = parse_expr();
    expect(Tok::RParen);
    return Stmt::while_stmt(std::move(cond), parse_branch());
  }

  StmtPtr parse_for() {
    expect(Tok::KwFor);
    expect(Tok::LParen);
    StmtPtr init = parse_simple_stmt();
    expect(Tok::Semi);
    ExprPtr cond = parse_expr();
    expect(Tok::Semi);
    StmtPtr step = parse_simple_stmt();
    expect(Tok::RParen);
    std::vector<StmtPtr> body = parse_branch();
    body.push_back(std::move(step));
    std::vector<StmtPtr> lowered;
    lowered.push_back(std::move(init));
    lowered.push_back(Stmt::while_stmt(std::move(cond), std::move(body)));
    return Stmt::block(std::move(lowered));
  }

  std::vector<StmtPtr> parse_branch() {
    std::vector<StmtPtr> stmts;
    if (accept(Tok::LBrace)) {
      while (!check(Tok::RBrace)) stmts.push_back(parse_stmt());
      expect(Tok::RBrace);
    } else {
      stmts.push_back(parse_stmt());
    }
    return stmts;
  }

  // ---- expressions, standard precedence climbing ----------------------
  ExprPtr parse_expr() {
    DepthGuard guard(*this);
    return parse_ternary();
  }

  ExprPtr parse_ternary() {
    ExprPtr cond = parse_or();
    if (!accept(Tok::Question)) return cond;
    ExprPtr t = parse_expr();
    expect(Tok::Colon);
    ExprPtr f = parse_expr();
    return Expr::select(std::move(cond), std::move(t), std::move(f));
  }

  ExprPtr parse_or() {
    ExprPtr lhs = parse_and();
    while (accept(Tok::OrOr)) lhs = Expr::binary(Op::Or, lhs, parse_and());
    return lhs;
  }

  ExprPtr parse_and() {
    ExprPtr lhs = parse_cmp();
    while (accept(Tok::AndAnd)) lhs = Expr::binary(Op::And, lhs, parse_cmp());
    return lhs;
  }

  ExprPtr parse_cmp() {
    ExprPtr lhs = parse_shift();
    for (;;) {
      Op op;
      if (check(Tok::Lt)) op = Op::Lt;
      else if (check(Tok::Le)) op = Op::Le;
      else if (check(Tok::Gt)) op = Op::Gt;
      else if (check(Tok::Ge)) op = Op::Ge;
      else if (check(Tok::EqEq)) op = Op::Eq;
      else if (check(Tok::Ne)) op = Op::Ne;
      else break;
      ++pos_;
      lhs = Expr::binary(op, lhs, parse_shift());
    }
    return lhs;
  }

  ExprPtr parse_shift() {
    ExprPtr lhs = parse_add();
    for (;;) {
      Op op;
      if (check(Tok::Shl)) op = Op::Shl;
      else if (check(Tok::Shr)) op = Op::Shr;
      else break;
      ++pos_;
      lhs = Expr::binary(op, lhs, parse_add());
    }
    return lhs;
  }

  ExprPtr parse_add() {
    ExprPtr lhs = parse_mul();
    for (;;) {
      Op op;
      if (check(Tok::Plus)) op = Op::Add;
      else if (check(Tok::Minus)) op = Op::Sub;
      else break;
      ++pos_;
      lhs = Expr::binary(op, lhs, parse_mul());
    }
    return lhs;
  }

  ExprPtr parse_mul() {
    ExprPtr lhs = parse_unary();
    while (accept(Tok::Star)) lhs = Expr::binary(Op::Mul, lhs, parse_unary());
    return lhs;
  }

  ExprPtr parse_unary() {
    DepthGuard guard(*this);  // "!!!!…" recurses here without parse_expr
    if (accept(Tok::Bang)) return Expr::unary(Op::Not, parse_unary());
    if (accept(Tok::Tilde)) return Expr::unary(Op::BitNot, parse_unary());
    if (accept(Tok::Minus)) {
      ExprPtr operand = parse_unary();
      // Negative literals stay literals (also makes printing a fixpoint).
      if (operand->op() == Op::Const)
        return Expr::constant(-operand->value());
      return Expr::binary(Op::Sub, Expr::constant(0), operand);
    }
    return parse_primary();
  }

  ExprPtr parse_primary() {
    if (check(Tok::Int)) return Expr::constant(expect(Tok::Int).value);
    if (accept(Tok::LParen)) {
      ExprPtr e = parse_expr();
      expect(Tok::RParen);
      return e;
    }
    if (check(Tok::Ident)) {
      const std::string name = expect(Tok::Ident).text;
      if (accept(Tok::LBracket)) {
        ExprPtr index = parse_expr();
        expect(Tok::RBracket);
        return Expr::array_read(name, std::move(index));
      }
      return Expr::var(name);
    }
    fail(std::string("expected expression, found ") + tok_name(peek().kind));
  }

  std::vector<Token> toks_;
  size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

ir::Function parse_function(const std::string& source) {
  return Parser(source).parse();
}

}  // namespace fact::lang
