#pragma once

#include <map>
#include <string>

#include "hlslib/library.hpp"
#include "stg/stg.hpp"

namespace fact::power {

/// Configuration of the Section 2.2 high-level power model.
struct PowerOptions {
  double vdd = 5.0;       // supply voltage for the energy term
  double vt = 1.0;        // threshold voltage (Vdd-scaling law)
  double clock_ns = 25.0; // cycle time
  /// Interconnect + controller energy, modeled as a fraction of the
  /// datapath/storage energy ("after accounting for the contribution due
  /// to the interconnect and controller", Example 1). Example 1's numbers
  /// imply roughly half the FU+storage energy again.
  double overhead_fraction = 0.51;
};

/// Energy/power breakdown of a scheduled design, per Section 2.2:
///   E(fu type) = C_type * Vdd^2 * N_ops, with N_ops the expected number
///   of operations per execution (state-probability weighted), and
///   P = E_total / (average schedule length * cycle time).
struct PowerEstimate {
  double avg_schedule_length = 0.0;       // cycles per execution at Vdd
  std::map<std::string, double> ops_per_exec;    // FU type -> expected ops
  std::map<std::string, double> energy_coeff;    // FU type -> E / Vdd^2
  double reg_accesses_per_exec = 0.0;
  double energy_coeff_total = 0.0;  // total E / Vdd^2 incl. overhead
  double vdd = 5.0;
  double power = 0.0;  // units: energy-units / ns (relative mW)

  std::string report() const;
};

/// Estimates average power of a scheduled design at `opts.vdd` (no
/// voltage scaling): Example 1's first computation.
///
/// `pi` optionally supplies the precomputed stationary distribution of
/// `stg` (as returned by stg::state_probabilities); callers that already
/// solved the chain — the optimizer solves it for the schedule length —
/// pass it to avoid a second solve. nullptr recomputes internally.
PowerEstimate estimate_power(const stg::Stg& stg, const hlslib::Library& lib,
                             const PowerOptions& opts = {},
                             const std::vector<double>* pi = nullptr);

/// Power-optimization-mode estimate: scales the supply voltage down until
/// the design's average schedule length (in equivalent cycles) rises to
/// `baseline_avg_length` — the untransformed design's length — then
/// reports power at the scaled voltage. This is the paper's iso-throughput
/// Vdd scaling (Example 1: 119.11 vs 151.30 cycles -> 4.29V).
PowerEstimate estimate_power_scaled(const stg::Stg& stg,
                                    const hlslib::Library& lib,
                                    double baseline_avg_length,
                                    const PowerOptions& opts = {},
                                    const std::vector<double>* pi = nullptr);

/// Structural overhead model: instead of the flat `overhead_fraction`,
/// derives the interconnect + controller energy from a datapath binding
/// (mux inputs switched per cycle) and the FSM size (state-register and
/// next-state logic scale with state count). Returns the equivalent
/// overhead fraction to plug into PowerOptions, so the two models stay
/// comparable. `mux_energy_per_input` and `ctrl_energy_per_state` are in
/// the same E/Vdd^2 units as Table 1.
double structural_overhead_fraction(const stg::Stg& stg,
                                    const hlslib::Library& lib,
                                    int total_mux_inputs, size_t registers,
                                    double mux_energy_per_input = 0.02,
                                    double ctrl_energy_per_state = 0.05);

}  // namespace fact::power
