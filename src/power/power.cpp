#include "power/power.hpp"

#include <sstream>

#include "util/strfmt.hpp"

namespace fact::power {

namespace {

/// Expected executions of each FU type per behavior execution, plus
/// register traffic: per-state counts weighted by state probabilities,
/// scaled by the average schedule length (Example 1's
/// "119.11 x (P_S1 x 1 + P_S5 x 1)" computation).
PowerEstimate accumulate(const stg::Stg& stg, const hlslib::Library& lib,
                         const PowerOptions& opts,
                         const std::vector<double>* pi_in) {
  PowerEstimate est;
  const std::vector<double> pi =
      pi_in ? *pi_in : stg::state_probabilities(stg);
  est.avg_schedule_length = stg::average_schedule_length(stg, pi);

  double reg_rate = 0.0;
  std::map<std::string, double> op_rate;  // per-cycle expected ops by type
  for (size_t s = 0; s < stg.num_states(); ++s) {
    const stg::State& st = stg.state(static_cast<int>(s));
    for (const auto& op : st.ops)
      if (!op.fu_type.empty()) op_rate[op.fu_type] += pi[s];
    reg_rate += pi[s] * (st.reg_reads + st.reg_writes);
  }

  double total = 0.0;
  for (const auto& [fu, rate] : op_rate) {
    const double n_ops = rate * est.avg_schedule_length;
    est.ops_per_exec[fu] = n_ops;
    const hlslib::FuType& t = lib.get(fu);
    est.energy_coeff[fu] = t.energy_coeff * n_ops;
    total += t.energy_coeff * n_ops;
  }
  est.reg_accesses_per_exec = reg_rate * est.avg_schedule_length;
  const hlslib::FuType* reg = lib.first_of(hlslib::FuClass::Register);
  const double reg_coeff = reg ? reg->energy_coeff : 0.0;
  est.energy_coeff["<registers>"] = reg_coeff * est.reg_accesses_per_exec;
  total += reg_coeff * est.reg_accesses_per_exec;

  est.energy_coeff_total = total * (1.0 + opts.overhead_fraction);
  est.energy_coeff["<overhead>"] = total * opts.overhead_fraction;
  return est;
}

}  // namespace

std::string PowerEstimate::report() const {
  std::ostringstream out;
  out << strfmt("avg schedule length : %.2f cycles\n", avg_schedule_length);
  out << strfmt("supply voltage      : %.2f V\n", vdd);
  for (const auto& [fu, e] : energy_coeff)
    out << strfmt("  energy %-12s: %10.2f x Vdd^2\n", fu.c_str(), e);
  out << strfmt("energy total        : %10.2f x Vdd^2\n", energy_coeff_total);
  out << strfmt("average power       : %.4f units\n", power);
  return out.str();
}

PowerEstimate estimate_power(const stg::Stg& stg, const hlslib::Library& lib,
                             const PowerOptions& opts,
                             const std::vector<double>* pi) {
  PowerEstimate est = accumulate(stg, lib, opts, pi);
  est.vdd = opts.vdd;
  const double energy = est.energy_coeff_total * opts.vdd * opts.vdd;
  est.power = energy / (est.avg_schedule_length * opts.clock_ns);
  return est;
}

double structural_overhead_fraction(const stg::Stg& stg,
                                    const hlslib::Library& lib,
                                    int total_mux_inputs, size_t registers,
                                    double mux_energy_per_input,
                                    double ctrl_energy_per_state) {
  // Base energy per execution (FU + storage), as accumulate() computes
  // with no overhead.
  PowerOptions no_overhead;
  no_overhead.overhead_fraction = 0.0;
  const PowerEstimate base = estimate_power(stg, lib, no_overhead);
  const double base_energy = base.energy_coeff_total;
  if (base_energy <= 0.0) return 0.0;

  // Interconnect: every cycle the active muxes steer operands; charge the
  // full mux population once per cycle (pessimistic but simple).
  // Controller: the FSM's state register + next-state logic toggle every
  // cycle, scaling with the state count; register count adds decoder load.
  const double per_cycle =
      mux_energy_per_input * total_mux_inputs +
      ctrl_energy_per_state * static_cast<double>(stg.num_states()) +
      0.01 * static_cast<double>(registers);
  const double overhead_energy = per_cycle * base.avg_schedule_length;
  return overhead_energy / base_energy;
}

PowerEstimate estimate_power_scaled(const stg::Stg& stg,
                                    const hlslib::Library& lib,
                                    double baseline_avg_length,
                                    const PowerOptions& opts,
                                    const std::vector<double>* pi) {
  PowerEstimate est = accumulate(stg, lib, opts, pi);
  // Scale Vdd until this design slows down to the baseline's schedule
  // length. The schedule length in cycles at 5V, expressed at the scaled
  // voltage, becomes exactly baseline_avg_length (Example 1: 119.11 cycles
  // at 5V == 151.30 cycles at 4.29V).
  est.vdd =
      hlslib::scale_vdd_for_slowdown(est.avg_schedule_length,
                                     baseline_avg_length, opts.vt);
  const double energy = est.energy_coeff_total * est.vdd * est.vdd;
  const double effective_len =
      est.avg_schedule_length * hlslib::delay_scale(est.vdd, opts.vt);
  est.power = energy / (effective_len * opts.clock_ns);
  return est;
}

}  // namespace fact::power
