#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "hlslib/library.hpp"
#include "opt/engine.hpp"
#include "serve/json.hpp"
#include "sim/trace.hpp"
#include "util/parallel.hpp"

namespace fact::serve {

/// Tuning of the in-process optimization service.
struct ServiceOptions {
  /// Worker threads in the shared pool (candidate evaluation and request
  /// batches both run on it). 0 = hardware concurrency.
  int workers = 0;
  /// Bounded job queue: submissions beyond this are rejected with an
  /// error response ("queue full") rather than growing memory unboundedly.
  size_t queue_cap = 256;
  /// Jobs drained per dispatch wave. A wave of one runs directly on the
  /// dispatcher thread, so the engine inside it gets the whole pool; a
  /// larger wave fans requests out across the pool and the engines inside
  /// degrade to inline evaluation. 0 = pool thread count.
  size_t batch_max = 0;
  /// Capacity of the process-wide EvalCache shared by all sessions.
  size_t cache_cap = 1 << 18;
  /// Completed-request latencies kept for the percentile estimates.
  size_t latency_window = 4096;
};

/// Point-in-time service counters, exposed by `status` responses.
struct StatsSnapshot {
  double uptime_ms = 0.0;  // since Service construction
  size_t sessions = 0;
  size_t queue_depth = 0;
  size_t in_flight = 0;
  uint64_t accepted = 0;    // jobs admitted to the queue
  uint64_t completed = 0;   // finished with ok:true
  uint64_t failed = 0;      // finished with ok:false (excluding cancelled)
  uint64_t cancelled = 0;
  uint64_t rejected = 0;    // bounced on a full queue
  uint64_t evaluations = 0;  // engine evaluation requests, all jobs
  uint64_t cache_hits = 0;   // of which served from the shared EvalCache
  size_t cache_entries = 0;
  size_t cache_cap = 0;
  size_t latency_count = 0;  // samples behind the percentiles
  double p50_ms = 0.0, p90_ms = 0.0, p99_ms = 0.0, max_ms = 0.0;
};

/// A submitted job: the service's unit of queueing, execution, completion
/// and cancellation. Connections hold Tickets; the dispatcher holds the
/// same state through the queue.
class JobState;

class Ticket {
 public:
  Ticket() = default;
  explicit Ticket(std::shared_ptr<JobState> state) : state_(std::move(state)) {}

  bool valid() const { return state_ != nullptr; }
  uint64_t id() const;
  /// Blocks until the job completes and returns a copy of its response.
  /// By value on purpose: `service.submit(req).wait()` must stay safe even
  /// though the temporary Ticket holds the last reference to the job.
  Json wait() const;

 private:
  std::shared_ptr<JobState> state_;
};

/// The concurrent optimization service behind factd: a bounded job queue
/// feeding one shared WorkerPool, named sessions pinning parsed IR and
/// generated traces, and one process-wide EvalCache shared across all
/// sessions.
///
/// Determinism contract: the response to a request is a pure function of
/// the request — independent of queue position, batch shape, concurrent
/// clients, and worker count. The two mechanisms are (a) the engine's
/// jobs-invariance (candidate evaluation reduces in serial submission
/// order no matter where it ran) and (b) the EvalCache memoization
/// contract (a cached entry is exactly what recomputation would produce,
/// so cache sharing changes only what is recomputed, never any result).
class Service {
 public:
  explicit Service(ServiceOptions opts = {});
  ~Service();

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Submits one optimize/schedule/profile request. Never throws: every
  /// failure (unknown type, malformed behavior, full queue, stopped
  /// service) becomes an ok:false response on the returned ticket.
  Ticket submit(Json request);

  /// Requests cooperative cancellation of a submitted job. Queued jobs
  /// complete immediately with a cancellation response; running jobs stop
  /// at the engine's next budget check and return best-so-far marked
  /// truncated+cancelled. Returns false when the ticket is unknown or
  /// already done.
  bool cancel(uint64_t ticket_id);

  StatsSnapshot stats() const;
  /// The `status` response body (stats rendered as JSON).
  Json status_response() const;
  /// The `stats` response body: uptime, queue/cache occupancy, and the
  /// per-session inventory (name, request count, trace pinned) — the
  /// lightweight operational view, vs. status's counter dump.
  Json stats_response() const;
  /// Prometheus text exposition (format 0.0.4) of the process-wide obs
  /// registry, with the service gauges (sessions, queue depth, in-flight,
  /// cache entries, uptime) refreshed first. Served by the factd
  /// `metrics` request for scraping.
  std::string metrics_text() const;

  /// Fails all queued jobs, cancels in-flight ones, and joins the
  /// dispatcher. Idempotent; called by the destructor.
  void stop();

  size_t session_count() const;

 private:
  struct Session;
  using SessionPtr = std::shared_ptr<Session>;

  void dispatcher_loop();
  void run_job(JobState& job);
  /// Executes the request proper; returns the response body.
  Json execute(const Json& req, JobState& job);
  Json execute_optimize(const Json& req, JobState& job);
  Json execute_schedule(const Json& req);
  Json execute_profile(const Json& req);
  /// Resolves the behavior a request names: a stored session, a new
  /// session (when "session" plus behavior fields are given), or an
  /// ephemeral one (no "session").
  SessionPtr resolve_session(const Json& req);
  SessionPtr build_session(const Json& req, const std::string& name) const;
  void record_latency(double ms);

  ServiceOptions opts_;
  const std::chrono::steady_clock::time_point start_ =
      std::chrono::steady_clock::now();
  hlslib::Library lib_;
  hlslib::FuSelection sel_;
  WorkerPool pool_;
  opt::EvalCache cache_;

  mutable std::mutex mu_;
  std::condition_variable cv_work_;
  std::deque<std::shared_ptr<JobState>> queue_;
  size_t in_flight_ = 0;
  bool stopping_ = false;
  std::atomic<uint64_t> next_ticket_{1};

  mutable std::mutex sessions_mu_;
  std::map<std::string, SessionPtr> sessions_;

  mutable std::mutex jobs_mu_;
  std::map<uint64_t, std::weak_ptr<JobState>> live_jobs_;

  mutable std::mutex stats_mu_;
  uint64_t accepted_ = 0, completed_ = 0, failed_ = 0, cancelled_ = 0,
           rejected_ = 0;
  uint64_t evaluations_ = 0, cache_hits_ = 0;
  std::vector<double> latencies_;  // ring buffer of size latency_window
  size_t latency_next_ = 0;
  size_t latency_total_ = 0;
  double latency_max_ = 0.0;

  std::thread dispatcher_;
};

/// Shared state of one submitted job.
class JobState {
 public:
  JobState(uint64_t ticket, Json request)
      : ticket_(ticket),
        request_(std::move(request)),
        enqueued_(std::chrono::steady_clock::now()) {}

  uint64_t ticket() const { return ticket_; }
  const Json& request() const { return request_; }
  std::chrono::steady_clock::time_point enqueued() const { return enqueued_; }

  void request_cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancel_requested() const {
    return cancelled_.load(std::memory_order_relaxed);
  }
  const std::atomic<bool>* cancel_flag() const { return &cancelled_; }

  void complete(Json response);
  bool done() const;
  const Json& wait() const;

 private:
  uint64_t ticket_;
  Json request_;
  std::chrono::steady_clock::time_point enqueued_;
  std::atomic<bool> cancelled_{false};

  mutable std::mutex mu_;
  mutable std::condition_variable cv_;
  bool done_ = false;
  Json response_;
};

}  // namespace fact::serve
