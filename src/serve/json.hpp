#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace fact::serve {

/// A minimal JSON value for the factd wire protocol. Design constraints,
/// in order:
///  * deterministic serialization — dump() of a value built by the same
///    sequence of set()/push_back() calls is byte-identical on every run
///    (objects preserve insertion order; numbers have one rendering);
///  * robust parsing of untrusted client input — malformed text, oversized
///    nesting and broken escapes throw fact::Error, never crash;
///  * no dependencies beyond the standard library.
///
/// Objects are stored as insertion-ordered key/value vectors: factd
/// responses are built field by field in a fixed order, and tiny objects
/// make linear lookup cheaper than any tree.
class Json {
 public:
  enum class Type { Null, Bool, Number, String, Array, Object };

  Json() = default;  // null
  Json(bool b) : type_(Type::Bool), bool_(b) {}
  Json(double v) : type_(Type::Number), num_(v) {}
  Json(int v) : type_(Type::Number), num_(v) {}
  Json(int64_t v) : type_(Type::Number), num_(static_cast<double>(v)) {}
  Json(uint64_t v) : type_(Type::Number), num_(static_cast<double>(v)) {}
  Json(const char* s) : type_(Type::String), str_(s) {}
  Json(std::string s) : type_(Type::String), str_(std::move(s)) {}

  static Json array() { Json j; j.type_ = Type::Array; return j; }
  static Json object() { Json j; j.type_ = Type::Object; return j; }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::Null; }
  bool is_bool() const { return type_ == Type::Bool; }
  bool is_number() const { return type_ == Type::Number; }
  bool is_string() const { return type_ == Type::String; }
  bool is_array() const { return type_ == Type::Array; }
  bool is_object() const { return type_ == Type::Object; }

  bool as_bool(bool fallback = false) const {
    return is_bool() ? bool_ : fallback;
  }
  double as_double(double fallback = 0.0) const {
    return is_number() ? num_ : fallback;
  }
  int64_t as_int(int64_t fallback = 0) const {
    return is_number() ? static_cast<int64_t>(num_) : fallback;
  }
  const std::string& as_string() const;  // "" for non-strings

  // ---- object interface ----
  /// Sets key to value; replaces in place if the key exists, appends
  /// otherwise. Converts a null value to an empty object first.
  Json& set(const std::string& key, Json value);
  /// Pointer to the member, or nullptr if absent / not an object.
  const Json* get(const std::string& key) const;
  bool has(const std::string& key) const { return get(key) != nullptr; }
  /// Convenience lookups with fallbacks for absent / wrong-typed members.
  std::string get_string(const std::string& key,
                         const std::string& fallback = "") const;
  double get_double(const std::string& key, double fallback = 0.0) const;
  int64_t get_int(const std::string& key, int64_t fallback = 0) const;
  bool get_bool(const std::string& key, bool fallback = false) const;
  const std::vector<std::pair<std::string, Json>>& members() const {
    return obj_;
  }

  // ---- array interface ----
  Json& push_back(Json value);  // converts null to empty array first
  size_t size() const;
  const Json& at(size_t i) const;
  const std::vector<Json>& items() const { return arr_; }

  /// Compact serialization (no whitespace). Deterministic: object members
  /// in insertion order, integral numbers as integers, other numbers via
  /// shortest round-trip formatting.
  std::string dump() const;

  /// Parses one JSON document; trailing non-whitespace, bad escapes,
  /// overflow-deep nesting and truncation throw fact::Error.
  static Json parse(const std::string& text);

 private:
  Type type_ = Type::Null;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<Json> arr_;
  std::vector<std::pair<std::string, Json>> obj_;
};

}  // namespace fact::serve
