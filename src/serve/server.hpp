#pragma once

#include <atomic>
#include <condition_variable>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/service.hpp"

namespace fact::serve {

/// Where factd listens. At least one of unix_path / tcp_port must be set.
struct ServerOptions {
  std::string unix_path;  // "" = no unix-domain listener
  int tcp_port = -1;      // <0 = no TCP listener; 0 = ephemeral port
  std::string tcp_host = "127.0.0.1";
};

/// The factd socket front end: an accept loop per listener and, per
/// connection, a reader thread plus a writer thread.
///
/// The reader parses one JSON request per line. `status`, `cancel` and
/// `shutdown` take effect immediately on the reader thread; `optimize`,
/// `schedule` and `profile` are submitted to the Service. Every response —
/// immediate or job-backed — rides the connection's writer queue, so each
/// client receives exactly one response line per request line, in request
/// order, no matter how requests interleave on the service. Pipelined
/// requests from one connection therefore run concurrently on the service
/// while their responses still come back in order.
class Server {
 public:
  /// Binds and listens (throws fact::Error on bind failure).
  Server(Service& service, const ServerOptions& opts);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Serves until a `shutdown` request arrives or stop() is called from
  /// another thread, then tears everything down: listeners closed, all
  /// connections unblocked and joined. The service itself is stopped too
  /// (queued jobs fail with "server shutting down").
  void run();

  /// Signals run() to return; safe from any thread, idempotent.
  void stop();

  /// The actual TCP port (resolves an ephemeral request), or -1.
  int tcp_port() const { return tcp_port_; }
  const std::string& unix_path() const { return unix_path_; }

 private:
  struct Connection {
    int fd = -1;
    std::thread reader;
  };

  void accept_loop(int listen_fd);
  void serve_connection(std::shared_ptr<Connection> conn);

  Service& service_;
  std::string unix_path_;
  int tcp_port_ = -1;
  std::vector<int> listen_fds_;
  std::vector<std::thread> acceptors_;

  std::mutex mu_;
  std::condition_variable shutdown_cv_;
  bool shutdown_ = false;
  bool torn_down_ = false;
  std::list<std::shared_ptr<Connection>> conns_;
};

}  // namespace fact::serve
