#include "serve/net.hpp"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "util/error.hpp"

namespace fact::serve {

namespace {

[[noreturn]] void sys_fail(const std::string& what) {
  throw Error(what + ": " + std::strerror(errno));
}

}  // namespace

int listen_unix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path))
    throw Error("unix socket path too long: " + path);
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) sys_fail("socket(unix)");
  ::unlink(path.c_str());  // stale socket file from a previous run
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    sys_fail("bind " + path);
  }
  if (::listen(fd, 64) < 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    sys_fail("listen " + path);
  }
  return fd;
}

int listen_tcp(const std::string& host, int port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
    throw Error("bad listen address: " + host);

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) sys_fail("socket(tcp)");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    sys_fail("bind " + host + ":" + std::to_string(port));
  }
  if (::listen(fd, 64) < 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    sys_fail("listen " + host + ":" + std::to_string(port));
  }
  return fd;
}

int bound_tcp_port(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0)
    sys_fail("getsockname");
  return ntohs(addr.sin_port);
}

int accept_fd(int listen_fd) {
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) return fd;
    if (errno == EINTR) continue;
    return -1;  // listener closed or shut down: the accept loop exits
  }
}

int connect_unix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path))
    throw Error("unix socket path too long: " + path);
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) sys_fail("socket(unix)");
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    sys_fail("connect " + path);
  }
  return fd;
}

int connect_tcp(const std::string& host, int port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
    throw Error("bad connect address: " + host);

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) sys_fail("socket(tcp)");
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    sys_fail("connect " + host + ":" + std::to_string(port));
  }
  return fd;
}

void close_fd(int fd) {
  if (fd >= 0) ::close(fd);
}

void shutdown_fd(int fd) {
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
}

bool send_line(int fd, const std::string& line) {
  std::string framed = line;
  framed.push_back('\n');
  size_t off = 0;
  while (off < framed.size()) {
    // MSG_NOSIGNAL: a vanished peer must surface as a failed send, not a
    // process-killing SIGPIPE.
    const ssize_t n = ::send(fd, framed.data() + off, framed.size() - off,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

LineReader::LineReader(int fd, size_t max_line)
    : fd_(fd), max_line_(max_line) {}

bool LineReader::next(std::string& line) {
  for (;;) {
    const size_t nl = buf_.find('\n', start_);
    if (nl != std::string::npos) {
      if (nl - start_ > max_line_)
        throw Error("line exceeds " + std::to_string(max_line_) + " bytes");
      line.assign(buf_, start_, nl - start_);
      start_ = nl + 1;
      if (start_ == buf_.size()) {
        buf_.clear();
        start_ = 0;
      }
      return true;
    }
    if (buf_.size() - start_ > max_line_)
      throw Error("line exceeds " + std::to_string(max_line_) + " bytes");
    if (eof_) return false;
    if (start_ > 0) {
      buf_.erase(0, start_);
      start_ = 0;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      eof_ = true;
      return false;
    }
    if (n == 0) {
      // EOF; an unterminated trailing fragment is not a line.
      eof_ = true;
      continue;
    }
    buf_.append(chunk, static_cast<size_t>(n));
  }
}

}  // namespace fact::serve
