#include "serve/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/error.hpp"

namespace fact::serve {

namespace {

const std::string kEmpty;

void append_escaped(std::string& out, const std::string& s) {
  out.push_back('"');
  for (const unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(static_cast<char>(c));
        }
    }
  }
  out.push_back('"');
}

void append_number(std::string& out, double v) {
  if (!std::isfinite(v)) {
    // JSON has no Inf/NaN; null is the conventional substitute.
    out += "null";
    return;
  }
  if (v == static_cast<double>(static_cast<int64_t>(v)) &&
      std::fabs(v) < 9.007199254740992e15) {  // 2^53: exact integer range
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld",
                  static_cast<long long>(static_cast<int64_t>(v)));
    out += buf;
    return;
  }
  // Shortest representation that round-trips: try increasing precision.
  char buf[40];
  for (int prec = 15; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof buf, "%.*g", prec, v);
    double back = 0.0;
    std::sscanf(buf, "%lf", &back);
    if (back == v) break;
  }
  out += buf;
}

class ParserImpl {
 public:
  explicit ParserImpl(const std::string& text) : text_(text) {}

  Json parse_document() {
    Json v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  [[noreturn]] void fail(const std::string& msg) const {
    throw Error("bad json at offset " + std::to_string(pos_) + ": " + msg);
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  char take() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_++];
  }
  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }
  bool consume_word(const char* word) {
    size_t n = 0;
    while (word[n]) ++n;
    if (text_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }

  Json parse_value() {
    if (depth_ >= kMaxDepth) fail("nesting too deep");
    ++depth_;
    skip_ws();
    Json out;
    const char c = peek();
    if (c == '{') out = parse_object();
    else if (c == '[') out = parse_array();
    else if (c == '"') out = Json(parse_string());
    else if (consume_word("true")) out = Json(true);
    else if (consume_word("false")) out = Json(false);
    else if (consume_word("null")) out = Json();
    else out = parse_number();
    --depth_;
    return out;
  }

  Json parse_object() {
    take();  // '{'
    Json obj = Json::object();
    skip_ws();
    if (peek() == '}') { take(); return obj; }
    for (;;) {
      skip_ws();
      if (peek() != '"') fail("expected object key string");
      std::string key = parse_string();
      skip_ws();
      if (take() != ':') fail("expected ':' after object key");
      obj.set(key, parse_value());
      skip_ws();
      const char sep = take();
      if (sep == '}') return obj;
      if (sep != ',') fail("expected ',' or '}' in object");
    }
  }

  Json parse_array() {
    take();  // '['
    Json arr = Json::array();
    skip_ws();
    if (peek() == ']') { take(); return arr; }
    for (;;) {
      arr.push_back(parse_value());
      skip_ws();
      const char sep = take();
      if (sep == ']') return arr;
      if (sep != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    take();  // '"'
    std::string out;
    for (;;) {
      const char c = take();
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20)
        fail("unescaped control character in string");
      if (c != '\\') { out.push_back(c); continue; }
      const char e = take();
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'u': {
          unsigned cp = parse_hex4();
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: require the low half, combine.
            if (take() != '\\' || take() != 'u')
              fail("unpaired UTF-16 surrogate");
            const unsigned lo = parse_hex4();
            if (lo < 0xDC00 || lo > 0xDFFF)
              fail("invalid UTF-16 surrogate pair");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            fail("unpaired UTF-16 surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default: fail("bad escape sequence");
      }
    }
  }

  unsigned parse_hex4() {
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = take();
      v <<= 4;
      if (c >= '0' && c <= '9') v |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') v |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') v |= static_cast<unsigned>(c - 'A' + 10);
      else fail("bad \\u escape");
    }
    return v;
  }

  static void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Json parse_number() {
    const size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    if (peek() == '.') {
      ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-'))
      fail("expected a JSON value");
    const std::string tok = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double v = std::strtod(tok.c_str(), &end);
    if (!end || *end != '\0') fail("malformed number '" + tok + "'");
    return Json(v);
  }

  const std::string& text_;
  size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

const std::string& Json::as_string() const {
  return is_string() ? str_ : kEmpty;
}

Json& Json::set(const std::string& key, Json value) {
  if (type_ == Type::Null) type_ = Type::Object;
  if (type_ != Type::Object) throw Error("json: set() on a non-object");
  for (auto& [k, v] : obj_) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  obj_.emplace_back(key, std::move(value));
  return *this;
}

const Json* Json::get(const std::string& key) const {
  if (type_ != Type::Object) return nullptr;
  for (const auto& [k, v] : obj_)
    if (k == key) return &v;
  return nullptr;
}

std::string Json::get_string(const std::string& key,
                             const std::string& fallback) const {
  const Json* v = get(key);
  return v && v->is_string() ? v->str_ : fallback;
}

double Json::get_double(const std::string& key, double fallback) const {
  const Json* v = get(key);
  return v && v->is_number() ? v->num_ : fallback;
}

int64_t Json::get_int(const std::string& key, int64_t fallback) const {
  const Json* v = get(key);
  return v && v->is_number() ? static_cast<int64_t>(v->num_) : fallback;
}

bool Json::get_bool(const std::string& key, bool fallback) const {
  const Json* v = get(key);
  return v && v->is_bool() ? v->bool_ : fallback;
}

Json& Json::push_back(Json value) {
  if (type_ == Type::Null) type_ = Type::Array;
  if (type_ != Type::Array) throw Error("json: push_back() on a non-array");
  arr_.push_back(std::move(value));
  return *this;
}

size_t Json::size() const {
  if (type_ == Type::Array) return arr_.size();
  if (type_ == Type::Object) return obj_.size();
  return 0;
}

const Json& Json::at(size_t i) const {
  if (type_ != Type::Array || i >= arr_.size())
    throw Error("json: at() out of range");
  return arr_[i];
}

std::string Json::dump() const {
  std::string out;
  switch (type_) {
    case Type::Null: out = "null"; break;
    case Type::Bool: out = bool_ ? "true" : "false"; break;
    case Type::Number: append_number(out, num_); break;
    case Type::String: append_escaped(out, str_); break;
    case Type::Array: {
      out.push_back('[');
      for (size_t i = 0; i < arr_.size(); ++i) {
        if (i) out.push_back(',');
        out += arr_[i].dump();
      }
      out.push_back(']');
      break;
    }
    case Type::Object: {
      out.push_back('{');
      bool first = true;
      for (const auto& [k, v] : obj_) {
        if (!first) out.push_back(',');
        first = false;
        append_escaped(out, k);
        out.push_back(':');
        out += v.dump();
      }
      out.push_back('}');
      break;
    }
  }
  return out;
}

Json Json::parse(const std::string& text) {
  return ParserImpl(text).parse_document();
}

}  // namespace fact::serve
