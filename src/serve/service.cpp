#include "serve/service.hpp"

#include <algorithm>
#include <cmath>

#include "lang/parser.hpp"
#include "obs/metrics.hpp"
#include "opt/baselines.hpp"
#include "opt/fact.hpp"
#include "util/error.hpp"
#include "verify/verify.hpp"
#include "workloads/workloads.hpp"
#include "xform/transform.hpp"

namespace fact::serve {

namespace {

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// Response skeleton: ok first, then the echoed client id (if any), then
/// the request type — the field order every factd response shares.
Json base_response(const Json& req, bool ok) {
  Json r = Json::object();
  r.set("ok", ok);
  if (const Json* id = req.get("id")) r.set("id", *id);
  const std::string type = req.get_string("type");
  if (!type.empty()) r.set("type", type);
  return r;
}

Json error_response(const Json& req, const std::string& msg) {
  Json r = base_response(req, false);
  r.set("error", msg);
  return r;
}

/// Registry mirror of the service's lifecycle counters (the mutex-guarded
/// fields behind status/stats remain authoritative; the registry copies
/// feed the `metrics` endpoint and process-wide exports). Write-only.
struct ServeCounters {
  obs::Counter& accepted = obs::Registry::global().counter(
      "fact_serve_accepted_total", "Jobs admitted to the queue");
  obs::Counter& completed = obs::Registry::global().counter(
      "fact_serve_completed_total", "Jobs finished ok");
  obs::Counter& failed = obs::Registry::global().counter(
      "fact_serve_failed_total", "Jobs finished with an error");
  obs::Counter& cancelled = obs::Registry::global().counter(
      "fact_serve_cancelled_total", "Jobs cancelled by the client");
  obs::Counter& rejected = obs::Registry::global().counter(
      "fact_serve_rejected_total", "Jobs bounced on a full queue");
  static ServeCounters& get() {
    static ServeCounters c;
    return c;
  }
};

}  // namespace

// ---- JobState ------------------------------------------------------------

void JobState::complete(Json response) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (done_) return;  // first completion wins
    response_ = std::move(response);
    done_ = true;
  }
  cv_.notify_all();
}

bool JobState::done() const {
  std::lock_guard<std::mutex> lk(mu_);
  return done_;
}

const Json& JobState::wait() const {
  std::unique_lock<std::mutex> lk(mu_);
  cv_.wait(lk, [&] { return done_; });
  return response_;
}

uint64_t Ticket::id() const { return state_ ? state_->ticket() : 0; }

Json Ticket::wait() const { return state_ ? state_->wait() : Json(); }

// ---- Session -------------------------------------------------------------

/// A session pins everything re-derivable about one behavior so follow-up
/// requests skip the front end entirely: the parsed IR, the allocation,
/// the trace configuration, and (lazily) the generated trace. The parsed
/// members are immutable after construction — IR expressions are shared
/// immutable nodes, so any number of jobs may read one session
/// concurrently; only the trace pin mutates, under its own mutex.
struct Service::Session {
  std::string name;  // "" = ephemeral (not stored in the registry)
  ir::Function fn{""};
  hlslib::Allocation alloc;
  sim::TraceConfig trace_config;

  /// Requests resolved to this session (stats_response inventory).
  std::atomic<uint64_t> requests{0};

  std::mutex trace_mu;
  uint64_t trace_seed = 0;
  size_t trace_execs = 0;
  std::shared_ptr<const sim::Trace> trace;

  /// The trace sim::generate_trace(fn, tc, seed) would produce, generated
  /// at most once per (seed, executions) and shared by reference with any
  /// number of concurrent jobs.
  std::shared_ptr<const sim::Trace> trace_for(const sim::TraceConfig& tc,
                                              uint64_t seed) {
    std::lock_guard<std::mutex> lk(trace_mu);
    if (!trace || trace_seed != seed || trace_execs != tc.executions) {
      trace = std::make_shared<sim::Trace>(sim::generate_trace(fn, tc, seed));
      trace_seed = seed;
      trace_execs = tc.executions;
    }
    return trace;
  }

  bool trace_pinned() {
    std::lock_guard<std::mutex> lk(trace_mu);
    return trace != nullptr;
  }
};

// ---- Service lifecycle ---------------------------------------------------

Service::Service(ServiceOptions opts)
    : opts_(opts),
      lib_(hlslib::Library::dac98()),
      sel_(hlslib::FuSelection::defaults(lib_)),
      pool_(opts.workers > 0 ? opts.workers : WorkerPool::hardware_threads()),
      cache_(opts.cache_cap) {
  if (opts_.queue_cap == 0) opts_.queue_cap = 1;
  if (opts_.latency_window == 0) opts_.latency_window = 1;
  latencies_.resize(opts_.latency_window, 0.0);
  dispatcher_ = std::thread([this] { dispatcher_loop(); });
}

Service::~Service() { stop(); }

void Service::stop() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stopping_ = true;
  }
  cv_work_.notify_all();
  {
    // Cancel in-flight jobs so shutdown is prompt: engines notice the flag
    // at their next budget check and return best-so-far.
    std::lock_guard<std::mutex> lk(jobs_mu_);
    for (auto& [id, weak] : live_jobs_)
      if (auto s = weak.lock()) s->request_cancel();
  }
  if (dispatcher_.joinable()) dispatcher_.join();
  std::deque<std::shared_ptr<JobState>> leftover;
  {
    std::lock_guard<std::mutex> lk(mu_);
    leftover.swap(queue_);
  }
  for (auto& s : leftover) {
    s->complete(error_response(s->request(), "server shutting down"));
    ServeCounters::get().failed.inc();
    std::lock_guard<std::mutex> lk(stats_mu_);
    ++failed_;
  }
  std::lock_guard<std::mutex> lk(jobs_mu_);
  live_jobs_.clear();
}

// ---- submission and dispatch ---------------------------------------------

Ticket Service::submit(Json request) {
  const uint64_t ticket = next_ticket_.fetch_add(1, std::memory_order_relaxed);
  auto state = std::make_shared<JobState>(ticket, std::move(request));
  const Json& req = state->request();

  auto fail_now = [&](const std::string& msg, bool rejected) {
    {
      std::lock_guard<std::mutex> lk(stats_mu_);
      if (rejected) ++rejected_;
      else ++failed_;
    }
    if (rejected) ServeCounters::get().rejected.inc();
    else ServeCounters::get().failed.inc();
    state->complete(error_response(req, msg));
    return Ticket(state);
  };

  const std::string type = req.get_string("type");
  if (type != "optimize" && type != "schedule" && type != "profile")
    return fail_now("unknown request type '" + type +
                        "' (want optimize|schedule|profile)",
                    false);

  {
    // Registered before it is queued: once the dispatcher can see the job,
    // cancel() must be able to find it.
    std::lock_guard<std::mutex> lk(jobs_mu_);
    live_jobs_[ticket] = state;
  }
  {
    std::unique_lock<std::mutex> lk(mu_);
    if (stopping_) {
      lk.unlock();
      std::lock_guard<std::mutex> jk(jobs_mu_);
      live_jobs_.erase(ticket);
      return fail_now("server shutting down", false);
    }
    if (queue_.size() >= opts_.queue_cap) {
      lk.unlock();
      std::lock_guard<std::mutex> jk(jobs_mu_);
      live_jobs_.erase(ticket);
      return fail_now("queue full (" + std::to_string(opts_.queue_cap) +
                          " jobs queued)",
                      true);
    }
    queue_.push_back(state);
  }
  {
    std::lock_guard<std::mutex> lk(stats_mu_);
    ++accepted_;
  }
  ServeCounters::get().accepted.inc();
  cv_work_.notify_one();
  return Ticket(std::move(state));
}

bool Service::cancel(uint64_t ticket_id) {
  std::shared_ptr<JobState> state;
  {
    std::lock_guard<std::mutex> lk(jobs_mu_);
    auto it = live_jobs_.find(ticket_id);
    if (it != live_jobs_.end()) state = it->second.lock();
  }
  if (!state || state->done()) return false;
  state->request_cancel();
  return true;
}

void Service::dispatcher_loop() {
  for (;;) {
    std::vector<std::shared_ptr<JobState>> batch;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_work_.wait(lk, [&] { return stopping_ || !queue_.empty(); });
      if (stopping_) return;  // stop() fails whatever is left in the queue
      const size_t want =
          opts_.batch_max > 0 ? opts_.batch_max
                              : static_cast<size_t>(pool_.threads());
      while (!queue_.empty() && batch.size() < std::max<size_t>(want, 1)) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      in_flight_ += batch.size();
    }
    if (batch.size() == 1) {
      // A lone job runs on the dispatcher thread itself, leaving the whole
      // pool to the engine inside it: an idle service gives one request
      // full intra-request parallelism.
      run_job(*batch[0]);
    } else {
      // A backlog fans out across the pool; the engines inside the jobs
      // find it busy and degrade to inline evaluation, trading
      // intra-request for cross-request parallelism.
      pool_.parallel_for(batch.size(),
                         [&](size_t i) { run_job(*batch[i]); });
    }
    {
      std::lock_guard<std::mutex> lk(mu_);
      in_flight_ -= batch.size();
    }
  }
}

void Service::run_job(JobState& job) {
  const auto start = std::chrono::steady_clock::now();
  Json resp;
  if (job.cancel_requested()) {
    resp = error_response(job.request(), "cancelled");
    resp.set("cancelled", true);
  } else {
    try {
      resp = execute(job.request(), job);
    } catch (const fact::Error& e) {
      resp = error_response(job.request(), e.what());
    } catch (const std::exception& e) {
      // Last-resort guard, mirroring factc: a library defect must surface
      // as an error response, never kill the daemon.
      resp = error_response(job.request(), std::string("internal: ") +
                                               e.what());
    }
    if (job.cancel_requested() && !resp.has("cancelled"))
      resp.set("cancelled", true);
  }
  const double wall = ms_since(start);
  resp.set("wall_ms", wall);
  {
    std::lock_guard<std::mutex> lk(stats_mu_);
    if (job.cancel_requested()) ++cancelled_;
    else if (resp.get_bool("ok")) ++completed_;
    else ++failed_;
    record_latency(wall);
  }
  ServeCounters& scnt = ServeCounters::get();
  if (job.cancel_requested()) scnt.cancelled.inc();
  else if (resp.get_bool("ok")) scnt.completed.inc();
  else scnt.failed.inc();
  {
    std::lock_guard<std::mutex> lk(jobs_mu_);
    live_jobs_.erase(job.ticket());
  }
  job.complete(std::move(resp));
}

// ---- request execution ---------------------------------------------------

Json Service::execute(const Json& req, JobState& job) {
  const std::string type = req.get_string("type");
  if (type == "optimize") return execute_optimize(req, job);
  if (type == "schedule") return execute_schedule(req);
  return execute_profile(req);
}

Service::SessionPtr Service::resolve_session(const Json& req) {
  const std::string name = req.get_string("session");
  const bool has_behavior = req.has("benchmark") || req.has("source");
  if (name.empty()) {
    if (!has_behavior)
      throw Error("request needs a 'benchmark', 'source' or 'session'");
    return build_session(req, "");
  }
  if (!has_behavior) {
    std::lock_guard<std::mutex> lk(sessions_mu_);
    auto it = sessions_.find(name);
    if (it == sessions_.end())
      throw Error("unknown session '" + name +
                  "' (supply 'benchmark' or 'source' to create it)");
    it->second->requests.fetch_add(1, std::memory_order_relaxed);
    return it->second;
  }
  // Behavior plus a session name: (re)create and remember. Parse outside
  // the registry lock; last writer wins on a name race.
  SessionPtr ses = build_session(req, name);
  ses->requests.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lk(sessions_mu_);
  sessions_[name] = ses;
  return ses;
}

Service::SessionPtr Service::build_session(const Json& req,
                                           const std::string& name) const {
  auto ses = std::make_shared<Session>();
  ses->name = name;
  const std::string alloc_spec = req.get_string("alloc");
  if (req.has("benchmark")) {
    workloads::Workload w = workloads::by_name(req.get_string("benchmark"));
    ses->fn = std::move(w.fn);
    ses->alloc = alloc_spec.empty() ? w.allocation
                                    : hlslib::parse_allocation(alloc_spec, lib_);
    ses->trace_config = w.trace;
  } else {
    const Json* src = req.get("source");
    if (!src || !src->is_string())
      throw Error("'source' must be a string of behavior text");
    ses->fn = lang::parse_function(src->as_string());
    ses->alloc = hlslib::parse_allocation(alloc_spec, lib_);
    ses->trace_config = sim::TraceConfig{};
  }
  return ses;
}

Json Service::execute_optimize(const Json& req, JobState& job) {
  SessionPtr ses = resolve_session(req);

  opt::FactOptions fo;
  fo.sched.clock_ns = req.get_double("clock", fo.sched.clock_ns);
  fo.sched.fuse_loops = !req.get_bool("no_fuse", false);
  fo.seed = static_cast<uint64_t>(req.get_int("seed", 7));
  const std::string objective = req.get_string("objective", "throughput");
  if (objective == "power") {
    fo.objective = opt::Objective::Power;
  } else if (objective != "throughput") {
    throw Error("bad objective '" + objective + "' (want throughput|power)");
  }
  fo.engine.validate =
      verify::level_from_string(req.get_string("validate", "fast"));
  const double deadline = req.get_double("deadline_ms", 0.0);
  if (deadline < 0.0) throw Error("deadline_ms must be >= 0");
  fo.engine.deadline_ms = deadline;
  fo.engine.memoize = req.get_bool("memoize", true);
  fo.engine.cancel = job.cancel_flag();
  const int jobs = static_cast<int>(req.get_int("jobs", 0));
  if (jobs > 0) {
    fo.engine.jobs = jobs;  // explicit width: a private per-request pool
  } else {
    fo.engine.pool = &pool_;  // default: share the service pool
  }

  // Named sessions pin the generated trace; what is pinned is exactly the
  // trace run_fact would generate, so pinning never changes results.
  std::shared_ptr<const sim::Trace> pinned;
  if (!ses->name.empty()) {
    sim::TraceConfig tc = ses->trace_config;
    if (tc.executions == 0) tc.executions = fo.trace_executions;
    pinned = ses->trace_for(tc, fo.seed);
  }

  const xform::TransformLibrary xf = xform::TransformLibrary::standard();
  const opt::FactResult r =
      opt::run_fact(ses->fn, lib_, ses->alloc, sel_, ses->trace_config, xf,
                    fo, &cache_, pinned.get());

  {
    std::lock_guard<std::mutex> lk(stats_mu_);
    evaluations_ += static_cast<uint64_t>(r.evaluations);
    cache_hits_ += static_cast<uint64_t>(r.cache_hits);
  }

  Json resp = base_response(req, true);
  if (!ses->name.empty()) resp.set("session", ses->name);
  resp.set("report",
           opt::render_fact_report(r, fo.objective, req.get_bool("quiet")));
  resp.set("avg_len", r.final_avg_len);
  resp.set("initial_avg_len", r.initial_avg_len);
  resp.set("throughput", 1000.0 / r.final_avg_len);
  resp.set("power", r.final_power.power);
  resp.set("vdd", r.final_power.vdd);
  Json transforms = Json::array();
  for (const std::string& t : r.applied) transforms.push_back(Json(t));
  resp.set("transforms", std::move(transforms));
  resp.set("evaluations", r.evaluations);
  resp.set("cache_hits", r.cache_hits);
  resp.set("cache_misses", r.cache_misses);
  resp.set("quarantined", r.quarantined);
  resp.set("blocks_degraded", r.blocks_degraded);
  resp.set("truncated", r.truncated);
  return resp;
}

Json Service::execute_schedule(const Json& req) {
  SessionPtr ses = resolve_session(req);
  sched::SchedOptions so;
  so.clock_ns = req.get_double("clock", so.clock_ns);
  so.fuse_loops = !req.get_bool("no_fuse", false);
  const power::PowerOptions po;
  const uint64_t seed = static_cast<uint64_t>(req.get_int("seed", 7));
  const opt::BaselineResult r = opt::run_m1(
      ses->fn, lib_, ses->alloc, sel_, ses->trace_config, so, po, seed);
  Json resp = base_response(req, true);
  if (!ses->name.empty()) resp.set("session", ses->name);
  resp.set("method", "m1");
  resp.set("avg_len", r.avg_len);
  resp.set("throughput", 1000.0 / r.avg_len);
  resp.set("power", r.power_nominal.power);
  return resp;
}

Json Service::execute_profile(const Json& req) {
  SessionPtr ses = resolve_session(req);
  const uint64_t seed = static_cast<uint64_t>(req.get_int("seed", 7));
  sim::TraceConfig tc = ses->trace_config;
  if (tc.executions == 0) tc.executions = opt::FactOptions{}.trace_executions;
  std::shared_ptr<const sim::Trace> trace;
  if (!ses->name.empty()) {
    trace = ses->trace_for(tc, seed);
  } else {
    trace = std::make_shared<sim::Trace>(
        sim::generate_trace(ses->fn, tc, seed));
  }
  const sim::Profile profile = sim::profile_function(ses->fn, *trace);
  Json resp = base_response(req, true);
  if (!ses->name.empty()) resp.set("session", ses->name);
  resp.set("executions", profile.executions);
  resp.set("avg_steps", profile.avg_steps());
  return resp;
}

// ---- stats ---------------------------------------------------------------

void Service::record_latency(double ms) {
  // Caller holds stats_mu_.
  latencies_[latency_next_] = ms;
  latency_next_ = (latency_next_ + 1) % latencies_.size();
  ++latency_total_;
  latency_max_ = std::max(latency_max_, ms);
}

size_t Service::session_count() const {
  std::lock_guard<std::mutex> lk(sessions_mu_);
  return sessions_.size();
}

StatsSnapshot Service::stats() const {
  StatsSnapshot s;
  s.uptime_ms = ms_since(start_);
  s.sessions = session_count();
  {
    std::lock_guard<std::mutex> lk(mu_);
    s.queue_depth = queue_.size();
    s.in_flight = in_flight_;
  }
  std::vector<double> window;
  {
    std::lock_guard<std::mutex> lk(stats_mu_);
    s.accepted = accepted_;
    s.completed = completed_;
    s.failed = failed_;
    s.cancelled = cancelled_;
    s.rejected = rejected_;
    s.evaluations = evaluations_;
    s.cache_hits = cache_hits_;
    s.max_ms = latency_max_;
    const size_t n = std::min(latency_total_, latencies_.size());
    window.assign(latencies_.begin(),
                  latencies_.begin() + static_cast<long>(n));
  }
  s.cache_entries = cache_.size();
  s.cache_cap = cache_.capacity();
  s.latency_count = window.size();
  if (!window.empty()) {
    std::sort(window.begin(), window.end());
    auto pct = [&](double q) {
      const double idx = q * static_cast<double>(window.size() - 1);
      return window[static_cast<size_t>(std::llround(idx))];
    };
    s.p50_ms = pct(0.50);
    s.p90_ms = pct(0.90);
    s.p99_ms = pct(0.99);
  }
  return s;
}

Json Service::status_response() const {
  const StatsSnapshot s = stats();
  Json stats = Json::object();
  stats.set("sessions", s.sessions);
  stats.set("queue_depth", s.queue_depth);
  stats.set("in_flight", s.in_flight);
  stats.set("accepted", s.accepted);
  stats.set("completed", s.completed);
  stats.set("failed", s.failed);
  stats.set("cancelled", s.cancelled);
  stats.set("rejected", s.rejected);
  stats.set("evaluations", s.evaluations);
  stats.set("cache_hits", s.cache_hits);
  stats.set("cache_hit_rate",
            s.evaluations == 0
                ? 0.0
                : static_cast<double>(s.cache_hits) /
                      static_cast<double>(s.evaluations));
  stats.set("cache_entries", s.cache_entries);
  stats.set("cache_cap", s.cache_cap);
  stats.set("latency_count", s.latency_count);
  stats.set("p50_ms", s.p50_ms);
  stats.set("p90_ms", s.p90_ms);
  stats.set("p99_ms", s.p99_ms);
  stats.set("max_ms", s.max_ms);
  Json resp = Json::object();
  resp.set("ok", true);
  resp.set("type", "status");
  resp.set("stats", std::move(stats));
  return resp;
}

Json Service::stats_response() const {
  const StatsSnapshot s = stats();
  Json resp = Json::object();
  resp.set("ok", true);
  resp.set("type", "stats");
  resp.set("uptime_ms", s.uptime_ms);
  resp.set("sessions", s.sessions);
  resp.set("queue_depth", s.queue_depth);
  resp.set("in_flight", s.in_flight);
  resp.set("cache_entries", s.cache_entries);
  resp.set("cache_cap", s.cache_cap);
  Json list = Json::array();
  {
    std::lock_guard<std::mutex> lk(sessions_mu_);
    for (const auto& [name, ses] : sessions_) {
      Json e = Json::object();
      e.set("name", name);
      e.set("requests",
            ses->requests.load(std::memory_order_relaxed));
      e.set("trace_pinned", ses->trace_pinned());
      list.push_back(std::move(e));
    }
  }
  resp.set("session_list", std::move(list));
  return resp;
}

std::string Service::metrics_text() const {
  // Point-in-time service state rides along as gauges; the counters are
  // already live in the registry (mirrored at their increment sites).
  obs::Registry& reg = obs::Registry::global();
  const StatsSnapshot s = stats();
  reg.gauge("fact_serve_sessions", "Named sessions resident")
      .set(static_cast<int64_t>(s.sessions));
  reg.gauge("fact_serve_queue_depth", "Jobs waiting in the queue")
      .set(static_cast<int64_t>(s.queue_depth));
  reg.gauge("fact_serve_in_flight", "Jobs currently executing")
      .set(static_cast<int64_t>(s.in_flight));
  reg.gauge("fact_serve_cache_entries", "Shared EvalCache entries resident")
      .set(static_cast<int64_t>(s.cache_entries));
  reg.gauge("fact_serve_uptime_ms", "Milliseconds since service start")
      .set(static_cast<int64_t>(s.uptime_ms));
  return obs::to_prometheus(reg.snapshot());
}

}  // namespace fact::serve
