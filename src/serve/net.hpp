#pragma once

#include <string>

namespace fact::serve {

/// Thin POSIX socket helpers for the factd line protocol. Every request
/// and every response is one line of JSON terminated by '\n'; these
/// helpers own only the byte transport, never the protocol.

/// Creates, binds and listens on a unix-domain socket at `path`; an
/// existing socket file at `path` is unlinked first. Throws fact::Error.
int listen_unix(const std::string& path);

/// Creates, binds and listens on a TCP socket (SO_REUSEADDR set).
/// `port` 0 binds an ephemeral port — read it back with bound_tcp_port.
/// Throws fact::Error.
int listen_tcp(const std::string& host, int port);

/// The local port a listening TCP socket is bound to.
int bound_tcp_port(int fd);

/// Accepts one connection; returns -1 when the listening socket is closed
/// or shut down (never throws — the accept loop treats -1 as "stop").
int accept_fd(int listen_fd);

int connect_unix(const std::string& path);        // throws fact::Error
int connect_tcp(const std::string& host, int port);  // throws fact::Error

void close_fd(int fd);
/// Half-closes both directions, unblocking any reader on the fd.
void shutdown_fd(int fd);

/// Writes `line` plus a trailing '\n'; retries on partial writes and
/// EINTR. Returns false on a closed/broken peer (never raises SIGPIPE).
bool send_line(int fd, const std::string& line);

/// Buffered line reader over one socket fd.
class LineReader {
 public:
  /// `max_line` bounds a single line: a peer streaming an endless line
  /// gets an error instead of growing our buffer without bound.
  explicit LineReader(int fd, size_t max_line = 8u << 20);

  /// Reads the next '\n'-terminated line (terminator stripped) into
  /// `line`. Returns false on EOF or connection error; throws fact::Error
  /// only when a line exceeds max_line.
  bool next(std::string& line);

 private:
  int fd_;
  size_t max_line_;
  std::string buf_;
  size_t start_ = 0;
  bool eof_ = false;
};

}  // namespace fact::serve
