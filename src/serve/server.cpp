#include "serve/server.hpp"

#include <unistd.h>

#include <deque>

#include "serve/net.hpp"
#include "util/error.hpp"

namespace fact::serve {

Server::Server(Service& service, const ServerOptions& opts)
    : service_(service) {
  if (opts.unix_path.empty() && opts.tcp_port < 0)
    throw Error("factd needs a unix socket path or a TCP port to listen on");
  if (!opts.unix_path.empty()) {
    listen_fds_.push_back(listen_unix(opts.unix_path));
    unix_path_ = opts.unix_path;
  }
  if (opts.tcp_port >= 0) {
    const int fd = listen_tcp(opts.tcp_host, opts.tcp_port);
    listen_fds_.push_back(fd);
    tcp_port_ = bound_tcp_port(fd);
  }
}

Server::~Server() {
  stop();
  run();  // no-op teardown if run() already completed
  for (const int fd : listen_fds_) close_fd(fd);
  if (!unix_path_.empty()) ::unlink(unix_path_.c_str());
}

void Server::run() {
  {
    std::unique_lock<std::mutex> lk(mu_);
    if (!torn_down_ && acceptors_.empty() && !shutdown_) {
      for (const int fd : listen_fds_)
        acceptors_.emplace_back([this, fd] { accept_loop(fd); });
    }
    shutdown_cv_.wait(lk, [&] { return shutdown_; });
    if (torn_down_) return;
    torn_down_ = true;
  }

  // Teardown order matters:
  //  1. listeners down — no new connections;
  //  2. service down — queued jobs fail fast, in-flight jobs get cancelled,
  //     so every outstanding ticket completes promptly;
  //  3. connection fds shut down — readers see EOF, writers drain their
  //     (now all-completed) tickets and exit;
  //  4. join.
  for (const int fd : listen_fds_) shutdown_fd(fd);
  service_.stop();
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (auto& conn : conns_) shutdown_fd(conn->fd);
  }
  for (auto& t : acceptors_)
    if (t.joinable()) t.join();
  std::list<std::shared_ptr<Connection>> conns;
  {
    std::lock_guard<std::mutex> lk(mu_);
    conns.swap(conns_);
  }
  for (auto& conn : conns)
    if (conn->reader.joinable()) conn->reader.join();
}

void Server::stop() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    shutdown_ = true;
  }
  shutdown_cv_.notify_all();
}

void Server::accept_loop(int listen_fd) {
  for (;;) {
    const int fd = accept_fd(listen_fd);
    if (fd < 0) return;  // listener shut down
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    std::lock_guard<std::mutex> lk(mu_);
    if (shutdown_) {
      close_fd(fd);
      return;
    }
    // Registered and started under one lock: teardown either sees the
    // connection with its thread, or never sees it at all.
    conns_.push_back(conn);
    conn->reader = std::thread([this, conn] { serve_connection(conn); });
  }
}

void Server::serve_connection(std::shared_ptr<Connection> conn) {
  const int fd = conn->fd;

  // Writer side: tickets queued in request order; one response line each.
  std::mutex wq_mu;
  std::condition_variable wq_cv;
  std::deque<Ticket> wq;
  bool wq_closed = false;

  std::thread writer([&] {
    for (;;) {
      Ticket t;
      {
        std::unique_lock<std::mutex> lk(wq_mu);
        wq_cv.wait(lk, [&] { return wq_closed || !wq.empty(); });
        if (wq.empty()) return;
        t = std::move(wq.front());
        wq.pop_front();
      }
      // wait() returns promptly even at shutdown: Service::stop completes
      // every ticket. A failed send just drains the rest unsent.
      send_line(fd, t.wait().dump());
    }
  });
  auto enqueue = [&](Ticket t) {
    {
      std::lock_guard<std::mutex> lk(wq_mu);
      wq.push_back(std::move(t));
    }
    wq_cv.notify_one();
  };
  auto enqueue_immediate = [&](const Json& req, Json resp) {
    // Wrap a ready response as a pre-completed ticket so it stays ordered
    // with the job-backed ones.
    auto state = std::make_shared<JobState>(0, req);
    state->complete(std::move(resp));
    enqueue(Ticket(std::move(state)));
  };

  // Reader side: this thread. Client request ids map to service tickets so
  // `cancel` can target an earlier request on the same connection.
  std::map<int64_t, uint64_t> id_to_ticket;
  LineReader reader(fd);
  std::string line;
  bool shutdown_requested = false;
  while (!shutdown_requested) {
    try {
      if (!reader.next(line)) break;
    } catch (const Error& e) {
      // Oversized line: protocol violation, drop the connection.
      Json r = Json::object();
      r.set("ok", false);
      r.set("error", e.what());
      enqueue_immediate(Json::object(), std::move(r));
      break;
    }
    if (line.empty()) continue;
    Json req;
    try {
      req = Json::parse(line);
      if (!req.is_object()) throw Error("request must be a JSON object");
    } catch (const Error& e) {
      Json r = Json::object();
      r.set("ok", false);
      r.set("error", e.what());
      enqueue_immediate(Json::object(), std::move(r));
      continue;
    }

    const std::string type = req.get_string("type");
    if (type == "status") {
      Json resp = service_.status_response();
      if (const Json* id = req.get("id")) resp.set("id", *id);
      enqueue_immediate(req, std::move(resp));
    } else if (type == "stats") {
      Json resp = service_.stats_response();
      if (const Json* id = req.get("id")) resp.set("id", *id);
      enqueue_immediate(req, std::move(resp));
    } else if (type == "metrics") {
      // Prometheus text rides inside the normal JSON line protocol; the
      // client (factcli --metrics) unwraps `body` for scraping.
      Json resp = Json::object();
      resp.set("ok", true);
      if (const Json* id = req.get("id")) resp.set("id", *id);
      resp.set("type", "metrics");
      resp.set("content_type", "text/plain; version=0.0.4");
      resp.set("body", service_.metrics_text());
      enqueue_immediate(req, std::move(resp));
    } else if (type == "cancel") {
      Json resp = Json::object();
      const Json* target = req.get("target");
      if (!target || !target->is_number()) {
        resp.set("ok", false);
        if (const Json* id = req.get("id")) resp.set("id", *id);
        resp.set("type", "cancel");
        resp.set("error", "cancel needs a numeric 'target' request id");
      } else {
        const auto it = id_to_ticket.find(target->as_int());
        const bool hit =
            it != id_to_ticket.end() && service_.cancel(it->second);
        resp.set("ok", true);
        if (const Json* id = req.get("id")) resp.set("id", *id);
        resp.set("type", "cancel");
        resp.set("target", *target);
        resp.set("cancelled", hit);
      }
      enqueue_immediate(req, std::move(resp));
    } else if (type == "shutdown") {
      Json resp = Json::object();
      resp.set("ok", true);
      if (const Json* id = req.get("id")) resp.set("id", *id);
      resp.set("type", "shutdown");
      enqueue_immediate(req, std::move(resp));
      shutdown_requested = true;
    } else {
      Ticket t = service_.submit(req);
      if (const Json* id = req.get("id"))
        if (id->is_number()) id_to_ticket[id->as_int()] = t.id();
      enqueue(std::move(t));
    }
  }

  {
    std::lock_guard<std::mutex> lk(wq_mu);
    wq_closed = true;
  }
  wq_cv.notify_all();
  writer.join();

  {
    std::lock_guard<std::mutex> lk(mu_);
    conn->fd = -1;  // teardown must not shutdown a recycled fd number
  }
  close_fd(fd);
  if (shutdown_requested) stop();
}

}  // namespace fact::serve
