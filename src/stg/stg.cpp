#include "stg/stg.hpp"

#include <cmath>
#include <queue>

#include "obs/metrics.hpp"
#include "util/dot.hpp"
#include "util/error.hpp"
#include "util/strfmt.hpp"

namespace fact::stg {

int Stg::add_state(const std::string& name) {
  State s;
  s.name = name.empty() ? strfmt("S%zu", states_.size()) : name;
  states_.push_back(std::move(s));
  return static_cast<int>(states_.size()) - 1;
}

int Stg::add_edge(int from, int to, double prob, const std::string& cond_label,
                  bool exec_boundary) {
  if (from < 0 || static_cast<size_t>(from) >= states_.size() || to < 0 ||
      static_cast<size_t>(to) >= states_.size())
    throw Error("Stg::add_edge: state index out of range");
  Edge e;
  e.from = from;
  e.to = to;
  e.prob = prob;
  e.cond_label = cond_label;
  e.exec_boundary = exec_boundary;
  edges_.push_back(e);
  const int idx = static_cast<int>(edges_.size()) - 1;
  states_[static_cast<size_t>(from)].out_edges.push_back(idx);
  return idx;
}

void Stg::validate() const {
  if (states_.empty()) throw Error("STG has no states");
  if (entry_ < 0 || static_cast<size_t>(entry_) >= states_.size())
    throw Error("STG entry state out of range");

  // Out-edge lists must agree exactly with the edge table: every edge is
  // indexed once, by its own from-state. A mismatch means some mutation
  // bypassed add_edge and every downstream analysis would silently skew.
  std::vector<int> indexed(edges_.size(), 0);
  for (size_t i = 0; i < states_.size(); ++i) {
    for (int ei : states_[i].out_edges) {
      if (ei < 0 || static_cast<size_t>(ei) >= edges_.size())
        throw Error("STG state '" + states_[i].name +
                    "' indexes a nonexistent edge");
      if (edges_[static_cast<size_t>(ei)].from != static_cast<int>(i))
        throw Error("STG state '" + states_[i].name +
                    "' lists an edge leaving a different state");
      indexed[static_cast<size_t>(ei)]++;
    }
  }
  for (size_t ei = 0; ei < edges_.size(); ++ei)
    if (indexed[ei] != 1)
      throw Error(strfmt("STG edge %zu appears %d time(s) in out-edge lists",
                         ei, indexed[ei]));

  bool has_boundary = false;
  for (size_t i = 0; i < states_.size(); ++i) {
    const State& s = states_[i];
    if (s.out_edges.empty())
      throw Error("STG state '" + s.name + "' has no outgoing edge");
    double sum = 0.0;
    for (int ei : s.out_edges) {
      const Edge& e = edges_[static_cast<size_t>(ei)];
      if (e.prob < -1e-9 || e.prob > 1.0 + 1e-9)
        throw Error(strfmt("STG edge %s->%s has probability %g out of [0,1]",
                           s.name.c_str(),
                           states_[static_cast<size_t>(e.to)].name.c_str(),
                           e.prob));
      sum += e.prob;
      if (e.exec_boundary) has_boundary = true;
    }
    if (std::fabs(sum - 1.0) > 1e-6)
      throw Error(strfmt("STG state '%s' outgoing probabilities sum to %g",
                         s.name.c_str(), sum));
  }
  if (!has_boundary)
    throw Error("STG has no execution-boundary edge");

  // Reachability from entry.
  std::vector<bool> seen(states_.size(), false);
  std::queue<int> work;
  work.push(entry_);
  seen[static_cast<size_t>(entry_)] = true;
  while (!work.empty()) {
    const int s = work.front();
    work.pop();
    for (int ei : states_[static_cast<size_t>(s)].out_edges) {
      const int t = edges_[static_cast<size_t>(ei)].to;
      if (!seen[static_cast<size_t>(t)]) {
        seen[static_cast<size_t>(t)] = true;
        work.push(t);
      }
    }
  }
  for (size_t i = 0; i < states_.size(); ++i)
    if (!seen[i])
      throw Error("STG state '" + states_[i].name + "' unreachable from entry");
}

std::string Stg::dot(const std::string& graph_name) const {
  DotWriter w(graph_name);
  for (size_t i = 0; i < states_.size(); ++i) {
    const State& s = states_[i];
    std::string label = s.name;
    for (const auto& op : s.ops) {
      label += "\n" + op.label;
      if (op.iteration != 0) label += strfmt("_%d", op.iteration);
    }
    w.node(strfmt("s%zu", i), label,
           i == static_cast<size_t>(entry_) ? "shape=doublecircle" : "shape=circle");
  }
  for (const Edge& e : edges_) {
    std::string label = strfmt("(%.2f)", e.prob);
    if (!e.cond_label.empty()) label = e.cond_label + " " + label;
    w.edge(strfmt("s%d", e.from), strfmt("s%d", e.to), label,
           e.exec_boundary ? "style=bold" : "");
  }
  return w.str();
}

namespace {

/// Dense direct solve of pi P = pi, sum pi = 1: build A = P^T - I (n x n),
/// replace the last row with all-ones (normalization), Gaussian
/// elimination with partial pivoting. Exact, O(n^3).
std::vector<double> dense_probabilities(const Stg& stg) {
  const size_t n = stg.num_states();
  std::vector<std::vector<double>> a(n, std::vector<double>(n + 1, 0.0));
  for (const Edge& e : stg.edges())
    a[static_cast<size_t>(e.to)][static_cast<size_t>(e.from)] += e.prob;
  for (size_t i = 0; i < n; ++i) a[i][i] -= 1.0;
  for (size_t j = 0; j < n; ++j) a[n - 1][j] = 1.0;
  a[n - 1][n] = 1.0;

  for (size_t col = 0; col < n; ++col) {
    size_t pivot = col;
    for (size_t r = col + 1; r < n; ++r)
      if (std::fabs(a[r][col]) > std::fabs(a[pivot][col])) pivot = r;
    if (std::fabs(a[pivot][col]) < 1e-14)
      throw Error("state_probabilities: singular chain (STG not ergodic)");
    std::swap(a[col], a[pivot]);
    for (size_t r = 0; r < n; ++r) {
      if (r == col) continue;
      const double f = a[r][col] / a[col][col];
      if (f == 0.0) continue;
      for (size_t c = col; c <= n; ++c) a[r][c] -= f * a[col][c];
    }
  }
  std::vector<double> pi(n);
  for (size_t i = 0; i < n; ++i) {
    pi[i] = a[i][n] / a[i][i];
    if (pi[i] < 0.0 && pi[i] > -1e-9) pi[i] = 0.0;
  }
  return pi;
}

/// True when the chain has exactly one closed communicating class — the
/// condition under which pi P = pi, sum pi = 1 has a unique solution (the
/// dense solver detects the same condition as a vanishing pivot).
/// Kosaraju's algorithm over the positive-probability edges, iterative so
/// deep chains cannot overflow the stack.
bool has_unique_closed_class(const Stg& stg) {
  const size_t n = stg.num_states();
  if (n == 0) return false;

  // Forward and reverse adjacency (state indices), edges with prob > 0.
  std::vector<std::vector<int>> fwd(n), rev(n);
  for (const Edge& e : stg.edges()) {
    if (e.prob <= 0.0) continue;
    fwd[static_cast<size_t>(e.from)].push_back(e.to);
    rev[static_cast<size_t>(e.to)].push_back(e.from);
  }

  // Pass 1: iterative DFS post-order over the forward graph.
  std::vector<int> order;
  order.reserve(n);
  std::vector<char> seen(n, 0);
  std::vector<std::pair<int, size_t>> stack;  // (state, next child index)
  for (size_t root = 0; root < n; ++root) {
    if (seen[root]) continue;
    seen[root] = 1;
    stack.emplace_back(static_cast<int>(root), 0);
    while (!stack.empty()) {
      auto& [s, next] = stack.back();
      const auto& succ = fwd[static_cast<size_t>(s)];
      if (next < succ.size()) {
        const int t = succ[next++];
        if (!seen[static_cast<size_t>(t)]) {
          seen[static_cast<size_t>(t)] = 1;
          stack.emplace_back(t, 0);
        }
      } else {
        order.push_back(s);
        stack.pop_back();
      }
    }
  }

  // Pass 2: sweep reverse post-order over the reverse graph; each sweep
  // labels one SCC.
  std::vector<int> comp(n, -1);
  int num_comps = 0;
  std::vector<int> dfs;
  for (size_t i = n; i-- > 0;) {
    const int root = order[i];
    if (comp[static_cast<size_t>(root)] != -1) continue;
    const int c = num_comps++;
    comp[static_cast<size_t>(root)] = c;
    dfs.assign(1, root);
    while (!dfs.empty()) {
      const int s = dfs.back();
      dfs.pop_back();
      for (int t : rev[static_cast<size_t>(s)]) {
        if (comp[static_cast<size_t>(t)] == -1) {
          comp[static_cast<size_t>(t)] = c;
          dfs.push_back(t);
        }
      }
    }
  }

  // A class is closed when no edge leaves it for another class.
  std::vector<char> closed(static_cast<size_t>(num_comps), 1);
  for (const Edge& e : stg.edges()) {
    if (e.prob <= 0.0) continue;
    const int cf = comp[static_cast<size_t>(e.from)];
    if (cf != comp[static_cast<size_t>(e.to)])
      closed[static_cast<size_t>(cf)] = 0;
  }
  int num_closed = 0;
  for (char c : closed) num_closed += c;
  return num_closed == 1;
}

/// Sparse Gauss-Seidel solve over the incoming-edge CSR adjacency.
/// Update rule per state j, sweeping in state-index order with immediate
/// reuse of updated values:
///   pi[j] = (sum over incoming edges i->j, i != j, of pi[i] * p_ij)
///           / (1 - p_jj)
/// then normalize to sum 1 after every sweep. States are created by the
/// scheduler in control-flow order, so forward probability mass propagates
/// through an entire chain in a single sweep and each loop back-edge costs
/// roughly one extra sweep — typical STGs converge in a handful of sweeps.
/// Returns an empty vector when the sweep cap is exceeded (caller falls
/// back to the dense solver).
std::vector<double> sparse_probabilities(const Stg& stg,
                                         const MarkovOptions& opts,
                                         MarkovStats* stats) {
  const size_t n = stg.num_states();

  // CSR incoming adjacency: for each state j, the (source, prob) pairs of
  // its incoming edges (self-loops held separately for the denominator).
  // Built by counting sort over the edge table, so the within-row order is
  // the deterministic edge-insertion order.
  std::vector<size_t> row(n + 1, 0);
  std::vector<double> self(n, 0.0);
  size_t in_edges = 0;
  for (const Edge& e : stg.edges()) {
    if (e.prob <= 0.0) continue;
    if (e.from == e.to) {
      self[static_cast<size_t>(e.to)] += e.prob;
    } else {
      row[static_cast<size_t>(e.to) + 1]++;
      ++in_edges;
    }
  }
  for (size_t j = 0; j < n; ++j) row[j + 1] += row[j];
  std::vector<int> src(in_edges);
  std::vector<double> prob(in_edges);
  {
    std::vector<size_t> fill(row.begin(), row.end() - 1);
    for (const Edge& e : stg.edges()) {
      if (e.prob <= 0.0 || e.from == e.to) continue;
      const size_t slot = fill[static_cast<size_t>(e.to)]++;
      src[slot] = e.from;
      prob[slot] = e.prob;
    }
  }

  std::vector<double> pi(n, 1.0 / static_cast<double>(n));
  std::vector<double> prev(n);
  for (int sweep = 0; sweep < opts.max_sweeps; ++sweep) {
    prev = pi;
    for (size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (size_t k = row[j]; k < row[j + 1]; ++k)
        acc += pi[static_cast<size_t>(src[k])] * prob[k];
      const double denom = 1.0 - self[j];
      // denom ~ 0 means an absorbing state; the closed-class check
      // rejects every such chain before we get here (n > 1), so this
      // guard only protects against pathological float dust.
      pi[j] = denom > 1e-12 ? acc / denom : acc;
    }
    double sum = 0.0;
    for (double v : pi) sum += v;
    if (!(sum > 0.0)) return {};  // mass vanished; let dense decide
    const double inv = 1.0 / sum;
    for (double& v : pi) v *= inv;
    double dist = 0.0;
    for (size_t j = 0; j < n; ++j) dist += std::fabs(pi[j] - prev[j]);
    if (stats) stats->sweeps = sweep + 1;
    if (dist < opts.tolerance) {
      for (double& v : pi)
        if (v < 0.0 && v > -1e-9) v = 0.0;
      return pi;
    }
  }
  return {};
}

}  // namespace

std::vector<double> state_probabilities(const Stg& stg) {
  return state_probabilities(stg, MarkovOptions{});
}

namespace {

/// Registry-backed solver accounting (absorbs the per-call MarkovStats
/// into standing, process-wide instrumentation). Write-only: never read
/// on the solve path.
struct MarkovCounters {
  obs::Counter& solves = obs::Registry::global().counter(
      "fact_markov_solves_total", "Stationary-distribution solves");
  obs::Counter& sparse = obs::Registry::global().counter(
      "fact_markov_sparse_solves_total",
      "Solves served by sparse Gauss-Seidel");
  obs::Counter& sweeps = obs::Registry::global().counter(
      "fact_markov_sweeps_total", "Gauss-Seidel sweeps performed");
  obs::Counter& fallbacks = obs::Registry::global().counter(
      "fact_markov_dense_fallbacks_total",
      "Sparse solves that diverged and fell back to dense");
  static MarkovCounters& get() {
    static MarkovCounters c;
    return c;
  }
};

}  // namespace

std::vector<double> state_probabilities(const Stg& stg,
                                        const MarkovOptions& opts,
                                        MarkovStats* stats) {
  if (stats) *stats = MarkovStats{};
  MarkovCounters& mc = MarkovCounters::get();
  mc.solves.inc();
  const size_t n = stg.num_states();
  const bool dense = opts.solver == MarkovSolver::Dense ||
                     (opts.solver == MarkovSolver::Auto &&
                      n <= opts.dense_cutoff);
  if (dense) return dense_probabilities(stg);

  // The sparse path cannot observe non-ergodicity as a vanishing pivot,
  // so check the structural condition explicitly and keep the error
  // contract identical to the dense solver's.
  if (!has_unique_closed_class(stg))
    throw Error("state_probabilities: singular chain (STG not ergodic)");
  MarkovStats local;
  MarkovStats* st = stats ? stats : &local;
  std::vector<double> pi = sparse_probabilities(stg, opts, st);
  mc.sweeps.inc(static_cast<uint64_t>(st->sweeps));
  if (pi.empty()) {
    st->fell_back = true;
    mc.fallbacks.inc();
    return dense_probabilities(stg);
  }
  st->used_sparse = true;
  mc.sparse.inc();
  return pi;
}

double average_schedule_length(const Stg& stg) {
  return average_schedule_length(stg, state_probabilities(stg));
}

double average_schedule_length(const Stg& stg, const std::vector<double>& pi) {
  double boundary_rate = 0.0;
  for (const Edge& e : stg.edges())
    if (e.exec_boundary)
      boundary_rate += pi[static_cast<size_t>(e.from)] * e.prob;
  if (boundary_rate <= 0.0)
    throw Error("average_schedule_length: no reachable execution boundary");
  return 1.0 / boundary_rate;
}

std::vector<double> edge_frequencies(const Stg& stg) {
  const std::vector<double> pi = state_probabilities(stg);
  std::vector<double> freq;
  freq.reserve(stg.num_edges());
  for (const Edge& e : stg.edges())
    freq.push_back(pi[static_cast<size_t>(e.from)] * e.prob);
  return freq;
}

}  // namespace fact::stg
