#include "stg/stg.hpp"

#include <cmath>
#include <queue>

#include "util/dot.hpp"
#include "util/error.hpp"
#include "util/strfmt.hpp"

namespace fact::stg {

int Stg::add_state(const std::string& name) {
  State s;
  s.name = name.empty() ? strfmt("S%zu", states_.size()) : name;
  states_.push_back(std::move(s));
  return static_cast<int>(states_.size()) - 1;
}

int Stg::add_edge(int from, int to, double prob, const std::string& cond_label,
                  bool exec_boundary) {
  if (from < 0 || static_cast<size_t>(from) >= states_.size() || to < 0 ||
      static_cast<size_t>(to) >= states_.size())
    throw Error("Stg::add_edge: state index out of range");
  Edge e;
  e.from = from;
  e.to = to;
  e.prob = prob;
  e.cond_label = cond_label;
  e.exec_boundary = exec_boundary;
  edges_.push_back(e);
  const int idx = static_cast<int>(edges_.size()) - 1;
  states_[static_cast<size_t>(from)].out_edges.push_back(idx);
  return idx;
}

void Stg::validate() const {
  if (states_.empty()) throw Error("STG has no states");
  if (entry_ < 0 || static_cast<size_t>(entry_) >= states_.size())
    throw Error("STG entry state out of range");

  // Out-edge lists must agree exactly with the edge table: every edge is
  // indexed once, by its own from-state. A mismatch means some mutation
  // bypassed add_edge and every downstream analysis would silently skew.
  std::vector<int> indexed(edges_.size(), 0);
  for (size_t i = 0; i < states_.size(); ++i) {
    for (int ei : states_[i].out_edges) {
      if (ei < 0 || static_cast<size_t>(ei) >= edges_.size())
        throw Error("STG state '" + states_[i].name +
                    "' indexes a nonexistent edge");
      if (edges_[static_cast<size_t>(ei)].from != static_cast<int>(i))
        throw Error("STG state '" + states_[i].name +
                    "' lists an edge leaving a different state");
      indexed[static_cast<size_t>(ei)]++;
    }
  }
  for (size_t ei = 0; ei < edges_.size(); ++ei)
    if (indexed[ei] != 1)
      throw Error(strfmt("STG edge %zu appears %d time(s) in out-edge lists",
                         ei, indexed[ei]));

  bool has_boundary = false;
  for (size_t i = 0; i < states_.size(); ++i) {
    const State& s = states_[i];
    if (s.out_edges.empty())
      throw Error("STG state '" + s.name + "' has no outgoing edge");
    double sum = 0.0;
    for (int ei : s.out_edges) {
      const Edge& e = edges_[static_cast<size_t>(ei)];
      if (e.prob < -1e-9 || e.prob > 1.0 + 1e-9)
        throw Error(strfmt("STG edge %s->%s has probability %g out of [0,1]",
                           s.name.c_str(),
                           states_[static_cast<size_t>(e.to)].name.c_str(),
                           e.prob));
      sum += e.prob;
      if (e.exec_boundary) has_boundary = true;
    }
    if (std::fabs(sum - 1.0) > 1e-6)
      throw Error(strfmt("STG state '%s' outgoing probabilities sum to %g",
                         s.name.c_str(), sum));
  }
  if (!has_boundary)
    throw Error("STG has no execution-boundary edge");

  // Reachability from entry.
  std::vector<bool> seen(states_.size(), false);
  std::queue<int> work;
  work.push(entry_);
  seen[static_cast<size_t>(entry_)] = true;
  while (!work.empty()) {
    const int s = work.front();
    work.pop();
    for (int ei : states_[static_cast<size_t>(s)].out_edges) {
      const int t = edges_[static_cast<size_t>(ei)].to;
      if (!seen[static_cast<size_t>(t)]) {
        seen[static_cast<size_t>(t)] = true;
        work.push(t);
      }
    }
  }
  for (size_t i = 0; i < states_.size(); ++i)
    if (!seen[i])
      throw Error("STG state '" + states_[i].name + "' unreachable from entry");
}

std::string Stg::dot(const std::string& graph_name) const {
  DotWriter w(graph_name);
  for (size_t i = 0; i < states_.size(); ++i) {
    const State& s = states_[i];
    std::string label = s.name;
    for (const auto& op : s.ops) {
      label += "\n" + op.label;
      if (op.iteration != 0) label += strfmt("_%d", op.iteration);
    }
    w.node(strfmt("s%zu", i), label,
           i == static_cast<size_t>(entry_) ? "shape=doublecircle" : "shape=circle");
  }
  for (const Edge& e : edges_) {
    std::string label = strfmt("(%.2f)", e.prob);
    if (!e.cond_label.empty()) label = e.cond_label + " " + label;
    w.edge(strfmt("s%d", e.from), strfmt("s%d", e.to), label,
           e.exec_boundary ? "style=bold" : "");
  }
  return w.str();
}

std::vector<double> state_probabilities(const Stg& stg) {
  const size_t n = stg.num_states();
  // Solve pi P = pi, sum pi = 1. Build A = P^T - I (n x n), then replace
  // the last row with all-ones (normalization). Gaussian elimination with
  // partial pivoting; n is at most a few thousand states.
  std::vector<std::vector<double>> a(n, std::vector<double>(n + 1, 0.0));
  for (const Edge& e : stg.edges())
    a[static_cast<size_t>(e.to)][static_cast<size_t>(e.from)] += e.prob;
  for (size_t i = 0; i < n; ++i) a[i][i] -= 1.0;
  for (size_t j = 0; j < n; ++j) a[n - 1][j] = 1.0;
  a[n - 1][n] = 1.0;

  for (size_t col = 0; col < n; ++col) {
    size_t pivot = col;
    for (size_t r = col + 1; r < n; ++r)
      if (std::fabs(a[r][col]) > std::fabs(a[pivot][col])) pivot = r;
    if (std::fabs(a[pivot][col]) < 1e-14)
      throw Error("state_probabilities: singular chain (STG not ergodic)");
    std::swap(a[col], a[pivot]);
    for (size_t r = 0; r < n; ++r) {
      if (r == col) continue;
      const double f = a[r][col] / a[col][col];
      if (f == 0.0) continue;
      for (size_t c = col; c <= n; ++c) a[r][c] -= f * a[col][c];
    }
  }
  std::vector<double> pi(n);
  for (size_t i = 0; i < n; ++i) {
    pi[i] = a[i][n] / a[i][i];
    if (pi[i] < 0.0 && pi[i] > -1e-9) pi[i] = 0.0;
  }
  return pi;
}

double average_schedule_length(const Stg& stg) {
  return average_schedule_length(stg, state_probabilities(stg));
}

double average_schedule_length(const Stg& stg, const std::vector<double>& pi) {
  double boundary_rate = 0.0;
  for (const Edge& e : stg.edges())
    if (e.exec_boundary)
      boundary_rate += pi[static_cast<size_t>(e.from)] * e.prob;
  if (boundary_rate <= 0.0)
    throw Error("average_schedule_length: no reachable execution boundary");
  return 1.0 / boundary_rate;
}

std::vector<double> edge_frequencies(const Stg& stg) {
  const std::vector<double> pi = state_probabilities(stg);
  std::vector<double> freq;
  freq.reserve(stg.num_edges());
  for (const Edge& e : stg.edges())
    freq.push_back(pi[static_cast<size_t>(e.from)] * e.prob);
  return freq;
}

}  // namespace fact::stg
