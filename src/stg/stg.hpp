#pragma once

#include <string>
#include <vector>

#include "ir/expr.hpp"

namespace fact::stg {

/// One operation executed in an STG state, bound to a library FU type.
/// `iteration` tags which loop iteration the op belongs to when the
/// scheduler overlaps iterations (the paper's "S.0", "++1_1" annotations
/// in Figure 1(c)).
struct OpInstance {
  std::string fu_type;   // library type name (e.g. "a1", "mem1")
  ir::Op op;             // operation kind
  int stmt_id = -1;      // originating IR statement
  int iteration = 0;     // loop-iteration tag
  std::string label;     // human-readable annotation, e.g. "+1"

  // Dataflow annotations for binding and RTL emission:
  std::string value_name;             // wire carrying this op's result
  std::string def_var;                // register written (assignment roots)
  std::vector<std::string> operands;  // operand wires/registers/immediates
  bool is_store = false;              // memory write
  std::string array;                  // memory ops: target array
  /// For definitions: value names of the operations that must observe the
  /// *previous* value of def_var (the anti-dependences the scheduler may
  /// relax via modulo variable expansion). The RTL backend materializes
  /// shadow registers for readers emitted at or after the definition.
  std::vector<std::string> pre_readers;
  /// Pipeline lag inside a kernel ring: how many traversals behind the
  /// newest in-flight iteration this op executes (0 outside rings).
  int lag = 0;
};

/// A state of the state transition graph: the set of operations executed
/// in one clock cycle, plus register traffic for the power model.
struct State {
  std::string name;
  std::vector<OpInstance> ops;
  int reg_reads = 0;
  int reg_writes = 0;
  std::vector<int> out_edges;  // indices into Stg::edges()
  /// Wire whose value steers this state's conditional transitions (set on
  /// branching states; empty when all out-edges are unconditional).
  std::string cond_signal;
  /// Kernel-ring membership: states of one pipelined loop's steady-state
  /// ring share an id (>= 0); -1 for linear states (guard, prologue,
  /// drain, plain segments). Iteration-overlap semantics apply only
  /// within a ring.
  int ring_id = -1;
};

/// A transition between states. `prob` is the probability the edge is
/// taken given the machine is in `from` (the parenthesized numbers of
/// Figure 1(c)). `exec_boundary` marks the transitions whose traversal
/// completes one execution of the behavior; the average schedule length
/// is the expected number of cycles between boundary crossings.
struct Edge {
  int from = -1;
  int to = -1;
  double prob = 1.0;
  std::string cond_label;
  bool exec_boundary = false;
};

/// State transition graph: the scheduler's output and the substrate for
/// both throughput analysis and power estimation.
class Stg {
 public:
  int add_state(const std::string& name);
  int add_edge(int from, int to, double prob, const std::string& cond_label = "",
               bool exec_boundary = false);

  const std::vector<State>& states() const { return states_; }
  const std::vector<Edge>& edges() const { return edges_; }
  State& state(int i) { return states_[static_cast<size_t>(i)]; }
  const State& state(int i) const { return states_[static_cast<size_t>(i)]; }
  Edge& edge(int i) { return edges_[static_cast<size_t>(i)]; }
  const Edge& edge(int i) const { return edges_[static_cast<size_t>(i)]; }
  size_t num_states() const { return states_.size(); }
  size_t num_edges() const { return edges_.size(); }

  int entry() const { return entry_; }
  void set_entry(int s) { entry_ = s; }

  /// Throws fact::Error if malformed: dangling edges, a state whose
  /// outgoing probabilities do not sum to 1, unreachable states, or no
  /// exec-boundary edge (the chain would have no renewal point).
  void validate() const;

  /// Graphviz rendering (state name + ops inside the node, probability and
  /// condition on the edges, like Figure 1(c)).
  std::string dot(const std::string& graph_name = "stg") const;

 private:
  std::vector<State> states_;
  std::vector<Edge> edges_;
  int entry_ = 0;
};

/// Stationary-distribution solver selection. The STG's transition matrix
/// is extremely sparse (branch factor <= 2 for almost every state), so the
/// sparse Gauss-Seidel solver wins asymptotically; the dense direct solver
/// stays exact and faster for small chains.
enum class MarkovSolver {
  Auto,    // dense at or below MarkovOptions::dense_cutoff states
  Dense,   // always Gaussian elimination (O(n^3), exact)
  Sparse,  // always Gauss-Seidel over CSR adjacency (dense on divergence)
};

struct MarkovOptions {
  MarkovSolver solver = MarkovSolver::Auto;
  /// Auto: chains with at most this many states use the dense solver
  /// (below this size the O(n^3) direct solve beats sweep overhead and is
  /// exact to machine precision).
  size_t dense_cutoff = 48;
  /// Sparse: converged when the L1 distance between consecutive
  /// normalized sweeps drops below this.
  double tolerance = 1e-12;
  /// Sparse: fall back to the dense solver after this many sweeps.
  int max_sweeps = 512;
};

/// Observability for benches ablating dense vs sparse.
struct MarkovStats {
  bool used_sparse = false;  // the returned pi came from Gauss-Seidel
  int sweeps = 0;            // Gauss-Seidel sweeps performed
  bool fell_back = false;    // sparse did not converge; dense solved it
};

/// Steady-state probability of every state (the method of ref [10] of the
/// paper): solves pi = pi * P with sum(pi) = 1. States that are transient
/// in the stationary distribution get probability 0. Throws fact::Error
/// when the chain has no unique stationary distribution (more or fewer
/// than one closed communicating class), whichever solver runs.
///
/// The default overload uses MarkovSolver::Auto: a dense direct solve for
/// small chains and sparse Gauss-Seidel over the incoming-edge CSR
/// adjacency above MarkovOptions::dense_cutoff. Both paths iterate states
/// in index order, so the result is deterministic for a given Stg.
std::vector<double> state_probabilities(const Stg& stg);
std::vector<double> state_probabilities(const Stg& stg,
                                        const MarkovOptions& opts,
                                        MarkovStats* stats = nullptr);

/// Average schedule length in cycles: the expected number of cycles to
/// complete one execution of the behavior. Computed as
///   1 / sum over boundary edges e of pi[from(e)] * prob(e),
/// i.e. the mean renewal interval of execution completions.
double average_schedule_length(const Stg& stg);
double average_schedule_length(const Stg& stg, const std::vector<double>& pi);

/// Relative frequency of each edge: pi[from(e)] * prob(e) (Section 4.1's
/// ranking key for partitioning).
std::vector<double> edge_frequencies(const Stg& stg);

}  // namespace fact::stg
