#include "workloads/workloads.hpp"

#include "lang/parser.hpp"
#include "util/error.hpp"

namespace fact::workloads {

namespace {

sim::InputSpec uniform(int64_t lo, int64_t hi) {
  sim::InputSpec s;
  s.kind = sim::InputSpec::Kind::Uniform;
  s.lo = lo;
  s.hi = hi;
  return s;
}

sim::InputSpec gaussian(double mean, double stddev, double rho, int64_t lo,
                        int64_t hi) {
  sim::InputSpec s;
  s.kind = sim::InputSpec::Kind::Gaussian;
  s.mean = mean;
  s.stddev = stddev;
  s.rho = rho;
  s.lo = lo;
  s.hi = hi;
  return s;
}

Workload make(const std::string& name, const std::string& source,
              hlslib::Allocation alloc, sim::TraceConfig trace) {
  Workload w;
  w.name = name;
  w.source = source;
  w.fn = lang::parse_function(source);
  w.allocation = std::move(alloc);
  w.trace = std::move(trace);
  return w;
}

}  // namespace

Workload make_gcd() {
  const std::string src = R"(
GCD(int a, int b) {
  while (a != b) {
    if (a > b) { a = a - b; } else { b = b - a; }
  }
  output a;
}
)";
  hlslib::Allocation alloc;
  alloc.counts = {{"sb1", 2}, {"cp1", 1}, {"e1", 1}};
  sim::TraceConfig tc;
  tc.params["a"] = uniform(1, 96);
  tc.params["b"] = uniform(1, 96);
  tc.executions = 24;
  return make("GCD", src, alloc, tc);
}

Workload make_fir() {
  // 8-tap FIR over 16 samples. Loop counters are FSM counters (Table 3
  // allocates no comparator); tap indexing uses the subtracters.
  const std::string src = R"(
FIR(int gain) {
  input int x[24];
  input int c[8];
  int y[16];
  int n = 8;
  while (n < 24) {
    int acc = 0;
    int k = 7;
    while (k >= 0) {
      acc = acc + c[k] * x[n - k];
      k = k - 1;
    }
    y[n - 8] = acc;
    n = n + 1;
  }
  output acc;
}
)";
  hlslib::Allocation alloc;
  alloc.counts = {{"a1", 1}, {"sb1", 4}, {"mt1", 1}, {"n1", 4}};
  sim::TraceConfig tc;
  tc.arrays["x"] = gaussian(0.0, 64.0, 0.9, -255, 255);
  tc.arrays["c"] = gaussian(0.0, 16.0, 0.0, -63, 63);
  tc.params["gain"] = uniform(1, 4);
  tc.executions = 16;
  return make("FIR", src, alloc, tc);
}

Workload make_test2() {
  // Figure 2(a): three independent loops; L1 and L2 stream one addition
  // each, L3 computes (y1+y2)-(y3+y4). All three can share the datapath,
  // which is what concurrent-loop scheduling and the Example 2 rewrite
  // exploit.
  const std::string src = R"(
TEST2(int a0, int b0) {
  input int x[200];
  int x1[200];
  input int z[400];
  int z1[400];
  input int y1[300];
  input int y2[300];
  input int y3[300];
  input int y4[300];
  int y[300];
  int i = 0;
  int j = 0;
  int m = 0;
  while (i < 200) {
    x1[i] = x[i] + a0;
    i = i + 1;
  }
  while (j < 400) {
    z1[j] = z[j] + b0;
    j = j + 1;
  }
  while (m < 300) {
    y[m] = (y1[m] + y2[m]) - (y3[m] + y4[m]);
    m = m + 1;
  }
  output m;
}
)";
  hlslib::Allocation alloc;
  alloc.counts = {{"a1", 2}, {"sb1", 2}, {"cp1", 2}, {"i1", 2}};
  sim::TraceConfig tc;
  tc.params["a0"] = gaussian(0.0, 32.0, 0.5, -127, 127);
  tc.params["b0"] = gaussian(0.0, 32.0, 0.5, -127, 127);
  for (const char* arr : {"x", "z", "y1", "y2", "y3", "y4"})
    tc.arrays[arr] = gaussian(0.0, 64.0, 0.9, -255, 255);
  tc.executions = 4;  // long executions; a few suffice for stable profiles
  return make("TEST2", src, alloc, tc);
}

Workload make_sintran() {
  // Sine transform with data-dependent sign handling: the inner-loop
  // conditional makes this control-flow intensive; s holds the sampled
  // sine table (signed), c is a comparison threshold input.
  const std::string src = R"(
SINTRAN(int c) {
  input int x[16];
  input int s[64];
  int y[16];
  int k = 0;
  while (k < 16) {
    int acc = 0;
    int j = 0;
    while (j < 16) {
      int w = s[j * k];
      if (w > c) {
        acc = acc + x[j] * w;
      } else {
        acc = acc - x[j] * w;
      }
      j = j + 1;
    }
    y[k] = acc;
    k = k + 1;
  }
  output acc;
}
)";
  hlslib::Allocation alloc;
  alloc.counts = {{"a1", 4}, {"sb1", 4}, {"mt1", 5},
                  {"cp1", 1}, {"i1", 1},  {"n1", 2}};
  sim::TraceConfig tc;
  tc.params["c"] = uniform(-16, 16);
  tc.arrays["x"] = gaussian(0.0, 32.0, 0.8, -127, 127);
  tc.arrays["s"] = gaussian(0.0, 48.0, 0.0, -127, 127);
  tc.executions = 8;
  return make("SINTRAN", src, alloc, tc);
}

Workload make_igf() {
  // Incomplete gamma function, Q10 fixed point: the series
  // term_{n+1} = term_n * xv * r[n] with a convergence test and a
  // data-dependent renormalization branch. r is a reciprocal table input.
  const std::string src = R"(
IGF(int xv, int eps, int big) {
  input int r[32];
  int sum = 1024;
  int term = 1024;
  int n = 0;
  int f = 0;
  while (term > eps) {
    term = (term * xv) >> 10;
    term = (term * r[n]) >> 10;
    if (term > big) {
      term = term >> 2;
      f = f + 1;
    } else {
      sum = sum + term;
    }
    n = n + 1;
  }
  output sum;
}
)";
  hlslib::Allocation alloc;
  alloc.counts = {{"a1", 1}, {"sb1", 1}, {"mt1", 2},
                  {"cp1", 1}, {"i1", 1},  {"s1", 1}};
  sim::TraceConfig tc;
  tc.params["xv"] = uniform(512, 900);    // x < 1 in Q10: series converges
  tc.params["eps"] = uniform(4, 16);
  tc.params["big"] = uniform(1400, 4096);
  tc.arrays["r"] = uniform(256, 1023);    // 1/(a+n) in Q10, decreasing-ish
  tc.executions = 24;
  return make("IGF", src, alloc, tc);
}

Workload make_pps() {
  // Parallel prefix sum: a pure reduction whose authored form is the
  // worst-case serial chain; associativity re-balancing recovers the
  // parallel-prefix shape. Only adders are allocated (Table 3).
  const std::string src = R"(
PPS(int x0, int x1, int x2, int x3, int x4, int x5, int x6, int x7) {
  int p = x0 + x1 + x2 + x3;
  int s = p + x4 + x5 + x6 + x7;
  output p;
  output s;
}
)";
  hlslib::Allocation alloc;
  alloc.counts = {{"a1", 5}};
  sim::TraceConfig tc;
  for (int i = 0; i < 8; ++i)
    tc.params["x" + std::to_string(i)] = gaussian(0.0, 64.0, 0.7, -255, 255);
  tc.executions = 8;
  return make("PPS", src, alloc, tc);
}

Workload make_test1() {
  // Figure 1(a), verbatim modulo syntax. Uses the Table 1 library
  // (comp1/cla1/incr1/w_mult1/mem1): two comparators, two adders, one
  // incrementer, one multiplier.
  const std::string src = R"(
TEST1(int c1, int c2) {
  int x[64];
  int i = 0;
  int a = 0;
  while (c2 > i) {
    if (i < c1) {
      int t1 = a + 7;
      a = 13 * t1;
    } else {
      a = a + 17;
    }
    i = i + 1;
    x[i] = a;
  }
  output a;
}
)";
  hlslib::Allocation alloc;
  alloc.counts = {{"comp1", 2}, {"cla1", 2}, {"incr1", 1}, {"w_mult1", 1}};
  sim::TraceConfig tc;
  // Chosen so the while closes with p ~ 0.98 and the if takes its then
  // branch with p ~ 0.37, as in Example 1.
  tc.params["c2"] = uniform(40, 60);
  tc.params["c1"] = uniform(14, 22);
  tc.executions = 32;
  return make("TEST1", src, alloc, tc);
}

std::vector<Workload> table2_benchmarks() {
  std::vector<Workload> v;
  v.push_back(make_gcd());
  v.push_back(make_fir());
  v.push_back(make_test2());
  v.push_back(make_sintran());
  v.push_back(make_igf());
  v.push_back(make_pps());
  return v;
}

Workload by_name(const std::string& name) {
  for (auto& w : table2_benchmarks())
    if (w.name == name) return std::move(w);
  if (name == "TEST1") return make_test1();
  throw Error("unknown workload '" + name + "'");
}

}  // namespace fact::workloads
