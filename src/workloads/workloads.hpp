#pragma once

#include <string>
#include <vector>

#include "hlslib/library.hpp"
#include "ir/function.hpp"
#include "sim/trace.hpp"

namespace fact::workloads {

/// One benchmark: behavior source, its parsed IR, the Table 3 allocation,
/// and the trace configuration that drives profiling and power estimation.
struct Workload {
  std::string name;
  std::string source;          // mini-language text (kept for docs/dumps)
  ir::Function fn;
  hlslib::Allocation allocation;
  sim::TraceConfig trace;
};

/// The six circuits of Table 2, with the allocation constraints of
/// Table 3 (a1/sb1/mt1/cp1/e1/i1/n1/s1 counts) re-authored from each
/// benchmark's published description:
///   GCD     - Euclid's algorithm by repeated subtraction
///   FIR     - 8-tap finite impulse response filter over 16 samples
///   Test2   - the three-concurrent-loop behavior of Figure 2(a)
///   SINTRAN - sine transform with data-dependent sign handling
///   IGF     - incomplete-gamma-function series with convergence test
///   PPS     - parallel prefix sum (reduction over eight inputs)
Workload make_gcd();
Workload make_fir();
Workload make_test2();
Workload make_sintran();
Workload make_igf();
Workload make_pps();

/// TEST1 of Figure 1 with the Table 1 library/allocation: the running
/// example of Sections 2 and 2.2.
Workload make_test1();

/// All six Table 2 benchmarks, in table order.
std::vector<Workload> table2_benchmarks();

/// Finds a benchmark by name (case-sensitive); throws if unknown.
Workload by_name(const std::string& name);

}  // namespace fact::workloads
