#include "sim/interp.hpp"

#include <cassert>

#include "util/error.hpp"

namespace fact::sim {

using ir::Expr;
using ir::ExprPtr;
using ir::Op;
using ir::Stmt;
using ir::StmtKind;

/// The compiled form of a behavior. Scalars live in a flat register file
/// and arrays in a flat memory file; expression trees are flattened into a
/// node pool addressed by index. Names survive only where the original
/// interpreter needed them: stimulus/observation keys and error messages.
struct Interpreter::Program {
  struct ENode {
    Op op;
    int32_t a = -1, b = -1, c = -1;  // child indices into `enodes`
    int32_t slot = -1;  // Var: register; ArrayRead: memory (-1 = undeclared)
    int32_t name = -1;  // ArrayRead: index into `names` for error messages
    int64_t cval = 0;   // Const only
  };
  struct SNode {
    StmtKind kind;
    int32_t slot = -1;      // Assign: register; Store: memory (-1 = undeclared)
    int32_t name = -1;      // Store: index into `names` for error messages
    int32_t e0 = -1;        // Assign/Store value; If/While condition
    int32_t e1 = -1;        // Store index
    int32_t branch = -1;    // If/While: dense branch-counter index
    std::vector<SNode> then_s, else_s;  // If arms; While/Block body in then_s
  };
  struct ArrayInfo {
    std::string name;
    size_t size = 0;
    bool is_input = false;
  };

  std::string fn_name;  // for the step-limit diagnostic
  std::vector<ENode> enodes;
  std::vector<SNode> top;
  int32_t num_regs = 0;
  std::vector<std::pair<std::string, int32_t>> params;   // stimulus -> register
  std::vector<std::pair<std::string, int32_t>> outputs;  // register -> output
  std::vector<ArrayInfo> arrays;  // memory slot = index in declaration order
  std::vector<int> branch_ids;    // branch counter -> statement id
  std::vector<std::string> names; // error-message pool
};

namespace {

int64_t wrap_index(int64_t idx, size_t size) {
  const int64_t n = static_cast<int64_t>(size);
  int64_t m = idx % n;
  if (m < 0) m += n;
  return m;
}

/// One-shot translation of a Function into a Program.
class Compiler {
 public:
  explicit Compiler(const ir::Function& fn) {
    prog_ = std::make_shared<Interpreter::Program>();
    prog_->fn_name = fn.name();
    for (const auto& a : fn.arrays()) {
      if (!array_slots_.count(a.name))
        array_slots_.emplace(a.name,
                             static_cast<int32_t>(prog_->arrays.size()));
      prog_->arrays.push_back({a.name, a.size, a.is_input});
    }
    for (const auto& p : fn.params())
      prog_->params.emplace_back(p, reg(p));
    if (fn.body())
      for (const auto& s : fn.body()->stmts) prog_->top.push_back(stmt(*s));
    for (const auto& o : fn.outputs())
      prog_->outputs.emplace_back(o, reg(o));
    prog_->num_regs = static_cast<int32_t>(reg_slots_.size());
  }

  std::shared_ptr<const Interpreter::Program> take() { return prog_; }

 private:
  int32_t reg(const std::string& n) {
    auto [it, fresh] =
        reg_slots_.emplace(n, static_cast<int32_t>(reg_slots_.size()));
    (void)fresh;
    return it->second;
  }

  int32_t intern(const std::string& n) {
    auto [it, fresh] =
        name_pool_.emplace(n, static_cast<int32_t>(prog_->names.size()));
    if (fresh) prog_->names.push_back(n);
    return it->second;
  }

  int32_t array_slot(const std::string& n) const {
    auto it = array_slots_.find(n);
    return it == array_slots_.end() ? -1 : it->second;
  }

  int32_t expr(const ExprPtr& e) {
    Interpreter::Program::ENode n;
    n.op = e->op();
    switch (e->op()) {
      case Op::Const:
        n.cval = e->value();
        break;
      case Op::Var:
        n.slot = reg(e->name());
        break;
      case Op::ArrayRead:
        n.slot = array_slot(e->name());
        n.name = intern(e->name());
        n.a = expr(e->arg(0));
        break;
      default:
        n.a = expr(e->arg(0));
        if (e->num_args() > 1) n.b = expr(e->arg(1));
        if (e->num_args() > 2) n.c = expr(e->arg(2));
        break;
    }
    prog_->enodes.push_back(n);
    return static_cast<int32_t>(prog_->enodes.size()) - 1;
  }

  std::vector<Interpreter::Program::SNode> stmt_list(
      const std::vector<ir::StmtPtr>& list) {
    std::vector<Interpreter::Program::SNode> out;
    out.reserve(list.size());
    for (const auto& s : list) out.push_back(stmt(*s));
    return out;
  }

  Interpreter::Program::SNode stmt(const Stmt& s) {
    Interpreter::Program::SNode n;
    n.kind = s.kind;
    switch (s.kind) {
      case StmtKind::Assign:
        n.slot = reg(s.target);
        n.e0 = expr(s.value);
        break;
      case StmtKind::Store:
        n.slot = array_slot(s.target);
        n.name = intern(s.target);
        n.e1 = expr(s.index);
        n.e0 = expr(s.value);
        break;
      case StmtKind::If:
        n.e0 = expr(s.cond);
        n.branch = branch(s.id);
        n.then_s = stmt_list(s.then_stmts);
        n.else_s = stmt_list(s.else_stmts);
        break;
      case StmtKind::While:
        n.e0 = expr(s.cond);
        n.branch = branch(s.id);
        n.then_s = stmt_list(s.then_stmts);
        break;
      case StmtKind::Block:
        n.then_s = stmt_list(s.stmts);
        break;
    }
    return n;
  }

  int32_t branch(int stmt_id) {
    prog_->branch_ids.push_back(stmt_id);
    return static_cast<int32_t>(prog_->branch_ids.size()) - 1;
  }

  std::shared_ptr<Interpreter::Program> prog_;
  std::map<std::string, int32_t> reg_slots_;
  std::map<std::string, int32_t> array_slots_;
  std::map<std::string, int32_t> name_pool_;
};

/// Executes a compiled Program over one stimulus.
class Machine {
 public:
  Machine(const Interpreter::Program& p, uint64_t max_steps)
      : p_(p),
        regs_(static_cast<size_t>(p.num_regs), 0),
        mems_(p.arrays.size()),
        branches_(p.branch_ids.size()),
        max_steps_(max_steps) {}

  void init(const Stimulus& in) {
    for (const auto& [name, slot] : p_.params) {
      auto it = in.params.find(name);
      // Uninitialized scalars read as 0, matching a register that was
      // never written.
      regs_[static_cast<size_t>(slot)] =
          it == in.params.end() ? 0 : it->second;
    }
    for (size_t i = 0; i < p_.arrays.size(); ++i) {
      const auto& a = p_.arrays[i];
      auto& mem = mems_[i];
      mem.assign(a.size, 0);
      if (a.is_input) {
        auto it = in.arrays.find(a.name);
        if (it != in.arrays.end()) {
          const size_t n = std::min(a.size, it->second.size());
          for (size_t j = 0; j < n; ++j) mem[j] = it->second[j];
        }
      }
    }
  }

  void run() { exec_list(p_.top); }

  /// Folds accumulated counters into `stats` (branches a behavior never
  /// reached stay absent from the map, as before).
  void flush(RunStats& stats) const {
    stats.steps += steps_;
    for (size_t i = 0; i < branches_.size(); ++i) {
      const BranchStats& b = branches_[i];
      if (b.total == 0) continue;
      auto& d = stats.branches[p_.branch_ids[i]];
      d.taken += b.taken;
      d.total += b.total;
    }
  }

  Observation take_observation() {
    Observation obs;
    for (const auto& [name, slot] : p_.outputs)
      obs.outputs.emplace(name, regs_[static_cast<size_t>(slot)]);
    for (size_t i = 0; i < p_.arrays.size(); ++i)
      obs.arrays.emplace(p_.arrays[i].name, std::move(mems_[i]));
    return obs;
  }

 private:
  int64_t eval(int32_t idx) {
    const auto& n = p_.enodes[static_cast<size_t>(idx)];
    switch (n.op) {
      case Op::Const:
        return n.cval;
      case Op::Var:
        return regs_[static_cast<size_t>(n.slot)];
      case Op::ArrayRead: {
        if (n.slot < 0 || mems_[static_cast<size_t>(n.slot)].empty())
          throw Error("read of unknown array '" +
                      p_.names[static_cast<size_t>(n.name)] + "'");
        auto& mem = mems_[static_cast<size_t>(n.slot)];
        const int64_t i = eval(n.a);
        return mem[static_cast<size_t>(wrap_index(i, mem.size()))];
      }
      case Op::Add:
        return eval(n.a) + eval(n.b);
      case Op::Sub:
        return eval(n.a) - eval(n.b);
      case Op::Mul:
        return eval(n.a) * eval(n.b);
      case Op::Lt:
        return eval(n.a) < eval(n.b) ? 1 : 0;
      case Op::Le:
        return eval(n.a) <= eval(n.b) ? 1 : 0;
      case Op::Gt:
        return eval(n.a) > eval(n.b) ? 1 : 0;
      case Op::Ge:
        return eval(n.a) >= eval(n.b) ? 1 : 0;
      case Op::Eq:
        return eval(n.a) == eval(n.b) ? 1 : 0;
      case Op::Ne:
        return eval(n.a) != eval(n.b) ? 1 : 0;
      case Op::BitNot:
        return ~eval(n.a);
      case Op::Shl: {
        const int64_t sh = eval(n.b) & 63;
        return static_cast<int64_t>(static_cast<uint64_t>(eval(n.a)) << sh);
      }
      case Op::Shr: {
        const int64_t sh = eval(n.b) & 63;
        return eval(n.a) >> sh;
      }
      case Op::And:
        // Both operands always evaluate (hardware evaluates both cones).
        return (eval(n.a) != 0 && eval(n.b) != 0) ? 1 : 0;
      case Op::Or:
        return (eval(n.a) != 0 || eval(n.b) != 0) ? 1 : 0;
      case Op::Not:
        return eval(n.a) == 0 ? 1 : 0;
      case Op::Select:
        return eval(n.a) != 0 ? eval(n.b) : eval(n.c);
    }
    throw Error("eval: unknown op");
  }

  void tick() {
    if (++steps_ > max_steps_)
      throw Error("interpreter exceeded step limit in '" + p_.fn_name + "'");
  }

  void note_branch(int32_t idx, bool taken) {
    BranchStats& b = branches_[static_cast<size_t>(idx)];
    b.total++;
    if (taken) b.taken++;
  }

  void exec_list(const std::vector<Interpreter::Program::SNode>& list) {
    for (const auto& s : list) exec(s);
  }

  void exec(const Interpreter::Program::SNode& s) {
    tick();
    switch (s.kind) {
      case StmtKind::Assign:
        regs_[static_cast<size_t>(s.slot)] = eval(s.e0);
        break;
      case StmtKind::Store: {
        if (s.slot < 0)
          throw Error("store to unknown array '" +
                      p_.names[static_cast<size_t>(s.name)] + "'");
        auto& mem = mems_[static_cast<size_t>(s.slot)];
        const int64_t idx = eval(s.e1);
        const int64_t val = eval(s.e0);
        mem[static_cast<size_t>(wrap_index(idx, mem.size()))] = val;
        break;
      }
      case StmtKind::If: {
        const bool taken = eval(s.e0) != 0;
        note_branch(s.branch, taken);
        exec_list(taken ? s.then_s : s.else_s);
        break;
      }
      case StmtKind::While:
        for (;;) {
          const bool closed = eval(s.e0) != 0;
          note_branch(s.branch, closed);
          if (!closed) break;
          tick();
          exec_list(s.then_s);
        }
        break;
      case StmtKind::Block:
        exec_list(s.then_s);
        break;
    }
  }

  const Interpreter::Program& p_;
  std::vector<int64_t> regs_;
  std::vector<std::vector<int64_t>> mems_;
  std::vector<BranchStats> branches_;
  uint64_t max_steps_;
  uint64_t steps_ = 0;
};

/// Environment for the one-shot static eval (tests and constant reasoning
/// in transformations) — not used on the trace-interpretation hot path.
struct Env {
  const std::map<std::string, int64_t>& scalars;
  const std::map<std::string, std::vector<int64_t>>& arrays;
};

int64_t eval_expr(const ExprPtr& e, const Env& env) {
  switch (e->op()) {
    case Op::Const:
      return e->value();
    case Op::Var: {
      auto it = env.scalars.find(e->name());
      return it == env.scalars.end() ? 0 : it->second;
    }
    case Op::ArrayRead: {
      auto it = env.arrays.find(e->name());
      if (it == env.arrays.end() || it->second.empty())
        throw Error("read of unknown array '" + e->name() + "'");
      const int64_t idx = eval_expr(e->arg(0), env);
      return it->second[static_cast<size_t>(
          wrap_index(idx, it->second.size()))];
    }
    case Op::Add:
      return eval_expr(e->arg(0), env) + eval_expr(e->arg(1), env);
    case Op::Sub:
      return eval_expr(e->arg(0), env) - eval_expr(e->arg(1), env);
    case Op::Mul:
      return eval_expr(e->arg(0), env) * eval_expr(e->arg(1), env);
    case Op::Lt:
      return eval_expr(e->arg(0), env) < eval_expr(e->arg(1), env) ? 1 : 0;
    case Op::Le:
      return eval_expr(e->arg(0), env) <= eval_expr(e->arg(1), env) ? 1 : 0;
    case Op::Gt:
      return eval_expr(e->arg(0), env) > eval_expr(e->arg(1), env) ? 1 : 0;
    case Op::Ge:
      return eval_expr(e->arg(0), env) >= eval_expr(e->arg(1), env) ? 1 : 0;
    case Op::Eq:
      return eval_expr(e->arg(0), env) == eval_expr(e->arg(1), env) ? 1 : 0;
    case Op::Ne:
      return eval_expr(e->arg(0), env) != eval_expr(e->arg(1), env) ? 1 : 0;
    case Op::BitNot:
      return ~eval_expr(e->arg(0), env);
    case Op::Shl: {
      const int64_t sh = eval_expr(e->arg(1), env) & 63;
      return static_cast<int64_t>(
          static_cast<uint64_t>(eval_expr(e->arg(0), env)) << sh);
    }
    case Op::Shr: {
      const int64_t sh = eval_expr(e->arg(1), env) & 63;
      return eval_expr(e->arg(0), env) >> sh;
    }
    case Op::And:
      return (eval_expr(e->arg(0), env) != 0 && eval_expr(e->arg(1), env) != 0)
                 ? 1
                 : 0;
    case Op::Or:
      return (eval_expr(e->arg(0), env) != 0 || eval_expr(e->arg(1), env) != 0)
                 ? 1
                 : 0;
    case Op::Not:
      return eval_expr(e->arg(0), env) == 0 ? 1 : 0;
    case Op::Select:
      return eval_expr(e->arg(0), env) != 0 ? eval_expr(e->arg(1), env)
                                            : eval_expr(e->arg(2), env);
  }
  throw Error("eval: unknown op");
}

}  // namespace

double RunStats::branch_prob(int stmt_id, double fallback) const {
  auto it = branches.find(stmt_id);
  if (it == branches.end() || it->second.total == 0) return fallback;
  return it->second.probability();
}

double RunStats::expected_iterations(int stmt_id, double fallback) const {
  auto it = branches.find(stmt_id);
  if (it == branches.end() || it->second.total == 0) return fallback;
  const double p = it->second.probability();
  if (p >= 1.0) return 1e9;  // never-exiting loop observed; effectively inf
  return p / (1.0 - p);
}

void RunStats::merge(const RunStats& other) {
  for (const auto& [id, b] : other.branches) {
    branches[id].taken += b.taken;
    branches[id].total += b.total;
  }
  steps += other.steps;
}

Interpreter::Interpreter(const ir::Function& fn)
    : prog_(Compiler(fn).take()) {}

Observation Interpreter::run(const Stimulus& in, RunStats* stats) const {
  Machine m(*prog_, max_steps_);
  m.init(in);
  m.run();
  if (stats) m.flush(*stats);
  return m.take_observation();
}

int64_t Interpreter::eval(
    const ir::ExprPtr& e, const std::map<std::string, int64_t>& scalars,
    const std::map<std::string, std::vector<int64_t>>& arrays) {
  Env env{scalars, arrays};
  return eval_expr(e, env);
}

}  // namespace fact::sim
