#include "sim/interp.hpp"

#include <cassert>

#include "util/error.hpp"

namespace fact::sim {

using ir::Expr;
using ir::ExprPtr;
using ir::Op;
using ir::Stmt;
using ir::StmtKind;

namespace {

int64_t wrap_index(int64_t idx, size_t size) {
  const int64_t n = static_cast<int64_t>(size);
  int64_t m = idx % n;
  if (m < 0) m += n;
  return m;
}

struct Env {
  std::map<std::string, int64_t> scalars;
  std::map<std::string, std::vector<int64_t>> arrays;
};

int64_t eval_expr(const ExprPtr& e, const Env& env) {
  switch (e->op()) {
    case Op::Const:
      return e->value();
    case Op::Var: {
      auto it = env.scalars.find(e->name());
      // Uninitialized scalars read as 0, matching a register that was
      // never written.
      return it == env.scalars.end() ? 0 : it->second;
    }
    case Op::ArrayRead: {
      auto it = env.arrays.find(e->name());
      if (it == env.arrays.end() || it->second.empty())
        throw Error("read of unknown array '" + e->name() + "'");
      const int64_t idx = eval_expr(e->arg(0), env);
      return it->second[static_cast<size_t>(
          wrap_index(idx, it->second.size()))];
    }
    case Op::Add:
      return eval_expr(e->arg(0), env) + eval_expr(e->arg(1), env);
    case Op::Sub:
      return eval_expr(e->arg(0), env) - eval_expr(e->arg(1), env);
    case Op::Mul:
      return eval_expr(e->arg(0), env) * eval_expr(e->arg(1), env);
    case Op::Lt:
      return eval_expr(e->arg(0), env) < eval_expr(e->arg(1), env) ? 1 : 0;
    case Op::Le:
      return eval_expr(e->arg(0), env) <= eval_expr(e->arg(1), env) ? 1 : 0;
    case Op::Gt:
      return eval_expr(e->arg(0), env) > eval_expr(e->arg(1), env) ? 1 : 0;
    case Op::Ge:
      return eval_expr(e->arg(0), env) >= eval_expr(e->arg(1), env) ? 1 : 0;
    case Op::Eq:
      return eval_expr(e->arg(0), env) == eval_expr(e->arg(1), env) ? 1 : 0;
    case Op::Ne:
      return eval_expr(e->arg(0), env) != eval_expr(e->arg(1), env) ? 1 : 0;
    case Op::BitNot:
      return ~eval_expr(e->arg(0), env);
    case Op::Shl: {
      const int64_t sh = eval_expr(e->arg(1), env) & 63;
      return static_cast<int64_t>(static_cast<uint64_t>(eval_expr(e->arg(0), env))
                                  << sh);
    }
    case Op::Shr: {
      const int64_t sh = eval_expr(e->arg(1), env) & 63;
      return eval_expr(e->arg(0), env) >> sh;
    }
    case Op::And:
      return (eval_expr(e->arg(0), env) != 0 && eval_expr(e->arg(1), env) != 0)
                 ? 1
                 : 0;
    case Op::Or:
      return (eval_expr(e->arg(0), env) != 0 || eval_expr(e->arg(1), env) != 0)
                 ? 1
                 : 0;
    case Op::Not:
      return eval_expr(e->arg(0), env) == 0 ? 1 : 0;
    case Op::Select:
      return eval_expr(e->arg(0), env) != 0 ? eval_expr(e->arg(1), env)
                                            : eval_expr(e->arg(2), env);
  }
  throw Error("eval: unknown op");
}

class Machine {
 public:
  Machine(const ir::Function& fn, Env env, uint64_t max_steps, RunStats* stats)
      : fn_(fn), env_(std::move(env)), max_steps_(max_steps), stats_(stats) {}

  void exec_list(const std::vector<ir::StmtPtr>& list) {
    for (const auto& s : list) exec(*s);
  }

  Env take_env() { return std::move(env_); }

 private:
  void note_branch(int id, bool taken) {
    if (!stats_) return;
    auto& b = stats_->branches[id];
    b.total++;
    if (taken) b.taken++;
  }

  void tick() {
    if (stats_) stats_->steps++;
    if (++steps_ > max_steps_)
      throw Error("interpreter exceeded step limit in '" + fn_.name() + "'");
  }

  void exec(const Stmt& s) {
    tick();
    switch (s.kind) {
      case StmtKind::Assign:
        env_.scalars[s.target] = eval_expr(s.value, env_);
        break;
      case StmtKind::Store: {
        auto it = env_.arrays.find(s.target);
        if (it == env_.arrays.end())
          throw Error("store to unknown array '" + s.target + "'");
        const int64_t idx = eval_expr(s.index, env_);
        const int64_t val = eval_expr(s.value, env_);
        it->second[static_cast<size_t>(wrap_index(idx, it->second.size()))] =
            val;
        break;
      }
      case StmtKind::If: {
        const bool taken = eval_expr(s.cond, env_) != 0;
        note_branch(s.id, taken);
        exec_list(taken ? s.then_stmts : s.else_stmts);
        break;
      }
      case StmtKind::While:
        for (;;) {
          const bool closed = eval_expr(s.cond, env_) != 0;
          note_branch(s.id, closed);
          if (!closed) break;
          tick();
          exec_list(s.then_stmts);
        }
        break;
      case StmtKind::Block:
        exec_list(s.stmts);
        break;
    }
  }

  const ir::Function& fn_;
  Env env_;
  uint64_t max_steps_;
  RunStats* stats_;
  uint64_t steps_ = 0;
};

}  // namespace

double RunStats::branch_prob(int stmt_id, double fallback) const {
  auto it = branches.find(stmt_id);
  if (it == branches.end() || it->second.total == 0) return fallback;
  return it->second.probability();
}

double RunStats::expected_iterations(int stmt_id, double fallback) const {
  auto it = branches.find(stmt_id);
  if (it == branches.end() || it->second.total == 0) return fallback;
  const double p = it->second.probability();
  if (p >= 1.0) return 1e9;  // never-exiting loop observed; effectively inf
  return p / (1.0 - p);
}

void RunStats::merge(const RunStats& other) {
  for (const auto& [id, b] : other.branches) {
    branches[id].taken += b.taken;
    branches[id].total += b.total;
  }
  steps += other.steps;
}

Observation Interpreter::run(const Stimulus& in, RunStats* stats) const {
  Env env;
  for (const auto& p : fn_.params()) {
    auto it = in.params.find(p);
    env.scalars[p] = it == in.params.end() ? 0 : it->second;
  }
  for (const auto& a : fn_.arrays()) {
    auto& mem = env.arrays[a.name];
    mem.assign(a.size, 0);
    if (a.is_input) {
      auto it = in.arrays.find(a.name);
      if (it != in.arrays.end()) {
        const size_t n = std::min(a.size, it->second.size());
        for (size_t i = 0; i < n; ++i) mem[i] = it->second[i];
      }
    }
  }

  Machine m(fn_, std::move(env), max_steps_, stats);
  assert(fn_.body() && fn_.body()->kind == StmtKind::Block);
  m.exec_list(fn_.body()->stmts);
  Env final_env = m.take_env();

  Observation obs;
  for (const auto& o : fn_.outputs()) {
    auto it = final_env.scalars.find(o);
    obs.outputs[o] = it == final_env.scalars.end() ? 0 : it->second;
  }
  obs.arrays = std::move(final_env.arrays);
  return obs;
}

int64_t Interpreter::eval(
    const ir::ExprPtr& e, const std::map<std::string, int64_t>& scalars,
    const std::map<std::string, std::vector<int64_t>>& arrays) {
  Env env{scalars, arrays};
  return eval_expr(e, env);
}

}  // namespace fact::sim
