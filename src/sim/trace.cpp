#include "sim/trace.hpp"

#include <algorithm>
#include <cmath>

#include "obs/metrics.hpp"

namespace fact::sim {

namespace {

int64_t clamp(int64_t v, int64_t lo, int64_t hi) {
  return std::min(std::max(v, lo), hi);
}

class SpecSampler {
 public:
  SpecSampler(const InputSpec& spec, Rng& rng)
      : spec_(spec), rng_(rng), filter_(spec.rho) {}

  int64_t next() {
    switch (spec_.kind) {
      case InputSpec::Kind::Constant:
        return spec_.constant;
      case InputSpec::Kind::Uniform:
        return rng_.uniform_int(spec_.lo, spec_.hi);
      case InputSpec::Kind::Gaussian: {
        const double v =
            spec_.mean + spec_.stddev * filter_.step(rng_.gaussian());
        return clamp(static_cast<int64_t>(std::llround(v)), spec_.lo, spec_.hi);
      }
    }
    return 0;
  }

 private:
  const InputSpec& spec_;
  Rng& rng_;
  Ar1Filter filter_;
};

const InputSpec& spec_or_default(const std::map<std::string, InputSpec>& m,
                                 const std::string& name) {
  static const InputSpec kDefault{InputSpec::Kind::Gaussian, 8.0, 4.0, 0.8,
                                  0, 16, 0};
  auto it = m.find(name);
  return it == m.end() ? kDefault : it->second;
}

}  // namespace

Trace generate_trace(const ir::Function& fn, const TraceConfig& config,
                     uint64_t seed) {
  static obs::Counter& traces = obs::Registry::global().counter(
      "fact_sim_traces_generated_total", "Stimulus traces generated");
  traces.inc();
  Rng rng(seed);
  Trace trace;
  trace.reserve(config.executions);

  // One persistent sampler per input so temporal correlation spans the
  // whole trace, as in the paper's AR-filtered stimuli.
  std::map<std::string, SpecSampler> param_samplers;
  for (const auto& p : fn.params())
    param_samplers.emplace(p,
                           SpecSampler(spec_or_default(config.params, p), rng));
  std::map<std::string, SpecSampler> array_samplers;
  for (const auto& a : fn.arrays())
    if (a.is_input)
      array_samplers.emplace(
          a.name, SpecSampler(spec_or_default(config.arrays, a.name), rng));

  for (size_t e = 0; e < config.executions; ++e) {
    Stimulus s;
    for (const auto& p : fn.params()) s.params[p] = param_samplers.at(p).next();
    for (const auto& a : fn.arrays()) {
      if (!a.is_input) continue;
      auto& mem = s.arrays[a.name];
      mem.reserve(a.size);
      auto& sampler = array_samplers.at(a.name);
      for (size_t i = 0; i < a.size; ++i) mem.push_back(sampler.next());
    }
    trace.push_back(std::move(s));
  }
  return trace;
}

Profile profile_function(const ir::Function& fn, const Trace& trace) {
  static obs::Counter& profiles = obs::Registry::global().counter(
      "fact_sim_profiles_total", "Function profiling passes over a trace");
  profiles.inc();
  Interpreter interp(fn);
  Profile profile;
  for (const auto& stimulus : trace) {
    RunStats stats;
    interp.run(stimulus, &stats);
    profile.stats.merge(stats);
    profile.executions++;
  }
  return profile;
}

bool equivalent_on_trace(const ir::Function& a, const ir::Function& b,
                         const Trace& trace) {
  Interpreter ia(a);
  Interpreter ib(b);
  for (const auto& stimulus : trace) {
    const Observation oa = ia.run(stimulus);
    const Observation ob = ib.run(stimulus);
    if (!(oa == ob)) return false;
  }
  return true;
}

}  // namespace fact::sim
