#pragma once

#include <map>
#include <string>
#include <vector>

#include "sim/interp.hpp"
#include "util/rng.hpp"

namespace fact::sim {

/// How to generate values for one input (scalar parameter or input array).
/// The paper derives its power-estimation inputs from a zero-mean Gaussian
/// sequence passed through an autoregressive filter (Section 5); Gaussian
/// is therefore the default. Values are clamped into [lo, hi] so behaviors
/// with data-dependent loop bounds stay in their intended operating range.
struct InputSpec {
  enum class Kind { Gaussian, Uniform, Constant } kind = Kind::Gaussian;
  double mean = 0.0;
  double stddev = 1.0;
  double rho = 0.9;  // AR(1) temporal correlation (Gaussian only)
  int64_t lo = -1'000'000;
  int64_t hi = 1'000'000;
  int64_t constant = 0;
};

/// Trace configuration: a spec per scalar parameter and per input array.
/// Unspecified inputs default to a mild Gaussian.
struct TraceConfig {
  std::map<std::string, InputSpec> params;
  std::map<std::string, InputSpec> arrays;
  size_t executions = 32;  // number of stimuli in the trace
};

/// A "typical input trace": one Stimulus per execution of the behavior.
using Trace = std::vector<Stimulus>;

/// Generates a deterministic trace for `fn` from `config` and `seed`.
Trace generate_trace(const ir::Function& fn, const TraceConfig& config,
                     uint64_t seed);

/// Profiling result: aggregated branch statistics over a full trace.
struct Profile {
  RunStats stats;
  size_t executions = 0;

  double branch_prob(int stmt_id, double fallback = 0.5) const {
    return stats.branch_prob(stmt_id, fallback);
  }
  double expected_iterations(int stmt_id, double fallback = 1.0) const {
    return stats.expected_iterations(stmt_id, fallback);
  }
  /// Average statements executed per execution (a coarse software cost).
  double avg_steps() const {
    return executions == 0
               ? 0.0
               : static_cast<double>(stats.steps) / static_cast<double>(executions);
  }
};

/// Simulates the behavior over the whole trace and aggregates branch
/// statistics. This is the paper's "simulation is done only once during an
/// execution of the algorithm" step: the resulting probabilities are reused
/// by the scheduler, the STG analysis and the power model.
Profile profile_function(const ir::Function& fn, const Trace& trace);

/// Runs both functions over the trace and returns true iff every execution
/// produces identical observations. Used to check that transformations
/// preserve functionality.
bool equivalent_on_trace(const ir::Function& a, const ir::Function& b,
                         const Trace& trace);

}  // namespace fact::sim
