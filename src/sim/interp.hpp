#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ir/function.hpp"

namespace fact::sim {

/// One set of inputs for one execution of a behavior: values for every
/// scalar parameter and initial contents for every `input` array.
struct Stimulus {
  std::map<std::string, int64_t> params;
  std::map<std::string, std::vector<int64_t>> arrays;
};

/// Observable results of one execution: declared output scalars plus the
/// final contents of every array. Used to check functional equivalence
/// between original and transformed behaviors.
struct Observation {
  std::map<std::string, int64_t> outputs;
  std::map<std::string, std::vector<int64_t>> arrays;

  bool operator==(const Observation& other) const = default;
};

/// Per-branch execution counts keyed by statement id. For an If, `taken`
/// counts executions where the condition was true. For a While, `taken`
/// counts evaluations where the loop closed (condition true).
struct BranchStats {
  uint64_t taken = 0;
  uint64_t total = 0;

  double probability() const {
    return total == 0 ? 0.0 : static_cast<double>(taken) / static_cast<double>(total);
  }
};

/// Result of interpreting a behavior over one or more stimuli.
struct RunStats {
  std::map<int, BranchStats> branches;  // stmt id -> stats
  uint64_t steps = 0;                   // statements executed

  /// Branch probability for a statement id; `fallback` if never executed.
  double branch_prob(int stmt_id, double fallback = 0.5) const;
  /// Expected iterations of a While = p/(1-p) where p is its closing prob.
  double expected_iterations(int stmt_id, double fallback = 1.0) const;

  void merge(const RunStats& other);
};

/// Reference interpreter for the behavior IR.
///
/// Semantics notes:
///  * all values are int64; comparisons and boolean connectives yield 0/1;
///  * array indices wrap modulo the array size (memories alias like real
///    address decoders), so every store/read is defined for any index;
///  * `&&`/`||` evaluate both operands (hardware evaluates both cones);
///  * execution aborts with fact::Error after `max_steps` statements,
///    which catches accidentally non-terminating behaviors.
///
/// Construction compiles the function once into a slot-indexed program:
/// every scalar and array name is resolved to a dense register/memory
/// index, so per-stimulus execution never touches a string. The optimizer
/// interprets each candidate over a whole trace (profiling plus the
/// equivalence check), which made string-keyed environment lookups the
/// single largest cost of a FACT run. The compiled program snapshots the
/// function: the Function need not outlive the Interpreter.
class Interpreter {
 public:
  explicit Interpreter(const ir::Function& fn);

  void set_max_steps(uint64_t n) { max_steps_ = n; }

  /// Runs one execution; accumulates branch statistics into `stats` if
  /// non-null. (On an aborted run — step limit, unknown array — `stats`
  /// is left untouched rather than partially updated.)
  Observation run(const Stimulus& in, RunStats* stats = nullptr) const;

  /// Evaluates a single expression in an environment (exposed for tests
  /// and for constant reasoning in transformations).
  static int64_t eval(const ir::ExprPtr& e,
                      const std::map<std::string, int64_t>& scalars,
                      const std::map<std::string, std::vector<int64_t>>& arrays);

  struct Program;  // compiled form; defined in interp.cpp

 private:
  std::shared_ptr<const Program> prog_;
  uint64_t max_steps_ = 10'000'000;
};

}  // namespace fact::sim
