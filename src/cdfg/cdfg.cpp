#include "cdfg/cdfg.hpp"

#include <limits>
#include <map>
#include <optional>
#include <set>

#include "util/dot.hpp"
#include "util/strfmt.hpp"

namespace fact::cdfg {

using ir::Expr;
using ir::ExprPtr;
using ir::Op;
using ir::Stmt;
using ir::StmtKind;

int Cdfg::add_node(Node n) {
  nodes_.push_back(std::move(n));
  return static_cast<int>(nodes_.size()) - 1;
}

bool Cdfg::mutually_exclusive(int a, int b) const {
  // Collect (guard node, polarity) pairs up each guard chain; the nodes
  // are mutually exclusive if some condition appears with opposite
  // polarities.
  auto chain = [&](int n) {
    std::map<int, bool> guards;
    int cur = node(n).guard;
    bool pol = node(n).guard_polarity;
    std::set<int> seen;
    while (cur >= 0 && !seen.count(cur)) {
      seen.insert(cur);
      guards.emplace(cur, pol);
      pol = node(cur).guard_polarity;
      cur = node(cur).guard;
    }
    return guards;
  };
  const auto ga = chain(a);
  const auto gb = chain(b);
  for (const auto& [g, pol] : ga) {
    auto it = gb.find(g);
    if (it != gb.end() && it->second != pol) return true;
  }
  return false;
}

std::string Cdfg::dot(const std::string& graph_name) const {
  DotWriter w(graph_name);
  for (size_t i = 0; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    std::string attrs = "shape=ellipse";
    switch (n.kind) {
      case NodeKind::Const:
      case NodeKind::Input:
        attrs = "shape=plaintext";
        break;
      case NodeKind::Join:
        attrs = "shape=diamond";
        break;
      case NodeKind::Select:
        attrs = "shape=trapezium";
        break;
      case NodeKind::Output:
        attrs = "shape=box";
        break;
      case NodeKind::Op:
        break;
    }
    w.node(strfmt("n%zu", i), n.label.empty() ? n.name : n.label, attrs);
  }
  for (size_t i = 0; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    for (int p : n.data_preds) w.edge(strfmt("n%d", p), strfmt("n%zu", i));
    if (n.guard >= 0)
      w.edge(strfmt("n%d", n.guard), strfmt("n%zu", i),
             n.guard_polarity ? "+" : "-", "style=dashed");
  }
  return w.str();
}

namespace {

std::set<std::string> assigned_vars(const std::vector<ir::StmtPtr>& stmts) {
  std::set<std::string> vars;
  for (const auto& s : stmts) {
    if (s->kind == StmtKind::Assign) vars.insert(s->target);
    for (const auto* list : s->child_lists()) {
      auto sub = assigned_vars(*list);
      vars.insert(sub.begin(), sub.end());
    }
  }
  return vars;
}

class CdfgBuilder {
 public:
  Cdfg build(const ir::Function& fn) {
    for (const auto& s : fn.body()->stmts) exec(*s);
    for (const auto& o : fn.outputs()) {
      Node out;
      out.kind = NodeKind::Output;
      out.name = o;
      out.label = "out:" + o;
      out.data_preds.push_back(lookup(o));
      g_.add_node(std::move(out));
    }
    return std::move(g_);
  }

 private:
  int lookup(const std::string& var) {
    auto it = env_.find(var);
    if (it != env_.end()) return it->second;
    Node in;
    in.kind = NodeKind::Input;
    in.name = var;
    in.label = var;
    const int id = g_.add_node(std::move(in));
    env_[var] = id;
    return id;
  }

  int build_expr(const ExprPtr& e, int stmt_id) {
    switch (e->op()) {
      case Op::Const: {
        Node c;
        c.kind = NodeKind::Const;
        c.value = e->value();
        c.label = std::to_string(e->value());
        return g_.add_node(std::move(c));
      }
      case Op::Var:
        return lookup(e->name());
      case Op::Select: {
        Node sel;
        sel.kind = NodeKind::Select;
        sel.stmt_id = stmt_id;
        sel.label = "sel";
        sel.data_preds.push_back(build_expr(e->arg(0), stmt_id));
        sel.data_preds.push_back(build_expr(e->arg(1), stmt_id));
        sel.data_preds.push_back(build_expr(e->arg(2), stmt_id));
        sel.guard = guard_;
        sel.guard_polarity = guard_pol_;
        return g_.add_node(std::move(sel));
      }
      default: {
        Node op;
        op.kind = NodeKind::Op;
        op.op = e->op();
        op.stmt_id = stmt_id;
        op.label = e->op() == Op::ArrayRead ? e->name() + "[]"
                                            : std::string(op_token(e->op()));
        for (const auto& a : e->args())
          op.data_preds.push_back(build_expr(a, stmt_id));
        op.guard = guard_;
        op.guard_polarity = guard_pol_;
        return g_.add_node(std::move(op));
      }
    }
  }

  void exec_list(const std::vector<ir::StmtPtr>& stmts) {
    for (const auto& s : stmts) exec(*s);
  }

  void exec(const Stmt& s) {
    switch (s.kind) {
      case StmtKind::Assign:
        env_[s.target] = build_expr(s.value, s.id);
        break;
      case StmtKind::Store: {
        Node st;
        st.kind = NodeKind::Op;
        st.op = Op::ArrayRead;
        st.stmt_id = s.id;
        st.label = s.target + "[]=";
        st.data_preds.push_back(build_expr(s.index, s.id));
        st.data_preds.push_back(build_expr(s.value, s.id));
        st.guard = guard_;
        st.guard_polarity = guard_pol_;
        g_.add_node(std::move(st));
        break;
      }
      case StmtKind::If: {
        const int c = build_expr(s.cond, s.id);
        const auto saved_env = env_;
        const int saved_guard = guard_;
        const bool saved_pol = guard_pol_;

        guard_ = c;
        guard_pol_ = true;
        exec_list(s.then_stmts);
        auto env_then = env_;

        env_ = saved_env;
        guard_pol_ = false;
        exec_list(s.else_stmts);
        auto env_else = env_;

        guard_ = saved_guard;
        guard_pol_ = saved_pol;
        env_ = saved_env;

        std::set<std::string> merged;
        for (const auto& [v, n] : env_then) merged.insert(v);
        for (const auto& [v, n] : env_else) merged.insert(v);
        for (const auto& v : merged) {
          auto base = saved_env.find(v);
          auto t = env_then.find(v);
          auto e = env_else.find(v);
          const int tn = t != env_then.end() ? t->second
                         : base != saved_env.end() ? base->second : -1;
          const int en = e != env_else.end() ? e->second
                         : base != saved_env.end() ? base->second : -1;
          if (tn == en) {
            if (tn >= 0) env_[v] = tn;
            continue;
          }
          Node join;
          join.kind = NodeKind::Join;
          join.stmt_id = s.id;
          join.label = "J:" + v;
          if (tn >= 0) join.data_preds.push_back(tn);
          if (en >= 0) join.data_preds.push_back(en);
          join.guard = saved_guard;
          join.guard_polarity = saved_pol;
          env_[v] = g_.add_node(std::move(join));
        }
        break;
      }
      case StmtKind::While: {
        // Loop-carried variables become Join nodes with a back edge.
        const std::set<std::string> carried = assigned_vars(s.then_stmts);
        std::map<std::string, int> joins;
        for (const auto& v : carried) {
          Node join;
          join.kind = NodeKind::Join;
          join.stmt_id = s.id;
          join.label = "LJ:" + v;
          join.data_preds.push_back(lookup(v));
          const int id = g_.add_node(std::move(join));
          joins[v] = id;
          env_[v] = id;
        }
        const int c = build_expr(s.cond, s.id);
        const int saved_guard = guard_;
        const bool saved_pol = guard_pol_;
        guard_ = c;
        guard_pol_ = true;
        exec_list(s.then_stmts);
        guard_ = saved_guard;
        guard_pol_ = saved_pol;
        // Back edges and post-loop values.
        for (const auto& [v, join_id] : joins) {
          g_.node_mut(join_id).data_preds.push_back(env_[v]);
          env_[v] = join_id;
        }
        break;
      }
      case StmtKind::Block:
        exec_list(s.stmts);
        break;
    }
  }

  Cdfg g_;
  std::map<std::string, int> env_;
  int guard_ = -1;
  bool guard_pol_ = true;
};

// ---- condition disjointness ------------------------------------------------

struct Constraint {
  std::string var;
  Op op;       // Lt/Le/Gt/Ge/Eq/Ne with var on the left
  int64_t c;
};

Op flip(Op op) {
  switch (op) {
    case Op::Lt: return Op::Gt;
    case Op::Le: return Op::Ge;
    case Op::Gt: return Op::Lt;
    case Op::Ge: return Op::Le;
    default: return op;  // Eq/Ne symmetric
  }
}

Op negate(Op op) {
  switch (op) {
    case Op::Lt: return Op::Ge;
    case Op::Le: return Op::Gt;
    case Op::Gt: return Op::Le;
    case Op::Ge: return Op::Lt;
    case Op::Eq: return Op::Ne;
    case Op::Ne: return Op::Eq;
    default: return op;
  }
}

std::optional<Constraint> normalize(const ExprPtr& e, bool polarity) {
  if (!ir::is_comparison(e->op())) return std::nullopt;
  Constraint cons;
  if (e->arg(0)->op() == Op::Var && e->arg(1)->op() == Op::Const) {
    cons.var = e->arg(0)->name();
    cons.op = e->op();
    cons.c = e->arg(1)->value();
  } else if (e->arg(0)->op() == Op::Const && e->arg(1)->op() == Op::Var) {
    cons.var = e->arg(1)->name();
    cons.op = flip(e->op());
    cons.c = e->arg(0)->value();
  } else {
    return std::nullopt;
  }
  if (!polarity) cons.op = negate(cons.op);
  return cons;
}

constexpr int64_t kInf = std::numeric_limits<int64_t>::max() / 2;

/// [lo, hi] satisfied range; Ne has no interval form (handled separately).
std::optional<std::pair<int64_t, int64_t>> interval(const Constraint& c) {
  switch (c.op) {
    case Op::Lt: return {{-kInf, c.c - 1}};
    case Op::Le: return {{-kInf, c.c}};
    case Op::Gt: return {{c.c + 1, kInf}};
    case Op::Ge: return {{c.c, kInf}};
    case Op::Eq: return {{c.c, c.c}};
    default: return std::nullopt;
  }
}

}  // namespace

bool conditions_disjoint(const ExprPtr& c1, bool pol1, const ExprPtr& c2,
                         bool pol2) {
  // Identical conditions with opposite polarities.
  if (Expr::equal(c1, c2) && pol1 != pol2) return true;

  const auto a = normalize(c1, pol1);
  const auto b = normalize(c2, pol2);
  if (!a || !b || a->var != b->var) return false;

  // Ne only clashes with Eq of the same constant.
  if (a->op == Op::Ne || b->op == Op::Ne) {
    const Constraint& ne = a->op == Op::Ne ? *a : *b;
    const Constraint& other = a->op == Op::Ne ? *b : *a;
    return other.op == Op::Eq && other.c == ne.c;
  }
  const auto ia = interval(*a);
  const auto ib = interval(*b);
  if (!ia || !ib) return false;
  return ia->second < ib->first || ib->second < ia->first;
}

Cdfg Cdfg::from_function(const ir::Function& fn) {
  CdfgBuilder b;
  return b.build(fn);
}

}  // namespace fact::cdfg
