#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/function.hpp"

namespace fact::cdfg {

/// Node kinds of the token-passing CDFG (Section 2.1). `Join` assigns to
/// its output the value arriving on either input (used at control-flow
/// merge points); `Select` picks between its l/r inputs by its s input.
enum class NodeKind { Const, Input, Op, Join, Select, Output };

struct Node {
  NodeKind kind = NodeKind::Op;
  ir::Op op = ir::Op::Var;  // for Op nodes
  std::string name;         // Input/Output: variable or array; Op: label
  int64_t value = 0;        // Const
  int stmt_id = -1;         // originating statement

  /// Data predecessors (token producers). For Select: {s, l, r}.
  std::vector<int> data_preds;
  /// Control predecessor: the condition node guarding execution, with
  /// polarity (the paper's +/- annotation); -1 if unconditional.
  int guard = -1;
  bool guard_polarity = true;

  std::string label;
};

/// Control-data flow graph derived from the behavior IR. Used for
/// visualization (Figure 1(b)), for checking structural properties in
/// tests, and for the mutual-exclusion queries that make cross-basic-block
/// transformation application safe (Example 3).
class Cdfg {
 public:
  int add_node(Node n);
  const std::vector<Node>& nodes() const { return nodes_; }
  const Node& node(int i) const { return nodes_[static_cast<size_t>(i)]; }
  Node& node_mut(int i) { return nodes_[static_cast<size_t>(i)]; }
  size_t size() const { return nodes_.size(); }

  /// True if nodes a and b can never both receive tokens in one execution:
  /// they are guarded by the same condition with opposite polarities
  /// (directly or through their guard chains).
  bool mutually_exclusive(int a, int b) const;

  std::string dot(const std::string& graph_name = "cdfg") const;

  /// Derives the CDFG of a function body by symbolic traversal: merge
  /// points introduce Join nodes, loop-carried variables get Join nodes
  /// with back edges, and operations inside conditionals carry guards.
  static Cdfg from_function(const ir::Function& fn);

 private:
  std::vector<Node> nodes_;
};

/// Conservative syntactic test that two branch conditions can never hold
/// together: `(c1 == pol1) && (c2 == pol2)` is unsatisfiable. Recognizes
///  * the same expression with opposite polarities,
///  * comparisons of one variable against constants with disjoint ranges
///    (x < 5 vs x > 7, x == 3 vs x == 4, ...).
/// Used by transformations when matching across basic blocks: a rewrite
/// through two joins is safe only if the non-matching input pairs are
/// mutually exclusive (Example 3's {x2,x5}/{x3,x4} requirement).
bool conditions_disjoint(const ir::ExprPtr& c1, bool pol1,
                         const ir::ExprPtr& c2, bool pol2);

}  // namespace fact::cdfg
