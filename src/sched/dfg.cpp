#include "sched/dfg.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <set>

#include "util/error.hpp"
#include "util/strfmt.hpp"

namespace fact::sched {

using hlslib::FuClass;
using ir::Expr;
using ir::ExprPtr;
using ir::Op;
using ir::Stmt;
using ir::StmtKind;

namespace {

// Delays of operations that consume no datapath FU: boolean connectives
// and the select mux are thin logic layers; register copies are free
// (they retime at the cycle boundary).
constexpr double kGlueDelayNs = 1.0;

bool is_const_one(const ExprPtr& e) {
  return e->op() == Op::Const && e->value() == 1;
}

}  // namespace

int Dfg::num_csteps() const {
  int max_cstep = -1;
  for (const auto& n : nodes)
    if (n.cstep >= 0) max_cstep = std::max(max_cstep, n.avail_cstep());
  return max_cstep + 1;
}

struct DfgBuilder::BuildState {
  // Per-variable dataflow within the segment.
  std::map<std::string, int> last_def;
  std::map<std::string, std::vector<int>> reads_of_current;
  // Per-array memory ordering.
  std::map<std::string, int> last_store;
  std::map<std::string, std::vector<int>> reads_since_store;
  // Value numbering: identical subexpressions over unchanged inputs bind
  // to one node (so e.g. a condition referenced by several selects costs
  // one comparator). Entries are invalidated when an input is redefined.
  std::vector<std::pair<ir::ExprPtr, int>> value_cache;

  void invalidate_var(const std::string& var) {
    std::erase_if(value_cache, [&](const auto& entry) {
      bool uses = false;
      for_each_node(entry.first, [&](const ir::ExprPtr& n) {
        if (n->op() == Op::Var && n->name() == var) uses = true;
      });
      return uses;
    });
  }
  void invalidate_array(const std::string& array) {
    std::erase_if(value_cache, [&](const auto& entry) {
      bool uses = false;
      for_each_node(entry.first, [&](const ir::ExprPtr& n) {
        if (n->op() == Op::ArrayRead && n->name() == array) uses = true;
      });
      return uses;
    });
  }
};

DfgBuilder::DfgBuilder(const hlslib::Library& lib,
                       const hlslib::Allocation& alloc,
                       const hlslib::FuSelection& sel, double vdd, double vt)
    : lib_(lib), alloc_(alloc), sel_(sel), scale_(hlslib::delay_scale(vdd, vt)) {}

std::string DfgBuilder::bind_fu(const ExprPtr& e,
                                const std::string* self_var) const {
  const Op op = e->op();
  // Incrementer special case: a self-increment `i = i + 1` binds to an
  // incrementer when one is allocated (Table 1 binds "++1" to incr1 while
  // "a + 7" uses the adder). A data add that merely has a constant-1
  // operand stays on the adder so counters keep their incrementers.
  if (self_var && op == Op::Add) {
    const bool self_incr =
        (is_const_one(e->arg(1)) && e->arg(0)->op() == Op::Var &&
         e->arg(0)->name() == *self_var) ||
        (is_const_one(e->arg(0)) && e->arg(1)->op() == Op::Var &&
         e->arg(1)->name() == *self_var);
    if (self_incr) {
      if (const hlslib::FuType* inc = lib_.first_of(FuClass::Incrementer)) {
        if (alloc_.count(inc->name) > 0) return inc->name;
      }
    }
  }
  if (op == Op::ArrayRead) {
    const hlslib::FuType* mem = lib_.first_of(FuClass::Memory);
    if (!mem) throw Error("library has no memory component");
    return mem->name;
  }
  // Comparisons of a variable against a constant are FSM-counter
  // comparisons resolved in the controller, not the datapath: Table 3
  // allocates no comparator at all for FIR or PPS, whose loops are purely
  // counted, while GCD's data comparisons (a > b) get cp1/e1.
  if (ir::is_comparison(op)) {
    auto counter_operand = [](const ExprPtr& a) {
      return a->op() == Op::Const || a->op() == Op::Var;
    };
    const bool has_const =
        e->arg(0)->op() == Op::Const || e->arg(1)->op() == Op::Const;
    if (has_const && counter_operand(e->arg(0)) && counter_operand(e->arg(1)))
      return "";
  }
  const FuClass cls = hlslib::op_fu_class(op);
  if (cls == FuClass::None) return "";
  auto it = sel_.choice.find(op);
  if (it != sel_.choice.end()) return it->second;
  const hlslib::FuType* t = lib_.first_of(cls);
  if (!t)
    throw Error(strfmt("no functional unit for operation '%s'", op_token(op)));
  return t->name;
}

double DfgBuilder::op_delay(Op op) const {
  const FuClass cls = hlslib::op_fu_class(op);
  if (cls == FuClass::None) return kGlueDelayNs * scale_;
  const hlslib::FuType* t = lib_.first_of(cls);
  return (t ? t->delay_ns : kGlueDelayNs) * scale_;
}

int DfgBuilder::add_expr(Dfg& dfg, BuildState& bs, const ExprPtr& e,
                         int stmt_id, const std::string* self_var) const {
  switch (e->op()) {
    case Op::Const:
      return -1;  // literal: wired constant, no node
    case Op::Var:
      return -2;  // handled by the caller (register read)
    default:
      break;
  }

  for (const auto& [cached_expr, cached_id] : bs.value_cache)
    if (Expr::equal(cached_expr, e)) return cached_id;

  DfgNode node;
  node.op = e->op();
  node.stmt_id = stmt_id;
  node.fu = bind_fu(e, self_var);
  if (e->op() == Op::ArrayRead) {
    node.array = e->name();
    node.label = e->name() + "[]";
  } else {
    node.label = op_token(e->op());
  }
  if (!node.fu.empty()) {
    node.delay_ns = lib_.get(node.fu).delay_ns * scale_;
  } else {
    node.delay_ns = kGlueDelayNs * scale_;
  }

  // First build all child subtrees; variable reads are registered against
  // this node's id only after it is known (sibling subtrees may create
  // nodes in between).
  std::vector<std::string> var_operands;
  for (const auto& arg : e->args()) {
    const int child = add_expr(dfg, bs, arg, stmt_id);
    if (child >= 0) {
      node.preds.push_back(child);
      node.operand_names.push_back("%" + std::to_string(child));
    } else if (child == -1) {
      node.operand_names.push_back(std::to_string(arg->value()));
    } else if (child == -2) {
      node.operand_names.push_back(arg->name());
      // Variable operand: register read; depends on the segment-local
      // definition if one exists.
      node.var_reads++;
      const std::string& v = arg->name();
      auto def = bs.last_def.find(v);
      if (def != bs.last_def.end()) node.preds.push_back(def->second);
      var_operands.push_back(v);
    }
  }

  const int id = static_cast<int>(dfg.nodes.size());
  for (const auto& v : var_operands) {
    if (!bs.last_def.count(v)) dfg.livein_reads[v].push_back(id);
    bs.reads_of_current[v].push_back(id);
  }
  if (e->op() == Op::ArrayRead) {
    auto st = bs.last_store.find(node.array);
    if (st != bs.last_store.end()) node.preds.push_back(st->second);
    bs.reads_since_store[node.array].push_back(id);
  }
  dfg.nodes.push_back(std::move(node));
  bs.value_cache.emplace_back(e, id);
  return id;
}

Dfg DfgBuilder::build(const std::vector<const Stmt*>& stmts,
                      const ExprPtr& cond, int cond_stmt_id) const {
  Dfg dfg;
  BuildState bs;

  auto define_var = [&](const std::string& var, int value_node,
                        const ExprPtr& value_expr, int stmt_id,
                        int first_new_node) {
    int root = value_node;
    if (root < 0) {
      // Copy assignment (x = y or x = 5): a register transfer node.
      DfgNode copy;
      copy.op = Op::Var;
      copy.stmt_id = stmt_id;
      copy.delay_ns = 0.0;
      copy.label = "cp";
      if (value_expr->op() == Op::Var) {
        copy.var_reads = 1;
        const std::string& v = value_expr->name();
        copy.operand_names.push_back(v);
        auto def = bs.last_def.find(v);
        const int self = static_cast<int>(dfg.nodes.size());
        if (def != bs.last_def.end()) {
          copy.preds.push_back(def->second);
        } else {
          dfg.livein_reads[v].push_back(self);
        }
        bs.reads_of_current[v].push_back(self);
      } else {
        copy.operand_names.push_back(std::to_string(value_expr->value()));
      }
      root = static_cast<int>(dfg.nodes.size());
      dfg.nodes.push_back(std::move(copy));
    }
    if (dfg.nodes[static_cast<size_t>(root)].reg_write ||
        root < first_new_node) {
      // The value node already defines another variable, or predates this
      // statement entirely (a value-numbering hit): route the definition
      // through a fresh copy. Defining the old node directly would give it
      // anti-dependence edges pointing at its own consumers (a cycle).
      DfgNode copy;
      copy.op = Op::Var;
      copy.stmt_id = stmt_id;
      copy.delay_ns = 0.0;
      copy.label = "cp";
      copy.preds.push_back(root);
      copy.operand_names.push_back("%" + std::to_string(root));
      root = static_cast<int>(dfg.nodes.size());
      dfg.nodes.push_back(std::move(copy));
    }
    DfgNode& n = dfg.nodes[static_cast<size_t>(root)];
    n.reg_write = true;
    n.def_var = var;
    n.label = var + "=" + n.label;
    // Anti-dependencies: earlier reads of the variable's previous value
    // must not be scheduled after this definition.
    for (int r : bs.reads_of_current[var])
      if (r != root) n.war_preds.push_back(r);
    auto prev = bs.last_def.find(var);
    if (prev != bs.last_def.end()) n.war_preds.push_back(prev->second);
    bs.reads_of_current[var].clear();
    bs.last_def[var] = root;
    dfg.final_def[var] = root;
    bs.invalidate_var(var);
  };

  for (const Stmt* s : stmts) {
    switch (s->kind) {
      case StmtKind::Assign: {
        const int first_new = static_cast<int>(dfg.nodes.size());
        const int v = add_expr(dfg, bs, s->value, s->id, &s->target);
        define_var(s->target, v, s->value, s->id, first_new);
        break;
      }
      case StmtKind::Store: {
        const int idx = add_expr(dfg, bs, s->index, s->id);
        const int val = add_expr(dfg, bs, s->value, s->id);
        DfgNode st;
        st.op = Op::ArrayRead;
        st.is_store = true;
        st.stmt_id = s->id;
        st.array = s->target;
        const hlslib::FuType* mem = lib_.first_of(FuClass::Memory);
        if (!mem) throw Error("library has no memory component");
        st.fu = mem->name;
        st.delay_ns = mem->delay_ns * scale_;
        st.label = s->target + "[]=";
        auto hook_operand = [&](int node_id, const ExprPtr& expr) {
          if (node_id >= 0) {
            st.preds.push_back(node_id);
            st.operand_names.push_back("%" + std::to_string(node_id));
          } else if (expr->op() == Op::Var) {
            st.var_reads++;
            const std::string& v = expr->name();
            st.operand_names.push_back(v);
            auto def = bs.last_def.find(v);
            const int self = static_cast<int>(dfg.nodes.size());
            if (def != bs.last_def.end()) {
              st.preds.push_back(def->second);
            } else {
              dfg.livein_reads[v].push_back(self);
            }
            bs.reads_of_current[v].push_back(self);
          } else {
            st.operand_names.push_back(std::to_string(expr->value()));
          }
        };
        hook_operand(idx, s->index);
        hook_operand(val, s->value);
        // Memory ordering: after the previous store and all reads since.
        auto prev = bs.last_store.find(s->target);
        if (prev != bs.last_store.end())
          st.mem_war_preds.push_back(prev->second);
        for (int r : bs.reads_since_store[s->target])
          st.mem_war_preds.push_back(r);
        const int id = static_cast<int>(dfg.nodes.size());
        dfg.nodes.push_back(std::move(st));
        bs.last_store[s->target] = id;
        bs.reads_since_store[s->target].clear();
        bs.invalidate_array(s->target);
        break;
      }
      default:
        throw Error("DfgBuilder: segment contains control flow");
    }
  }

  // Anti-dependences on multi-definition variables must keep their order
  // even under modulo scheduling (see DfgNode::relax_war).
  {
    std::map<std::string, int> def_count;
    for (const auto& n : dfg.nodes)
      if (n.reg_write) def_count[n.def_var]++;
    for (auto& n : dfg.nodes)
      if (n.reg_write && def_count[n.def_var] == 1) n.relax_war = true;
  }

  if (cond) {
    int c = add_expr(dfg, bs, cond, cond_stmt_id);
    if (c < 0) {
      // Condition is a bare variable or constant: model as a copy node so
      // there is a concrete check point in the schedule.
      DfgNode chk;
      chk.op = Op::Var;
      chk.stmt_id = cond_stmt_id;
      chk.delay_ns = 0.0;
      chk.label = "chk";
      if (cond->op() == Op::Var) {
        chk.var_reads = 1;
        const std::string& v = cond->name();
        chk.operand_names.push_back(v);
        auto def = bs.last_def.find(v);
        const int self = static_cast<int>(dfg.nodes.size());
        if (def != bs.last_def.end()) {
          chk.preds.push_back(def->second);
        } else {
          dfg.livein_reads[v].push_back(self);
        }
      } else {
        chk.operand_names.push_back(std::to_string(cond->value()));
      }
      c = static_cast<int>(dfg.nodes.size());
      dfg.nodes.push_back(std::move(chk));
    }
    dfg.cond_node = c;
  }
  return dfg;
}

// ---------------------------------------------------------------------------
// ResourceTable
// ---------------------------------------------------------------------------

ResourceTable::ResourceTable(const hlslib::Library& lib,
                             const hlslib::Allocation& alloc, int hyperperiod)
    : alloc_(alloc), hyperperiod_(hyperperiod) {
  (void)lib;
  if (hyperperiod_ > 0) rows_.resize(static_cast<size_t>(hyperperiod_));
}

std::vector<int> ResourceTable::slots_for(int cstep, int period) const {
  if (hyperperiod_ <= 0) {
    if (static_cast<size_t>(cstep) >= rows_.size())
      rows_.resize(static_cast<size_t>(cstep) + 1);
    return {cstep};
  }
  std::vector<int> slots;
  if (period <= 0) period = hyperperiod_;
  for (int s = cstep % period; s < hyperperiod_; s += period) slots.push_back(s);
  return slots;
}

bool ResourceTable::row_can_take(const Row& row, const DfgNode& n) const {
  if (!n.array.empty()) {
    auto it = row.mem_used.find(n.array);
    const int used = it == row.mem_used.end() ? 0 : it->second;
    if (used >= mem_ports_) return false;
    return true;
  }
  if (n.fu.empty()) return true;
  auto it = row.fu_used.find(n.fu);
  const int used = it == row.fu_used.end() ? 0 : it->second;
  return used < alloc_.count(n.fu);
}

bool ResourceTable::can_place(const DfgNode& n, int cstep, int period) const {
  if (n.fu.empty() && n.array.empty()) return true;
  if (n.array.empty() && alloc_.count(n.fu) <= 0) return false;
  for (int s : slots_for(cstep, period))
    if (!row_can_take(rows_[static_cast<size_t>(s)], n)) return false;
  return true;
}

void ResourceTable::place(const DfgNode& n, int cstep, int period) {
  if (n.fu.empty() && n.array.empty()) return;
  for (int s : slots_for(cstep, period)) {
    Row& row = rows_[static_cast<size_t>(s)];
    if (!n.array.empty()) {
      row.mem_used[n.array]++;
    } else {
      row.fu_used[n.fu]++;
    }
  }
}

// ---------------------------------------------------------------------------
// List scheduling
// ---------------------------------------------------------------------------

namespace {

/// Longest downstream delay (ns) from each node, the classic list-scheduling
/// priority.
std::vector<double> compute_priorities(const Dfg& dfg) {
  const size_t n = dfg.nodes.size();
  std::vector<double> prio(n, 0.0);
  // Nodes are created in topological order (children before parents), so a
  // reverse sweep propagates from consumers to producers.
  std::vector<std::vector<int>> succs(n);
  for (size_t i = 0; i < n; ++i)
    for (int p : dfg.nodes[i].preds) succs[static_cast<size_t>(p)].push_back(static_cast<int>(i));
  for (size_t ii = n; ii-- > 0;) {
    double best = 0.0;
    for (int s : succs[ii]) best = std::max(best, prio[static_cast<size_t>(s)]);
    prio[ii] = best + dfg.nodes[ii].delay_ns;
  }
  return prio;
}

}  // namespace

bool list_schedule(Dfg& dfg, ResourceTable& table, double clock_ns, int period,
                   int max_csteps) {
  const size_t n = dfg.nodes.size();
  const std::vector<double> prio = compute_priorities(dfg);
  std::vector<bool> done(n, false);
  size_t remaining = n;

  std::vector<int> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = static_cast<int>(i);

  while (remaining > 0) {
    // Pick the highest-priority ready node (all preds and war-preds done).
    int pick = -1;
    for (int i : order) {
      if (done[static_cast<size_t>(i)]) continue;
      const DfgNode& node = dfg.nodes[static_cast<size_t>(i)];
      bool ready = true;
      for (int p : node.preds)
        if (!done[static_cast<size_t>(p)]) { ready = false; break; }
      if (ready)
        for (int p : node.mem_war_preds)
          if (!done[static_cast<size_t>(p)]) { ready = false; break; }
      if (ready && (period == 0 || !node.relax_war))
        for (int p : node.war_preds)
          if (!done[static_cast<size_t>(p)]) { ready = false; break; }
      if (!ready) continue;
      if (pick < 0 || prio[static_cast<size_t>(i)] > prio[static_cast<size_t>(pick)])
        pick = i;
    }
    if (pick < 0) {
      std::string stuck;
      for (int i : order)
        if (!done[static_cast<size_t>(i)])
          stuck += dfg.nodes[static_cast<size_t>(i)].label + " ";
      throw Error("list_schedule: dependence cycle among: " + stuck);
    }

    DfgNode& node = dfg.nodes[static_cast<size_t>(pick)];
    // Multi-cycle operations occupy ceil(delay/clock) steps, start at a
    // cycle boundary, and cannot be chained into.
    node.span = std::max(1, static_cast<int>(std::ceil(node.delay_ns / clock_ns - 1e-9)));
    if (period > 0 && node.span > period) return false;

    int earliest = 0;
    for (int p : node.preds)
      earliest = std::max(earliest, dfg.nodes[static_cast<size_t>(p)].avail_cstep());
    for (int p : node.mem_war_preds)
      earliest = std::max(earliest, dfg.nodes[static_cast<size_t>(p)].cstep);
    if (period == 0 || !node.relax_war)
      for (int p : node.war_preds)
        earliest = std::max(earliest, dfg.nodes[static_cast<size_t>(p)].cstep);

    bool placed = false;
    for (int cstep = earliest; cstep < earliest + max_csteps; ++cstep) {
      // Chaining: operands that become available within this same cstep
      // delay our start time.
      double start = 0.0;
      for (int p : node.preds) {
        const DfgNode& pd = dfg.nodes[static_cast<size_t>(p)];
        if (pd.avail_cstep() == cstep) start = std::max(start, pd.end_ns);
      }
      if (node.span > 1 && start > 0.0) continue;  // must start on a boundary
      if (node.span == 1 && start + node.delay_ns > clock_ns + 1e-9) continue;
      bool fits = true;
      for (int k = 0; k < node.span; ++k)
        if (!table.can_place(node, cstep + k, period)) { fits = false; break; }
      if (!fits) {
        // With a modulo table all steps >= earliest repeat the same slots;
        // if a full period of steps fails, the op can never be placed.
        if (period > 0 && cstep - earliest >= std::max(period, 1) &&
            start == 0.0)
          return false;
        continue;
      }
      for (int k = 0; k < node.span; ++k) table.place(node, cstep + k, period);
      node.cstep = cstep;
      node.start_ns = start;
      node.end_ns = node.span == 1 ? start + node.delay_ns
                                   : node.delay_ns - (node.span - 1) * clock_ns;
      placed = true;
      break;
    }
    if (!placed) return false;
    done[static_cast<size_t>(pick)] = true;
    remaining--;
  }
  return true;
}

bool recurrences_ok(const Dfg& dfg, int ii) {
  for (const auto& [var, def_node] : dfg.final_def) {
    auto reads = dfg.livein_reads.find(var);
    if (reads == dfg.livein_reads.end()) continue;
    const int def_cstep = dfg.nodes[static_cast<size_t>(def_node)].cstep;
    for (int r : reads->second) {
      const int read_cstep = dfg.nodes[static_cast<size_t>(r)].cstep;
      if (def_cstep > read_cstep + ii - 1) return false;
    }
  }
  return true;
}

bool pipeline_lags_consistent(const Dfg& dfg, int ii) {
  std::vector<int> lag(dfg.nodes.size(), 0);
  for (size_t i = 0; i < dfg.nodes.size(); ++i) {
    const DfgNode& n = dfg.nodes[i];
    if (n.cstep < 0) continue;
    const int slot = n.cstep % ii;
    bool first = true;
    for (int p : n.preds) {
      const DfgNode& pred = dfg.nodes[static_cast<size_t>(p)];
      const int wrap = pred.avail_cstep() % ii > slot ? 1 : 0;
      const int via = lag[static_cast<size_t>(p)] + wrap;
      if (first) {
        lag[i] = via;
        first = false;
      } else if (via != lag[i]) {
        return false;  // operands from different in-flight iterations
      }
    }
  }
  // Ordered (non-relaxed) anti/output/memory dependences must hold per
  // iteration in the overlapped ring: with instance time
  // (k + lag)*II + slot, a predecessor must not land after its dependent.
  for (size_t i = 0; i < dfg.nodes.size(); ++i) {
    const DfgNode& n = dfg.nodes[i];
    if (n.cstep < 0) continue;
    auto ordered_ok = [&](int p) {
      const DfgNode& pred = dfg.nodes[static_cast<size_t>(p)];
      const int delta = (lag[static_cast<size_t>(p)] - lag[i]) * ii +
                        (pred.cstep % ii - n.cstep % ii);
      return delta <= 0;
    };
    if (!n.relax_war) {
      for (int p : n.war_preds)
        if (!ordered_ok(p)) return false;
    } else {
      // Relaxed anti-dependences are repaired by one shadow register per
      // variable: the reader's desired value must be either the def's most
      // recent execution or exactly one update older (the shadow). With
      // def lag Ld running before/after the reader (slot order) and reader
      // lag Lr, that bounds Ld - Lr to {0,1} / {-1,0} respectively.
      for (int p : n.war_preds) {
        const DfgNode& r = dfg.nodes[static_cast<size_t>(p)];
        if (r.cstep < 0) continue;
        const bool before = n.cstep % ii < r.cstep % ii;
        const int diff = lag[i] - lag[static_cast<size_t>(p)];
        if (before ? (diff < 0 || diff > 1) : (diff < -1 || diff > 0))
          return false;
      }
    }
    for (int p : n.mem_war_preds)
      if (!ordered_ok(p)) return false;
  }
  return true;
}

int resource_min_ii(const Dfg& dfg, const hlslib::Allocation& alloc,
                    int mem_ports) {
  std::map<std::string, int> fu_uses;
  std::map<std::string, int> mem_uses;
  for (const auto& n : dfg.nodes) {
    if (!n.array.empty()) {
      mem_uses[n.array]++;
    } else if (!n.fu.empty()) {
      fu_uses[n.fu]++;
    }
  }
  int ii = 1;
  for (const auto& [fu, uses] : fu_uses) {
    const int avail = alloc.count(fu);
    if (avail <= 0) return -1;  // infeasible
    ii = std::max(ii, (uses + avail - 1) / avail);
  }
  for (const auto& [arr, uses] : mem_uses)
    ii = std::max(ii, (uses + mem_ports - 1) / mem_ports);
  return ii;
}

}  // namespace fact::sched
