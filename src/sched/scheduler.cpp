#include "sched/scheduler.hpp"

#include <algorithm>
#include <cassert>
#include <functional>
#include <map>
#include <numeric>
#include <optional>
#include <set>

#include "ir/hash.hpp"
#include "sched/dfg.hpp"
#include "sched/fragment_cache.hpp"
#include "util/error.hpp"
#include "util/strfmt.hpp"

namespace fact::sched {

using ir::ExprPtr;
using ir::Op;
using ir::Stmt;
using ir::StmtKind;

namespace {

/// Edge probabilities are clamped away from 0 and 1 so every control path
/// stays represented in the Markov chain (a branch never observed in the
/// profile still has hardware).
double clamp_prob(double p) { return std::clamp(p, 0.01, 0.995); }

/// Variables and arrays a loop touches; used for the concurrent-loop
/// independence test.
struct RwSets {
  std::set<std::string> var_reads, var_writes, arr_reads, arr_writes;
};

void collect_expr(const ExprPtr& e, RwSets& rw) {
  ir::for_each_node(e, [&](const ExprPtr& n) {
    if (n->op() == Op::Var) rw.var_reads.insert(n->name());
    if (n->op() == Op::ArrayRead) rw.arr_reads.insert(n->name());
  });
}

RwSets collect_loop_rw(const Region& loop) {
  RwSets rw;
  collect_expr(loop.ctrl->cond, rw);
  std::function<void(const Region&)> walk = [&](const Region& r) {
    for (const Stmt* s : r.stmts) {
      if (s->kind == StmtKind::Assign) {
        rw.var_writes.insert(s->target);
        collect_expr(s->value, rw);
      } else if (s->kind == StmtKind::Store) {
        rw.arr_writes.insert(s->target);
        collect_expr(s->index, rw);
        collect_expr(s->value, rw);
      }
    }
    if (r.ctrl) collect_expr(r.ctrl->cond, rw);
    for (const auto& c : r.children) walk(*c);
  };
  walk(*loop.children[0]);
  return rw;
}

bool disjoint(const std::set<std::string>& a, const std::set<std::string>& b) {
  for (const auto& x : a)
    if (b.count(x)) return false;
  return true;
}

bool loops_independent(const RwSets& a, const RwSets& b) {
  return disjoint(a.var_writes, b.var_reads) &&
         disjoint(a.var_writes, b.var_writes) &&
         disjoint(b.var_writes, a.var_reads) &&
         disjoint(a.arr_writes, b.arr_reads) &&
         disjoint(a.arr_writes, b.arr_writes) &&
         disjoint(b.arr_writes, a.arr_reads);
}

int lcm_int(int a, int b) { return a / std::gcd(a, b) * b; }

/// Key folding for fragment-cache keys (same splitmix64-style mix as
/// ir::hash so key quality matches).
uint64_t key_mix(uint64_t seed, uint64_t v) {
  v += 0x9E3779B97F4A7C15ull;
  v = (v ^ (v >> 30)) * 0xBF58476D1CE4E5B9ull;
  v = (v ^ (v >> 27)) * 0x94D049BB133111EBull;
  v ^= v >> 31;
  return seed * 0x100000001B3ull ^ v;
}

// Fragment kinds live in disjoint key spaces.
constexpr uint64_t kTagStraight = 0x51A16u;
constexpr uint64_t kTagCond = 0xC09Du;
constexpr uint64_t kTagPipe = 0x919Eu;

/// A pending transition into the next state to be created.
struct Attach {
  int state = -1;
  double prob = 1.0;
  std::string label;
};

class Emitter {
 public:
  Emitter(const hlslib::Library& lib, const hlslib::Allocation& alloc,
          const hlslib::FuSelection& sel, const SchedOptions& opts,
          const sim::Profile& profile)
      : lib_(lib),
        alloc_(alloc),
        opts_(opts),
        profile_(profile),
        builder_(lib, alloc, sel, opts.vdd, opts.vt) {}

  ScheduleResult run(const ir::Function& fn) {
    fn_name_ = fn.name();
    RegionPtr tree = build_region_tree(fn);
    std::vector<Attach> outs = emit_seq(*tree, {});
    if (opts_.max_states > 0 && stg_.num_states() > opts_.max_states)
      throw Error(strfmt(
          "schedule for '%s' exploded to %zu states (max_states %zu)",
          fn_name_.c_str(), stg_.num_states(), opts_.max_states));
    if (stg_.num_states() == 0) {
      const int idle = stg_.add_state("idle");
      stg_.add_edge(idle, idle, 1.0, "", /*exec_boundary=*/true);
    } else {
      for (const Attach& a : outs)
        stg_.add_edge(a.state, 0, a.prob, a.label, /*exec_boundary=*/true);
    }
    stg_.set_entry(0);
    stg_.validate();
    ScheduleResult result;
    result.stg = std::move(stg_);
    result.loops = std::move(loops_);
    result.rtl_exact = rtl_exact_;
    result.fragment_hits = frag_hits_;
    result.fragment_misses = frag_misses_;
    return result;
  }

 private:
  // ---- helpers ---------------------------------------------------------

  void connect(const std::vector<Attach>& in, int state) {
    for (const Attach& a : in) stg_.add_edge(a.state, state, a.prob, a.label);
  }

  /// Every op must have a nonzero allocation; diagnose infeasible
  /// allocations up front instead of failing to schedule.
  void check_feasible(const Dfg& dfg) const {
    for (const auto& n : dfg.nodes) {
      if (!n.array.empty() || n.fu.empty()) continue;
      if (alloc_.count(n.fu) <= 0)
        throw Error(strfmt(
            "infeasible allocation for '%s': operation '%s' needs FU type "
            "'%s' but none are allocated",
            fn_name_.c_str(), n.label.c_str(), n.fu.c_str()));
    }
  }

  /// Unique result-wire names for every node of a scheduled DFG (wires
  /// are global across the whole STG so bindings can refer to them).
  std::vector<std::string> assign_wires(const Dfg& dfg) {
    std::vector<std::string> wires;
    wires.reserve(dfg.nodes.size());
    for (size_t i = 0; i < dfg.nodes.size(); ++i)
      wires.push_back(strfmt("w%d", wire_counter_++));
    return wires;
  }

  /// Builds the STG op annotation for one DFG node, resolving "%<node>"
  /// operand placeholders to wire names.
  stg::OpInstance make_instance(const Dfg& dfg,
                                const std::vector<std::string>& wires,
                                size_t node_idx, int iteration,
                                int lag = 0) const {
    const DfgNode& node = dfg.nodes[node_idx];
    stg::OpInstance op;
    op.fu_type = node.fu;
    op.op = node.op;
    op.stmt_id = node.stmt_id;
    op.iteration = iteration;
    op.label = node.label;
    op.value_name = wires[node_idx];
    op.def_var = node.def_var;
    op.is_store = node.is_store;
    op.array = node.array;
    for (const auto& operand : node.operand_names) {
      if (!operand.empty() && operand[0] == '%') {
        op.operands.push_back(
            wires[static_cast<size_t>(std::stoi(operand.substr(1)))]);
      } else {
        op.operands.push_back(operand);
      }
    }
    for (int p : node.war_preds)
      op.pre_readers.push_back(wires[static_cast<size_t>(p)]);
    op.lag = lag;
    return op;
  }

  /// Creates one STG state per control step of a scheduled plain DFG and
  /// fills op and register-traffic annotations. Returns {first, last}.
  std::pair<int, int> materialize(const Dfg& dfg) {
    const int n = dfg.num_csteps();
    assert(n > 0);
    int first = -1, last = -1;
    std::vector<int> ids;
    for (int c = 0; c < n; ++c) {
      const int s = stg_.add_state("");
      if (first < 0) first = s;
      if (last >= 0) stg_.add_edge(last, s, 1.0);
      last = s;
      ids.push_back(s);
    }
    const std::vector<std::string> wires = assign_wires(dfg);
    for (size_t i = 0; i < dfg.nodes.size(); ++i) {
      const DfgNode& node = dfg.nodes[i];
      stg::State& st = stg_.state(ids[static_cast<size_t>(node.cstep)]);
      st.ops.push_back(make_instance(dfg, wires, i, 0));
      st.reg_reads += node.var_reads;
      if (node.reg_write) st.reg_writes++;
    }
    if (dfg.cond_node >= 0) {
      stg::State& st = stg_.state(ids[static_cast<size_t>(
          dfg.nodes[static_cast<size_t>(dfg.cond_node)].avail_cstep())]);
      st.cond_signal = wires[static_cast<size_t>(dfg.cond_node)];
    }
    return {first, last};
  }

  // ---- fragment cache ---------------------------------------------------

  uint64_t straight_key(const std::vector<const Stmt*>& stmts) const {
    uint64_t h = key_mix(kTagStraight, stmts.size());
    for (const Stmt* s : stmts) h = key_mix(h, ir::fragment_hash(*s));
    return h;
  }

  uint64_t cond_key(const ExprPtr& cond, int stmt_id) const {
    uint64_t h = key_mix(kTagCond, static_cast<uint64_t>(cond->hash()));
    return key_mix(h, static_cast<uint64_t>(static_cast<int64_t>(stmt_id)));
  }

  uint64_t pipe_key(const std::vector<const Stmt*>& body_stmts,
                    const ExprPtr& cond, int stmt_id) const {
    uint64_t h = key_mix(kTagPipe, body_stmts.size());
    for (const Stmt* s : body_stmts) h = key_mix(h, ir::fragment_hash(*s));
    h = key_mix(h, static_cast<uint64_t>(cond->hash()));
    return key_mix(h, static_cast<uint64_t>(static_cast<int64_t>(stmt_id)));
  }

  /// Runs `build` (DFG construction + scheduling) through the fragment
  /// cache: a hit returns the previously scheduled entry, a miss computes
  /// and publishes it. fact::Error failures are cached too and rethrown
  /// with the identical message, so a cached failure is indistinguishable
  /// from a recomputed one. Exceptions other than fact::Error propagate
  /// uncached.
  template <typename BuildFn>
  std::shared_ptr<const FragmentCache::Entry> fragment(uint64_t key,
                                                       BuildFn&& build) {
    FragmentCache* cache = opts_.fragment_cache;
    if (cache) {
      if (auto entry = cache->lookup(key)) {
        frag_hits_++;
        if (!entry->ok) throw Error(entry->error);
        return entry;
      }
    }
    auto fresh = std::make_shared<FragmentCache::Entry>();
    try {
      build(*fresh);
      fresh->ok = true;
    } catch (const Error& ex) {
      fresh->error = ex.what();
    }
    std::shared_ptr<const FragmentCache::Entry> entry = fresh;
    if (cache) {
      frag_misses_++;
      entry = cache->insert(key, std::move(fresh));
    }
    if (!entry->ok) throw Error(entry->error);
    return entry;
  }

  /// Cached build + schedule of a branch/loop condition evaluation.
  std::shared_ptr<const FragmentCache::Entry> cond_fragment(
      const ExprPtr& cond, int stmt_id) {
    return fragment(cond_key(cond, stmt_id), [&](FragmentCache::Entry& e) {
      e.dfg = builder_.build({}, cond, stmt_id);
      schedule_plain(e.dfg);
    });
  }

  double branch_prob(int stmt_id) const {
    return clamp_prob(profile_.branch_prob(stmt_id, 0.5));
  }

  /// Loop closing probabilities keep much more headroom than generic
  /// branches: p encodes the expected iteration count (p/(1-p)), so
  /// clamping at 0.995 would flatten every loop beyond ~200 iterations.
  double loop_prob(int stmt_id) const {
    return std::clamp(profile_.branch_prob(stmt_id, 0.5), 0.01, 0.99999);
  }

  /// Schedules a plain (non-modulo) DFG.
  void schedule_plain(Dfg& dfg) const {
    check_feasible(dfg);
    ResourceTable table(lib_, alloc_, 0);
    if (!list_schedule(dfg, table, opts_.clock_ns))
      throw Error(strfmt("cannot schedule segment of '%s' under clock %.1fns",
                         fn_name_.c_str(), opts_.clock_ns));
  }

  // ---- region emission --------------------------------------------------

  std::vector<Attach> emit_seq(const Region& seq, std::vector<Attach> in) {
    assert(seq.kind == Region::Kind::Seq);
    size_t i = 0;
    while (i < seq.children.size()) {
      const Region& child = *seq.children[i];
      if (child.kind == Region::Kind::Loop && opts_.fuse_loops) {
        // Collect a maximal run of adjacent, independent, pipelineable
        // loops for concurrent execution.
        std::vector<const Region*> run{&child};
        std::vector<RwSets> rw{collect_loop_rw(child)};
        size_t j = i + 1;
        while (j < seq.children.size() && run.size() < opts_.max_fused) {
          const Region& next = *seq.children[j];
          if (next.kind != Region::Kind::Loop) break;
          if (!next.loop_body_is_straight() ||
              !run.front()->loop_body_is_straight())
            break;
          RwSets next_rw = collect_loop_rw(next);
          bool indep = true;
          for (const RwSets& r : rw)
            if (!loops_independent(r, next_rw)) { indep = false; break; }
          if (!indep) break;
          run.push_back(&next);
          rw.push_back(std::move(next_rw));
          ++j;
        }
        if (run.size() >= 2) {
          std::vector<Attach> out;
          if (emit_fused_run(run, in, &out)) {
            in = std::move(out);
            i = j;
            continue;
          }
        }
      }
      in = emit_region(child, std::move(in));
      ++i;
    }
    return in;
  }

  std::vector<Attach> emit_region(const Region& r, std::vector<Attach> in) {
    switch (r.kind) {
      case Region::Kind::Straight:
        return emit_straight(r, std::move(in));
      case Region::Kind::If:
        return emit_if(r, std::move(in));
      case Region::Kind::Loop:
        return emit_loop(r, std::move(in));
      case Region::Kind::Seq:
        return emit_seq(r, std::move(in));
    }
    return in;
  }

  std::vector<Attach> emit_straight(const Region& r, std::vector<Attach> in) {
    const auto entry =
        fragment(straight_key(r.stmts), [&](FragmentCache::Entry& e) {
          e.dfg = builder_.build(r.stmts);
          if (!e.dfg.nodes.empty()) schedule_plain(e.dfg);
        });
    if (entry->dfg.nodes.empty()) return in;
    auto [first, last] = materialize(entry->dfg);
    connect(in, first);
    return {{last, 1.0, ""}};
  }

  std::vector<Attach> emit_if(const Region& r, std::vector<Attach> in) {
    const auto cond = cond_fragment(r.ctrl->cond, r.ctrl->id);
    auto [cfirst, clast] = materialize(cond->dfg);
    connect(in, cfirst);
    const double p = branch_prob(r.ctrl->id);
    std::vector<Attach> outs =
        emit_seq(*r.children[0], {{clast, p, "T"}});
    std::vector<Attach> else_outs =
        emit_seq(*r.children[1], {{clast, 1.0 - p, "F"}});
    outs.insert(outs.end(), else_outs.begin(), else_outs.end());
    return outs;
  }

  std::vector<Attach> emit_loop(const Region& r, std::vector<Attach> in) {
    const double p = loop_prob(r.ctrl->id);  // closing probability

    if (opts_.pipeline_loops && r.loop_body_is_straight()) {
      std::vector<Attach> out;
      if (emit_pipelined_loop(r, p, in, &out)) return out;
    }

    // General path: test states, body, back edge.
    const auto test = cond_fragment(r.ctrl->cond, r.ctrl->id);
    auto [tfirst, tlast] = materialize(test->dfg);
    connect(in, tfirst);
    std::vector<Attach> body_out =
        emit_seq(*r.children[0], {{tlast, p, "loop"}});
    connect(body_out, tfirst);

    LoopInfo info;
    info.stmt_id = r.ctrl->id;
    info.pipelined = false;
    loops_.push_back(info);
    return {{tlast, 1.0 - p, "exit"}};
  }

  /// Pipelined (implicitly unrolled) loop: modulo-schedule the body plus
  /// the loop condition at the smallest feasible II and materialize the
  /// full software pipeline:
  ///   guard (while-test on entry values)
  ///     -> prologue (iteration 0, linear; fills the pipe)
  ///     -> kernel ring of II states (one iteration completes per
  ///        traversal; overlapped iterations read last-traversal wires)
  ///     -> epilogue drain on exit (ops past the check complete the
  ///        in-flight iteration).
  /// This structure is functionally exact for the RTL backend and only
  /// adds entry/exit states that the steady state amortizes.
  /// Returns false if pipelining is infeasible.
  /// Derived per-op pipeline bookkeeping of a modulo-scheduled body:
  /// lags (slot wraparounds along each op's dependence chain — how many
  /// traversals behind the newest iteration it runs) and the drain debts
  /// owed when the check fires the exit. O(nodes + dependence edges), so
  /// cached pipelined fragments re-derive it from the stored DFG instead
  /// of storing it.
  struct PipeDerived {
    int body_csteps = 0;
    int cond_cstep = 0;
    int check_slot = 0;
    std::vector<int> lag;
    std::vector<int> owed;
    int max_owed = 0;
  };

  static PipeDerived derive_pipe(const Dfg& dfg, int ii) {
    PipeDerived d;
    d.body_csteps = dfg.num_csteps();
    d.cond_cstep = dfg.nodes[static_cast<size_t>(dfg.cond_node)].avail_cstep();
    d.check_slot = d.cond_cstep % ii;
    d.lag.assign(dfg.nodes.size(), 0);
    for (size_t i = 0; i < dfg.nodes.size(); ++i) {
      const DfgNode& node = dfg.nodes[i];
      for (int pidx : node.preds) {
        const DfgNode& pred = dfg.nodes[static_cast<size_t>(pidx)];
        const int wrap = pred.cstep % ii > node.cstep % ii ? 1 : 0;
        d.lag[i] = std::max(d.lag[i], d.lag[static_cast<size_t>(pidx)] + wrap);
      }
    }
    const int check_lag = d.lag[static_cast<size_t>(dfg.cond_node)];
    d.owed.assign(dfg.nodes.size(), 0);
    for (size_t i = 0; i < dfg.nodes.size(); ++i) {
      const int extra = dfg.nodes[i].cstep % ii > d.check_slot ? 1 : 0;
      d.owed[i] = std::max(0, d.lag[i] - check_lag + extra);
      d.max_owed = std::max(d.max_owed, d.owed[i]);
    }
    return d;
  }

  /// Drain representability for relaxed anti-dependences: a reader
  /// flushed in the drain still has a single shadow level available.
  /// With the def having run in the truncated final traversal iff its
  /// slot <= check slot, the reader's desired value must be the def's
  /// most recent execution or one update older.
  static bool drain_representable(const Dfg& dfg, int ii,
                                  const PipeDerived& d) {
    for (size_t i = 0; i < dfg.nodes.size(); ++i) {
      const DfgNode& node = dfg.nodes[i];
      if (!node.relax_war) continue;
      for (int p : node.war_preds) {
        const DfgNode& r = dfg.nodes[static_cast<size_t>(p)];
        if (r.cstep < 0 || d.owed[static_cast<size_t>(p)] <= 0) continue;
        const int ran = node.cstep % ii <= d.check_slot ? 0 : 1;
        const int gap =
            (d.lag[static_cast<size_t>(p)] + 1) - (d.lag[i] + ran);
        if (gap < 0 || gap > 1) return false;
      }
    }
    return true;
  }

  bool emit_pipelined_loop(const Region& r, double p,
                           const std::vector<Attach>& in,
                           std::vector<Attach>* out) {
    const std::vector<const Stmt*> body_stmts =
        r.children[0]->children.empty() ? std::vector<const Stmt*>{}
                                        : r.children[0]->children[0]->stmts;
    // The II search through the fragment cache: the winning modulo
    // schedule — or the not-pipelineable verdict — is a pure function of
    // the body + condition fragment.
    const auto entry = fragment(
        pipe_key(body_stmts, r.ctrl->cond, r.ctrl->id),
        [&](FragmentCache::Entry& e) {
          const Dfg base =
              builder_.build(body_stmts, r.ctrl->cond, r.ctrl->id);
          check_feasible(base);
          const int res_ii = resource_min_ii(base, alloc_);
          if (res_ii < 0) return;  // e.pipelined stays false
          for (int ii = res_ii; ii <= opts_.max_ii; ++ii) {
            Dfg dfg = base;
            ResourceTable table(lib_, alloc_, ii);
            if (!list_schedule(dfg, table, opts_.clock_ns, ii)) continue;
            if (!recurrences_ok(dfg, ii)) continue;
            if (!pipeline_lags_consistent(dfg, ii)) continue;
            if (!drain_representable(dfg, ii, derive_pipe(dfg, ii)))
              continue;  // try the next II
            e.pipelined = true;
            e.ii = ii;
            e.dfg = std::move(dfg);
            return;
          }
        });
    if (!entry->pipelined) return false;

    const Dfg& dfg = entry->dfg;
    const int ii = entry->ii;
    const PipeDerived derived = derive_pipe(dfg, ii);
    const int body_csteps = derived.body_csteps;
    const int cond_cstep = derived.cond_cstep;
    const std::vector<int>& lag = derived.lag;
    const std::vector<int>& owed = derived.owed;
    const int max_owed = derived.max_owed;

    {
      const std::vector<std::string> wires = assign_wires(dfg);
      const std::string cond_wire = wires[static_cast<size_t>(dfg.cond_node)];

      // Guard: the while-test on entry values (separate evaluation).
      const auto guard = cond_fragment(r.ctrl->cond, r.ctrl->id);
      auto [gfirst, glast] = materialize(guard->dfg);
      connect(in, gfirst);
      std::vector<Attach> exits;
      exits.push_back({glast, 1.0 - p, "exit"});

      // Helper: add ops of one cstep to a state.
      auto fill_state = [&](int state_id, int cstep) {
        stg::State& st = stg_.state(state_id);
        for (size_t i = 0; i < dfg.nodes.size(); ++i) {
          const DfgNode& node = dfg.nodes[i];
          if (node.cstep != cstep) continue;
          st.ops.push_back(make_instance(dfg, wires, i, 0));
          st.reg_reads += node.var_reads;
          if (node.reg_write) st.reg_writes++;
        }
      };

      // Prologue: iteration 0 executed linearly (fills wires).
      std::vector<int> prologue;
      for (int c = 0; c < body_csteps; ++c) {
        const int s = stg_.add_state("");
        fill_state(s, c);
        if (!prologue.empty())
          stg_.add_edge(prologue.back(), s, 1.0);
        prologue.push_back(s);
      }
      stg_.add_edge(glast, prologue.front(), p, "loop");

      // Kernel ring: every op once per traversal, at slot cstep % II.
      const int ring_id = next_ring_id_++;
      std::vector<int> ring;
      for (int k = 0; k < ii; ++k) {
        ring.push_back(stg_.add_state(""));
        stg_.state(ring.back()).ring_id = ring_id;
      }
      for (size_t i = 0; i < dfg.nodes.size(); ++i) {
        const DfgNode& node = dfg.nodes[i];
        stg::State& st =
            stg_.state(ring[static_cast<size_t>(node.cstep % ii)]);
        st.ops.push_back(
            make_instance(dfg, wires, i, node.cstep / ii, lag[i]));
        st.reg_reads += node.var_reads;
        if (node.reg_write) st.reg_writes++;
      }

      // Epilogue drain: when the check fires the exit, each op still owes
      //   owed = lag - lag(check) + (slot > check_slot ? 1 : 0)
      // executions to complete the in-flight iterations. The drain flushes
      // them round by round in cstep order (resource-legal: each drain
      // state re-uses one kernel cstep's op set).
      std::vector<int> drain;
      for (int round = 1; round <= max_owed; ++round) {
        for (int c = 0; c < body_csteps; ++c) {
          bool any = false;
          for (size_t i = 0; i < dfg.nodes.size(); ++i)
            if (owed[i] >= round && dfg.nodes[i].cstep == c) any = true;
          if (!any) continue;
          const int s = stg_.add_state("");
          stg::State& st = stg_.state(s);
          for (size_t i = 0; i < dfg.nodes.size(); ++i) {
            const DfgNode& node = dfg.nodes[i];
            if (owed[i] < round || node.cstep != c) continue;
            st.ops.push_back(make_instance(dfg, wires, i, 0, lag[i]));
            st.reg_reads += node.var_reads;
            if (node.reg_write) st.reg_writes++;
          }
          if (!drain.empty()) stg_.add_edge(drain.back(), s, 1.0);
          drain.push_back(s);
        }
      }
      const auto exit_target = [&](int from, double prob,
                                   const std::string& label) {
        if (drain.empty()) {
          exits.push_back({from, prob, label});
        } else {
          stg_.add_edge(from, drain.front(), prob, label);
        }
      };

      // Prologue branch: the iteration-1 check was computed at its cstep;
      // branch at the last prologue state on the stored wire. A prologue
      // exit bypasses the drain — iteration 0's tail already ran linearly.
      stg_.state(prologue.back()).cond_signal = cond_wire;
      stg_.add_edge(prologue.back(), ring[0], p, "loop");
      exits.push_back({prologue.back(), 1.0 - p, "exit"});

      // Ring transitions with the per-traversal check.
      const int check_state = ring[static_cast<size_t>(cond_cstep % ii)];
      stg_.state(check_state).cond_signal = cond_wire;
      for (int k = 0; k < ii; ++k) {
        const int cur = ring[static_cast<size_t>(k)];
        const int next = ring[static_cast<size_t>((k + 1) % ii)];
        if (cur == check_state) {
          stg_.add_edge(cur, next, p, "loop");
          exit_target(cur, 1.0 - p, "exit");
        } else {
          stg_.add_edge(cur, next, 1.0);
        }
      }
      if (!drain.empty()) exits.push_back({drain.back(), 1.0, ""});

      *out = exits;

      LoopInfo info;
      info.stmt_id = r.ctrl->id;
      info.pipelined = true;
      info.ii = ii;
      info.body_csteps = body_csteps;
      loops_.push_back(info);
      return true;
    }
  }

  /// Concurrent-loop phases: execute the run's loops together, sharing
  /// resources; when a loop exits, transition to the phase executing the
  /// remaining subset. Returns false if no joint schedule fits.
  bool emit_fused_run(const std::vector<const Region*>& run,
                      const std::vector<Attach>& in,
                      std::vector<Attach>* out) {
    const size_t k = run.size();
    std::vector<Dfg> base(k);
    std::vector<double> close_p(k);
    for (size_t i = 0; i < k; ++i) {
      const Region& loop = *run[i];
      const std::vector<const Stmt*> body_stmts =
          loop.children[0]->children.empty()
              ? std::vector<const Stmt*>{}
              : loop.children[0]->children[0]->stmts;
      base[i] = builder_.build(body_stmts, loop.ctrl->cond, loop.ctrl->id);
      check_feasible(base[i]);
      if (resource_min_ii(base[i], alloc_) < 0) return false;
      close_p[i] = loop_prob(loop.ctrl->id);
    }

    struct PhaseSchedule {
      std::vector<std::pair<size_t, int>> active;  // (run index, II)
      std::vector<Dfg> dfgs;                       // indexed by run index
      int hyperperiod = 0;
    };

    // Joint modulo scheduling with every II fixed; nullopt if infeasible.
    auto joint = [&](const std::vector<std::pair<size_t, int>>& loop_iis)
        -> std::optional<PhaseSchedule> {
      int h = 1;
      for (const auto& [i, ii] : loop_iis) h = lcm_int(h, ii);
      if (h > opts_.max_hyperperiod) return std::nullopt;
      PhaseSchedule ps;
      ps.dfgs.assign(k, Dfg{});
      ResourceTable table(lib_, alloc_, h);
      for (const auto& [i, ii] : loop_iis) {
        Dfg dfg = base[i];
        // Fused phases are metrics-grade (rtl_exact = false); pipeline-lag
        // consistency is not enforced here to preserve the paper's
        // steady-state throughput shapes.
        if (!list_schedule(dfg, table, opts_.clock_ns, ii) ||
            !recurrences_ok(dfg, ii))
          return std::nullopt;
        ps.dfgs[i] = std::move(dfg);
      }
      ps.active = loop_iis;
      ps.hyperperiod = h;
      return ps;
    };

    // Admission policy (the Figure 2(b) behavior): loops are admitted in
    // program order; a newcomer may slow itself down (larger II) but must
    // not degrade already-admitted loops, otherwise it waits for a later
    // phase.
    auto admit = [&](unsigned mask) -> std::optional<PhaseSchedule> {
      std::vector<std::pair<size_t, int>> active;
      std::optional<PhaseSchedule> current;
      for (size_t i = 0; i < k; ++i) {
        if (!(mask & (1u << i))) continue;
        const int solo = std::max(1, resource_min_ii(base[i], alloc_));
        for (int ii = solo; ii <= opts_.max_hyperperiod; ++ii) {
          auto cand = active;
          cand.emplace_back(i, ii);
          if (auto ps = joint(cand)) {
            active = std::move(cand);
            current = std::move(ps);
            break;
          }
        }
      }
      return current;
    };

    const unsigned full = (1u << k) - 1u;
    // Every loop must at least pipeline alone, or fusion degrades to the
    // sequential path.
    for (size_t i = 0; i < k; ++i)
      if (!admit(1u << i)) return false;
    if (!admit(full)) return false;

    std::map<unsigned, int> phase_entry;
    std::vector<Attach> exits;
    std::map<size_t, std::pair<int, int>> first_sched;  // loop -> (ii, len)

    // Expected total iterations per loop (geometric mean from the measured
    // closing probability). Phases consume these in a fluid model: the
    // loop whose remaining work rem_i * II_i is smallest finishes first
    // (the node annotations of Figure 2(b)); its exit probability is set
    // so the phase's expected length matches the fluid duration, while
    // non-finishers survive the phase with high probability.
    std::vector<double> initial_rem(k);
    for (size_t i = 0; i < k; ++i)
      initial_rem[i] =
          std::max(0.5, close_p[i] / std::max(1e-6, 1.0 - close_p[i]));

    // Creates the phase for the remaining-loop set `mask` (and transitively
    // its successors); returns its entry state. `rem` is the per-loop
    // remaining-iteration estimate at phase entry; memoized per mask (the
    // dominant exit path fixes each phase's calibration).
    std::function<int(unsigned, std::vector<double>)> generate =
        [&](unsigned mask, std::vector<double> rem) -> int {
      auto memo = phase_entry.find(mask);
      if (memo != phase_entry.end()) return memo->second;
      if (mask == 0) {
        const int join = stg_.add_state("join");
        phase_entry[0] = join;
        exits.push_back({join, 1.0, ""});
        return join;
      }
      auto ps = admit(mask);
      if (!ps) throw Error("fused-loop phase unschedulable (unexpected)");

      const int h = ps->hyperperiod;

      // Fluid duration of this phase: cycles until the first active loop
      // exhausts its remaining iterations. Waiting (non-admitted) loops
      // make no progress.
      double duration = 1e30;
      size_t finisher = ps->active.front().first;
      for (const auto& [i, ii] : ps->active) {
        const double d = rem[i] * ii;
        if (d < duration) {
          duration = d;
          finisher = i;
        }
      }
      duration = std::max(duration, 1.0);

      const int phase_ring_id = next_ring_id_++;
      std::vector<int> ring;
      for (int s = 0; s < h; ++s) {
        ring.push_back(stg_.add_state(""));
        stg_.state(ring.back()).ring_id = phase_ring_id;
      }
      phase_entry[mask] = ring[0];

      // Remaining iterations at phase exit (for successor phases).
      std::vector<double> rem_after = rem;
      for (const auto& [i, ii] : ps->active)
        rem_after[i] = std::max(0.5, rem[i] - duration / ii);

      // Ops: loop i's op at cstep c executes in every slot == c mod II_i.
      struct ExitCheck {
        size_t loop;
        double p;
      };
      std::map<int, std::vector<ExitCheck>> checks;  // slot -> exits
      for (const auto& [i, ii] : ps->active) {
        const Dfg& dfg = ps->dfgs[i];
        first_sched.emplace(i, std::make_pair(ii, dfg.num_csteps()));
        const std::vector<std::string> wires = assign_wires(dfg);
        for (size_t ni = 0; ni < dfg.nodes.size(); ++ni) {
          const DfgNode& node = dfg.nodes[ni];
          const int base_slot = node.cstep % ii;
          for (int s = base_slot; s < h; s += ii) {
            stg::State& st = stg_.state(ring[static_cast<size_t>(s)]);
            st.ops.push_back(make_instance(
                dfg, wires, ni, node.cstep / ii + (s - base_slot) / ii));
            st.reg_reads += node.var_reads;
            if (node.reg_write) st.reg_writes++;
          }
        }
        {
          const int cc =
              dfg.nodes[static_cast<size_t>(dfg.cond_node)].avail_cstep();
          for (int s = cc % ii; s < h; s += ii) {
            stg::State& st = stg_.state(ring[static_cast<size_t>(s)]);
            if (!st.cond_signal.empty()) st.cond_signal += ",";
            st.cond_signal += wires[static_cast<size_t>(dfg.cond_node)];
          }
        }
        // Closing probability calibrated to the fluid phase: the finisher
        // expects duration/II more iterations; survivors rarely exit here.
        const double expect_iters = duration / ii;
        const double p = i == finisher
                             ? expect_iters / (expect_iters + 1.0)
                             : std::min(0.9999, 1.0 - 1.0 / (16.0 * rem[i]));
        const int cond_cstep =
            dfg.nodes[static_cast<size_t>(dfg.cond_node)].avail_cstep();
        for (int s = cond_cstep % ii; s < h; s += ii)
          checks[s].push_back({i, p});
      }

      for (int s = 0; s < h; ++s) {
        const int next = ring[static_cast<size_t>((s + 1) % h)];
        double remaining = 1.0;
        auto it = checks.find(s);
        if (it != checks.end()) {
          for (const ExitCheck& ec : it->second) {
            const int target = generate(mask & ~(1u << ec.loop), rem_after);
            stg_.add_edge(ring[static_cast<size_t>(s)], target,
                          remaining * (1.0 - ec.p),
                          strfmt("exitL%zu", ec.loop));
            remaining *= ec.p;
          }
        }
        stg_.add_edge(ring[static_cast<size_t>(s)], next, remaining,
                      it != checks.end() ? "loop" : "");
      }
      return ring[0];
    };

    const int entry = generate(full, initial_rem);
    connect(in, entry);
    rtl_exact_ = false;  // fused phases are metrics-grade (see header)

    for (size_t i = 0; i < k; ++i) {
      LoopInfo info;
      info.stmt_id = run[i]->ctrl->id;
      info.pipelined = true;
      auto fs = first_sched.find(i);
      if (fs != first_sched.end()) {
        info.ii = fs->second.first;
        info.body_csteps = fs->second.second;
      }
      for (size_t j = 0; j < k; ++j)
        if (j != i) info.fused_with.push_back(run[j]->ctrl->id);
      loops_.push_back(info);
    }

    *out = exits;
    return true;
  }

  const hlslib::Library& lib_;
  const hlslib::Allocation& alloc_;
  const SchedOptions& opts_;
  const sim::Profile& profile_;
  DfgBuilder builder_;
  stg::Stg stg_;
  std::vector<LoopInfo> loops_;
  std::string fn_name_;
  int wire_counter_ = 0;
  int next_ring_id_ = 0;
  bool rtl_exact_ = true;
  int frag_hits_ = 0;
  int frag_misses_ = 0;
};

}  // namespace

Scheduler::Scheduler(const hlslib::Library& lib, const hlslib::Allocation& alloc,
                     const hlslib::FuSelection& sel, SchedOptions opts)
    : lib_(lib), alloc_(alloc), sel_(sel), opts_(opts) {}

ScheduleResult Scheduler::schedule(const ir::Function& fn,
                                   const sim::Profile& profile) const {
  Emitter emitter(lib_, alloc_, sel_, opts_, profile);
  return emitter.run(fn);
}

}  // namespace fact::sched
