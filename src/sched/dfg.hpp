#pragma once

#include <map>
#include <string>
#include <vector>

#include "hlslib/library.hpp"
#include "ir/stmt.hpp"

namespace fact::sched {

/// One operation node of a segment's data-flow graph. Constants and plain
/// variable reads are leaves folded into their consumers; every node here
/// does actual work in some cycle (FU op, memory access, mux, or register
/// copy).
struct DfgNode {
  ir::Op op = ir::Op::Var;  // Var with empty fu == register copy
  bool is_store = false;    // memory write (op is ArrayRead for reads)
  std::string fu;           // bound library FU type; empty = no datapath FU
  std::string array;        // memory ops: which array/memory
  double delay_ns = 0.0;    // at the scheduling supply voltage
  int stmt_id = -1;
  std::string label;
  int var_reads = 0;        // register reads issued by this node
  bool reg_write = false;   // assignment root: writes a register
  std::string def_var;      // variable defined (assignment roots)
  /// Operand tokens in op order: a decimal literal, a variable/register
  /// name, or "%<node>" referencing another node's value (resolved to a
  /// wire name when the schedule is materialized into STG states).
  std::vector<std::string> operand_names;

  std::vector<int> preds;      // data dependencies (chaining applies)
  /// Scalar anti/output dependencies (cstep >= pred's cstep). Honored in
  /// plain scheduling; relaxed in modulo scheduling when `relax_war` is
  /// set, which models modulo variable expansion (each overlapped
  /// iteration reads a shadow copy of the register, standard in software
  /// pipelining). Only single-definition variables are relaxed: one
  /// shadow level cannot represent multiple in-flight versions.
  std::vector<int> war_preds;
  bool relax_war = false;
  /// Memory ordering (store-after-read / store-after-store on one array).
  /// Always honored: memories are not renamed.
  std::vector<int> mem_war_preds;

  // Filled by scheduling:
  int cstep = -1;       // first control step the op occupies
  int span = 1;         // control steps occupied (multi-cycle ops)
  double start_ns = 0.0;
  double end_ns = 0.0;  // completion time within the last occupied cstep

  int avail_cstep() const { return cstep + span - 1; }
};

/// Data-flow graph of one straight-line segment (plus, for loops, the
/// loop-condition expression evaluated once per iteration).
struct Dfg {
  std::vector<DfgNode> nodes;

  /// Reads of each variable's live-in value (no in-segment def yet when
  /// the read was issued). Used for loop-carried recurrence checks.
  std::map<std::string, std::vector<int>> livein_reads;
  /// Final in-segment definition of each variable.
  std::map<std::string, int> final_def;
  /// Node computing the appended condition expression, or -1.
  int cond_node = -1;

  int num_csteps() const;
};

/// Builds segment DFGs, binding each operation to a library FU type using
/// the selection (with the incrementer special case: a self-increment
/// `i = i + 1` binds to an Incrementer when one is allocated). Delays are
/// scaled for the supply voltage per the paper's delay law.
class DfgBuilder {
 public:
  DfgBuilder(const hlslib::Library& lib, const hlslib::Allocation& alloc,
             const hlslib::FuSelection& sel, double vdd, double vt);

  /// DFG for a list of Assign/Store statements; optionally appends a
  /// condition expression (loop or branch condition) evaluated after them.
  Dfg build(const std::vector<const ir::Stmt*>& stmts,
            const ir::ExprPtr& cond = nullptr, int cond_stmt_id = -1) const;

  /// Delay of a single op kind under the current voltage (exposed so the
  /// scheduler can sanity-check the clock constraint).
  double op_delay(ir::Op op) const;

 private:
  struct BuildState;
  int add_expr(Dfg& dfg, BuildState& bs, const ir::ExprPtr& e, int stmt_id,
               const std::string* self_var = nullptr) const;
  std::string bind_fu(const ir::ExprPtr& e,
                      const std::string* self_var) const;

  const hlslib::Library& lib_;
  const hlslib::Allocation& alloc_;
  const hlslib::FuSelection& sel_;
  double scale_;
};

/// Per-cycle resource bookkeeping. In plain mode (hyperperiod 0) each
/// control step has its own row; in modulo mode rows wrap at `hyperperiod`
/// and an op with initiation interval `period` occupies every matching
/// slot (used when independent loops share resources at different rates).
class ResourceTable {
 public:
  ResourceTable(const hlslib::Library& lib, const hlslib::Allocation& alloc,
                int hyperperiod = 0);

  bool can_place(const DfgNode& n, int cstep, int period = 0) const;
  void place(const DfgNode& n, int cstep, int period = 0);

 private:
  struct Row {
    std::map<std::string, int> fu_used;
    std::map<std::string, int> mem_used;
  };
  std::vector<int> slots_for(int cstep, int period) const;
  bool row_can_take(const Row& row, const DfgNode& n) const;

  const hlslib::Allocation& alloc_;
  int hyperperiod_;
  mutable std::vector<Row> rows_;
  int mem_ports_ = 1;  // ports per array memory
};

/// Resource-constrained list scheduling with operator chaining under the
/// clock period. In modulo mode (`period` > 0) resources are reserved
/// modulo the period in `table` (which may be shared across loops being
/// fused). Returns false if some op can never be placed (e.g. allocation
/// count 0 for a needed FU, or delay exceeding the clock).
bool list_schedule(Dfg& dfg, ResourceTable& table, double clock_ns,
                   int period = 0, int max_csteps = 100000);

/// Checks the loop-carried recurrence constraint for a modulo schedule
/// with the given initiation interval: every variable defined in the body
/// and read (live-in) by the next iteration must have
/// def_cstep <= read_cstep + II - 1. Returns true if satisfiable.
bool recurrences_ok(const Dfg& dfg, int ii);

/// Checks that the kernel ring's pipeline lags are consistent: in the
/// emitted ring, an operation reads each producer wire either from the
/// current traversal (producer slot <= consumer slot) or the previous one
/// (slot wraparound). Every operand of an op must therefore agree on the
/// implied iteration (equal lag along all incoming edges); the ring keeps
/// a single copy of each wire, so mixed-lag operands would combine values
/// from different iterations (rotating-register expansion is not
/// modeled). The scheduler bumps II until this holds. Always true for
/// II = 1, where the single ring state executes in dataflow order.
bool pipeline_lags_consistent(const Dfg& dfg, int ii);

/// Minimum II due to resources alone: max over FU types and memories of
/// ceil(uses / available).
int resource_min_ii(const Dfg& dfg, const hlslib::Allocation& alloc,
                    int mem_ports = 1);

}  // namespace fact::sched
