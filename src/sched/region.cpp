#include "sched/region.hpp"

#include <cassert>

namespace fact::sched {

using ir::Stmt;
using ir::StmtKind;

namespace {

RegionPtr build_seq(const std::vector<ir::StmtPtr>& stmts);

void append_stmt_list(Region& seq, const std::vector<ir::StmtPtr>& stmts) {
  Region* open_straight = nullptr;
  auto straight = [&]() -> Region& {
    if (!open_straight) {
      auto r = std::make_unique<Region>();
      r->kind = Region::Kind::Straight;
      open_straight = r.get();
      seq.children.push_back(std::move(r));
    }
    return *open_straight;
  };

  for (const auto& s : stmts) {
    switch (s->kind) {
      case StmtKind::Assign:
      case StmtKind::Store:
        straight().stmts.push_back(s.get());
        break;
      case StmtKind::If: {
        open_straight = nullptr;
        auto r = std::make_unique<Region>();
        r->kind = Region::Kind::If;
        r->ctrl = s.get();
        r->children.push_back(build_seq(s->then_stmts));
        r->children.push_back(build_seq(s->else_stmts));
        seq.children.push_back(std::move(r));
        break;
      }
      case StmtKind::While: {
        open_straight = nullptr;
        auto r = std::make_unique<Region>();
        r->kind = Region::Kind::Loop;
        r->ctrl = s.get();
        r->children.push_back(build_seq(s->then_stmts));
        seq.children.push_back(std::move(r));
        break;
      }
      case StmtKind::Block:
        // Flatten nested blocks into the enclosing sequence so adjacent
        // straight-line code merges into one segment.
        open_straight = nullptr;
        {
          auto sub = std::make_unique<Region>();
          sub->kind = Region::Kind::Seq;
          append_stmt_list(*sub, s->stmts);
          for (auto& c : sub->children) seq.children.push_back(std::move(c));
        }
        open_straight = nullptr;
        break;
    }
  }
}

RegionPtr build_seq(const std::vector<ir::StmtPtr>& stmts) {
  auto seq = std::make_unique<Region>();
  seq->kind = Region::Kind::Seq;
  append_stmt_list(*seq, stmts);
  // Merge adjacent straight segments (block flattening can split them).
  std::vector<RegionPtr> merged;
  for (auto& c : seq->children) {
    if (c->is_straight() && !merged.empty() && merged.back()->is_straight()) {
      auto& dst = merged.back()->stmts;
      dst.insert(dst.end(), c->stmts.begin(), c->stmts.end());
    } else {
      merged.push_back(std::move(c));
    }
  }
  seq->children = std::move(merged);
  return seq;
}

}  // namespace

bool Region::loop_body_is_straight() const {
  assert(kind == Kind::Loop);
  const Region& body = *children[0];
  if (body.children.empty()) return true;
  return body.children.size() == 1 && body.children[0]->is_straight();
}

RegionPtr build_region_tree(const ir::Function& fn) {
  assert(fn.body() && fn.body()->kind == StmtKind::Block);
  return build_seq(fn.body()->stmts);
}

}  // namespace fact::sched
