#pragma once

#include <string>
#include <vector>

#include "hlslib/library.hpp"
#include "ir/function.hpp"
#include "sched/region.hpp"
#include "sim/trace.hpp"
#include "stg/stg.hpp"

namespace fact::sched {

class FragmentCache;

/// Scheduler configuration. Defaults reproduce the paper's setup: 25ns
/// clock, 5V supply, and all three integrated scheduling capabilities on
/// (implicit loop unrolling via pipelining, and concurrent-loop
/// parallelization). Turning capabilities off is used by the ablation
/// experiments.
struct SchedOptions {
  double clock_ns = 25.0;
  double vdd = 5.0;
  double vt = 1.0;
  bool pipeline_loops = true;  // overlap iterations of straight-body loops
  bool fuse_loops = true;      // parallelize independent adjacent loops
  int max_ii = 64;             // give up pipelining past this II
  size_t max_fused = 4;        // at most this many loops fused at once
  int max_hyperperiod = 64;    // fused-phase schedule table size cap
  /// Pathological-schedule guard: abort (fact::Error) when emission
  /// produces more states than this. Downstream STG analysis used to be
  /// O(n^3) in the state count; the sparse stationary solver softens that,
  /// but a runaway candidate (e.g. an over-unrolled loop) would still
  /// drown the optimization loop. 0 = unlimited.
  size_t max_states = 100000;
  /// Stationary-distribution solver used by every downstream analysis of
  /// this schedule's STG (throughput, power, partitioning). Lives here so
  /// one knob steers the whole flow and benches can ablate dense vs
  /// sparse.
  stg::MarkovOptions markov;
  /// Optional region-scoped schedule memoization, shared across schedule()
  /// calls (the optimizer owns one per optimize() run). Borrowed, not
  /// owned; must outlive every Scheduler constructed with these options.
  /// nullptr disables fragment caching. FragmentCache is internally
  /// synchronized, so this is compatible with schedule()'s thread-safety
  /// contract.
  FragmentCache* fragment_cache = nullptr;
};

/// What the scheduler decided for one loop (for reports and benches).
struct LoopInfo {
  int stmt_id = -1;
  bool pipelined = false;
  int ii = 0;           // initiation interval when pipelined
  int body_csteps = 0;  // acyclic schedule length of one iteration
  std::vector<int> fused_with;  // stmt ids of loops sharing a phase run
};

struct ScheduleResult {
  stg::Stg stg;
  std::vector<LoopInfo> loops;
  /// True when the STG is cycle- and value-exact for the RTL backend.
  /// Concurrent-loop (fused) phases are metrics-grade only: their rings
  /// omit per-phase prologue/epilogue, so overlapped iterations read
  /// stale wires around phase transitions. Schedule with
  /// SchedOptions::fuse_loops = false to guarantee RTL-exact output.
  bool rtl_exact = true;
  /// Fragment-cache traffic of this schedule() call (both zero when
  /// SchedOptions::fragment_cache is null). A hit skipped one region's
  /// DFG build + list schedule (or a pipelined loop's whole II search).
  /// The schedule itself is identical either way; under concurrent
  /// schedule() calls only the hit/miss attribution of racing first
  /// computes can vary, never the output.
  int fragment_hits = 0;
  int fragment_misses = 0;

  const LoopInfo* loop_info(int stmt_id) const {
    for (const auto& l : loops)
      if (l.stmt_id == stmt_id) return &l;
    return nullptr;
  }
};

/// The CFI scheduler (the paper's Wavesched-style substrate, ref [13]).
///
/// Capabilities, matching Section 5's description:
///  * resource-constrained list scheduling with operator chaining under
///    the clock period, multi-cycling ops longer than one clock;
///  * implicit loop unrolling / functional pipelining: loops whose body is
///    one straight-line segment are modulo-scheduled at the smallest
///    feasible initiation interval, overlapping iterations;
///  * concurrent loop optimization: adjacent independent loops are fused
///    into shared-resource phases; when one loop exits, the schedule
///    transitions to a phase executing the survivors (the Figure 2(b)
///    n0/n1/n2 structure), generated lazily per reachable loop subset.
///
/// The output STG annotates every state with the operations executed (with
/// iteration tags, as in Figure 1(c)) and every edge with its probability,
/// derived from the profile.
class Scheduler {
 public:
  Scheduler(const hlslib::Library& lib, const hlslib::Allocation& alloc,
            const hlslib::FuSelection& sel, SchedOptions opts = {});

  /// Schedules the function. The profile supplies branch probabilities
  /// (the paper's "simulate once, reuse"); it may be empty, in which case
  /// branches default to probability 0.5.
  ///
  /// Thread-safety: const and safe to call concurrently on one instance.
  /// All mutable scheduling state (resource tables, wave fronts, the STG
  /// under construction) lives in call-local structures; the members below
  /// are read-only after construction. The optimizer relies on this — with
  /// EngineOptions::jobs > 1 its worker threads schedule candidates
  /// through one shared engine-owned Scheduler (see DESIGN.md §"Parallel
  /// candidate evaluation"). Keep it that way: any future cache or
  /// scratch buffer added to this class must be call-local or
  /// internally synchronized.
  ScheduleResult schedule(const ir::Function& fn,
                          const sim::Profile& profile) const;

 private:
  // Stored by value: callers routinely pass temporaries (e.g.
  // FuSelection::defaults(lib)) and the scheduler may outlive them.
  // Immutable after construction (the thread-safety contract of
  // schedule() above).
  hlslib::Library lib_;
  hlslib::Allocation alloc_;
  hlslib::FuSelection sel_;
  SchedOptions opts_;
};

}  // namespace fact::sched
