#pragma once

#include <memory>
#include <vector>

#include "ir/function.hpp"

namespace fact::sched {

/// The scheduler's control skeleton: the statement tree regrouped into
/// straight-line segments, conditionals and loops. Statements inside a
/// Straight region execute under one control context and are scheduled
/// together as a single data-flow graph.
struct Region {
  enum class Kind { Straight, If, Loop, Seq };

  Kind kind = Kind::Seq;

  // Straight: consecutive Assign/Store statements (no control flow).
  std::vector<const ir::Stmt*> stmts;

  // If / Loop: the owning statement (cond, id, probability key).
  const ir::Stmt* ctrl = nullptr;

  // If: children[0]=then, children[1]=else. Loop: children[0]=body.
  // Seq: ordered children.
  std::vector<std::unique_ptr<Region>> children;

  bool is_straight() const { return kind == Kind::Straight; }

  /// A loop body that is one straight segment (no internal control flow)
  /// can be software-pipelined.
  bool loop_body_is_straight() const;
};

using RegionPtr = std::unique_ptr<Region>;

/// Builds the region tree of a function body. Pointers into `fn` remain
/// valid as long as `fn` is alive and unmodified.
RegionPtr build_region_tree(const ir::Function& fn);

}  // namespace fact::sched
