#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "obs/metrics.hpp"
#include "sched/dfg.hpp"

namespace fact::sched {

/// Region-scoped schedule memoization. Candidates within one
/// Apply_transforms run differ only inside the active block, so most of
/// their control regions — straight-line segments, branch/loop condition
/// evaluations, pipelined loop bodies — are byte-for-byte identical to the
/// parent's. The Emitter keys each such fragment by ir::fragment_hash
/// (structure *and* statement ids, since the scheduled DFG's annotations
/// record ids) and reuses the scheduled DFG instead of re-running DFG
/// construction and list scheduling.
///
/// What is cached is the *scheduled DFG*, not STG states: materialization
/// into the STG depends on run-global state (wire numbering, transition
/// stitching) and is cheap, while DFG build + (modulo) list scheduling is
/// the scheduler's hot path. Fused concurrent-loop phases are never cached
/// — their loops share one resource table, so a loop's schedule depends on
/// its phase partners.
///
/// Determinism: an entry's value is a pure function of its key (the
/// scheduler is deterministic and every input that isn't part of the key —
/// library, allocation, FU selection, clock — is fixed for the cache's
/// owner, one engine optimize() call). A hit therefore reproduces exactly
/// what recomputation would, so results are byte-identical whatever the
/// hit/miss interleaving; only the hit/miss *attribution* can shift when
/// worker threads race to insert the same key (see ScheduleResult's
/// counter docs).
///
/// Thread-safe; entries are immutable once inserted and handed out as
/// shared_ptr so readers survive concurrent rehashes.
class FragmentCache {
 public:
  struct Entry {
    /// Scheduling succeeded. When false, `error` holds the fact::Error
    /// message to rethrow so a cached failure is byte-identical to a
    /// recomputed one.
    bool ok = false;
    std::string error;
    /// The scheduled DFG (plain fragments; pipelined winners). May be
    /// empty for a straight region with no operations.
    Dfg dfg;
    /// Pipelined-loop entries only: whether modulo scheduling found a
    /// feasible initiation interval, and which. pipelined == false with
    /// ok == true means "fall back to the sequential loop path".
    bool pipelined = false;
    int ii = 0;
  };

  explicit FragmentCache(size_t capacity = 1 << 16)
      : capacity_(capacity) {}

  /// nullptr on miss; the resident immutable entry on hit. Traffic is
  /// mirrored into the process-wide metrics registry (write-only — the
  /// counters never influence caching, so determinism is untouched).
  std::shared_ptr<const Entry> lookup(uint64_t key) const {
    std::shared_ptr<const Entry> hit;
    {
      std::lock_guard<std::mutex> lock(mu_);
      const auto it = map_.find(key);
      if (it != map_.end()) hit = it->second;
    }
    if (hit) hits_counter().inc();
    else misses_counter().inc();
    return hit;
  }

  /// First insertion wins (concurrent computes of one key produce
  /// identical values, so whichever lands is correct); at capacity new
  /// keys are simply not retained — the entry still serves its computing
  /// caller. Returns the resident entry.
  std::shared_ptr<const Entry> insert(uint64_t key,
                                      std::shared_ptr<const Entry> entry) {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = map_.find(key);
    if (it != map_.end()) return it->second;
    if (map_.size() >= capacity_) return entry;
    map_.emplace(key, entry);
    return entry;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return map_.size();
  }

 private:
  static obs::Counter& hits_counter() {
    static obs::Counter& c = obs::Registry::global().counter(
        "fact_fragment_cache_hits_total",
        "Region schedule fragments reused instead of rescheduled");
    return c;
  }
  static obs::Counter& misses_counter() {
    static obs::Counter& c = obs::Registry::global().counter(
        "fact_fragment_cache_misses_total",
        "Region schedule fragments computed (DFG build + list schedule)");
    return c;
  }

  const size_t capacity_;
  mutable std::mutex mu_;
  std::unordered_map<uint64_t, std::shared_ptr<const Entry>> map_;
};

}  // namespace fact::sched
