#include "bind/binding.hpp"

#include <algorithm>
#include <set>
#include <sstream>

#include "util/error.hpp"
#include "util/strfmt.hpp"

namespace fact::bind {

namespace {

bool is_identifier(const std::string& token) {
  return !token.empty() &&
         !(token[0] == '-' || (token[0] >= '0' && token[0] <= '9'));
}

/// Scheduler-generated wire names are "w<digits>"; anything else that
/// looks like an identifier is an IR variable (register).
bool is_wire(const std::string& token) {
  if (token.size() < 2 || token[0] != 'w') return false;
  for (size_t i = 1; i < token.size(); ++i)
    if (token[i] < '0' || token[i] > '9') return false;
  return true;
}

}  // namespace

double Binding::area(const hlslib::Library& lib) const {
  double a = 0.0;
  for (const auto& [type, n] : fu_instances_used) {
    // Memory entries are keyed "mem1:<array>" (one memory per array).
    const std::string base = type.substr(0, type.find(':'));
    const hlslib::FuType* t = lib.find(base);
    if (t) a += n * t->area;
  }
  const hlslib::FuType* reg = lib.first_of(hlslib::FuClass::Register);
  const double reg_area = reg ? reg->area : 1.0;
  a += static_cast<double>(registers.size()) * reg_area;
  // A mux input costs a fraction of a register bit-slice.
  a += 0.15 * reg_area * total_mux_inputs();
  return a;
}

int Binding::total_mux_inputs() const {
  int total = 0;
  for (const auto& m : muxes) total += m.mux_inputs();
  return total;
}

std::string Binding::report(const hlslib::Library& lib) const {
  std::ostringstream out;
  out << "datapath binding:\n";
  for (const auto& [type, n] : fu_instances_used)
    out << strfmt("  %-8s x%d\n", type.c_str(), n);
  out << strfmt("  registers: %zu (after left-edge sharing)\n",
                registers.size());
  out << strfmt("  mux inputs: %d\n", total_mux_inputs());
  out << strfmt("  estimated area: %.1f\n", area(lib));
  return out.str();
}

Binding bind_datapath(const stg::Stg& stg, const hlslib::Library& lib,
                      const hlslib::Allocation& alloc) {
  Binding binding;

  // ---- operation binding ------------------------------------------------
  // Per FU instance, remember the last first-operand source seen; prefer
  // instances whose port-0 source matches (fewer mux inputs).
  std::map<std::string, std::vector<std::string>> instance_port0;
  // Distinct sources per (type, instance, port).
  std::map<std::string, std::vector<std::vector<std::set<std::string>>>>
      port_sources;

  for (size_t s = 0; s < stg.num_states(); ++s) {
    const stg::State& st = stg.state(static_cast<int>(s));
    std::map<std::string, std::set<int>> used_this_state;
    for (size_t oi = 0; oi < st.ops.size(); ++oi) {
      const stg::OpInstance& op = st.ops[oi];
      if (op.fu_type.empty()) continue;  // controller glue / copies
      const hlslib::FuType& type = lib.get(op.fu_type);
      int limit = alloc.count(op.fu_type);
      if (type.cls == hlslib::FuClass::Memory) limit = 1;  // port per array
      if (limit <= 0)
        throw Error("binding: no allocation for FU type '" + op.fu_type + "'");

      auto& instances = instance_port0[op.fu_type];
      if (instances.empty()) instances.resize(static_cast<size_t>(limit));
      auto& used = used_this_state[op.fu_type +
                                   (type.cls == hlslib::FuClass::Memory
                                        ? ":" + op.array
                                        : "")];

      // Prefer a free instance already fed by our first operand.
      int chosen = -1;
      const std::string first_src =
          op.operands.empty() ? std::string() : op.operands[0];
      for (int k = 0; k < limit; ++k) {
        if (used.count(k)) continue;
        if (instances[static_cast<size_t>(k)] == first_src &&
            !first_src.empty()) {
          chosen = k;
          break;
        }
      }
      if (chosen < 0) {
        // Otherwise the first never-used instance, then any free one.
        for (int k = 0; k < limit && chosen < 0; ++k)
          if (!used.count(k) && instances[static_cast<size_t>(k)].empty())
            chosen = k;
        for (int k = 0; k < limit && chosen < 0; ++k)
          if (!used.count(k)) chosen = k;
      }
      if (chosen < 0)
        throw Error(strfmt(
            "binding: state %zu uses more '%s' instances than allocated",
            s, op.fu_type.c_str()));
      used.insert(chosen);
      if (!first_src.empty())
        instances[static_cast<size_t>(chosen)] = first_src;

      BoundOp b;
      b.state = static_cast<int>(s);
      b.op_index = static_cast<int>(oi);
      b.fu_type = op.fu_type;
      b.fu_instance = chosen;
      binding.ops.push_back(b);

      auto& ports = port_sources[op.fu_type];
      if (ports.size() <= static_cast<size_t>(chosen))
        ports.resize(static_cast<size_t>(chosen) + 1);
      auto& slots = ports[static_cast<size_t>(chosen)];
      if (slots.size() < op.operands.size()) slots.resize(op.operands.size());
      for (size_t p = 0; p < op.operands.size(); ++p)
        slots[p].insert(op.operands[p]);

      const std::string count_key =
          type.cls == hlslib::FuClass::Memory ? op.fu_type + ":" + op.array
                                              : op.fu_type;
      const int prev = binding.fu_instances_used[count_key];
      binding.fu_instances_used[count_key] = std::max(prev, chosen + 1);
    }
  }

  // ---- register binding (left-edge over state-index lifetimes) ----------
  // A variable's lifetime is approximated by the span of states where it
  // is defined or read; state indices follow the scheduler's emission
  // order, which tracks program order.
  struct Life {
    std::string var;
    int lo = 1 << 30;
    int hi = -1;
  };
  std::map<std::string, Life> lives;
  for (size_t s = 0; s < stg.num_states(); ++s) {
    for (const auto& op : stg.state(static_cast<int>(s)).ops) {
      auto touch = [&](const std::string& v) {
        Life& l = lives[v];
        l.var = v;
        l.lo = std::min(l.lo, static_cast<int>(s));
        l.hi = std::max(l.hi, static_cast<int>(s));
      };
      if (!op.def_var.empty()) touch(op.def_var);
      for (const auto& operand : op.operands)
        if (is_identifier(operand) && !is_wire(operand)) touch(operand);
    }
  }
  std::vector<Life> sorted;
  sorted.reserve(lives.size());
  for (auto& [v, l] : lives) sorted.push_back(l);
  std::sort(sorted.begin(), sorted.end(), [](const Life& a, const Life& b) {
    return a.lo != b.lo ? a.lo < b.lo : a.var < b.var;
  });
  std::vector<int> reg_free_at;  // register k is free after this state
  for (const Life& l : sorted) {
    int reg = -1;
    for (size_t k = 0; k < reg_free_at.size(); ++k) {
      if (reg_free_at[k] < l.lo) {
        reg = static_cast<int>(k);
        break;
      }
    }
    if (reg < 0) {
      reg = static_cast<int>(reg_free_at.size());
      reg_free_at.push_back(-1);
      Register r;
      r.name = strfmt("r%d", reg);
      binding.registers.push_back(std::move(r));
    }
    reg_free_at[static_cast<size_t>(reg)] = l.hi;
    binding.registers[static_cast<size_t>(reg)].variables.push_back(l.var);
  }

  // ---- mux statistics ----------------------------------------------------
  for (const auto& [type, instances] : port_sources) {
    for (size_t k = 0; k < instances.size(); ++k) {
      MuxStats m;
      m.fu_type = type;
      m.fu_instance = static_cast<int>(k);
      for (const auto& sources : instances[k])
        m.port_sources.push_back(static_cast<int>(sources.size()));
      binding.muxes.push_back(std::move(m));
    }
  }
  return binding;
}

}  // namespace fact::bind
