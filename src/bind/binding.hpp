#pragma once

#include <map>
#include <string>
#include <vector>

#include "hlslib/library.hpp"
#include "stg/stg.hpp"

namespace fact::bind {

/// A bound operation: which concrete FU instance executes which op in
/// which state.
struct BoundOp {
  int state = -1;
  int op_index = -1;       // index into State::ops
  std::string fu_type;     // library type
  int fu_instance = -1;    // instance number within the type (< allocation)
};

/// One storage register after sharing. `variables` lists the IR variables
/// folded onto it (disjoint lifetimes).
struct Register {
  std::string name;
  std::vector<std::string> variables;
};

/// Multiplexing cost summary for one FU instance: for each input port,
/// how many distinct sources feed it across all states (a port with one
/// source needs no mux; k sources need a k-to-1 mux).
struct MuxStats {
  std::string fu_type;
  int fu_instance = -1;
  std::vector<int> port_sources;  // distinct sources per port

  int mux_inputs() const {
    int total = 0;
    for (int s : port_sources)
      if (s > 1) total += s;
    return total;
  }
};

/// Datapath construction result: the paper's flow synthesizes the
/// transformed CDFG down to a netlist; this module performs the
/// binding steps (operation-to-FU instance, variable-to-register with
/// left-edge sharing) and estimates the interconnect (mux) cost, which
/// the power model's overhead term abstracts.
struct Binding {
  std::vector<BoundOp> ops;
  std::vector<Register> registers;
  std::vector<MuxStats> muxes;
  std::map<std::string, int> fu_instances_used;  // type -> instances

  /// Area: FU instances + registers + mux inputs, using library areas
  /// (mux input cost is a small constant fraction of a register).
  double area(const hlslib::Library& lib) const;

  int total_mux_inputs() const;

  std::string report(const hlslib::Library& lib) const;
};

/// Binds a scheduled STG to a datapath:
///  * operations are assigned to FU instances per state, reusing the
///    instance that already sees the same first operand where possible
///    (mux-aware greedy binding);
///  * variables are assigned to registers by the left-edge algorithm over
///    their state lifetimes (approximated on the STG's state ordering);
///  * mux statistics are derived from the final assignment.
/// Throws fact::Error if a state uses more instances of a type than the
/// allocation provides (a scheduler invariant violation).
Binding bind_datapath(const stg::Stg& stg, const hlslib::Library& lib,
                      const hlslib::Allocation& alloc);

}  // namespace fact::bind
