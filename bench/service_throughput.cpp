// Service throughput bench: drives the in-process factd Service with 1, 4
// and 16 concurrent clients and reports requests/sec and p50/p99 client-side
// latency, cold cache vs warm. Each client pipelines `optimize` requests
// round-robin over the fast Table 2 workloads; the warm phase re-sends the
// same requests to the same service, so every evaluation is served from the
// process-wide EvalCache and only the front end (parse/profile) re-runs.
//
// Results merge into BENCH_fact.json under "service_throughput" alongside
// the parallel_scaling entry.
//
//   service_throughput [--requests N] [--out BENCH_fact.json]

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_merge.hpp"
#include "bench_util.hpp"
#include "serve/service.hpp"
#include "util/parallel.hpp"

namespace {

using namespace fact;
using serve::Json;

// The fast third of Table 2; TEST2/SINTRAN take ~1s per cold optimize and
// would turn a 16-client sweep into minutes on a small container.
const char* kWorkloads[] = {"GCD", "IGF", "PPS"};

struct Phase {
  double wall_ms = 0.0;
  std::vector<double> latencies_ms;  // per request, client-side

  double req_per_s(size_t requests) const {
    return wall_ms > 0.0 ? 1000.0 * static_cast<double>(requests) / wall_ms
                         : 0.0;
  }
  double pct(double q) const {
    if (latencies_ms.empty()) return 0.0;
    std::vector<double> sorted = latencies_ms;
    std::sort(sorted.begin(), sorted.end());
    const double idx = q * static_cast<double>(sorted.size() - 1);
    return sorted[static_cast<size_t>(std::llround(idx))];
  }
};

Json request_for(int id, const char* workload) {
  Json req = Json::object();
  req.set("type", "optimize");
  req.set("id", id);
  req.set("benchmark", workload);
  req.set("quiet", true);
  return req;
}

/// One load wave: `clients` threads, each sending `per_client` requests
/// back-to-back and blocking on every response (closed-loop clients).
Phase run_phase(serve::Service& svc, int clients, int per_client,
                bool& all_ok) {
  Phase phase;
  std::vector<std::vector<double>> lat(static_cast<size_t>(clients));
  std::vector<std::thread> threads;
  std::atomic<bool> ok{true};
  const auto t0 = std::chrono::steady_clock::now();
  for (int c = 0; c < clients; ++c)
    threads.emplace_back([&, c] {
      for (int r = 0; r < per_client; ++r) {
        const char* w = kWorkloads[(c + r) % std::size(kWorkloads)];
        const auto s0 = std::chrono::steady_clock::now();
        const Json resp = svc.submit(request_for(r + 1, w)).wait();
        lat[static_cast<size_t>(c)].push_back(
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - s0)
                .count());
        if (!resp.get_bool("ok")) ok = false;
      }
    });
  for (auto& t : threads) t.join();
  phase.wall_ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
  for (const auto& l : lat)
    phase.latencies_ms.insert(phase.latencies_ms.end(), l.begin(), l.end());
  all_ok = all_ok && ok.load();
  return phase;
}

Json phase_json(const Phase& p, size_t requests) {
  Json j = Json::object();
  j.set("req_per_s", p.req_per_s(requests));
  j.set("p50_ms", p.pct(0.50));
  j.set("p99_ms", p.pct(0.99));
  j.set("wall_ms", p.wall_ms);
  return j;
}

}  // namespace

int main(int argc, char** argv) {
  int per_client = 6;
  std::string out_path = "BENCH_fact.json";
  for (int i = 1; i < argc; ++i) {
    if (!strcmp(argv[i], "--requests") && i + 1 < argc)
      per_client = atoi(argv[++i]);
    else if (!strcmp(argv[i], "--out") && i + 1 < argc)
      out_path = argv[++i];
    else {
      fprintf(stderr, "usage: service_throughput [--requests N] [--out FILE]\n");
      return 2;
    }
  }

  fact::obs::Registry::global().reset();
  printf("factd service throughput: closed-loop clients x %d requests each "
         "(%d hardware thread(s))\n",
         per_client, WorkerPool::hardware_threads());
  bench::rule('=');
  printf("%-8s %9s %18s %18s %9s %18s\n", "clients", "cold r/s",
         "cold p50/p99 ms", "warm p50/p99 ms", "warm r/s", "warm speedup");
  bench::rule();

  Json clients_json = Json::array();
  bool all_ok = true;
  for (const int clients : {1, 4, 16}) {
    // A fresh service per client count: the cold phase really is cold.
    serve::Service svc;
    const size_t requests =
        static_cast<size_t>(clients) * static_cast<size_t>(per_client);
    const Phase cold = run_phase(svc, clients, per_client, all_ok);
    const Phase warm = run_phase(svc, clients, per_client, all_ok);

    const double speedup =
        warm.wall_ms > 0.0 ? cold.wall_ms / warm.wall_ms : 0.0;
    printf("%-8d %9.1f %8.1f /%8.1f %8.1f /%8.1f %9.1f %17.2fx\n", clients,
           cold.req_per_s(requests), cold.pct(0.50), cold.pct(0.99),
           warm.pct(0.50), warm.pct(0.99), warm.req_per_s(requests), speedup);

    Json entry = Json::object();
    entry.set("clients", clients);
    entry.set("requests", static_cast<int64_t>(requests));
    entry.set("cold", phase_json(cold, requests));
    entry.set("warm", phase_json(warm, requests));
    entry.set("warm_speedup", speedup);
    clients_json.push_back(std::move(entry));
  }
  bench::rule();
  if (!all_ok) printf("ERROR: some requests failed\n");

  Json payload = Json::object();
  payload.set("requests_per_client", per_client);
  payload.set("hardware_threads", WorkerPool::hardware_threads());
  Json names = Json::array();
  for (const char* w : kWorkloads) names.push_back(Json(w));
  payload.set("workloads", std::move(names));
  payload.set("clients", std::move(clients_json));
  payload.set("all_ok", all_ok);
  payload.set("metrics", bench::registry_payload());
  bench::merge_bench_json(out_path, "service_throughput", std::move(payload));
  printf("merged service_throughput into %s\n", out_path.c_str());
  return all_ok ? 0 : 1;
}
