// Reproduces the Figure 5/6 algorithm behavior: the Apply_transforms
// population search. Prints the per-generation best score (the convergence
// trace), the winning transform sequence, and the search statistics for
// a CFI benchmark.

#include <cstdio>

#include "bench_util.hpp"

int main() {
  using namespace fact;
  bench::Env env;
  const workloads::Workload w = workloads::make_sintran();

  const sim::Trace trace = sim::generate_trace(w.fn, w.trace, env.seed);
  const auto xforms = xform::TransformLibrary::standard();
  opt::EngineOptions eo;
  eo.max_outer_iters = 6;
  opt::TransformEngine engine(env.lib, w.allocation, env.sel, env.sched_opts,
                              env.power_opts, xforms, eo);
  const opt::Evaluation base =
      engine.evaluate(w.fn, trace, opt::Objective::Throughput, 0);

  printf("Figure 6: Apply_transforms on SINTRAN (throughput objective)\n");
  bench::rule();
  printf("initial schedule length: %.2f cycles\n\n", base.avg_len);

  const opt::EngineResult r = engine.optimize(
      w.fn, trace, opt::Objective::Throughput, {}, base.avg_len);

  printf("convergence (best schedule length after each generation):\n");
  for (size_t i = 0; i < r.score_trace.size(); ++i)
    printf("  generation %zu: %.2f cycles (%.2fx)\n", i, r.score_trace[i],
           base.avg_len / r.score_trace[i]);
  printf("\nwinning transform sequence:\n");
  for (const auto& a : r.applied) printf("  %s\n", a.c_str());
  printf("\nsearch statistics:\n");
  printf("  candidate evaluations (reschedule+estimate): %d\n",
         r.evaluations);
  printf("  candidates rejected by equivalence checking: %d\n",
         r.rejected_nonequivalent);
  printf("  final: %.2f cycles, %.2fx over the untransformed schedule\n",
         r.best_eval.avg_len, base.avg_len / r.best_eval.avg_len);
  return 0;
}
