// Ablations for the design choices DESIGN.md calls out:
//  1. schedule-in-the-loop vs schedule-blind candidate assessment (the
//     paper's central claim);
//  2. population-based selection vs pure greedy (|In_set| = 1);
//  3. cross-basic-block transforms (speculation & select rewrites) vs the
//     algebraic-only subset;
//  4. scheduler capabilities: loop pipelining and concurrent-loop fusion
//     on/off (what M1 alone contributes).

#include <cstdio>

#include "bench_util.hpp"

int main() {
  using namespace fact;
  bench::Env env;
  const auto xforms_all = xform::TransformLibrary::standard();
  const auto xforms_algebraic = xform::TransformLibrary::algebraic_only();

  printf("Ablation study (average schedule length in cycles; lower is "
         "better)\n");
  bench::rule('=');
  printf("%-8s %9s | %9s %9s %9s %9s\n", "Circuit", "full", "no-sched",
         "greedy", "BB-local", "M1");
  bench::rule('=');

  for (const char* name : {"GCD", "TEST2", "SINTRAN", "PPS"}) {
    const workloads::Workload w = workloads::by_name(name);
    const sim::Trace trace = sim::generate_trace(w.fn, w.trace, env.seed);

    auto run = [&](const xform::TransformLibrary& xf, opt::EngineOptions eo) {
      opt::TransformEngine engine(env.lib, w.allocation, env.sel,
                                  env.sched_opts, env.power_opts, xf, eo);
      const opt::Evaluation base =
          engine.evaluate(w.fn, trace, opt::Objective::Throughput, 0);
      return engine
          .optimize(w.fn, trace, opt::Objective::Throughput, {}, base.avg_len)
          .best_eval.avg_len;
    };

    const double full = run(xforms_all, {});
    opt::EngineOptions blind;
    blind.reschedule_in_loop = false;  // static op-count scoring
    const double no_sched = run(xforms_all, blind);
    opt::EngineOptions greedy;
    greedy.in_set_size = 1;
    greedy.k0 = 50.0;  // selection collapses onto the best candidate
    const double greedy_len = run(xforms_all, greedy);
    const double bb_local = run(xforms_algebraic, {});
    const double m1 =
        bench::run_m1(env, w).avg_len;

    printf("%-8s %9.2f | %9.2f %9.2f %9.2f %9.2f\n", name, full, no_sched,
           greedy_len, bb_local, m1);
  }
  bench::rule('=');
  printf(
      "full      = FACT as published (schedule-guided population search,\n"
      "            full transform suite)\n"
      "no-sched  = candidates scored by static op count (no rescheduling in\n"
      "            the loop): loses wherever gains are resource-relative\n"
      "greedy    = |In_set| = 1 with sharp selection: iterative improvement\n"
      "BB-local  = algebraic transforms only (no speculation / select\n"
      "            rewrites): cannot cross basic blocks\n"
      "M1        = scheduler only, no transformations\n");
  return 0;
}
