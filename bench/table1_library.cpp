// Reproduces Table 1: "Functional unit selection, allocation, and
// component information" — the TEST1 library, characterized for energy
// coefficient (E / Vdd^2), delay and area, plus the Section 5 library used
// by every Table 2 experiment.

#include <cstdio>

#include "bench_util.hpp"

int main() {
  using namespace fact;
  printf("Table 1: TEST1 component library (paper values, verbatim)\n");
  bench::rule();
  printf("%-10s %-14s %10s %8s %8s   allocation\n", "FU type", "class",
         "E/Vdd^2", "delay", "area");
  bench::rule();
  const auto table1 = hlslib::Library::table1();
  const auto alloc1 = workloads::make_test1().allocation;
  auto cls_name = [](hlslib::FuClass c) {
    switch (c) {
      case hlslib::FuClass::Adder: return "adder";
      case hlslib::FuClass::Subtracter: return "subtracter";
      case hlslib::FuClass::Multiplier: return "multiplier";
      case hlslib::FuClass::Comparator: return "comparator";
      case hlslib::FuClass::EqComparator: return "eq-comparator";
      case hlslib::FuClass::Incrementer: return "incrementer";
      case hlslib::FuClass::Inverter: return "inverter";
      case hlslib::FuClass::Shifter: return "shifter";
      case hlslib::FuClass::Register: return "register";
      case hlslib::FuClass::Memory: return "memory";
      case hlslib::FuClass::None: return "-";
    }
    return "-";
  };
  for (const auto& t : table1.types()) {
    const int n = alloc1.count(t.name);
    printf("%-10s %-14s %10.1f %8.0f %8.1f   %s\n", t.name.c_str(),
           cls_name(t.cls), t.energy_coeff, t.delay_ns, t.area,
           n > 0 ? std::to_string(n).c_str() : "n/a");
  }

  printf("\nSection 5 library (used by all Table 2 benchmarks, 25ns clock)\n");
  bench::rule();
  printf("%-10s %-14s %10s %8s %8s\n", "FU type", "class", "E/Vdd^2", "delay",
         "area");
  bench::rule();
  for (const auto& t : hlslib::Library::dac98().types())
    printf("%-10s %-14s %10.1f %8.0f %8.1f\n", t.name.c_str(),
           cls_name(t.cls), t.energy_coeff, t.delay_ns, t.area);
  printf(
      "\nPaper delays (Section 5): a1=10ns sb1=10ns mt1=23ns cp1=10ns e1=5ns\n"
      "i1=5ns n1=2ns s1=10ns — reproduced exactly above.\n");
  return 0;
}
