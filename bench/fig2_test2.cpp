// Reproduces Figure 2 / Example 2: the TEST2 behavior, its concurrent-loop
// schedule before transformation (Fig 2(b): L1||L2, then L2||L3 with L3
// throttled, then L3 alone), and after FACT applies the
// (y1+y2)-(y3+y4) -> (y1-y3)+(y2-y4) regrouping (Fig 2(c)), with the
// paper's 1.25x speedup / 25% power figure as reference.

#include <cstdio>

#include "bench_util.hpp"
#include "sim/trace.hpp"

namespace {

void describe_schedule(const char* title, const fact::ir::Function& fn,
                       const fact::workloads::Workload& w,
                       const fact::bench::Env& env) {
  using namespace fact;
  const sim::Trace trace = sim::generate_trace(fn, w.trace, env.seed);
  const sim::Profile profile = sim::profile_function(fn, trace);
  sched::Scheduler scheduler(env.lib, w.allocation, env.sel, env.sched_opts);
  const sched::ScheduleResult sr = scheduler.schedule(fn, profile);

  printf("%s\n", title);
  bench::rule();
  for (const auto& l : sr.loops) {
    printf("  loop@stmt%-3d II=%d body=%d csteps", l.stmt_id, l.ii,
           l.body_csteps);
    if (!l.fused_with.empty()) {
      printf("  (concurrent with:");
      for (int f : l.fused_with) printf(" stmt%d", f);
      printf(")");
    }
    printf("\n");
  }
  printf("  states: %zu, expected schedule length: %.2f cycles\n\n",
         sr.stg.num_states(), stg::average_schedule_length(sr.stg));
}

}  // namespace

int main() {
  using namespace fact;
  bench::Env env;
  const workloads::Workload w = workloads::make_test2();

  printf("Figure 2(a): TEST2 — three independent loops\n");
  bench::rule();
  printf("%s\n", w.source.c_str());

  describe_schedule(
      "Figure 2(b): schedule of the untransformed behavior (M1)", w.fn, w,
      env);

  // FACT throughput optimization: expected to regroup L3's expression.
  opt::FactOptions fo;
  fo.seed = env.seed;
  const auto xf = xform::TransformLibrary::standard();
  const opt::FactResult r =
      opt::run_fact(w.fn, env.lib, w.allocation, env.sel, w.trace, xf, fo);

  printf("FACT-selected transforms:\n");
  for (const auto& a : r.applied) printf("  %s\n", a.c_str());
  const ir::Stmt* store = nullptr;
  r.optimized.for_each([&](const ir::Stmt& s) {
    if (s.kind == ir::StmtKind::Store && s.target == "y") store = &s;
  });
  if (store)
    printf("L3 body after transformation: y[m] = %s\n\n",
           store->value->str().c_str());

  describe_schedule("Figure 2(c): schedule of the transformed behavior",
                    r.optimized, w, env);

  const double speedup = r.initial_avg_len / r.final_avg_len;
  printf("Speedup: %.2fx (%.2f -> %.2f cycles)   [paper: 1.25x, 510 -> 408]\n",
         speedup, r.initial_avg_len, r.final_avg_len);

  // Example 2's closing remark: trading the speedup for power.
  opt::FactOptions fp = fo;
  fp.objective = opt::Objective::Power;
  const opt::FactResult rp =
      opt::run_fact(w.fn, env.lib, w.allocation, env.sel, w.trace, xf, fp);
  printf("Power mode: %.3f -> %.3f units at Vdd=%.2fV (%.1f%% saving)"
         "   [paper: ~25%% via Vdd scaling]\n",
         rp.initial_power.power, rp.final_power.power, rp.final_power.vdd,
         100.0 * (1.0 - rp.final_power.power / rp.initial_power.power));
  return 0;
}
