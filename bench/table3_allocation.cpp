// Reproduces Table 3: allocation constraints for the Table 2 examples.
// Also verifies each allocation is feasible: every benchmark schedules
// under its published constraint set.

#include <cstdio>

#include "bench_util.hpp"

int main() {
  using namespace fact;
  bench::Env env;
  const char* fus[] = {"a1", "sb1", "mt1", "cp1", "e1", "i1", "n1", "s1"};

  printf("Table 3: allocation constraints for the examples in Table 2\n");
  bench::rule();
  printf("%-8s", "Circuit");
  for (const char* f : fus) printf(" %5s", f);
  printf("   feasible?\n");
  bench::rule();
  for (auto& w : workloads::table2_benchmarks()) {
    printf("%-8s", w.name.c_str());
    for (const char* f : fus) {
      const int c = w.allocation.count(f);
      if (c > 0) {
        printf(" %5d", c);
      } else {
        printf(" %5s", "-");
      }
    }
    // Feasibility check: M1 must schedule under this allocation.
    bool ok = true;
    try {
      bench::run_m1(env, w);
    } catch (const fact::Error&) {
      ok = false;
    }
    printf("   %s\n", ok ? "yes" : "NO");
  }
  bench::rule();
  printf(
      "Paper rows: GCD {2 sb1, 1 cp1, 1 e1}; FIR {1 a1, 4 sb1, 1 mt1, 4 n1};\n"
      "Test2 {2 a1, 2 sb1, 2 cp1, 2 i1}; SINTRAN {4 a1, 4 sb1, 5 mt1, 1 cp1,\n"
      "1 i1, 2 n1}; IGF {1 a1, 1 sb1, 2 mt1, 1 cp1, 1 i1, 1 s1}; PPS {5 a1}.\n"
      "All reproduced verbatim above.\n");
  return 0;
}
