// Reproduces Example 1 (Section 2.2): the high-level power estimation
// walkthrough on TEST1 with the Table 1 library — state probabilities,
// average schedule length, per-FU-type expected operation counts and
// energies, the interconnect/controller contribution, and the Vdd-scaling
// step (paper: 119.11 cycles vs a 151.30-cycle base case gives 4.29V).

#include <cstdio>

#include "bench_util.hpp"

int main() {
  using namespace fact;
  const workloads::Workload w = workloads::make_test1();
  const auto lib = hlslib::Library::table1();
  const auto sel = hlslib::FuSelection::defaults(lib);

  const sim::Trace trace = sim::generate_trace(w.fn, w.trace, 7);
  const sim::Profile profile = sim::profile_function(w.fn, trace);
  sched::Scheduler scheduler(lib, w.allocation, sel, {});
  const sched::ScheduleResult sr = scheduler.schedule(w.fn, profile);
  const auto pi = stg::state_probabilities(sr.stg);

  printf("Example 1: power estimation on TEST1 (Table 1 library, 25ns clock)\n");
  bench::rule();
  printf("State probabilities (paper's run: P_S0=0.008 ... P_S5=0.404):\n ");
  for (size_t s = 0; s < pi.size(); ++s) printf(" P_S%zu=%.3f", s, pi[s]);
  printf("\n\n");

  const power::PowerOptions opts;
  const power::PowerEstimate est = power::estimate_power(sr.stg, lib, opts);
  printf("Average schedule length: %.2f cycles   [paper run: 119.11]\n\n",
         est.avg_schedule_length);

  printf("%-14s %16s %18s\n", "component", "ops/execution", "energy (xVdd^2)");
  bench::rule();
  for (const auto& [fu, n] : est.ops_per_exec)
    printf("%-14s %16.2f %18.2f\n", fu.c_str(), n, est.energy_coeff.at(fu));
  printf("%-14s %16.2f %18.2f\n", "<registers>", est.reg_accesses_per_exec,
         est.energy_coeff.at("<registers>"));
  printf("%-14s %16s %18.2f\n", "<overhead>", "-",
         est.energy_coeff.at("<overhead>"));
  bench::rule();
  printf("%-14s %16s %18.2f   [paper run: 665.58]\n", "total", "-",
         est.energy_coeff_total);
  printf("\nPower at 5V: %.4f units\n\n", est.power);

  // Vdd scaling against a base case 151.30/119.11 slower, as in the paper.
  const double base_len = est.avg_schedule_length * 151.30 / 119.11;
  const power::PowerEstimate scaled =
      power::estimate_power_scaled(sr.stg, lib, base_len, opts);
  printf("Vdd scaling: matching a %.2f-cycle base case\n", base_len);
  printf("  scaled Vdd   : %.3f V    [paper: 4.29 V — exact-math check: %s]\n",
         scaled.vdd,
         std::abs(hlslib::scale_vdd_for_slowdown(119.11, 151.30, 1.0) - 4.29) <
                 0.005
             ? "PASS"
             : "FAIL");
  printf("  scaled power : %.4f units (%.1f%% below the 5V figure)\n",
         scaled.power, 100.0 * (1.0 - scaled.power / est.power));
  return 0;
}
