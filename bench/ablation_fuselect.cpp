// Functional-unit selection exploration (an input of Figure 5 turned into
// an optimization axis): with low-power library variants available, the
// explorer moves operation classes onto slower/cheaper units wherever the
// schedule has slack, at iso-throughput. Complements the transformation
// results of Table 2's P-opt columns.

#include <cstdio>

#include "bench_util.hpp"
#include "opt/fuselect.hpp"

int main() {
  using namespace fact;
  const auto lib = hlslib::Library::dac98_lowpower();
  const auto sel = hlslib::FuSelection::defaults(lib);

  printf("FU-selection exploration (low-power variants, iso-throughput)\n");
  bench::rule('=');
  printf("%-8s %10s %10s %8s %7s  swaps\n", "Circuit", "P(default)",
         "P(explored)", "saving", "len");
  bench::rule('=');
  for (auto& w : workloads::table2_benchmarks()) {
    const sim::Trace trace = sim::generate_trace(w.fn, w.trace, 7);
    const sim::Profile profile = sim::profile_function(w.fn, trace);
    sched::Scheduler scheduler(lib, w.allocation, sel, {});
    const auto sr = scheduler.schedule(w.fn, profile);
    const double base_len = stg::average_schedule_length(sr.stg);
    const double base_power = power::estimate_power(sr.stg, lib, {}).power;
    const opt::FuSelectResult r = opt::explore_fu_selection(
        w.fn, lib, w.allocation, sel, trace, {}, {}, base_len);
    printf("%-8s %10.3f %10.3f %7.1f%% %7.1f  %zu\n", w.name.c_str(),
           base_power, r.power, 100.0 * (1.0 - r.power / base_power),
           r.avg_len, r.log.size());
    for (const auto& l : r.log) printf("         %s\n", l.c_str());
  }
  bench::rule('=');
  printf(
      "Swaps are accepted only when rescheduling shows the slower unit\n"
      "fits (chaining/multi-cycling absorbed by slack) — the same\n"
      "schedule-in-the-loop principle the paper applies to transforms.\n");
  return 0;
}
