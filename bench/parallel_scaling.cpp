// Parallel candidate evaluation + memoization bench: per Table 2 workload
// this runs the full FACT search four ways —
//   serial   jobs=1, memoized (the reference; also warms a shared cache)
//   parallel jobs=N, memoized (checked byte-identical to serial: the
//            engine's determinism contract)
//   no-memo  jobs=1, memoization disabled (every evaluation request runs
//            the full profile+schedule+verify pipeline)
//   warm     jobs=1 against the cache the serial leg filled (models
//            design-space exploration re-running the flow)
// and reports wall-clock speedup, the evaluation-cache hit rate, and the
// pipeline-run reduction memoization buys. Results go to stdout and to a
// machine-readable BENCH_fact.json so the perf trajectory is tracked
// PR-over-PR.
//
//   parallel_scaling [--jobs N] [--out BENCH_fact.json]

#include <chrono>
#include <cstring>

#include "bench_merge.hpp"
#include "bench_util.hpp"
#include "util/parallel.hpp"

namespace {

using namespace fact;

struct FlowRun {
  opt::FactResult result;
  double wall_ms = 0.0;
};

// Trace-execution override for smoke runs (0 = FactOptions default).
size_t g_traces = 0;

FlowRun timed_fact(const bench::Env& env, const workloads::Workload& w,
                   int jobs, bool memoize, opt::EvalCache* cache) {
  opt::FactOptions fo;
  fo.sched = env.sched_opts;
  fo.power = env.power_opts;
  fo.seed = env.seed;
  fo.engine.jobs = jobs;
  fo.engine.memoize = memoize;
  if (g_traces > 0) fo.trace_executions = g_traces;
  const auto xf = xform::TransformLibrary::standard();
  const auto t0 = std::chrono::steady_clock::now();
  FlowRun run;
  run.result = opt::run_fact(w.fn, env.lib, w.allocation, env.sel, w.trace, xf,
                             fo, cache);
  run.wall_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
  return run;
}

bool same_result(const opt::FactResult& a, const opt::FactResult& b) {
  return a.optimized.str() == b.optimized.str() && a.applied == b.applied &&
         a.quarantined == b.quarantined;
}

}  // namespace

int main(int argc, char** argv) {
  int jobs = 4;
  std::string out_path = "BENCH_fact.json";
  for (int i = 1; i < argc; ++i) {
    if (!strcmp(argv[i], "--jobs") && i + 1 < argc) jobs = atoi(argv[++i]);
    else if (!strcmp(argv[i], "--traces") && i + 1 < argc)
      g_traces = static_cast<size_t>(atoi(argv[++i]));
    else if (!strcmp(argv[i], "--out") && i + 1 < argc) out_path = argv[++i];
    else {
      fprintf(stderr,
              "usage: parallel_scaling [--jobs N] [--traces N] [--out FILE]\n");
      return 2;
    }
  }

  bench::Env env;
  obs::Registry::global().reset();
  const int hw_threads = WorkerPool::hardware_threads();
  // On a single-core host the parallel leg still runs (the determinism
  // check is as meaningful as ever) but its wall-clock "speedup" is just
  // scheduling noise; flag it so the tracked JSON never reads as a real
  // scaling data point.
  const bool parallel_meaningful = hw_threads > 1;
  printf("FACT parallel evaluation scaling: jobs=1 vs jobs=%d "
         "(%d hardware thread(s))\n",
         jobs, hw_threads);
  if (!parallel_meaningful)
    printf("WARNING: only one hardware thread; parallel speedup numbers are "
           "not meaningful on this host\n");
  bench::rule('=');
  printf("%-9s %8s %8s %8s %8s %8s %6s %6s %5s\n", "workload", "ms(j=1)",
         "ms(j=N)", "speedup", "no-memo", "warm", "hit%", "warm%", "same");
  bench::rule();

  bench::Json json;
  json.begin_object();
  json.key("jobs").value(jobs);
  json.key("hardware_threads").value(hw_threads);
  json.key("parallel_meaningful").value(parallel_meaningful);
  json.key("workloads").begin_array();

  bool all_identical = true;
  double total_serial = 0.0, total_parallel = 0.0;
  double total_nomemo = 0.0, total_warm = 0.0;
  int64_t total_evals = 0, total_hits = 0, total_warm_hits = 0;
  for (const auto& w : workloads::table2_benchmarks()) {
    // The serial leg doubles as the cache-warming leg: the shared cache
    // starts empty, so its results are identical to a flow-local cache.
    opt::EvalCache shared_cache;
    const FlowRun serial = timed_fact(env, w, 1, true, &shared_cache);
    const FlowRun parallel = timed_fact(env, w, jobs, true, nullptr);
    const FlowRun nomemo = timed_fact(env, w, 1, false, nullptr);
    const FlowRun warm = timed_fact(env, w, 1, true, &shared_cache);

    // Determinism contract: byte-identical winner, transform sequence, and
    // accounting for any jobs value — and memoization (cold or warm) must
    // not change what the search finds, only what it recomputes.
    const bool identical =
        same_result(serial.result, parallel.result) &&
        serial.result.evaluations == parallel.result.evaluations &&
        serial.result.cache_hits == parallel.result.cache_hits &&
        same_result(serial.result, nomemo.result) &&
        same_result(serial.result, warm.result);
    all_identical = all_identical && identical;

    const auto& r = serial.result;
    const double hit_rate =
        r.evaluations > 0 ? double(r.cache_hits) / r.evaluations : 0.0;
    const double warm_hit_rate =
        warm.result.evaluations > 0
            ? double(warm.result.cache_hits) / warm.result.evaluations
            : 0.0;
    const double speedup =
        parallel.wall_ms > 0.0 ? serial.wall_ms / parallel.wall_ms : 0.0;
    printf("%-9s %8.1f %8.1f %7.2fx %8.1f %8.1f %5.1f%% %5.1f%% %5s\n",
           w.name.c_str(), serial.wall_ms, parallel.wall_ms, speedup,
           nomemo.wall_ms, warm.wall_ms, 100.0 * hit_rate,
           100.0 * warm_hit_rate, identical ? "yes" : "NO");

    total_serial += serial.wall_ms;
    total_parallel += parallel.wall_ms;
    total_nomemo += nomemo.wall_ms;
    total_warm += warm.wall_ms;
    total_evals += r.evaluations;
    total_hits += r.cache_hits;
    total_warm_hits += warm.result.cache_hits;

    json.begin_object();
    json.key("name").value(w.name);
    json.key("avg_len").value(r.final_avg_len);
    json.key("power").value(r.final_power.power);
    json.key("initial_avg_len").value(r.initial_avg_len);
    json.key("transforms").value(r.applied.size());
    json.key("evaluations").value(r.evaluations);
    json.key("cache_hits").value(r.cache_hits);
    json.key("cache_misses").value(r.cache_misses);
    json.key("cache_hit_rate").value(hit_rate);
    json.key("warm_cache_hits").value(warm.result.cache_hits);
    json.key("warm_cache_hit_rate").value(warm_hit_rate);
    // Fragment-cache traffic from the serial leg only. Deliberately kept
    // out of the `identical` assertion: fragment hit/miss attribution is
    // not jobs-invariant (see EngineResult), only the results are.
    json.key("fragment_hits").value(r.fragment_hits);
    json.key("fragment_misses").value(r.fragment_misses);
    json.key("fragment_hit_rate")
        .value(r.fragment_hits + r.fragment_misses > 0
                   ? double(r.fragment_hits) /
                         (r.fragment_hits + r.fragment_misses)
                   : 0.0);
    json.key("wall_ms_serial").value(serial.wall_ms);
    json.key("wall_ms_parallel").value(parallel.wall_ms);
    json.key("wall_ms_nomemo").value(nomemo.wall_ms);
    json.key("wall_ms_warm").value(warm.wall_ms);
    json.key("speedup").value(speedup);
    json.key("identical").value(identical);
    json.end_object();
  }
  json.end_array();

  bench::rule();
  const double total_speedup =
      total_parallel > 0.0 ? total_serial / total_parallel : 0.0;
  const double total_hit_rate =
      total_evals > 0 ? double(total_hits) / double(total_evals) : 0.0;
  const double total_warm_hit_rate =
      total_evals > 0 ? double(total_warm_hits) / double(total_evals) : 0.0;
  printf("%-9s %8.1f %8.1f %7.2fx %8.1f %8.1f %5.1f%% %5.1f%%\n", "total",
         total_serial, total_parallel, total_speedup, total_nomemo, total_warm,
         100.0 * total_hit_rate, 100.0 * total_warm_hit_rate);
  printf("memoization skipped %lld/%lld pipeline runs cold, %lld/%lld on a "
         "warm cache (re-run %.2fx faster than no-memo)\n",
         static_cast<long long>(total_hits),
         static_cast<long long>(total_evals),
         static_cast<long long>(total_warm_hits),
         static_cast<long long>(total_evals),
         total_warm > 0.0 ? total_nomemo / total_warm : 0.0);
  if (!all_identical)
    printf("ERROR: jobs=%d diverged from jobs=1 on some workload\n", jobs);

  json.key("total_wall_ms_serial").value(total_serial);
  json.key("total_wall_ms_parallel").value(total_parallel);
  json.key("total_wall_ms_nomemo").value(total_nomemo);
  json.key("total_wall_ms_warm").value(total_warm);
  json.key("total_speedup").value(total_speedup);
  json.key("total_cache_hit_rate").value(total_hit_rate);
  json.key("total_warm_cache_hit_rate").value(total_warm_hit_rate);
  json.key("all_identical").value(all_identical);
  json.end_object();
  serve::Json payload = serve::Json::parse(json.str());
  payload.set("metrics", bench::registry_payload());
  bench::merge_bench_json(out_path, "parallel_scaling", std::move(payload));
  printf("merged parallel_scaling into %s\n", out_path.c_str());
  return all_identical ? 0 : 1;
}
