#pragma once

// BENCH_fact.json holds one top-level key per bench so the binaries can run
// in any order without clobbering each other. Each bench builds its payload
// and merges it into whatever the file already holds.

#include <fstream>
#include <sstream>

#include "obs/metrics.hpp"
#include "serve/json.hpp"
#include "util/error.hpp"

namespace fact::bench {

/// The process-wide metrics registry rendered as a Json payload. Benches
/// embed it under a "metrics" key so every BENCH_fact.json entry carries
/// the same counter schema as `factc --metrics-out` and the factd
/// `metrics` endpoint. Reset the registry at bench start for a clean run.
inline serve::Json registry_payload() {
  return serve::Json::parse(obs::to_json(obs::Registry::global().snapshot()));
}

inline void merge_bench_json(const std::string& path, const std::string& key,
                             serve::Json payload) {
  serve::Json root = serve::Json::object();
  {
    std::ifstream in(path);
    if (in) {
      std::stringstream ss;
      ss << in.rdbuf();
      try {
        serve::Json existing = serve::Json::parse(ss.str());
        if (existing.is_object()) root = std::move(existing);
      } catch (const Error&) {
        // Pre-merge or corrupt file: rebuild it around this bench's entry.
      }
    }
  }
  root.set(key, std::move(payload));
  std::ofstream out(path);
  if (!out) throw Error("cannot write " + path);
  out << root.dump() << "\n";
}

}  // namespace fact::bench
