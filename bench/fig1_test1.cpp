// Reproduces Figure 1: the TEST1 behavior (a), its CDFG (b), and the STG
// of its schedule (c), with per-state operation annotations (iteration
// tags included) and transition probabilities. DOT renderings of both
// graphs are written next to the binary.

#include <cstdio>
#include <fstream>

#include "bench_util.hpp"
#include "cdfg/cdfg.hpp"

int main() {
  using namespace fact;
  const workloads::Workload w = workloads::make_test1();
  const auto lib = hlslib::Library::table1();
  const auto sel = hlslib::FuSelection::defaults(lib);

  printf("Figure 1(a): TEST1 source\n");
  bench::rule();
  printf("%s\n", w.source.c_str());

  const cdfg::Cdfg graph = cdfg::Cdfg::from_function(w.fn);
  size_t joins = 0, selects = 0, ops = 0;
  for (const auto& n : graph.nodes()) {
    if (n.kind == cdfg::NodeKind::Join) joins++;
    if (n.kind == cdfg::NodeKind::Select) selects++;
    if (n.kind == cdfg::NodeKind::Op) ops++;
  }
  printf("Figure 1(b): CDFG — %zu nodes (%zu ops, %zu joins, %zu selects)\n",
         graph.size(), ops, joins, selects);
  std::ofstream("fig1_test1_cdfg.dot") << graph.dot("test1_cdfg");
  printf("  (written to fig1_test1_cdfg.dot)\n\n");

  const sim::Trace trace = sim::generate_trace(w.fn, w.trace, 7);
  const sim::Profile profile = sim::profile_function(w.fn, trace);
  int while_id = -1, if_id = -1;
  w.fn.for_each([&](const ir::Stmt& s) {
    if (s.kind == ir::StmtKind::While) while_id = s.id;
    if (s.kind == ir::StmtKind::If) if_id = s.id;
  });
  printf("Profiled branch probabilities (paper: while closes 0.98, if 0.37):\n");
  printf("  while (c2 > i) closes with p = %.3f\n", profile.branch_prob(while_id));
  printf("  if (i < c1) taken with    p = %.3f\n\n", profile.branch_prob(if_id));

  sched::Scheduler scheduler(lib, w.allocation, sel, {});
  const sched::ScheduleResult sr = scheduler.schedule(w.fn, profile);
  const auto pi = stg::state_probabilities(sr.stg);

  printf("Figure 1(c): STG of the schedule — %zu states\n",
         sr.stg.num_states());
  bench::rule();
  for (size_t s = 0; s < sr.stg.num_states(); ++s) {
    const stg::State& st = sr.stg.state(static_cast<int>(s));
    printf("S%-2zu  pi=%.3f  ops:", s, pi[s]);
    if (st.ops.empty()) printf(" (none)");
    for (const auto& op : st.ops) {
      printf(" %s", op.label.c_str());
      if (op.iteration != 0) printf("_%d", op.iteration);
    }
    printf("\n");
    for (int ei : st.out_edges) {
      const stg::Edge& e = sr.stg.edge(ei);
      printf("      -> S%d (%.2f)%s%s\n", e.to, e.prob,
             e.cond_label.empty() ? "" : (" " + e.cond_label).c_str(),
             e.exec_boundary ? " [execution boundary]" : "");
    }
  }
  std::ofstream("fig1_test1_stg.dot") << sr.stg.dot("test1_stg");
  printf("  (written to fig1_test1_stg.dot)\n");
  printf("\nAverage schedule length: %.2f cycles per execution\n",
         stg::average_schedule_length(sr.stg, pi));
  return 0;
}
