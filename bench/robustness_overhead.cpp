// Robustness bench: what the guarded pipeline costs and what it buys.
//
// Part 1 — verification overhead: the same optimization run at
// --validate off / fast / full, reporting wall-clock per level and
// confirming the winner is identical (validation must never change the
// outcome on healthy inputs, only its cost).
//
// Part 2 — graceful degradation under fault injection: corrupt an
// increasing fraction of transform rewrites and report how many
// candidates the engine quarantines, whether the result stays
// equivalent, and when the search degrades to the baseline design.

#include <chrono>
#include <cstdio>

#include "bench_util.hpp"
#include "verify/fault_injector.hpp"
#include "verify/verify.hpp"

namespace {

using namespace fact;

double run_timed(const bench::Env& env, const workloads::Workload& w,
                 const sim::Trace& trace, const xform::TransformLibrary& xf,
                 verify::Level level, opt::EngineResult* out) {
  opt::EngineOptions eo;
  eo.validate = level;
  opt::TransformEngine engine(env.lib, w.allocation, env.sel, env.sched_opts,
                              env.power_opts, xf, eo);
  const opt::Evaluation base =
      engine.evaluate(w.fn, trace, opt::Objective::Throughput, 0);
  const auto t0 = std::chrono::steady_clock::now();
  *out = engine.optimize(w.fn, trace, opt::Objective::Throughput, {},
                         base.avg_len);
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main() {
  bench::Env env;
  const auto xf = xform::TransformLibrary::standard();

  printf("Verification overhead (one optimize() run per level; ms)\n");
  bench::rule('=');
  printf("%-8s %9s %9s %9s | %9s %9s  %s\n", "Circuit", "off", "fast", "full",
         "fast-ovh", "full-ovh", "same winner");
  bench::rule('=');
  for (const char* name : {"GCD", "TEST2", "SINTRAN", "PPS"}) {
    const workloads::Workload w = workloads::by_name(name);
    const sim::Trace trace = sim::generate_trace(w.fn, w.trace, env.seed);
    opt::EngineResult r_off, r_fast, r_full;
    const double t_off =
        run_timed(env, w, trace, xf, verify::Level::Off, &r_off);
    const double t_fast =
        run_timed(env, w, trace, xf, verify::Level::Fast, &r_fast);
    const double t_full =
        run_timed(env, w, trace, xf, verify::Level::Full, &r_full);
    const bool same = r_off.best.str() == r_fast.best.str() &&
                      r_fast.best.str() == r_full.best.str();
    printf("%-8s %9.1f %9.1f %9.1f | %8.1f%% %8.1f%%  %s\n", name, t_off,
           t_fast, t_full, 100.0 * (t_fast - t_off) / t_off,
           100.0 * (t_full - t_off) / t_off, same ? "yes" : "NO");
  }
  bench::rule('=');

  printf("\nGraceful degradation under fault injection (GCD)\n");
  bench::rule('=');
  printf("%-6s %9s %11s %9s %9s  %s\n", "rate", "injected", "quarantined",
         "avg len", "equiv", "degraded");
  bench::rule('=');
  const workloads::Workload w = workloads::by_name("GCD");
  const sim::Trace trace = sim::generate_trace(w.fn, w.trace, env.seed);
  for (const double rate : {0.0, 0.2, 0.5, 1.0}) {
    verify::FaultInjectorOptions fo;
    fo.rate = rate;
    fo.seed = 17;
    verify::FaultInjector injector(xf, fo);
    opt::EngineResult r;
    run_timed(env, w, trace, injector, verify::Level::Full, &r);
    const bool equiv = sim::equivalent_on_trace(w.fn, r.best, trace);
    printf("%-6.2f %9d %11d %9.2f %9s  %s\n", rate, injector.injected_total(),
           r.quarantined, r.best_eval.avg_len, equiv ? "yes" : "NO",
           r.degraded_to_baseline ? "baseline" : "-");
  }
  bench::rule('=');
  printf(
      "off/fast/full = EngineOptions::validate level. fast adds the deep IR\n"
      "checks on every applied rewrite; full additionally verifies every\n"
      "candidate schedule (STG structure + allocation legality). The winner\n"
      "must be identical across levels: checking is observability, not\n"
      "policy. Under injection the engine quarantines corrupted candidates\n"
      "and, at rate 1.0, returns the untransformed baseline design.\n");
  return 0;
}
