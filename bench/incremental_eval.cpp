// Incremental-evaluation pipeline bench: quantifies the three layers that
// make candidate evaluation cheap on the Table 2 workloads —
//   solver    dense Gaussian elimination vs sparse Gauss-Seidel on each
//             workload's final STG (microbenchmark: µs per stationary
//             solve, plus a cross-check that the two agree to 1e-9)
//   fragments schedule-fragment cache traffic of one full FACT flow
//             (regions rescheduled vs reused across candidates)
//   COW IR    clone instrumentation from the same flow: how many O(1)
//             Function::clone calls ran vs how many Stmt nodes actually
//             had to be copied, and the estimated bytes that sharing saved
//             relative to eager deep cloning
// Results go to stdout and merge into BENCH_fact.json under
// "incremental_eval".
//
//   incremental_eval [--reps N] [--traces N] [--out BENCH_fact.json]

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>

#include "bench_merge.hpp"
#include "bench_util.hpp"
#include "ir/stmt.hpp"
#include "stg/stg.hpp"

namespace {

using namespace fact;

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Microseconds per stationary solve, averaged over `reps` runs.
double time_solve_us(const stg::Stg& s, const stg::MarkovOptions& mo,
                     stg::MarkovStats* stats, int reps) {
  double sink = 0.0;
  const double t0 = now_ms();
  for (int i = 0; i < reps; ++i) {
    const auto pi = stg::state_probabilities(s, mo, stats);
    sink += pi.empty() ? 0.0 : pi[0];
  }
  const double ms = now_ms() - t0;
  // Keep the accumulated value observable so the loop cannot be elided.
  if (!std::isfinite(sink)) fprintf(stderr, "non-finite pi\n");
  return reps > 0 ? 1000.0 * ms / reps : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  int reps = 100;
  size_t traces = 0;  // 0 = FactOptions default
  std::string out_path = "BENCH_fact.json";
  for (int i = 1; i < argc; ++i) {
    if (!strcmp(argv[i], "--reps") && i + 1 < argc) reps = atoi(argv[++i]);
    else if (!strcmp(argv[i], "--traces") && i + 1 < argc)
      traces = static_cast<size_t>(atoi(argv[++i]));
    else if (!strcmp(argv[i], "--out") && i + 1 < argc) out_path = argv[++i];
    else {
      fprintf(stderr,
              "usage: incremental_eval [--reps N] [--traces N] [--out FILE]\n");
      return 2;
    }
  }

  bench::Env env;
  obs::Registry::global().reset();
  printf("FACT incremental evaluation: sparse solve, fragment reuse, "
         "copy-on-write IR\n");
  bench::rule('=');
  printf("%-9s %6s %9s %9s %8s %6s %6s %8s %9s %8s\n", "workload", "states",
         "dense_us", "sparse_us", "speedup", "sweeps", "frag%", "clones",
         "copies", "KBsaved");
  bench::rule();

  bench::Json json;
  json.begin_object();
  json.key("solver_reps").value(reps);
  json.key("workloads").begin_array();

  bool solvers_agree = true;
  double total_flow_ms = 0.0;
  int64_t total_clones = 0, total_copies = 0, total_bytes_saved = 0;
  int64_t total_frag_hits = 0, total_frag_misses = 0;
  for (const auto& w : workloads::table2_benchmarks()) {
    // One full flow per workload: fragment traffic and COW instrumentation
    // come from here. The counters are process-global, so reset first (the
    // benches run flows strictly serially).
    opt::FactOptions fo;
    fo.sched = env.sched_opts;
    fo.power = env.power_opts;
    fo.seed = env.seed;
    if (traces > 0) fo.trace_executions = traces;
    const auto xf = xform::TransformLibrary::standard();
    ir::cow::reset();
    const double t0 = now_ms();
    const auto r = opt::run_fact(w.fn, env.lib, w.allocation, env.sel,
                                 w.trace, xf, fo);
    const double flow_ms = now_ms() - t0;
    const int64_t clones = static_cast<int64_t>(ir::cow::clones());
    const int64_t copies = static_cast<int64_t>(ir::cow::node_copies());
    // What eager deep cloning would have copied, minus what COW actually
    // copied. The per-function statement count drifts as transforms land,
    // so the input's count is an estimate — close enough to size the win.
    const int64_t stmts = static_cast<int64_t>(w.fn.stmt_count());
    const int64_t bytes_saved =
        std::max<int64_t>(0, clones * stmts - copies) *
        static_cast<int64_t>(sizeof(ir::Stmt));

    // Solver ablation on the flow's final STG: force each solver and time
    // it; they must agree to 1e-9 per state (the sparse path's acceptance
    // bar — Gauss-Seidel converges to 1e-12 L1 by default).
    const stg::Stg& s = r.schedule.stg;
    stg::MarkovOptions dense_opts;
    dense_opts.solver = stg::MarkovSolver::Dense;
    stg::MarkovOptions sparse_opts;
    sparse_opts.solver = stg::MarkovSolver::Sparse;
    stg::MarkovStats stats;
    const double dense_us = time_solve_us(s, dense_opts, nullptr, reps);
    const double sparse_us = time_solve_us(s, sparse_opts, &stats, reps);
    const auto pi_dense = stg::state_probabilities(s, dense_opts);
    const auto pi_sparse = stg::state_probabilities(s, sparse_opts);
    double max_diff = 0.0;
    for (size_t i = 0; i < pi_dense.size(); ++i)
      max_diff = std::max(max_diff, std::fabs(pi_dense[i] - pi_sparse[i]));
    solvers_agree = solvers_agree && max_diff <= 1e-9;

    const int frag_total = r.fragment_hits + r.fragment_misses;
    const double frag_rate =
        frag_total > 0 ? double(r.fragment_hits) / frag_total : 0.0;
    const double solve_speedup = sparse_us > 0.0 ? dense_us / sparse_us : 0.0;
    printf("%-9s %6zu %9.1f %9.1f %7.2fx %6d %5.1f%% %8lld %9lld %8.1f\n",
           w.name.c_str(), s.states().size(), dense_us, sparse_us, solve_speedup,
           stats.sweeps, 100.0 * frag_rate, static_cast<long long>(clones),
           static_cast<long long>(copies), bytes_saved / 1024.0);

    total_flow_ms += flow_ms;
    total_clones += clones;
    total_copies += copies;
    total_bytes_saved += bytes_saved;
    total_frag_hits += r.fragment_hits;
    total_frag_misses += r.fragment_misses;

    json.begin_object();
    json.key("name").value(w.name);
    json.key("states").value(s.states().size());
    json.key("dense_solve_us").value(dense_us);
    json.key("sparse_solve_us").value(sparse_us);
    json.key("solve_speedup").value(solve_speedup);
    json.key("sparse_sweeps").value(stats.sweeps);
    json.key("sparse_used").value(stats.used_sparse);
    json.key("sparse_fell_back").value(stats.fell_back);
    json.key("solver_max_abs_diff").value(max_diff);
    json.key("flow_wall_ms").value(flow_ms);
    json.key("fragment_hits").value(r.fragment_hits);
    json.key("fragment_misses").value(r.fragment_misses);
    json.key("fragment_hit_rate").value(frag_rate);
    json.key("cow_clones").value(clones);
    json.key("cow_node_copies").value(copies);
    json.key("clone_bytes_saved").value(bytes_saved);
    json.end_object();
  }
  json.end_array();

  bench::rule();
  const int64_t frag_total = total_frag_hits + total_frag_misses;
  const double total_frag_rate =
      frag_total > 0 ? double(total_frag_hits) / double(frag_total) : 0.0;
  printf("flows: %.1f ms total; fragment reuse %.1f%%; COW copied %lld "
         "nodes across %lld clones (~%.1f KB not copied)\n",
         total_flow_ms, 100.0 * total_frag_rate,
         static_cast<long long>(total_copies),
         static_cast<long long>(total_clones), total_bytes_saved / 1024.0);
  if (!solvers_agree)
    printf("ERROR: dense and sparse stationary solves disagree (> 1e-9)\n");

  json.key("total_flow_wall_ms").value(total_flow_ms);
  json.key("total_fragment_hit_rate").value(total_frag_rate);
  json.key("total_cow_clones").value(total_clones);
  json.key("total_cow_node_copies").value(total_copies);
  json.key("total_clone_bytes_saved").value(total_bytes_saved);
  json.key("solvers_agree").value(solvers_agree);
  json.end_object();
  serve::Json payload = serve::Json::parse(json.str());
  payload.set("metrics", bench::registry_payload());
  bench::merge_bench_json(out_path, "incremental_eval", std::move(payload));
  printf("merged incremental_eval into %s\n", out_path.c_str());
  return solvers_agree ? 0 : 1;
}
