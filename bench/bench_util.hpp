#pragma once

// Shared setup for the reproduction benches: every table/figure binary
// uses the Section 5 library, the Table 3 allocations carried by each
// workload, and deterministic seeds, so two runs print identical tables.

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "opt/baselines.hpp"
#include "opt/fact.hpp"
#include "util/error.hpp"
#include "workloads/workloads.hpp"

namespace fact::bench {

struct Env {
  hlslib::Library lib = hlslib::Library::dac98();
  hlslib::FuSelection sel = hlslib::FuSelection::defaults(lib);
  sched::SchedOptions sched_opts;
  power::PowerOptions power_opts;
  uint64_t seed = 7;
  int jobs = 1;  // worker threads for the FACT engine (0 = hardware)
};

struct MethodRun {
  double avg_len = 0.0;
  double power_nominal = 0.0;     // at 5V
  double power_scaled = 0.0;      // P-opt mode (Vdd-scaled, iso-throughput)
  double vdd = 5.0;
  size_t transforms = 0;
};

inline MethodRun run_m1(const Env& env, const workloads::Workload& w) {
  const auto r = opt::run_m1(w.fn, env.lib, w.allocation, env.sel, w.trace,
                             env.sched_opts, env.power_opts, env.seed);
  MethodRun out;
  out.avg_len = r.avg_len;
  out.power_nominal = r.power_nominal.power;
  out.power_scaled = r.power_nominal.power;  // M1 is its own base case
  return out;
}

inline MethodRun run_flamel(const Env& env, const workloads::Workload& w) {
  const auto r = opt::run_flamel(w.fn, env.lib, w.allocation, env.sel,
                                 w.trace, env.sched_opts, env.power_opts,
                                 env.seed);
  MethodRun out;
  out.avg_len = r.avg_len;
  out.power_nominal = r.power_nominal.power;
  out.transforms = r.applied.size();
  return out;
}

inline MethodRun run_fact(const Env& env, const workloads::Workload& w,
                          opt::Objective objective) {
  opt::FactOptions fo;
  fo.objective = objective;
  fo.sched = env.sched_opts;
  fo.power = env.power_opts;
  fo.seed = env.seed;
  fo.engine.jobs = env.jobs;
  const auto xf = xform::TransformLibrary::standard();
  const auto r =
      opt::run_fact(w.fn, env.lib, w.allocation, env.sel, w.trace, xf, fo);
  MethodRun out;
  out.avg_len = r.final_avg_len;
  out.power_nominal = r.final_power.power;
  out.power_scaled = r.final_power.power;
  out.vdd = r.final_power.vdd;
  out.transforms = r.applied.size();
  return out;
}

/// Throughput in the paper's Table 2 unit: cycles^-1 x 1000.
inline double throughput_k(double avg_len) { return 1000.0 / avg_len; }

/// Minimal JSON emitter for machine-readable bench results (BENCH_*.json):
/// an append-only builder with begin/end pairs for objects and arrays and
/// comma bookkeeping per nesting level. Just enough for flat metric
/// records — no escaping beyond quotes/backslashes, numbers via %.6g.
class Json {
 public:
  Json& begin_object() { return open('{'); }
  Json& end_object() { return close('}'); }
  Json& begin_array() { return open('['); }
  Json& end_array() { return close(']'); }

  Json& key(const std::string& k) {
    comma();
    out_ += quote(k) + ":";
    pending_value_ = true;
    return *this;
  }

  Json& value(const std::string& v) { return raw(quote(v)); }
  Json& value(const char* v) { return raw(quote(v)); }
  Json& value(double v) {
    char buf[32];
    snprintf(buf, sizeof buf, "%.6g", v);
    return raw(buf);
  }
  Json& value(int64_t v) { return raw(std::to_string(v)); }
  Json& value(int v) { return raw(std::to_string(v)); }
  Json& value(size_t v) { return raw(std::to_string(v)); }
  Json& value(bool v) { return raw(v ? "true" : "false"); }

  const std::string& str() const { return out_; }

  void write(const std::string& path) const {
    std::ofstream out(path);
    if (!out) throw Error("cannot write " + path);
    out << out_ << "\n";
  }

 private:
  static std::string quote(const std::string& s) {
    std::string q = "\"";
    for (char c : s) {
      if (c == '"' || c == '\\') q += '\\';
      q += c;
    }
    return q + "\"";
  }

  void comma() {
    if (!first_.empty() && !first_.back())
      out_ += ",";
    if (!first_.empty()) first_.back() = false;
  }

  Json& raw(const std::string& text) {
    if (!pending_value_) comma();
    pending_value_ = false;
    out_ += text;
    return *this;
  }

  Json& open(char c) {
    if (!pending_value_) comma();
    pending_value_ = false;
    out_ += c;
    first_.push_back(true);
    return *this;
  }

  Json& close(char c) {
    first_.pop_back();
    out_ += c;
    return *this;
  }

  std::string out_;
  std::vector<bool> first_;
  bool pending_value_ = false;
};

inline void rule(char c = '-', int n = 78) {
  for (int i = 0; i < n; ++i) std::putchar(c);
  std::putchar('\n');
}

}  // namespace fact::bench
