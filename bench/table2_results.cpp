// Reproduces Table 2: throughput (T-opt: M1 / Flamel / FACT) and power
// (P-opt: M1 vs FACT at iso-throughput) for the six benchmarks, plus the
// Section 5 summary ratios (paper: FACT 2.7x over M1 and 2.1x over Flamel
// in throughput; 62.1% average power saving over M1).

#include <cmath>
#include <cstdio>

#include "bench_util.hpp"

namespace {

struct PaperRow {
  const char* name;
  double t_m1, t_fl, t_fact;  // cycles^-1 x 1000
  double p_m1, p_fact;        // mW
};

// Table 2 of the paper, for side-by-side reference.
constexpr PaperRow kPaper[] = {
    {"GCD", 6.3, 10.1, 16.9, 2.8, 0.9},   {"FIR", 167, 167, 1000, 7.6, 1.7},
    {"TEST2", 2.0, 2.0, 2.5, 11.3, 8.4},  {"SINTRAN", 1.3, 1.7, 2.5, 11.4, 4.0},
    {"IGF", 0.2, 0.3, 0.3, 9.1, 7.0},     {"PPS", 125, 333, 333, 9.9, 3.6},
};

}  // namespace

int main() {
  using namespace fact;
  bench::Env env;

  printf("Table 2: throughput and power results (Clk = 25ns)\n");
  printf("T = throughput (cycles^-1 x 1000), P = power (model units)\n");
  printf("Paper values shown in [brackets]; shapes, not absolutes, are the\n");
  printf("reproduction target (the substrate scheduler differs).\n");
  bench::rule('=');
  printf("%-8s | %28s | %21s\n", "", "T-opt (higher is better)",
         "P-opt (lower is better)");
  printf("%-8s | %8s %9s %9s | %10s %10s\n", "Circuit", "M1", "Flamel",
         "FACT", "M1", "FACT");
  bench::rule('=');

  double t_ratio_m1 = 1.0, t_ratio_fl = 1.0, p_saving_total = 0.0;
  int n = 0;
  for (const auto& paper : kPaper) {
    const workloads::Workload w = workloads::by_name(paper.name);
    const bench::MethodRun m1 = bench::run_m1(env, w);
    const bench::MethodRun fl = bench::run_flamel(env, w);
    const bench::MethodRun ft =
        bench::run_fact(env, w, opt::Objective::Throughput);
    const bench::MethodRun fp = bench::run_fact(env, w, opt::Objective::Power);

    printf("%-8s | %8.2f %9.2f %9.2f | %10.3f %10.3f\n", paper.name,
           bench::throughput_k(m1.avg_len), bench::throughput_k(fl.avg_len),
           bench::throughput_k(ft.avg_len), m1.power_nominal, fp.power_scaled);
    printf("%-8s | [%6.1f] [%7.1f] [%7.1f] | [%8.1f] [%8.1f]\n", "",
           paper.t_m1, paper.t_fl, paper.t_fact, paper.p_m1, paper.p_fact);

    t_ratio_m1 *= m1.avg_len / ft.avg_len;
    t_ratio_fl *= fl.avg_len / ft.avg_len;
    p_saving_total += 1.0 - fp.power_scaled / m1.power_nominal;
    n++;
  }
  bench::rule('=');
  printf("Geomean FACT/M1 throughput gain     : %.2fx   [paper: 2.7x]\n",
         std::pow(t_ratio_m1, 1.0 / n));
  printf("Geomean FACT/Flamel throughput gain : %.2fx   [paper: 2.1x]\n",
         std::pow(t_ratio_fl, 1.0 / n));
  printf("Average power saving vs M1          : %.1f%%  [paper: 62.1%%]\n",
         100.0 * p_saving_total / n);
  return 0;
}
