// Reproduces Figure 3: resource utilization of L3's body before and after
// the Example 2 regrouping, in the resource environment of the concurrent
// loop L2 (which consumes one adder per cycle). Before: (y1+y2)-(y3+y4)
// needs 2 adders + 1 subtracter per iteration and only starts an iteration
// every other cycle; after: (y1-y3)+(y2-y4) needs 1 adder + 2 subtracters
// and starts one iteration every cycle.

#include <cstdio>

#include "bench_util.hpp"
#include "lang/parser.hpp"
#include "sched/dfg.hpp"
#include "sched/region.hpp"

namespace {

void show(const char* title, const std::string& l3_expr,
          const fact::bench::Env& env, const fact::hlslib::Allocation& alloc) {
  using namespace fact;
  using namespace fact::sched;
  // L2-like companion loop (one adder per cycle) plus the L3 body.
  const std::string src = "F(int b0) {\n"
                          "  input int z[400]; int z1[400];\n"
                          "  input int y1[300]; input int y2[300];\n"
                          "  input int y3[300]; input int y4[300];\n"
                          "  int y[300];\n"
                          "  int j = 0; int m = 0;\n"
                          "  while (j < 400) { z1[j] = z[j] + b0; j = j + 1; }\n"
                          "  while (m < 300) { y[m] = " + l3_expr +
                          "; m = m + 1; }\n"
                          "}\n";
  const ir::Function fn = lang::parse_function(src);
  const sim::Trace trace = sim::generate_trace(fn, {}, env.seed);
  const sim::Profile profile = sim::profile_function(fn, trace);
  Scheduler scheduler(env.lib, alloc, env.sel, env.sched_opts);
  const ScheduleResult sr = scheduler.schedule(fn, profile);

  printf("%s\n  y[m] = %s\n", title, l3_expr.c_str());
  for (const auto& l : sr.loops)
    printf("  loop@stmt%-3d II=%d%s\n", l.stmt_id, l.ii,
           l.fused_with.empty() ? "" : " (fused)");
  // Per-state FU utilization of the fused phase (the densest states).
  const auto pi = stg::state_probabilities(sr.stg);
  for (size_t s = 0; s < sr.stg.num_states(); ++s) {
    if (pi[s] < 0.05) continue;  // hot states only
    int a1 = 0, sb1 = 0;
    for (const auto& op : sr.stg.state(static_cast<int>(s)).ops) {
      if (op.fu_type == "a1") a1++;
      if (op.fu_type == "sb1") sb1++;
    }
    printf("  hot state S%zu (pi=%.2f): a1 used %d/%d, sb1 used %d/%d\n", s,
           pi[s], a1, alloc.count("a1"), sb1, alloc.count("sb1"));
  }
  printf("  expected schedule length: %.2f cycles\n\n",
         stg::average_schedule_length(sr.stg));
}

}  // namespace

int main() {
  using namespace fact;
  bench::Env env;
  hlslib::Allocation alloc;
  alloc.counts = {{"a1", 2}, {"sb1", 2}, {"cp1", 2}, {"i1", 2}};

  printf("Figure 3: transformations to improve resource utilization\n");
  printf("(L3 running concurrently with L2, which uses one adder per cycle;\n"
         " allocation: 2 a1, 2 sb1, 2 i1)\n\n");
  show("Figure 3(a): original form — L3 starts an iteration every 2 cycles",
       "(y1[m] + y2[m]) - (y3[m] + y4[m])", env, alloc);
  show("Figure 3(b): regrouped form — one L3 iteration begins every cycle",
       "(y1[m] - y3[m]) + (y2[m] - y4[m])", env, alloc);
  printf("The regrouping tailors L3's FU mix (2 add + 1 sub -> 1 add + 2 sub)\n"
         "to the one adder L2 leaves free: exactly the paper's Example 2.\n");
  return 0;
}
