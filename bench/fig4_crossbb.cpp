// Reproduces Figure 4 / Example 3: applying distributivity across basic
// blocks. The behavior computes p = x1*x2, q = x1*x3 under condition C and
// p = x4, q = x5 otherwise (the paper's two join operations with mutually
// exclusive input pairs), then out = p - q. Under one multiplier and two
// subtracters the original takes 3 cycles on the C-path (two serialized
// multiplies + subtract); after speculation + select fusion +
// distributivity it takes 2 (one subtract, one multiply).

#include <cstdio>

#include "bench_util.hpp"
#include "cdfg/cdfg.hpp"
#include "lang/parser.hpp"

namespace {

double c_path_cycles(const fact::ir::Function& fn, const fact::bench::Env& env,
                     const fact::hlslib::Allocation& alloc) {
  using namespace fact;
  const sim::Trace trace = sim::generate_trace(fn, {}, env.seed);
  const sim::Profile profile = sim::profile_function(fn, trace);
  sched::Scheduler scheduler(env.lib, alloc, env.sel, env.sched_opts);
  const sched::ScheduleResult sr = scheduler.schedule(fn, profile);
  return stg::average_schedule_length(sr.stg);
}

}  // namespace

int main() {
  using namespace fact;
  bench::Env env;
  hlslib::Allocation alloc;
  alloc.counts = {{"mt1", 1}, {"sb1", 2}, {"cp1", 1}};

  const ir::Function fn = lang::parse_function(R"(
F(int c, int x1, int x2, int x3, int x4, int x5) {
  int p = 0;
  int q = 0;
  if (c > 0) { p = x1 * x2; q = x1 * x3; } else { p = x4; q = x5; }
  int out = p - q;
  output out;
}
)");
  printf("Figure 4(a): behavior with two joins (mutually exclusive pairs\n"
         "{x2,x5} and {x3,x4}); allocation: 1 mt1, 2 sb1, 1 cp1\n");
  bench::rule();
  printf("%s\n", fn.str().c_str());

  const cdfg::Cdfg g = cdfg::Cdfg::from_function(fn);
  std::vector<int> muls;
  for (size_t i = 0; i < g.size(); ++i)
    if (g.node(static_cast<int>(i)).kind == cdfg::NodeKind::Op &&
        g.node(static_cast<int>(i)).op == ir::Op::Mul)
      muls.push_back(static_cast<int>(i));
  printf("CDFG: %zu multiply nodes", muls.size());
  if (muls.size() == 2)
    printf(" — mutually exclusive with the else-path values: %s\n\n",
           g.mutually_exclusive(muls[0], muls[1]) ? "no (same guard)" : "-");
  else
    printf("\n\n");

  const double before = c_path_cycles(fn, env, alloc);
  printf("Cycles before transformation: %.2f (two multiplies serialize on\n"
         "the single multiplier along the C path)\n\n",
         before);

  // The cross-basic-block rewrite chain.
  const auto lib = xform::TransformLibrary::standard();
  ir::Function cur = fn.clone();
  const sim::Trace trace = sim::generate_trace(fn, {}, 17);
  auto apply_all = [&](const char* name, int limit) {
    const xform::Transform* t = lib.find_transform(name);
    for (int i = 0; i < limit; ++i) {
      const auto cands = t->find(cur, {});
      if (cands.empty()) return;
      cur = lib.apply(cur, cands[0]);
      if (!sim::equivalent_on_trace(fn, cur, trace)) {
        printf("EQUIVALENCE VIOLATION after %s\n", name);
        return;
      }
      printf("  applied %s\n", cands[0].describe().c_str());
    }
  };
  printf("Transformation chain (speculation carries the rewrite across the\n"
         "basic-block boundary; fusion pairs the joins; distributivity\n"
         "factors the common x1):\n");
  apply_all("speculate", 1);
  apply_all("fwdsub", 2);
  apply_all("select-fuse", 1);
  apply_all("distribute", 1);
  apply_all("dce", 8);
  printf("\nFigure 4(b): transformed behavior\n");
  bench::rule();
  printf("%s\n", cur.str().c_str());

  const double after = c_path_cycles(cur, env, alloc);
  printf("Cycles after transformation: %.2f   [paper: 3 cycles -> 2]\n",
         after);
  printf("Speedup: %.2fx\n", before / after);
  return 0;
}
