// Google-benchmark micro measurements of the framework's inner-loop costs:
// the paper's algorithm reschedules and re-estimates power inside the
// transformation search, so these latencies bound how many candidates the
// search can afford.

#include <benchmark/benchmark.h>

#include "bench_util.hpp"

namespace {

using namespace fact;

const workloads::Workload& gcd() {
  static const workloads::Workload w = workloads::make_gcd();
  return w;
}

const workloads::Workload& sintran() {
  static const workloads::Workload w = workloads::make_sintran();
  return w;
}

void BM_ProfileFunction(benchmark::State& state) {
  const auto& w = sintran();
  const sim::Trace trace = sim::generate_trace(w.fn, w.trace, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::profile_function(w.fn, trace));
  }
}
BENCHMARK(BM_ProfileFunction);

void BM_Schedule(benchmark::State& state) {
  bench::Env env;
  const auto& w = sintran();
  const sim::Trace trace = sim::generate_trace(w.fn, w.trace, 7);
  const sim::Profile profile = sim::profile_function(w.fn, trace);
  sched::Scheduler scheduler(env.lib, w.allocation, env.sel, env.sched_opts);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheduler.schedule(w.fn, profile));
  }
}
BENCHMARK(BM_Schedule);

void BM_MarkovSolve(benchmark::State& state) {
  bench::Env env;
  const auto& w = sintran();
  const sim::Trace trace = sim::generate_trace(w.fn, w.trace, 7);
  const sim::Profile profile = sim::profile_function(w.fn, trace);
  sched::Scheduler scheduler(env.lib, w.allocation, env.sel, env.sched_opts);
  const sched::ScheduleResult sr = scheduler.schedule(w.fn, profile);
  for (auto _ : state) {
    benchmark::DoNotOptimize(stg::state_probabilities(sr.stg));
  }
}
BENCHMARK(BM_MarkovSolve);

void BM_PowerEstimate(benchmark::State& state) {
  bench::Env env;
  const auto& w = sintran();
  const sim::Trace trace = sim::generate_trace(w.fn, w.trace, 7);
  const sim::Profile profile = sim::profile_function(w.fn, trace);
  sched::Scheduler scheduler(env.lib, w.allocation, env.sel, env.sched_opts);
  const sched::ScheduleResult sr = scheduler.schedule(w.fn, profile);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        power::estimate_power(sr.stg, env.lib, env.power_opts));
  }
}
BENCHMARK(BM_PowerEstimate);

void BM_FindCandidates(benchmark::State& state) {
  const auto lib = xform::TransformLibrary::standard();
  const auto& w = sintran();
  for (auto _ : state) {
    benchmark::DoNotOptimize(lib.find_all(w.fn, {}));
  }
}
BENCHMARK(BM_FindCandidates);

void BM_ApplyTransform(benchmark::State& state) {
  const auto lib = xform::TransformLibrary::standard();
  const auto& w = sintran();
  const auto cands = lib.find_all(w.fn, {});
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(lib.apply(w.fn, cands[i++ % cands.size()]));
  }
}
BENCHMARK(BM_ApplyTransform);

void BM_FunctionClone(benchmark::State& state) {
  const auto& w = sintran();
  for (auto _ : state) {
    benchmark::DoNotOptimize(w.fn.clone());
  }
}
BENCHMARK(BM_FunctionClone);

void BM_EquivalenceCheck(benchmark::State& state) {
  const auto& w = gcd();
  const sim::Trace trace = sim::generate_trace(w.fn, w.trace, 7);
  const ir::Function copy = w.fn.clone();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::equivalent_on_trace(w.fn, copy, trace));
  }
}
BENCHMARK(BM_EquivalenceCheck);

void BM_FullFactGcd(benchmark::State& state) {
  bench::Env env;
  const auto& w = gcd();
  const auto xf = xform::TransformLibrary::standard();
  for (auto _ : state) {
    opt::FactOptions fo;
    benchmark::DoNotOptimize(
        opt::run_fact(w.fn, env.lib, w.allocation, env.sel, w.trace, xf, fo));
  }
}
BENCHMARK(BM_FullFactGcd)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
