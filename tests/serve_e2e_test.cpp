// End-to-end determinism tests of the factd daemon: a real factd process
// on a unix-domain socket, driven by the real factcli binary, diffed
// byte-for-byte against factc batch output (binary paths injected by
// CMake as FACTD_PATH / FACTCLI_PATH / FACTC_PATH).
//
// The contract under test: an optimize response's report is a pure
// function of the request — the same bytes factc prints — no matter how
// many clients are connected, how requests are batched, or how many
// worker threads evaluate candidates.

#include <gtest/gtest.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "serve/json.hpp"

// GCC spells the sanitizer predefines __SANITIZE_*__; clang exposes them
// through __has_feature.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define FACT_E2E_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define FACT_E2E_SANITIZED 1
#endif
#endif
#ifndef FACT_E2E_SANITIZED
#define FACT_E2E_SANITIZED 0
#endif

namespace {

using fact::serve::Json;

struct CliResult {
  int exit_code = -1;
  std::string output;
};

CliResult run_cmd(const std::string& cmd) {
  FILE* pipe = popen((cmd + " 2>/dev/null").c_str(), "r");
  CliResult r;
  if (!pipe) return r;
  char buf[512];
  while (fgets(buf, sizeof(buf), pipe)) r.output += buf;
  r.exit_code = WEXITSTATUS(pclose(pipe));
  return r;
}

/// One factd process for the lifetime of the fixture; every test drives it
/// through factcli over the unix socket.
class FactdE2E : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    socket_path_ = new std::string("/tmp/fact_e2e_" +
                                   std::to_string(::getpid()) + ".sock");
    // --workers 4 --batch-max 4: force batched dispatch so concurrent
    // requests genuinely share the pool (engines degrade to inline).
    const std::string cmd = std::string(FACTD_PATH) + " --unix " +
                            *socket_path_ +
                            " --workers 4 --batch-max 4 --quiet 2>/dev/null";
    daemon_ = popen(cmd.c_str(), "r");
    ASSERT_NE(daemon_, nullptr);
    // Wait for the socket to appear.
    struct stat st{};
    for (int i = 0; i < 200 && ::stat(socket_path_->c_str(), &st) != 0; ++i)
      ::usleep(50 * 1000);
    ASSERT_EQ(::stat(socket_path_->c_str(), &st), 0)
        << "factd did not create " << *socket_path_;
  }

  static void TearDownTestSuite() {
    if (daemon_) {
      run_cmd(cli() + " --shutdown");
      pclose(daemon_);
      daemon_ = nullptr;
    }
    ::unlink(socket_path_->c_str());
    delete socket_path_;
    socket_path_ = nullptr;
  }

  static std::string cli() {
    return std::string(FACTCLI_PATH) + " --unix " + *socket_path_;
  }

  static std::string* socket_path_;
  static FILE* daemon_;
};

std::string* FactdE2E::socket_path_ = nullptr;
FILE* FactdE2E::daemon_ = nullptr;

const char* kWorkloads[] = {"GCD", "FIR", "TEST2", "SINTRAN", "IGF", "PPS"};

TEST_F(FactdE2E, ReportsMatchFactcForEveryTable2Workload) {
  for (const char* w : kWorkloads) {
    const CliResult batch =
        run_cmd(std::string(FACTC_PATH) + " --benchmark " + w);
    ASSERT_EQ(batch.exit_code, 0) << w << ": " << batch.output;
    const CliResult served = run_cmd(cli() + " --benchmark " + w +
                                     " --report");
    ASSERT_EQ(served.exit_code, 0) << w << ": " << served.output;
    EXPECT_EQ(served.output, batch.output) << w;
  }
}

TEST_F(FactdE2E, ConcurrentClientsGetByteIdenticalReports) {
  // Every workload once per client, three clients at once, pipelined per
  // connection. Each client's concatenated --report output must equal the
  // concatenated factc outputs — concurrency may change scheduling, never
  // bytes. quiet=true keeps the reports history-independent (the shared
  // cache only changes the non-quiet evaluation accounting line).
  std::string expected;
  for (const char* w : kWorkloads) {
    const CliResult batch =
        run_cmd(std::string(FACTC_PATH) + " --benchmark " + w + " --quiet");
    ASSERT_EQ(batch.exit_code, 0) << w;
    expected += batch.output;
  }

  const std::string reqfile = ::testing::TempDir() + "e2e_reqs.jsonl";
  {
    std::ofstream f(reqfile);
    int id = 0;
    for (const char* w : kWorkloads) {
      Json req = Json::object();
      req.set("type", "optimize");
      req.set("id", ++id);
      req.set("benchmark", w);
      req.set("quiet", true);
      f << req.dump() << "\n";
    }
  }

  std::vector<CliResult> results(3);
  std::vector<std::thread> clients;
  for (auto& result : results)
    clients.emplace_back([&result, &reqfile] {
      result = run_cmd(cli() + " --stdin --report < " + reqfile);
    });
  for (auto& t : clients) t.join();
  for (const CliResult& r : results) {
    EXPECT_EQ(r.exit_code, 0);
    EXPECT_EQ(r.output, expected);
  }
}

TEST_F(FactdE2E, ExplicitJobsValueDoesNotChangeBytes) {
  // jobs=2 runs the request on a private two-thread pool instead of the
  // shared service pool; the engine's jobs-invariance makes that
  // unobservable in the response.
  const CliResult batch =
      run_cmd(std::string(FACTC_PATH) + " --benchmark TEST2 --quiet");
  ASSERT_EQ(batch.exit_code, 0);
  for (const char* jobs : {"1", "2", "3"}) {
    const CliResult served = run_cmd(cli() + " --benchmark TEST2 --quiet "
                                     "--report --jobs " + std::string(jobs));
    ASSERT_EQ(served.exit_code, 0) << served.output;
    EXPECT_EQ(served.output, batch.output) << "jobs=" << jobs;
  }
}

TEST_F(FactdE2E, WarmSessionServesFromCacheAndSpeedsUp) {
  const std::string base = cli() + " --benchmark FIR --session warmfir "
                                   "--quiet";
  const CliResult cold = run_cmd(base);
  ASSERT_EQ(cold.exit_code, 0) << cold.output;
  const Json cold_resp = Json::parse(cold.output);
  ASSERT_TRUE(cold_resp.get_bool("ok")) << cold.output;

  // Re-optimize through the session (no behavior fields): every
  // evaluation is served from the shared cache and the pinned trace
  // skips regeneration.
  const CliResult warm =
      run_cmd(cli() + " --session warmfir --quiet --type optimize");
  ASSERT_EQ(warm.exit_code, 0) << warm.output;
  const Json warm_resp = Json::parse(warm.output);
  ASSERT_TRUE(warm_resp.get_bool("ok")) << warm.output;

  EXPECT_GT(warm_resp.get_int("cache_hits"), 0);
  EXPECT_EQ(warm_resp.get_int("cache_misses"), 0);
  EXPECT_EQ(warm_resp.get_double("avg_len"),
            cold_resp.get_double("avg_len"));
  EXPECT_EQ(warm_resp.get_string("report"), cold_resp.get_string("report"));
  // The speedup is the point of the cache; 2x is far below the measured
  // margin (bench/service_throughput records the real number), so this
  // stays robust on a loaded CI machine. Sanitizer instrumentation skews
  // the cached/uncached ratio unpredictably, so the sanitized suites
  // (tools/check.sh) keep only the functional assertions above.
#if !FACT_E2E_SANITIZED
  EXPECT_LT(warm_resp.get_double("wall_ms"),
            cold_resp.get_double("wall_ms") / 2.0 + 50.0);
#endif
}

TEST_F(FactdE2E, StatusReportsServiceCounters) {
  // Fresh daemon per test process: generate some traffic first.
  const CliResult opt = run_cmd(cli() + " --benchmark GCD --quiet");
  ASSERT_EQ(opt.exit_code, 0) << opt.output;
  const CliResult r = run_cmd(cli() + " --status");
  ASSERT_EQ(r.exit_code, 0) << r.output;
  const Json resp = Json::parse(r.output);
  ASSERT_TRUE(resp.get_bool("ok")) << r.output;
  const Json* stats = resp.get("stats");
  ASSERT_NE(stats, nullptr);
  EXPECT_GT(stats->get_int("completed"), 0);
  EXPECT_GT(stats->get_int("evaluations"), 0);
  EXPECT_GT(stats->get_int("cache_entries"), 0);
  EXPECT_GE(stats->get_double("p99_ms"), stats->get_double("p50_ms"));
}

}  // namespace
