#include <gtest/gtest.h>

#include "bind/binding.hpp"
#include "lang/parser.hpp"
#include "rtl/verilog.hpp"
#include "sched/scheduler.hpp"
#include "sim/trace.hpp"
#include "workloads/workloads.hpp"

namespace fact {
namespace {

sched::ScheduleResult schedule_workload(const workloads::Workload& w) {
  const auto lib = hlslib::Library::dac98();
  const auto sel = hlslib::FuSelection::defaults(lib);
  const sim::Trace trace = sim::generate_trace(w.fn, w.trace, 7);
  const sim::Profile profile = sim::profile_function(w.fn, trace);
  sched::Scheduler scheduler(lib, w.allocation, sel, {});
  return scheduler.schedule(w.fn, profile);
}

// ---- binding ------------------------------------------------------------

class BindingOnBenchmarks : public ::testing::TestWithParam<const char*> {};

TEST_P(BindingOnBenchmarks, RespectsAllocationEverywhere) {
  const workloads::Workload w = workloads::by_name(GetParam());
  const auto lib = hlslib::Library::dac98();
  const sched::ScheduleResult sr = schedule_workload(w);
  const bind::Binding b = bind::bind_datapath(sr.stg, lib, w.allocation);

  // Instance counts never exceed the allocation.
  for (const auto& [key, n] : b.fu_instances_used) {
    const std::string base = key.substr(0, key.find(':'));
    if (lib.get(base).cls == hlslib::FuClass::Memory) {
      EXPECT_LE(n, 1) << key;
    } else {
      EXPECT_LE(n, w.allocation.count(base)) << key;
    }
  }
  // Every datapath op got an instance; per state, (type, instance) pairs
  // are unique for non-memory FUs.
  std::map<int, std::set<std::pair<std::string, int>>> per_state;
  for (const auto& op : b.ops) {
    if (lib.get(op.fu_type).cls == hlslib::FuClass::Memory) continue;
    EXPECT_TRUE(
        per_state[op.state].insert({op.fu_type, op.fu_instance}).second)
        << "instance double-booked in state " << op.state;
  }
  EXPECT_GT(b.area(lib), 0.0);
  EXPECT_FALSE(b.report(lib).empty());
}

INSTANTIATE_TEST_SUITE_P(All, BindingOnBenchmarks,
                         ::testing::Values("GCD", "FIR", "TEST2", "SINTRAN",
                                           "IGF", "PPS"));

TEST(Binding, RegistersSharedAcrossDisjointLifetimes) {
  // v1 dies before v2 is born: one register suffices.
  const auto fn = lang::parse_function(R"(
F(int a) {
  int v1 = a + 1;
  int u = v1 * 2;
  int v2 = u + 3;
  int z = v2 * 5;
  output z;
}
)");
  const workloads::Workload dummy{"", "", fn.clone(), {}, {}};
  const auto lib = hlslib::Library::dac98();
  hlslib::Allocation alloc;
  alloc.counts = {{"a1", 1}, {"mt1", 1}, {"i1", 1}};
  const sim::Trace trace = sim::generate_trace(fn, {}, 7);
  const sim::Profile profile = sim::profile_function(fn, trace);
  sched::Scheduler scheduler(lib, alloc, hlslib::FuSelection::defaults(lib), {});
  const auto sr = scheduler.schedule(fn, profile);
  const bind::Binding b = bind::bind_datapath(sr.stg, lib, alloc);
  // Variables: a, v1, u, v2, z — with sharing, strictly fewer registers.
  EXPECT_LT(b.registers.size(), 5u);
  size_t folded = 0;
  for (const auto& r : b.registers) folded += r.variables.size();
  EXPECT_EQ(folded, 5u);
}

TEST(Binding, MuxFreeWhenSourcesConsistent) {
  const auto fn = lang::parse_function(
      "F(int a, int b) { int x = a + b; output x; }");
  const auto lib = hlslib::Library::dac98();
  hlslib::Allocation alloc;
  alloc.counts = {{"a1", 1}};
  const sim::Trace trace = sim::generate_trace(fn, {}, 7);
  const sim::Profile profile = sim::profile_function(fn, trace);
  sched::Scheduler scheduler(lib, alloc, hlslib::FuSelection::defaults(lib), {});
  const auto sr = scheduler.schedule(fn, profile);
  const bind::Binding b = bind::bind_datapath(sr.stg, lib, alloc);
  EXPECT_EQ(b.total_mux_inputs(), 0);
}

TEST(Binding, MuxCountsDistinctSources) {
  // One adder, two adds with different operands: port muxing appears.
  const auto fn = lang::parse_function(
      "F(int a, int b, int c, int d) { int x = a + b; int y = c + d; int z = x + y; output z; }");
  const auto lib = hlslib::Library::dac98();
  hlslib::Allocation alloc;
  alloc.counts = {{"a1", 1}};
  const sim::Trace trace = sim::generate_trace(fn, {}, 7);
  const sim::Profile profile = sim::profile_function(fn, trace);
  sched::Scheduler scheduler(lib, alloc, hlslib::FuSelection::defaults(lib), {});
  const auto sr = scheduler.schedule(fn, profile);
  const bind::Binding b = bind::bind_datapath(sr.stg, lib, alloc);
  EXPECT_GT(b.total_mux_inputs(), 0);
  // Area grows with muxing: strictly above the FU+register floor.
  EXPECT_GT(b.area(lib), lib.get("a1").area);
}

// ---- RTL ------------------------------------------------------------------

TEST(Rtl, GcdModuleStructure) {
  const workloads::Workload w = workloads::make_gcd();
  const sched::ScheduleResult sr = schedule_workload(w);
  const std::string v = rtl::emit_verilog(w.fn, sr.stg);

  EXPECT_NE(v.find("module GCD ("), std::string::npos);
  EXPECT_NE(v.find("endmodule"), std::string::npos);
  // Written parameters are latched from in_* ports.
  EXPECT_NE(v.find("input  wire [31:0] in_a"), std::string::npos);
  EXPECT_NE(v.find("a = in_a;"), std::string::npos);
  EXPECT_NE(v.find("output wire [31:0] out_a"), std::string::npos);
  // One localparam per state.
  size_t count = 0;
  for (size_t pos = 0; (pos = v.find("localparam S", pos)) != std::string::npos;
       ++pos)
    ++count;
  EXPECT_EQ(count, sr.stg.num_states());
  // done pulses on the boundary.
  EXPECT_NE(v.find("done = 1'b1;"), std::string::npos);
}

TEST(Rtl, BeginEndBalanced) {
  for (const char* name : {"GCD", "FIR", "SINTRAN", "PPS", "IGF", "TEST2"}) {
    const workloads::Workload w = workloads::by_name(name);
    const sched::ScheduleResult sr = schedule_workload(w);
    const std::string v = rtl::emit_verilog(w.fn, sr.stg);
    // Token-accurate counting of begin/end/endcase/endmodule.
    size_t begins = 0, ends = 0, endcases = 0, endmodules = 0;
    std::string token;
    auto flush = [&] {
      if (token == "begin") ++begins;
      if (token == "end") ++ends;
      if (token == "endcase") ++endcases;
      if (token == "endmodule") ++endmodules;
      token.clear();
    };
    for (char c : v) {
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_') {
        token.push_back(c);
      } else {
        flush();
      }
    }
    flush();
    EXPECT_EQ(ends, begins) << name;
    EXPECT_EQ(endcases, 1u) << name;
    EXPECT_EQ(endmodules, 1u) << name;
  }
}

TEST(Rtl, MemoriesDeclaredWithSizes) {
  const workloads::Workload w = workloads::make_fir();
  const sched::ScheduleResult sr = schedule_workload(w);
  const std::string v = rtl::emit_verilog(w.fn, sr.stg);
  EXPECT_NE(v.find("reg [31:0] mem_x [0:23];"), std::string::npos);
  EXPECT_NE(v.find("reg [31:0] mem_c [0:7];"), std::string::npos);
  EXPECT_NE(v.find("reg [31:0] mem_y [0:15];"), std::string::npos);
  // Memory reads and writes are rendered.
  EXPECT_NE(v.find("mem_x["), std::string::npos);
  EXPECT_NE(v.find("mem_y["), std::string::npos);
}

TEST(Rtl, ShadowRegistersRestoreRelaxedAntiDeps) {
  // A pipelined loop storing y[i] before i++ needs i's pre-increment
  // value when the scheduler hoisted the increment.
  // Two reads of x force II=2 (one memory port), splitting the kernel
  // across states: the increment lands in an earlier state than reads of
  // the pre-increment i.
  const auto fn = lang::parse_function(R"(
F(int g) {
  input int x[16];
  int y[16];
  int i = 0;
  while (i < 15) {
    y[i] = x[i] + x[i + 1];
    i = i + 1;
  }
  output i;
}
)");
  const auto lib = hlslib::Library::dac98();
  hlslib::Allocation alloc;
  alloc.counts = {{"a1", 1}, {"i1", 1}};
  const sim::Trace trace = sim::generate_trace(fn, {}, 7);
  const sim::Profile profile = sim::profile_function(fn, trace);
  sched::Scheduler scheduler(lib, alloc, hlslib::FuSelection::defaults(lib), {});
  const auto sr = scheduler.schedule(fn, profile);
  ASSERT_TRUE(sr.loops[0].pipelined);
  if (sr.loops[0].body_csteps > sr.loops[0].ii) {
    const std::string v = rtl::emit_verilog(fn, sr.stg);
    EXPECT_NE(v.find("i__pre"), std::string::npos);
  }
}

TEST(Rtl, WidthAndNameOptionsHonored) {
  const auto fn =
      lang::parse_function("F(int a) { int x = a + 1; output x; }");
  const sim::Trace trace = sim::generate_trace(fn, {}, 7);
  const sim::Profile profile = sim::profile_function(fn, trace);
  const auto lib = hlslib::Library::dac98();
  hlslib::Allocation alloc;
  alloc.counts = {{"a1", 1}};
  sched::Scheduler scheduler(lib, alloc, hlslib::FuSelection::defaults(lib), {});
  const auto sr = scheduler.schedule(fn, profile);
  rtl::RtlOptions opts;
  opts.width = 16;
  opts.module_name = "adder16";
  const std::string v = rtl::emit_verilog(fn, sr.stg, opts);
  EXPECT_NE(v.find("module adder16 ("), std::string::npos);
  EXPECT_NE(v.find("[15:0]"), std::string::npos);
  EXPECT_EQ(v.find("[31:0]"), std::string::npos);
}

}  // namespace
}  // namespace fact
