#include <gtest/gtest.h>

#include "sim/trace.hpp"
#include "util/error.hpp"
#include "workloads/workloads.hpp"

namespace fact::workloads {
namespace {

class Table2Benchmarks : public ::testing::TestWithParam<const char*> {};

TEST_P(Table2Benchmarks, ParsesValidatesAndTerminates) {
  const Workload w = by_name(GetParam());
  EXPECT_EQ(w.name, GetParam());
  EXPECT_FALSE(w.source.empty());
  w.fn.validate();
  EXPECT_FALSE(w.allocation.counts.empty());

  // Every benchmark must terminate on its configured traces.
  const sim::Trace trace = generate_trace(w.fn, w.trace, 99);
  ASSERT_FALSE(trace.empty());
  const sim::Profile profile = sim::profile_function(w.fn, trace);
  EXPECT_EQ(profile.executions, trace.size());
  EXPECT_GT(profile.avg_steps(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(All, Table2Benchmarks,
                         ::testing::Values("GCD", "FIR", "TEST2", "SINTRAN",
                                           "IGF", "PPS", "TEST1"));

TEST(Workloads, GcdComputesGcd) {
  const Workload w = make_gcd();
  sim::Interpreter interp(w.fn);
  sim::Stimulus in;
  in.params = {{"a", 48}, {"b", 36}};
  EXPECT_EQ(interp.run(in).outputs.at("a"), 12);
}

TEST(Workloads, FirComputesConvolution) {
  const Workload w = make_fir();
  sim::Interpreter interp(w.fn);
  sim::Stimulus in;
  in.params = {{"gain", 1}};
  // Impulse in x at position 8, coefficient vector c: y[0] picks up c[0].
  in.arrays["x"] = std::vector<int64_t>(24, 0);
  in.arrays["x"][8] = 1;
  in.arrays["c"] = {3, 5, 7, 9, 11, 13, 15, 17};
  const auto out = interp.run(in);
  // y[n-8] = sum_k c[k] * x[n-k]; for n=8: c[0]*x[8] = 3.
  EXPECT_EQ(out.arrays.at("y")[0], 3);
  // n=9: c[1]*x[8] = 5.
  EXPECT_EQ(out.arrays.at("y")[1], 5);
}

TEST(Workloads, PpsComputesPrefixAndTotal) {
  const Workload w = make_pps();
  sim::Interpreter interp(w.fn);
  sim::Stimulus in;
  for (int i = 0; i < 8; ++i)
    in.params["x" + std::to_string(i)] = i + 1;
  const auto out = interp.run(in);
  EXPECT_EQ(out.outputs.at("p"), 1 + 2 + 3 + 4);
  EXPECT_EQ(out.outputs.at("s"), 36);
}

TEST(Workloads, IgfSeriesConverges) {
  const Workload w = make_igf();
  sim::Interpreter interp(w.fn);
  sim::Stimulus in;
  in.params = {{"xv", 700}, {"eps", 8}, {"big", 4096}};
  in.arrays["r"] = std::vector<int64_t>(32, 512);  // 0.5 in Q10
  const auto out = interp.run(in);
  // sum starts at 1024 and only grows; series with ratio ~0.34 converges.
  EXPECT_GT(out.outputs.at("sum"), 1024);
  EXPECT_LT(out.outputs.at("sum"), 4096);
}

TEST(Workloads, Test2WritesAllStreams) {
  const Workload w = make_test2();
  sim::Interpreter interp(w.fn);
  const sim::Trace trace = generate_trace(w.fn, w.trace, 3);
  const auto out = interp.run(trace[0]);
  // L3's output stream y must reflect (y1+y2)-(y3+y4).
  const auto& y = out.arrays.at("y");
  const auto& y1 = trace[0].arrays.at("y1");
  const auto& y2 = trace[0].arrays.at("y2");
  const auto& y3 = trace[0].arrays.at("y3");
  const auto& y4 = trace[0].arrays.at("y4");
  for (size_t i = 0; i < 4; ++i)
    EXPECT_EQ(y[i], (y1[i] + y2[i]) - (y3[i] + y4[i]));
}

TEST(Workloads, Table3AllocationsMatchPaper) {
  // Spot-check the published allocation constraints (Table 3).
  EXPECT_EQ(make_gcd().allocation.count("sb1"), 2);
  EXPECT_EQ(make_gcd().allocation.count("cp1"), 1);
  EXPECT_EQ(make_gcd().allocation.count("e1"), 1);
  EXPECT_EQ(make_gcd().allocation.count("a1"), 0);
  EXPECT_EQ(make_fir().allocation.count("sb1"), 4);
  EXPECT_EQ(make_fir().allocation.count("mt1"), 1);
  EXPECT_EQ(make_sintran().allocation.count("mt1"), 5);
  EXPECT_EQ(make_pps().allocation.count("a1"), 5);
  EXPECT_EQ(make_pps().allocation.counts.size(), 1u);
  EXPECT_EQ(make_test2().allocation.count("i1"), 2);
  EXPECT_EQ(make_igf().allocation.count("s1"), 1);
}

TEST(Workloads, Test1MatchesFigure1Probabilities) {
  // Example 1 reports the while closing with p ~ 0.98 and the if taken
  // with p ~ 0.37; the trace configuration must land in that regime.
  const Workload w = make_test1();
  const sim::Trace trace = generate_trace(w.fn, w.trace, 7);
  const sim::Profile p = sim::profile_function(w.fn, trace);
  int while_id = -1, if_id = -1;
  w.fn.for_each([&](const ir::Stmt& s) {
    if (s.kind == ir::StmtKind::While) while_id = s.id;
    if (s.kind == ir::StmtKind::If) if_id = s.id;
  });
  EXPECT_NEAR(p.branch_prob(while_id), 0.98, 0.01);
  EXPECT_NEAR(p.branch_prob(if_id), 0.37, 0.05);
}

TEST(Workloads, UnknownNameThrows) {
  EXPECT_THROW(by_name("NOPE"), Error);
}

TEST(Workloads, TableOrderMatchesPaper) {
  const auto all = table2_benchmarks();
  ASSERT_EQ(all.size(), 6u);
  EXPECT_EQ(all[0].name, "GCD");
  EXPECT_EQ(all[1].name, "FIR");
  EXPECT_EQ(all[2].name, "TEST2");
  EXPECT_EQ(all[3].name, "SINTRAN");
  EXPECT_EQ(all[4].name, "IGF");
  EXPECT_EQ(all[5].name, "PPS");
}

}  // namespace
}  // namespace fact::workloads
