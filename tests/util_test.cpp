#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numeric>
#include <thread>
#include <vector>

#include "util/dot.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/strfmt.hpp"

namespace fact {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next() == b.next()) same++;
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.uniform_int(-3, 5);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, UniformIntSingletonRange) {
  Rng rng(11);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(4, 4), 4);
}

TEST(Rng, GaussianMomentsRoughlyStandard) {
  Rng rng(123);
  double sum = 0, sum2 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.gaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(Ar1Filter, ProducesRequestedCorrelation) {
  Rng rng(5);
  Ar1Filter f(0.8);
  std::vector<double> xs;
  for (int i = 0; i < 50000; ++i) xs.push_back(f.step(rng.gaussian()));
  double num = 0, den = 0;
  for (size_t i = 1; i < xs.size(); ++i) num += xs[i] * xs[i - 1];
  for (double x : xs) den += x * x;
  EXPECT_NEAR(num / den, 0.8, 0.03);
}

TEST(Ar1Filter, UnitVarianceOutput) {
  Rng rng(6);
  Ar1Filter f(0.9);
  double sum2 = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = f.step(rng.gaussian());
    sum2 += x * x;
  }
  EXPECT_NEAR(sum2 / n, 1.0, 0.08);
}

TEST(CorrelatedTrace, DeterministicAndScaled) {
  Rng a(99), b(99);
  const auto t1 = correlated_trace(a, 100, 0.9, 50.0, 10.0);
  const auto t2 = correlated_trace(b, 100, 0.9, 50.0, 10.0);
  EXPECT_EQ(t1, t2);
  const double mean =
      std::accumulate(t1.begin(), t1.end(), 0.0) / static_cast<double>(t1.size());
  EXPECT_NEAR(mean, 50.0, 10.0);
}

TEST(Strfmt, FormatsLikePrintf) {
  EXPECT_EQ(strfmt("%d-%s-%.2f", 7, "x", 1.5), "7-x-1.50");
  EXPECT_EQ(strfmt("empty"), "empty");
}

TEST(DotWriter, EscapesAndStructures) {
  DotWriter w("g");
  w.node("a", "label \"quoted\"", "shape=box");
  w.edge("a", "b", "e1");
  const std::string out = w.str();
  EXPECT_NE(out.find("digraph g {"), std::string::npos);
  EXPECT_NE(out.find("\\\"quoted\\\""), std::string::npos);
  EXPECT_NE(out.find("\"a\" -> \"b\""), std::string::npos);
  EXPECT_EQ(out.back(), '\n');
}

TEST(Error, CarriesMessageAndPosition) {
  const Error e("boom");
  EXPECT_STREQ(e.what(), "boom");
  const ParseError pe("bad token", 3, 14);
  EXPECT_EQ(pe.line(), 3);
  EXPECT_EQ(pe.col(), 14);
  EXPECT_NE(std::string(pe.what()).find("3:14"), std::string::npos);
}

// ---- WorkerPool --------------------------------------------------------
// These exercise the pool with real thread contention so a ThreadSanitizer
// build (tools/check.sh with FACT_SANITIZE=thread) covers the handoff.

TEST(WorkerPool, RunsEveryIndexExactlyOnce) {
  WorkerPool pool(4);
  EXPECT_EQ(pool.threads(), 4);
  constexpr size_t n = 1000;
  std::vector<std::atomic<int>> counts(n);
  pool.parallel_for(n, [&](size_t i) { counts[i].fetch_add(1); });
  for (size_t i = 0; i < n; ++i) EXPECT_EQ(counts[i].load(), 1) << i;
}

TEST(WorkerPool, InlineWhenSingleThreaded) {
  WorkerPool pool(1);
  EXPECT_EQ(pool.threads(), 1);
  // The degenerate pool runs inline in index order on the caller.
  const auto caller = std::this_thread::get_id();
  std::vector<size_t> order;
  pool.parallel_for(5, [&](size_t i) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    order.push_back(i);
  });
  EXPECT_EQ(order, (std::vector<size_t>{0, 1, 2, 3, 4}));
}

TEST(WorkerPool, ReusableAcrossJobsAndEmptyJobs) {
  WorkerPool pool(3);
  std::atomic<int> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.parallel_for(round % 7, [&](size_t) { total.fetch_add(1); });
  }
  int expect = 0;
  for (int round = 0; round < 50; ++round) expect += round % 7;
  EXPECT_EQ(total.load(), expect);
}

TEST(WorkerPool, RethrowsFirstBodyException) {
  WorkerPool pool(4);
  std::atomic<int> ran{0};
  EXPECT_THROW(
      pool.parallel_for(64,
                        [&](size_t i) {
                          ran.fetch_add(1);
                          if (i == 13) throw Error("item 13 failed");
                        }),
      Error);
  // The loop drains (no deadlock, no lost items) even when a body throws.
  EXPECT_EQ(ran.load(), 64);
  // And the pool stays usable afterwards.
  std::atomic<int> after{0};
  pool.parallel_for(8, [&](size_t) { after.fetch_add(1); });
  EXPECT_EQ(after.load(), 8);
}

TEST(WorkerPool, HardwareThreadsIsPositive) {
  EXPECT_GE(WorkerPool::hardware_threads(), 1);
}

TEST(WorkerPool, ConcurrentCallersShareOnePool) {
  // factd's dispatcher and the engines inside its jobs all call
  // parallel_for on one pool, possibly at the same time. Whichever call
  // loses the race for the workers runs inline — every index of every
  // call must still run exactly once.
  WorkerPool pool(4);
  constexpr int kCallers = 6;
  constexpr size_t kItems = 200;
  std::vector<std::vector<std::atomic<int>>> counts(kCallers);
  for (auto& c : counts) {
    std::vector<std::atomic<int>> fresh(kItems);
    c.swap(fresh);
  }
  std::vector<std::thread> callers;
  for (int t = 0; t < kCallers; ++t)
    callers.emplace_back([&, t] {
      for (int round = 0; round < 10; ++round)
        pool.parallel_for(kItems,
                          [&, t](size_t i) { counts[t][i].fetch_add(1); });
    });
  for (auto& th : callers) th.join();
  for (int t = 0; t < kCallers; ++t)
    for (size_t i = 0; i < kItems; ++i)
      EXPECT_EQ(counts[t][i].load(), 10) << t << "/" << i;
}

TEST(WorkerPool, NestedCallsRunInline) {
  // A body that itself calls parallel_for on the same pool (an engine
  // wave inside a dispatcher batch) must degrade to inline execution
  // instead of deadlocking on the busy workers.
  WorkerPool pool(3);
  constexpr size_t kOuter = 8, kInner = 16;
  std::vector<std::atomic<int>> counts(kOuter * kInner);
  pool.parallel_for(kOuter, [&](size_t outer) {
    pool.parallel_for(kInner, [&](size_t inner) {
      counts[outer * kInner + inner].fetch_add(1);
    });
  });
  for (size_t i = 0; i < counts.size(); ++i)
    EXPECT_EQ(counts[i].load(), 1) << i;
}

TEST(WorkerPool, NestedExceptionStillPropagates) {
  WorkerPool pool(2);
  EXPECT_THROW(pool.parallel_for(4,
                                 [&](size_t i) {
                                   pool.parallel_for(4, [&](size_t j) {
                                     if (i == 2 && j == 3)
                                       throw Error("nested failure");
                                   });
                                 }),
               Error);
  // Usable afterwards, both nested and flat.
  std::atomic<int> n{0};
  pool.parallel_for(5, [&](size_t) { n.fetch_add(1); });
  EXPECT_EQ(n.load(), 5);
}

}  // namespace
}  // namespace fact
