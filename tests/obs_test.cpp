// Tests of the observability layer: the lock-striped metrics registry
// (exact counts under concurrency, histogram bucket semantics, export
// formats pinned by a golden file) and the span tracer (deterministic
// Chrome trace JSON under a ManualClock, strict no-op when disabled).

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/json.hpp"
#include "util/error.hpp"

namespace {

using namespace fact;
using Json = fact::serve::Json;

// ---- metrics -------------------------------------------------------------

TEST(Obs, CounterSumsExactlyAcrossThreads) {
  obs::Counter c;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrements; ++i) c.inc();
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), uint64_t(kThreads) * kIncrements);
  c.inc(42);
  EXPECT_EQ(c.value(), uint64_t(kThreads) * kIncrements + 42);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Obs, HistogramBucketBoundariesAreLe) {
  obs::Histogram h({1.0, 2.0, 4.0});
  // `le` semantics: an observation equal to a bound lands in that bound's
  // bucket; past the last bound lands in +Inf.
  h.observe(0.5);   // le=1
  h.observe(1.0);   // le=1 (boundary is inclusive)
  h.observe(1.5);   // le=2
  h.observe(4.0);   // le=4
  h.observe(4.01);  // +Inf
  const auto counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.5 + 4.0 + 4.01);
}

TEST(Obs, HistogramRejectsBadBounds) {
  EXPECT_THROW(obs::Histogram({}), Error);
  EXPECT_THROW(obs::Histogram({1.0, 1.0}), Error);
  EXPECT_THROW(obs::Histogram({2.0, 1.0}), Error);
}

TEST(Obs, HistogramExactUnderConcurrentObserve) {
  obs::Histogram h({10.0});
  constexpr int kThreads = 8;
  constexpr int kObservations = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&] {
      for (int i = 0; i < kObservations; ++i) h.observe(1.0);
    });
  for (auto& t : threads) t.join();
  // Counts are exact; the CAS-added sum of exactly-representable values
  // is too (1.0 added 40000 times has no rounding).
  EXPECT_EQ(h.count(), uint64_t(kThreads) * kObservations);
  EXPECT_DOUBLE_EQ(h.sum(), double(kThreads) * kObservations);
  EXPECT_EQ(h.bucket_counts()[0], uint64_t(kThreads) * kObservations);
  EXPECT_EQ(h.bucket_counts()[1], 0u);
}

TEST(Obs, RegistryReturnsStableMetricAndRejectsKindClash) {
  obs::Registry reg;
  obs::Counter& a = reg.counter("x_total", "help one");
  a.inc(3);
  // Re-registering the same name hands back the same metric (the second
  // help string is ignored), so function-local statics in different TUs
  // all share one counter.
  obs::Counter& b = reg.counter("x_total", "help two");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.value(), 3u);
  EXPECT_EQ(reg.size(), 1u);
  // The same name as a different kind is a bug, not a silent alias.
  EXPECT_THROW(reg.gauge("x_total"), Error);
  EXPECT_THROW(reg.histogram("x_total", {1.0}), Error);
  obs::Histogram& h = reg.histogram("h", {1.0, 2.0});
  obs::Histogram& h2 = reg.histogram("h", {99.0});  // original bounds win
  EXPECT_EQ(&h, &h2);
  EXPECT_EQ(h2.bounds().size(), 2u);
}

TEST(Obs, RegistryResetZeroesButKeepsAddresses) {
  obs::Registry reg;
  obs::Counter& c = reg.counter("c_total");
  obs::Gauge& g = reg.gauge("g");
  obs::Histogram& h = reg.histogram("h", {1.0});
  c.inc(5);
  g.set(-7);
  h.observe(0.5);
  reg.reset();
  EXPECT_EQ(&c, &reg.counter("c_total"));
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  EXPECT_EQ(reg.size(), 3u);
}

/// A registry nothing else writes to, with one metric of each kind and
/// known values — the fixture behind the export-format tests.
obs::Snapshot export_fixture() {
  static obs::Registry* reg = [] {
    auto* r = new obs::Registry();
    r->counter("fact_test_requests_total", "Requests served.").inc(3);
    r->gauge("fact_test_queue_depth", "Queue depth.").set(-2);
    obs::Histogram& h =
        r->histogram("fact_test_latency_ms", {1.0, 2.5, 10.0}, "Latency.");
    h.observe(0.5);
    h.observe(2.5);
    h.observe(100.0);
    return r;
  }();
  return reg->snapshot();
}

TEST(Obs, PrometheusTextMatchesGolden) {
  const std::string got = obs::to_prometheus(export_fixture());
  const std::string path = std::string(FACT_TEST_DATA_DIR) +
                           "/metrics_golden.prom";
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing golden file " << path;
  std::stringstream want;
  want << in.rdbuf();
  EXPECT_EQ(got, want.str())
      << "Prometheus exposition drifted from the golden file. If the "
         "change is intentional, update tests/data/metrics_golden.prom.";
}

TEST(Obs, JsonExportParseableAndExact) {
  const Json snap = Json::parse(obs::to_json(export_fixture()));
  EXPECT_EQ(snap.get_int("fact_test_requests_total"), 3);
  EXPECT_EQ(snap.get_int("fact_test_queue_depth"), -2);
  const Json* h = snap.get("fact_test_latency_ms");
  ASSERT_TRUE(h != nullptr);
  EXPECT_EQ(h->get_int("count"), 3);
  EXPECT_DOUBLE_EQ(h->get_double("sum"), 103.0);
  EXPECT_EQ(h->get_int("inf"), 1);
  const Json* buckets = h->get("buckets");
  ASSERT_TRUE(buckets != nullptr);
  ASSERT_EQ(buckets->size(), 3u);
  EXPECT_DOUBLE_EQ(buckets->at(0).at(0).as_double(), 1.0);
  EXPECT_EQ(buckets->at(0).at(1).as_int(), 1);
  EXPECT_DOUBLE_EQ(buckets->at(1).at(0).as_double(), 2.5);
  EXPECT_EQ(buckets->at(1).at(1).as_int(), 1);
  EXPECT_EQ(buckets->at(2).at(1).as_int(), 0);
}

TEST(Obs, GlobalRegistryHasProcessMetrics) {
  // The process-wide registry: register-once semantics mean this test
  // neither disturbs nor depends on what other tests incremented.
  obs::Counter& c = obs::Registry::global().counter("fact_obs_test_total");
  const uint64_t before = c.value();
  c.inc();
  EXPECT_EQ(c.value(), before + 1);
}

// ---- tracing -------------------------------------------------------------

TEST(Obs, TracerEmitsDeterministicChromeJson) {
  obs::ManualClock clock;
  clock.set(0);
  obs::Tracer tracer(&clock);
  clock.set(1000);
  {
    obs::Span sp(&tracer, "work", "opt");
    sp.arg("transform", "unroll");
    sp.arg("n", 3);
    sp.arg("ratio", 2.5);
    sp.arg("hit", true);
    clock.advance(2500);
  }
  ASSERT_EQ(tracer.event_count(), 1u);
  const int tid = obs::current_thread_id();
  const std::string want =
      "{\"traceEvents\":[{\"name\":\"work\",\"cat\":\"opt\",\"ph\":\"X\","
      "\"ts\":1,\"dur\":2.500,\"pid\":1,\"tid\":" +
      std::to_string(tid) +
      ",\"args\":{\"transform\":\"unroll\",\"n\":3,\"ratio\":2.5,"
      "\"hit\":true}}],\"displayTimeUnit\":\"ms\"}";
  EXPECT_EQ(tracer.chrome_json(), want);
  // And it really is JSON.
  const Json parsed = Json::parse(tracer.chrome_json());
  EXPECT_EQ(parsed.get("traceEvents")->size(), 1u);
}

TEST(Obs, TracerInstantEventsAndClear) {
  obs::ManualClock clock;
  obs::Tracer tracer(&clock);
  clock.set(5000);
  tracer.instant("mark", "fact");
  ASSERT_EQ(tracer.event_count(), 1u);
  const std::string json = tracer.chrome_json();
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":5"), std::string::npos);
  EXPECT_NE(json.find("\"s\":\"t\""), std::string::npos);
  tracer.clear();
  EXPECT_EQ(tracer.event_count(), 0u);
  EXPECT_EQ(tracer.chrome_json(),
            "{\"traceEvents\":[],\"displayTimeUnit\":\"ms\"}");
}

TEST(Obs, SpanIsNoOpWithoutTracer) {
  // No global tracer installed (the default): spans vanish.
  ASSERT_EQ(obs::tracer(), nullptr);
  {
    obs::Span sp = obs::span("ghost", "opt");
    sp.arg("k", 1);
  }
  // A disabled tracer is just as inert, even when passed explicitly.
  obs::ManualClock clock;
  obs::Tracer tracer(&clock);
  tracer.set_enabled(false);
  {
    obs::Span sp(&tracer, "ghost2");
    sp.arg("k", 2);
  }
  EXPECT_EQ(tracer.event_count(), 0u);
}

TEST(Obs, SpanMoveTransfersOwnershipAndFinishIsIdempotent) {
  obs::ManualClock clock;
  obs::Tracer tracer(&clock);
  {
    obs::Span a(&tracer, "moved");
    obs::Span b = std::move(a);
    b.finish();
    b.finish();  // idempotent
  }                // a's destructor must not double-record
  EXPECT_EQ(tracer.event_count(), 1u);
}

TEST(Obs, SpansFromManyThreadsAllRecorded) {
  obs::ManualClock clock;
  obs::Tracer tracer(&clock);
  constexpr int kThreads = 8;
  constexpr int kSpans = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&] {
      for (int i = 0; i < kSpans; ++i) obs::Span sp(&tracer, "w");
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(tracer.event_count(), size_t(kThreads) * kSpans);
  EXPECT_NO_THROW(Json::parse(tracer.chrome_json()));
}

}  // namespace
