// End-to-end tests of the factc command-line driver (the binary path is
// injected by CMake as FACTC_PATH).

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>

#include "serve/json.hpp"

namespace {

struct CliResult {
  int exit_code = -1;
  std::string output;
};

CliResult run_cli(const std::string& args) {
  const std::string cmd = std::string(FACTC_PATH) + " " + args + " 2>&1";
  FILE* pipe = popen(cmd.c_str(), "r");
  CliResult r;
  if (!pipe) return r;
  char buf[512];
  while (fgets(buf, sizeof(buf), pipe)) r.output += buf;
  r.exit_code = WEXITSTATUS(pclose(pipe));
  return r;
}

TEST(Cli, BenchmarkAllMethods) {
  const CliResult r = run_cli("--benchmark GCD --method all --quiet");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("M1"), std::string::npos);
  EXPECT_NE(r.output.find("Flamel"), std::string::npos);
  EXPECT_NE(r.output.find("FACT"), std::string::npos);
  EXPECT_NE(r.output.find("avg length"), std::string::npos);
}

TEST(Cli, PowerObjectiveReportsVdd) {
  const CliResult r = run_cli("--benchmark PPS --objective power");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("scaled Vdd"), std::string::npos);
}

TEST(Cli, SourceFileFlow) {
  const std::string path = ::testing::TempDir() + "cli_test_src.fact";
  {
    std::ofstream f(path);
    f << "MINI(int a, int b) { int x = a * b + a; output x; }\n";
  }
  const CliResult r = run_cli(path + " --alloc a1=1,mt1=1 --quiet");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("FACT"), std::string::npos);
}

TEST(Cli, EmitsArtifacts) {
  const std::string vpath = ::testing::TempDir() + "cli_test_out.v";
  const std::string dpath = ::testing::TempDir() + "cli_test_out.dot";
  const CliResult r = run_cli("--benchmark GCD --quiet --no-fuse --emit-verilog " +
                              vpath + " --emit-stg " + dpath);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  std::ifstream v(vpath);
  ASSERT_TRUE(v.good());
  std::stringstream vs;
  vs << v.rdbuf();
  EXPECT_NE(vs.str().find("module GCD"), std::string::npos);
  EXPECT_NE(vs.str().find("endmodule"), std::string::npos);
  std::ifstream d(dpath);
  ASSERT_TRUE(d.good());
  std::stringstream ds;
  ds << d.rdbuf();
  EXPECT_NE(ds.str().find("digraph"), std::string::npos);
}

TEST(Cli, BadUsageFails) {
  EXPECT_NE(run_cli("").exit_code, 0);
  EXPECT_NE(run_cli("--benchmark NOPE").exit_code, 0);
  EXPECT_NE(run_cli("--benchmark GCD --alloc bogus=1").exit_code, 0);
  EXPECT_NE(run_cli("/nonexistent/file.fact").exit_code, 0);
}

TEST(Cli, InfeasibleAllocationDiagnosed) {
  // GCD needs subtracters; give it none.
  const CliResult r = run_cli("--benchmark GCD --alloc cp1=1,e1=1 --method m1");
  EXPECT_NE(r.exit_code, 0);
  EXPECT_NE(r.output.find("error"), std::string::npos);
}

TEST(Cli, NonPositiveAllocCountRejected) {
  const CliResult zero = run_cli("--benchmark GCD --alloc a1=0");
  EXPECT_EQ(zero.exit_code, 1) << zero.output;
  EXPECT_NE(zero.output.find("must be positive"), std::string::npos);
  const CliResult neg = run_cli("--benchmark GCD --alloc sb1=-2");
  EXPECT_EQ(neg.exit_code, 1) << neg.output;
  EXPECT_NE(neg.output.find("must be positive"), std::string::npos);
  const CliResult junk = run_cli("--benchmark GCD --alloc a1=two");
  EXPECT_EQ(junk.exit_code, 1) << junk.output;
}

TEST(Cli, BadNumericValuesExitCleanly) {
  // Malformed numbers must produce exit code 1 with a diagnostic, never
  // an uncaught exception / abort (which would exit 134).
  const CliResult clock = run_cli("--benchmark GCD --clock bogus");
  EXPECT_EQ(clock.exit_code, 1) << clock.output;
  EXPECT_NE(clock.output.find("bad numeric value"), std::string::npos);
  const CliResult seed = run_cli("--benchmark GCD --seed 12x");
  EXPECT_EQ(seed.exit_code, 1) << seed.output;
  const CliResult deadline = run_cli("--benchmark GCD --deadline-ms -5");
  EXPECT_EQ(deadline.exit_code, 1) << deadline.output;
}

TEST(Cli, ValidateFlag) {
  const CliResult full = run_cli("--benchmark GCD --validate full --quiet");
  EXPECT_EQ(full.exit_code, 0) << full.output;
  const CliResult off = run_cli("--benchmark GCD --validate=off --quiet");
  EXPECT_EQ(off.exit_code, 0) << off.output;
  const CliResult bad = run_cli("--benchmark GCD --validate bogus");
  EXPECT_EQ(bad.exit_code, 1) << bad.output;
  EXPECT_NE(bad.output.find("bad validation level"), std::string::npos);
}

std::string slurp(const std::string& path) {
  std::ifstream f(path);
  std::stringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

TEST(Cli, TraceOutWritesChromeTraceJson) {
  using fact::serve::Json;
  const std::string tpath = ::testing::TempDir() + "cli_trace.json";
  const CliResult r = run_cli("--benchmark GCD --quiet --trace-out " + tpath);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  const std::string text = slurp(tpath);
  ASSERT_FALSE(text.empty());
  const Json trace = Json::parse(text);
  const Json* events = trace.get("traceEvents");
  ASSERT_TRUE(events != nullptr);
  ASSERT_GT(events->size(), 0u);
  std::set<std::string> names;
  for (size_t i = 0; i < events->size(); ++i) {
    const Json& e = events->at(i);
    EXPECT_EQ(e.get_string("ph"), "X") << e.dump();
    EXPECT_GE(e.get_double("ts"), 0.0);
    EXPECT_GE(e.get_double("dur"), 0.0);
    EXPECT_EQ(e.get_int("pid"), 1);
    names.insert(e.get_string("name"));
  }
  // The flow's phase spans plus the engine's per-candidate spans.
  for (const char* want :
       {"trace_gen", "initial_schedule", "partition", "block",
        "final_schedule", "engine.optimize", "generation", "candidate",
        "evaluate", "schedule"})
    EXPECT_TRUE(names.count(want)) << "missing span " << want;
}

TEST(Cli, MetricsOutWritesRegistryAndSearchTelemetry) {
  using fact::serve::Json;
  const std::string mpath = ::testing::TempDir() + "cli_metrics.json";
  const CliResult r =
      run_cli("--benchmark GCD --quiet --metrics-out " + mpath);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  const Json doc = Json::parse(slurp(mpath));

  const Json* reg = doc.get("registry");
  ASSERT_TRUE(reg != nullptr);
  EXPECT_GT(reg->get_int("fact_engine_optimize_total"), 0);
  EXPECT_GT(reg->get_int("fact_eval_requests_total"), 0);
  EXPECT_GT(reg->get_int("fact_search_generations_total"), 0);
  EXPECT_GT(reg->get_int("fact_search_candidates_total"), 0);

  const Json* search = doc.get("search");
  ASSERT_TRUE(search != nullptr && search->is_object()) << doc.dump();
  EXPECT_GT(search->get_int("evaluations"), 0);
  const Json* blocks = search->get("blocks");
  ASSERT_TRUE(blocks != nullptr);
  ASSERT_GT(blocks->size(), 0u);
  const Json* gens = blocks->at(0).get("generations");
  ASSERT_TRUE(gens != nullptr);
  ASSERT_GT(gens->size(), 0u);
  const Json& g0 = gens->at(0);
  EXPECT_GT(g0.get_int("candidates"), 0);
  EXPECT_GE(g0.get_double("acceptance_rate"), 0.0);
  EXPECT_LE(g0.get_double("acceptance_rate"), 1.0);
  EXPECT_TRUE(blocks->at(0).get("selected_ranks") != nullptr);
  EXPECT_TRUE(blocks->at(0).get("accepted_by_transform") != nullptr);
}

TEST(Cli, TraceAndMetricsFlagsDoNotChangeStdout) {
  // Instrumentation is observe-only: the report a user sees must be
  // byte-identical with and without --trace-out/--metrics-out.
  const std::string tpath = ::testing::TempDir() + "cli_trace_det.json";
  const std::string mpath = ::testing::TempDir() + "cli_metrics_det.json";
  const CliResult plain = run_cli("--benchmark GCD");
  const CliResult instrumented = run_cli("--benchmark GCD --trace-out " +
                                         tpath + " --metrics-out " + mpath);
  EXPECT_EQ(plain.exit_code, 0) << plain.output;
  EXPECT_EQ(instrumented.exit_code, 0) << instrumented.output;
  EXPECT_EQ(plain.output, instrumented.output);
}

TEST(Cli, DeadlineReportsBestSoFar) {
  // A sub-millisecond budget truncates the search immediately; the driver
  // still reports a complete result plus the best-so-far note.
  const CliResult r = run_cli("--benchmark GCD --deadline-ms 0.001 --quiet");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("FACT"), std::string::npos);
  EXPECT_NE(r.output.find("best-so-far"), std::string::npos);
}

}  // namespace
