// End-to-end tests of the factc command-line driver (the binary path is
// injected by CMake as FACTC_PATH).

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace {

struct CliResult {
  int exit_code = -1;
  std::string output;
};

CliResult run_cli(const std::string& args) {
  const std::string cmd = std::string(FACTC_PATH) + " " + args + " 2>&1";
  FILE* pipe = popen(cmd.c_str(), "r");
  CliResult r;
  if (!pipe) return r;
  char buf[512];
  while (fgets(buf, sizeof(buf), pipe)) r.output += buf;
  r.exit_code = WEXITSTATUS(pclose(pipe));
  return r;
}

TEST(Cli, BenchmarkAllMethods) {
  const CliResult r = run_cli("--benchmark GCD --method all --quiet");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("M1"), std::string::npos);
  EXPECT_NE(r.output.find("Flamel"), std::string::npos);
  EXPECT_NE(r.output.find("FACT"), std::string::npos);
  EXPECT_NE(r.output.find("avg length"), std::string::npos);
}

TEST(Cli, PowerObjectiveReportsVdd) {
  const CliResult r = run_cli("--benchmark PPS --objective power");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("scaled Vdd"), std::string::npos);
}

TEST(Cli, SourceFileFlow) {
  const std::string path = ::testing::TempDir() + "cli_test_src.fact";
  {
    std::ofstream f(path);
    f << "MINI(int a, int b) { int x = a * b + a; output x; }\n";
  }
  const CliResult r = run_cli(path + " --alloc a1=1,mt1=1 --quiet");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("FACT"), std::string::npos);
}

TEST(Cli, EmitsArtifacts) {
  const std::string vpath = ::testing::TempDir() + "cli_test_out.v";
  const std::string dpath = ::testing::TempDir() + "cli_test_out.dot";
  const CliResult r = run_cli("--benchmark GCD --quiet --no-fuse --emit-verilog " +
                              vpath + " --emit-stg " + dpath);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  std::ifstream v(vpath);
  ASSERT_TRUE(v.good());
  std::stringstream vs;
  vs << v.rdbuf();
  EXPECT_NE(vs.str().find("module GCD"), std::string::npos);
  EXPECT_NE(vs.str().find("endmodule"), std::string::npos);
  std::ifstream d(dpath);
  ASSERT_TRUE(d.good());
  std::stringstream ds;
  ds << d.rdbuf();
  EXPECT_NE(ds.str().find("digraph"), std::string::npos);
}

TEST(Cli, BadUsageFails) {
  EXPECT_NE(run_cli("").exit_code, 0);
  EXPECT_NE(run_cli("--benchmark NOPE").exit_code, 0);
  EXPECT_NE(run_cli("--benchmark GCD --alloc bogus=1").exit_code, 0);
  EXPECT_NE(run_cli("/nonexistent/file.fact").exit_code, 0);
}

TEST(Cli, InfeasibleAllocationDiagnosed) {
  // GCD needs subtracters; give it none.
  const CliResult r = run_cli("--benchmark GCD --alloc cp1=1,e1=1 --method m1");
  EXPECT_NE(r.exit_code, 0);
  EXPECT_NE(r.output.find("error"), std::string::npos);
}

}  // namespace
