#include "program_gen.hpp"

#include "util/rng.hpp"

namespace fact::testgen {

using ir::Expr;
using ir::ExprPtr;
using ir::Op;
using ir::Stmt;
using ir::StmtPtr;

namespace {

class Generator {
 public:
  Generator(uint64_t seed, const GenOptions& opts) : rng_(seed), opts_(opts) {}

  ir::Function run() {
    ir::Function fn("FUZZ");
    fn.add_param("p0");
    fn.add_param("p1");
    names_ = {"p0", "p1"};
    for (int i = 0; i < opts_.scalar_pool; ++i)
      names_.push_back("v" + std::to_string(i));
    // Loop counters are readable but never reassigned by generated code,
    // which keeps every loop's termination proof intact.
    assignable_ = names_;
    if (opts_.with_arrays) {
      fn.add_array({"ain", 8, true});
      arrays_.push_back("ain");
      fn.add_array({"ascratch", 8, false});
      arrays_.push_back("ascratch");
    }
    fn.set_body(Stmt::block(gen_block(opts_.max_depth)));
    // Observe a couple of scalars (plus all arrays, via the equivalence
    // checker's array comparison).
    fn.add_output("v0");
    fn.add_output("v1");
    fn.renumber();
    fn.validate();
    return fn;
  }

 private:
  int irand(int lo, int hi) {
    return static_cast<int>(rng_.uniform_int(lo, hi));
  }

  const std::string& pick_name() {
    return names_[static_cast<size_t>(irand(0, static_cast<int>(names_.size()) - 1))];
  }

  const std::string& pick_assignable() {
    return assignable_[static_cast<size_t>(
        irand(0, static_cast<int>(assignable_.size()) - 1))];
  }

  ExprPtr gen_expr(int depth) {
    if (depth <= 0 || irand(0, 3) == 0) {
      // Leaf: variable, constant, or array read.
      const int kind = irand(0, 4);
      if (kind == 0) return Expr::constant(irand(-8, 12));
      if (kind == 1 && !arrays_.empty())
        return Expr::array_read(
            arrays_[static_cast<size_t>(irand(0, static_cast<int>(arrays_.size()) - 1))],
            gen_expr(0));
      return Expr::var(pick_name());
    }
    switch (irand(0, 9)) {
      case 0: return Expr::binary(Op::Add, gen_expr(depth - 1), gen_expr(depth - 1));
      case 1: return Expr::binary(Op::Sub, gen_expr(depth - 1), gen_expr(depth - 1));
      case 2: return Expr::binary(Op::Mul, gen_expr(depth - 1), gen_expr(depth - 1));
      case 3: return Expr::binary(Op::Lt, gen_expr(depth - 1), gen_expr(depth - 1));
      case 4: return Expr::binary(Op::Gt, gen_expr(depth - 1), gen_expr(depth - 1));
      case 5: return Expr::binary(Op::Eq, gen_expr(depth - 1), gen_expr(depth - 1));
      case 6: return Expr::binary(Op::Shr, gen_expr(depth - 1),
                                  Expr::constant(irand(0, 3)));
      case 7: return Expr::unary(Op::BitNot, gen_expr(depth - 1));
      case 8:
        return Expr::select(gen_expr(depth - 1), gen_expr(depth - 1),
                            gen_expr(depth - 1));
      default:
        return Expr::binary(Op::Add, gen_expr(depth - 1), gen_expr(depth - 1));
    }
  }

  std::vector<StmtPtr> gen_block(int depth) {
    std::vector<StmtPtr> out;
    const int n = irand(1, opts_.max_stmts);
    for (int i = 0; i < n; ++i) {
      const int kind = irand(0, 9);
      if (kind <= 4 || depth <= 0) {
        // Assignment (the common case).
        out.push_back(Stmt::assign(pick_assignable(), gen_expr(opts_.max_expr_depth)));
      } else if (kind <= 6 && !arrays_.empty()) {
        out.push_back(Stmt::store(
            arrays_[static_cast<size_t>(irand(0, static_cast<int>(arrays_.size()) - 1))],
            gen_expr(1), gen_expr(opts_.max_expr_depth)));
      } else if (kind <= 8) {
        auto then_b = gen_block(depth - 1);
        auto else_b = irand(0, 1) ? gen_block(depth - 1)
                                  : std::vector<StmtPtr>{};
        out.push_back(Stmt::if_stmt(gen_expr(2), std::move(then_b),
                                    std::move(else_b)));
      } else {
        // Counted loop: fresh counter, constant trip, i++ at the end.
        const std::string counter = "c" + std::to_string(counter_id_++);
        names_.push_back(counter);
        const int trip = irand(1, opts_.max_loop_trip);
        out.push_back(Stmt::assign(counter, Expr::constant(0)));
        auto body = gen_block(depth - 1);
        body.push_back(Stmt::assign(
            counter, Expr::binary(Op::Add, Expr::var(counter), Expr::constant(1))));
        out.push_back(Stmt::while_stmt(
            Expr::binary(Op::Lt, Expr::var(counter), Expr::constant(trip)),
            std::move(body)));
      }
    }
    return out;
  }

  Rng rng_;
  GenOptions opts_;
  std::vector<std::string> names_;
  std::vector<std::string> assignable_;
  std::vector<std::string> arrays_;
  int counter_id_ = 0;
};

}  // namespace

ir::Function random_program(uint64_t seed, const GenOptions& opts) {
  return Generator(seed, opts).run();
}

}  // namespace fact::testgen
