// End-to-end integration tests: the Table 2 pipeline (M1 / Flamel / FACT)
// on the actual benchmarks, checking the paper's qualitative claims hold:
// FACT is never worse than either baseline and strictly better somewhere.

#include <gtest/gtest.h>

#include "opt/baselines.hpp"
#include "opt/fact.hpp"
#include "workloads/workloads.hpp"

namespace fact {
namespace {

struct MethodResults {
  double m1 = 0.0;
  double flamel = 0.0;
  double fact = 0.0;
};

MethodResults run_all(const std::string& name) {
  const workloads::Workload w = workloads::by_name(name);
  const auto lib = hlslib::Library::dac98();
  const auto sel = hlslib::FuSelection::defaults(lib);
  const sched::SchedOptions so;
  const power::PowerOptions po;

  MethodResults r;
  r.m1 = opt::run_m1(w.fn, lib, w.allocation, sel, w.trace, so, po, 7).avg_len;
  r.flamel =
      opt::run_flamel(w.fn, lib, w.allocation, sel, w.trace, so, po, 7).avg_len;
  opt::FactOptions fo;
  const auto xf = xform::TransformLibrary::standard();
  r.fact = opt::run_fact(w.fn, lib, w.allocation, sel, w.trace, xf, fo)
               .final_avg_len;
  return r;
}

class Table2Ordering : public ::testing::TestWithParam<const char*> {};

TEST_P(Table2Ordering, FactAtLeastMatchesBaselines) {
  const MethodResults r = run_all(GetParam());
  // Throughput = 1/length: FACT must not lose to either method.
  EXPECT_LE(r.fact, r.m1 * 1.001) << "FACT worse than M1";
  EXPECT_LE(r.fact, r.flamel * 1.001) << "FACT worse than Flamel";
  // Flamel (transforms, schedule-blind) never loses to M1 (no transforms)
  // on these benchmarks.
  EXPECT_LE(r.flamel, r.m1 * 1.001);
}

INSTANTIATE_TEST_SUITE_P(Benchmarks, Table2Ordering,
                         ::testing::Values("GCD", "FIR", "TEST2", "SINTRAN",
                                           "IGF", "PPS"));

TEST(Table2, FactStrictlyBeatsM1OnMostBenchmarks) {
  int strict_wins = 0;
  double ratio_product = 1.0;
  int n = 0;
  for (const char* name : {"GCD", "FIR", "TEST2", "SINTRAN", "IGF", "PPS"}) {
    const MethodResults r = run_all(name);
    if (r.fact < r.m1 * 0.95) strict_wins++;
    ratio_product *= r.m1 / r.fact;
    n++;
  }
  EXPECT_GE(strict_wins, 5);
  // Paper: 2.7x average improvement; our reproduction lands near 2x.
  const double geomean = std::pow(ratio_product, 1.0 / n);
  EXPECT_GT(geomean, 1.5);
}

TEST(Table2, ScheduleAwarenessBeatsFlamelSomewhere) {
  // The paper's central claim: schedule-guided selection wins where static
  // criteria are blind — Test2 (Example 2's regrouping) and PPS.
  const MethodResults test2 = run_all("TEST2");
  EXPECT_LT(test2.fact, test2.flamel * 0.9);
  const MethodResults pps = run_all("PPS");
  EXPECT_LT(pps.fact, pps.flamel * 0.9);
}

TEST(Table2, Test2MatchesExample2Arithmetic) {
  // Example 2: the transformed schedule is ~1.25x faster than the
  // untransformed one (408 vs 510 cycles in the paper's instance).
  const MethodResults r = run_all("TEST2");
  const double speedup = r.m1 / r.fact;
  EXPECT_GT(speedup, 1.1);
  EXPECT_LT(speedup, 1.5);
}

TEST(PowerMode, SavesPowerAtIsoThroughputAcrossBenchmarks) {
  const auto lib = hlslib::Library::dac98();
  const auto sel = hlslib::FuSelection::defaults(lib);
  double total_saving = 0.0;
  int n = 0;
  for (const char* name : {"GCD", "PPS", "SINTRAN"}) {
    const workloads::Workload w = workloads::by_name(name);
    opt::FactOptions fo;
    fo.objective = opt::Objective::Power;
    const auto xf = xform::TransformLibrary::standard();
    const opt::FactResult r =
        opt::run_fact(w.fn, lib, w.allocation, sel, w.trace, xf, fo);
    EXPECT_LE(r.final_power.power, r.initial_power.power * 1.0001) << name;
    EXPECT_LE(r.final_power.vdd, 5.0) << name;
    total_saving += 1.0 - r.final_power.power / r.initial_power.power;
    n++;
  }
  // Paper: 62% average saving; these three average well above 40%.
  EXPECT_GT(total_saving / n, 0.4);
}

TEST(Integration, OptimizedBehaviorsStayEquivalent) {
  const auto lib = hlslib::Library::dac98();
  const auto sel = hlslib::FuSelection::defaults(lib);
  for (const char* name : {"GCD", "SINTRAN", "IGF"}) {
    const workloads::Workload w = workloads::by_name(name);
    opt::FactOptions fo;
    const auto xf = xform::TransformLibrary::standard();
    const opt::FactResult r =
        opt::run_fact(w.fn, lib, w.allocation, sel, w.trace, xf, fo);
    const sim::Trace fresh = sim::generate_trace(w.fn, w.trace, 4242);
    EXPECT_TRUE(sim::equivalent_on_trace(w.fn, r.optimized, fresh)) << name;
  }
}

TEST(Integration, Test1PowerWalkthroughShape) {
  // Example 1's pipeline on TEST1 with the Table 1 library: schedule,
  // estimate, and scale. The exact 119.11-cycle figure belongs to the
  // authors' scheduler; ours must produce the same *structure*: a
  // dominant loop, a ~0.98 closing probability, and a scaled voltage
  // strictly between Vt and 5V once the behavior is transformed.
  const workloads::Workload w = workloads::make_test1();
  const auto lib = hlslib::Library::table1();
  const auto sel = hlslib::FuSelection::defaults(lib);
  const sim::Trace trace = sim::generate_trace(w.fn, w.trace, 7);
  const sim::Profile profile = sim::profile_function(w.fn, trace);
  sched::Scheduler scheduler(lib, w.allocation, sel, {});
  const sched::ScheduleResult sr = scheduler.schedule(w.fn, profile);
  const double len = stg::average_schedule_length(sr.stg);
  EXPECT_GT(len, 40.0);   // ~50 iterations, at least 1 cycle each
  EXPECT_LT(len, 400.0);
  const power::PowerEstimate est = power::estimate_power(sr.stg, lib, {});
  EXPECT_GT(est.energy_coeff_total, 0.0);
  EXPECT_GT(est.ops_per_exec.count("incr1"), 0u);
  EXPECT_GT(est.ops_per_exec.count("w_mult1"), 0u);
  // Vdd scaling against a 27% slower base case lands near Example 1's 4.29V.
  const power::PowerEstimate scaled =
      power::estimate_power_scaled(sr.stg, lib, len * 151.30 / 119.11, {});
  EXPECT_NEAR(scaled.vdd, 4.29, 0.01);
}

}  // namespace
}  // namespace fact
