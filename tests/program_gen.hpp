#pragma once

#include <cstdint>

#include "ir/function.hpp"

namespace fact::testgen {

/// Knobs for the random behavior generator.
struct GenOptions {
  int max_stmts = 8;       // per block
  int max_depth = 2;       // control nesting
  int max_expr_depth = 3;
  int scalar_pool = 5;     // candidate variable names v0..v{n-1}
  int max_loop_trip = 6;   // counted loops only (guaranteed termination)
  bool with_arrays = true;
};

/// Generates a random, valid, terminating behavior: counted loops,
/// arbitrary nested conditionals, array traffic, and expressions over the
/// full operator set. Used to fuzz transformations (functional
/// equivalence), the scheduler (STG validity), and the RTL backend
/// (hardware-vs-interpreter equivalence).
ir::Function random_program(uint64_t seed, const GenOptions& opts = {});

}  // namespace fact::testgen
