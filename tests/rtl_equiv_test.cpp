// Hardware-vs-interpreter equivalence on the paper's benchmarks: the RTL
// plan (the exact semantics the Verilog backend prints) must reproduce the
// behavioral interpreter's observations on every trace stimulus — both for
// the original behaviors and for the FACT-optimized ones.

#include <gtest/gtest.h>

#include "opt/fact.hpp"
#include "rtl/sim.hpp"
#include "sched/scheduler.hpp"
#include "workloads/workloads.hpp"

namespace fact {
namespace {

void expect_rtl_equiv(const ir::Function& reference, const ir::Function& impl,
                      const hlslib::Allocation& alloc, const sim::Trace& trace,
                      const char* tag) {
  const auto lib = hlslib::Library::dac98();
  const sim::Profile profile = sim::profile_function(impl, trace);
  sched::SchedOptions so;
  so.fuse_loops = false;  // RTL-exact mode (see ScheduleResult::rtl_exact)
  sched::Scheduler scheduler(lib, alloc, hlslib::FuSelection::defaults(lib), so);
  const sched::ScheduleResult sr = scheduler.schedule(impl, profile);
  ASSERT_TRUE(sr.rtl_exact) << tag;
  const rtl::RtlPlan plan = rtl::build_rtl_plan(impl, sr.stg);
  sim::Interpreter interp(reference);
  for (const auto& stim : trace) {
    const sim::Observation ref = interp.run(stim);
    const rtl::RtlSimResult got = rtl::simulate_rtl(impl, plan, stim);
    ASSERT_TRUE(got.completed) << tag;
    ASSERT_EQ(got.obs, ref) << tag;
    EXPECT_GT(got.cycles, 0);
  }
}

class RtlEquivalence : public ::testing::TestWithParam<const char*> {};

TEST_P(RtlEquivalence, OriginalBehavior) {
  const workloads::Workload w = workloads::by_name(GetParam());
  const sim::Trace trace = sim::generate_trace(w.fn, w.trace, 7);
  expect_rtl_equiv(w.fn, w.fn, w.allocation, trace, GetParam());
}

TEST_P(RtlEquivalence, FactOptimizedBehavior) {
  const workloads::Workload w = workloads::by_name(GetParam());
  const auto lib = hlslib::Library::dac98();
  opt::FactOptions fo;
  fo.sched.fuse_loops = false;
  const opt::FactResult r =
      opt::run_fact(w.fn, lib, w.allocation, hlslib::FuSelection::defaults(lib),
                    w.trace, xform::TransformLibrary::standard(), fo);
  // Fresh trace (different seed than the optimizer used).
  const sim::Trace trace = sim::generate_trace(w.fn, w.trace, 1234);
  expect_rtl_equiv(w.fn, r.optimized, w.allocation, trace, GetParam());
}

INSTANTIATE_TEST_SUITE_P(Benchmarks, RtlEquivalence,
                         ::testing::Values("GCD", "FIR", "SINTRAN", "IGF",
                                           "PPS", "TEST2"));

}  // namespace
}  // namespace fact
