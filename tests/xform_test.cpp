#include <gtest/gtest.h>

#include "lang/parser.hpp"
#include "sim/trace.hpp"
#include "util/error.hpp"
#include "xform/transform.hpp"

namespace fact::xform {
namespace {

ir::Function parse(const std::string& src) { return lang::parse_function(src); }

/// Applies one candidate and checks functional equivalence on a trace.
void check_equiv(const Transform& t, const ir::Function& fn,
                 const Candidate& c, const sim::TraceConfig& tc = {}) {
  const ir::Function g = t.apply(fn, c);
  const sim::Trace trace = sim::generate_trace(fn, tc, 13);
  EXPECT_TRUE(sim::equivalent_on_trace(fn, g, trace))
      << c.describe() << "\nbefore:\n"
      << fn.str() << "after:\n"
      << g.str();
}

const ir::Stmt* first_assign(const ir::Function& fn) {
  const ir::Stmt* found = nullptr;
  fn.for_each([&](const ir::Stmt& s) {
    if (!found && s.kind == ir::StmtKind::Assign) found = &s;
  });
  return found;
}

// ---- individual rewrites ----------------------------------------------

TEST(Commutativity, SwapsOperands) {
  const auto t = make_commutativity();
  const auto fn = parse("F(int a, int b) { int x = a + b; output x; }");
  const auto cands = t->find(fn, {});
  ASSERT_FALSE(cands.empty());
  const ir::Function g = t->apply(fn, cands[0]);
  EXPECT_EQ(first_assign(g)->value->str(), "(b + a)");
  check_equiv(*t, fn, cands[0]);
}

TEST(Commutativity, SkipsNonCommutativeAndIdentical) {
  const auto t = make_commutativity();
  const auto fn = parse("F(int a) { int x = a - 1; int y = a + a; output x; output y; }");
  for (const auto& c : t->find(fn, {})) {
    const ir::Function g = t->apply(fn, c);
    EXPECT_NE(g.str(), fn.str());
  }
}

TEST(Associativity, RotatesAndBalances) {
  const auto t = make_associativity();
  const auto fn = parse("F(int a, int b, int c, int d) { int x = ((a + b) + c) + d; output x; }");
  const auto cands = t->find(fn, {});
  bool saw_balance = false;
  for (const auto& c : cands) {
    if (c.variant == 2) {
      const ir::Function g = t->apply(fn, c);
      EXPECT_EQ(first_assign(g)->value->str(), "((a + b) + (c + d))");
      saw_balance = true;
    }
    check_equiv(*t, fn, c);
  }
  EXPECT_TRUE(saw_balance);
}

TEST(Associativity, ChainVariantsOnlyAtRoot) {
  const auto t = make_associativity();
  const auto fn = parse("F(int a, int b, int c, int d) { int x = a + b + c + d; output x; }");
  int balance_candidates = 0;
  for (const auto& c : t->find(fn, {}))
    if (c.variant == 2) balance_candidates++;
  EXPECT_EQ(balance_candidates, 1);
}

TEST(AddSub, Example2Regrouping) {
  // (y1 + y2) - (y3 + y4) must offer the (y1 - y3) + (y2 - y4) form that
  // Example 2 of the paper uses to retarget adders to subtracters.
  const auto t = make_addsub_reassociation();
  const auto fn = parse(
      "F(int y1, int y2, int y3, int y4) { int x = (y1 + y2) - (y3 + y4); output x; }");
  const auto cands = t->find(fn, {});
  ASSERT_FALSE(cands.empty());
  bool saw_paired = false;
  for (const auto& c : cands) {
    const ir::Function g = t->apply(fn, c);
    if (first_assign(g)->value->str() == "((y1 - y3) + (y2 - y4))")
      saw_paired = true;
    check_equiv(*t, fn, c);
  }
  EXPECT_TRUE(saw_paired);
}

TEST(AddSub, HandlesAllNegativeTails) {
  const auto t = make_addsub_reassociation();
  const auto fn = parse("F(int a, int b, int c, int d) { int x = a - b - c - d; output x; }");
  for (const auto& c : t->find(fn, {})) check_equiv(*t, fn, c);
}

TEST(Distributivity, FactorsCommonOperand) {
  const auto t = make_distributivity();
  const auto fn = parse("F(int a, int b, int c) { int x = a * b - a * c; output x; }");
  const auto cands = t->find(fn, {});
  ASSERT_FALSE(cands.empty());
  bool saw_factored = false;
  for (const auto& c : cands) {
    const ir::Function g = t->apply(fn, c);
    if (first_assign(g)->value->str() == "(a * (b - c))") saw_factored = true;
    check_equiv(*t, fn, c);
  }
  EXPECT_TRUE(saw_factored);
}

TEST(Distributivity, FactorsAnyOperandPosition) {
  const auto t = make_distributivity();
  const auto fn = parse("F(int a, int b, int c) { int x = b * a + c * a; output x; }");
  bool found = false;
  for (const auto& c : t->find(fn, {})) {
    found = true;
    check_equiv(*t, fn, c);
  }
  EXPECT_TRUE(found);
}

TEST(Distributivity, ExpandsProducts) {
  const auto t = make_distributivity();
  const auto fn = parse("F(int a, int b, int c) { int x = a * (b + c); output x; }");
  bool saw_expand = false;
  for (const auto& c : t->find(fn, {})) {
    if (c.variant >= 10) {
      const ir::Function g = t->apply(fn, c);
      EXPECT_EQ(first_assign(g)->value->str(), "((a * b) + (a * c))");
      saw_expand = true;
    }
    check_equiv(*t, fn, c);
  }
  EXPECT_TRUE(saw_expand);
}

TEST(ConstFold, FoldsAndSimplifies) {
  const auto t = make_constant_folding();
  struct Case {
    const char* src;
    const char* expect;
  } cases[] = {
      {"F(int a) { int x = 2 + 3; output x; }", "5"},
      {"F(int a) { int x = a + 0; output x; }", "a"},
      {"F(int a) { int x = a * 1; output x; }", "a"},
      {"F(int a) { int x = a * 0; output x; }", "0"},
      {"F(int a) { int x = a - 0; output x; }", "a"},
      {"F(int a) { int x = 1 ? a : 7; output x; }", "a"},
      {"F(int a) { int x = a > 0 ? a : a; output x; }", "a"},
  };
  for (const auto& cs : cases) {
    const auto fn = parse(cs.src);
    const auto cands = t->find(fn, {});
    ASSERT_FALSE(cands.empty()) << cs.src;
    const ir::Function g = t->apply(fn, cands[0]);
    EXPECT_EQ(first_assign(g)->value->str(), cs.expect) << cs.src;
    check_equiv(*t, fn, cands[0]);
  }
}

TEST(ConstProp, PropagatesUntilRedefinition) {
  const auto t = make_constant_propagation();
  const auto fn = parse(R"(
F(int a) {
  int k = 7;
  int x = a + k;
  k = a;
  int y = a + k;
  output x; output y;
}
)");
  const auto cands = t->find(fn, {});
  ASSERT_FALSE(cands.empty());
  const ir::Function g = t->apply(fn, cands[0]);
  // x's use gets the constant; y's use (after k = a) does not.
  bool x_const = false, y_var = false;
  g.for_each([&](const ir::Stmt& s) {
    if (s.kind != ir::StmtKind::Assign) return;
    if (s.target == "x") x_const = s.value->str() == "(a + 7)";
    if (s.target == "y") y_var = s.value->str() == "(a + k)";
  });
  EXPECT_TRUE(x_const);
  EXPECT_TRUE(y_var);
  check_equiv(*t, fn, cands[0]);
}

TEST(ConstProp, DescendsIntoLoopsThatDoNotRedefine) {
  const auto t = make_constant_propagation();
  const auto fn = parse(R"(
F(int n) {
  int k = 3;
  int i = 0;
  int s = 0;
  while (i < n) { s = s + k; i = i + 1; }
  output s;
}
)");
  for (const auto& c : t->find(fn, {})) check_equiv(*t, fn, c);
}

TEST(Licm, HoistsInvariantExpression) {
  const auto t = make_code_motion();
  const auto fn = parse(R"(
F(int n, int a, int b) {
  int i = 0;
  int s = 0;
  while (i < n) {
    s = s + (a * b);
    i = i + 1;
  }
  output s;
}
)");
  const auto cands = t->find(fn, {});
  ASSERT_FALSE(cands.empty());
  const ir::Function g = t->apply(fn, cands[0]);
  // The multiply moved out: the loop body no longer contains a Mul.
  bool mul_in_loop = false;
  g.for_each([&](const ir::Stmt& s) {
    if (s.kind != ir::StmtKind::While) return;
    for (const auto& body : s.then_stmts)
      for (const auto* slot : body->expr_slots())
        ir::for_each_node(*slot, [&](const ir::ExprPtr& e) {
          if (e->op() == ir::Op::Mul) mul_in_loop = true;
        });
  });
  EXPECT_FALSE(mul_in_loop);
  check_equiv(*t, fn, cands[0]);
}

TEST(Licm, SkipsVariantExpressionsAndMemory) {
  const auto t = make_code_motion();
  const auto fn = parse(R"(
F(int n) {
  input int m[4];
  int i = 0;
  int s = 0;
  while (i < n) {
    s = s + m[i] + (s * 2);
    i = i + 1;
  }
  output s;
}
)");
  // Nothing hoistable: m[i] reads memory, s*2 is loop-variant.
  for (const auto& c : t->find(fn, {})) {
    // Any candidate that does exist must still be safe.
    check_equiv(*t, fn, c);
  }
}

TEST(Unroll, PartialFactorsPreserveSemantics) {
  const auto t = make_loop_unrolling();
  const auto fn = parse(R"(
F(int a, int b) {
  while (a != b) {
    if (a > b) { a = a - b; } else { b = b - a; }
  }
  output a;
}
)");
  sim::TraceConfig tc;
  tc.params["a"] = {sim::InputSpec::Kind::Uniform, 0, 0, 0, 1, 40, 0};
  tc.params["b"] = {sim::InputSpec::Kind::Uniform, 0, 0, 0, 1, 40, 0};
  for (const auto& c : t->find(fn, {})) {
    if (c.variant == 100) continue;  // not statically counted
    check_equiv(*t, fn, c, tc);
  }
}

TEST(Unroll, FullUnrollOfCountedLoop) {
  const auto t = make_loop_unrolling();
  const auto fn = parse(R"(
F(int a) {
  int s = 0;
  int k = 7;
  while (k >= 0) {
    s = s + a;
    k = k - 1;
  }
  output s; output k;
}
)");
  const auto cands = t->find(fn, {});
  bool saw_full = false;
  for (const auto& c : cands) {
    if (c.variant != 100) continue;
    saw_full = true;
    const ir::Function g = t->apply(fn, c);
    bool has_while = false;
    g.for_each([&](const ir::Stmt& s) {
      if (s.kind == ir::StmtKind::While) has_while = true;
    });
    EXPECT_FALSE(has_while);
    check_equiv(*t, fn, c);
  }
  EXPECT_TRUE(saw_full);
}

TEST(Unroll, NoFullUnrollForDataDependentLoop) {
  const auto t = make_loop_unrolling();
  const auto fn = parse("F(int n) { int i = 0; while (i < n) { i = i + 1; } }");
  for (const auto& c : t->find(fn, {})) EXPECT_NE(c.variant, 100);
}

TEST(Unroll, NoFullUnrollBeyondTripCap) {
  const auto t = make_loop_unrolling();
  const auto fn = parse("F() { int i = 0; while (i < 100) { i = i + 1; } }");
  for (const auto& c : t->find(fn, {})) EXPECT_NE(c.variant, 100);
}

TEST(Speculate, ConvertsBranchesToSelects) {
  const auto t = make_speculation();
  const auto fn = parse(R"(
F(int a, int b) {
  int x = 0;
  if (a > b) { int t1 = a + 7; x = t1 * 2; } else { x = b; }
  output x;
}
)");
  const auto cands = t->find(fn, {});
  ASSERT_EQ(cands.size(), 1u);
  const ir::Function g = t->apply(fn, cands[0]);
  bool has_if = false;
  g.for_each([&](const ir::Stmt& s) {
    if (s.kind == ir::StmtKind::If) has_if = true;
  });
  EXPECT_FALSE(has_if);
  check_equiv(*t, fn, cands[0]);
}

TEST(Speculate, CrossAssignedVariablesReadPreBranchValues) {
  const auto t = make_speculation();
  // Both branches permute (a, b): the selects must read old values.
  const auto fn = parse(R"(
F(int a, int b) {
  if (a > b) { int t = a; a = b; b = t; } else { a = a + b; b = a; }
  output a; output b;
}
)");
  const auto cands = t->find(fn, {});
  ASSERT_EQ(cands.size(), 1u);
  check_equiv(*t, fn, cands[0]);
}

TEST(Speculate, SkipsBranchesWithStoresOrControl) {
  const auto t = make_speculation();
  const auto fn = parse(R"(
F(int a) {
  int m[4];
  if (a > 0) { m[0] = a; }
  if (a > 1) { while (a > 0) { a = a - 1; } }
  output a;
}
)");
  EXPECT_TRUE(t->find(fn, {}).empty());
}

TEST(SelectFuse, SameConditionPairsArms) {
  const auto t = make_select_fusion();
  const auto fn = parse(
      "F(int c, int a, int b, int u, int v) { int x = (c > 0 ? a : b) - (c > 0 ? u : v); output x; }");
  const auto cands = t->find(fn, {});
  ASSERT_FALSE(cands.empty());
  const ir::Function g = t->apply(fn, cands[0]);
  EXPECT_EQ(first_assign(g)->value->str(), "((c > 0) ? (a - u) : (b - v))");
  check_equiv(*t, fn, cands[0]);
}

TEST(SelectFuse, ComplementaryConditionsCrossPair) {
  const auto t = make_select_fusion();
  const auto fn = parse(
      "F(int c, int a, int b, int u, int v) { int x = (c > 0 ? a : b) + (c <= 0 ? u : v); output x; }");
  const auto cands = t->find(fn, {});
  ASSERT_FALSE(cands.empty());
  EXPECT_EQ(cands[0].variant, 1);
  const ir::Function g = t->apply(fn, cands[0]);
  EXPECT_EQ(first_assign(g)->value->str(), "((c > 0) ? (a + v) : (b + u))");
  check_equiv(*t, fn, cands[0]);
}

TEST(SelectFuse, UnrelatedConditionsRejected) {
  const auto t = make_select_fusion();
  const auto fn = parse(
      "F(int c, int d, int a, int b) { int x = (c > 0 ? a : b) + (d > 0 ? b : a); output x; }");
  EXPECT_TRUE(t->find(fn, {}).empty());
}

TEST(SelectHoist, HoistAndSinkRoundTrip) {
  const auto t = make_select_hoisting();
  const auto fn = parse(
      "F(int c, int a, int b, int z) { int x = (c > 0 ? a : b) * z; output x; }");
  const auto cands = t->find(fn, {});
  ASSERT_FALSE(cands.empty());
  const ir::Function hoisted = t->apply(fn, cands[0]);
  EXPECT_EQ(first_assign(hoisted)->value->str(),
            "((c > 0) ? (a * z) : (b * z))");
  check_equiv(*t, fn, cands[0]);
  // The hoisted form must offer a sink candidate that returns to a select
  // feeding one multiplier.
  const auto sink_cands = t->find(hoisted, {});
  bool saw_sink = false;
  for (const auto& c : sink_cands) {
    if (c.variant < 10) continue;
    const ir::Function sunk = t->apply(hoisted, c);
    if (first_assign(sunk)->value->str() == "(((c > 0) ? a : b) * z)")
      saw_sink = true;
  }
  EXPECT_TRUE(saw_sink);
}

// ---- Example 3 of the paper: distributivity across basic blocks --------

TEST(CrossBlock, Example3PatternReduces) {
  // After speculation the two joins become selects steered by the same
  // condition; fusing then factoring yields one multiply behind a select,
  // exactly Figure 4(b)'s effect (3 cycles -> 2 on one multiplier).
  auto lib = TransformLibrary::standard();
  const auto fn = parse(R"(
F(int c, int x1, int x2, int x3, int x4, int x5) {
  int p = 0;
  int q = 0;
  if (c > 0) { p = x1 * x2; q = x1 * x3; } else { p = x4; q = x5; }
  int out = p - q;
  output out;
}
)");
  const sim::Trace trace = sim::generate_trace(fn, {}, 17);

  // speculate -> select-fuse -> distribute.
  ir::Function cur = fn.clone();
  const auto apply_first = [&](const char* name) {
    const Transform* t = lib.find_transform(name);
    const auto cands = t->find(cur, {});
    ASSERT_FALSE(cands.empty()) << name;
    cur = t->apply(cur, cands[0]);
    ASSERT_TRUE(sim::equivalent_on_trace(fn, cur, trace)) << name;
  };
  apply_first("speculate");
  // Forward-substitute p and q into `out = p - q` to expose the two
  // selects to fusion.
  apply_first("fwdsub");
  apply_first("fwdsub");
  apply_first("select-fuse");
  // Count multiplies in the fused select arms before factoring.
  const Transform* dist = lib.find_transform("distribute");
  const auto dcands = dist->find(cur, {});
  ASSERT_FALSE(dcands.empty());
  cur = dist->apply(cur, dcands[0]);
  EXPECT_TRUE(sim::equivalent_on_trace(fn, cur, trace));
  // Remove the now-dead p/q definitions left by substitution.
  const Transform* dce = lib.find_transform("dce");
  for (auto cands = dce->find(cur, {}); !cands.empty();
       cands = dce->find(cur, {})) {
    cur = dce->apply(cur, cands[0]);
    ASSERT_TRUE(sim::equivalent_on_trace(fn, cur, trace));
  }
  // After factoring, the then-arm computes x1 * (x2 - x3): one multiply.
  size_t muls = 0;
  cur.for_each([&](const ir::Stmt& s) {
    for (const auto* slot : s.expr_slots())
      ir::for_each_node(*slot, [&](const ir::ExprPtr& e) {
        if (e->op() == ir::Op::Mul) muls++;
      });
  });
  EXPECT_EQ(muls, 1u);
}

// ---- property tests: every transform preserves semantics ---------------

class AllTransformsEquivalence
    : public ::testing::TestWithParam<const char*> {};

TEST_P(AllTransformsEquivalence, EveryCandidatePreservesBehavior) {
  const auto fn = parse(GetParam());
  sim::TraceConfig tc;
  tc.executions = 12;
  const sim::Trace trace = sim::generate_trace(fn, tc, 29);
  const auto lib = TransformLibrary::standard();
  size_t applied = 0;
  for (const auto& t : lib.transforms()) {
    for (const auto& c : t->find(fn, {})) {
      const ir::Function g = t->apply(fn, c);
      EXPECT_TRUE(sim::equivalent_on_trace(fn, g, trace))
          << c.describe() << "\n"
          << g.str();
      applied++;
      // Second-order: apply one more random-ish transform on top.
      if (applied % 3 == 0) {
        for (const auto& t2 : lib.transforms()) {
          const auto c2s = t2->find(g, {});
          if (c2s.empty()) continue;
          const ir::Function g2 = t2->apply(g, c2s[c2s.size() / 2]);
          EXPECT_TRUE(sim::equivalent_on_trace(fn, g2, trace))
              << c.describe() << " then " << c2s[c2s.size() / 2].describe();
          break;
        }
      }
    }
  }
  EXPECT_GT(applied, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Programs, AllTransformsEquivalence,
    ::testing::Values(
        // Arithmetic-heavy straight line.
        "F(int a, int b, int c) { int x = a * b + a * c - (b + c); int y = x + x * 2 + 3 * x; output x; output y; }",
        // Conditionals with shared subexpressions.
        "F(int a, int b) { int x = 0; if (a > b) { x = a * b; } else { x = a + b; } int y = x * 2; output y; }",
        // Counted loop with invariant and array traffic.
        "F(int k) { input int m[8]; int s = 0; int i = 0; while (i < 8) { s = s + m[i] * (k + 1); i = i + 1; } output s; }",
        // Nested control flow.
        "F(int a, int b) { int i = 0; int s = 0; while (i < 6) { if (a > b) { s = s + a; } else { s = s - b; } i = i + 1; } output s; }",
        // Selects in expressions.
        "F(int c, int a, int b) { int x = (c > 2 ? a : b) * (c > 2 ? b : a); output x; }",
        // Constants everywhere.
        "F(int a) { int k = 4; int x = k * 2 + a * 1 + 0; int y = x - 0 + 5 * k; output y; }"));

TEST(Library, StandardContainsPaperSuite) {
  const auto lib = TransformLibrary::standard();
  for (const char* name :
       {"commute", "reassoc", "addsub", "distribute", "constfold", "constprop",
        "licm", "unroll", "speculate", "select-fuse", "select-hoist"})
    EXPECT_NE(lib.find_transform(name), nullptr) << name;
  EXPECT_THROW(lib.apply(parse("F() { }"), Candidate{"nope", 0, 0, {}, 0}),
               Error);
}

TEST(Library, FindAllAggregatesAndRespectsRegion) {
  const auto lib = TransformLibrary::standard();
  const auto fn = parse("F(int a, int b) { int x = a + b; int y = b + a; output x; output y; }");
  const auto all = lib.find_all(fn, {});
  EXPECT_GT(all.size(), 1u);
  // Restrict to only the first assignment's id.
  const int first_id = first_assign(fn)->id;
  const auto restricted = lib.find_all(fn, {first_id});
  EXPECT_LT(restricted.size(), all.size());
  for (const auto& c : restricted) EXPECT_EQ(c.stmt_id, first_id);
}

}  // namespace
}  // namespace fact::xform
