// Acceptance tests of the guarded optimization pipeline: a seeded
// fault injector corrupts transform rewrites at a configurable rate, and
// the engine must (a) never crash, (b) never return a design that fails
// verification or trace equivalence, (c) account for every injected fault
// in its quarantine counters, and (d) degrade gracefully to the baseline
// when nothing survives.

#include <gtest/gtest.h>

#include "lang/parser.hpp"
#include "opt/engine.hpp"
#include "sim/trace.hpp"
#include "verify/fault_injector.hpp"
#include "verify/verify.hpp"

namespace fact::opt {
namespace {

ir::Function parse(const std::string& src) { return lang::parse_function(src); }

struct Harness {
  hlslib::Library lib = hlslib::Library::dac98();
  hlslib::FuSelection sel = hlslib::FuSelection::defaults(lib);
  hlslib::Allocation alloc;
  sched::SchedOptions sched_opts;
  power::PowerOptions power_opts;
  ir::Function fn = parse(R"(
GCD(int a, int b) {
  while (a != b) {
    if (a > b) { a = a - b; } else { b = b - a; }
  }
  output a;
}
)");
  sim::Trace trace;

  Harness() {
    alloc.counts = {{"a1", 2}, {"sb1", 2}, {"mt1", 1}, {"cp1", 1},
                    {"e1", 1}, {"i1", 1},  {"n1", 1},  {"s1", 1}};
    sim::TraceConfig tc;
    tc.params["a"] = {sim::InputSpec::Kind::Uniform, 0, 0, 0, 1, 60, 0};
    tc.params["b"] = {sim::InputSpec::Kind::Uniform, 0, 0, 0, 1, 60, 0};
    trace = sim::generate_trace(fn, tc, 5);
  }

  EngineResult run(const xform::TransformLibrary& xf, EngineOptions opts) {
    opts.validate = verify::Level::Full;
    TransformEngine engine(lib, alloc, sel, sched_opts, power_opts, xf, opts);
    return engine.optimize(fn, trace, Objective::Throughput, {}, 100.0);
  }
};

int by_class(const EngineResult& r, const std::string& cls) {
  auto it = r.quarantine_by_class.find(cls);
  return it == r.quarantine_by_class.end() ? 0 : it->second;
}

int exception_classes(const EngineResult& r) {
  int n = 0;
  for (const auto& [cls, count] : r.quarantine_by_class)
    if (cls.rfind("exception:", 0) == 0) n += count;
  return n;
}

/// Quarantine class each injected corruption must land in: the layer of
/// the pipeline that is responsible for catching it.
std::string expected_class(verify::FaultClass c) {
  switch (c) {
    case verify::FaultClass::WrongSemantics: return "nonequivalent";
    case verify::FaultClass::ThrowException: return "";  // exception:* prefix
    case verify::FaultClass::DuplicateStmtId: return "ir.stmt-id-unique";
    case verify::FaultClass::EmptyLoopBody: return "ir.empty-loop";
    case verify::FaultClass::UndeclaredArray: return "ir.arrays";
    case verify::FaultClass::UndefinedRead: return "ir.def-before-use";
  }
  return "?";
}

int sum_by_class(const EngineResult& r) {
  int n = 0;
  for (const auto& [cls, count] : r.quarantine_by_class) n += count;
  return n;
}

TEST(FaultInjection, AllInjectedFaultsCaughtAndAccounted) {
  Harness h;
  const auto inner = xform::TransformLibrary::standard();
  verify::FaultInjectorOptions fo;
  fo.rate = 0.5;
  fo.seed = 11;
  verify::FaultInjector injector(inner, fo);

  EngineOptions opts;
  opts.seed = 3;
  const EngineResult r = h.run(injector, opts);

  // Enough corruption happened to make the test meaningful, across
  // several classes.
  EXPECT_GE(injector.injected_total(), 10);
  int classes_hit = 0;
  for (verify::FaultClass c : verify::all_fault_classes())
    if (injector.injected(c) > 0) classes_hit++;
  EXPECT_GE(classes_hit, 4);

  // Exact accounting: every injected fault was quarantined by the layer
  // responsible for it — verification catches 100% of structural
  // corruption, equivalence catches 100% of semantic corruption, the
  // transactional wrapper catches 100% of exceptions.
  for (verify::FaultClass c : verify::all_fault_classes()) {
    if (c == verify::FaultClass::ThrowException) continue;
    EXPECT_EQ(by_class(r, expected_class(c)), injector.injected(c))
        << "class " << verify::to_string(c);
  }
  EXPECT_EQ(exception_classes(r),
            injector.injected(verify::FaultClass::ThrowException));
  EXPECT_EQ(r.rejected_nonequivalent,
            injector.injected(verify::FaultClass::WrongSemantics));

  // Counter consistency, and structured records stay within their cap.
  EXPECT_EQ(sum_by_class(r), r.quarantined);
  EXPECT_LE(r.quarantine.size(), opts.quarantine_log_cap);
  for (const auto& rec : r.quarantine) {
    EXPECT_FALSE(rec.pass.empty());
    EXPECT_FALSE(rec.failure_class.empty());
    EXPECT_FALSE(rec.transforms.empty());
  }

  // Despite heavy corruption the result is trustworthy: functionally
  // equivalent to the input and verify-clean.
  EXPECT_TRUE(sim::equivalent_on_trace(h.fn, r.best, h.trace));
  const std::set<std::string> allowed = verify::undefined_reads(h.fn);
  const verify::Report rep =
      verify::verify_function(r.best, verify::Level::Full, &allowed);
  EXPECT_TRUE(rep.ok()) << rep.str();
}

TEST(FaultInjection, EveryClassCaughtInIsolation) {
  for (verify::FaultClass c : verify::all_fault_classes()) {
    Harness h;
    const auto inner = xform::TransformLibrary::standard();
    verify::FaultInjectorOptions fo;
    fo.rate = 1.0;  // corrupt every rewrite
    fo.seed = 7;
    fo.classes = {c};
    verify::FaultInjector injector(inner, fo);

    EngineOptions opts;
    opts.seed = 5;
    opts.max_outer_iters = 2;
    const EngineResult r = h.run(injector, opts);

    ASSERT_GT(injector.injected(c), 0) << verify::to_string(c);
    const int caught = c == verify::FaultClass::ThrowException
                           ? exception_classes(r)
                           : by_class(r, expected_class(c));
    // 100% of this class's injections were caught and classified.
    EXPECT_EQ(caught, injector.injected(c)) << verify::to_string(c);
    EXPECT_EQ(r.quarantined, injector.injected_total())
        << verify::to_string(c);

    // With every rewrite corrupted, nothing may be accepted.
    EXPECT_TRUE(r.degraded_to_baseline) << verify::to_string(c);
    EXPECT_TRUE(r.applied.empty());
    EXPECT_EQ(r.best.str(), h.fn.str());
  }
}

TEST(FaultInjection, FullCorruptionDegradesToBaseline) {
  Harness h;
  const auto inner = xform::TransformLibrary::standard();
  verify::FaultInjectorOptions fo;
  fo.rate = 1.0;
  fo.seed = 23;
  verify::FaultInjector injector(inner, fo);

  const EngineResult r = h.run(injector, {});
  EXPECT_TRUE(r.degraded_to_baseline);
  EXPECT_TRUE(r.applied.empty());
  EXPECT_EQ(r.best.str(), h.fn.str());
  EXPECT_EQ(r.quarantined, injector.injected_total());
  EXPECT_GT(r.quarantined, 0);
  // The baseline itself was still evaluated: the caller gets real metrics.
  EXPECT_GT(r.best_eval.avg_len, 0.0);
  EXPECT_FALSE(r.truncated);
}

TEST(FaultInjection, DeterministicForSeeds) {
  auto once = []() {
    Harness h;
    const auto inner = xform::TransformLibrary::standard();
    verify::FaultInjectorOptions fo;
    fo.rate = 0.5;
    fo.seed = 11;
    verify::FaultInjector injector(inner, fo);
    EngineOptions opts;
    opts.seed = 3;
    EngineResult r = h.run(injector, opts);
    return std::make_tuple(r.best.str(), r.quarantine_by_class,
                           r.evaluations, injector.injected_by_class());
  };
  EXPECT_EQ(once(), once());
}

TEST(Deadline, TinyDeadlineReturnsBestSoFarTruncated) {
  Harness h;
  const auto xf = xform::TransformLibrary::standard();
  EngineOptions opts;
  opts.deadline_ms = 1e-3;  // expires right after the baseline evaluation
  const EngineResult r = h.run(xf, opts);
  EXPECT_TRUE(r.truncated);
  EXPECT_EQ(r.best.str(), h.fn.str());
  EXPECT_GT(r.best_eval.avg_len, 0.0);
  // Truncation is not degradation: nothing failed, we just ran out of
  // budget before exploring.
  EXPECT_FALSE(r.degraded_to_baseline);
  EXPECT_EQ(r.quarantined, 0);
}

TEST(Deadline, EvaluationBudgetTruncates) {
  Harness h;
  const auto xf = xform::TransformLibrary::standard();
  EngineOptions opts;
  opts.max_evaluations = 1;
  const EngineResult r = h.run(xf, opts);
  EXPECT_TRUE(r.truncated);
  EXPECT_EQ(r.evaluations, 1);
  EXPECT_EQ(r.best.str(), h.fn.str());
  EXPECT_GT(r.best_eval.avg_len, 0.0);
}

TEST(Deadline, GenerousBudgetDoesNotTruncate) {
  Harness h;
  const auto xf = xform::TransformLibrary::standard();
  EngineOptions opts;
  opts.deadline_ms = 120000.0;
  opts.max_evaluations = 1000000;
  const EngineResult r = h.run(xf, opts);
  EXPECT_FALSE(r.truncated);
  EXPECT_FALSE(r.applied.empty());
  EXPECT_LT(r.best_eval.avg_len, 100.0);
}

}  // namespace
}  // namespace fact::opt
