#include <gtest/gtest.h>

#include "lang/parser.hpp"
#include "sim/trace.hpp"
#include "xform/transform.hpp"

namespace fact::xform {
namespace {

ir::Function parse(const std::string& src) { return lang::parse_function(src); }

void check_equiv(const Transform& t, const ir::Function& fn,
                 const Candidate& c) {
  const ir::Function g = t.apply(fn, c);
  const sim::Trace trace = sim::generate_trace(fn, {}, 13);
  EXPECT_TRUE(sim::equivalent_on_trace(fn, g, trace))
      << c.describe() << "\n" << g.str();
}

TEST(FwdSub, SubstitutesDefinitionIntoUse) {
  const auto t = make_forward_substitution();
  const auto fn = parse(
      "F(int a, int b) { int s = a * b; int y = s + 1; output y; }");
  const auto cands = t->find(fn, {});
  ASSERT_EQ(cands.size(), 1u);
  const ir::Function g = t->apply(fn, cands[0]);
  const ir::Stmt* y = nullptr;
  g.for_each([&](const ir::Stmt& s) {
    if (s.kind == ir::StmtKind::Assign && s.target == "y") y = &s;
  });
  ASSERT_NE(y, nullptr);
  EXPECT_EQ(y->value->str(), "((a * b) + 1)");
  check_equiv(*t, fn, cands[0]);
}

TEST(FwdSub, WindowClosedByRedefinition) {
  const auto t = make_forward_substitution();
  const auto fn = parse(R"(
F(int a) {
  int s = a * 2;
  a = a + 1;
  int y = s + 1;
  output y;
}
)");
  // `a = a + 1` clobbers s's input: no candidate may reach y.
  for (const auto& c : t->find(fn, {})) {
    const ir::Stmt* use = fn.find_stmt(c.stmt_id);
    ASSERT_NE(use, nullptr);
    EXPECT_NE(use->target, "y");
  }
}

TEST(FwdSub, MemoryReadsBlockedByStores) {
  const auto t = make_forward_substitution();
  const auto fn = parse(R"(
F(int a) {
  int m[4];
  int s = m[0] + 1;
  m[0] = a;
  int y = s * 2;
  output y;
}
)");
  for (const auto& c : t->find(fn, {})) {
    const ir::Stmt* use = fn.find_stmt(c.stmt_id);
    EXPECT_NE(use->target, "y");
  }
}

TEST(FwdSub, WhileConditionNeverTargeted) {
  const auto t = make_forward_substitution();
  const auto fn = parse(R"(
F(int a) {
  int limit = a * 2;
  int i = 0;
  while (i < limit) { i = i + 1; }
  output i;
}
)");
  // Substituting into the while condition would be legal here (nothing in
  // the body writes a), but the transform is conservatively blocked.
  for (const auto& c : t->find(fn, {})) {
    const ir::Stmt* use = fn.find_stmt(c.stmt_id);
    EXPECT_NE(use->kind, ir::StmtKind::While);
    check_equiv(*t, fn, c);
  }
}

TEST(Dce, RemovesDeadAndKeepsLive) {
  const auto t = make_dead_code_elimination();
  const auto fn = parse(R"(
F(int a) {
  int dead = a * 3;
  int live = a + 1;
  output live;
}
)");
  const auto cands = t->find(fn, {});
  ASSERT_EQ(cands.size(), 1u);
  const ir::Function g = t->apply(fn, cands[0]);
  bool has_dead = false;
  g.for_each([&](const ir::Stmt& s) {
    if (s.kind == ir::StmtKind::Assign && s.target == "dead") has_dead = true;
  });
  EXPECT_FALSE(has_dead);
  check_equiv(*t, fn, cands[0]);
}

TEST(Dce, LoopCarriedVariablesAreLive) {
  const auto t = make_dead_code_elimination();
  const auto fn = parse(R"(
F(int n) {
  int acc = 0;
  int i = 0;
  while (i < n) { acc = acc + i; i = i + 1; }
  output acc;
}
)");
  // acc/i are read by later iterations: nothing is dead.
  EXPECT_TRUE(t->find(fn, {}).empty());
}

TEST(Cse, HoistsRepeatedSubexpression) {
  const auto t = make_common_subexpression_elimination();
  const auto fn = parse(
      "F(int a, int b) { int y = (a * b) + (a * b); output y; }");
  const auto cands = t->find(fn, {});
  ASSERT_FALSE(cands.empty());
  const ir::Function g = t->apply(fn, cands[0]);
  // One multiply remains, factored through a temp.
  size_t muls = 0;
  g.for_each([&](const ir::Stmt& s) {
    for (const auto* slot : s.expr_slots())
      ir::for_each_node(*slot, [&](const ir::ExprPtr& e) {
        if (e->op() == ir::Op::Mul) muls++;
      });
  });
  EXPECT_EQ(muls, 1u);
  check_equiv(*t, fn, cands[0]);
}

TEST(Cse, CountsNestedRepeats) {
  const auto t = make_common_subexpression_elimination();
  // (a+b) occurs twice, ((a+b)*c) twice: both are candidates.
  const auto fn = parse(
      "F(int a, int b, int c) { int y = ((a + b) * c) - (((a + b) * c) >> 1); output y; }");
  const auto cands = t->find(fn, {});
  EXPECT_GE(cands.size(), 2u);
  for (const auto& c : cands) check_equiv(*t, fn, c);
}

TEST(Cse, NoCandidateWithoutRepeats) {
  const auto t = make_common_subexpression_elimination();
  const auto fn = parse("F(int a, int b) { int y = a * b + a; output y; }");
  EXPECT_TRUE(t->find(fn, {}).empty());
}

TEST(Cse, PairsWithSpeculationDuplicates) {
  // Speculation duplicates x*k into both select arms; CSE re-shares it.
  const auto lib = TransformLibrary::standard();
  const auto fn = parse(R"(
F(int c, int x, int k) {
  int y = 0;
  if (c > 0) { y = x * k + 1; } else { y = x * k - 1; }
  output y;
}
)");
  const sim::Trace trace = sim::generate_trace(fn, {}, 13);
  const Transform* spec = lib.find_transform("speculate");
  ir::Function cur = spec->apply(fn, spec->find(fn, {})[0]);
  const Transform* cse = lib.find_transform("cse");
  const auto cands = cse->find(cur, {});
  ASSERT_FALSE(cands.empty());
  cur = cse->apply(cur, cands[0]);
  EXPECT_TRUE(sim::equivalent_on_trace(fn, cur, trace)) << cur.str();
  size_t muls = 0;
  cur.for_each([&](const ir::Stmt& s) {
    for (const auto* slot : s.expr_slots())
      ir::for_each_node(*slot, [&](const ir::ExprPtr& e) {
        if (e->op() == ir::Op::Mul) muls++;
      });
  });
  EXPECT_EQ(muls, 1u);
}

}  // namespace
}  // namespace fact::xform
