#include <gtest/gtest.h>

#include "lang/parser.hpp"
#include "sched/dfg.hpp"
#include "sched/region.hpp"
#include "sched/scheduler.hpp"
#include "sim/trace.hpp"
#include "util/error.hpp"

namespace fact::sched {
namespace {

ir::Function parse(const std::string& src) { return lang::parse_function(src); }

struct Harness {
  hlslib::Library lib = hlslib::Library::dac98();
  hlslib::FuSelection sel = hlslib::FuSelection::defaults(lib);
  hlslib::Allocation alloc;
  SchedOptions opts;

  Harness() {
    alloc.counts = {{"a1", 2}, {"sb1", 2}, {"mt1", 1}, {"cp1", 2},
                    {"e1", 1}, {"i1", 1},  {"n1", 1},  {"s1", 1}};
  }

  ScheduleResult schedule(const ir::Function& fn,
                          const sim::TraceConfig& tc = {}) const {
    const sim::Trace trace = sim::generate_trace(fn, tc, 7);
    const sim::Profile profile = sim::profile_function(fn, trace);
    Scheduler s(lib, alloc, sel, opts);
    return s.schedule(fn, profile);
  }
};

// ---- region tree ------------------------------------------------------

TEST(RegionTree, GroupsStraightLineCode) {
  const auto fn = parse("F(int a) { int x = a + 1; int y = x * 2; int z = y - 1; }");
  const RegionPtr tree = build_region_tree(fn);
  ASSERT_EQ(tree->children.size(), 1u);
  EXPECT_TRUE(tree->children[0]->is_straight());
  EXPECT_EQ(tree->children[0]->stmts.size(), 3u);
}

TEST(RegionTree, SplitsAtControlFlow) {
  const auto fn = parse(R"(
F(int a) {
  int x = a + 1;
  if (x > 0) { x = x - 1; }
  int y = x * 2;
}
)");
  const RegionPtr tree = build_region_tree(fn);
  ASSERT_EQ(tree->children.size(), 3u);
  EXPECT_TRUE(tree->children[0]->is_straight());
  EXPECT_EQ(tree->children[1]->kind, Region::Kind::If);
  EXPECT_TRUE(tree->children[2]->is_straight());
}

TEST(RegionTree, LoopBodyStraightDetection) {
  const auto straight = parse("F(int n) { int i = 0; while (i < n) { i = i + 1; } }");
  const auto tree1 = build_region_tree(straight);
  const Region* loop1 = tree1->children[1].get();
  ASSERT_EQ(loop1->kind, Region::Kind::Loop);
  EXPECT_TRUE(loop1->loop_body_is_straight());

  const auto branchy = parse(R"(
F(int n) {
  int i = 0;
  while (i < n) { if (i > 2) { i = i + 2; } else { i = i + 1; } }
}
)");
  const auto tree2 = build_region_tree(branchy);
  EXPECT_FALSE(tree2->children[1]->loop_body_is_straight());
}

TEST(RegionTree, FlattensNestedBlocks) {
  // for-lowering produces nested blocks; adjacent straight code must merge.
  const auto fn = parse("F() { int a = 1; for (a = 0; a < 2; a++) { int b = a; } int c = 2; }");
  const RegionPtr tree = build_region_tree(fn);
  // init statements merge into one straight region before the loop.
  ASSERT_GE(tree->children.size(), 2u);
  EXPECT_TRUE(tree->children[0]->is_straight());
  EXPECT_EQ(tree->children[0]->stmts.size(), 2u);  // a=1; a=0
}

// ---- DFG construction -------------------------------------------------

TEST(Dfg, ValueNumberingSharesCommonSubexpressions) {
  Harness s;
  const auto fn = parse("F(int a, int b) { int x = (a > b) ? a : b; int y = (a > b) ? b : a; }");
  DfgBuilder b(s.lib, s.alloc, s.sel, 5.0, 1.0);
  const RegionPtr tree = build_region_tree(fn);
  const Dfg dfg = b.build(tree->children[0]->stmts);
  int comparators = 0;
  for (const auto& n : dfg.nodes)
    if (n.fu == "cp1") comparators++;
  EXPECT_EQ(comparators, 1);
}

TEST(Dfg, ValueNumberingInvalidatedOnRedefine) {
  Harness s;
  const auto fn = parse("F(int a) { int x = a * a; a = a + 1; int y = a * a; }");
  DfgBuilder b(s.lib, s.alloc, s.sel, 5.0, 1.0);
  const RegionPtr tree = build_region_tree(fn);
  const Dfg dfg = b.build(tree->children[0]->stmts);
  int mults = 0;
  for (const auto& n : dfg.nodes)
    if (n.fu == "mt1") mults++;
  EXPECT_EQ(mults, 2);  // a*a before and after redefinition differ
}

TEST(Dfg, CountedLoopComparisonsAreControllerResident) {
  Harness s;
  const auto fn = parse("F(int n, int c) { int x = (n < 5) + (n < c); }");
  DfgBuilder b(s.lib, s.alloc, s.sel, 5.0, 1.0);
  const RegionPtr tree = build_region_tree(fn);
  const Dfg dfg = b.build(tree->children[0]->stmts);
  int datapath_cmp = 0, controller_cmp = 0;
  for (const auto& n : dfg.nodes) {
    if (n.op != ir::Op::Lt) continue;
    if (n.fu.empty()) controller_cmp++; else datapath_cmp++;
  }
  EXPECT_EQ(controller_cmp, 1);  // n < 5
  EXPECT_EQ(datapath_cmp, 1);    // n < c
}

TEST(Dfg, IncrementerBindsSelfIncrementsOnly) {
  Harness s;
  // `i = i + 1` is a counter update (incr1 per Table 1); `j = a + 1` is a
  // data add and must stay on the adder so counters keep incrementers.
  const auto fn = parse("F(int a) { int i = 3; i = i + 1; int j = a + 1; }");
  DfgBuilder b(s.lib, s.alloc, s.sel, 5.0, 1.0);
  const RegionPtr tree = build_region_tree(fn);
  const Dfg dfg = b.build(tree->children[0]->stmts);
  int incrs = 0, adders = 0;
  for (const auto& n : dfg.nodes) {
    if (n.fu == "i1") incrs++;
    if (n.fu == "a1") adders++;
  }
  EXPECT_EQ(incrs, 1);
  EXPECT_EQ(adders, 1);
}

TEST(Dfg, ChainingRespectsClockPeriod) {
  Harness s;
  // Three dependent adds at 10ns each: two chain into 20ns <= 25, the
  // third starts a new cstep.
  const auto fn = parse("F(int a, int b) { int x = ((a + b) + a) + b; }");
  DfgBuilder b(s.lib, s.alloc, s.sel, 5.0, 1.0);
  const RegionPtr tree = build_region_tree(fn);
  Dfg dfg = b.build(tree->children[0]->stmts);
  ResourceTable table(s.lib, s.alloc, 0);
  ASSERT_TRUE(list_schedule(dfg, table, 25.0));
  EXPECT_EQ(dfg.num_csteps(), 2);
}

TEST(Dfg, ResourceConstraintSerializes) {
  Harness s;
  s.alloc.counts["mt1"] = 1;
  // Two independent multiplies, one multiplier: 2 csteps.
  const auto fn = parse("F(int a, int b) { int x = a * a; int y = b * b; }");
  DfgBuilder b(s.lib, s.alloc, s.sel, 5.0, 1.0);
  const RegionPtr tree = build_region_tree(fn);
  Dfg dfg = b.build(tree->children[0]->stmts);
  ResourceTable table(s.lib, s.alloc, 0);
  ASSERT_TRUE(list_schedule(dfg, table, 25.0));
  EXPECT_EQ(dfg.num_csteps(), 2);
}

TEST(Dfg, MultiCycleOperations) {
  Harness s;
  // Multiplier (23ns at 5V) at 4V scales to ~34ns > 25ns: spans 2 csteps.
  const auto fn = parse("F(int a) { int x = a * a; }");
  DfgBuilder b(s.lib, s.alloc, s.sel, 4.0, 1.0);
  const RegionPtr tree = build_region_tree(fn);
  Dfg dfg = b.build(tree->children[0]->stmts);
  ResourceTable table(s.lib, s.alloc, 0);
  ASSERT_TRUE(list_schedule(dfg, table, 25.0));
  EXPECT_EQ(dfg.nodes[0].span, 2);
  EXPECT_EQ(dfg.num_csteps(), 2);
}

TEST(Dfg, MemoryPortSerializesSameArray) {
  Harness s;
  const auto fn = parse(R"(
F(int i) {
  input int x[8];
  int a = x[i];
  int b = x[i + 1];
}
)");
  DfgBuilder b(s.lib, s.alloc, s.sel, 5.0, 1.0);
  const RegionPtr tree = build_region_tree(fn);
  Dfg dfg = b.build(tree->children[0]->stmts);
  ResourceTable table(s.lib, s.alloc, 0);
  ASSERT_TRUE(list_schedule(dfg, table, 25.0));
  // Two reads of x cannot share a cycle on a single-ported memory.
  int c0 = -1, c1 = -1;
  for (const auto& n : dfg.nodes)
    if (n.array == "x") (c0 < 0 ? c0 : c1) = n.cstep;
  EXPECT_NE(c0, c1);
}

TEST(Dfg, ResourceMinIiMatchesCounts) {
  Harness s;
  s.alloc.counts["a1"] = 2;
  const auto fn = parse("F(int a) { int x = a + 1 + a + 2 + a + 3; }");
  // Note: +1 binds to the incrementer; remaining adds to a1.
  DfgBuilder b(s.lib, s.alloc, s.sel, 5.0, 1.0);
  const RegionPtr tree = build_region_tree(fn);
  const Dfg dfg = b.build(tree->children[0]->stmts);
  const int ii = resource_min_ii(dfg, s.alloc);
  EXPECT_GE(ii, 2);  // 4 adds on 2 adders (chain is left-leaning: a+1 first)
}

// ---- full scheduling --------------------------------------------------

TEST(Scheduler, StraightLineProducesLinearStg) {
  Harness s;
  const auto fn = parse("F(int a, int b) { int x = a * b; int y = x * 2; output y; }");
  const ScheduleResult r = s.schedule(fn);
  // Two dependent multiplies on one multiplier: 2 states, deterministic.
  EXPECT_EQ(r.stg.num_states(), 2u);
  EXPECT_NEAR(stg::average_schedule_length(r.stg), 2.0, 1e-9);
}

TEST(Scheduler, EmptyFunctionIdles) {
  const auto fn = parse("F() { }");
  Harness s;
  const ScheduleResult r = s.schedule(fn);
  EXPECT_EQ(r.stg.num_states(), 1u);
  EXPECT_NEAR(stg::average_schedule_length(r.stg), 1.0, 1e-9);
}

TEST(Scheduler, IfCreatesBranchStates) {
  Harness s;
  const auto fn = parse(R"(
F(int a, int b) {
  int x = 0;
  if (a > b) { x = a * 2; } else { x = b * 3; }
  output x;
}
)");
  const ScheduleResult r = s.schedule(fn);
  // Branch probabilities on the condition state's out edges sum to 1 and
  // both branches are represented.
  r.stg.validate();
  EXPECT_GE(r.stg.num_states(), 4u);
}

TEST(Scheduler, SimpleLoopPipelinesToIiOne) {
  Harness s;
  const auto fn = parse(R"(
F(int n) {
  int i = 0;
  int acc = 0;
  while (i < n) {
    acc = acc + i;
    i = i + 1;
  }
  output acc;
}
)");
  sim::TraceConfig tc;
  tc.params["n"] = {sim::InputSpec::Kind::Uniform, 0, 0, 0, 10, 30, 0};
  const ScheduleResult r = s.schedule(fn, tc);
  ASSERT_EQ(r.loops.size(), 1u);
  EXPECT_TRUE(r.loops[0].pipelined);
  EXPECT_EQ(r.loops[0].ii, 1);
}

TEST(Scheduler, RecurrenceLimitsIi) {
  Harness s;
  // Loop-carried chain: acc = (acc * k) computed on the 23ns multiplier,
  // then used next iteration: II >= 1 but the mult occupies a full cycle;
  // acc = acc*k + i*k has a 2-op recurrence -> II 2.
  const auto fn = parse(R"(
F(int n, int k) {
  int i = 0;
  int acc = 1;
  while (i < n) {
    acc = (acc * k) * k;
    i = i + 1;
  }
  output acc;
}
)");
  sim::TraceConfig tc;
  tc.params["n"] = {sim::InputSpec::Kind::Uniform, 0, 0, 0, 5, 10, 0};
  tc.params["k"] = {sim::InputSpec::Kind::Uniform, 0, 0, 0, 1, 3, 0};
  const ScheduleResult r = s.schedule(fn, tc);
  ASSERT_EQ(r.loops.size(), 1u);
  EXPECT_TRUE(r.loops[0].pipelined);
  EXPECT_GE(r.loops[0].ii, 2);  // two dependent mults, one multiplier
}

TEST(Scheduler, LoopWithBranchFallsBackToStateMachine) {
  Harness s;
  const auto fn = parse(R"(
F(int a, int b) {
  while (a != b) {
    if (a > b) { a = a - b; } else { b = b - a; }
  }
  output a;
}
)");
  sim::TraceConfig tc;
  tc.params["a"] = {sim::InputSpec::Kind::Uniform, 0, 0, 0, 1, 40, 0};
  tc.params["b"] = {sim::InputSpec::Kind::Uniform, 0, 0, 0, 1, 40, 0};
  const ScheduleResult r = s.schedule(fn, tc);
  ASSERT_EQ(r.loops.size(), 1u);
  EXPECT_FALSE(r.loops[0].pipelined);
  // test state + if-test state + branch states.
  EXPECT_GE(r.stg.num_states(), 3u);
}

TEST(Scheduler, AverageLengthTracksExpectedIterations) {
  Harness s;
  const auto fn = parse(R"(
F(int n) {
  int i = 0;
  while (i < n) { i = i + 1; }
}
)");
  sim::TraceConfig tc;
  tc.params["n"] = {sim::InputSpec::Kind::Constant, 0, 0, 0, 0, 0, 20};
  const ScheduleResult r = s.schedule(fn, tc);
  // II=1 pipelined loop with ~20 iterations plus the init state.
  EXPECT_NEAR(stg::average_schedule_length(r.stg), 21.0, 2.0);
}

TEST(Scheduler, InfeasibleAllocationDiagnosed) {
  Harness s;
  s.alloc.counts.erase("mt1");
  const auto fn = parse("F(int a) { int x = a * a; }");
  EXPECT_THROW(s.schedule(fn), Error);
}

TEST(Scheduler, ShortClockMultiCyclesOps) {
  Harness s;
  s.opts.clock_ns = 6.0;  // adder (10ns) must span two cycles
  const auto fn = parse("F(int a, int b) { int x = a + b; output x; }");
  const ScheduleResult r = s.schedule(fn);
  EXPECT_GE(r.stg.num_states(), 2u);
  EXPECT_NEAR(stg::average_schedule_length(r.stg), 2.0, 1e-9);
}

TEST(Scheduler, IndependentLoopsFuse) {
  Harness s;
  s.alloc.counts["i1"] = 2;  // one incrementer per loop counter
  const auto fn = parse(R"(
F(int n) {
  input int x[32];
  input int z[32];
  int x1[32];
  int z1[32];
  int i = 0;
  int j = 0;
  while (i < 20) { x1[i] = x[i] + 1; i = i + 1; }
  while (j < 30) { z1[j] = z[j] + 2; j = j + 1; }
}
)");
  const ScheduleResult r = s.schedule(fn);
  ASSERT_EQ(r.loops.size(), 2u);
  EXPECT_FALSE(r.loops[0].fused_with.empty());
  EXPECT_FALSE(r.loops[1].fused_with.empty());
  // Both loops at II=1 concurrently: the total length is near the longer
  // loop (30), far below the sequential sum (50).
  EXPECT_LT(stg::average_schedule_length(r.stg), 42.0);
}

TEST(Scheduler, DependentLoopsDoNotFuse) {
  Harness s;
  const auto fn = parse(R"(
F(int n) {
  input int x[32];
  int y[32];
  int i = 0;
  int j = 0;
  while (i < 8) { y[i] = x[i] + 1; i = i + 1; }
  while (j < 8) { y[j] = y[j] * 2; j = j + 1; }
}
)");
  const ScheduleResult r = s.schedule(fn);
  ASSERT_EQ(r.loops.size(), 2u);
  EXPECT_TRUE(r.loops[0].fused_with.empty());
  EXPECT_TRUE(r.loops[1].fused_with.empty());
}

TEST(Scheduler, FusionDisabledByOption) {
  Harness s;
  s.opts.fuse_loops = false;
  const auto fn = parse(R"(
F(int n) {
  int i = 0;
  int j = 0;
  int a = 0;
  int b = 0;
  while (i < 20) { a = a + 1; i = i + 1; }
  while (j < 30) { b = b + 2; j = j + 1; }
}
)");
  const ScheduleResult r = s.schedule(fn);
  for (const auto& l : r.loops) EXPECT_TRUE(l.fused_with.empty());
}

TEST(Scheduler, PipeliningDisabledByOption) {
  Harness s;
  s.opts.pipeline_loops = false;
  s.opts.fuse_loops = false;
  const auto fn = parse("F(int n) { int i = 0; while (i < n) { i = i + 1; } }");
  const ScheduleResult r = s.schedule(fn);
  ASSERT_EQ(r.loops.size(), 1u);
  EXPECT_FALSE(r.loops[0].pipelined);
}

TEST(Scheduler, StgAnnotationsCoverOpsAndRegisters) {
  Harness s;
  const auto fn = parse("F(int a, int b) { int x = a + b; output x; }");
  const ScheduleResult r = s.schedule(fn);
  int adds = 0, reads = 0, writes = 0;
  for (const auto& st : r.stg.states()) {
    for (const auto& op : st.ops)
      if (op.fu_type == "a1") adds++;
    reads += st.reg_reads;
    writes += st.reg_writes;
  }
  EXPECT_EQ(adds, 1);
  EXPECT_EQ(reads, 2);
  EXPECT_EQ(writes, 1);
}

TEST(Scheduler, WaitingLoopDoesNotDegradeAdmittedOnes) {
  Harness s;
  s.alloc.counts["a1"] = 1;  // one adder: the two adder loops cannot share
  const auto fn = parse(R"(
F(int n) {
  int i = 0;
  int j = 0;
  int a = 0;
  int b = 0;
  while (i < 20) { a = a + 2; i = i + 1; }
  while (j < 20) { b = b + 3; j = j + 1; }
}
)");
  const ScheduleResult r = s.schedule(fn);
  ASSERT_EQ(r.loops.size(), 2u);
  // First loop admitted at II=1; second waits (phases), still II=1 when
  // it eventually runs alone.
  EXPECT_EQ(r.loops[0].ii, 1);
  EXPECT_EQ(r.loops[1].ii, 1);
  // Sequential-ish length: about 40 cycles, not 20.
  EXPECT_GT(stg::average_schedule_length(r.stg), 35.0);
}

}  // namespace
}  // namespace fact::sched
