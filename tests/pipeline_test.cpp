// Structural tests of the software-pipeline STG shape: guard, prologue,
// kernel ring, epilogue drain — and of the ring annotations (ring ids,
// lags, iteration tags) the RTL backend depends on.

#include <gtest/gtest.h>

#include "lang/parser.hpp"
#include "sched/scheduler.hpp"
#include "sim/trace.hpp"

namespace fact::sched {
namespace {

ir::Function parse(const std::string& src) { return lang::parse_function(src); }

struct Harness {
  hlslib::Library lib = hlslib::Library::dac98();
  hlslib::Allocation alloc;
  SchedOptions opts;

  Harness() {
    alloc.counts = {{"a1", 2}, {"sb1", 2}, {"mt1", 1}, {"cp1", 2},
                    {"e1", 1}, {"i1", 1},  {"n1", 1},  {"s1", 1}};
  }

  ScheduleResult schedule(const ir::Function& fn,
                          const sim::TraceConfig& tc = {}) const {
    const sim::Trace trace = sim::generate_trace(fn, tc, 7);
    const sim::Profile profile = sim::profile_function(fn, trace);
    Scheduler s(lib, alloc, hlslib::FuSelection::defaults(lib), opts);
    return s.schedule(fn, profile);
  }
};

TEST(Pipeline, RingStatesShareAnId) {
  Harness h;
  const auto fn = parse(R"(
F(int n) {
  int i = 0;
  int s = 0;
  while (i < n) { s = s + i * 3; i = i + 1; }
  output s;
}
)");
  const ScheduleResult r = h.schedule(fn);
  ASSERT_TRUE(r.loops[0].pipelined);
  std::set<int> rings;
  size_t ring_states = 0;
  for (const auto& st : r.stg.states()) {
    if (st.ring_id >= 0) {
      rings.insert(st.ring_id);
      ring_states++;
    }
  }
  EXPECT_EQ(rings.size(), 1u);
  EXPECT_EQ(ring_states, static_cast<size_t>(r.loops[0].ii));
}

TEST(Pipeline, GuardSkipsZeroIterationLoops) {
  // n = 0: the loop body must never execute; the guard state makes the
  // schedule exact (the kernel is entered only after the test passes).
  Harness h;
  const auto fn = parse(R"(
F(int n) {
  int s = 5;
  int i = 0;
  while (i < n) { s = s * 2; i = i + 1; }
  output s;
}
)");
  sim::TraceConfig tc;
  tc.params["n"] = {sim::InputSpec::Kind::Constant, 0, 0, 0, 0, 0, 0};
  const ScheduleResult r = h.schedule(fn, tc);
  // The guard's exit edge must bypass every ring state: from the state
  // evaluating the test there is a path to the boundary that never enters
  // a ring.
  r.stg.validate();
  ASSERT_TRUE(r.loops[0].pipelined);
  // Functional check happens in the RTL equivalence suite; structurally,
  // at least one non-ring state must have an edge into the ring AND an
  // edge elsewhere (the guard branch).
  bool guard_found = false;
  for (const auto& st : r.stg.states()) {
    if (st.ring_id >= 0 || st.out_edges.size() < 2) continue;
    bool to_ring = false, to_linear = false;
    for (int ei : st.out_edges) {
      const int to = r.stg.edge(ei).to;
      (r.stg.state(to).ring_id >= 0 ? to_ring : to_linear) = true;
    }
    if (to_ring && to_linear) guard_found = true;
  }
  EXPECT_TRUE(guard_found);
}

TEST(Pipeline, PrologueExecutesOneFullIteration) {
  Harness h;
  const auto fn = parse(R"(
F(int n) {
  input int x[16];
  int y[16];
  int i = 0;
  while (i < n) { y[i] = x[i] * 3; i = i + 1; }
  output i;
}
)");
  sim::TraceConfig tc;
  tc.params["n"] = {sim::InputSpec::Kind::Uniform, 0, 0, 0, 4, 12, 0};
  const ScheduleResult r = h.schedule(fn, tc);
  ASSERT_TRUE(r.loops[0].pipelined);
  const LoopInfo& loop = r.loops[0];
  // Prologue states = body_csteps linear states carrying iteration-0 ops;
  // count non-ring states containing the loop's multiply.
  size_t prologue_mults = 0, ring_mults = 0;
  for (const auto& st : r.stg.states()) {
    for (const auto& op : st.ops) {
      if (op.op != ir::Op::Mul) continue;
      (st.ring_id >= 0 ? ring_mults : prologue_mults)++;
    }
  }
  EXPECT_EQ(ring_mults, 1u);      // once per traversal
  EXPECT_GE(prologue_mults, 1u);  // iteration 0 (+ drain replicas)
  EXPECT_GE(loop.body_csteps, loop.ii);
}

TEST(Pipeline, LagsAreConsistentAnnotations) {
  Harness h;
  // Memory-port pressure forces II=2 and a cross-slot dependence chain.
  const auto fn = parse(R"(
F(int g) {
  input int x[16];
  int y[16];
  int i = 0;
  while (i < 15) {
    y[i] = x[i] + x[i + 1];
    i = i + 1;
  }
  output i;
}
)");
  const ScheduleResult r = h.schedule(fn);
  ASSERT_TRUE(r.loops[0].pipelined);
  EXPECT_GE(r.loops[0].ii, 2);
  bool lagged_op = false;
  for (const auto& st : r.stg.states())
    for (const auto& op : st.ops)
      if (st.ring_id >= 0 && op.lag > 0) lagged_op = true;
  // Either iterations genuinely overlap (some op lags behind the front),
  // or the representability checks pushed II to the full body length and
  // no overlap remains.
  EXPECT_TRUE(lagged_op || r.loops[0].ii >= r.loops[0].body_csteps);
}

TEST(Pipeline, IterationTagsMarkOverlap) {
  Harness h;
  const auto fn = parse(R"(
F(int n) {
  input int x[16];
  int y[16];
  int i = 0;
  while (i < n) { y[i] = x[i] * 3 + 1; i = i + 1; }
  output i;
}
)");
  sim::TraceConfig tc;
  tc.params["n"] = {sim::InputSpec::Kind::Uniform, 0, 0, 0, 4, 12, 0};
  const ScheduleResult r = h.schedule(fn, tc);
  ASSERT_TRUE(r.loops[0].pipelined);
  if (r.loops[0].body_csteps > r.loops[0].ii) {
    // Overlapped schedule: some ring op carries a non-zero iteration tag
    // (the Figure 1(c) "_1" annotations).
    bool tagged = false;
    for (const auto& st : r.stg.states())
      if (st.ring_id >= 0)
        for (const auto& op : st.ops)
          if (op.iteration > 0) tagged = true;
    EXPECT_TRUE(tagged);
  }
}

TEST(Pipeline, DrainCompletesTailOps) {
  Harness h;
  // Store scheduled past the check: the exit path must include drain
  // states that carry the store.
  const auto fn = parse(R"(
F(int n) {
  input int x[16];
  int y[16];
  int i = 0;
  while (i < 15) {
    y[i] = x[i] + x[i + 1];
    i = i + 1;
  }
  output i;
}
)");
  const ScheduleResult r = h.schedule(fn);
  ASSERT_TRUE(r.loops[0].pipelined);
  bool drain_store = false;
  for (const auto& st : r.stg.states())
    if (st.ring_id < 0)
      for (const auto& op : st.ops)
        if (op.is_store) drain_store = true;
  EXPECT_TRUE(drain_store);  // prologue or drain replica exists
}

TEST(Pipeline, FusedPhasesGetDistinctRingIds) {
  Harness h;
  h.alloc.counts["i1"] = 2;
  const auto fn = parse(R"(
F(int n) {
  int a = 0;
  int b = 0;
  int i = 0;
  int j = 0;
  while (i < 20) { a = a + 2; i = i + 1; }
  while (j < 30) { b = b + 3; j = j + 1; }
}
)");
  const ScheduleResult r = h.schedule(fn);
  EXPECT_FALSE(r.rtl_exact);  // fused schedules are metrics-grade
  std::set<int> rings;
  for (const auto& st : r.stg.states())
    if (st.ring_id >= 0) rings.insert(st.ring_id);
  // One ring per generated phase subset (at least {both}, {a}, {b}).
  EXPECT_GE(rings.size(), 3u);
}

}  // namespace
}  // namespace fact::sched
