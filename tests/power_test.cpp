#include <gtest/gtest.h>

#include "power/power.hpp"

namespace fact::power {
namespace {

/// A two-state machine: S0 (one adder op, 2 reg reads, 1 reg write),
/// S1 (one multiplier op), deterministic cycle. Both states have pi = 0.5
/// and the schedule length is 2, so per execution: 1 add, 1 mul, 3 reg
/// accesses.
stg::Stg two_state() {
  stg::Stg stg;
  const int s0 = stg.add_state("S0");
  const int s1 = stg.add_state("S1");
  {
    fact::stg::OpInstance op_inst;
    op_inst.fu_type = "a1";
    op_inst.op = ir::Op::Add;
    op_inst.stmt_id = 0;
    op_inst.iteration = 0;
    op_inst.label = "+";
    stg.state(s0).ops.push_back(std::move(op_inst));
  }
  stg.state(s0).reg_reads = 2;
  stg.state(s0).reg_writes = 1;
  {
    fact::stg::OpInstance op_inst;
    op_inst.fu_type = "mt1";
    op_inst.op = ir::Op::Mul;
    op_inst.stmt_id = 1;
    op_inst.iteration = 0;
    op_inst.label = "*";
    stg.state(s1).ops.push_back(std::move(op_inst));
  }
  stg.add_edge(s0, s1, 1.0);
  stg.add_edge(s1, s0, 1.0, "", true);
  stg.set_entry(s0);
  stg.validate();
  return stg;
}

TEST(PowerModel, CountsOpsAndRegistersPerExecution) {
  const auto lib = hlslib::Library::dac98();
  PowerOptions opts;
  opts.overhead_fraction = 0.0;
  const PowerEstimate est = estimate_power(two_state(), lib, opts);
  EXPECT_NEAR(est.avg_schedule_length, 2.0, 1e-9);
  EXPECT_NEAR(est.ops_per_exec.at("a1"), 1.0, 1e-9);
  EXPECT_NEAR(est.ops_per_exec.at("mt1"), 1.0, 1e-9);
  EXPECT_NEAR(est.reg_accesses_per_exec, 3.0, 1e-9);
}

TEST(PowerModel, EnergyFollowsTable1Coefficients) {
  const auto lib = hlslib::Library::dac98();
  PowerOptions opts;
  opts.overhead_fraction = 0.0;
  const PowerEstimate est = estimate_power(two_state(), lib, opts);
  // E/Vdd^2 = 1.3 (a1) + 2.3 (mt1) + 3 * 0.3 (reg accesses) = 4.5.
  EXPECT_NEAR(est.energy_coeff_total, 4.5, 1e-9);
  // P = 4.5 * 25 / (2 * 25ns).
  EXPECT_NEAR(est.power, 4.5 * 25.0 / 50.0, 1e-9);
  EXPECT_DOUBLE_EQ(est.vdd, 5.0);
}

TEST(PowerModel, OverheadFractionScalesTotal) {
  const auto lib = hlslib::Library::dac98();
  PowerOptions with, without;
  with.overhead_fraction = 0.51;
  without.overhead_fraction = 0.0;
  const double p1 = estimate_power(two_state(), lib, with).power;
  const double p0 = estimate_power(two_state(), lib, without).power;
  EXPECT_NEAR(p1 / p0, 1.51, 1e-9);
}

TEST(PowerModel, ScaledModeLowersVoltageAndPower) {
  const auto lib = hlslib::Library::dac98();
  PowerOptions opts;
  // This design takes 2 cycles; the baseline took 3: slack 1.5x.
  const PowerEstimate nominal = estimate_power(two_state(), lib, opts);
  const PowerEstimate scaled = estimate_power_scaled(two_state(), lib, 3.0, opts);
  EXPECT_LT(scaled.vdd, 5.0);
  EXPECT_GT(scaled.vdd, 1.0);
  EXPECT_LT(scaled.power, nominal.power);
  // Voltage solves the delay law for ratio 3/2 exactly.
  EXPECT_NEAR(hlslib::delay_scale(scaled.vdd, opts.vt), 1.5, 1e-6);
}

TEST(PowerModel, ScaledModeNoSlackEqualsNominal) {
  const auto lib = hlslib::Library::dac98();
  PowerOptions opts;
  const PowerEstimate nominal = estimate_power(two_state(), lib, opts);
  const PowerEstimate scaled = estimate_power_scaled(two_state(), lib, 2.0, opts);
  EXPECT_DOUBLE_EQ(scaled.vdd, 5.0);
  EXPECT_NEAR(scaled.power, nominal.power, 1e-9);
}

TEST(PowerModel, ScaledPowerMatchesClosedForm) {
  // P_scaled = E(v) / (baseline_len * cycle): Example 1's final formula
  // 665.58 * 4.29^2 / (151.30 * cycle_time) pattern.
  const auto lib = hlslib::Library::dac98();
  PowerOptions opts;
  opts.overhead_fraction = 0.0;
  const PowerEstimate scaled = estimate_power_scaled(two_state(), lib, 3.0, opts);
  const double expect =
      4.5 * scaled.vdd * scaled.vdd / (3.0 * opts.clock_ns);
  EXPECT_NEAR(scaled.power, expect, 1e-9);
}

TEST(PowerModel, UnknownFuTypesIgnoredGracefully) {
  // Ops with empty fu (controller glue / copies) contribute no FU energy.
  const auto lib = hlslib::Library::dac98();
  stg::Stg stg;
  const int s0 = stg.add_state("");
  {
    fact::stg::OpInstance op_inst;
    op_inst.fu_type = "";
    op_inst.op = ir::Op::Lt;
    op_inst.stmt_id = 0;
    op_inst.iteration = 0;
    op_inst.label = "<ctl";
    stg.state(s0).ops.push_back(std::move(op_inst));
  }
  stg.add_edge(s0, s0, 1.0, "", true);
  stg.validate();
  PowerOptions opts;
  opts.overhead_fraction = 0.0;
  const PowerEstimate est = estimate_power(stg, lib, opts);
  EXPECT_NEAR(est.energy_coeff_total, 0.0, 1e-12);
}

TEST(PowerModel, ReportMentionsKeyLines) {
  const auto lib = hlslib::Library::dac98();
  const PowerEstimate est = estimate_power(two_state(), lib, {});
  const std::string r = est.report();
  EXPECT_NE(r.find("avg schedule length"), std::string::npos);
  EXPECT_NE(r.find("a1"), std::string::npos);
  EXPECT_NE(r.find("average power"), std::string::npos);
}

}  // namespace
}  // namespace fact::power
