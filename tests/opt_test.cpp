#include <gtest/gtest.h>

#include <optional>
#include <thread>

#include "lang/parser.hpp"
#include "opt/baselines.hpp"
#include "opt/fact.hpp"
#include "opt/partition.hpp"
#include "util/parallel.hpp"
#include "workloads/workloads.hpp"

namespace fact::opt {
namespace {

ir::Function parse(const std::string& src) { return lang::parse_function(src); }

struct Harness {
  hlslib::Library lib = hlslib::Library::dac98();
  hlslib::FuSelection sel = hlslib::FuSelection::defaults(lib);
  hlslib::Allocation alloc;
  sched::SchedOptions sched_opts;
  power::PowerOptions power_opts;

  Harness() {
    alloc.counts = {{"a1", 2}, {"sb1", 2}, {"mt1", 1}, {"cp1", 1},
                    {"e1", 1}, {"i1", 1},  {"n1", 1},  {"s1", 1}};
  }
};

// ---- partitioning ------------------------------------------------------

TEST(Partition, HotLoopFormsOneBlock) {
  // S0 -> S1(loop, p=0.95) -> S0: the hot self-loop at S1 dominates.
  stg::Stg stg;
  const int s0 = stg.add_state("S0");
  const int s1 = stg.add_state("S1");
  {
    fact::stg::OpInstance op_inst;
    op_inst.fu_type = "a1";
    op_inst.op = ir::Op::Add;
    op_inst.stmt_id = 42;
    op_inst.iteration = 0;
    op_inst.label = "+";
    stg.state(s1).ops.push_back(std::move(op_inst));
  }
  stg.add_edge(s0, s1, 1.0);
  stg.add_edge(s1, s1, 0.95, "loop");
  stg.add_edge(s1, s0, 0.05, "", true);
  stg.set_entry(s0);
  stg.validate();

  const auto blocks = partition_stg(stg, 0.5);
  ASSERT_GE(blocks.size(), 1u);
  // The hottest block contains S1 and carries statement 42.
  EXPECT_TRUE(blocks[0].stmt_ids.count(42));
  EXPECT_GT(blocks[0].weight, 0.5);
}

TEST(Partition, ThresholdControlsBlockGrowth) {
  // A chain with one rare side path: at high threshold only hot edges
  // group; at threshold 0 everything merges into one block.
  stg::Stg stg;
  const int s0 = stg.add_state("");
  const int s1 = stg.add_state("");
  const int rare = stg.add_state("");
  stg.add_edge(s0, s1, 0.99);
  stg.add_edge(s0, rare, 0.01);
  stg.add_edge(rare, s1, 1.0);
  stg.add_edge(s1, s0, 1.0, "", true);
  stg.set_entry(s0);
  stg.validate();

  const auto tight = partition_stg(stg, 0.5);
  for (const auto& b : tight)
    for (int s : b.states) EXPECT_NE(s, rare);
  const auto loose = partition_stg(stg, 0.0);
  ASSERT_EQ(loose.size(), 1u);
  EXPECT_EQ(loose[0].states.size(), 3u);
}

TEST(Partition, BlocksAreDisjointAndSorted) {
  // Two independent hot loops joined by rare transitions.
  stg::Stg stg;
  const int a = stg.add_state("");
  const int b = stg.add_state("");
  stg.add_edge(a, a, 0.9, "loop");
  stg.add_edge(a, b, 0.1);
  stg.add_edge(b, b, 0.8, "loop");
  stg.add_edge(b, a, 0.2, "", true);
  stg.set_entry(a);
  stg.validate();
  // pi(a) = 2/3: self-loop frequencies are 0.6 and 0.267, the cross edges
  // 0.067; a 0.3 threshold keeps both self-loops but not the cross edges.
  const auto blocks = partition_stg(stg, 0.3);
  ASSERT_EQ(blocks.size(), 2u);
  EXPECT_GE(blocks[0].weight, blocks[1].weight);
  std::set<int> seen;
  for (const auto& blk : blocks)
    for (int s : blk.states) EXPECT_TRUE(seen.insert(s).second);
}

// ---- engine ------------------------------------------------------------

TEST(Engine, ImprovesThroughputOnGcd) {
  Harness h;
  const auto fn = parse(R"(
GCD(int a, int b) {
  while (a != b) {
    if (a > b) { a = a - b; } else { b = b - a; }
  }
  output a;
}
)");
  sim::TraceConfig tc;
  tc.params["a"] = {sim::InputSpec::Kind::Uniform, 0, 0, 0, 1, 60, 0};
  tc.params["b"] = {sim::InputSpec::Kind::Uniform, 0, 0, 0, 1, 60, 0};
  const sim::Trace trace = sim::generate_trace(fn, tc, 5);

  const auto xforms = xform::TransformLibrary::standard();
  TransformEngine engine(h.lib, h.alloc, h.sel, h.sched_opts, h.power_opts,
                         xforms, {});
  const Evaluation base = engine.evaluate(fn, trace, Objective::Throughput, 0);
  const EngineResult r =
      engine.optimize(fn, trace, Objective::Throughput, {}, base.avg_len);
  EXPECT_LT(r.best_eval.avg_len, base.avg_len * 0.6);
  EXPECT_FALSE(r.applied.empty());
  EXPECT_EQ(r.rejected_nonequivalent, 0);
  EXPECT_GT(r.evaluations, 1);
  // The winner is functionally equivalent to the input.
  EXPECT_TRUE(sim::equivalent_on_trace(fn, r.best, trace));
}

TEST(Engine, DeterministicForSeed) {
  Harness h;
  const auto fn = parse(
      "F(int a, int b, int c) { int x = a * b + a * c; int y = x + b + c + a; output y; }");
  const sim::Trace trace = sim::generate_trace(fn, {}, 5);
  const auto xforms = xform::TransformLibrary::standard();
  EngineOptions opts;
  opts.seed = 33;
  TransformEngine engine(h.lib, h.alloc, h.sel, h.sched_opts, h.power_opts,
                         xforms, opts);
  const EngineResult r1 =
      engine.optimize(fn, trace, Objective::Throughput, {}, 100.0);
  const EngineResult r2 =
      engine.optimize(fn, trace, Objective::Throughput, {}, 100.0);
  EXPECT_EQ(r1.best.str(), r2.best.str());
  EXPECT_EQ(r1.applied, r2.applied);
  EXPECT_EQ(r1.evaluations, r2.evaluations);
}

TEST(Engine, RegionRestrictsRewrites) {
  Harness h;
  // Two identical statements; restrict the region to the first one.
  const auto fn = parse(
      "F(int a, int b) { int x = (a + b) + (a + b) + a; int y = (a + b) + (a + b) + b; output x; output y; }");
  const sim::Trace trace = sim::generate_trace(fn, {}, 5);
  const auto xforms = xform::TransformLibrary::standard();
  TransformEngine engine(h.lib, h.alloc, h.sel, h.sched_opts, h.power_opts,
                         xforms, {});
  int x_id = -1;
  fn.for_each([&](const ir::Stmt& s) {
    if (s.kind == ir::StmtKind::Assign && s.target == "x") x_id = s.id;
  });
  const EngineResult r = engine.optimize(fn, trace, Objective::Throughput,
                                         {x_id}, 100.0);
  // y's statement is untouched in the winner.
  const ir::Stmt* y = nullptr;
  r.best.for_each([&](const ir::Stmt& s) {
    if (s.kind == ir::StmtKind::Assign && s.target == "y") y = &s;
  });
  ASSERT_NE(y, nullptr);
  EXPECT_EQ(y->value->str(), "(((a + b) + (a + b)) + b)");
}

TEST(Engine, PowerObjectiveRespectsIsoThroughput) {
  Harness h;
  const auto fn = parse(R"(
F(int n) {
  int i = 0;
  int s = 0;
  while (i < n) { s = s + i * 3; i = i + 1; }
  output s;
}
)");
  sim::TraceConfig tc;
  tc.params["n"] = {sim::InputSpec::Kind::Uniform, 0, 0, 0, 8, 24, 0};
  const sim::Trace trace = sim::generate_trace(fn, tc, 5);
  const auto xforms = xform::TransformLibrary::standard();
  TransformEngine engine(h.lib, h.alloc, h.sel, h.sched_opts, h.power_opts,
                         xforms, {});
  const Evaluation base = engine.evaluate(fn, trace, Objective::Throughput, 0);
  const EngineResult r =
      engine.optimize(fn, trace, Objective::Power, {}, base.avg_len);
  // Whatever wins must not be slower than the baseline.
  EXPECT_LE(r.best_eval.avg_len, base.avg_len * 1.01);
  EXPECT_LE(r.best_eval.vdd, 5.0);
}

// ---- parallel evaluation + memoization ---------------------------------

TEST(Engine, JobsInvariantIncludingScoreTrace) {
  Harness h;
  const auto fn = parse(
      "F(int a, int b, int c) { int x = a * b + a * c; int y = x + b + c + a; output y; }");
  const sim::Trace trace = sim::generate_trace(fn, {}, 5);
  const auto xforms = xform::TransformLibrary::standard();
  EngineOptions opts;
  opts.seed = 33;
  auto run = [&](int jobs) {
    EngineOptions o = opts;
    o.jobs = jobs;
    TransformEngine engine(h.lib, h.alloc, h.sel, h.sched_opts, h.power_opts,
                           xforms, o);
    return engine.optimize(fn, trace, Objective::Throughput, {}, 100.0);
  };
  const EngineResult r1 = run(1);
  const EngineResult r4 = run(4);
  EXPECT_EQ(r1.best.str(), r4.best.str());
  EXPECT_EQ(r1.applied, r4.applied);
  EXPECT_EQ(r1.score_trace, r4.score_trace);
  EXPECT_EQ(r1.evaluations, r4.evaluations);
  EXPECT_EQ(r1.cache_hits, r4.cache_hits);
  EXPECT_EQ(r1.cache_misses, r4.cache_misses);
  EXPECT_EQ(r1.quarantined, r4.quarantined);
  EXPECT_EQ(r1.quarantine_by_class, r4.quarantine_by_class);
  EXPECT_EQ(r1.rejected_nonequivalent, r4.rejected_nonequivalent);
  EXPECT_EQ(r1.evaluations, r1.cache_hits + r1.cache_misses);
}

// The full determinism contract over every bundled Table 2 workload:
// jobs=4 must reproduce jobs=1 byte-for-byte through the whole flow.
class JobsDeterminism : public ::testing::TestWithParam<const char*> {};

TEST_P(JobsDeterminism, RunFactIdenticalAcrossJobs) {
  const workloads::Workload w = workloads::by_name(GetParam());
  const auto lib = hlslib::Library::dac98();
  const auto sel = hlslib::FuSelection::defaults(lib);
  const auto xforms = xform::TransformLibrary::standard();
  auto run = [&](int jobs) {
    FactOptions opts;
    opts.engine.jobs = jobs;
    return run_fact(w.fn, lib, w.allocation, sel, w.trace, xforms, opts);
  };
  const FactResult r1 = run(1);
  const FactResult r4 = run(4);
  EXPECT_EQ(r1.optimized.str(), r4.optimized.str());
  EXPECT_EQ(r1.applied, r4.applied);
  EXPECT_EQ(r1.log, r4.log);
  EXPECT_EQ(r1.evaluations, r4.evaluations);
  EXPECT_EQ(r1.cache_hits, r4.cache_hits);
  EXPECT_EQ(r1.cache_misses, r4.cache_misses);
  EXPECT_EQ(r1.quarantined, r4.quarantined);
  EXPECT_EQ(r1.quarantine_by_class, r4.quarantine_by_class);
  EXPECT_EQ(r1.blocks_degraded, r4.blocks_degraded);
  EXPECT_EQ(r1.truncated, r4.truncated);
  EXPECT_DOUBLE_EQ(r1.final_avg_len, r4.final_avg_len);
  EXPECT_DOUBLE_EQ(r1.final_power.power, r4.final_power.power);
}

INSTANTIATE_TEST_SUITE_P(Table2, JobsDeterminism,
                         ::testing::Values("GCD", "FIR", "TEST2", "SINTRAN",
                                           "IGF", "PPS"));

TEST(EvalCache, FirstInsertWinsAndKeysDiscriminate) {
  EvalCache cache;
  EvalCache::Entry ok;
  ok.ok = true;
  ok.eval.score = 1.5;
  cache.insert(42, Objective::Throughput, 10.0, ok);
  EXPECT_EQ(cache.size(), 1u);

  // Re-inserting the same key is a no-op: the first entry sticks.
  EvalCache::Entry other = ok;
  other.eval.score = 9.9;
  cache.insert(42, Objective::Throughput, 10.0, other);
  EXPECT_EQ(cache.size(), 1u);
  auto hit = cache.lookup(42, Objective::Throughput, 10.0);
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(hit->ok);
  EXPECT_DOUBLE_EQ(hit->eval.score, 1.5);

  // Same hash under a different objective or baseline is a different key.
  EXPECT_FALSE(cache.lookup(42, Objective::Power, 10.0).has_value());
  EXPECT_FALSE(cache.lookup(42, Objective::Throughput, 11.0).has_value());
  EXPECT_FALSE(cache.lookup(43, Objective::Throughput, 10.0).has_value());

  // Failures are memoized too.
  EvalCache::Entry bad;
  bad.ok = false;
  bad.failure_class = "sched";
  cache.insert(7, Objective::Power, 10.0, bad);
  auto miss = cache.lookup(7, Objective::Power, 10.0);
  ASSERT_TRUE(miss.has_value());
  EXPECT_FALSE(miss->ok);
  EXPECT_EQ(miss->failure_class, "sched");
}

TEST(EvalCache, ShardedLargeCacheServesEveryKeyAndHonorsCap) {
  // Above the lock-striping threshold the cache runs 16 shards. Every
  // inserted key must still be served, and total size must never exceed
  // the configured capacity even though eviction is per shard.
  const size_t cap = 1 << 12;
  EvalCache cache(cap);
  EXPECT_EQ(cache.capacity(), cap);
  for (uint64_t h = 0; h < 1000; ++h) {
    EvalCache::Entry e;
    e.ok = true;
    e.eval.score = double(h);
    cache.insert(h, Objective::Throughput, 10.0, e);
  }
  EXPECT_EQ(cache.size(), 1000u);
  for (uint64_t h = 0; h < 1000; ++h) {
    auto hit = cache.lookup(h, Objective::Throughput, 10.0);
    ASSERT_TRUE(hit.has_value()) << h;
    EXPECT_DOUBLE_EQ(hit->eval.score, double(h));
  }
  EXPECT_FALSE(cache.lookup(1000, Objective::Throughput, 10.0).has_value());

  // Overfill by 3x: per-shard LRU keeps the total within the cap (the
  // shard caps sum to exactly the capacity) without collapsing to a
  // near-empty cache.
  for (uint64_t h = 1000; h < 3 * cap; ++h) {
    EvalCache::Entry e;
    e.ok = true;
    cache.insert(h, Objective::Throughput, 10.0, e);
  }
  EXPECT_LE(cache.size(), cap);
  EXPECT_GE(cache.size(), cap / 2);
}

TEST(EvalCache, SharedCacheServesRepeatFlows) {
  const workloads::Workload w = workloads::by_name("GCD");
  const auto lib = hlslib::Library::dac98();
  const auto sel = hlslib::FuSelection::defaults(lib);
  const auto xforms = xform::TransformLibrary::standard();
  FactOptions opts;

  EvalCache cache;
  const FactResult cold =
      run_fact(w.fn, lib, w.allocation, sel, w.trace, xforms, opts, &cache);
  EXPECT_GT(cache.size(), 0u);
  const FactResult warm =
      run_fact(w.fn, lib, w.allocation, sel, w.trace, xforms, opts, &cache);

  // The repeat flow is served entirely from the memo cache and still
  // reproduces the cold result exactly.
  EXPECT_EQ(warm.cache_hits, warm.evaluations);
  EXPECT_EQ(warm.cache_misses, 0);
  EXPECT_EQ(warm.optimized.str(), cold.optimized.str());
  EXPECT_EQ(warm.applied, cold.applied);
  EXPECT_EQ(warm.quarantined, cold.quarantined);
}

TEST(EvalCache, LruEvictionHonorsCapAndRecency) {
  EvalCache cache(3);
  EXPECT_EQ(cache.capacity(), 3u);
  auto entry = [](double score) {
    EvalCache::Entry e;
    e.ok = true;
    e.eval.score = score;
    return e;
  };
  auto hit = [&](uint64_t h) {
    return cache.lookup(h, Objective::Throughput, 1.0).has_value();
  };
  cache.insert(1, Objective::Throughput, 1.0, entry(1.0));
  cache.insert(2, Objective::Throughput, 1.0, entry(2.0));
  cache.insert(3, Objective::Throughput, 1.0, entry(3.0));
  EXPECT_EQ(cache.size(), 3u);

  // touch() saves key 1 from eviction; key 2 is now least recent, so the
  // fourth insert evicts it. lookup() itself never advances recency (the
  // frozen-wave contract), so the probes below don't perturb the order.
  cache.touch(1, Objective::Throughput, 1.0);
  cache.insert(4, Objective::Throughput, 1.0, entry(4.0));
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_FALSE(hit(2));
  EXPECT_TRUE(hit(1) && hit(3) && hit(4));

  // Re-inserting an existing key keeps the original entry but refreshes
  // recency: 3 jumps ahead of 1, so the next insert evicts 1.
  cache.insert(3, Objective::Throughput, 1.0, entry(99.0));
  cache.insert(5, Objective::Throughput, 1.0, entry(5.0));
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_FALSE(hit(1));
  ASSERT_TRUE(hit(3));
  EXPECT_DOUBLE_EQ(cache.lookup(3, Objective::Throughput, 1.0)->eval.score,
                   3.0);
  EXPECT_TRUE(hit(4) && hit(5));

  // touch() of an absent key is a no-op.
  cache.touch(777, Objective::Throughput, 1.0);
  EXPECT_EQ(cache.size(), 3u);
}

TEST(EvalCache, CapOneStillServesTheCurrentKey) {
  EvalCache cache(1);
  EvalCache::Entry e;
  e.ok = true;
  e.eval.score = 1.0;
  for (uint64_t h = 1; h <= 5; ++h)
    cache.insert(h, Objective::Power, 2.0, e);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_TRUE(cache.lookup(5, Objective::Power, 2.0).has_value());
  EXPECT_FALSE(cache.lookup(4, Objective::Power, 2.0).has_value());
}

TEST(EvalCache, EngineRespectsCacheCapOption) {
  const workloads::Workload w = workloads::by_name("GCD");
  const auto lib = hlslib::Library::dac98();
  const auto sel = hlslib::FuSelection::defaults(lib);
  const auto xforms = xform::TransformLibrary::standard();
  FactOptions unbounded;
  FactOptions tiny;
  tiny.engine.cache_cap = 8;
  const FactResult a =
      run_fact(w.fn, lib, w.allocation, sel, w.trace, xforms, unbounded);
  const FactResult b =
      run_fact(w.fn, lib, w.allocation, sel, w.trace, xforms, tiny);
  // A bounded cache can only change how much is recomputed, never the
  // search outcome.
  EXPECT_EQ(a.optimized.str(), b.optimized.str());
  EXPECT_EQ(a.applied, b.applied);
  EXPECT_EQ(a.evaluations, b.evaluations);
  EXPECT_LE(b.cache_hits, a.cache_hits);
}

TEST(EvalCache, MemoizeOffIsPureAblation) {
  const workloads::Workload w = workloads::by_name("GCD");
  const auto lib = hlslib::Library::dac98();
  const auto sel = hlslib::FuSelection::defaults(lib);
  const auto xforms = xform::TransformLibrary::standard();
  FactOptions on;
  FactOptions off;
  off.engine.memoize = false;
  const FactResult a =
      run_fact(w.fn, lib, w.allocation, sel, w.trace, xforms, on);
  const FactResult b =
      run_fact(w.fn, lib, w.allocation, sel, w.trace, xforms, off);
  EXPECT_EQ(b.cache_hits, 0);
  EXPECT_EQ(b.cache_misses, b.evaluations);
  EXPECT_EQ(a.optimized.str(), b.optimized.str());
  EXPECT_EQ(a.applied, b.applied);
  EXPECT_EQ(a.evaluations, b.evaluations);
}

TEST(Engine, EnginesSharingOneWorkerPoolMatchPrivatePools) {
  // The factd service points every engine at one process-wide pool via
  // EngineOptions::pool. Two concurrent optimizations sharing that pool
  // must produce exactly what each would with its own private pool.
  const auto lib = hlslib::Library::dac98();
  const auto sel = hlslib::FuSelection::defaults(lib);
  const auto xforms = xform::TransformLibrary::standard();
  const workloads::Workload wa = workloads::by_name("GCD");
  const workloads::Workload wb = workloads::by_name("TEST2");

  FactOptions priv;
  priv.engine.jobs = 2;
  const FactResult ra =
      run_fact(wa.fn, lib, wa.allocation, sel, wa.trace, xforms, priv);
  const FactResult rb =
      run_fact(wb.fn, lib, wb.allocation, sel, wb.trace, xforms, priv);

  WorkerPool pool(2);
  FactOptions shared;
  shared.engine.pool = &pool;
  std::optional<FactResult> sa, sb;
  std::thread ta([&] {
    sa = run_fact(wa.fn, lib, wa.allocation, sel, wa.trace, xforms, shared);
  });
  std::thread tb([&] {
    sb = run_fact(wb.fn, lib, wb.allocation, sel, wb.trace, xforms, shared);
  });
  ta.join();
  tb.join();

  ASSERT_TRUE(sa.has_value());
  ASSERT_TRUE(sb.has_value());
  EXPECT_EQ(sa->optimized.str(), ra.optimized.str());
  EXPECT_EQ(sa->applied, ra.applied);
  EXPECT_EQ(sa->evaluations, ra.evaluations);
  EXPECT_DOUBLE_EQ(sa->final_avg_len, ra.final_avg_len);
  EXPECT_EQ(sb->optimized.str(), rb.optimized.str());
  EXPECT_EQ(sb->applied, rb.applied);
  EXPECT_EQ(sb->evaluations, rb.evaluations);
  EXPECT_DOUBLE_EQ(sb->final_avg_len, rb.final_avg_len);

  // The borrowed pool is untouched by engine teardown and stays usable.
  std::atomic<int> n{0};
  pool.parallel_for(16, [&](size_t) { n.fetch_add(1); });
  EXPECT_EQ(n.load(), 16);
}

// ---- baselines ---------------------------------------------------------

TEST(Baselines, M1AppliesNoTransforms) {
  Harness h;
  const auto fn = parse("F(int a, int b) { int x = a * b + a; output x; }");
  const BaselineResult r =
      run_m1(fn, h.lib, h.alloc, h.sel, {}, h.sched_opts, h.power_opts, 7);
  EXPECT_TRUE(r.applied.empty());
  EXPECT_EQ(r.fn.str(), fn.str());
  EXPECT_GT(r.avg_len, 0.0);
}

TEST(Baselines, FlamelPreservesSemanticsAndCompacts) {
  Harness h;
  const auto fn = parse(R"(
F(int a, int b) {
  int x = 0;
  if (a > b) { x = a * 2 + 3; } else { x = b * 2 + 3; }
  int y = 2 + 3;
  output x; output y;
}
)");
  const BaselineResult r = run_flamel(fn, h.lib, h.alloc, h.sel, {},
                                      h.sched_opts, h.power_opts, 7);
  // Speculation removed the if, constant folding removed 2+3.
  bool has_if = false;
  r.fn.for_each([&](const ir::Stmt& s) {
    if (s.kind == ir::StmtKind::If) has_if = true;
  });
  EXPECT_FALSE(has_if);
  EXPECT_FALSE(r.applied.empty());
  const sim::Trace trace = sim::generate_trace(fn, {}, 11);
  EXPECT_TRUE(sim::equivalent_on_trace(fn, r.fn, trace));
}

TEST(Baselines, FlamelIsScheduleBlindOnExample2) {
  Harness h;
  // The Example 2 regrouping has identical static cost, so Flamel must
  // not apply it: the expression keeps its authored adder-heavy form.
  const auto fn = parse(
      "F(int y1, int y2, int y3, int y4) { int x = (y1 + y2) - (y3 + y4); output x; }");
  const BaselineResult r = run_flamel(fn, h.lib, h.alloc, h.sel, {},
                                      h.sched_opts, h.power_opts, 7);
  const ir::Stmt* x = nullptr;
  r.fn.for_each([&](const ir::Stmt& s) {
    if (s.kind == ir::StmtKind::Assign && s.target == "x") x = &s;
  });
  ASSERT_NE(x, nullptr);
  EXPECT_EQ(x->value->str(), "((y1 + y2) - (y3 + y4))");
}

// ---- end-to-end driver --------------------------------------------------

TEST(RunFact, ImprovesAndLogsGcd) {
  Harness h;
  const auto fn = parse(R"(
GCD(int a, int b) {
  while (a != b) {
    if (a > b) { a = a - b; } else { b = b - a; }
  }
  output a;
}
)");
  sim::TraceConfig tc;
  tc.params["a"] = {sim::InputSpec::Kind::Uniform, 0, 0, 0, 1, 60, 0};
  tc.params["b"] = {sim::InputSpec::Kind::Uniform, 0, 0, 0, 1, 60, 0};
  FactOptions opts;
  const auto xforms = xform::TransformLibrary::standard();
  const FactResult r =
      run_fact(fn, h.lib, h.alloc, h.sel, tc, xforms, opts);
  EXPECT_LT(r.final_avg_len, r.initial_avg_len);
  EXPECT_FALSE(r.applied.empty());
  EXPECT_FALSE(r.log.empty());
  EXPECT_GT(r.evaluations, 0);
  r.schedule.stg.validate();
}

TEST(RunFact, PowerModeScalesVdd) {
  Harness h;
  const auto fn = parse(R"(
F(int n) {
  int i = 0;
  int s = 0;
  while (i < n) { s = s + i * 3 + i * 5; i = i + 1; }
  output s;
}
)");
  sim::TraceConfig tc;
  tc.params["n"] = {sim::InputSpec::Kind::Uniform, 0, 0, 0, 8, 24, 0};
  FactOptions opts;
  opts.objective = Objective::Power;
  const auto xforms = xform::TransformLibrary::standard();
  const FactResult r =
      run_fact(fn, h.lib, h.alloc, h.sel, tc, xforms, opts);
  EXPECT_LE(r.final_power.vdd, 5.0);
  EXPECT_LE(r.final_power.power, r.initial_power.power * 1.0001);
}

}  // namespace
}  // namespace fact::opt
