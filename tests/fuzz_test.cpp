// Property-based fuzzing over randomly generated behaviors: every
// transformation must preserve semantics, every schedule must produce a
// valid STG, and the RTL backend must be cycle-for-value equivalent to
// the behavioral interpreter (fusion disabled, per its documented scope).

#include <gtest/gtest.h>

#include "opt/engine.hpp"
#include "program_gen.hpp"
#include "rtl/sim.hpp"
#include "sched/scheduler.hpp"
#include "sim/trace.hpp"
#include "verify/fault_injector.hpp"
#include "verify/verify.hpp"
#include "xform/transform.hpp"

namespace fact {
namespace {

sim::Trace fuzz_trace(const ir::Function& fn, uint64_t seed) {
  sim::TraceConfig tc;
  tc.executions = 6;
  sim::InputSpec spec;
  spec.kind = sim::InputSpec::Kind::Uniform;
  spec.lo = -20;
  spec.hi = 20;
  for (const auto& p : fn.params()) tc.params[p] = spec;
  for (const auto& a : fn.arrays()) tc.arrays[a.name] = spec;
  return sim::generate_trace(fn, tc, seed);
}

hlslib::Allocation generous_allocation(const hlslib::Library& lib) {
  hlslib::Allocation alloc;
  for (const auto& t : lib.types()) alloc.counts[t.name] = 2;
  return alloc;
}

class FuzzSeeds : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzSeeds, AllTransformsPreserveSemantics) {
  const ir::Function fn = testgen::random_program(GetParam());
  const sim::Trace trace = fuzz_trace(fn, GetParam() * 31 + 1);
  const auto lib = xform::TransformLibrary::standard();
  size_t checked = 0;
  for (const auto& t : lib.transforms()) {
    auto cands = t->find(fn, {});
    // Cap per transform to keep the suite fast; candidates are ordered
    // deterministically so coverage is stable.
    if (cands.size() > 12) cands.resize(12);
    for (const auto& c : cands) {
      const ir::Function g = t->apply(fn, c);
      ASSERT_TRUE(sim::equivalent_on_trace(fn, g, trace))
          << "seed " << GetParam() << ": " << c.describe() << "\nbefore:\n"
          << fn.str() << "after:\n"
          << g.str();
      checked++;
    }
  }
  EXPECT_GT(checked, 0u);
}

TEST_P(FuzzSeeds, SecondOrderTransformCompositions) {
  const ir::Function fn = testgen::random_program(GetParam());
  const sim::Trace trace = fuzz_trace(fn, GetParam() * 37 + 5);
  const auto lib = xform::TransformLibrary::standard();
  Rng rng(GetParam());
  ir::Function cur = fn.clone();
  for (int step = 0; step < 6; ++step) {
    const auto cands = lib.find_all(cur, {});
    if (cands.empty()) break;
    const auto& c =
        cands[static_cast<size_t>(rng.uniform_int(0, static_cast<int64_t>(cands.size()) - 1))];
    ir::Function next = lib.apply(cur, c);
    ASSERT_TRUE(sim::equivalent_on_trace(fn, next, trace))
        << "seed " << GetParam() << " step " << step << ": " << c.describe()
        << "\n"
        << next.str();
    cur = std::move(next);
  }
}

TEST_P(FuzzSeeds, SchedulerProducesValidStg) {
  const ir::Function fn = testgen::random_program(GetParam());
  const sim::Trace trace = fuzz_trace(fn, GetParam() * 41 + 3);
  const sim::Profile profile = sim::profile_function(fn, trace);
  const auto lib = hlslib::Library::dac98();
  const auto alloc = generous_allocation(lib);
  sched::Scheduler scheduler(lib, alloc, hlslib::FuSelection::defaults(lib), {});
  const sched::ScheduleResult sr = scheduler.schedule(fn, profile);
  sr.stg.validate();
  EXPECT_GT(stg::average_schedule_length(sr.stg), 0.0);
}

TEST_P(FuzzSeeds, RtlMatchesInterpreter) {
  const ir::Function fn = testgen::random_program(GetParam());
  const sim::Trace trace = fuzz_trace(fn, GetParam() * 43 + 7);
  const sim::Profile profile = sim::profile_function(fn, trace);
  const auto lib = hlslib::Library::dac98();
  const auto alloc = generous_allocation(lib);
  sched::SchedOptions so;
  so.fuse_loops = false;  // RTL-exact scheduling mode
  sched::Scheduler scheduler(lib, alloc, hlslib::FuSelection::defaults(lib), so);
  const sched::ScheduleResult sr = scheduler.schedule(fn, profile);
  ASSERT_TRUE(sr.rtl_exact);
  const rtl::RtlPlan plan = rtl::build_rtl_plan(fn, sr.stg);
  sim::Interpreter interp(fn);
  for (const auto& stim : trace) {
    const sim::Observation ref = interp.run(stim);
    const rtl::RtlSimResult got = rtl::simulate_rtl(fn, plan, stim);
    ASSERT_TRUE(got.completed) << "seed " << GetParam();
    ASSERT_EQ(got.obs, ref) << "seed " << GetParam() << "\n" << fn.str();
  }
}

TEST_P(FuzzSeeds, RtlMatchesInterpreterAfterTransforms) {
  const ir::Function fn = testgen::random_program(GetParam());
  const sim::Trace trace = fuzz_trace(fn, GetParam() * 47 + 11);
  const auto xlib = xform::TransformLibrary::standard();
  Rng rng(GetParam() + 99);
  ir::Function cur = fn.clone();
  for (int step = 0; step < 4; ++step) {
    const auto cands = xlib.find_all(cur, {});
    if (cands.empty()) break;
    cur = xlib.apply(
        cur,
        cands[static_cast<size_t>(rng.uniform_int(0, static_cast<int64_t>(cands.size()) - 1))]);
  }
  const sim::Profile profile = sim::profile_function(cur, trace);
  const auto lib = hlslib::Library::dac98();
  const auto alloc = generous_allocation(lib);
  sched::SchedOptions so;
  so.fuse_loops = false;
  sched::Scheduler scheduler(lib, alloc, hlslib::FuSelection::defaults(lib), so);
  const sched::ScheduleResult sr = scheduler.schedule(cur, profile);
  const rtl::RtlPlan plan = rtl::build_rtl_plan(cur, sr.stg);
  sim::Interpreter interp(fn);  // reference: the ORIGINAL behavior
  for (const auto& stim : trace) {
    const sim::Observation ref = interp.run(stim);
    const rtl::RtlSimResult got = rtl::simulate_rtl(cur, plan, stim);
    ASSERT_TRUE(got.completed);
    ASSERT_EQ(got.obs, ref) << "seed " << GetParam() << "\n" << cur.str();
  }
}

// Calibration of the deep verifier: every generated program, every
// transform composition of it, and every schedule the scheduler emits for
// it (fused and unfused) must pass the full checks — the verifier may
// only ever reject genuine corruption.
TEST_P(FuzzSeeds, VerifierAcceptsLegitimateDesigns) {
  const ir::Function fn = testgen::random_program(GetParam());
  const verify::Report rf = verify::verify_function(fn, verify::Level::Full);
  ASSERT_TRUE(rf.ok()) << rf.str() << "\n" << fn.str();

  // Transform compositions must stay verify-clean, including the
  // differential def-before-use check against the baseline.
  const std::set<std::string> allowed = verify::undefined_reads(fn);
  const auto xlib = xform::TransformLibrary::standard();
  Rng rng(GetParam() * 13 + 2);
  ir::Function cur = fn.clone();
  for (int step = 0; step < 5; ++step) {
    const auto cands = xlib.find_all(cur, {});
    if (cands.empty()) break;
    cur = xlib.apply(
        cur,
        cands[static_cast<size_t>(rng.uniform_int(0, static_cast<int64_t>(cands.size()) - 1))]);
    const verify::Report rt =
        verify::verify_function(cur, verify::Level::Full, &allowed);
    ASSERT_TRUE(rt.ok()) << "seed " << GetParam() << " step " << step << "\n"
                         << rt.str() << "\n"
                         << cur.str();
  }

  // Schedules of the transformed behavior, with and without fusion.
  const sim::Trace trace = fuzz_trace(fn, GetParam() * 59 + 13);
  const sim::Profile profile = sim::profile_function(cur, trace);
  const auto lib = hlslib::Library::dac98();
  const auto alloc = generous_allocation(lib);
  for (const bool fuse : {true, false}) {
    sched::SchedOptions so;
    so.fuse_loops = fuse;
    sched::Scheduler scheduler(lib, alloc, hlslib::FuSelection::defaults(lib), so);
    const sched::ScheduleResult sr = scheduler.schedule(cur, profile);
    const verify::Report rs = verify::verify_stg(sr.stg, verify::Level::Full);
    ASSERT_TRUE(rs.ok()) << "seed " << GetParam() << " fuse " << fuse << "\n"
                         << rs.str();
    const verify::Report rl =
        verify::verify_schedule(cur, sr.stg, lib, alloc, verify::Level::Full);
    ASSERT_TRUE(rl.ok()) << "seed " << GetParam() << " fuse " << fuse << "\n"
                         << rl.str() << "\n"
                         << cur.str();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeeds,
                         ::testing::Range<uint64_t>(1, 25));

// The guarded engine run end-to-end on generated programs with fault
// injection enabled: it must absorb arbitrary corruption without crashing
// and still return an equivalent, verify-clean winner with exact
// per-class quarantine accounting.
class FuzzInjection : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzInjection, EngineSurvivesFaultInjection) {
  const uint64_t seed = GetParam();
  const ir::Function fn = testgen::random_program(seed);
  const sim::Trace trace = fuzz_trace(fn, seed * 61 + 17);
  const auto lib = hlslib::Library::dac98();
  const auto alloc = generous_allocation(lib);

  const auto inner = xform::TransformLibrary::standard();
  verify::FaultInjectorOptions fo;
  fo.rate = 0.4;
  fo.seed = seed * 5 + 1;
  verify::FaultInjector injector(inner, fo);

  opt::EngineOptions opts;
  opts.seed = seed;
  opts.max_outer_iters = 2;
  opts.max_moves = 1;
  opts.max_neighbors_eval = 10;
  opts.in_set_size = 2;
  opts.validate = verify::Level::Full;
  opt::TransformEngine engine(lib, alloc, hlslib::FuSelection::defaults(lib),
                              {}, {}, injector, opts);
  const opt::EngineResult r =
      engine.optimize(fn, trace, opt::Objective::Throughput, {}, 100.0);

  // The winner is trustworthy regardless of the injected corruption.
  EXPECT_TRUE(sim::equivalent_on_trace(fn, r.best, trace)) << fn.str();
  const std::set<std::string> allowed = verify::undefined_reads(fn);
  const verify::Report rep =
      verify::verify_function(r.best, verify::Level::Full, &allowed);
  EXPECT_TRUE(rep.ok()) << rep.str();

  // Exact per-class accounting (generated programs never fail these
  // layers naturally: transforms are semantics-preserving and verify-clean
  // per the tests above).
  auto by_class = [&](const std::string& cls) {
    auto it = r.quarantine_by_class.find(cls);
    return it == r.quarantine_by_class.end() ? 0 : it->second;
  };
  EXPECT_EQ(by_class("ir.stmt-id-unique"),
            injector.injected(verify::FaultClass::DuplicateStmtId));
  EXPECT_EQ(by_class("ir.empty-loop"),
            injector.injected(verify::FaultClass::EmptyLoopBody));
  EXPECT_EQ(by_class("ir.arrays"),
            injector.injected(verify::FaultClass::UndeclaredArray));
  EXPECT_EQ(by_class("ir.def-before-use"),
            injector.injected(verify::FaultClass::UndefinedRead));
  EXPECT_EQ(by_class("nonequivalent"),
            injector.injected(verify::FaultClass::WrongSemantics));
  int exceptions = 0;
  for (const auto& [cls, count] : r.quarantine_by_class)
    if (cls.rfind("exception:", 0) == 0) exceptions += count;
  EXPECT_EQ(exceptions, injector.injected(verify::FaultClass::ThrowException));
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzInjection,
                         ::testing::Range<uint64_t>(1, 9));

// Variant shapes: deeper nesting, no arrays (pure scalar dataflow), and
// wide shallow expressions all stress different scheduler/RTL paths.
class FuzzShapes : public ::testing::TestWithParam<int> {};

TEST_P(FuzzShapes, RtlMatchesInterpreterAcrossShapes) {
  testgen::GenOptions gen;
  switch (GetParam() % 3) {
    case 0:
      gen.max_depth = 4;
      gen.max_stmts = 4;
      break;
    case 1:
      gen.with_arrays = false;
      gen.max_expr_depth = 5;
      break;
    case 2:
      gen.max_stmts = 14;
      gen.max_depth = 1;
      gen.max_loop_trip = 10;
      break;
  }
  const uint64_t seed = 1000 + static_cast<uint64_t>(GetParam());
  const ir::Function fn = testgen::random_program(seed, gen);
  const sim::Trace trace = fuzz_trace(fn, seed * 53 + 3);
  const sim::Profile profile = sim::profile_function(fn, trace);
  const auto lib = hlslib::Library::dac98();
  const auto alloc = generous_allocation(lib);
  sched::SchedOptions so;
  so.fuse_loops = false;
  sched::Scheduler scheduler(lib, alloc, hlslib::FuSelection::defaults(lib), so);
  const sched::ScheduleResult sr = scheduler.schedule(fn, profile);
  sr.stg.validate();
  const rtl::RtlPlan plan = rtl::build_rtl_plan(fn, sr.stg);
  sim::Interpreter interp(fn);
  for (const auto& stim : trace) {
    const sim::Observation ref = interp.run(stim);
    const rtl::RtlSimResult got = rtl::simulate_rtl(fn, plan, stim);
    ASSERT_TRUE(got.completed) << "seed " << seed;
    ASSERT_EQ(got.obs, ref) << "seed " << seed << "\n" << fn.str();
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, FuzzShapes, ::testing::Range(0, 18));

}  // namespace
}  // namespace fact
