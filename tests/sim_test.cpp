#include <gtest/gtest.h>

#include "lang/parser.hpp"
#include "sim/interp.hpp"
#include "sim/trace.hpp"
#include "util/error.hpp"

namespace fact::sim {
namespace {

ir::Function parse(const std::string& src) { return lang::parse_function(src); }

TEST(Interpreter, EvaluatesGcd) {
  const ir::Function fn = parse(R"(
GCD(int a, int b) {
  while (a != b) {
    if (a > b) { a = a - b; } else { b = b - a; }
  }
  output a;
}
)");
  Interpreter interp(fn);
  Stimulus in;
  in.params = {{"a", 36}, {"b", 60}};
  const Observation out = interp.run(in);
  EXPECT_EQ(out.outputs.at("a"), 12);
}

TEST(Interpreter, ArraysWrapAndPersist) {
  const ir::Function fn = parse(R"(
F(int i) {
  int x[4];
  x[i] = 7;
  int y = x[i - 4];
  output y;
}
)");
  Interpreter interp(fn);
  Stimulus in;
  in.params = {{"i", 5}};
  // x[5] wraps to x[1]; x[1] read via x[1-4] = x[-3] -> also index 1.
  EXPECT_EQ(interp.run(in).outputs.at("y"), 7);
}

TEST(Interpreter, InputArraysInitialized) {
  const ir::Function fn = parse(R"(
F() {
  input int x[3];
  int s = x[0] + x[1] + x[2];
  output s;
}
)");
  Interpreter interp(fn);
  Stimulus in;
  in.arrays["x"] = {10, 20, 30};
  EXPECT_EQ(interp.run(in).outputs.at("s"), 60);
}

TEST(Interpreter, OperatorSemantics) {
  const ir::Function fn = parse(R"(
F(int a, int b) {
  int s = (a << 2) + (b >> 1);
  int c = (a < b) + (a <= b) * 10 + (a == b) * 100 + (a != b) * 1000;
  int l = (a && b) + (a || b) * 10 + (!a) * 100;
  int n = ~a;
  int sel = a > b ? 5 : 6;
  output s; output c; output l; output n; output sel;
}
)");
  Interpreter interp(fn);
  Stimulus in;
  in.params = {{"a", 4}, {"b", 9}};
  const Observation o = interp.run(in);
  EXPECT_EQ(o.outputs.at("s"), 16 + 4);
  EXPECT_EQ(o.outputs.at("c"), 1 + 10 + 0 + 1000);
  EXPECT_EQ(o.outputs.at("l"), 1 + 10 + 0);
  EXPECT_EQ(o.outputs.at("n"), ~int64_t{4});
  EXPECT_EQ(o.outputs.at("sel"), 6);
}

TEST(Interpreter, UninitializedScalarsReadZero) {
  const ir::Function fn = parse("F() { int y = zz + 1; output y; }");
  Interpreter interp(fn);
  EXPECT_EQ(interp.run({}).outputs.at("y"), 1);
}

TEST(Interpreter, StepLimitAborts) {
  const ir::Function fn = parse("F() { int i = 0; while (i < 10) { i = i; } }");
  Interpreter interp(fn);
  interp.set_max_steps(1000);
  EXPECT_THROW(interp.run({}), Error);
}

TEST(Interpreter, BranchStatsCounted) {
  const ir::Function fn = parse(R"(
F(int n) {
  int i = 0;
  while (i < n) {
    if (i < 2) { int a = 1; } else { int b = 2; }
    i++;
  }
}
)");
  int while_id = -1, if_id = -1;
  fn.for_each([&](const ir::Stmt& s) {
    if (s.kind == ir::StmtKind::While) while_id = s.id;
    if (s.kind == ir::StmtKind::If) if_id = s.id;
  });
  Interpreter interp(fn);
  Stimulus in;
  in.params = {{"n", 10}};
  RunStats stats;
  interp.run(in, &stats);
  // While: 10 closings out of 11 evaluations.
  EXPECT_EQ(stats.branches.at(while_id).taken, 10u);
  EXPECT_EQ(stats.branches.at(while_id).total, 11u);
  // If: taken twice out of 10.
  EXPECT_EQ(stats.branches.at(if_id).taken, 2u);
  EXPECT_EQ(stats.branches.at(if_id).total, 10u);
  EXPECT_NEAR(stats.branch_prob(if_id), 0.2, 1e-9);
  EXPECT_NEAR(stats.expected_iterations(while_id), 10.0, 0.2);
}

TEST(Trace, DeterministicGeneration) {
  const ir::Function fn = parse("F(int a) { input int x[4]; output a; }");
  TraceConfig tc;
  tc.executions = 5;
  const Trace t1 = generate_trace(fn, tc, 11);
  const Trace t2 = generate_trace(fn, tc, 11);
  ASSERT_EQ(t1.size(), 5u);
  for (size_t i = 0; i < t1.size(); ++i) {
    EXPECT_EQ(t1[i].params, t2[i].params);
    EXPECT_EQ(t1[i].arrays, t2[i].arrays);
  }
  // A different seed must change the trace somewhere (values are coarse,
  // so compare the whole sequence, not just the first stimulus).
  const Trace t3 = generate_trace(fn, tc, 12);
  bool differs = false;
  for (size_t i = 0; i < t1.size(); ++i)
    if (t1[i].params != t3[i].params || t1[i].arrays != t3[i].arrays)
      differs = true;
  EXPECT_TRUE(differs);
}

TEST(Trace, RespectsSpecBounds) {
  const ir::Function fn = parse("F(int a) { output a; }");
  TraceConfig tc;
  InputSpec spec;
  spec.kind = InputSpec::Kind::Uniform;
  spec.lo = 3;
  spec.hi = 9;
  tc.params["a"] = spec;
  tc.executions = 200;
  for (const auto& s : generate_trace(fn, tc, 1)) {
    EXPECT_GE(s.params.at("a"), 3);
    EXPECT_LE(s.params.at("a"), 9);
  }
}

TEST(Trace, ConstantSpec) {
  const ir::Function fn = parse("F(int a) { output a; }");
  TraceConfig tc;
  InputSpec spec;
  spec.kind = InputSpec::Kind::Constant;
  spec.constant = 77;
  tc.params["a"] = spec;
  tc.executions = 3;
  for (const auto& s : generate_trace(fn, tc, 1))
    EXPECT_EQ(s.params.at("a"), 77);
}

TEST(Profile, AggregatesOverTrace) {
  const ir::Function fn = parse(R"(
F(int n) {
  int i = 0;
  while (i < n) { i++; }
}
)");
  TraceConfig tc;
  InputSpec spec;
  spec.kind = InputSpec::Kind::Constant;
  spec.constant = 4;
  tc.params["n"] = spec;
  tc.executions = 10;
  const Trace trace = generate_trace(fn, tc, 1);
  const Profile p = profile_function(fn, trace);
  EXPECT_EQ(p.executions, 10u);
  int while_id = -1;
  fn.for_each([&](const ir::Stmt& s) {
    if (s.kind == ir::StmtKind::While) while_id = s.id;
  });
  EXPECT_NEAR(p.expected_iterations(while_id), 4.0, 1e-9);
}

TEST(Equivalence, DetectsEqualAndUnequal) {
  const ir::Function a = parse("F(int x) { int y = x * 2; output y; }");
  const ir::Function b = parse("F(int x) { int y = x + x; output y; }");
  const ir::Function c = parse("F(int x) { int y = x + 1; output y; }");
  TraceConfig tc;
  tc.executions = 8;
  const Trace trace = generate_trace(a, tc, 3);
  EXPECT_TRUE(equivalent_on_trace(a, b, trace));
  EXPECT_FALSE(equivalent_on_trace(a, c, trace));
}

TEST(Equivalence, ComparesArrayState) {
  const ir::Function a = parse("F(int x) { int m[4]; m[0] = x; }");
  const ir::Function b = parse("F(int x) { int m[4]; m[1] = x; }");
  TraceConfig tc;
  tc.executions = 4;
  const Trace trace = generate_trace(a, tc, 3);
  EXPECT_FALSE(equivalent_on_trace(a, b, trace));
}

}  // namespace
}  // namespace fact::sim
