#pragma once

#include <utility>
#include <vector>

#include "ir/stmt.hpp"

namespace fact {

/// Builds a vector of statements from move-only StmtPtr arguments
/// (std::vector cannot be brace-initialized from unique_ptrs).
template <typename... T>
std::vector<ir::StmtPtr> make_vector(T&&... stmts) {
  std::vector<ir::StmtPtr> v;
  v.reserve(sizeof...(stmts));
  (v.push_back(std::forward<T>(stmts)), ...);
  return v;
}

}  // namespace fact
