#include <gtest/gtest.h>

#include <utility>

#include "ir/edit.hpp"
#include "ir/expr.hpp"
#include "ir/function.hpp"
#include "ir/hash.hpp"
#include "test_util.hpp"
#include "util/error.hpp"

namespace fact::ir {
namespace {

ExprPtr v(const std::string& n) { return Expr::var(n); }
ExprPtr c(int64_t x) { return Expr::constant(x); }

TEST(Expr, FactoriesAndAccessors) {
  ExprPtr add = Expr::binary(Op::Add, v("a"), c(3));
  EXPECT_EQ(add->op(), Op::Add);
  EXPECT_EQ(add->num_args(), 2u);
  EXPECT_EQ(add->arg(0)->name(), "a");
  EXPECT_EQ(add->arg(1)->value(), 3);
  EXPECT_EQ(add->str(), "(a + 3)");
}

TEST(Expr, ArrayReadAndSelectPrint) {
  ExprPtr e = Expr::select(Expr::binary(Op::Lt, v("i"), c(4)),
                           Expr::array_read("x", v("i")), c(0));
  EXPECT_EQ(e->str(), "((i < 4) ? x[i] : 0)");
}

TEST(Expr, StructuralEquality) {
  ExprPtr a = Expr::binary(Op::Mul, v("x"), Expr::binary(Op::Add, v("y"), c(1)));
  ExprPtr b = Expr::binary(Op::Mul, v("x"), Expr::binary(Op::Add, v("y"), c(1)));
  ExprPtr d = Expr::binary(Op::Mul, v("x"), Expr::binary(Op::Add, v("y"), c(2)));
  EXPECT_TRUE(Expr::equal(a, b));
  EXPECT_FALSE(Expr::equal(a, d));
  EXPECT_EQ(a->hash(), b->hash());
}

TEST(Expr, TreeSizeCountsNodes) {
  ExprPtr e = Expr::binary(Op::Add, Expr::binary(Op::Mul, v("a"), v("b")), c(1));
  EXPECT_EQ(e->tree_size(), 5u);
}

TEST(Expr, SubexprAtAndReplaceAt) {
  ExprPtr e = Expr::binary(Op::Sub, Expr::binary(Op::Add, v("a"), v("b")), v("z"));
  EXPECT_EQ(subexpr_at(e, {0, 1})->name(), "b");
  EXPECT_EQ(subexpr_at(e, {})->op(), Op::Sub);
  EXPECT_EQ(subexpr_at(e, {5}), nullptr);
  ExprPtr r = replace_at(e, {0, 1}, c(9));
  EXPECT_EQ(r->str(), "((a + 9) - z)");
  // Original unchanged (immutability).
  EXPECT_EQ(e->str(), "((a + b) - z)");
  EXPECT_THROW(replace_at(e, {7}, c(0)), Error);
}

TEST(Expr, OpPredicates) {
  EXPECT_TRUE(is_commutative(Op::Add));
  EXPECT_TRUE(is_commutative(Op::Mul));
  EXPECT_FALSE(is_commutative(Op::Sub));
  EXPECT_TRUE(is_associative(Op::Add));
  EXPECT_FALSE(is_associative(Op::Sub));
  EXPECT_TRUE(is_comparison(Op::Le));
  EXPECT_FALSE(is_comparison(Op::Add));
  EXPECT_TRUE(is_boolean(Op::And));
  EXPECT_EQ(op_arity(Op::Select), 3);
  EXPECT_EQ(op_arity(Op::Var), 0);
  EXPECT_EQ(op_arity(Op::BitNot), 1);
}

TEST(Stmt, CloneIsDeepAndPreservesIds) {
  StmtPtr s = Stmt::if_stmt(
      Expr::binary(Op::Gt, v("a"), v("b")),
      make_vector(Stmt::assign("a", Expr::binary(Op::Sub, v("a"), v("b")))),
      make_vector(Stmt::assign("b", Expr::binary(Op::Sub, v("b"), v("a")))));
  s->id = 5;
  s->then_stmts[0]->id = 6;
  StmtPtr copy = s->clone();
  EXPECT_EQ(copy->id, 5);
  EXPECT_EQ(copy->then_stmts[0]->id, 6);
  // Mutating the clone leaves the original intact.
  copy->then_stmts[0]->target = "zzz";
  EXPECT_EQ(s->then_stmts[0]->target, "a");
}

TEST(Stmt, PrintingRoundTripShape) {
  StmtPtr s = Stmt::while_stmt(
      Expr::binary(Op::Ne, v("a"), v("b")),
      make_vector(Stmt::store("x", v("i"), v("a"))));
  const std::string text = s->str();
  EXPECT_NE(text.find("while ((a != b))"), std::string::npos);
  EXPECT_NE(text.find("x[i] = a;"), std::string::npos);
}

TEST(Function, RenumberAssignsPreorderIds) {
  Function f("t");
  f.set_body(Stmt::block(make_vector(
      Stmt::assign("a", c(0)),
      Stmt::while_stmt(Expr::binary(Op::Lt, v("a"), c(3)),
                       make_vector(Stmt::assign("a", Expr::binary(Op::Add, v("a"), c(1))))))));
  // Body block is id 0; children follow preorder.
  EXPECT_EQ(f.body()->id, 0);
  EXPECT_EQ(f.body()->stmts[0]->id, 1);
  EXPECT_EQ(f.body()->stmts[1]->id, 2);
  EXPECT_EQ(f.body()->stmts[1]->then_stmts[0]->id, 3);
  EXPECT_EQ(f.stmt_count(), 4u);
  EXPECT_EQ(f.max_stmt_id(), 3);
}

TEST(Function, FindStmtAndClone) {
  Function f("t");
  f.set_body(Stmt::block(make_vector(Stmt::assign("a", c(1)))));
  const Stmt* s = f.find_stmt(1);
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->target, "a");
  EXPECT_EQ(f.find_stmt(99), nullptr);
  Function g = f.clone();
  EXPECT_NE(g.find_stmt(1), nullptr);
  EXPECT_EQ(g.str(), f.str());
}

TEST(Function, AssignFreshIdsKeepsExisting) {
  Function f("t");
  f.set_body(Stmt::block(make_vector(Stmt::assign("a", c(1)))));
  Stmt* body = f.body();
  body->stmts.push_back(Stmt::assign("b", c(2)));  // id -1
  f.assign_fresh_ids();
  EXPECT_EQ(body->stmts[0]->id, 1);  // unchanged
  EXPECT_EQ(body->stmts[1]->id, 2);  // fresh, after max
  const auto ids = f.stmt_ids();
  EXPECT_EQ(ids.size(), 3u);
}

TEST(Function, ValidateRejectsBadPrograms) {
  {
    Function f("t");
    f.set_body(Stmt::block(make_vector(Stmt::store("nope", c(0), c(1)))));
    EXPECT_THROW(f.validate(), Error);
  }
  {
    Function f("t");
    f.add_array({"x", 4, false});
    f.set_body(Stmt::block(make_vector(Stmt::assign("x", c(1)))));
    EXPECT_THROW(f.validate(), Error);  // assignment to array name
  }
  {
    Function f("t");
    f.add_array({"x", 0, false});
    f.set_body(Stmt::block({}));
    EXPECT_THROW(f.validate(), Error);  // zero-size array
  }
  {
    Function f("t");
    f.set_body(Stmt::block(make_vector(
        Stmt::while_stmt(Expr::binary(Op::Lt, v("a"), c(1)), {}))));
    EXPECT_THROW(f.validate(), Error);  // empty loop body
  }
}

TEST(Edit, ReplaceStmtSplices) {
  Function f("t");
  f.set_body(Stmt::block(make_vector(Stmt::assign("a", c(1)),
                                     Stmt::assign("b", c(2)))));
  const int bid = f.body()->stmts[1]->id;
  std::vector<StmtPtr> repl;
  repl.push_back(Stmt::assign("c", c(3)));
  repl.push_back(Stmt::assign("d", c(4)));
  EXPECT_TRUE(replace_stmt(f, bid, std::move(repl)));
  EXPECT_EQ(f.body()->stmts.size(), 3u);
  EXPECT_EQ(f.body()->stmts[1]->target, "c");
  EXPECT_EQ(f.body()->stmts[2]->target, "d");
  EXPECT_FALSE(replace_stmt(f, 999, {}));
}

TEST(Edit, InsertBeforeNested) {
  Function f("t");
  f.set_body(Stmt::block(make_vector(Stmt::while_stmt(
      Expr::binary(Op::Lt, v("i"), c(3)),
      make_vector(Stmt::assign("i", Expr::binary(Op::Add, v("i"), c(1))))))));
  const int inner = f.body()->stmts[0]->then_stmts[0]->id;
  std::vector<StmtPtr> pre;
  pre.push_back(Stmt::assign("t", c(1)));
  EXPECT_TRUE(insert_before(f, inner, std::move(pre)));
  EXPECT_EQ(f.body()->stmts[0]->then_stmts.size(), 2u);
  EXPECT_EQ(f.body()->stmts[0]->then_stmts[0]->target, "t");
}

TEST(Edit, SubstituteReplacesVariables) {
  ExprPtr e = Expr::binary(Op::Add, v("a"), Expr::binary(Op::Mul, v("b"), v("a")));
  const std::map<std::string, ExprPtr> sub{{"a", c(7)}};
  EXPECT_EQ(substitute(e, sub)->str(), "(7 + (b * 7))");
  // No-op substitution returns the same nodes (structural sharing).
  const std::map<std::string, ExprPtr> none{{"zz", c(1)}};
  EXPECT_EQ(substitute(e, none).get(), e.get());
}

TEST(Edit, SymbolicAssignsComposesSequentially) {
  std::vector<StmtPtr> stmts;
  stmts.push_back(Stmt::assign("t", Expr::binary(Op::Add, v("a"), c(7))));
  stmts.push_back(Stmt::assign("a", Expr::binary(Op::Mul, c(13), v("t"))));
  const auto env = symbolic_assigns(stmts);
  EXPECT_EQ(env.at("a")->str(), "(13 * (a + 7))");
  EXPECT_EQ(env.at("t")->str(), "(a + 7)");
}

TEST(Edit, SymbolicAssignsRejectsControlFlow) {
  std::vector<StmtPtr> stmts;
  stmts.push_back(Stmt::while_stmt(v("a"), make_vector(Stmt::assign("a", c(0)))));
  EXPECT_THROW(symbolic_assigns(stmts), Error);
}

TEST(Edit, FreshNameAvoidsCollisions) {
  Function f("t");
  f.add_param("t_x0");
  f.set_body(Stmt::block(make_vector(Stmt::assign("t_x1", c(1)))));
  const std::string n = fresh_name(f, "x");
  EXPECT_NE(n, "t_x0");
  EXPECT_NE(n, "t_x1");
}

TEST(Edit, WrittenVarsRecursesAndDedups) {
  std::vector<StmtPtr> stmts;
  stmts.push_back(Stmt::assign("a", c(1)));
  stmts.push_back(Stmt::if_stmt(v("a"), make_vector(Stmt::assign("b", c(2)), Stmt::assign("a", c(3)))));
  const auto w = written_vars(stmts);
  EXPECT_EQ(w.size(), 2u);
}

TEST(Edit, ClearIdsRecurses) {
  std::vector<StmtPtr> stmts;
  stmts.push_back(Stmt::if_stmt(v("a"), make_vector(Stmt::assign("b", c(2)))));
  stmts[0]->id = 3;
  stmts[0]->then_stmts[0]->id = 4;
  clear_ids(stmts);
  EXPECT_EQ(stmts[0]->id, -1);
  EXPECT_EQ(stmts[0]->then_stmts[0]->id, -1);
}

// ---- structural hashing ------------------------------------------------

namespace {
// A small but representative function: params, an array, an output, and
// every statement kind (assign, store, if/else, while, nested block).
Function hash_fixture() {
  Function f("hf");
  f.add_param("n");
  f.add_array({"mem", 8, true});
  f.add_output("s");
  f.set_body(Stmt::block(make_vector(
      Stmt::assign("i", c(0)), Stmt::assign("s", c(0)),
      Stmt::while_stmt(
          Expr::binary(Op::Lt, v("i"), v("n")),
          make_vector(
              Stmt::if_stmt(Expr::binary(Op::Gt, v("i"), c(2)),
                            make_vector(Stmt::store("mem", v("i"), v("s"))),
                            make_vector(Stmt::assign("s", c(7)))),
              Stmt::assign("s",
                           Expr::binary(Op::Add, v("s"),
                                        Expr::array_read("mem", v("i")))),
              Stmt::assign("i", Expr::binary(Op::Add, v("i"), c(1))))))));
  f.renumber();
  return f;
}

void bump_ids(Stmt& s) {
  s.id += 100;
  for (auto* list : s.child_lists())
    for (auto& child : *list) bump_ids(*child);
}
}  // namespace

TEST(StructuralHash, EqualFunctionsHashEqual) {
  const Function a = hash_fixture();
  const Function b = hash_fixture();
  EXPECT_EQ(structural_hash(a), structural_hash(b));
  EXPECT_EQ(structural_hash(a), structural_hash(a.clone()));
}

TEST(StructuralHash, IgnoresStatementIds) {
  // The hash must match the old str()-based dedup semantics: statement ids
  // are not rendered, so renumbering must not change the hash.
  const Function a = hash_fixture();
  Function b = hash_fixture();
  bump_ids(*b.body());
  EXPECT_EQ(structural_hash(a), structural_hash(b));
}

TEST(StructuralHash, MutationsChangeTheHash) {
  const uint64_t base = structural_hash(hash_fixture());

  {  // changed constant
    Function f = hash_fixture();
    f.body()->stmts[0]->value = c(1);
    EXPECT_NE(structural_hash(f), base);
  }
  {  // renamed assignment target
    Function f = hash_fixture();
    f.body()->stmts[0]->target = "j";
    EXPECT_NE(structural_hash(f), base);
  }
  {  // different operator deep inside the loop body
    Function f = hash_fixture();
    Stmt* wh = f.body()->stmts[2].get();
    wh->then_stmts[2]->value =
        Expr::binary(Op::Sub, v("i"), c(1));
    EXPECT_NE(structural_hash(f), base);
  }
  {  // extra trailing statement
    Function f = hash_fixture();
    f.body()->stmts.push_back(Stmt::assign("t", c(0)));
    f.renumber();
    EXPECT_NE(structural_hash(f), base);
  }
  {  // statement moved across a child-list boundary (same statement set)
    Function f = hash_fixture();
    Stmt* wh = f.body()->stmts[2].get();
    Stmt* br = wh->then_stmts[0].get();
    br->else_stmts.push_back(std::move(br->then_stmts[0]));
    br->then_stmts.clear();
    EXPECT_NE(structural_hash(f), base);
  }
  {  // array metadata (size) differs
    Function f = hash_fixture();
    Function g("hf");
    g.add_param("n");
    g.add_array({"mem", 16, true});
    g.add_output("s");
    g.set_body(f.body()->clone());
    g.renumber();
    EXPECT_NE(structural_hash(g), base);
  }
}

TEST(StructuralHash, DistinguishesStmtKindsWithSharedFields) {
  // An If with an empty else and a While share (cond, one child list);
  // only the kind tag separates them.
  const StmtPtr a =
      Stmt::if_stmt(v("p"), make_vector(Stmt::assign("x", c(1))));
  const StmtPtr w =
      Stmt::while_stmt(v("p"), make_vector(Stmt::assign("x", c(1))));
  EXPECT_NE(structural_hash(*a), structural_hash(*w));
}

// ---- Copy-on-write Function sharing ------------------------------------

/// A body with some nesting so path-copies leave real subtrees shared:
///   { a = 1; while (a < n) { if (a > 2) { b = a; } a = a + 1; } c = b; }
Function cow_fixture() {
  Function f("cw");
  f.add_param("n");
  f.set_body(Stmt::block(make_vector(
      Stmt::assign("a", c(1)),
      Stmt::while_stmt(
          Expr::binary(Op::Lt, v("a"), v("n")),
          make_vector(Stmt::if_stmt(Expr::binary(Op::Gt, v("a"), c(2)),
                                    make_vector(Stmt::assign("b", v("a")))),
                      Stmt::assign("a", Expr::binary(Op::Add, v("a"), c(1))))),
      Stmt::assign("c", v("b")))));
  return f;
}

TEST(Cow, CloneSharesAndEditDetaches) {
  Function f = cow_fixture();
  const uint64_t h = structural_hash(f);
  Function g = f.clone();
  // The clone shares the body outright; no statement was copied.
  EXPECT_EQ(std::as_const(f).body()->stmts[0].get(),
            std::as_const(g).body()->stmts[0].get());
  // Mutating the child through ir::edit leaves the parent untouched.
  std::vector<StmtPtr> repl;
  repl.push_back(Stmt::assign("c", c(7)));
  const int cid = std::as_const(g).body()->stmts[2]->id;
  ASSERT_TRUE(replace_stmt(g, cid, std::move(repl)));
  EXPECT_EQ(structural_hash(f), h);
  EXPECT_NE(structural_hash(g), h);
  // Untouched siblings are still the same nodes.
  EXPECT_EQ(std::as_const(f).body()->stmts[1].get(),
            std::as_const(g).body()->stmts[1].get());
}

TEST(Cow, MutableFindStmtIsolatesTheChild) {
  Function f = cow_fixture();
  const uint64_t h = structural_hash(f);
  const std::string before = f.str();
  Function g = f.clone();
  // Mutate deep inside the loop through the child's mutable accessor.
  const int target =
      std::as_const(g).body()->stmts[1]->then_stmts[1]->id;
  Stmt* s = g.find_stmt(target);
  ASSERT_NE(s, nullptr);
  s->value = c(99);
  EXPECT_EQ(structural_hash(f), h);
  EXPECT_EQ(f.str(), before);
  EXPECT_NE(g.str(), before);
}

TEST(Cow, CloneWithReplacesExactlyOneStatement) {
  Function f = cow_fixture();
  const uint64_t h = structural_hash(f);
  const int target = std::as_const(f).body()->stmts[2]->id;  // c = b
  Function g = f.clone_with(target, Stmt::assign("c", c(0)));
  EXPECT_EQ(structural_hash(f), h);
  EXPECT_NE(structural_hash(g), h);
  EXPECT_NE(f.str(), g.str());
  // The loop subtree was not on the path to the replacement: still shared.
  EXPECT_EQ(std::as_const(f).body()->stmts[1].get(),
            std::as_const(g).body()->stmts[1].get());
  EXPECT_THROW(f.clone_with(12345, Stmt::assign("x", c(1))), Error);
}

TEST(Cow, InstrumentationCountsClonesAndCopies) {
  Function f = cow_fixture();
  cow::reset();
  Function g = f.clone();
  EXPECT_EQ(cow::clones(), 1u);
  EXPECT_EQ(cow::node_copies(), 0u);
  // Replacing the last top-level statement copies only the spine: the
  // body block itself (the replacement node is fresh, not a copy).
  ASSERT_TRUE(g.splice(std::as_const(g).body()->stmts[2]->id,
                       make_vector(Stmt::assign("c", c(5))), false));
  EXPECT_EQ(cow::node_copies(), 1u);
  EXPECT_LT(cow::node_copies(), f.stmt_count());
}

}  // namespace
}  // namespace fact::ir
