#include <gtest/gtest.h>

#include "cdfg/cdfg.hpp"
#include "lang/parser.hpp"

namespace fact::cdfg {
namespace {

using ir::Expr;
using ir::ExprPtr;
using ir::Op;

ExprPtr v(const std::string& n) { return Expr::var(n); }
ExprPtr c(int64_t x) { return Expr::constant(x); }

size_t count_kind(const Cdfg& g, NodeKind k) {
  size_t n = 0;
  for (const auto& node : g.nodes())
    if (node.kind == k) n++;
  return n;
}

TEST(CdfgBuild, StraightLineHasNoJoins) {
  const auto fn = lang::parse_function("F(int a) { int x = a + 1; int y = x * 2; output y; }");
  const Cdfg g = Cdfg::from_function(fn);
  EXPECT_EQ(count_kind(g, NodeKind::Join), 0u);
  EXPECT_EQ(count_kind(g, NodeKind::Output), 1u);
  EXPECT_GE(count_kind(g, NodeKind::Op), 2u);
}

TEST(CdfgBuild, IfIntroducesJoinPerDivergentVar) {
  const auto fn = lang::parse_function(R"(
F(int a, int b) {
  int x = 0;
  if (a > b) { x = a; } else { x = b; }
  output x;
}
)");
  const Cdfg g = Cdfg::from_function(fn);
  EXPECT_EQ(count_kind(g, NodeKind::Join), 1u);
}

TEST(CdfgBuild, GuardsCarryPolarity) {
  const auto fn = lang::parse_function(R"(
F(int a, int b) {
  int x = 0;
  if (a > b) { x = a - b; } else { x = b - a; }
  output x;
}
)");
  const Cdfg g = Cdfg::from_function(fn);
  // Find the two subtraction ops: they must be guarded with opposite
  // polarities and recognized as mutually exclusive (the paper's +/-
  // annotation on conditional operations).
  std::vector<int> subs;
  for (size_t i = 0; i < g.size(); ++i)
    if (g.node(static_cast<int>(i)).kind == NodeKind::Op &&
        g.node(static_cast<int>(i)).op == Op::Sub)
      subs.push_back(static_cast<int>(i));
  ASSERT_EQ(subs.size(), 2u);
  EXPECT_TRUE(g.mutually_exclusive(subs[0], subs[1]));
  EXPECT_NE(g.node(subs[0]).guard_polarity, g.node(subs[1]).guard_polarity);
}

TEST(CdfgBuild, UnconditionalOpsNotExclusive) {
  const auto fn = lang::parse_function("F(int a) { int x = a + 1; int y = a - 1; output x; output y; }");
  const Cdfg g = Cdfg::from_function(fn);
  std::vector<int> ops;
  for (size_t i = 0; i < g.size(); ++i)
    if (g.node(static_cast<int>(i)).kind == NodeKind::Op)
      ops.push_back(static_cast<int>(i));
  ASSERT_GE(ops.size(), 2u);
  EXPECT_FALSE(g.mutually_exclusive(ops[0], ops[1]));
}

TEST(CdfgBuild, LoopCreatesBackEdgeJoins) {
  const auto fn = lang::parse_function(R"(
F(int n) {
  int i = 0;
  while (i < n) { i = i + 1; }
  output i;
}
)");
  const Cdfg g = Cdfg::from_function(fn);
  // i is loop-carried: one loop join with two inputs (initial + back edge).
  ASSERT_EQ(count_kind(g, NodeKind::Join), 1u);
  for (const auto& n : g.nodes())
    if (n.kind == NodeKind::Join) EXPECT_EQ(n.data_preds.size(), 2u);
}

TEST(CdfgBuild, TernaryBecomesSelectNode) {
  const auto fn = lang::parse_function("F(int a) { int x = a > 0 ? a : 0 - a; output x; }");
  const Cdfg g = Cdfg::from_function(fn);
  EXPECT_EQ(count_kind(g, NodeKind::Select), 1u);
}

TEST(CdfgBuild, DotMarksControlDependencies) {
  const auto fn = lang::parse_function(R"(
F(int a) {
  int x = 0;
  if (a > 0) { x = a + 1; }
  output x;
}
)");
  const std::string dot = Cdfg::from_function(fn).dot();
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);
  EXPECT_NE(dot.find("shape=diamond"), std::string::npos);  // join
}

// ---- conditions_disjoint --------------------------------------------------

TEST(Disjoint, SameConditionOppositePolarity) {
  const ExprPtr cond = Expr::binary(Op::Gt, v("a"), v("b"));
  EXPECT_TRUE(conditions_disjoint(cond, true, cond, false));
  EXPECT_FALSE(conditions_disjoint(cond, true, cond, true));
}

TEST(Disjoint, IntervalsAgainstConstants) {
  const ExprPtr lt5 = Expr::binary(Op::Lt, v("x"), c(5));
  const ExprPtr gt7 = Expr::binary(Op::Gt, v("x"), c(7));
  const ExprPtr gt3 = Expr::binary(Op::Gt, v("x"), c(3));
  EXPECT_TRUE(conditions_disjoint(lt5, true, gt7, true));
  // x < 5 and x > 3 overlap at x = 4.
  EXPECT_FALSE(conditions_disjoint(lt5, true, gt3, true));
  // Negated polarity: !(x>3) = x<=3, disjoint from x>7.
  EXPECT_TRUE(conditions_disjoint(gt3, false, gt7, true));
}

TEST(Disjoint, AdjacentBoundsTouchingIsNotDisjoint) {
  const ExprPtr le5 = Expr::binary(Op::Le, v("x"), c(5));
  const ExprPtr ge5 = Expr::binary(Op::Ge, v("x"), c(5));
  EXPECT_FALSE(conditions_disjoint(le5, true, ge5, true));  // x==5 overlaps
  const ExprPtr ge6 = Expr::binary(Op::Ge, v("x"), c(6));
  EXPECT_TRUE(conditions_disjoint(le5, true, ge6, true));
}

TEST(Disjoint, EqualityCases) {
  const ExprPtr eq3 = Expr::binary(Op::Eq, v("x"), c(3));
  const ExprPtr eq4 = Expr::binary(Op::Eq, v("x"), c(4));
  const ExprPtr ne3 = Expr::binary(Op::Ne, v("x"), c(3));
  EXPECT_TRUE(conditions_disjoint(eq3, true, eq4, true));
  EXPECT_TRUE(conditions_disjoint(eq3, true, ne3, true));
  EXPECT_FALSE(conditions_disjoint(ne3, true, eq4, true));
}

TEST(Disjoint, FlippedOperandOrder) {
  // 5 > x is x < 5.
  const ExprPtr five_gt_x = Expr::binary(Op::Gt, c(5), v("x"));
  const ExprPtr x_gt_7 = Expr::binary(Op::Gt, v("x"), c(7));
  EXPECT_TRUE(conditions_disjoint(five_gt_x, true, x_gt_7, true));
}

TEST(Disjoint, DifferentVariablesNeverDisjoint) {
  const ExprPtr a = Expr::binary(Op::Lt, v("x"), c(5));
  const ExprPtr b = Expr::binary(Op::Gt, v("y"), c(7));
  EXPECT_FALSE(conditions_disjoint(a, true, b, true));
}

TEST(Disjoint, NonComparisonIsConservative) {
  const ExprPtr a = Expr::binary(Op::Add, v("x"), c(5));
  EXPECT_FALSE(conditions_disjoint(a, true, a, true));
  // ...but identical non-comparisons with opposite polarity are disjoint.
  EXPECT_TRUE(conditions_disjoint(a, true, a, false));
}

}  // namespace
}  // namespace fact::cdfg
