#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <random>

#include "stg/stg.hpp"
#include "util/error.hpp"

namespace fact::stg {
namespace {

/// Two-state loop: S0 -> S1 (always), S1 -> S1 with prob p (loop), S1 -> S0
/// with prob 1-p (exec boundary).
Stg simple_loop(double p) {
  Stg stg;
  const int s0 = stg.add_state("S0");
  const int s1 = stg.add_state("S1");
  stg.add_edge(s0, s1, 1.0);
  stg.add_edge(s1, s1, p, "loop");
  stg.add_edge(s1, s0, 1.0 - p, "exit", /*exec_boundary=*/true);
  stg.set_entry(s0);
  return stg;
}

TEST(Stg, ValidatePassesOnWellFormed) {
  EXPECT_NO_THROW(simple_loop(0.5).validate());
}

TEST(Stg, ValidateCatchesBadProbabilitySum) {
  Stg stg;
  const int s0 = stg.add_state("");
  stg.add_edge(s0, s0, 0.7, "", true);
  EXPECT_THROW(stg.validate(), Error);
}

TEST(Stg, ValidateCatchesDeadEnd) {
  Stg stg;
  const int s0 = stg.add_state("");
  const int s1 = stg.add_state("");
  stg.add_edge(s0, s1, 1.0, "", true);
  EXPECT_THROW(stg.validate(), Error);  // s1 has no outgoing edge
}

TEST(Stg, ValidateCatchesUnreachable) {
  Stg stg;
  const int s0 = stg.add_state("");
  const int s1 = stg.add_state("");
  stg.add_edge(s0, s0, 1.0, "", true);
  stg.add_edge(s1, s0, 1.0);
  EXPECT_THROW(stg.validate(), Error);  // s1 unreachable
}

TEST(Stg, ValidateRequiresBoundary) {
  Stg stg;
  const int s0 = stg.add_state("");
  stg.add_edge(s0, s0, 1.0);
  EXPECT_THROW(stg.validate(), Error);
}

TEST(Stg, AddEdgeRangeChecked) {
  Stg stg;
  stg.add_state("");
  EXPECT_THROW(stg.add_edge(0, 5, 1.0), Error);
}

TEST(Markov, UniformCycleProbabilities) {
  // Deterministic 3-cycle: pi = 1/3 each; the linear solve must handle
  // this periodic chain (power iteration would not converge).
  Stg stg;
  const int a = stg.add_state("");
  const int b = stg.add_state("");
  const int c = stg.add_state("");
  stg.add_edge(a, b, 1.0);
  stg.add_edge(b, c, 1.0);
  stg.add_edge(c, a, 1.0, "", true);
  stg.validate();
  const auto pi = state_probabilities(stg);
  EXPECT_NEAR(pi[0], 1.0 / 3, 1e-12);
  EXPECT_NEAR(pi[1], 1.0 / 3, 1e-12);
  EXPECT_NEAR(pi[2], 1.0 / 3, 1e-12);
  EXPECT_NEAR(average_schedule_length(stg), 3.0, 1e-9);
}

TEST(Markov, GeometricLoopLength) {
  // Loop closing with p: expected iterations p/(1-p); schedule length =
  // 1 (S0) + expected stays in S1 = 1 + 1/(1-p).
  for (double p : {0.5, 0.9, 0.98}) {
    const Stg stg = simple_loop(p);
    const double len = average_schedule_length(stg);
    EXPECT_NEAR(len, 1.0 + 1.0 / (1.0 - p), 1e-9) << p;
  }
}

TEST(Markov, BranchWeightedLengths) {
  // Entry forks to a 1-state path (prob 0.75) or a 2-state path (0.25):
  // E[len] = 1 + 0.75*1 + 0.25*2 = 2.25.
  Stg stg;
  const int s0 = stg.add_state("");
  const int fast = stg.add_state("");
  const int slow1 = stg.add_state("");
  const int slow2 = stg.add_state("");
  stg.add_edge(s0, fast, 0.75);
  stg.add_edge(s0, slow1, 0.25);
  stg.add_edge(slow1, slow2, 1.0);
  stg.add_edge(fast, s0, 1.0, "", true);
  stg.add_edge(slow2, s0, 1.0, "", true);
  stg.validate();
  EXPECT_NEAR(average_schedule_length(stg), 2.25, 1e-9);
}

TEST(Markov, EdgeFrequenciesSumToOnePerStateVisit) {
  const Stg stg = simple_loop(0.9);
  const auto freq = edge_frequencies(stg);
  // Total edge traversal frequency equals 1 (one edge taken per cycle).
  double total = 0.0;
  for (double f : freq) total += f;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Markov, ProbabilitiesFormDistribution) {
  const Stg stg = simple_loop(0.7);
  const auto pi = state_probabilities(stg);
  double total = 0.0;
  for (double p : pi) {
    EXPECT_GE(p, 0.0);
    total += p;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

/// Random ergodic chain: a Hamiltonian ring (guarantees one closed
/// communicating class covering every state) plus extra random edges,
/// outgoing probabilities normalized per state. The ring-closing edge is
/// the execution boundary.
Stg random_ergodic(size_t n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> weight(0.1, 1.0);
  std::uniform_int_distribution<size_t> pick(0, n - 1);
  std::uniform_int_distribution<int> fanout(0, 3);
  Stg stg;
  for (size_t i = 0; i < n; ++i) stg.add_state("");
  for (size_t i = 0; i < n; ++i) {
    std::map<size_t, double> out;
    out[(i + 1) % n] = weight(rng);
    const int extra = fanout(rng);
    for (int k = 0; k < extra; ++k) out[pick(rng)] += weight(rng);
    double total = 0.0;
    for (const auto& [to, p] : out) total += p;
    for (const auto& [to, p] : out)
      stg.add_edge(static_cast<int>(i), static_cast<int>(to), p / total, "",
                   /*exec_boundary=*/i == n - 1 && to == 0);
  }
  stg.set_entry(0);
  return stg;
}

TEST(Markov, SparseMatchesDenseOnRandomErgodicChains) {
  // 64 states is above the Auto dense cutoff — the production sparse path.
  for (uint64_t seed : {11u, 42u, 271u, 828u}) {
    const Stg stg = random_ergodic(64, seed);
    stg.validate();
    MarkovOptions dense;
    dense.solver = MarkovSolver::Dense;
    MarkovOptions sparse;
    sparse.solver = MarkovSolver::Sparse;
    MarkovStats stats;
    const auto pd = state_probabilities(stg, dense);
    const auto ps = state_probabilities(stg, sparse, &stats);
    ASSERT_EQ(pd.size(), ps.size());
    for (size_t i = 0; i < pd.size(); ++i)
      EXPECT_NEAR(pd[i], ps[i], 1e-9) << "seed " << seed << " state " << i;
    EXPECT_TRUE(stats.used_sparse) << seed;
    EXPECT_FALSE(stats.fell_back) << seed;
    EXPECT_GT(stats.sweeps, 0) << seed;
  }
}

TEST(Markov, SingularChainThrowsWhicheverSolver) {
  // Two disjoint closed classes: no unique stationary distribution. The
  // sparse path must report the same error as the dense one.
  Stg stg;
  const int s0 = stg.add_state("");
  const int s1 = stg.add_state("");
  const int s2 = stg.add_state("");
  stg.add_edge(s0, s1, 0.5);
  stg.add_edge(s0, s2, 0.5);
  stg.add_edge(s1, s1, 1.0, "", true);
  stg.add_edge(s2, s2, 1.0, "", true);
  stg.set_entry(s0);
  for (auto solver : {MarkovSolver::Dense, MarkovSolver::Sparse}) {
    MarkovOptions opts;
    opts.solver = solver;
    try {
      state_probabilities(stg, opts);
      FAIL() << "expected singular-chain error";
    } catch (const Error& e) {
      EXPECT_STREQ(e.what(),
                   "state_probabilities: singular chain (STG not ergodic)");
    }
  }
}

TEST(Markov, AutoRespectsDenseCutoff) {
  const Stg big = random_ergodic(64, 7);
  MarkovOptions opts;  // Auto, default cutoff 48
  MarkovStats stats;
  state_probabilities(big, opts, &stats);
  EXPECT_TRUE(stats.used_sparse);

  stats = MarkovStats{};
  opts.dense_cutoff = 128;  // raise the cutoff past the chain size
  state_probabilities(big, opts, &stats);
  EXPECT_FALSE(stats.used_sparse);

  stats = MarkovStats{};
  opts = MarkovOptions{};
  const Stg small = random_ergodic(8, 7);
  state_probabilities(small, opts, &stats);
  EXPECT_FALSE(stats.used_sparse);
}

TEST(Markov, SparseFallsBackToDenseWhenSweepsExhausted) {
  const Stg stg = random_ergodic(64, 3);
  MarkovOptions opts;
  opts.solver = MarkovSolver::Sparse;
  opts.max_sweeps = 1;  // cannot converge in one Gauss-Seidel sweep
  MarkovStats stats;
  const auto pi = state_probabilities(stg, opts, &stats);
  EXPECT_TRUE(stats.fell_back);
  EXPECT_FALSE(stats.used_sparse);
  // The fallback result is the dense solution itself.
  MarkovOptions dense;
  dense.solver = MarkovSolver::Dense;
  const auto pd = state_probabilities(stg, dense);
  for (size_t i = 0; i < pd.size(); ++i) EXPECT_DOUBLE_EQ(pd[i], pi[i]);
}

TEST(Stg, DotContainsStatesAndProbabilities) {
  Stg stg = simple_loop(0.25);
  {
    fact::stg::OpInstance op_inst;
    op_inst.fu_type = "a1";
    op_inst.op = ir::Op::Add;
    op_inst.stmt_id = 3;
    op_inst.iteration = 1;
    op_inst.label = "a=+";
    stg.state(1).ops.push_back(std::move(op_inst));
  }
  const std::string dot = stg.dot("g");
  EXPECT_NE(dot.find("S0"), std::string::npos);
  EXPECT_NE(dot.find("a=+_1"), std::string::npos);
  EXPECT_NE(dot.find("(0.25)"), std::string::npos);
  EXPECT_NE(dot.find("style=bold"), std::string::npos);  // boundary edge
}

}  // namespace
}  // namespace fact::stg
