#include <gtest/gtest.h>

#include "stg/stg.hpp"
#include "util/error.hpp"

namespace fact::stg {
namespace {

/// Two-state loop: S0 -> S1 (always), S1 -> S1 with prob p (loop), S1 -> S0
/// with prob 1-p (exec boundary).
Stg simple_loop(double p) {
  Stg stg;
  const int s0 = stg.add_state("S0");
  const int s1 = stg.add_state("S1");
  stg.add_edge(s0, s1, 1.0);
  stg.add_edge(s1, s1, p, "loop");
  stg.add_edge(s1, s0, 1.0 - p, "exit", /*exec_boundary=*/true);
  stg.set_entry(s0);
  return stg;
}

TEST(Stg, ValidatePassesOnWellFormed) {
  EXPECT_NO_THROW(simple_loop(0.5).validate());
}

TEST(Stg, ValidateCatchesBadProbabilitySum) {
  Stg stg;
  const int s0 = stg.add_state("");
  stg.add_edge(s0, s0, 0.7, "", true);
  EXPECT_THROW(stg.validate(), Error);
}

TEST(Stg, ValidateCatchesDeadEnd) {
  Stg stg;
  const int s0 = stg.add_state("");
  const int s1 = stg.add_state("");
  stg.add_edge(s0, s1, 1.0, "", true);
  EXPECT_THROW(stg.validate(), Error);  // s1 has no outgoing edge
}

TEST(Stg, ValidateCatchesUnreachable) {
  Stg stg;
  const int s0 = stg.add_state("");
  const int s1 = stg.add_state("");
  stg.add_edge(s0, s0, 1.0, "", true);
  stg.add_edge(s1, s0, 1.0);
  EXPECT_THROW(stg.validate(), Error);  // s1 unreachable
}

TEST(Stg, ValidateRequiresBoundary) {
  Stg stg;
  const int s0 = stg.add_state("");
  stg.add_edge(s0, s0, 1.0);
  EXPECT_THROW(stg.validate(), Error);
}

TEST(Stg, AddEdgeRangeChecked) {
  Stg stg;
  stg.add_state("");
  EXPECT_THROW(stg.add_edge(0, 5, 1.0), Error);
}

TEST(Markov, UniformCycleProbabilities) {
  // Deterministic 3-cycle: pi = 1/3 each; the linear solve must handle
  // this periodic chain (power iteration would not converge).
  Stg stg;
  const int a = stg.add_state("");
  const int b = stg.add_state("");
  const int c = stg.add_state("");
  stg.add_edge(a, b, 1.0);
  stg.add_edge(b, c, 1.0);
  stg.add_edge(c, a, 1.0, "", true);
  stg.validate();
  const auto pi = state_probabilities(stg);
  EXPECT_NEAR(pi[0], 1.0 / 3, 1e-12);
  EXPECT_NEAR(pi[1], 1.0 / 3, 1e-12);
  EXPECT_NEAR(pi[2], 1.0 / 3, 1e-12);
  EXPECT_NEAR(average_schedule_length(stg), 3.0, 1e-9);
}

TEST(Markov, GeometricLoopLength) {
  // Loop closing with p: expected iterations p/(1-p); schedule length =
  // 1 (S0) + expected stays in S1 = 1 + 1/(1-p).
  for (double p : {0.5, 0.9, 0.98}) {
    const Stg stg = simple_loop(p);
    const double len = average_schedule_length(stg);
    EXPECT_NEAR(len, 1.0 + 1.0 / (1.0 - p), 1e-9) << p;
  }
}

TEST(Markov, BranchWeightedLengths) {
  // Entry forks to a 1-state path (prob 0.75) or a 2-state path (0.25):
  // E[len] = 1 + 0.75*1 + 0.25*2 = 2.25.
  Stg stg;
  const int s0 = stg.add_state("");
  const int fast = stg.add_state("");
  const int slow1 = stg.add_state("");
  const int slow2 = stg.add_state("");
  stg.add_edge(s0, fast, 0.75);
  stg.add_edge(s0, slow1, 0.25);
  stg.add_edge(slow1, slow2, 1.0);
  stg.add_edge(fast, s0, 1.0, "", true);
  stg.add_edge(slow2, s0, 1.0, "", true);
  stg.validate();
  EXPECT_NEAR(average_schedule_length(stg), 2.25, 1e-9);
}

TEST(Markov, EdgeFrequenciesSumToOnePerStateVisit) {
  const Stg stg = simple_loop(0.9);
  const auto freq = edge_frequencies(stg);
  // Total edge traversal frequency equals 1 (one edge taken per cycle).
  double total = 0.0;
  for (double f : freq) total += f;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Markov, ProbabilitiesFormDistribution) {
  const Stg stg = simple_loop(0.7);
  const auto pi = state_probabilities(stg);
  double total = 0.0;
  for (double p : pi) {
    EXPECT_GE(p, 0.0);
    total += p;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Stg, DotContainsStatesAndProbabilities) {
  Stg stg = simple_loop(0.25);
  {
    fact::stg::OpInstance op_inst;
    op_inst.fu_type = "a1";
    op_inst.op = ir::Op::Add;
    op_inst.stmt_id = 3;
    op_inst.iteration = 1;
    op_inst.label = "a=+";
    stg.state(1).ops.push_back(std::move(op_inst));
  }
  const std::string dot = stg.dot("g");
  EXPECT_NE(dot.find("S0"), std::string::npos);
  EXPECT_NE(dot.find("a=+_1"), std::string::npos);
  EXPECT_NE(dot.find("(0.25)"), std::string::npos);
  EXPECT_NE(dot.find("style=bold"), std::string::npos);  // boundary edge
}

}  // namespace
}  // namespace fact::stg
