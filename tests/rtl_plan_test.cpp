// Unit tests of the RTL plan builder: transition mapping, shadow register
// placement, and inventory classification, on both crafted and compiled
// STGs.

#include <gtest/gtest.h>

#include "lang/parser.hpp"
#include "rtl/plan.hpp"
#include "rtl/sim.hpp"
#include "sched/scheduler.hpp"
#include "sim/trace.hpp"

namespace fact::rtl {
namespace {

sched::ScheduleResult compile(const std::string& src,
                              const sim::TraceConfig& tc = {}) {
  const ir::Function fn = lang::parse_function(src);
  const auto lib = hlslib::Library::dac98();
  hlslib::Allocation alloc;
  for (const auto& t : lib.types()) alloc.counts[t.name] = 2;
  const sim::Trace trace = sim::generate_trace(fn, tc, 7);
  const sim::Profile profile = sim::profile_function(fn, trace);
  sched::SchedOptions so;
  so.fuse_loops = false;
  sched::Scheduler s(lib, alloc, hlslib::FuSelection::defaults(lib), so);
  return s.schedule(fn, profile);
}

TEST(RtlPlan, InventorySeparatesVarsWiresParams) {
  const ir::Function fn = lang::parse_function(
      "F(int a, int b) { int x = a + b; a = x * 2; output a; }");
  const auto sr = compile("F(int a, int b) { int x = a + b; a = x * 2; output a; }");
  const RtlPlan plan = build_rtl_plan(fn, sr.stg);
  EXPECT_TRUE(plan.written_params.count("a"));
  EXPECT_FALSE(plan.written_params.count("b"));
  EXPECT_TRUE(plan.vars.count("x"));
  EXPECT_TRUE(plan.vars.count("a"));  // written param becomes a register
  EXPECT_FALSE(plan.vars.count("b"));
  EXPECT_FALSE(plan.wires.empty());
  for (const auto& w : plan.wires) EXPECT_EQ(w[0], 'w');
}

TEST(RtlPlan, BranchTransitionsCarrySignalsAndPolarity) {
  const std::string src = R"(
F(int a, int b) {
  int x = 0;
  if (a > b) { x = a * 2; } else { x = b * 3; }
  output x;
}
)";
  const ir::Function fn = lang::parse_function(src);
  const auto sr = compile(src);
  const RtlPlan plan = build_rtl_plan(fn, sr.stg);
  bool branch_found = false;
  for (const auto& st : plan.states) {
    if (st.transitions.size() < 2) continue;
    branch_found = true;
    // First transition conditional with a signal; last is the else.
    EXPECT_FALSE(st.transitions.front().signal.empty());
    EXPECT_TRUE(st.transitions.back().signal.empty());
  }
  EXPECT_TRUE(branch_found);
}

TEST(RtlPlan, BoundaryTransitionsMarked) {
  const auto sr = compile("F(int a) { int x = a + 1; output x; }");
  const ir::Function fn =
      lang::parse_function("F(int a) { int x = a + 1; output x; }");
  const RtlPlan plan = build_rtl_plan(fn, sr.stg);
  int boundaries = 0;
  for (const auto& st : plan.states)
    for (const auto& t : st.transitions)
      if (t.boundary) boundaries++;
  EXPECT_GE(boundaries, 1);
}

TEST(RtlPlan, EveryStateHasAFallthrough) {
  const std::string src = R"(
F(int a, int b) {
  while (a != b) {
    if (a > b) { a = a - b; } else { b = b - a; }
  }
  output a;
}
)";
  const ir::Function fn = lang::parse_function(src);
  sim::TraceConfig tc;
  tc.params["a"] = {sim::InputSpec::Kind::Uniform, 0, 0, 0, 1, 40, 0};
  tc.params["b"] = {sim::InputSpec::Kind::Uniform, 0, 0, 0, 1, 40, 0};
  const auto sr = compile(src, tc);
  const RtlPlan plan = build_rtl_plan(fn, sr.stg);
  for (const auto& st : plan.states) {
    ASSERT_FALSE(st.transitions.empty());
    EXPECT_TRUE(st.transitions.back().signal.empty())
        << "last transition must be unconditional";
  }
}

TEST(RtlPlan, ShadowCapturePrecedesEveryShadowedUpdate) {
  // i++ floated above the store: i is shadowed, and every state that
  // updates i must capture i__pre at or before the update step.
  const std::string src = R"(
F(int g) {
  input int x[16];
  int y[16];
  int i = 0;
  while (i < 15) {
    y[i] = x[i] + x[i + 1];
    i = i + 1;
  }
  output i;
}
)";
  const ir::Function fn = lang::parse_function(src);
  const auto sr = compile(src);
  const RtlPlan plan = build_rtl_plan(fn, sr.stg);
  ASSERT_TRUE(plan.shadowed.count("i"));
  for (const auto& st : plan.states) {
    bool captured = false;
    for (const auto& step : st.steps) {
      for (const auto& c : step.captures)
        if (c == "i") captured = true;
      if (step.op.def_var == "i")
        EXPECT_TRUE(captured) << "update without prior capture";
    }
  }
}

TEST(RtlPlan, SimulatorHonorsCycleCap) {
  // A behavior that runs long: with a tiny cap the simulator reports
  // incomplete instead of hanging.
  const std::string src = R"(
F(int n) {
  int i = 0;
  while (i < 1000) { i = i + 1; }
  output i;
}
)";
  const ir::Function fn = lang::parse_function(src);
  const auto sr = compile(src);
  const RtlPlan plan = build_rtl_plan(fn, sr.stg);
  sim::Stimulus stim;
  const RtlSimResult r = simulate_rtl(fn, plan, stim, /*max_cycles=*/10);
  EXPECT_FALSE(r.completed);
  EXPECT_EQ(r.cycles, 10);
}

TEST(RtlPlan, SimulatorCountsCycles) {
  const std::string src = "F(int a, int b) { int x = a * b; int y = x * 2; output y; }";
  const ir::Function fn = lang::parse_function(src);
  const auto sr = compile(src);
  const RtlPlan plan = build_rtl_plan(fn, sr.stg);
  sim::Stimulus stim;
  stim.params = {{"a", 3}, {"b", 4}};
  const RtlSimResult r = simulate_rtl(fn, plan, stim);
  EXPECT_TRUE(r.completed);
  // Two dependent multiplies on one... two multipliers, still dependent:
  // 2 cycles.
  EXPECT_EQ(r.cycles, 2);
  EXPECT_EQ(r.obs.outputs.at("y"), 24);
}

}  // namespace
}  // namespace fact::rtl
