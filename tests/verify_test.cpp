// Unit tests of the deep invariant verifier (src/verify): hand-corrupted
// IR, STGs, and schedules must each be flagged with the right check name,
// and legitimate designs must pass untouched.

#include <gtest/gtest.h>

#include "lang/parser.hpp"
#include "sched/scheduler.hpp"
#include "sim/trace.hpp"
#include "verify/verify.hpp"

namespace fact::verify {
namespace {

ir::Function parse(const std::string& src) { return lang::parse_function(src); }

bool has_check(const Report& r, const std::string& name) {
  for (const auto& i : r.issues)
    if (i.check == name) return true;
  return false;
}

const char* kGcd = R"(
GCD(int a, int b) {
  while (a != b) {
    if (a > b) { a = a - b; } else { b = b - a; }
  }
  output a;
}
)";

// ---- levels and reports -------------------------------------------------

TEST(VerifyLevel, ParsesAndRejects) {
  EXPECT_EQ(level_from_string("off"), Level::Off);
  EXPECT_EQ(level_from_string("fast"), Level::Fast);
  EXPECT_EQ(level_from_string("full"), Level::Full);
  EXPECT_THROW(level_from_string("bogus"), Error);
  EXPECT_STREQ(to_string(Level::Full), "full");
}

TEST(VerifyReport, RendersAndThrows) {
  Report ok;
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.first_check(), "");
  EXPECT_NO_THROW(check_or_throw(ok));

  Report bad;
  bad.issues.push_back({"ir.shape", "something broke"});
  bad.issues.push_back({"ir.arrays", "something else"});
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.first_check(), "ir.shape");
  EXPECT_NE(bad.str().find("ir.shape: something broke"), std::string::npos);
  try {
    check_or_throw(bad);
    FAIL() << "check_or_throw did not throw";
  } catch (const VerifyError& e) {
    EXPECT_EQ(e.report().issues.size(), 2u);
    EXPECT_NE(std::string(e.what()).find("ir.arrays"), std::string::npos);
  }
}

// ---- IR checks ----------------------------------------------------------

TEST(VerifyFunction, CleanFunctionPasses) {
  const ir::Function fn = parse(kGcd);
  EXPECT_TRUE(verify_function(fn, Level::Full).ok());
  EXPECT_TRUE(verify_function(fn, Level::Fast).ok());
}

TEST(VerifyFunction, OffSkipsEverything) {
  ir::Function fn = parse(kGcd);
  fn.for_each([&](ir::Stmt& s) {
    if (s.kind == ir::StmtKind::While) s.then_stmts.clear();
  });
  EXPECT_TRUE(verify_function(fn, Level::Off).ok());
  EXPECT_FALSE(verify_function(fn, Level::Fast).ok());
}

TEST(VerifyFunction, DuplicateStmtIdFlagged) {
  ir::Function fn = parse(kGcd);
  int first_id = -1;
  ir::Stmt* last = nullptr;
  fn.for_each([&](ir::Stmt& s) {
    if (first_id < 0) first_id = s.id;
    last = &s;
  });
  ASSERT_NE(last, nullptr);
  last->id = first_id;
  const Report r = verify_function(fn, Level::Fast);
  EXPECT_TRUE(has_check(r, "ir.stmt-id-unique")) << r.str();
  // The thin ir-level validator now rejects this too.
  EXPECT_THROW(fn.validate(), Error);
}

TEST(VerifyFunction, UnassignedStmtIdFlagged) {
  ir::Function fn = parse(kGcd);
  fn.body()->stmts.front()->id = -1;
  const Report r = verify_function(fn, Level::Fast);
  EXPECT_TRUE(has_check(r, "ir.stmt-id-assigned")) << r.str();
}

TEST(VerifyFunction, EmptyLoopBodyFlagged) {
  ir::Function fn = parse(kGcd);
  fn.for_each([&](ir::Stmt& s) {
    if (s.kind == ir::StmtKind::While) s.then_stmts.clear();
  });
  const Report r = verify_function(fn, Level::Fast);
  EXPECT_TRUE(has_check(r, "ir.empty-loop")) << r.str();
}

TEST(VerifyFunction, UndeclaredArrayFlagged) {
  ir::Function fn = parse(kGcd);
  fn.body()->stmts.push_back(ir::Stmt::assign(
      "t", ir::Expr::array_read("nope", ir::Expr::constant(0))));
  fn.assign_fresh_ids();
  const Report r = verify_function(fn, Level::Fast);
  EXPECT_TRUE(has_check(r, "ir.arrays")) << r.str();
}

TEST(VerifyFunction, GuardExclusionFlagged) {
  ir::Function fn = parse(kGcd);
  // Alias the else-branch statement's id to the then-branch statement's:
  // the same id becomes reachable under both polarities of the guard.
  ir::Stmt* guard = nullptr;
  fn.for_each([&](ir::Stmt& s) {
    if (s.kind == ir::StmtKind::If) guard = &s;
  });
  ASSERT_NE(guard, nullptr);
  ASSERT_FALSE(guard->then_stmts.empty());
  ASSERT_FALSE(guard->else_stmts.empty());
  guard->else_stmts.front()->id = guard->then_stmts.front()->id;
  const Report r = verify_function(fn, Level::Fast);
  EXPECT_TRUE(has_check(r, "ir.guard-exclusion")) << r.str();
}

TEST(VerifyFunction, DifferentialDefBeforeUse) {
  ir::Function fn = parse(kGcd);
  fn.body()->stmts.push_back(
      ir::Stmt::assign("q", ir::Expr::var("neverdef")));
  fn.assign_fresh_ids();

  // Without a baseline set the check is skipped (reading a never-written
  // register as 0 is legal hardware behavior).
  EXPECT_FALSE(has_check(verify_function(fn, Level::Full), "ir.def-before-use"));

  const std::set<std::string> empty_allowed;
  EXPECT_TRUE(has_check(verify_function(fn, Level::Full, &empty_allowed),
                        "ir.def-before-use"));

  const std::set<std::string> allowed = {"neverdef"};
  EXPECT_FALSE(has_check(verify_function(fn, Level::Full, &allowed),
                         "ir.def-before-use"));
}

TEST(UndefinedReads, BranchAndLoopMustDefineAnalysis) {
  // if (a > 0) { y = 1 } else { z = 2 }  -> neither y nor z is surely
  // defined afterwards; w = y + z reads both as maybe-undefined.
  ir::Function fn("U");
  fn.add_param("a");
  std::vector<ir::StmtPtr> then_b, else_b, body;
  then_b.push_back(ir::Stmt::assign("y", ir::Expr::constant(1)));
  else_b.push_back(ir::Stmt::assign("z", ir::Expr::constant(2)));
  body.push_back(ir::Stmt::if_stmt(
      ir::Expr::binary(ir::Op::Gt, ir::Expr::var("a"), ir::Expr::constant(0)),
      std::move(then_b), std::move(else_b)));
  body.push_back(ir::Stmt::assign(
      "w", ir::Expr::binary(ir::Op::Add, ir::Expr::var("y"),
                            ir::Expr::var("z"))));
  fn.set_body(ir::Stmt::block(std::move(body)));
  fn.add_output("w");
  const std::set<std::string> undef = undefined_reads(fn);
  EXPECT_EQ(undef, (std::set<std::string>{"y", "z"}));

  // Loop bodies may run zero times: defs inside do not reach the code
  // after the loop, but parameters are always defined.
  const ir::Function loop_fn = parse(R"(
F(int n) {
  while (n > 0) { int t = n; n = n - 1; }
  int q = t;
  output q;
}
)");
  const std::set<std::string> loop_undef = undefined_reads(loop_fn);
  EXPECT_TRUE(loop_undef.count("t"));
  EXPECT_FALSE(loop_undef.count("n"));
}

// ---- STG checks ---------------------------------------------------------

stg::Stg small_stg() {
  stg::Stg g;
  const int s0 = g.add_state("S0");
  const int s1 = g.add_state("S1");
  g.add_edge(s0, s1, 0.7, "T");
  g.add_edge(s0, s0, 0.3, "F");
  g.state(s0).cond_signal = "w0";
  g.add_edge(s1, s0, 1.0, "", /*exec_boundary=*/true);
  g.set_entry(s0);
  return g;
}

TEST(VerifyStg, CleanStgPasses) {
  EXPECT_TRUE(verify_stg(small_stg(), Level::Full).ok());
}

TEST(VerifyStg, BadProbabilitySumFlagged) {
  stg::Stg g = small_stg();
  g.edge(0).prob = 0.5;  // 0.5 + 0.3 != 1
  EXPECT_TRUE(has_check(verify_stg(g), "stg.prob"));
}

TEST(VerifyStg, OutOfRangeProbabilityFlagged) {
  stg::Stg g = small_stg();
  g.edge(0).prob = 1.4;
  g.edge(1).prob = -0.4;
  EXPECT_TRUE(has_check(verify_stg(g), "stg.prob"));
}

TEST(VerifyStg, MissingCondSignalFlagged) {
  stg::Stg g = small_stg();
  g.state(0).cond_signal.clear();
  EXPECT_TRUE(has_check(verify_stg(g), "stg.deterministic"));
}

TEST(VerifyStg, UnreachableStateFlagged) {
  stg::Stg g = small_stg();
  const int orphan = g.add_state("orphan");
  g.add_edge(orphan, orphan, 1.0);
  EXPECT_TRUE(has_check(verify_stg(g), "stg.reachable"));
}

TEST(VerifyStg, MissingBoundaryFlagged) {
  stg::Stg g = small_stg();
  for (size_t i = 0; i < g.num_edges(); ++i)
    g.edge(static_cast<int>(i)).exec_boundary = false;
  EXPECT_TRUE(has_check(verify_stg(g), "stg.boundary"));
}

TEST(VerifyStg, CorruptOutEdgeListFlagged) {
  stg::Stg g = small_stg();
  g.state(1).out_edges.push_back(99);  // nonexistent edge index
  EXPECT_TRUE(has_check(verify_stg(g), "stg.edges"));

  stg::Stg g2 = small_stg();
  g2.state(1).out_edges.push_back(0);  // edge 0 leaves state 0, not 1
  EXPECT_TRUE(has_check(verify_stg(g2), "stg.edges"));
  // The stg-level validator rejects the same corruption.
  EXPECT_THROW(g2.validate(), Error);
}

// ---- schedule legality --------------------------------------------------

stg::OpInstance mk_op(const std::string& fu, const std::string& wire,
                      std::vector<std::string> operands = {},
                      const std::string& array = "") {
  stg::OpInstance op;
  op.fu_type = fu;
  op.op = ir::Op::Add;
  op.stmt_id = -1;  // not tied to an IR statement
  op.label = "+";
  op.value_name = wire;
  op.operands = std::move(operands);
  op.array = array;
  return op;
}

struct SchedFixture {
  ir::Function fn = parse("F(int a) { int x = a + a; output x; }");
  hlslib::Library lib = hlslib::Library::dac98();
  hlslib::Allocation alloc;
  stg::Stg g;

  SchedFixture() {
    alloc.counts = {{"a1", 1}, {"mem", 1}};
    const int s0 = g.add_state("S0");
    g.add_edge(s0, s0, 1.0, "", /*exec_boundary=*/true);
    g.set_entry(s0);
  }

  Report verify(Level level = Level::Full) const {
    return verify_schedule(fn, g, lib, alloc, level);
  }
};

TEST(VerifySchedule, ResourceOverflowFlagged) {
  SchedFixture f;
  f.g.state(0).ops.push_back(mk_op("a1", "w1"));
  EXPECT_TRUE(f.verify().ok());
  f.g.state(0).ops.push_back(mk_op("a1", "w2"));  // 2 adders, 1 allocated
  EXPECT_TRUE(has_check(f.verify(), "sched.resources"));
}

TEST(VerifySchedule, MemoryPortOverflowFlagged) {
  SchedFixture f;
  f.g.state(0).ops.push_back(mk_op("", "w1", {}, "m"));
  EXPECT_TRUE(f.verify().ok());
  f.g.state(0).ops.push_back(mk_op("", "w2", {}, "m"));  // 2nd port on 'm'
  EXPECT_TRUE(has_check(f.verify(), "sched.resources"));
}

TEST(VerifySchedule, MissingStmtIdFlagged) {
  SchedFixture f;
  stg::OpInstance op = mk_op("a1", "w1");
  op.stmt_id = 999;  // no such statement in fn
  f.g.state(0).ops.push_back(std::move(op));
  EXPECT_TRUE(has_check(f.verify(), "sched.stmt-ids"));
}

TEST(VerifySchedule, MissingResultWireFlagged) {
  SchedFixture f;
  f.g.state(0).ops.push_back(mk_op("a1", ""));
  EXPECT_TRUE(has_check(f.verify(), "sched.wires"));
}

TEST(VerifySchedule, DuplicateWireInOneStateFlagged) {
  SchedFixture f;
  f.g.state(0).ops.push_back(mk_op("a1", "w1"));
  stg::OpInstance op = mk_op("", "w1");  // same net driven twice this cycle
  f.g.state(0).ops.push_back(std::move(op));
  EXPECT_TRUE(has_check(f.verify(), "sched.wires"));
}

TEST(VerifySchedule, UndefinedWireOperandFlaggedAtFullOnly) {
  SchedFixture f;
  f.g.state(0).ops.push_back(mk_op("a1", "w1", {"w9", "a"}));
  EXPECT_TRUE(has_check(f.verify(Level::Full), "sched.wires"));
  EXPECT_TRUE(f.verify(Level::Fast).ok());
}

TEST(VerifySchedule, ChainingOrderFlaggedOutsideRings) {
  SchedFixture f;
  // Consumer before its same-cycle producer.
  f.g.state(0).ops.push_back(mk_op("a1", "w1", {"w2"}));
  f.g.state(0).ops.push_back(mk_op("", "w2"));
  EXPECT_TRUE(has_check(f.verify(), "sched.chaining"));
  // Kernel rings read the previous traversal's wires: exempt.
  f.g.state(0).ring_id = 0;
  EXPECT_FALSE(has_check(f.verify(), "sched.chaining"));
}

TEST(VerifySchedule, RealSchedulesPassAllLevels) {
  const ir::Function fn = parse(kGcd);
  sim::TraceConfig tc;
  tc.params["a"] = {sim::InputSpec::Kind::Uniform, 0, 0, 0, 1, 60, 0};
  tc.params["b"] = {sim::InputSpec::Kind::Uniform, 0, 0, 0, 1, 60, 0};
  const sim::Trace trace = sim::generate_trace(fn, tc, 5);
  const sim::Profile profile = sim::profile_function(fn, trace);
  const auto lib = hlslib::Library::dac98();
  hlslib::Allocation alloc;
  for (const auto& t : lib.types()) alloc.counts[t.name] = 2;
  for (const bool fuse : {true, false}) {
    sched::SchedOptions so;
    so.fuse_loops = fuse;
    sched::Scheduler sch(lib, alloc, hlslib::FuSelection::defaults(lib), so);
    const sched::ScheduleResult sr = sch.schedule(fn, profile);
    const Report rs = verify_stg(sr.stg, Level::Full);
    EXPECT_TRUE(rs.ok()) << rs.str();
    const Report rl = verify_schedule(fn, sr.stg, lib, alloc, Level::Full);
    EXPECT_TRUE(rl.ok()) << rl.str();
  }
}

}  // namespace
}  // namespace fact::verify
