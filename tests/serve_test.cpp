// Unit and in-process tests of the factd service layer: the JSON wire
// format, the socket line transport, the Service (sessions, shared cache,
// bounded queue, cancellation, shutdown-while-busy) and the Server
// (per-connection response ordering over a real unix socket).

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "serve/json.hpp"
#include "serve/net.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"
#include "util/error.hpp"

namespace {

using fact::serve::Json;

// ---- JSON ----------------------------------------------------------------

TEST(ServeJson, RoundTripsScalarsAndContainers) {
  Json obj = Json::object();
  obj.set("b", true);
  obj.set("n", 42);
  obj.set("f", 2.5);
  obj.set("s", "hi\n\"there\"\\");
  Json arr = Json::array();
  arr.push_back(1).push_back(Json()).push_back("x");
  obj.set("a", std::move(arr));

  const std::string text = obj.dump();
  EXPECT_EQ(text,
            "{\"b\":true,\"n\":42,\"f\":2.5,"
            "\"s\":\"hi\\n\\\"there\\\"\\\\\",\"a\":[1,null,\"x\"]}");

  const Json back = Json::parse(text);
  EXPECT_TRUE(back.get_bool("b"));
  EXPECT_EQ(back.get_int("n"), 42);
  EXPECT_DOUBLE_EQ(back.get_double("f"), 2.5);
  EXPECT_EQ(back.get_string("s"), "hi\n\"there\"\\");
  ASSERT_TRUE(back.get("a") != nullptr);
  EXPECT_EQ(back.get("a")->size(), 3u);
  EXPECT_TRUE(back.get("a")->at(1).is_null());
  // dump(parse(dump(x))) is a fixpoint — the determinism the e2e test
  // leans on.
  EXPECT_EQ(back.dump(), text);
}

TEST(ServeJson, PreservesInsertionOrderAndReplacesInPlace) {
  Json obj = Json::object();
  obj.set("z", 1);
  obj.set("a", 2);
  obj.set("z", 3);  // replace keeps position
  EXPECT_EQ(obj.dump(), "{\"z\":3,\"a\":2}");
}

TEST(ServeJson, NumbersRoundTrip) {
  for (const double v : {0.0, -1.0, 1e-3, 119.11, 1234567890123.0, 0.1,
                         1.0 / 3.0, 1e20, -2.5e-7}) {
    const Json parsed = Json::parse(Json(v).dump());
    EXPECT_DOUBLE_EQ(parsed.as_double(), v) << Json(v).dump();
  }
  EXPECT_EQ(Json(42).dump(), "42");
  EXPECT_EQ(Json(-7).dump(), "-7");
}

TEST(ServeJson, ParsesEscapesAndSurrogates) {
  EXPECT_EQ(Json::parse("\"\\u0041\\u00e9\"").as_string(), "A\xc3\xa9");
  // U+1F600 as a surrogate pair.
  EXPECT_EQ(Json::parse("\"\\ud83d\\ude00\"").as_string(),
            "\xf0\x9f\x98\x80");
}

TEST(ServeJson, RejectsMalformedInput) {
  const char* bad[] = {
      "",           "{",           "[1,2",       "{\"a\":}",
      "tru",        "\"unterminated", "{\"a\" 1}", "01x",
      "[1,]",       "{\"a\":1,}",  "\"\\u12g4\"", "\"\\ud800\"",
      "1 2",        "nullx",       "\"a\" extra",
  };
  for (const char* text : bad)
    EXPECT_THROW(Json::parse(text), fact::Error) << text;
}

TEST(ServeJson, RejectsPathologicalNesting) {
  const std::string deep(5000, '[');
  EXPECT_THROW(Json::parse(deep), fact::Error);
  // A modest depth parses fine.
  std::string ok;
  for (int i = 0; i < 30; ++i) ok += "[";
  ok += "1";
  for (int i = 0; i < 30; ++i) ok += "]";
  EXPECT_NO_THROW(Json::parse(ok));
}

// ---- line transport ------------------------------------------------------

TEST(ServeNet, LineReaderReassemblesSplitLines) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  fact::serve::LineReader reader(fds[0]);

  // One line split across writes, two lines in one write, and an
  // unterminated fragment that EOF must not surface as a line.
  const char* chunks[] = {"hel", "lo\n", "world\nx\n", "tail-no-newline"};
  for (const char* c : chunks)
    ASSERT_GT(::send(fds[1], c, strlen(c), 0), 0);
  ::close(fds[1]);

  std::string line;
  ASSERT_TRUE(reader.next(line));
  EXPECT_EQ(line, "hello");
  ASSERT_TRUE(reader.next(line));
  EXPECT_EQ(line, "world");
  ASSERT_TRUE(reader.next(line));
  EXPECT_EQ(line, "x");
  EXPECT_FALSE(reader.next(line));  // the tail fragment is not a line
  ::close(fds[0]);
}

TEST(ServeNet, LineReaderRejectsOversizedLine) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  fact::serve::LineReader reader(fds[0], 64);
  const std::string big(1024, 'x');
  std::thread tx([&] {
    fact::serve::send_line(fds[1], big);
    ::close(fds[1]);
  });
  std::string line;
  EXPECT_THROW(reader.next(line), fact::Error);
  tx.join();
  ::close(fds[0]);
}

// ---- Service -------------------------------------------------------------

Json optimize_request(const std::string& benchmark, int id) {
  Json req = Json::object();
  req.set("type", "optimize");
  req.set("id", id);
  req.set("benchmark", benchmark);
  req.set("quiet", true);
  return req;
}

TEST(Service, RunsOptimizeScheduleAndProfile) {
  fact::serve::Service svc;

  Json opt = optimize_request("GCD", 1);
  const Json& r1 = svc.submit(opt).wait();
  ASSERT_TRUE(r1.get_bool("ok")) << r1.dump();
  EXPECT_EQ(r1.get_int("id"), 1);
  EXPECT_GT(r1.get_double("avg_len"), 0.0);
  EXPECT_FALSE(r1.get_string("report").empty());

  Json sch = Json::object();
  sch.set("type", "schedule");
  sch.set("benchmark", "GCD");
  const Json& r2 = svc.submit(sch).wait();
  ASSERT_TRUE(r2.get_bool("ok")) << r2.dump();
  EXPECT_EQ(r2.get_string("method"), "m1");
  EXPECT_GT(r2.get_double("avg_len"), 0.0);

  Json prof = Json::object();
  prof.set("type", "profile");
  prof.set("benchmark", "GCD");
  const Json& r3 = svc.submit(prof).wait();
  ASSERT_TRUE(r3.get_bool("ok")) << r3.dump();
  EXPECT_GT(r3.get_int("executions"), 0);
  EXPECT_GT(r3.get_double("avg_steps"), 0.0);

  const fact::serve::StatsSnapshot s = svc.stats();
  EXPECT_EQ(s.completed, 3u);
  EXPECT_EQ(s.failed, 0u);
  EXPECT_GT(s.evaluations, 0u);
}

TEST(Service, ErrorsAreResponsesNeverThrows) {
  fact::serve::Service svc;

  Json unknown = Json::object();
  unknown.set("type", "frobnicate");
  const Json& r1 = svc.submit(unknown).wait();
  EXPECT_FALSE(r1.get_bool("ok"));
  EXPECT_NE(r1.get_string("error").find("unknown request type"),
            std::string::npos);

  Json nofn = Json::object();
  nofn.set("type", "optimize");
  const Json& r2 = svc.submit(nofn).wait();
  EXPECT_FALSE(r2.get_bool("ok"));

  Json badsrc = Json::object();
  badsrc.set("type", "optimize");
  badsrc.set("source", "GCD(int a { while (");  // truncated garbage
  const Json& r3 = svc.submit(badsrc).wait();
  EXPECT_FALSE(r3.get_bool("ok"));
  EXPECT_NE(r3.get_string("error").find("parse error"), std::string::npos);

  Json badbench = Json::object();
  badbench.set("type", "optimize");
  badbench.set("benchmark", "NOPE");
  const Json& r4 = svc.submit(badbench).wait();
  EXPECT_FALSE(r4.get_bool("ok"));

  // The service survives all of it.
  const Json& ok = svc.submit(optimize_request("GCD", 9)).wait();
  EXPECT_TRUE(ok.get_bool("ok")) << ok.dump();
}

TEST(Service, SessionPinsBehaviorAndWarmsCache) {
  fact::serve::Service svc;

  Json first = optimize_request("FIR", 1);
  first.set("session", "fir");
  const Json& r1 = svc.submit(first).wait();
  ASSERT_TRUE(r1.get_bool("ok")) << r1.dump();
  EXPECT_EQ(r1.get_string("session"), "fir");
  EXPECT_EQ(svc.session_count(), 1u);

  // Re-optimize through the session: no behavior fields needed, the warm
  // shared cache serves every evaluation, and the result is identical.
  Json second = Json::object();
  second.set("type", "optimize");
  second.set("id", 2);
  second.set("session", "fir");
  second.set("quiet", true);
  const Json& r2 = svc.submit(second).wait();
  ASSERT_TRUE(r2.get_bool("ok")) << r2.dump();
  EXPECT_GT(r2.get_int("cache_hits"), 0);
  EXPECT_EQ(r2.get_double("avg_len"), r1.get_double("avg_len"));
  EXPECT_EQ(r2.get_string("report"), r1.get_string("report"));
  EXPECT_EQ(r2.get("transforms")->dump(), r1.get("transforms")->dump());
  EXPECT_EQ(svc.session_count(), 1u);

  // An unknown session without a behavior is an error, not a crash.
  Json ghost = Json::object();
  ghost.set("type", "optimize");
  ghost.set("session", "nope");
  const Json& r3 = svc.submit(ghost).wait();
  EXPECT_FALSE(r3.get_bool("ok"));
  EXPECT_NE(r3.get_string("error").find("unknown session"),
            std::string::npos);
}

TEST(Service, SharedCacheCrossesSessions) {
  fact::serve::Service svc;
  Json a = optimize_request("GCD", 1);
  a.set("session", "one");
  Json b = optimize_request("GCD", 2);
  b.set("session", "two");
  const Json& r1 = svc.submit(a).wait();
  ASSERT_TRUE(r1.get_bool("ok")) << r1.dump();
  // A different session over the same behavior hits the process-wide
  // cache: same structural hashes, same objective, same baseline.
  const Json& r2 = svc.submit(b).wait();
  ASSERT_TRUE(r2.get_bool("ok")) << r2.dump();
  EXPECT_GT(r2.get_int("cache_hits"), 0);
  EXPECT_EQ(r2.get_double("avg_len"), r1.get_double("avg_len"));
  EXPECT_EQ(svc.session_count(), 2u);
}

TEST(Service, ResponsesIndependentOfBatchShapeAndWorkers) {
  // The determinism contract: request results do not depend on service
  // concurrency. Compare a wide service (batched dispatch, pool sharing)
  // against a strictly serial one.
  const char* workloads[] = {"GCD", "TEST2", "PPS"};

  fact::serve::ServiceOptions wide;
  wide.workers = 4;
  wide.batch_max = 4;
  fact::serve::Service parallel_svc(wide);
  std::vector<fact::serve::Ticket> tickets;
  int id = 0;
  for (int rep = 0; rep < 2; ++rep)
    for (const char* w : workloads)
      tickets.push_back(parallel_svc.submit(optimize_request(w, ++id)));

  fact::serve::ServiceOptions narrow;
  narrow.workers = 1;
  narrow.batch_max = 1;
  fact::serve::Service serial_svc(narrow);

  for (size_t i = 0; i < tickets.size(); ++i) {
    const Json& wide_resp = tickets[i].wait();
    ASSERT_TRUE(wide_resp.get_bool("ok")) << wide_resp.dump();
    const Json& serial_resp =
        serial_svc
            .submit(optimize_request(workloads[i % 3],
                                     static_cast<int>(i + 1)))
            .wait();
    ASSERT_TRUE(serial_resp.get_bool("ok")) << serial_resp.dump();
    EXPECT_EQ(wide_resp.get_string("report"),
              serial_resp.get_string("report"))
        << workloads[i % 3];
    EXPECT_EQ(wide_resp.get_double("avg_len"),
              serial_resp.get_double("avg_len"));
    EXPECT_EQ(wide_resp.get("transforms")->dump(),
              serial_resp.get("transforms")->dump());
  }
}

TEST(Service, BoundedQueueRejectsOverflow) {
  fact::serve::ServiceOptions o;
  o.workers = 1;
  o.queue_cap = 1;
  o.batch_max = 1;
  fact::serve::Service svc(o);

  std::vector<fact::serve::Ticket> tickets;
  for (int i = 0; i < 5; ++i)
    tickets.push_back(svc.submit(optimize_request("SINTRAN", i + 1)));

  size_t rejected = 0, succeeded = 0;
  for (auto& t : tickets) {
    const Json& r = t.wait();
    if (r.get_bool("ok")) {
      ++succeeded;
    } else {
      EXPECT_NE(r.get_string("error").find("queue full"), std::string::npos)
          << r.dump();
      ++rejected;
    }
  }
  // The dispatcher can hold at most one job with one queued behind it, so
  // of five instant submissions at least two bounce.
  EXPECT_GE(rejected, 2u);
  EXPECT_GE(succeeded, 1u);
  EXPECT_GE(svc.stats().rejected, 2u);
}

TEST(Service, CancelTruncatesOrSkipsJob) {
  fact::serve::ServiceOptions o;
  o.workers = 1;
  fact::serve::Service svc(o);

  // Two jobs: the second queues behind the first, so cancelling it always
  // exercises the cancelled-before-start path; cancelling the first
  // exercises the cooperative in-flight path.
  fact::serve::Ticket t1 = svc.submit(optimize_request("IGF", 1));
  fact::serve::Ticket t2 = svc.submit(optimize_request("IGF", 2));
  EXPECT_TRUE(svc.cancel(t1.id()));
  EXPECT_TRUE(svc.cancel(t2.id()));

  const Json& r1 = t1.wait();
  EXPECT_TRUE(r1.get_bool("cancelled")) << r1.dump();
  if (r1.get_bool("ok")) {
    EXPECT_TRUE(r1.get_bool("truncated")) << r1.dump();
  }
  const Json& r2 = t2.wait();
  EXPECT_TRUE(r2.get_bool("cancelled")) << r2.dump();

  // Cancelling a finished or unknown ticket reports false.
  EXPECT_FALSE(svc.cancel(t1.id()));
  EXPECT_FALSE(svc.cancel(999999));
  EXPECT_GE(svc.stats().cancelled, 1u);
}

TEST(Service, ShutdownWhileBusyCompletesEveryTicket) {
  fact::serve::ServiceOptions o;
  o.workers = 2;
  fact::serve::Service svc(o);
  std::vector<fact::serve::Ticket> tickets;
  for (int i = 0; i < 6; ++i)
    tickets.push_back(svc.submit(optimize_request("SINTRAN", i + 1)));
  svc.stop();
  for (auto& t : tickets) {
    const Json& r = t.wait();  // must not hang
    // Finished normally (possibly truncated by the shutdown cancel), was
    // cancelled in flight, or failed with the shutdown error.
    EXPECT_TRUE(r.get_bool("ok") || !r.get_string("error").empty())
        << r.dump();
  }
  // Submissions after stop fail fast.
  const Json& late = svc.submit(optimize_request("GCD", 99)).wait();
  EXPECT_FALSE(late.get_bool("ok"));
}

// ---- Server over a real unix socket --------------------------------------

std::string test_socket_path(const char* tag) {
  return "/tmp/fact_serve_test_" + std::string(tag) + "_" +
         std::to_string(::getpid()) + ".sock";
}

TEST(Server, OrderedResponsesOverUnixSocket) {
  const std::string path = test_socket_path("order");
  fact::serve::Service svc;
  fact::serve::ServerOptions so;
  so.unix_path = path;
  fact::serve::Server server(svc, so);
  std::thread runner([&] { server.run(); });

  const int fd = fact::serve::connect_unix(path);
  // Pipelined mix: immediate (status), queued (optimize/schedule), broken
  // (bad json, unknown type). Responses must come back 1:1 in order.
  fact::serve::send_line(fd, "{\"type\":\"status\",\"id\":1}");
  Json opt = optimize_request("GCD", 2);
  fact::serve::send_line(fd, opt.dump());
  fact::serve::send_line(fd, "this is not json");
  fact::serve::send_line(fd, "{\"type\":\"mystery\",\"id\":4}");
  fact::serve::send_line(fd, "{\"type\":\"schedule\",\"id\":5,"
                             "\"benchmark\":\"GCD\"}");

  fact::serve::LineReader reader(fd);
  std::string line;
  std::vector<Json> resps;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(reader.next(line)) << "response " << i;
    resps.push_back(Json::parse(line));
  }
  EXPECT_EQ(resps[0].get_string("type"), "status");
  EXPECT_TRUE(resps[0].get_bool("ok"));
  EXPECT_EQ(resps[1].get_int("id"), 2);
  EXPECT_TRUE(resps[1].get_bool("ok")) << resps[1].dump();
  EXPECT_FALSE(resps[2].get_bool("ok"));
  EXPECT_NE(resps[2].get_string("error").find("bad json"),
            std::string::npos);
  EXPECT_FALSE(resps[3].get_bool("ok"));
  EXPECT_EQ(resps[3].get_int("id"), 4);
  EXPECT_EQ(resps[4].get_int("id"), 5);
  EXPECT_TRUE(resps[4].get_bool("ok")) << resps[4].dump();

  fact::serve::send_line(fd, "{\"type\":\"shutdown\",\"id\":6}");
  ASSERT_TRUE(reader.next(line));
  EXPECT_TRUE(Json::parse(line).get_bool("ok"));
  fact::serve::close_fd(fd);
  runner.join();  // shutdown request ends run()
}

TEST(Server, CancelTargetsEarlierRequestOnConnection) {
  const std::string path = test_socket_path("cancel");
  fact::serve::ServiceOptions o;
  o.workers = 1;
  fact::serve::Service svc(o);
  fact::serve::ServerOptions so;
  so.unix_path = path;
  fact::serve::Server server(svc, so);
  std::thread runner([&] { server.run(); });

  const int fd = fact::serve::connect_unix(path);
  Json slow1 = optimize_request("IGF", 1);
  Json slow2 = optimize_request("IGF", 2);
  fact::serve::send_line(fd, slow1.dump());
  fact::serve::send_line(fd, slow2.dump());
  // Cancel request 2 (still queued behind 1 on a single worker).
  fact::serve::send_line(fd, "{\"type\":\"cancel\",\"id\":3,\"target\":2}");

  fact::serve::LineReader reader(fd);
  std::string line;
  std::vector<Json> resps;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(reader.next(line));
    resps.push_back(Json::parse(line));
  }
  // Responses arrive in request order: 1, 2, then the cancel ack.
  EXPECT_EQ(resps[0].get_int("id"), 1);
  EXPECT_EQ(resps[1].get_int("id"), 2);
  EXPECT_TRUE(resps[1].get_bool("cancelled")) << resps[1].dump();
  EXPECT_EQ(resps[2].get_string("type"), "cancel");
  EXPECT_TRUE(resps[2].get_bool("ok"));
  EXPECT_TRUE(resps[2].get_bool("cancelled")) << resps[2].dump();

  fact::serve::shutdown_fd(fd);
  fact::serve::close_fd(fd);
  server.stop();
  runner.join();
}

// ---- stats & metrics -----------------------------------------------------

/// The sample value on a `name value` exposition line, or -1 if absent.
long long prom_value(const std::string& text, const std::string& name) {
  size_t pos = 0;
  while ((pos = text.find(name + " ", pos)) != std::string::npos) {
    if (pos == 0 || text[pos - 1] == '\n')
      return std::stoll(text.substr(pos + name.size() + 1));
    ++pos;
  }
  return -1;
}

TEST(Service, StatsResponseInventoriesSessions) {
  fact::serve::Service svc;
  Json req = optimize_request("GCD", 1);
  req.set("session", "obs-test");
  ASSERT_TRUE(svc.submit(req).wait().get_bool("ok"));

  const Json resp = svc.stats_response();
  EXPECT_TRUE(resp.get_bool("ok"));
  EXPECT_EQ(resp.get_string("type"), "stats");
  EXPECT_GE(resp.get_double("uptime_ms"), 0.0);
  EXPECT_EQ(resp.get_int("sessions"), 1);
  // wait() returns when the ticket completes, which can be a beat before
  // the dispatcher retires the job from its in-flight accounting — so
  // bound these rather than pinning them to zero.
  EXPECT_LE(resp.get_int("queue_depth"), 1);
  EXPECT_LE(resp.get_int("in_flight"), 1);
  EXPECT_GT(resp.get_int("cache_entries"), 0);
  EXPECT_GE(resp.get_int("cache_cap"), resp.get_int("cache_entries"));
  const Json* list = resp.get("session_list");
  ASSERT_TRUE(list != nullptr);
  ASSERT_EQ(list->size(), 1u);
  EXPECT_EQ(list->at(0).get_string("name"), "obs-test");
  EXPECT_EQ(list->at(0).get_int("requests"), 1);
  EXPECT_TRUE(list->at(0).get_bool("trace_pinned"));
}

TEST(Service, MetricsTextIsPrometheusWithLiveCounters) {
  fact::serve::Service svc;
  ASSERT_TRUE(svc.submit(optimize_request("GCD", 1)).wait().get_bool("ok"));

  const std::string text = svc.metrics_text();
  EXPECT_NE(text.find("# TYPE fact_serve_completed_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE fact_serve_sessions gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE fact_eval_requests_total counter"),
            std::string::npos);
  // Counters are process-global, so exact values depend on test order —
  // but this service just completed a job, so they cannot be zero.
  EXPECT_GE(prom_value(text, "fact_serve_completed_total"), 1);
  EXPECT_GE(prom_value(text, "fact_eval_requests_total"), 1);
  EXPECT_GE(prom_value(text, "fact_search_generations_total"), 1);
  EXPECT_EQ(prom_value(text, "fact_serve_queue_depth"), 0);
}

TEST(Server, StatsAndMetricsRequestsOverSocket) {
  const std::string path = test_socket_path("stats");
  fact::serve::Service svc;
  fact::serve::ServerOptions so;
  so.unix_path = path;
  fact::serve::Server server(svc, so);
  std::thread runner([&] { server.run(); });

  const int fd = fact::serve::connect_unix(path);
  fact::serve::LineReader reader(fd);
  std::string line;
  std::vector<Json> resps;
  // stats/metrics responses are computed the moment the request line is
  // read (they only *deliver* in order), so consume the optimize response
  // before asking for counters that job must have bumped.
  fact::serve::send_line(fd, optimize_request("GCD", 1).dump());
  ASSERT_TRUE(reader.next(line));
  resps.push_back(Json::parse(line));
  fact::serve::send_line(fd, "{\"type\":\"stats\",\"id\":2}");
  fact::serve::send_line(fd, "{\"type\":\"metrics\",\"id\":3}");
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(reader.next(line));
    resps.push_back(Json::parse(line));
  }
  EXPECT_TRUE(resps[0].get_bool("ok")) << resps[0].dump();
  EXPECT_EQ(resps[1].get_int("id"), 2);
  EXPECT_EQ(resps[1].get_string("type"), "stats");
  EXPECT_GE(resps[1].get_double("uptime_ms"), 0.0);
  EXPECT_EQ(resps[2].get_int("id"), 3);
  EXPECT_EQ(resps[2].get_string("type"), "metrics");
  EXPECT_EQ(resps[2].get_string("content_type"),
            "text/plain; version=0.0.4");
  const std::string body = resps[2].get_string("body");
  EXPECT_NE(body.find("# TYPE fact_serve_completed_total counter"),
            std::string::npos);
  EXPECT_GE(prom_value(body, "fact_serve_completed_total"), 1);

  fact::serve::shutdown_fd(fd);
  fact::serve::close_fd(fd);
  server.stop();
  runner.join();
}

}  // namespace
