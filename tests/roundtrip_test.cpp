// Printer/parser round-trip property: Function::str() emits valid mini-
// language text that parses back to a semantically identical behavior.
// Exercised on the benchmarks, on FACT-transformed outputs (which contain
// generated temps and selects), and on fuzzed programs.

#include <gtest/gtest.h>

#include "lang/parser.hpp"
#include "opt/fact.hpp"
#include "program_gen.hpp"
#include "sim/trace.hpp"
#include "workloads/workloads.hpp"

namespace fact {
namespace {

void expect_roundtrip(const ir::Function& fn, const sim::Trace& trace) {
  const std::string text = fn.str();
  ir::Function reparsed = lang::parse_function(text);
  EXPECT_TRUE(sim::equivalent_on_trace(fn, reparsed, trace))
      << "round-trip changed semantics:\n"
      << text;
  // Printing must also be a fixpoint after one round.
  EXPECT_EQ(reparsed.str(), text);
}

class RoundTripBenchmarks : public ::testing::TestWithParam<const char*> {};

TEST_P(RoundTripBenchmarks, SourcePrintsAndReparses) {
  const workloads::Workload w = workloads::by_name(GetParam());
  const sim::Trace trace = sim::generate_trace(w.fn, w.trace, 5);
  expect_roundtrip(w.fn, trace);
}

TEST_P(RoundTripBenchmarks, OptimizedOutputPrintsAndReparses) {
  const workloads::Workload w = workloads::by_name(GetParam());
  // TEST1's allocation names come from the Table 1 library.
  const auto lib = w.name == "TEST1" ? hlslib::Library::table1()
                                     : hlslib::Library::dac98();
  const opt::FactResult r = opt::run_fact(
      w.fn, lib, w.allocation, hlslib::FuSelection::defaults(lib), w.trace,
      xform::TransformLibrary::standard(), {});
  const sim::Trace trace = sim::generate_trace(w.fn, w.trace, 77);
  expect_roundtrip(r.optimized, trace);
}

INSTANTIATE_TEST_SUITE_P(All, RoundTripBenchmarks,
                         ::testing::Values("GCD", "FIR", "TEST2", "SINTRAN",
                                           "IGF", "PPS", "TEST1"));

TEST(RoundTripFuzz, RandomProgramsSurviveReprinting) {
  for (uint64_t seed = 500; seed < 540; ++seed) {
    const ir::Function fn = testgen::random_program(seed);
    sim::TraceConfig tc;
    tc.executions = 4;
    sim::InputSpec spec;
    spec.kind = sim::InputSpec::Kind::Uniform;
    spec.lo = -20;
    spec.hi = 20;
    for (const auto& p : fn.params()) tc.params[p] = spec;
    for (const auto& a : fn.arrays()) tc.arrays[a.name] = spec;
    const sim::Trace trace = sim::generate_trace(fn, tc, seed);
    expect_roundtrip(fn, trace);
  }
}

}  // namespace
}  // namespace fact
