#include <gtest/gtest.h>

#include "lang/parser.hpp"
#include "opt/fuselect.hpp"
#include "workloads/workloads.hpp"

namespace fact::opt {
namespace {

TEST(FuSelect, LowPowerLibraryExtendsDac98) {
  const auto lib = hlslib::Library::dac98_lowpower();
  ASSERT_NE(lib.find("a1_lp"), nullptr);
  EXPECT_LT(lib.get("a1_lp").energy_coeff, lib.get("a1").energy_coeff);
  EXPECT_GT(lib.get("a1_lp").delay_ns, lib.get("a1").delay_ns);
  EXPECT_EQ(lib.all_of(hlslib::FuClass::Adder).size(), 2u);
  EXPECT_EQ(lib.all_of(hlslib::FuClass::Multiplier).size(), 2u);
}

TEST(FuSelect, SwapsWhereSlackExists) {
  // GCD at II>=1 has slack on every unit: comparisons and subtractions
  // move to the _lp variants, power drops, throughput holds.
  const workloads::Workload w = workloads::make_gcd();
  const auto lib = hlslib::Library::dac98_lowpower();
  const auto sel = hlslib::FuSelection::defaults(lib);
  const sim::Trace trace = sim::generate_trace(w.fn, w.trace, 7);
  const sim::Profile profile = sim::profile_function(w.fn, trace);
  sched::Scheduler scheduler(lib, w.allocation, sel, {});
  const auto sr = scheduler.schedule(w.fn, profile);
  const double base_len = stg::average_schedule_length(sr.stg);
  const double base_power = power::estimate_power(sr.stg, lib, {}).power;

  const FuSelectResult r = explore_fu_selection(w.fn, lib, w.allocation, sel,
                                                trace, {}, {}, base_len);
  EXPECT_LT(r.power, base_power);
  EXPECT_LE(r.avg_len, base_len * 1.001);
  EXPECT_FALSE(r.log.empty());
  // The chosen types really are the low-power ones.
  EXPECT_EQ(r.selection.choice.at(ir::Op::Sub), "sb1_lp");
}

TEST(FuSelect, RefusesSwapsThatLoseThroughput) {
  // PPS's balanced adder tree chains two 10ns adds per 25ns cycle; a
  // 16ns ripple-carry adder cannot chain, so no swap is acceptable.
  const workloads::Workload w = workloads::make_pps();
  const auto lib = hlslib::Library::dac98_lowpower();
  const auto sel = hlslib::FuSelection::defaults(lib);
  const sim::Trace trace = sim::generate_trace(w.fn, w.trace, 7);
  const sim::Profile profile = sim::profile_function(w.fn, trace);
  sched::Scheduler scheduler(lib, w.allocation, sel, {});
  const auto sr = scheduler.schedule(w.fn, profile);
  const double base_len = stg::average_schedule_length(sr.stg);

  const FuSelectResult r = explore_fu_selection(w.fn, lib, w.allocation, sel,
                                                trace, {}, {}, base_len);
  EXPECT_EQ(r.selection.choice.at(ir::Op::Add), "a1");
  EXPECT_LE(r.avg_len, base_len * 1.001);
}

TEST(FuSelect, AllocationTransfersWithSwap) {
  const workloads::Workload w = workloads::make_gcd();
  const auto lib = hlslib::Library::dac98_lowpower();
  const auto sel = hlslib::FuSelection::defaults(lib);
  const sim::Trace trace = sim::generate_trace(w.fn, w.trace, 7);
  const sim::Profile profile = sim::profile_function(w.fn, trace);
  sched::Scheduler scheduler(lib, w.allocation, sel, {});
  const auto sr = scheduler.schedule(w.fn, profile);
  const double base_len = stg::average_schedule_length(sr.stg);
  const FuSelectResult r = explore_fu_selection(w.fn, lib, w.allocation, sel,
                                                trace, {}, {}, base_len);
  if (r.selection.choice.at(ir::Op::Sub) == "sb1_lp") {
    EXPECT_EQ(r.allocation.count("sb1_lp"), w.allocation.count("sb1"));
    EXPECT_EQ(r.allocation.count("sb1"), 0);
  }
}

TEST(FuSelect, StructuralOverheadScalesWithComplexity) {
  const workloads::Workload w = workloads::make_gcd();
  const auto lib = hlslib::Library::dac98();
  const auto sel = hlslib::FuSelection::defaults(lib);
  const sim::Trace trace = sim::generate_trace(w.fn, w.trace, 7);
  const sim::Profile profile = sim::profile_function(w.fn, trace);
  sched::Scheduler scheduler(lib, w.allocation, sel, {});
  const auto sr = scheduler.schedule(w.fn, profile);
  const double lean =
      power::structural_overhead_fraction(sr.stg, lib, /*mux=*/0, /*regs=*/2);
  const double muxy =
      power::structural_overhead_fraction(sr.stg, lib, /*mux=*/40, /*regs=*/8);
  EXPECT_GT(lean, 0.0);
  EXPECT_GT(muxy, lean);
}

}  // namespace
}  // namespace fact::opt
