#include <gtest/gtest.h>

#include "hlslib/library.hpp"
#include "util/error.hpp"

namespace fact::hlslib {
namespace {

TEST(Library, Dac98HasAllSectionFiveComponents) {
  const Library lib = Library::dac98();
  const struct {
    const char* name;
    double delay;
  } expected[] = {{"a1", 10}, {"sb1", 10}, {"mt1", 23}, {"cp1", 10},
                  {"e1", 5},  {"i1", 5},   {"n1", 2},   {"s1", 10}};
  for (const auto& e : expected) {
    const FuType* t = lib.find(e.name);
    ASSERT_NE(t, nullptr) << e.name;
    EXPECT_DOUBLE_EQ(t->delay_ns, e.delay) << e.name;
  }
  EXPECT_NE(lib.find("reg1"), nullptr);
  EXPECT_NE(lib.find("mem1"), nullptr);
}

TEST(Library, Table1Verbatim) {
  const Library lib = Library::table1();
  const FuType& comp = lib.get("comp1");
  EXPECT_DOUBLE_EQ(comp.energy_coeff, 1.1);
  EXPECT_DOUBLE_EQ(comp.delay_ns, 12.0);
  EXPECT_DOUBLE_EQ(comp.area, 1.3);
  const FuType& mult = lib.get("w_mult1");
  EXPECT_DOUBLE_EQ(mult.energy_coeff, 2.3);
  EXPECT_DOUBLE_EQ(mult.delay_ns, 23.0);
  const FuType& incr = lib.get("incr1");
  EXPECT_DOUBLE_EQ(incr.energy_coeff, 0.7);
  const FuType& mem = lib.get("mem1");
  EXPECT_DOUBLE_EQ(mem.energy_coeff, 1.9);
  EXPECT_DOUBLE_EQ(mem.area, 8.1);
}

TEST(Library, GetThrowsOnUnknown) {
  const Library lib = Library::dac98();
  EXPECT_THROW(lib.get("nonesuch"), Error);
  EXPECT_EQ(lib.find("nonesuch"), nullptr);
}

TEST(Library, FirstOfFindsByClass) {
  const Library lib = Library::dac98();
  ASSERT_NE(lib.first_of(FuClass::Multiplier), nullptr);
  EXPECT_EQ(lib.first_of(FuClass::Multiplier)->name, "mt1");
}

TEST(Allocation, CountDefaultsToZero) {
  Allocation a;
  a.counts["a1"] = 2;
  EXPECT_EQ(a.count("a1"), 2);
  EXPECT_EQ(a.count("sb1"), 0);
}

TEST(FuSelection, DefaultsCoverArithmetic) {
  const Library lib = Library::dac98();
  const FuSelection sel = FuSelection::defaults(lib);
  EXPECT_EQ(sel.choice.at(ir::Op::Add), "a1");
  EXPECT_EQ(sel.choice.at(ir::Op::Sub), "sb1");
  EXPECT_EQ(sel.choice.at(ir::Op::Mul), "mt1");
  EXPECT_EQ(sel.choice.at(ir::Op::Lt), "cp1");
  EXPECT_EQ(sel.choice.at(ir::Op::Eq), "e1");
  EXPECT_EQ(sel.choice.at(ir::Op::Shl), "s1");
}

TEST(OpFuClass, Mapping) {
  EXPECT_EQ(op_fu_class(ir::Op::Add), FuClass::Adder);
  EXPECT_EQ(op_fu_class(ir::Op::Ge), FuClass::Comparator);
  EXPECT_EQ(op_fu_class(ir::Op::Ne), FuClass::EqComparator);
  EXPECT_EQ(op_fu_class(ir::Op::ArrayRead), FuClass::Memory);
  EXPECT_EQ(op_fu_class(ir::Op::And), FuClass::None);
  EXPECT_EQ(op_fu_class(ir::Op::Select), FuClass::None);
}

TEST(DelayScale, IdentityAtFiveVolts) {
  EXPECT_NEAR(delay_scale(5.0, 1.0), 1.0, 1e-12);
}

TEST(DelayScale, SlowerAtLowerVdd) {
  EXPECT_GT(delay_scale(3.3, 1.0), 1.0);
  EXPECT_GT(delay_scale(2.0, 1.0), delay_scale(3.0, 1.0));
  EXPECT_THROW(delay_scale(0.9, 1.0), Error);
}

// The paper's Example 1: scaling a 119.11-cycle design to match the
// 151.30-cycle base case yields Vdd = 4.29V.
TEST(VddScaling, Example1Value) {
  EXPECT_NEAR(scale_vdd_for_slowdown(119.11, 151.30, 1.0), 4.29, 0.005);
}

TEST(VddScaling, NoSlackMeansNominal) {
  EXPECT_DOUBLE_EQ(scale_vdd_for_slowdown(100.0, 100.0, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(scale_vdd_for_slowdown(200.0, 100.0, 1.0), 5.0);
}

TEST(VddScaling, ConsistentWithDelayLaw) {
  // For any speedup, the scaled voltage must slow the design by exactly
  // the claimed ratio (round trip through the delay law).
  for (double fast : {50.0, 80.0, 119.11}) {
    const double slow = 151.30;
    const double v = scale_vdd_for_slowdown(fast, slow, 1.0);
    if (v < 5.0 && v > 1.1)
      EXPECT_NEAR(delay_scale(v, 1.0), slow / fast, 1e-6) << fast;
  }
}

TEST(VddScaling, HugeSpeedupClampsAboveVt) {
  const double v = scale_vdd_for_slowdown(1.0, 1e6, 1.0);
  EXPECT_GT(v, 1.0);
  EXPECT_LT(v, 5.0);
}

TEST(VddScaling, RejectsNonPositive) {
  EXPECT_THROW(scale_vdd_for_slowdown(0.0, 10.0, 1.0), Error);
  EXPECT_THROW(scale_vdd_for_slowdown(10.0, -1.0, 1.0), Error);
}

}  // namespace
}  // namespace fact::hlslib
