#include <gtest/gtest.h>

#include "lang/lexer.hpp"
#include "lang/parser.hpp"
#include "util/error.hpp"

namespace fact::lang {
namespace {

TEST(Lexer, TokenizesOperatorsAndLiterals) {
  const auto toks = tokenize("a <= 42 >> b != ++");
  ASSERT_EQ(toks.size(), 8u);  // incl. End
  EXPECT_EQ(toks[0].kind, Tok::Ident);
  EXPECT_EQ(toks[0].text, "a");
  EXPECT_EQ(toks[1].kind, Tok::Le);
  EXPECT_EQ(toks[2].kind, Tok::Int);
  EXPECT_EQ(toks[2].value, 42);
  EXPECT_EQ(toks[3].kind, Tok::Shr);
  EXPECT_EQ(toks[5].kind, Tok::Ne);
  EXPECT_EQ(toks[6].kind, Tok::PlusPlus);
}

TEST(Lexer, TracksLineAndColumn) {
  const auto toks = tokenize("a\n  b");
  EXPECT_EQ(toks[0].line, 1);
  EXPECT_EQ(toks[1].line, 2);
  EXPECT_EQ(toks[1].col, 3);
}

TEST(Lexer, SkipsComments) {
  const auto toks = tokenize("a // line\n/* block\nstill */ b");
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[1].text, "b");
}

TEST(Lexer, RejectsBadInput) {
  EXPECT_THROW(tokenize("a $ b"), ParseError);
  EXPECT_THROW(tokenize("/* unterminated"), ParseError);
}

TEST(Parser, ParsesKitchenSink) {
  const ir::Function fn = parse_function(R"(
F(int a, int b) {
  input int xs[8];
  int ys[4];
  int i = 0;
  int t = u = 5;
  while (i < 8) {
    if (xs[i] > a && !(b == 0)) {
      ys[i >> 1] = xs[i] * 2 - t;
    } else if (a <= b) {
      t = (a + b) * (a - b);
    }
    i++;
  }
  for (t = 0; t < 4; t = t + 1) { u = u + ys[t]; }
  output u;
}
)");
  EXPECT_EQ(fn.name(), "F");
  ASSERT_EQ(fn.params().size(), 2u);
  ASSERT_EQ(fn.arrays().size(), 2u);
  EXPECT_TRUE(fn.arrays()[0].is_input);
  EXPECT_FALSE(fn.arrays()[1].is_input);
  ASSERT_EQ(fn.outputs().size(), 1u);
  EXPECT_GT(fn.stmt_count(), 8u);
}

TEST(Parser, ForLowersToWhile) {
  const ir::Function fn = parse_function(
      "F() { int s = 0; for (s = 0; s < 3; s++) { s = s + 1; } }");
  bool has_while = false;
  fn.for_each([&](const ir::Stmt& s) {
    if (s.kind == ir::StmtKind::While) has_while = true;
  });
  EXPECT_TRUE(has_while);
}

TEST(Parser, IncrementSugar) {
  const ir::Function fn = parse_function("F() { int i = 0; i++; }");
  const ir::Stmt* last = fn.body()->stmts.back().get();
  EXPECT_EQ(last->value->str(), "(i + 1)");
}

TEST(Parser, TernaryBecomesSelect) {
  const ir::Function fn = parse_function("F(int a) { int x = a > 0 ? a : 0 - a; }");
  const ir::Stmt* s = fn.body()->stmts.back().get();
  EXPECT_EQ(s->value->op(), ir::Op::Select);
}

TEST(Parser, PrecedenceMulOverAdd) {
  const ir::Function fn = parse_function("F(int a, int b) { int x = a + b * 3; }");
  EXPECT_EQ(fn.body()->stmts[0]->value->str(), "(a + (b * 3))");
}

TEST(Parser, UnaryOperators) {
  const ir::Function fn =
      parse_function("F(int a) { int x = ~a; int y = -a; int z = !a; }");
  EXPECT_EQ(fn.body()->stmts[0]->value->op(), ir::Op::BitNot);
  EXPECT_EQ(fn.body()->stmts[1]->value->str(), "(0 - a)");
  EXPECT_EQ(fn.body()->stmts[2]->value->op(), ir::Op::Not);
}

TEST(Parser, DeclarationInsideBlock) {
  const ir::Function fn = parse_function(
      "F(int a) { while (a > 0) { int t = a - 1; a = t; } }");
  EXPECT_GE(fn.stmt_count(), 3u);
}

TEST(Parser, ErrorsCarryPosition) {
  try {
    parse_function("F() { int x = ; }");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_GE(e.line(), 1);
  }
}

TEST(Parser, RejectsMalformedPrograms) {
  EXPECT_THROW(parse_function("F() { x = 1 }"), ParseError);       // missing ;
  EXPECT_THROW(parse_function("F( { }"), ParseError);              // bad params
  EXPECT_THROW(parse_function("F() { if a { } }"), ParseError);    // missing (
  EXPECT_THROW(parse_function("F() { int a[0]; }"), ParseError);   // size 0
  EXPECT_THROW(parse_function("F() { y[0] = 1; }"), Error);        // undeclared
}

TEST(Parser, TrailingGarbageRejected) {
  EXPECT_THROW(parse_function("F() { } G() { }"), ParseError);
}

// ---- hostile-input hardening -------------------------------------------
// factd feeds this parser text straight off a socket, so every malformed
// input must surface as fact::Error — never UB, stack exhaustion, or an
// abort that takes the daemon down.

TEST(Parser, BadInputCorpusAllThrowCleanly) {
  const char* corpus[] = {
      "",                                 // empty source
      "F",                                // header cut mid-name
      "F(",                               // header cut mid-params
      "F(int",                            // param type, no name
      "F(int a,)",                        // dangling comma
      "F(int a) {",                       // unterminated body
      "F(int a) { x = ",                  // truncated expression
      "F(int a) { x = a + ; }",           // operator without operand
      "F(int a) { if (a) }",              // if without branch
      "F(int a) { while () x = 1; }",     // empty condition
      "F(int a) { for (x = 0; x < 9) x++; }",  // for missing step
      "F(int a) { a[1] = 2; }",           // store to undeclared array
      "F(int a) { int b[2]; b[ = 1; }",   // broken index
      "F(int a) { output ; }",            // output without name
      "F(int a) { x = (a; }",             // unbalanced paren
      "F(int a) { x = a ? 1 ; }",         // ternary missing ':'
      "F(int a) { /* never closed",       // unterminated block comment
      "F(int a) { x = 1 @ 2; }",          // stray character
      "F(int a) { x = 99999999999999999999999999; }",  // literal overflow
  };
  for (const char* text : corpus)
    EXPECT_THROW(parse_function(text), Error) << "input: " << text;
}

TEST(Lexer, IntegerLiteralOverflowIsDiagnosed) {
  // INT64_MAX parses; one past it is an error, not signed-overflow UB.
  const auto ok = tokenize("9223372036854775807");
  EXPECT_EQ(ok[0].value, INT64_MAX);
  EXPECT_THROW(tokenize("9223372036854775808"), ParseError);
  EXPECT_THROW(tokenize("184467440737095516150"), ParseError);
}

TEST(Parser, PathologicalNestingIsDiagnosedNotStackOverflow) {
  // Expression nesting: "((((…1))))".
  const std::string parens = "F(int a) { x = " + std::string(5000, '(') +
                             "1" + std::string(5000, ')') + "; }";
  EXPECT_THROW(parse_function(parens), ParseError);
  // Unary chains recurse without passing through parse_expr.
  const std::string bangs =
      "F(int a) { x = " + std::string(5000, '!') + "a; }";
  EXPECT_THROW(parse_function(bangs), ParseError);
  // Statement nesting: deeply nested ifs.
  std::string ifs = "F(int a) { ";
  for (int i = 0; i < 5000; ++i) ifs += "if (a) { ";
  ifs += "x = 1; ";
  for (int i = 0; i < 5000; ++i) ifs += "} ";
  ifs += "}";
  EXPECT_THROW(parse_function(ifs), ParseError);
  // Modest nesting stays well inside the budget.
  std::string ok = "F(int a) { x = " + std::string(50, '(') + "a" +
                   std::string(50, ')') + "; }";
  EXPECT_NO_THROW(parse_function(ok));
}

TEST(Parser, EveryPrefixOfAValidProgramFailsCleanly) {
  // Truncation sweep: every byte-prefix of a program using the whole
  // grammar either parses (full length) or throws fact::Error.
  const std::string program =
      "GCD(int a, int b) {\n"
      "  int g[4];\n"
      "  while (a != b) { if (a > b) a = a - b; else b = b - a; }\n"
      "  for (i = 0; i < 4; i++) g[i] = a * 2 + ~i;\n"
      "  int r = a > 0 ? g[0] : -a;\n"
      "  output r;\n"
      "}\n";
  for (size_t len = 0; len < program.size(); ++len) {
    const std::string prefix = program.substr(0, len);
    try {
      parse_function(prefix);
    } catch (const Error&) {
      // Expected: a clean diagnostic.
    }
    // Anything else (other exception types, crashes) fails the test run.
  }
  EXPECT_NO_THROW(parse_function(program));
}

}  // namespace
}  // namespace fact::lang
